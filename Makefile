# Verification targets for the repo. `make check` is what CI should run.

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt vet build test race bench test-spill

check: fmt vet build test race

# gofmt -l prints nonconforming files; any output fails the target.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/repair/...

# Out-of-core subsystem: the spill package plus every test exercising the
# budgeted (spill-to-disk) regime of the engine, core e2e and the CLI flag.
test-spill:
	$(GO) test ./internal/spill/...
	$(GO) test -run 'External|Spill|OutOfCore|Codec|MemBudget|ParseByteSize' \
		./internal/engine/ ./internal/core/ ./internal/model/ ./cmd/bigdansing/
	$(GO) test -race -run 'External|Spill' ./internal/engine/
	$(GO) test -race ./internal/spill/...

bench:
	$(GO) test -run xxx -bench 'Table2Datasets|Fig9' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench . -benchtime 5x -benchmem ./internal/engine/
