# Verification targets for the repo. `make check` is what CI should run.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/repair/...

bench:
	$(GO) test -run xxx -bench 'Table2Datasets|Fig9' -benchtime 1x .
	$(GO) test -run xxx -bench . -benchtime 5x ./internal/engine/
