# Verification targets for the repo. `make check` is what CI should run.

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

# gofmt -l prints nonconforming files; any output fails the target.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/repair/...

bench:
	$(GO) test -run xxx -bench 'Table2Datasets|Fig9' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench . -benchtime 5x -benchmem ./internal/engine/
