# Verification targets for the repo. `make check` is what CI should run.

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt vet build test race bench test-spill test-trace

check: fmt vet build test race

# gofmt -l prints nonconforming files; any output fails the target.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/repair/...

# Out-of-core subsystem: the spill package plus every test exercising the
# budgeted (spill-to-disk) regime of the engine, core e2e and the CLI flag.
test-spill:
	$(GO) test ./internal/spill/...
	$(GO) test -run 'External|Spill|OutOfCore|Codec|MemBudget|ParseByteSize' \
		./internal/engine/ ./internal/core/ ./internal/model/ ./cmd/bigdansing/
	$(GO) test -race -run 'External|Spill' ./internal/engine/
	$(GO) test -race ./internal/spill/...

# Observability subsystem: the trace package (span tree, Chrome exporter,
# validator, explain renderer), the engine Observer seam, and the traced
# end-to-end CLI runs (-explain golden + -trace JSON validated in-process).
test-trace:
	$(GO) test ./internal/trace/...
	$(GO) test -run 'Observer|Snapshot|DeprecatedGetters' ./internal/engine/
	$(GO) test -run 'Report|WithObserver' ./internal/cleanse/
	$(GO) test -run 'Explain|Trace' ./cmd/bigdansing/
	$(GO) test -race ./internal/trace/...
	$(GO) test -race -run 'Observer' ./internal/engine/

bench:
	$(GO) test -run xxx -bench 'Table2Datasets|Fig9' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench . -benchtime 5x -benchmem ./internal/engine/
