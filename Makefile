# Verification targets for the repo. `make check` is what CI should run.

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt vet build test race bench test-spill test-trace test-serve test-vector test-net test-prob test-plan fuzz-short deprecations

check: fmt vet build test race deprecations

# gofmt -l prints nonconforming files; any output fails the target.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order, flushing out
# inter-test state dependence; failures print the seed to reproduce.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/repair/...

# Out-of-core subsystem: the spill package plus every test exercising the
# budgeted (spill-to-disk) regime of the engine, core e2e and the CLI flag.
test-spill:
	$(GO) test ./internal/spill/...
	$(GO) test -run 'External|Spill|OutOfCore|Codec|MemBudget|ParseByteSize' \
		./internal/engine/ ./internal/core/ ./internal/model/ ./cmd/bigdansing/
	$(GO) test -race -run 'External|Spill' ./internal/engine/
	$(GO) test -race ./internal/spill/...

# Observability subsystem: the trace package (span tree, Chrome exporter,
# validator, explain renderer), the engine Observer seam, and the traced
# end-to-end CLI runs (-explain golden + -trace JSON validated in-process).
test-trace:
	$(GO) test ./internal/trace/...
	$(GO) test -run 'Observer|Snapshot|DeprecatedGetters' ./internal/engine/
	$(GO) test -run 'Report|WithObserver' ./internal/cleanse/
	$(GO) test -run 'Explain|Trace' ./cmd/bigdansing/
	$(GO) test -race ./internal/trace/...
	$(GO) test -race -run 'Observer' ./internal/engine/

# Vectorized execution subsystem: the column-batch model, the engine batch
# operators and row accounting, the vectorized Scope/Detect executor with
# its tuple-path equivalence suite, the storage batch reader, and the
# -batch-size CLI flag — all under the race detector, since batch kernels
# share immutable column vectors across tasks.
test-vector:
	$(GO) test -race -run 'Vec|Batch|Rechunk|RowsOf' \
		./internal/model/ ./internal/engine/ ./internal/core/ \
		./internal/rules/ ./internal/storage/ ./internal/cleanse/ ./cmd/bigdansing/

# Streaming service subsystem: the session lifecycle in cleanse, the HTTP
# session host, and the race check over the queue/worker/drain paths.
test-serve:
	$(GO) test -run 'Session|Open' ./internal/cleanse/
	$(GO) test ./internal/serve/
	$(GO) test -race ./internal/serve/
	$(GO) test -race -run 'Session' ./internal/cleanse/

# Networked multi-process backend: wire codec units, the consistent-hash
# ring, cross-backend equivalence (dataflow ops + FD/DC end-to-end cleanse,
# plain and under the race detector), recovery/panic hygiene, the chaos
# suite (50 seeded fault schedules), and the net paths of serve and the CLI.
test-net:
	$(GO) test ./internal/netexec/...
	$(GO) test -race ./internal/netexec/...
	$(GO) test -run 'Net' ./internal/serve/ ./cmd/bigdansing/

# Probabilistic repair subsystem: factor-graph compilation, seeded Gibbs
# inference and its determinism/degradation contracts (plain and under the
# race detector — per-component seeding must survive worker scheduling),
# plus the prob paths of the cleanse loop, the service and the CLI.
test-prob:
	$(GO) test ./internal/probrepair/
	$(GO) test -race ./internal/probrepair/
	$(GO) test -run 'Prob' ./internal/cleanse/ ./internal/serve/ ./cmd/bigdansing/

# Cost-based planner subsystem: the Planner API with its cost model, stats
# sampling and observer-feedback loop, the static-identity property test in
# rules, the broadcast execution variant, and the planner paths of the CLI
# and the service — plain and under the race detector, since broadcast
# grouping and the feedback recorder run inside parallel stages.
test-plan:
	$(GO) test -run 'Plan|Cost|Feedback|Broadcast|Optimize|Sample|OpsMarkers|Explain|Stats' \
		./internal/core/ ./internal/rules/ ./internal/engine/ ./cmd/bigdansing/ ./internal/serve/
	$(GO) test -race -run 'Plan|Cost|Feedback|Broadcast' ./internal/core/ ./internal/serve/

# 30 seconds of coverage-guided fuzzing per wire-codec fuzzer, seeded from
# testdata/fuzz corpora. A finding is checked in as a new corpus file.
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime 30s ./internal/netexec/
	$(GO) test -run xxx -fuzz FuzzFrameRoundTrip -fuzztime 30s ./internal/netexec/
	$(GO) test -run xxx -fuzz FuzzSplitRecords -fuzztime 30s ./internal/netexec/

# deprecations fails when code references the deprecated engine.Stats
# getters (use Stats().Snapshot() fields instead). Allowed: the getters
# themselves (context.go), their compatibility test (observer_test.go),
# and internal/mapred plus its callers — mapred.Stats is a different type
# whose accessors legitimately share these names.
# It also fails on calls to the deprecated core.Optimize (use
# core.NewPlanner().Plan). Allowed: the shim itself (physical.go) and its
# identity test (planner_test.go).
deprecations:
	@matches="$$(grep -rnE '\.Stats\(\)\.(Stages|Tasks|RecordsShuffled|RecordsRead|BytesSpilled|SpillRuns|MergePasses|PeakReservedBytes)\(\)' \
		--include='*.go' cmd examples internal *.go \
		| grep -vE 'internal/engine/context\.go|internal/engine/observer_test\.go|internal/mapred/|internal/experiments/extensions\.go' || true)"; \
	if [ -n "$$matches" ]; then \
		echo "deprecated engine.Stats getters referenced (use Stats().Snapshot()):"; \
		echo "$$matches"; exit 1; \
	fi
	@matches="$$(grep -rnE '(^|[^A-Za-z_])Optimize\(' \
		--include='*.go' cmd examples internal *.go \
		| grep -vE 'internal/core/physical\.go|internal/core/planner_test\.go' || true)"; \
	if [ -n "$$matches" ]; then \
		echo "deprecated core.Optimize referenced (use core.NewPlanner().Plan):"; \
		echo "$$matches"; exit 1; \
	fi

bench:
	$(GO) test -run xxx -bench 'Table2Datasets|Fig9' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench . -benchtime 5x -benchmem ./internal/engine/
