// Package bigdansing's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation (Section 6), exercising the
// same code paths the experiment driver (cmd/bench) sweeps. Workload sizes
// are fixed small so `go test -bench=.` finishes quickly; cmd/bench runs
// the full sweeps and prints the paper-shaped series.
package bigdansing

import (
	"fmt"
	"testing"

	"bigdansing/internal/baseline"
	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/join"
	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

const benchSeed = 42

func mustFD(b *testing.B, id, spec string, schema *model.Schema) *core.Rule {
	b.Helper()
	fd, err := rules.ParseFD(id, spec)
	if err != nil {
		b.Fatal(err)
	}
	r, err := fd.Compile(schema)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func mustDC(b *testing.B, id, spec string, schema *model.Schema) *core.Rule {
	b.Helper()
	dc, err := rules.ParseDC(id, spec)
	if err != nil {
		b.Fatal(err)
	}
	r, err := dc.Compile(schema)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable2Datasets covers Table 2: the dataset generators.
func BenchmarkTable2Datasets(b *testing.B) {
	b.Run("taxa-10K", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = datagen.TaxA(10000, 0.1, benchSeed)
		}
	})
	b.Run("tpch-10K", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = datagen.TPCH(10000, 0.1, benchSeed)
		}
	})
	b.Run("hai-10K", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = datagen.HAI(10000, 0.1, benchSeed)
		}
	})
}

// BenchmarkTable3Rules covers Table 3: rule parsing and compilation.
func BenchmarkTable3Rules(b *testing.B) {
	schema := datagen.TaxSchema()
	for i := 0; i < b.N; i++ {
		fd, _ := rules.ParseFD("phi1", "zipcode -> city")
		if _, err := fd.Compile(schema); err != nil {
			b.Fatal(err)
		}
		dc, _ := rules.ParseDC("phi2", "t1.salary > t2.salary & t1.rate < t2.rate")
		if _, err := dc.Compile(schema); err != nil {
			b.Fatal(err)
		}
		cfd, _ := rules.ParseCFD("cfd", "zipcode -> city | 90210 => LA ; _ => _")
		if _, err := cfd.Compile(schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8aCleansing covers Figure 8(a): end-to-end detect+repair.
func BenchmarkFig8aCleansing(b *testing.B) {
	run := func(b *testing.B, rel *model.Relation, rule *core.Rule, algo repair.Algorithm) {
		ctx := engine.New(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cleaner, err := cleanse.NewCleaner(ctx, []*core.Rule{rule},
				cleanse.WithAlgorithm(algo), cleanse.WithParallelRepair(repair.Options{}))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cleaner.Clean(rel); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("phi1-taxa-5K", func(b *testing.B) {
		rel := datagen.TaxA(5000, 0.1, benchSeed).Dirty
		run(b, rel, mustFD(b, "phi1", "zipcode -> city", datagen.TaxSchema()), &repair.EquivalenceClass{})
	})
	b.Run("phi2-taxb-1K", func(b *testing.B) {
		rel := datagen.TaxB(1000, 0.05, benchSeed).Dirty
		run(b, rel, mustDC(b, "phi2", "t1.salary > t2.salary & t1.rate < t2.rate", datagen.TaxSchema()), &repair.Hypergraph{})
	})
	b.Run("phi3-tpch-5K", func(b *testing.B) {
		rel := datagen.TPCH(5000, 0.1, benchSeed).Dirty
		run(b, rel, mustFD(b, "phi3", "o_custkey -> c_address", datagen.TPCHSchema()), &repair.EquivalenceClass{})
	})
}

// BenchmarkFig8bErrorRates covers Figure 8(b): the cleansing loop across
// error rates (detection dominating is asserted in the experiments tests).
func BenchmarkFig8bErrorRates(b *testing.B) {
	rule := mustFD(b, "phi1", "zipcode -> city", datagen.TaxSchema())
	for _, rate := range []float64{0.01, 0.10, 0.50} {
		rel := datagen.TaxA(5000, rate, benchSeed).Dirty
		b.Run(fmt.Sprintf("err-%g", rate*100), func(b *testing.B) {
			ctx := engine.New(8)
			for i := 0; i < b.N; i++ {
				cleaner, err := cleanse.NewCleaner(ctx, []*core.Rule{rule},
					cleanse.WithParallelRepair(repair.Options{}))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cleaner.Clean(rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchDetect runs one system's detection in a sub-benchmark. The
// "bigdansing-vec" system is the same engine with 1024-row column batches;
// rules without vectorized forms fall back to the tuple path, so its numbers
// are honest for every figure it appears in.
func benchDetect(b *testing.B, system string, rule *core.Rule, rel *model.Relation) {
	b.Run(system, func(b *testing.B) {
		b.ReportAllocs()
		ctx := engine.New(8)
		if system == "bigdansing-vec" {
			ctx = engine.NewWithConfig(engine.Config{Parallelism: 8, BatchSize: 1024})
		}
		for i := 0; i < b.N; i++ {
			var err error
			switch system {
			case "bigdansing", "bigdansing-vec":
				_, err = core.DetectRule(ctx, rule, rel)
			case "nadeef":
				_, err = baseline.NadeefDetect(rule, rel)
			case "postgresql":
				_, err = baseline.SQLDetect(ctx, baseline.Postgres, rule, rel)
			case "spark-sql":
				_, err = baseline.SQLDetect(ctx, baseline.SparkSQL, rule, rel)
			case "shark":
				_, err = baseline.SQLDetect(ctx, baseline.Shark, rule, rel)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9aTaxA covers Figure 9(a): φ1 detection across systems.
func BenchmarkFig9aTaxA(b *testing.B) {
	rel := datagen.TaxA(20000, 0.1, benchSeed).Dirty
	rule := mustFD(b, "phi1", "zipcode -> city", datagen.TaxSchema())
	for _, sys := range []string{"bigdansing", "bigdansing-vec", "nadeef", "postgresql", "spark-sql"} {
		benchDetect(b, sys, rule, rel)
	}
}

// BenchmarkFig9bTaxB covers Figure 9(b): the inequality DC φ2.
func BenchmarkFig9bTaxB(b *testing.B) {
	rel := datagen.TaxB(2000, 0.1, benchSeed).Dirty
	rule := mustDC(b, "phi2", "t1.salary > t2.salary & t1.rate < t2.rate", datagen.TaxSchema())
	for _, sys := range []string{"bigdansing", "bigdansing-vec", "postgresql", "spark-sql", "shark"} {
		benchDetect(b, sys, rule, rel)
	}
}

// BenchmarkFig9cTPCH covers Figure 9(c): φ3 detection across systems.
func BenchmarkFig9cTPCH(b *testing.B) {
	rel := datagen.TPCH(20000, 0.1, benchSeed).Dirty
	rule := mustFD(b, "phi3", "o_custkey -> c_address", datagen.TPCHSchema())
	for _, sys := range []string{"bigdansing", "bigdansing-vec", "postgresql", "spark-sql"} {
		benchDetect(b, sys, rule, rel)
	}
}

// BenchmarkFig10aBackends covers Figure 10(a): the in-memory vs disk-based
// backends on φ1.
func BenchmarkFig10aBackends(b *testing.B) {
	rel := datagen.TaxA(50000, 0.1, benchSeed).Dirty
	rule := mustFD(b, "phi1", "zipcode -> city", datagen.TaxSchema())
	b.Run("bigdansing-spark", func(b *testing.B) {
		ctx := engine.New(8)
		for i := 0; i < b.N; i++ {
			if _, err := core.DetectRule(ctx, rule, rel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bigdansing-hadoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := mapred.New(b.TempDir(), 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.DetectRuleMapReduce(eng, rule, rel, 8, 8); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	})
}

// BenchmarkFig10bInequalityOCJoin covers Figure 10(b): φ2 at the sizes
// where the baselines already exceeded the paper's time budget.
func BenchmarkFig10bInequalityOCJoin(b *testing.B) {
	rel := datagen.TaxB(8000, 0.01, benchSeed).Dirty
	rule := mustDC(b, "phi2", "t1.salary > t2.salary & t1.rate < t2.rate", datagen.TaxSchema())
	benchDetect(b, "bigdansing", rule, rel)
}

// BenchmarkFig10cLargeTPCH covers Figure 10(c): backend comparison on the
// largest workload of the suite.
func BenchmarkFig10cLargeTPCH(b *testing.B) {
	rel := datagen.TPCH(100000, 0.1, benchSeed).Dirty
	rule := mustFD(b, "phi3", "o_custkey -> c_address", datagen.TPCHSchema())
	b.Run("bigdansing-spark", func(b *testing.B) {
		ctx := engine.New(8)
		for i := 0; i < b.N; i++ {
			if _, err := core.DetectRule(ctx, rule, rel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bigdansing-hadoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := mapred.New(b.TempDir(), 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.DetectRuleMapReduce(eng, rule, rel, 8, 8); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	})
	benchDetect(b, "spark-sql", rule, rel)
}

// BenchmarkFig11aScaleOut covers Figure 11(a): detection vs worker count.
func BenchmarkFig11aScaleOut(b *testing.B) {
	rel := datagen.TPCH(50000, 0.1, benchSeed).Dirty
	rule := mustFD(b, "phi3", "o_custkey -> c_address", datagen.TPCHSchema())
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			ctx := engine.New(w)
			for i := 0; i < b.N; i++ {
				if _, err := core.DetectRule(ctx, rule, rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11bDedup covers Figure 11(b): UDF deduplication.
func BenchmarkFig11bDedup(b *testing.B) {
	truth := datagen.Customers("customer1", 600, 3, 0.02, benchSeed)
	rule, err := rules.DedupRule(rules.DedupConfig{
		ID: "phi4", NameAttr: "c_name", PhoneAttr: "c_phone",
		NameThreshold: 0.75, PhoneThreshold: 0.7,
	}, datagen.CustomerSchema())
	if err != nil {
		b.Fatal(err)
	}
	benchDetect(b, "bigdansing", rule, truth.Dirty)
	benchDetect(b, "shark", rule, truth.Dirty)
}

// BenchmarkFig11cJoinAblation covers Figure 11(c): the three physical join
// operators enumerating φ2's pairs.
func BenchmarkFig11cJoinAblation(b *testing.B) {
	rel := datagen.TaxB(2000, 0.1, benchSeed).Dirty
	ctx := engine.New(8)
	d := engine.Parallelize(ctx, rel.Tuples, 0)
	conds := []join.Cond{
		{LeftCol: 4, Op: model.OpGT, RightCol: 4},
		{LeftCol: 5, Op: model.OpLT, RightCol: 5},
	}
	match := func(p engine.PairOf[model.Tuple]) bool {
		return conds[0].Eval(p.Left, p.Right) && conds[1].Eval(p.Left, p.Right)
	}
	b.Run("ocjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := join.OCJoin(d, conds, 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := out.Count(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ucrossproduct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := engine.Filter(join.UCrossProduct(d), func(p engine.PairOf[model.Tuple]) bool {
				return match(p) || match(engine.PairOf[model.Tuple]{Left: p.Right, Right: p.Left})
			})
			if _, err := out.Count(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("crossproduct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := engine.Filter(join.CrossProduct(d), match)
			if _, err := out.Count(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12aAbstraction covers Figure 12(a): full API vs Detect-only.
func BenchmarkFig12aAbstraction(b *testing.B) {
	rel := datagen.TaxA(2000, 0.1, benchSeed).Dirty
	rule, err := rules.DedupRule(rules.DedupConfig{
		ID: "dedupTax", NameAttr: "name", NameThreshold: 0.85,
	}, datagen.TaxSchema())
	if err != nil {
		b.Fatal(err)
	}
	ctx := engine.New(8)
	b.Run("full-api", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DetectRule(ctx, rule, rel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("detect-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.DetectOnly(ctx, rule, rel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12bRepair covers Figure 12(b): parallel vs centralized repair
// over the same violation set.
func BenchmarkFig12bRepair(b *testing.B) {
	rel := datagen.TaxA(20000, 0.1, benchSeed).Dirty
	rule := mustFD(b, "phi1", "zipcode -> city", datagen.TaxSchema())
	ctx := engine.New(8)
	det, err := core.DetectRules(ctx, []*core.Rule{rule}, rel)
	if err != nil {
		b.Fatal(err)
	}
	algo := &repair.EquivalenceClass{}
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := repair.RepairParallel(det.FixSets, algo, repair.Options{Parallelism: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("centralized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.Repair(det.FixSets); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable4Quality covers Table 4: a full quality-scored repair run
// on HAI with all three FDs.
func BenchmarkTable4Quality(b *testing.B) {
	truth := datagen.HAI(3000, 0.1, benchSeed, 3, 4, 2, 6)
	var ruleSet []*core.Rule
	for _, spec := range []string{"zip -> state", "phone -> zip", "providerID -> city, phone"} {
		ruleSet = append(ruleSet, mustFD(b, spec, spec, datagen.HAISchema()))
	}
	ctx := engine.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cleaner, err := cleanse.NewCleaner(ctx, ruleSet, cleanse.WithParallelRepair(repair.Options{}))
		if err != nil {
			b.Fatal(err)
		}
		res, err := cleaner.Clean(truth.Dirty)
		if err != nil {
			b.Fatal(err)
		}
		q := datagen.Evaluate(truth, res.Clean)
		if q.Recall < 0.5 {
			b.Fatalf("recall collapsed: %+v", q)
		}
	}
}
