// Command bench regenerates the paper's evaluation tables and figures
// (Section 6). Each experiment prints the same series the paper plots;
// EXPERIMENTS.md records the measured shapes against the paper's claims.
//
// Examples:
//
//	bench -list
//	bench -exp fig9a
//	bench -exp all -scale 0.5 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bigdansing/internal/experiments"
	"bigdansing/internal/netexec"
)

func main() {
	// ext-net spawns real worker processes by re-executing this binary with
	// the worker env hook set; such children serve partitions and exit here.
	netexec.MaybeWorker()
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id (see -list), or 'all'")
		list    = fs.Bool("list", false, "list experiments")
		scale   = fs.Float64("scale", 1.0, "row-count scale factor")
		workers = fs.Int("workers", 8, "simulated cluster size")
		seed    = fs.Int64("seed", 1, "data generator seed")
		csvDir  = fs.String("csv", "", "also write each table as CSV into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("-exp is required (or -list)")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	runOne := func(id string) error {
		cfg := experiments.Config{Workers: *workers, Seed: *seed, Scale: *scale, Out: os.Stdout}
		for _, e := range experiments.All() {
			if e.ID != id {
				continue
			}
			tables, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			for ti, t := range tables {
				t.Print(os.Stdout)
				if *csvDir != "" {
					path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", id, ti))
					f, err := os.Create(path)
					if err != nil {
						return err
					}
					if err := t.WriteCSV(f); err != nil {
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return fmt.Errorf("unknown experiment %q", id)
	}
	if *exp != "all" {
		return runOne(*exp)
	}
	for _, e := range experiments.All() {
		t0 := time.Now()
		if err := runOne(e.ID); err != nil {
			return err
		}
		fmt.Printf("[%s finished in %v]\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
