// Command bigdansing detects and repairs data quality violations in a CSV
// dataset using declarative rules (FDs, DCs, CFDs) or the built-in dedup
// UDF — the command-line face of the system in Figure 1.
//
// Examples:
//
//	bigdansing -input tax.csv -schema 'name,zipcode:int,city,state,salary:float,rate:float' \
//	  -fd 'zipcode -> city' -mode detect
//
//	bigdansing -input tax.csv -schema '...' -fd 'zipcode -> city' \
//	  -dc 't1.salary > t2.salary & t1.rate < t2.rate' \
//	  -mode clean -out clean.csv -parallel-repair
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/netexec"
	"bigdansing/internal/probrepair"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
	"bigdansing/internal/trace"
)

func main() {
	// The net backend spawns workers by re-executing this binary with the
	// worker env hook set; such child processes never reach run().
	netexec.MaybeWorker()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bigdansing:", err)
		os.Exit(1)
	}
}

// runWorker implements the hidden `worker` subcommand: a standalone netexec
// worker for pre-started deployments (`-net-addrs` on the coordinator side).
// The spawned-worker path uses the env hook in main instead.
func runWorker(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bigdansing worker", flag.ContinueOnError)
	addr := fs.String("addr", "auto", "listen address (host:port, or auto for an ephemeral port)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return netexec.WorkerMain(*addr, out)
}

func run(args []string, out io.Writer) error {
	// Subcommands come first; everything else is the classic flag-driven
	// one-shot pipeline.
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], out)
	}
	if len(args) > 0 && args[0] == "worker" {
		return runWorker(args[1:], out)
	}
	fs := flag.NewFlagSet("bigdansing", flag.ContinueOnError)
	var (
		input     = fs.String("input", "", "input CSV file (required)")
		schema    = fs.String("schema", "", "schema, e.g. 'name,zipcode:int,rate:float' (required)")
		header    = fs.Bool("header", false, "input has a header row")
		mode      = fs.String("mode", "detect", "detect | clean | explain")
		outPath   = fs.String("out", "", "output CSV for the repaired data (clean mode)")
		workers   = fs.Int("workers", 8, "parallelism of the dataflow backend")
		algoName  = fs.String("repair", "eq", "repair algorithm: eq (equivalence class) | hypergraph | sampling | prob (factor-graph inference)")
		parallel  = fs.Bool("parallel-repair", false, "use the parallel black-box repair (Section 5.1)")
		seed      = fs.Int64("seed", 1, "base seed for randomized repair (sampling draws, prob inference)")
		probSamp  = fs.Int("prob-samples", probrepair.DefaultSamples, "recorded Gibbs sweeps per component for -repair=prob (0 degrades to the equivalence-class answer)")
		probSeed  = fs.Int64("prob-seed", 0, "seed for -repair=prob inference; 0 means use -seed")
		maxIter   = fs.Int("max-iterations", 10, "bound on the detect-repair loop")
		verbose   = fs.Bool("v", false, "print every violation")
		stats     = fs.Bool("stats", false, "print the per-stage dataflow execution breakdown")
		explain   = fs.Bool("explain", false, "after the run, print the EXPLAIN ANALYZE-style annotated span tree")
		tracePath = fs.String("trace", "", "write a Chrome trace-event JSON of the run (load in ui.perfetto.dev)")
		vioOut    = fs.String("violations-out", "", "write the violation report (with possible fixes) to this CSV")
		memBudget = fs.String("mem-budget", "", "memory budget for wide operators, e.g. 64MiB or 512K; shuffles spill to disk past it (default: unbounded)")
		spillDir  = fs.String("spill-dir", "", "directory for spill run files (default: the system temp dir)")
		batchSize = fs.Int("batch-size", 0, "rows per column batch for vectorized detection; 0 = tuple-at-a-time (1024 is a good starting point)")
		backend   = fs.String("backend", "local", "execution backend: local (in-process) | net (worker processes over TCP)")
		netWork   = fs.Int("net-workers", 0, "worker processes for -backend=net; 0 = the -workers value")
		netAddrs  = fs.String("net-addrs", "", "comma-separated addresses of pre-started workers (`bigdansing worker -addr ...`) to join instead of spawning")
		planner   = fs.String("planner", engine.PlannerStatic, "physical planner: static (legacy rule-shape choices) | cost (statistics- and feedback-driven)")
		statsIn   = fs.String("stats-in", "", "read prior-run pipeline measurements (a -stats-out file) to refine the cost planner's estimates")
		statsOut  = fs.String("stats-out", "", "write this run's measured pipeline statistics (pairs, violations) for a later -stats-in")
	)
	var fds, dcs, cfds, dedups multiFlag
	fs.Var(&fds, "fd", "functional dependency, e.g. 'zipcode -> city' (repeatable)")
	fs.Var(&dcs, "dc", "denial constraint, e.g. 't1.a > t2.a & t1.b < t2.b' (repeatable)")
	fs.Var(&cfds, "cfd", "conditional FD, e.g. 'zip -> city | 90210 => LA ; _ => _' (repeatable)")
	fs.Var(&dedups, "dedup", "dedup UDF as 'nameAttr[,phoneAttr]' (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *schema == "" {
		fs.Usage()
		return fmt.Errorf("-input and -schema are required")
	}

	sch := model.MustParseSchema(*schema)
	rel, err := model.ReadCSVFile(*input, "input", sch, *header)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %d rows from %s\n", rel.Len(), *input)

	var ruleSet []*core.Rule
	for i, spec := range fds {
		fd, err := rules.ParseFD(fmt.Sprintf("fd%d", i+1), spec)
		if err != nil {
			return err
		}
		r, err := fd.Compile(sch)
		if err != nil {
			return err
		}
		ruleSet = append(ruleSet, r)
	}
	for i, spec := range dcs {
		dc, err := rules.ParseDC(fmt.Sprintf("dc%d", i+1), spec)
		if err != nil {
			return err
		}
		r, err := dc.Compile(sch)
		if err != nil {
			return err
		}
		ruleSet = append(ruleSet, r)
	}
	for i, spec := range cfds {
		cfd, err := rules.ParseCFD(fmt.Sprintf("cfd%d", i+1), spec)
		if err != nil {
			return err
		}
		rs, err := cfd.Compile(sch)
		if err != nil {
			return err
		}
		ruleSet = append(ruleSet, rs...)
	}
	for i, spec := range dedups {
		nameAttr, phoneAttr, _ := strings.Cut(spec, ",")
		r, err := rules.DedupRule(rules.DedupConfig{
			ID:        fmt.Sprintf("dedup%d", i+1),
			NameAttr:  strings.TrimSpace(nameAttr),
			PhoneAttr: strings.TrimSpace(phoneAttr),
		}, sch)
		if err != nil {
			return err
		}
		ruleSet = append(ruleSet, r)
	}
	if len(ruleSet) == 0 {
		return fmt.Errorf("no rules given; use -fd, -dc, -cfd or -dedup")
	}

	budget, err := parseByteSize(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	if *batchSize < 0 {
		return fmt.Errorf("-batch-size: %d is negative (0 disables vectorized execution)", *batchSize)
	}
	var tracer *trace.Tracer
	if *explain || *tracePath != "" {
		tracer = trace.New()
	}

	// The planner: -planner=cost builds the statistics-driven planner, fed
	// with prior-run measurements when -stats-in names a file; -stats-out
	// tees a FeedbackRecorder into the run so the measured pipeline stats
	// (pairs, violations) round-trip into the next run's estimates.
	var feedback core.FeedbackSource
	if *statsIn != "" {
		fb, err := core.ReadFeedbackFile(*statsIn)
		if err != nil {
			return fmt.Errorf("-stats-in: %w", err)
		}
		feedback = fb
	}
	var recorder *core.FeedbackRecorder
	if *statsOut != "" {
		recorder = core.NewFeedbackRecorder()
	}
	var pl *core.Planner
	switch *planner {
	case engine.PlannerStatic:
	case engine.PlannerCost:
		popts := []core.PlannerOption{
			core.WithCostModel(core.NewCostModel()),
			core.WithMemoryBudget(budget),
			core.WithParallelism(*workers),
		}
		if feedback != nil {
			popts = append(popts, core.WithObserverFeedback(feedback))
		}
		pl = core.NewPlanner(popts...)
	default:
		return fmt.Errorf("-planner: unknown planner %q (want %s or %s)", *planner, engine.PlannerStatic, engine.PlannerCost)
	}

	cfg := engine.Config{
		Parallelism:       *workers,
		MemoryBudgetBytes: budget,
		SpillDir:          *spillDir,
		BatchSize:         *batchSize,
		Planner:           *planner,
	}
	switch *backend {
	case "local":
	case "net":
		cfg.Backend = engine.BackendNet
		cfg.NetWorkers = *netWork
		if cfg.NetWorkers <= 0 {
			cfg.NetWorkers = *workers
		}
		if *netAddrs != "" {
			for _, a := range strings.Split(*netAddrs, ",") {
				if a = strings.TrimSpace(a); a != "" {
					cfg.NetWorkerAddrs = append(cfg.NetWorkerAddrs, a)
				}
			}
		}
	default:
		return fmt.Errorf("unknown backend %q (want local or net)", *backend)
	}
	switch {
	case tracer != nil && recorder != nil:
		cfg.Observer = engine.Tee(tracer, recorder)
	case tracer != nil:
		cfg.Observer = tracer
	case recorder != nil:
		cfg.Observer = recorder
	}
	ctx, err := engine.NewContext(cfg)
	if err != nil {
		return err
	}
	defer ctx.Close()
	if recorder != nil {
		defer func() {
			if err := recorder.PlanFeedback().WriteFile(*statsOut); err != nil {
				fmt.Fprintln(os.Stderr, "bigdansing: stats-out:", err)
			} else {
				fmt.Fprintf(out, "pipeline stats written to %s\n", *statsOut)
			}
		}()
	}
	if *stats {
		defer func() {
			fmt.Fprintf(out, "\ndataflow stages:\n%s", ctx.Stats().Snapshot())
		}()
	}
	if tracer != nil {
		// Finish and export the trace whether or not the run errored: a
		// partial span tree is exactly what explains a failure.
		defer func() {
			tracer.Finish()
			if *explain && pl != nil && *mode != "explain" {
				fmt.Fprintf(out, "\nplanner decisions:\n")
				for _, h := range pl.History() {
					fmt.Fprint(out, h)
				}
			}
			if *explain {
				fmt.Fprintf(out, "\nexecution trace:\n")
				if err := trace.WriteTree(out, tracer); err != nil {
					fmt.Fprintln(os.Stderr, "bigdansing: explain:", err)
				}
			}
			if *tracePath != "" {
				if err := writeTraceFile(*tracePath, tracer); err != nil {
					fmt.Fprintln(os.Stderr, "bigdansing:", err)
				} else {
					fmt.Fprintf(out, "trace written to %s\n", *tracePath)
				}
			}
		}()
	}
	switch *mode {
	case "explain":
		lp, err := core.PlanRules(ruleSet, rel)
		if err != nil {
			return err
		}
		plan := pl
		if plan == nil {
			plan = core.NewPlanner()
		}
		pp, err := plan.Plan(lp)
		if err != nil {
			return err
		}
		fmt.Fprint(out, pp.Explain())
		return nil

	case "detect":
		res, err := core.DetectRulesWith(ctx, pl, ruleSet, rel)
		if err != nil {
			return err
		}
		byRule := map[string]int{}
		for _, v := range res.Violations {
			byRule[v.RuleID]++
			if *verbose {
				fmt.Fprintln(out, " ", v)
			}
		}
		fmt.Fprintf(out, "violations: %d (possible fixes: %d)\n", len(res.Violations), len(res.AllFixes()))
		ruleIDs := make([]string, 0, len(byRule))
		for r := range byRule {
			ruleIDs = append(ruleIDs, r)
		}
		sort.Strings(ruleIDs)
		for _, r := range ruleIDs {
			fmt.Fprintf(out, "  %-12s %d\n", r, byRule[r])
		}
		if *vioOut != "" {
			if err := model.WriteViolationsFile(*vioOut, res.FixSets); err != nil {
				return err
			}
			fmt.Fprintf(out, "violation report written to %s\n", *vioOut)
		}
		return nil

	case "clean":
		var algo repair.Algorithm
		switch *algoName {
		case "eq":
			algo = &repair.EquivalenceClass{}
		case "hypergraph":
			algo = &repair.Hypergraph{}
		case "sampling":
			algo = &repair.Sampling{Seed: *seed}
		case "prob":
			ps := *probSeed
			if ps == 0 {
				ps = *seed
			}
			algo = &probrepair.Prob{Samples: *probSamp, Seed: ps}
		default:
			return fmt.Errorf("unknown repair algorithm %q", *algoName)
		}
		opts := []cleanse.Option{
			cleanse.WithAlgorithm(algo),
			cleanse.WithMaxIterations(*maxIter),
		}
		if pl != nil {
			opts = append(opts, cleanse.WithPlanner(pl))
		}
		if *parallel {
			opts = append(opts, cleanse.WithParallelRepair(repair.Options{}))
		}
		cleaner, err := cleanse.NewCleaner(ctx, ruleSet, opts...)
		if err != nil {
			return err
		}
		res, err := cleaner.Clean(rel)
		if err != nil {
			return err
		}
		rep := res.Report()
		fmt.Fprintf(out, "iterations: %d\n", rep.Iterations)
		fmt.Fprintf(out, "violations: %d initially, %d remaining\n", rep.InitialViolations, rep.RemainingViolations)
		fmt.Fprintf(out, "updates applied: %d (frozen cells: %d)\n", rep.UpdatesApplied, rep.FrozenCells)
		fmt.Fprintf(out, "detect time: %v, repair time: %v\n", rep.DetectTime, rep.RepairTime)
		if *verbose {
			for i, rr := range rep.RepairRounds {
				fmt.Fprintf(out, "  repair round %d: components=%d split=%d conflicts=%d assignments=%d\n",
					i+1, rr.Components, rr.SplitComponents, rr.Conflicts, rr.Assignments)
			}
		}
		if *outPath != "" {
			if err := model.WriteCSVFile(*outPath, res.Clean, *header); err != nil {
				return err
			}
			fmt.Fprintf(out, "repaired data written to %s\n", *outPath)
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// writeTraceFile writes the tracer's Chrome trace-event JSON to path.
func writeTraceFile(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, tracer); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseByteSize parses a human-readable byte count such as "65536", "512K",
// "64MB" or "1GiB" (decimal and binary suffixes are treated alike, as
// powers of 1024). An empty string means no budget (unbounded).
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.ToUpper(s)
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(u, suf.name) {
			mult = suf.mult
			u = strings.TrimSuffix(u, suf.name)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("byte size %q is negative", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
