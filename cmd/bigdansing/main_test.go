package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const taxSchema = "name,zipcode:int,city,state,salary:float,rate:float"

func writeTaxCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "tax.csv")
	csv := "Annie,10011,NY,NY,24000,15\n" +
		"Laure,90210,LA,CA,25000,10\n" +
		"John,60601,CH,IL,40000,25\n" +
		"Mark,90210,SF,CA,88000,28\n" +
		"Robert,68270,CH,IL,15000,20\n" +
		"Mary,90210,LA,CA,81000,28\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDetectMode(t *testing.T) {
	input := writeTaxCSV(t)
	vioPath := filepath.Join(t.TempDir(), "violations.csv")
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "detect",
		"-violations-out", vioPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "loaded 6 rows") {
		t.Errorf("output: %s", text)
	}
	if !strings.Contains(text, "violations: 5") {
		t.Errorf("want 5 violations (2 fd + 3 dc): %s", text)
	}
	report, err := os.ReadFile(vioPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "fd1") || !strings.Contains(string(report), "dc1") {
		t.Error("violation report should name both rules")
	}
}

func TestCleanMode(t *testing.T) {
	input := writeTaxCSV(t)
	outPath := filepath.Join(t.TempDir(), "clean.csv")
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "clean", "-out", outPath, "-parallel-repair",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 remaining") {
		t.Errorf("clean output: %s", out.String())
	}
	cleaned, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	// All 90210 rows must now agree on one city.
	lines := strings.Split(strings.TrimSpace(string(cleaned)), "\n")
	cities := map[string]bool{}
	for _, l := range lines {
		if strings.Contains(l, "90210") {
			cities[strings.Split(l, ",")[2]] = true
		}
	}
	if len(cities) != 1 {
		t.Errorf("90210 cities after repair: %v", cities)
	}
}

func TestCleanModeHypergraph(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "clean", "-repair", "hypergraph",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 remaining") {
		t.Errorf("hypergraph clean: %s", out.String())
	}
}

func TestCleanModeSampling(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "clean", "-repair", "sampling",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 remaining") {
		t.Errorf("sampling clean: %s", out.String())
	}
}

func TestCLIErrors(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	if err := run([]string{"-schema", taxSchema, "-fd", "a -> b"}, &out); err == nil {
		t.Error("missing -input should fail")
	}
	if err := run([]string{"-input", input, "-schema", taxSchema}, &out); err == nil {
		t.Error("no rules should fail")
	}
	if err := run([]string{"-input", input, "-schema", taxSchema, "-fd", "bad spec"}, &out); err == nil {
		t.Error("bad FD should fail")
	}
	if err := run([]string{"-input", input, "-schema", taxSchema, "-fd", "zipcode -> city", "-mode", "bogus"}, &out); err == nil {
		t.Error("bad mode should fail")
	}
	if err := run([]string{"-input", input, "-schema", taxSchema, "-fd", "zipcode -> city", "-mode", "clean", "-repair", "bogus"}, &out); err == nil {
		t.Error("bad repair algorithm should fail")
	}
}

func TestExplainMode(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "explain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "UCrossProduct") {
		t.Errorf("FD plan should use UCrossProduct: %s", text)
	}
	if !strings.Contains(text, "OCJoin") {
		t.Errorf("DC plan should use OCJoin: %s", text)
	}
}

func TestDedupFlag(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-dedup", "name",
		"-mode", "detect",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "violations:") {
		t.Errorf("dedup output: %s", out.String())
	}
}

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"":      0,
		"0":     0,
		"65536": 65536,
		"64K":   64 << 10,
		"64KB":  64 << 10,
		"64KiB": 64 << 10,
		"8M":    8 << 20,
		"8MB":   8 << 20,
		"8MiB":  8 << 20,
		"2G":    2 << 30,
		"2GiB":  2 << 30,
		"512B":  512,
		" 1 K ": 1 << 10,
		// Units are case-insensitive: lowercase and mixed-case spellings
		// parse identically to their canonical forms.
		"64mib": 64 << 20,
		"512k":  512 << 10,
		"8mb":   8 << 20,
		"1gb":   1 << 30,
		"2gib":  2 << 30,
		"256b":  256,
		"64Kb":  64 << 10,
		"1Gib":  1 << 30,
	}
	for in, want := range good {
		got, err := parseByteSize(in)
		if err != nil {
			t.Errorf("parseByteSize(%q): %v", in, err)
		} else if got != want {
			t.Errorf("parseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"abc", "-1K", "12Q", "9999999999999G"} {
		if _, err := parseByteSize(in); err == nil {
			t.Errorf("parseByteSize(%q) should fail", in)
		}
	}
}

// writeBigTaxCSV generates enough rows that a small -mem-budget forces the
// detection shuffles out of core.
func writeBigTaxCSV(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bigtax.csv")
	var b strings.Builder
	for i := 0; i < rows; i++ {
		zip := 10000 + i%97
		city := "C" + strconv.Itoa(zip)
		if i%31 == 0 {
			city = "X" + strconv.Itoa(i) // FD violations
		}
		fmt.Fprintf(&b, "p%d,%d,%s,S%d,%d,%d\n", i, zip, city, zip, 20000+i, 2+i%40)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMemBudgetFlagSpills(t *testing.T) {
	input := writeBigTaxCSV(t, 4000)
	spillDir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect", "-stats",
		"-mem-budget", "32K", "-spill-dir", spillDir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "violations:") {
		t.Fatalf("detect output missing:\n%s", text)
	}
	if !strings.Contains(text, "spill:") {
		t.Fatalf("-stats should report spill activity under a 32K budget:\n%s", text)
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover spill files: %d entries", len(entries))
	}
}

func TestMemBudgetFlagRejectsJunk(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mem-budget", "lots",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "mem-budget") {
		t.Fatalf("junk -mem-budget should fail, got %v", err)
	}
}

func TestStatsFlag(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect", "-stats",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "dataflow stages:") {
		t.Fatalf("-stats should print the stage breakdown:\n%s", text)
	}
	if !strings.Contains(text, "stage") || !strings.Contains(text, "tasks") {
		t.Fatalf("breakdown should be the per-stage table:\n%s", text)
	}
}

func TestBatchSizeFlag(t *testing.T) {
	input := writeTaxCSV(t)

	// A negative batch size is rejected up front.
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-batch-size", "-8",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "batch-size") {
		t.Fatalf("negative -batch-size should fail, got %v", err)
	}

	// Vectorized detection finds exactly what the tuple path finds.
	detect := func(extra ...string) string {
		t.Helper()
		var buf bytes.Buffer
		args := append([]string{
			"-input", input, "-schema", taxSchema,
			"-fd", "zipcode -> city",
			"-dc", "t1.city = t2.city & t1.state != t2.state",
			"-mode", "detect",
		}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	tuple := detect()
	batch := detect("-batch-size", "2")
	wantLine := "violations:"
	for _, text := range []string{tuple, batch} {
		if !strings.Contains(text, wantLine) {
			t.Fatalf("no violation summary in output:\n%s", text)
		}
	}
	vioCount := func(text string) string {
		for _, line := range strings.Split(text, "\n") {
			if strings.Contains(line, wantLine) {
				return strings.TrimSpace(line)
			}
		}
		return ""
	}
	if vioCount(tuple) != vioCount(batch) {
		t.Fatalf("batch path found %q, tuple path %q", vioCount(batch), vioCount(tuple))
	}
}

func TestCleanModeProb(t *testing.T) {
	input := writeTaxCSV(t)
	cleanOnce := func(seed string) string {
		t.Helper()
		outPath := filepath.Join(t.TempDir(), "clean.csv")
		var out bytes.Buffer
		err := run([]string{
			"-input", input, "-schema", taxSchema,
			"-fd", "zipcode -> city",
			"-mode", "clean", "-repair", "prob",
			"-prob-samples", "64", "-prob-seed", seed,
			"-out", outPath, "-parallel-repair",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "0 remaining") {
			t.Fatalf("prob clean: %s", out.String())
		}
		cleaned, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return string(cleaned)
	}
	a := cleanOnce("7")
	b := cleanOnce("7")
	if a != b {
		t.Errorf("same -prob-seed must reproduce byte-identical output:\n%s\nvs\n%s", a, b)
	}
	// All 90210 rows must agree on one city after the repair.
	cities := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(a), "\n") {
		if strings.Contains(l, "90210") {
			cities[strings.Split(l, ",")[2]] = true
		}
	}
	if len(cities) != 1 {
		t.Errorf("90210 cities after prob repair: %v", cities)
	}
}
