package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"bigdansing/internal/netexec"
)

// TestMain lets the test binary double as a netexec worker, so the
// -backend=net runs below can spawn their worker processes by re-exec.
func TestMain(m *testing.M) {
	netexec.MaybeWorker()
	os.Exit(m.Run())
}

// TestCleanModeNetBackend runs the full clean pipeline on the networked
// backend and checks it reports the same violation counts as the local run.
func TestCleanModeNetBackend(t *testing.T) {
	input := writeTaxCSV(t)
	baseArgs := []string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "clean",
	}
	var local bytes.Buffer
	if err := run(baseArgs, &local); err != nil {
		t.Fatal(err)
	}
	var net bytes.Buffer
	if err := run(append(baseArgs, "-backend", "net", "-net-workers", "2"), &net); err != nil {
		t.Fatal(err)
	}
	// Compare everything but the wall-clock lines.
	pick := func(out string) string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "iterations:") || strings.HasPrefix(line, "violations:") ||
				strings.HasPrefix(line, "updates applied:") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if pick(local.String()) == "" || pick(local.String()) != pick(net.String()) {
		t.Errorf("net backend output differs:\nlocal:\n%s\nnet:\n%s", &local, &net)
	}
}

// TestDetectModeNetStats checks -backend=net -stats surfaces nonzero
// network counters in the snapshot — the truth-in-tracing requirement.
func TestDetectModeNetStats(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "detect", "-stats",
		"-backend", "net", "-net-workers", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "violations: 3") {
		t.Errorf("unexpected detect output:\n%s", &out)
	}
	if !strings.Contains(out.String(), "net:") {
		t.Errorf("-stats on the net backend should include network counters:\n%s", &out)
	}
}

// TestBackendFlagValidation pins the -backend error path.
func TestBackendFlagValidation(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city", "-backend", "yarn",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("want unknown backend error, got %v", err)
	}
}
