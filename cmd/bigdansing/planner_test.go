package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bigdansing/internal/core"
)

func TestPlannerFlagCostDetect(t *testing.T) {
	input := writeTaxCSV(t)
	var static, cost bytes.Buffer
	base := []string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect",
	}
	if err := run(base, &static); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-planner", "cost"), &cost); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cost.String(), "violations: 2") {
		t.Errorf("cost planner changed results:\n%s", cost.String())
	}
	if !strings.Contains(static.String(), "violations: 2") {
		t.Errorf("static output:\n%s", static.String())
	}
}

func TestPlannerFlagRejectsJunk(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect", "-planner", "bogus",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "planner") {
		t.Fatalf("err = %v, want planner flag error", err)
	}
}

func TestExplainModeCostShowsAlternatives(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "explain", "-planner", "cost",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"chosen", "rejected", "total=", "OCJoin"} {
		if !strings.Contains(text, want) {
			t.Errorf("cost explain missing %q:\n%s", want, text)
		}
	}
}

func TestStatsOutInRoundTrip(t *testing.T) {
	input := writeTaxCSV(t)
	statsPath := filepath.Join(t.TempDir(), "stats.json")

	var first bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect", "-stats-out", statsPath,
	}, &first)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "pipeline stats written to") {
		t.Fatalf("no stats-out confirmation:\n%s", first.String())
	}
	fb, err := core.ReadFeedbackFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	pf, ok := fb.Pipelines["fd1"]
	if !ok || pf.Pairs <= 0 {
		t.Fatalf("stats file should record measured pairs for fd1: %+v", fb.Pipelines)
	}

	var second bytes.Buffer
	err = run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect", "-planner", "cost",
		"-stats-in", statsPath, "-explain",
	}, &second)
	if err != nil {
		t.Fatal(err)
	}
	text := second.String()
	if !strings.Contains(text, "planner decisions:") {
		t.Fatalf("-explain with cost planner should audit decisions:\n%s", text)
	}
	if !strings.Contains(text, "violations: 2") {
		t.Errorf("fed-back run changed results:\n%s", text)
	}
}

func TestStatsInMissingFile(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect",
		"-stats-in", filepath.Join(t.TempDir(), "nope.json"),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "stats-in") {
		t.Fatalf("err = %v, want stats-in error", err)
	}
	_ = os.Remove("nope.json")
}
