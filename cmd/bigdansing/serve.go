package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"bigdansing/internal/serve"
)

// runServe implements `bigdansing serve`: a long-running HTTP service
// hosting many named streaming cleanse sessions (see internal/serve for the
// API). SIGINT/SIGTERM trigger a graceful drain — queued ingest batches are
// processed, every session gets a final flush, and only then does the
// process exit.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bigdansing serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8090", "listen address")
		workers = fs.Int("workers", 4, "dataflow parallelism of each session's engine context")
		queue   = fs.Int("queue", 64, "per-session bounded ingest queue depth (full queue -> 429)")
		quiet   = fs.Bool("quiet", false, "suppress per-session lifecycle logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	srv := serve.New(serve.Config{Workers: *workers, QueueDepth: *queue, Logf: logf})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bigdansing serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		return err
	}
	fmt.Fprintln(out, "bigdansing serve: drained, bye")
	return nil
}
