package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bigdansing/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// scrubDurations replaces wall-clock numbers so explain output can be
// compared across runs: span durations like (318.633µs) and the UDF
// nanosecond attributes.
func scrubDurations(s string) string {
	s = regexp.MustCompile(`\(\d+(\.\d+)?(ns|µs|ms|s)\)`).ReplaceAllString(s, "(DUR)")
	s = regexp.MustCompile(`(detect_ns|genfix_ns)=\d+`).ReplaceAllString(s, "$1=NS")
	return s
}

// TestExplainFlagGolden locks down the -explain span tree for the bundled
// FD+DC example: operator names, nesting, partition and record counts.
// Durations are scrubbed; everything else must be deterministic.
func TestExplainFlagGolden(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "detect", "-workers", "2",
		"-explain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	idx := strings.Index(text, "execution trace:")
	if idx < 0 {
		t.Fatalf("-explain output missing the trace section:\n%s", text)
	}
	got := scrubDurations(text[idx:])

	goldenPath := filepath.Join("testdata", "explain_fd_dc.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("-explain output changed.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainReconcilesWithStats cross-checks the two reports the CLI can
// print: the explain totals line and the -stats snapshot must agree on
// records read and shuffled.
func TestExplainReconcilesWithStats(t *testing.T) {
	input := writeTaxCSV(t)
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "detect", "-workers", "2",
		"-explain", "-stats",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	totals := regexp.MustCompile(`totals: records_read=(\d+) records_shuffled=(\d+)`).FindStringSubmatch(text)
	stats := regexp.MustCompile(`records read: (\d+), records shuffled: (\d+)`).FindStringSubmatch(text)
	if totals == nil || stats == nil {
		t.Fatalf("missing totals or stats lines:\n%s", text)
	}
	if totals[1] != stats[1] || totals[2] != stats[2] {
		t.Errorf("explain totals (read=%s shuffled=%s) != stats (read=%s shuffled=%s)",
			totals[1], totals[2], stats[1], stats[2])
	}
}

// TestTraceFlag runs the full e2e clean job with -trace and validates the
// emitted Chrome trace-event JSON (the CI traced-e2e job does the same via
// make test-trace).
func TestTraceFlag(t *testing.T) {
	input := writeTaxCSV(t)
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-dc", "t1.salary > t2.salary & t1.rate < t2.rate",
		"-mode", "clean", "-parallel-repair", "-workers", "4",
		"-trace", tracePath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace written to") {
		t.Errorf("missing trace confirmation:\n%s", out.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChromeTrace(data); err != nil {
		t.Fatalf("emitted trace is invalid: %v", err)
	}

	// The trace must carry the whole run: engine stages, plan compilation,
	// detection pipelines, repair phases, rounds — and per-worker tracks.
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	cats := map[string]bool{}
	workerTracks := map[int]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			cats[ev.Cat] = true
			if ev.Cat == "task" && ev.Tid > 0 {
				workerTracks[ev.Tid] = true
			}
		}
	}
	for _, want := range []string{"run", "stage", "task", "plan", "pipeline", "repair", "round"} {
		if !cats[want] {
			t.Errorf("trace has no %q spans (cats: %v)", want, cats)
		}
	}
	if len(workerTracks) < 2 {
		t.Errorf("want task events on >=2 worker tracks, got %v", workerTracks)
	}
}

// TestTraceFlagDetectMode: tracing must work without the cleansing loop
// too (no round/repair spans, still valid JSON).
func TestTraceFlagDetectMode(t *testing.T) {
	input := writeTaxCSV(t)
	tracePath := filepath.Join(t.TempDir(), "detect.json")
	var out bytes.Buffer
	err := run([]string{
		"-input", input, "-schema", taxSchema,
		"-fd", "zipcode -> city",
		"-mode", "detect", "-trace", tracePath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChromeTrace(data); err != nil {
		t.Fatalf("emitted trace is invalid: %v", err)
	}
}
