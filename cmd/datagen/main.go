// Command datagen generates the evaluation datasets of Section 6.1 as CSV
// files, with the paper's error models and optional ground truth output.
//
// Example:
//
//	datagen -dataset taxa -rows 100000 -error 0.1 -out taxa.csv -clean-out taxa_clean.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"bigdansing/internal/datagen"
	"bigdansing/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "taxa", "taxa | taxb | tpch | customer1 | customer2 | ncvoter | hai")
		rows     = fs.Int("rows", 10000, "row count (base customers for customer1/2)")
		errRate  = fs.Float64("error", 0.1, "error / duplicate rate")
		seed     = fs.Int64("seed", 1, "generator seed")
		out      = fs.String("out", "", "output CSV (required)")
		cleanOut = fs.String("clean-out", "", "optional CSV for the ground-truth clean instance")
		header   = fs.Bool("header", true, "write a header row")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}

	var tr *datagen.Truth
	switch *dataset {
	case "taxa":
		tr = datagen.TaxA(*rows, *errRate, *seed)
	case "taxb":
		tr = datagen.TaxB(*rows, *errRate, *seed)
	case "tpch":
		tr = datagen.TPCH(*rows, *errRate, *seed)
	case "customer1":
		tr = datagen.Customers("customer1", *rows, 3, *errRate, *seed)
	case "customer2":
		tr = datagen.Customers("customer2", *rows, 5, *errRate, *seed)
	case "ncvoter":
		tr = datagen.NCVoter(*rows, *errRate, *seed)
	case "hai":
		tr = datagen.HAI(*rows, *errRate, *seed)
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}

	if err := model.WriteCSVFile(*out, tr.Dirty, *header); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s (%d injected errors, %d duplicate pairs)\n",
		tr.Dirty.Len(), *out, len(tr.Errors), len(tr.DupPairs))
	if *cleanOut != "" {
		if err := model.WriteCSVFile(*cleanOut, tr.Clean, *header); err != nil {
			return err
		}
		fmt.Printf("wrote ground truth to %s\n", *cleanOut)
	}
	return nil
}
