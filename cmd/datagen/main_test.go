package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateEachDataset(t *testing.T) {
	for _, ds := range []string{"taxa", "taxb", "tpch", "customer1", "customer2", "ncvoter", "hai"} {
		dir := t.TempDir()
		out := filepath.Join(dir, ds+".csv")
		clean := filepath.Join(dir, ds+"_clean.csv")
		err := run([]string{
			"-dataset", ds, "-rows", "200", "-error", "0.1", "-seed", "3",
			"-out", out, "-clean-out", clean,
		})
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 100 {
			t.Errorf("%s: only %d lines", ds, len(lines))
		}
		if _, err := os.Stat(clean); err != nil {
			t.Errorf("%s: clean output missing", ds)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-dataset", "taxa"}); err == nil {
		t.Error("missing -out should fail")
	}
	if err := run([]string{"-dataset", "bogus", "-out", filepath.Join(t.TempDir(), "x.csv")}); err == nil {
		t.Error("unknown dataset should fail")
	}
}
