// Dedup: the deduplication scenario of Section 6.5 — a UDF rule (rule φ4
// style) finds duplicate customers by Levenshtein similarity on name and
// phone, blocked by Soundex so the pair space stays small, and reports the
// detected clusters with precision/recall against the injected ground truth.
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/rules"
)

func main() {
	// Generate a customer table: 800 distinct customers, each duplicated
	// 3x exactly, plus 2% near-duplicates with random edits in name/phone.
	truth := datagen.Customers("customer1", 800, 3, 0.02, 42)
	fmt.Printf("customer table: %d rows, %d injected duplicate pairs\n",
		truth.Dirty.Len(), len(truth.DupPairs))

	rule, err := rules.DedupRule(rules.DedupConfig{
		ID:             "phi4",
		NameAttr:       "c_name",
		PhoneAttr:      "c_phone",
		NameThreshold:  0.75,
		PhoneThreshold: 0.7,
		BlockBySoundex: true,
	}, datagen.CustomerSchema())
	if err != nil {
		log.Fatal(err)
	}

	ctx := engine.New(8)
	t0 := time.Now()
	res, err := core.DetectRule(ctx, rule, truth.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	// Each violation is a duplicate pair.
	var pairs [][2]int64
	for _, v := range res.Violations {
		ids := v.TupleIDs()
		if len(ids) == 2 {
			pairs = append(pairs, [2]int64{ids[0], ids[1]})
		}
	}
	q := datagen.DedupQuality(truth, pairs)
	fmt.Printf("detected %d duplicate pairs in %v\n", len(pairs), elapsed.Round(time.Millisecond))
	fmt.Printf("precision: %.3f  recall: %.3f\n", q.Precision, q.Recall)

	// Show a few detected duplicates.
	byID := truth.Dirty.ByID()
	fmt.Println("\nsample duplicates:")
	for i, p := range pairs {
		if i == 5 {
			break
		}
		a := truth.Dirty.Tuples[byID[p[0]]]
		b := truth.Dirty.Tuples[byID[p[1]]]
		fmt.Printf("  %q / %q  (%s vs %s)\n",
			a.Cell(1), b.Cell(1), a.Cell(3), b.Cell(3))
	}

	// Contrast with the Detect-only plan (Figure 12(a)): same UDF without
	// Scope/Block/Iterate — a full cross product.
	t0 = time.Now()
	all, _ := res, err
	_ = all
	stripped := &core.Rule{ID: "phi4/detect-only", Detect: rule.Detect}
	if _, err := core.DetectRule(ctx, stripped, truth.Dirty); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame UDF, Detect-only (no blocking): %v — the five-operator abstraction pays for itself\n",
		time.Since(t0).Round(time.Millisecond))
}
