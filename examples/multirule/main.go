// Multirule: the Table 4 scenario — clean a hospital (HAI) dataset under
// several FDs at once, after minimizing the rule set with the static
// analysis (redundant rules are dropped before planning), and score the
// repair against the ground truth. Repairing one rule's violations can
// surface another's, so the loop takes more than one iteration — exactly
// the behavior Table 4 reports.
//
//	go run ./examples/multirule
package main

import (
	"fmt"
	"log"
	"time"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

func main() {
	// Errors are injected on the attributes the rules cover (columns:
	// state, zip, city, phone), as the paper's per-combination datasets do.
	truth := datagen.HAI(8000, 0.1, 21, 3, 4, 2, 6)
	fmt.Printf("HAI: %d rows, %d corrupted cells\n", truth.Dirty.Len(), len(truth.Errors))

	// Declare the rule set — including a redundant FD and a duplicate that
	// the minimal cover removes before planning.
	specs := []string{
		"zip -> state",              // phi6
		"phone -> zip",              // phi7
		"providerID -> city, phone", // phi8
		"phone -> state",            // implied by phi7 + phi6
		"zip -> state",              // duplicate of phi6
	}
	var fds []*rules.FD
	for i, s := range specs {
		fd, err := rules.ParseFD(fmt.Sprintf("phi%d", i+6), s)
		if err != nil {
			log.Fatal(err)
		}
		fds = append(fds, fd)
	}
	cover := rules.FDMinimalCover(fds)
	fmt.Printf("rule set minimized: %d declared -> %d after minimal cover\n", len(fds), len(cover))
	for _, fd := range cover {
		fmt.Println("  ", fd)
	}

	var ruleSet []*core.Rule
	for _, fd := range cover {
		r, err := fd.Compile(datagen.HAISchema())
		if err != nil {
			log.Fatal(err)
		}
		ruleSet = append(ruleSet, r)
	}

	cleaner, err := cleanse.NewCleaner(engine.New(8), ruleSet,
		cleanse.WithParallelRepair(repair.Options{}),
		cleanse.WithIncremental(), // later iterations only re-detect repaired blocks
	)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := cleaner.Clean(truth.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report()
	fmt.Printf("\ncleansing: %d -> %d violations in %d iterations (%v)\n",
		rep.InitialViolations, rep.RemainingViolations, rep.Iterations,
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("engine: %d stages, %d tasks, %d records shuffled\n",
		rep.Engine.Stages, rep.Engine.Tasks, rep.Engine.RecordsShuffled)

	q := datagen.Evaluate(truth, res.Clean)
	fmt.Printf("repair quality: precision %.3f, recall %.3f (%d updates, %d correct)\n",
		q.Precision, q.Recall, q.Updated, q.Correct)
}
