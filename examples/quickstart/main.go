// Quickstart: the Example 1 walkthrough from the paper — declare an FD and
// a DC over a small tax table, detect the violations, inspect the possible
// fixes, and run the full cleansing loop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

func main() {
	// Table 1 of the paper: tax records with a zipcode->city inconsistency
	// (t2/t4/t6 share zipcode 90210 with different cities) and salary/rate
	// inversions.
	schema := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	data := model.NewRelation("tax", schema)
	add := func(id int64, name string, zip int64, city, state string, salary, rate float64) {
		data.Append(model.NewTuple(id,
			model.S(name), model.I(zip), model.S(city), model.S(state), model.F(salary), model.F(rate)))
	}
	add(1, "Annie", 10011, "NY", "NY", 24000, 15)
	add(2, "Laure", 90210, "LA", "CA", 25000, 10)
	add(3, "John", 60601, "CH", "IL", 40000, 25)
	add(4, "Mark", 90210, "SF", "CA", 88000, 28)
	add(5, "Robert", 68270, "CH", "IL", 15000, 20)
	add(6, "Mary", 90210, "LA", "CA", 81000, 28)

	// Rule φF: a zipcode uniquely determines a city (declarative FD).
	fd, err := rules.ParseFD("phiF", "zipcode -> city")
	if err != nil {
		log.Fatal(err)
	}
	phiF, err := fd.Compile(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Rule φD: a higher salary must not pay a lower rate (declarative DC,
	// compiled to an OCJoin plan because its predicates are inequalities).
	dc, err := rules.ParseDC("phiD", "t1.rate > t2.rate & t1.salary < t2.salary")
	if err != nil {
		log.Fatal(err)
	}
	phiD, err := dc.Compile(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Detection: plan, optimize, execute. EXPLAIN shows the chosen
	// physical operators (PBlock+UCrossProduct for the FD, OCJoin for the DC).
	ctx := engine.New(4)
	lp, err := core.PlanRules([]*core.Rule{phiF, phiD}, data)
	if err != nil {
		log.Fatal(err)
	}
	pp, err := core.NewPlanner().Plan(lp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pp.Explain())

	res, err := core.RunPlanSpark(ctx, pp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetected %d violations:\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println(" ", v)
	}
	fmt.Println("\npossible fixes:")
	for _, fs := range res.FixSets {
		for _, f := range fs.Fixes {
			fmt.Println(" ", f)
		}
	}

	// Full cleansing: iterate detection and repair until clean.
	cleaner, err := cleanse.NewCleaner(ctx, []*core.Rule{phiF},
		cleanse.WithParallelRepair(repair.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	result, err := cleaner.Clean(data)
	if err != nil {
		log.Fatal(err)
	}
	rep := result.Report()
	fmt.Printf("\ncleansing phiF: %d violations -> %d in %d iteration(s)\n",
		rep.InitialViolations, rep.RemainingViolations, rep.Iterations)
	fmt.Println("repaired tuples:")
	for _, t := range result.Clean.Tuples {
		fmt.Println(" ", t)
	}
}
