// RDF: the Appendix C scenario — cleanse an RDF graph of students,
// advisors and universities under the rule "two students advised by the
// same professor must be in the same university". Triples are pivoted into
// per-student tuples, the rule runs as a blocked UDF, and the repair
// equates the universities.
//
//	go run ./examples/rdf
package main

import (
	"fmt"
	"log"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/rdf"
	"bigdansing/internal/repair"
)

const graph = `
John    student_in   MIT .
Sally   student_in   UCB .
Bob     student_in   MIT .
Alice   student_in   CMU .
Carol   student_in   CMU .
John    advised_by   William .
Sally   advised_by   William .
Bob     advised_by   William .
Alice   advised_by   Grace .
Carol   advised_by   Grace .
William professor_in MIT .
Grace   professor_in CMU .
`

func main() {
	triples, err := rdf.ParseString(graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d triples\n", len(triples))

	// Scope + pivot: keep only student_in/advised_by and reshape to one
	// tuple per student (Figure 13's plan prefix).
	students := rdf.Pivot("students", triples, "student_in", "advised_by")
	fmt.Println("pivoted student tuples:")
	for _, t := range students.Tuples {
		fmt.Printf("  %s: university=%s advisor=%s\n", t.Cell(0), t.Cell(1), t.Cell(2))
	}

	rule := &core.Rule{
		ID:        "sameAdvisorSameUniv",
		Block:     func(t model.Tuple) model.Value { return t.Cell(2) }, // group by advisor
		Symmetric: true,
		Detect: func(it core.Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if l.Cell(2).Equal(r.Cell(2)) && !l.Cell(1).Equal(r.Cell(1)) {
				return []model.Violation{model.NewViolation("sameAdvisorSameUniv",
					model.NewCell(l.ID, 1, "student_in", l.Cell(1)),
					model.NewCell(r.ID, 1, "student_in", r.Cell(1)))}
			}
			return nil
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
		},
	}

	ctx := engine.New(4)
	res, err := core.DetectRule(ctx, rule, students)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nviolations (students sharing an advisor across universities): %d\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println(" ", v)
	}

	cleaner, err := cleanse.NewCleaner(ctx, []*core.Rule{rule}, cleanse.WithParallelRepair(repair.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	result, err := cleaner.Clean(students)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter repair (%d iteration(s)):\n", result.Report().Iterations)
	for _, t := range result.Clean.Tuples {
		fmt.Printf("  %s: university=%s advisor=%s\n", t.Cell(0), t.Cell(1), t.Cell(2))
	}
	fmt.Println("\nthe repaired tuples translate back to an updated RDF graph:")
	for _, tr := range rdf.FromPivoted(result.Clean) {
		fmt.Printf("  %s\n", tr)
	}
}
