// Storage: the Appendix F data storage manager — upload a dataset in
// columnar binary layout with heterogeneous replicas (one partitioned per
// blocking key), then detect violations with the Block operator pushed
// down to the storage layer, so no partition needs data from another.
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/rules"
	"bigdansing/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "bigdansing-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := storage.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Generate HAI-style hospital data and upload three replicas, each
	// content-partitioned on a different attribute — the heterogeneous
	// replication of Appendix F, letting different rules each find a
	// replica partitioned on their blocking key.
	truth := datagen.HAI(20000, 0.1, 11)
	for _, attr := range []string{"zip", "phone", ""} {
		plan, err := st.Upload(truth.Dirty, attr, 16)
		if err != nil {
			log.Fatal(err)
		}
		name := attr
		if name == "" {
			name = "(round robin)"
		}
		fmt.Printf("uploaded replica partitioned on %-14s %d rows, %d partitions\n",
			name, plan.Rows, plan.Partitions)
	}
	reps, _ := st.Replicas("hai")
	fmt.Printf("replicas on disk: %v\n\n", reps)

	// Scope pushdown: read just two columns.
	cols, err := st.Read("hai", "zip", storage.ReadOptions{Columns: []string{"zip", "state"}, Partition: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scope pushdown read: %d rows x %d columns (schema: %s)\n\n",
		cols.Len(), cols.Schema.Len(), cols.Schema)

	// Block pushdown: phi6 (zip -> state) blocks on zip; the zip replica
	// lets every partition be cleaned independently.
	fd, err := rules.ParseFD("phi6", "zip -> state")
	if err != nil {
		log.Fatal(err)
	}
	rule, err := fd.Compile(datagen.HAISchema())
	if err != nil {
		log.Fatal(err)
	}
	ctx := engine.New(8)

	t0 := time.Now()
	res, pushed, err := core.DetectRuleFromStore(ctx, st, "hai", rule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection with Block pushdown=%v: %d violations in %v\n",
		pushed, len(res.Violations), time.Since(t0).Round(time.Millisecond))

	// Compare with reading the whole dataset and shuffling.
	full, err := st.Read("hai", "", storage.ReadOptions{Partition: -1})
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	plain, err := core.DetectRule(ctx, rule, full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection with full read + shuffle:  %d violations in %v\n",
		len(plain.Violations), time.Since(t0).Round(time.Millisecond))
	if len(plain.Violations) != len(res.Violations) {
		log.Fatalf("pushdown and plain detection disagree: %d vs %d",
			len(res.Violations), len(plain.Violations))
	}
	fmt.Println("\nboth paths found the same violations; the pushdown avoided the global shuffle")
}
