// Taxdc: inequality denial constraints at scale — generate a TaxB dataset
// with numeric rate errors, detect φ2's violations through the OCJoin
// enhancer, compare against a cross-product plan, and repair with the
// hypergraph algorithm, measuring distance to the ground truth (the
// Table 4 methodology).
//
//	go run ./examples/taxdc
package main

import (
	"fmt"
	"log"
	"time"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/join"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

func main() {
	truth := datagen.TaxB(3000, 0.05, 7)
	fmt.Printf("TaxB: %d rows, %d corrupted rate cells\n", truth.Dirty.Len(), len(truth.Errors))

	dc, err := rules.ParseDC("phi2", "t1.salary > t2.salary & t1.rate < t2.rate")
	if err != nil {
		log.Fatal(err)
	}
	rule, err := dc.Compile(datagen.TaxSchema())
	if err != nil {
		log.Fatal(err)
	}

	ctx := engine.New(8)

	// Detection through OCJoin (the planner picks it automatically because
	// every predicate is an ordering comparison).
	t0 := time.Now()
	res, err := core.DetectRule(ctx, rule, truth.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OCJoin detection: %d violations in %v\n",
		len(res.Violations), time.Since(t0).Round(time.Millisecond))

	// The same pairs through a raw cross product, for contrast (Fig 11c).
	conds := []join.Cond{
		{LeftCol: 4, Op: model.OpGT, RightCol: 4},
		{LeftCol: 5, Op: model.OpLT, RightCol: 5},
	}
	d := engine.Parallelize(ctx, truth.Dirty.Tuples, 0)
	t0 = time.Now()
	matched := engine.Filter(join.CrossProduct(d), func(p engine.PairOf[model.Tuple]) bool {
		return conds[0].Eval(p.Left, p.Right) && conds[1].Eval(p.Left, p.Right)
	})
	n, err := matched.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CrossProduct detection: %d pairs in %v\n", n, time.Since(t0).Round(time.Millisecond))

	// Repair with the hypergraph algorithm inside the parallel black-box
	// wrapper, then score against the ground truth.
	cleaner, err := cleanse.NewCleaner(ctx, []*core.Rule{rule},
		cleanse.WithAlgorithm(&repair.Hypergraph{}),
		cleanse.WithParallelRepair(repair.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	result, err := cleaner.Clean(truth.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	rep := result.Report()
	fmt.Printf("\nhypergraph repair: %d -> %d violations in %d iteration(s), %v\n",
		rep.InitialViolations, rep.RemainingViolations, rep.Iterations,
		time.Since(t0).Round(time.Millisecond))
	q := datagen.Evaluate(truth, result.Clean)
	fmt.Printf("distance to ground truth: avg %.3f, total %.1f over %d injected errors\n",
		q.AvgDistance, q.TotalDistance, len(truth.Errors))
}
