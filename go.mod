module bigdansing

go 1.24
