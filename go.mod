module bigdansing

go 1.22
