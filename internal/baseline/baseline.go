// Package baseline implements the comparison systems of the evaluation
// (Section 6.1): a NADEEF-like single-node detector, SQL-engine proxies
// (PostgreSQL-, Spark-SQL- and Shark-like) that detect violations through
// self joins, and the "Detect-only" configuration of Figure 12(a) that
// strips BigDansing's Scope/Block/Iterate operators.
//
// The proxies reproduce the cost *profiles* the paper attributes to each
// system rather than the systems themselves: NADEEF issues one
// query-shaped check per candidate pair on a single thread; SQL engines
// read the input twice for a self join and emit duplicate violations (both
// orientations); engines without inequality-join support fall back to a
// cross product with a post-selection.
package baseline

import (
	"fmt"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// NadeefQueryLatency simulates the client/DBMS round trip of one NADEEF
// query. NADEEF detects violations by issuing thousands of SQL queries to
// the underlying DBMS (Section 6.2); since this reproduction has no
// out-of-process DBMS, each issued query charges this latency. One query is
// issued per block (blocked rules) or per cursor fetch of 1000 candidates
// (unblocked rules). Tests set it to 0.
var NadeefQueryLatency = time.Millisecond

// Result mirrors core.DetectResult for baseline runs. Violations is the
// raw emitted list — deliberately *not* deduplicated for the SQL proxies,
// which the paper notes emit duplicates from self joins.
type Result struct {
	Violations []model.Violation
}

// NadeefDetect emulates NADEEF's detection: a single-threaded scan over
// candidate tuple pairs where every candidate is checked through a
// query-shaped round trip (NADEEF "issues thousands of SQL queries to the
// underlying DBMS", Section 6.2). Blocking is honored when the rule defines
// it — NADEEF supports blocks — but pairs are enumerated and checked one at
// a time with per-check query formatting overhead.
func NadeefDetect(rule *core.Rule, rel *model.Relation) (*Result, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	pairsSinceQuery := 0
	roundTrip := func() {
		if NadeefQueryLatency > 0 {
			time.Sleep(NadeefQueryLatency)
		}
	}
	check := func(a, b model.Tuple) {
		// NADEEF builds a per-candidate statement client-side; the round
		// trip itself is charged per cursor fetch of 1000 candidates.
		q := fmt.Sprintf("SELECT * FROM %s WHERE t1=%d AND t2=%d /*rule %s*/",
			rel.Name, a.ID, b.ID, rule.ID)
		_ = q
		pairsSinceQuery++
		if pairsSinceQuery >= 1000 {
			pairsSinceQuery = 0
			roundTrip()
		}
		res.Violations = append(res.Violations, rule.Detect(core.PairItem(a, b))...)
	}
	scoped := rel.Tuples
	if rule.Scope != nil {
		scoped = scoped[:0:0]
		for _, t := range rel.Tuples {
			scoped = append(scoped, rule.Scope(t)...)
		}
	}
	if rule.Unary {
		for _, t := range scoped {
			res.Violations = append(res.Violations, rule.Detect(core.Single(t))...)
		}
		return res, nil
	}
	if rule.Block != nil {
		blocks := map[model.ValueKey][]model.Tuple{}
		for _, t := range scoped {
			k := rule.Block(t).MapKey()
			blocks[k] = append(blocks[k], t)
		}
		for _, us := range blocks {
			roundTrip() // one query fetches each block's candidates
			for i := 0; i < len(us); i++ {
				for j := i + 1; j < len(us); j++ {
					check(us[i], us[j])
					if !rule.Symmetric {
						check(us[j], us[i])
					}
				}
			}
		}
		return res, nil
	}
	// No blocking (inequality DCs, UDFs without Block): full pair space.
	for i := 0; i < len(scoped); i++ {
		for j := 0; j < len(scoped); j++ {
			if i == j {
				continue
			}
			if rule.Symmetric && j < i {
				continue
			}
			check(scoped[i], scoped[j])
		}
	}
	return res, nil
}

// SQLMode selects which engine's cost profile a SQL proxy run follows.
type SQLMode int

const (
	// Postgres: single-threaded; hash self-join for equality rules,
	// nested-loop cross product with post-selection for inequality rules.
	Postgres SQLMode = iota
	// SparkSQL: like Postgres but the probe side runs in parallel.
	SparkSQL
	// Shark: parallel, but joins are processed inefficiently — every join
	// becomes a cross product with a post-selection (Section 6.3 observes
	// "Shark does not process joins efficiently").
	Shark
)

// String names the mode.
func (m SQLMode) String() string {
	switch m {
	case Postgres:
		return "postgresql"
	case SparkSQL:
		return "spark-sql"
	case Shark:
		return "shark"
	default:
		return "sql?"
	}
}

// SQLDetect emulates detecting a rule's violations with a SQL self join:
// the input is scanned twice (build and probe sides are materialized
// separately, the double-read the paper charges to SQL engines), equality
// rules join on the blocking key, and the emitted violations include both
// orientations (SQL engines "generate duplicate violations ... when
// comparing tuples using self-joins").
func SQLDetect(ctx *engine.Context, mode SQLMode, rule *core.Rule, rel *model.Relation) (*Result, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Two scans: build side and probe side are separate copies.
	scan := func() []model.Tuple {
		out := make([]model.Tuple, 0, len(rel.Tuples))
		if rule.Scope != nil {
			for _, t := range rel.Tuples {
				out = append(out, rule.Scope(t)...)
			}
			return out
		}
		return append(out, rel.Tuples...)
	}
	build := scan()
	probe := scan()

	detectPair := func(a, b model.Tuple) []model.Violation {
		return rule.Detect(core.PairItem(a, b))
	}

	if rule.Unary {
		for _, t := range build {
			res.Violations = append(res.Violations, rule.Detect(core.Single(t))...)
		}
		return res, nil
	}

	useHashJoin := rule.Block != nil && mode != Shark
	switch {
	case useHashJoin:
		// Hash self join on the blocking key.
		idx := map[model.ValueKey][]model.Tuple{}
		for _, t := range build {
			k := rule.Block(t).MapKey()
			idx[k] = append(idx[k], t)
		}
		probeOne := func(t model.Tuple) []model.Violation {
			var out []model.Violation
			for _, m := range idx[rule.Block(t).MapKey()] {
				if m.ID == t.ID {
					continue
				}
				out = append(out, detectPair(t, m)...) // both orientations reached over the probe scan
			}
			return out
		}
		if mode == SparkSQL {
			d := engine.Parallelize(ctx, probe, 0)
			vio := engine.FlatMap(d, probeOne)
			vs, err := vio.Collect()
			if err != nil {
				return nil, err
			}
			res.Violations = vs
		} else {
			for _, t := range probe {
				res.Violations = append(res.Violations, probeOne(t)...)
			}
		}
	default:
		// Cross product + post-selection (inequality rules everywhere;
		// every rule on Shark). The equality predicate, when present, is
		// evaluated per pair over precomputed key columns — the
		// post-selection of a plan without a join, not a repeated UDF call.
		var buildKeys, probeKeys []model.ValueKey
		if rule.Block != nil {
			buildKeys = make([]model.ValueKey, len(build))
			for i, t := range build {
				buildKeys[i] = rule.Block(t).MapKey()
			}
			probeKeys = make([]model.ValueKey, len(probe))
			for i, t := range probe {
				probeKeys[i] = rule.Block(t).MapKey()
			}
		}
		type indexed struct {
			pos int
			t   model.Tuple
		}
		probeOne := func(p indexed) []model.Violation {
			var out []model.Violation
			for i, m := range build {
				if m.ID == p.t.ID {
					continue
				}
				// A cross join materializes the concatenated output row
				// before the WHERE clause runs — the cost that makes
				// cartesian-based plans collapse at scale.
				row := make([]model.Value, 0, len(p.t.Cells)+len(m.Cells))
				row = append(row, p.t.Cells...)
				row = append(row, m.Cells...)
				_ = row
				if buildKeys != nil && probeKeys[p.pos] != buildKeys[i] {
					continue // post-selection on the equality predicate
				}
				out = append(out, detectPair(p.t, m)...)
			}
			return out
		}
		idxProbe := make([]indexed, len(probe))
		for i, t := range probe {
			idxProbe[i] = indexed{pos: i, t: t}
		}
		if mode == Postgres {
			for _, p := range idxProbe {
				res.Violations = append(res.Violations, probeOne(p)...)
			}
		} else {
			d := engine.Parallelize(ctx, idxProbe, 0)
			vio := engine.FlatMap(d, probeOne)
			vs, err := vio.Collect()
			if err != nil {
				return nil, err
			}
			res.Violations = vs
		}
	}
	return res, nil
}

// DetectOnly runs a rule through BigDansing with only its Detect operator,
// the ablation of Figure 12(a): Scope, Block, Iterate and the enhancer
// hints are stripped, so the planner falls back to the full cross product.
func DetectOnly(ctx *engine.Context, rule *core.Rule, rel *model.Relation) (*core.DetectResult, error) {
	stripped := &core.Rule{
		ID:     rule.ID + "/detect-only",
		Detect: rule.Detect,
		GenFix: rule.GenFix,
	}
	return core.DetectRule(ctx, stripped, rel)
}

// UniqueViolations counts distinct violations in a baseline result (SQL
// proxies emit duplicates; this is what comparing against BigDansing's
// deduplicated output requires).
func (r *Result) UniqueViolations() int {
	seen := map[model.ViolationKey]bool{}
	for _, v := range r.Violations {
		seen[v.MapKey()] = true
	}
	return len(seen)
}
