package baseline

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/rules"
)

func fdRule(t *testing.T) *core.Rule {
	t.Helper()
	fd, err := rules.ParseFD("phi1", "zipcode -> city")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := fd.Compile(datagen.TaxSchema())
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

func dcRule(t *testing.T) *core.Rule {
	t.Helper()
	dc, err := rules.ParseDC("phi2", "t1.rate > t2.rate & t1.salary < t2.salary")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := dc.Compile(datagen.TaxSchema())
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

func TestAllBaselinesAgreeWithBigDansingOnFD(t *testing.T) {
	NadeefQueryLatency = 0
	tr := datagen.TaxA(400, 0.1, 11)
	ctx := engine.New(4)
	rule := fdRule(t)

	bd, err := core.DetectRule(ctx, rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want := len(bd.Violations)
	if want == 0 {
		t.Fatal("expected violations in dirty TaxA")
	}

	nadeef, err := NadeefDetect(rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got := nadeef.UniqueViolations(); got != want {
		t.Errorf("NADEEF unique violations = %d, BigDansing = %d", got, want)
	}

	for _, mode := range []SQLMode{Postgres, SparkSQL, Shark} {
		sq, err := SQLDetect(ctx, mode, rule, tr.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		if got := sq.UniqueViolations(); got != want {
			t.Errorf("%s unique violations = %d, BigDansing = %d", mode, got, want)
		}
		// SQL self joins reach each pair in both orientations: raw count
		// doubles (the duplicate-violation effect of Section 6.2).
		if len(sq.Violations) != 2*want {
			t.Errorf("%s raw violations = %d, want %d (duplicates)", mode, len(sq.Violations), 2*want)
		}
	}
}

func TestBaselinesAgreeOnInequalityDC(t *testing.T) {
	NadeefQueryLatency = 0
	tr := datagen.TaxB(150, 0.1, 12)
	ctx := engine.New(4)
	rule := dcRule(t)

	bd, err := core.DetectRule(ctx, rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want := len(bd.Violations)
	if want == 0 {
		t.Fatal("expected phi2 violations in dirty TaxB")
	}

	nadeef, err := NadeefDetect(rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got := nadeef.UniqueViolations(); got != want {
		t.Errorf("NADEEF = %d, BigDansing = %d", got, want)
	}
	for _, mode := range []SQLMode{Postgres, SparkSQL, Shark} {
		sq, err := SQLDetect(ctx, mode, rule, tr.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		if got := sq.UniqueViolations(); got != want {
			t.Errorf("%s = %d, BigDansing = %d", mode, got, want)
		}
	}
}

func TestDetectOnlyMatchesFullAPIViolations(t *testing.T) {
	tr := datagen.TaxA(120, 0.1, 13)
	ctx := engine.New(4)
	rule := fdRule(t)
	full, err := core.DetectRule(ctx, rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	only, err := DetectOnly(ctx, rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(only.Violations) != len(full.Violations) {
		t.Errorf("detect-only = %d, full = %d", len(only.Violations), len(full.Violations))
	}
}

func TestUnaryRuleBaselines(t *testing.T) {
	NadeefQueryLatency = 0
	tr := datagen.TaxA(100, 0, 14)
	ctx := engine.New(2)
	dc, _ := rules.ParseDC("cap", "t1.salary > 150000")
	rule, err := dc.Compile(datagen.TaxSchema())
	if err != nil {
		t.Fatal(err)
	}
	bd, _ := core.DetectRule(ctx, rule, tr.Dirty)
	nd, err := NadeefDetect(rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := SQLDetect(ctx, Postgres, rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if nd.UniqueViolations() != len(bd.Violations) || sq.UniqueViolations() != len(bd.Violations) {
		t.Errorf("unary counts: nadeef %d, sql %d, bigdansing %d",
			nd.UniqueViolations(), sq.UniqueViolations(), len(bd.Violations))
	}
}
