package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/rules"
)

// randomRelation builds a random relation with a few low-cardinality string
// columns and numeric columns, the shape that stresses blocking and joins.
func randomRelation(r *rand.Rand, rows int) *model.Relation {
	s := model.MustParseSchema("k1,k2,v,num1:float,num2:float")
	rel := model.NewRelation("rand", s)
	for i := 0; i < rows; i++ {
		rel.Append(model.NewTuple(int64(i),
			model.S(fmt.Sprintf("a%d", r.Intn(5))),
			model.S(fmt.Sprintf("b%d", r.Intn(4))),
			model.S(fmt.Sprintf("v%d", r.Intn(6))),
			model.F(float64(r.Intn(30))),
			model.F(float64(r.Intn(30))),
		))
	}
	return rel
}

// TestFDDetectionMatchesOracleOnRandomData cross-checks the planned,
// parallel FD detection against the independent NADEEF-style nested-loop
// implementation on random instances.
func TestFDDetectionMatchesOracleOnRandomData(t *testing.T) {
	NadeefQueryLatency = 0
	ctx := engine.New(4)
	f := func(seed int64, rowsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, int(rowsRaw%60)+2)
		fd, err := rules.ParseFD("fd", "k1 -> v")
		if err != nil {
			return false
		}
		rule, err := fd.Compile(rel.Schema)
		if err != nil {
			return false
		}
		bd, err := core.DetectRule(ctx, rule, rel)
		if err != nil {
			return false
		}
		oracle, err := NadeefDetect(rule, rel)
		if err != nil {
			return false
		}
		return len(bd.Violations) == oracle.UniqueViolations()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDCDetectionMatchesOracleOnRandomData does the same for random denial
// constraints covering the three plan shapes (blocking, OCJoin, cross
// product).
func TestDCDetectionMatchesOracleOnRandomData(t *testing.T) {
	NadeefQueryLatency = 0
	ctx := engine.New(4)
	specs := []string{
		"t1.k1 = t2.k1 & t1.v != t2.v",                 // blocking
		"t1.num1 > t2.num1 & t1.num2 < t2.num2",        // OCJoin
		"t1.v != t2.v & t1.k2 != t2.k2",                // cross product (symmetric)
		"t1.k1 = t2.k2 & t1.v != t2.v",                 // CoBlock (different attrs)
		"t1.num1 >= t2.num2",                           // single ordering, cross columns
		"t1.k1 = t2.k1 & t1.num1 > t2.num1",            // blocking + ordering post-filter
		"t1.num1 > 20",                                 // unary
		"t1.k1 = t2.k1 & t1.v != 'v0' & t2.num1 <= 10", // blocking + constants
	}
	f := func(seed int64, rowsRaw, specRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, int(rowsRaw%40)+2)
		spec := specs[int(specRaw)%len(specs)]
		dcRule, err := rules.ParseDC("dc", spec)
		if err != nil {
			return false
		}
		rule, err := dcRule.Compile(rel.Schema)
		if err != nil {
			return false
		}
		bd, err := core.DetectRule(ctx, rule, rel)
		if err != nil {
			return false
		}
		oracle, err := NadeefDetect(rule, rel)
		if err != nil {
			return false
		}
		if len(bd.Violations) != oracle.UniqueViolations() {
			t.Logf("spec %q seed %d: bigdansing %d vs oracle %d",
				spec, seed, len(bd.Violations), oracle.UniqueViolations())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSQLProxiesMatchOracleOnRandomData checks every SQL mode agrees with
// the nested-loop oracle after dedup.
func TestSQLProxiesMatchOracleOnRandomData(t *testing.T) {
	NadeefQueryLatency = 0
	ctx := engine.New(4)
	f := func(seed int64, rowsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, int(rowsRaw%30)+2)
		dcRule, err := rules.ParseDC("dc", "t1.k1 = t2.k1 & t1.v != t2.v")
		if err != nil {
			return false
		}
		rule, err := dcRule.Compile(rel.Schema)
		if err != nil {
			return false
		}
		oracle, err := NadeefDetect(rule, rel)
		if err != nil {
			return false
		}
		want := oracle.UniqueViolations()
		for _, mode := range []SQLMode{Postgres, SparkSQL, Shark} {
			res, err := SQLDetect(ctx, mode, rule, rel)
			if err != nil || res.UniqueViolations() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
