// Package cleanse orchestrates the full BigDansing pipeline of Figure 1:
// the RuleEngine detects violations and possible fixes, the repair
// algorithm chooses updates, the updates are applied, and the loop repeats
// until a repair (an instance with no violations, or only violations
// without possible fixes) is reached. Termination is guaranteed by the
// freezing device of Section 2.2: after a configurable number of updates, a
// cell is pinned and future violations that can only be fixed through it
// are abandoned.
package cleanse

import (
	"fmt"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// Cleaner couples a rule set with a repair algorithm over one dataflow
// context.
type Cleaner struct {
	// Ctx is the dataflow context detection runs on.
	Ctx *engine.Context
	// Rules are detected together (one consolidated plan).
	Rules []*core.Rule
	// Algo is the repair algorithm; nil defaults to the equivalence-class
	// algorithm.
	Algo repair.Algorithm
	// Parallel uses the black-box parallel repair of Section 5.1; false
	// runs the algorithm centralized over all violations, the baseline of
	// Figure 12(b).
	Parallel bool
	// RepairOpts configure the parallel repair.
	RepairOpts repair.Options
	// MaxIterations bounds the detect-repair loop (<=0: 10).
	MaxIterations int
	// FreezeAfter pins a cell after this many updates (<=0: 3).
	FreezeAfter int
	// Incremental re-detects only the blocks touched by the previous
	// iteration's repairs (rules that do not support block-incremental
	// maintenance re-run in full). The result is identical; later
	// iterations get cheaper.
	Incremental bool
	// Observer, when set, is attached to the dataflow context on the first
	// Clean so one sink (e.g. a trace.Tracer) sees the whole run: engine
	// stages, plan compilation, detection pipelines, repair phases and the
	// detect-repair rounds. Equivalent to building the Context with
	// engine.Config.Observer.
	Observer engine.Observer

	observerAttached bool
}

// Option configures a Cleaner built with NewCleaner.
type Option func(*Cleaner)

// WithAlgorithm selects the repair algorithm. nil keeps the default
// equivalence-class algorithm.
func WithAlgorithm(a repair.Algorithm) Option {
	return func(c *Cleaner) { c.Algo = a }
}

// WithParallelRepair enables the black-box parallel repair of Section 5.1
// with the given options. The zero Options value uses the repair package
// defaults.
func WithParallelRepair(opts repair.Options) Option {
	return func(c *Cleaner) {
		c.Parallel = true
		c.RepairOpts = opts
	}
}

// WithIncremental re-detects only the blocks touched by the previous
// iteration's repairs on rules that support block-incremental maintenance.
func WithIncremental() Option {
	return func(c *Cleaner) { c.Incremental = true }
}

// WithMaxIterations bounds the detect-repair loop. Values <= 0 keep the
// default of 10.
func WithMaxIterations(n int) Option {
	return func(c *Cleaner) { c.MaxIterations = n }
}

// WithFreezeAfter pins a cell after n updates (the termination device of
// Section 2.2). Values <= 0 keep the default of 3.
func WithFreezeAfter(n int) Option {
	return func(c *Cleaner) { c.FreezeAfter = n }
}

// WithObserver routes the whole run's execution events — engine stages,
// plan compilation, detection pipelines, repair phases, detect-repair
// rounds — to o (for example a trace.Tracer). The context's own Stats
// keeps counting alongside.
func WithObserver(o engine.Observer) Option {
	return func(c *Cleaner) { c.Observer = o }
}

// NewCleaner builds a Cleaner over ctx and rules, applying any options. It
// is the preferred construction path; the Cleaner struct remains exported
// for callers that need to set fields directly.
func NewCleaner(ctx *engine.Context, rules []*core.Rule, opts ...Option) *Cleaner {
	c := &Cleaner{Ctx: ctx, Rules: rules}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Result reports one cleansing run.
type Result struct {
	// Clean is the repaired instance (the input is not modified).
	Clean *model.Relation
	// Iterations is the number of detect-repair rounds executed.
	Iterations int
	// InitialViolations and RemainingViolations bracket the run.
	InitialViolations   int
	RemainingViolations int
	// FrozenCells counts cells pinned by the termination device.
	FrozenCells int
	// TotalAssignments counts applied updates across iterations.
	TotalAssignments int
	// DetectTime and RepairTime split the wall time (Figure 8(b)).
	DetectTime time.Duration
	RepairTime time.Duration
	// Reports holds the per-iteration parallel repair reports.
	Reports []*repair.Report

	// engineSnap is the dataflow snapshot taken when Clean returned, so
	// Report() can hand callers the engine-side numbers without them
	// reaching into the Context.
	engineSnap engine.Snapshot
}

// Report is the one-struct summary of a cleansing run: what the loop did,
// what the dataflow engine did underneath, and what each parallel repair
// round decided. It replaces callers stitching together Result fields,
// engine.Stats getters and repair reports across three packages.
type Report struct {
	// Iterations is the number of detect-repair rounds executed.
	Iterations int
	// InitialViolations and RemainingViolations bracket the run.
	InitialViolations   int
	RemainingViolations int
	// UpdatesApplied counts cell updates applied across iterations.
	UpdatesApplied int
	// FrozenCells counts cells pinned by the termination device.
	FrozenCells int
	// DetectTime and RepairTime split the wall time (Figure 8(b)).
	DetectTime time.Duration
	RepairTime time.Duration
	// Engine is the dataflow execution snapshot (stages, shuffle volume,
	// spill activity) at the end of the run.
	Engine engine.Snapshot
	// RepairRounds holds the per-iteration parallel repair reports
	// (components, splits, conflicts, assignments); empty for the
	// centralized repair path.
	RepairRounds []*repair.Report
}

// Report summarizes the run as one struct.
func (r *Result) Report() Report {
	return Report{
		Iterations:          r.Iterations,
		InitialViolations:   r.InitialViolations,
		RemainingViolations: r.RemainingViolations,
		UpdatesApplied:      r.TotalAssignments,
		FrozenCells:         r.FrozenCells,
		DetectTime:          r.DetectTime,
		RepairTime:          r.RepairTime,
		Engine:              r.engineSnap,
		RepairRounds:        r.Reports,
	}
}

// Clean runs the iterative cleansing process on a copy of rel.
func (c *Cleaner) Clean(rel *model.Relation) (*Result, error) {
	if c.Observer != nil && !c.observerAttached {
		c.Ctx.AttachObserver(c.Observer)
		c.observerAttached = true
	}
	res, err := c.clean(rel)
	if err != nil {
		return nil, err
	}
	res.engineSnap = c.Ctx.Stats().Snapshot()
	return res, nil
}

// clean is the detect-repair loop behind Clean.
func (c *Cleaner) clean(rel *model.Relation) (*Result, error) {
	if len(c.Rules) == 0 {
		return nil, fmt.Errorf("cleanse: no rules")
	}
	algo := c.Algo
	if algo == nil {
		algo = &repair.EquivalenceClass{}
	}
	maxIter := c.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}
	freezeAfter := c.FreezeAfter
	if freezeAfter <= 0 {
		freezeAfter = 3
	}

	work := rel.Clone()
	res := &Result{Clean: work}
	frozen := map[model.CellKey]bool{}
	updates := map[model.CellKey]int{}

	var incDet *core.IncrementalDetector
	if c.Incremental {
		d, err := core.NewIncrementalDetector(c.Ctx, c.Rules)
		if err != nil {
			return nil, err
		}
		incDet = d
	}
	var changed []int64 // nil forces a full first pass

	// ropts is the parallel-repair configuration with the run's observer
	// threaded through, so repair phases land in the same span tree.
	obs := c.Ctx.Observer()
	ropts := c.RepairOpts
	if ropts.Observer == nil {
		ropts.Observer = obs
	}

	for iter := 0; iter < maxIter; iter++ {
		// One span per detect-repair round; the closure keeps it closed on
		// every exit path (early convergence, errors).
		rsp := obs.BeginSpan(nil, fmt.Sprintf("round %d", iter+1), engine.SpanRound)
		done, err := func() (bool, error) {
			t0 := time.Now()
			var det *core.DetectResult
			var err error
			if incDet != nil {
				det, err = incDet.Detect(work, changed)
			} else {
				det, err = core.DetectRules(c.Ctx, c.Rules, work)
			}
			if err != nil {
				return false, fmt.Errorf("cleanse: detection (iteration %d): %w", iter+1, err)
			}
			res.DetectTime += time.Since(t0)
			if iter == 0 {
				res.InitialViolations = len(det.Violations)
			}
			res.Iterations = iter + 1
			rsp.Attr(engine.AttrViolations, int64(len(det.Violations)))

			// Drop violations whose every fix touches a frozen cell: they have
			// no usable possible fixes anymore (Section 2.2's stopping rule).
			actionable := det.FixSets[:0:0]
			remaining := 0
			for _, fs := range det.FixSets {
				if len(fs.Fixes) == 0 {
					remaining++ // detection-only violation: reported, not repairable
					continue
				}
				usable := false
				for _, f := range fs.Fixes {
					ok := true
					for _, cell := range f.Cells() {
						if frozen[cell.MapKey()] {
							ok = false
							break
						}
					}
					if ok {
						usable = true
						break
					}
				}
				if usable {
					actionable = append(actionable, fs)
				} else {
					remaining++
				}
			}
			if len(actionable) == 0 {
				res.RemainingViolations = remaining
				res.FrozenCells = len(frozen)
				return true, nil
			}

			t1 := time.Now()
			var assignments []repair.Assignment
			if c.Parallel {
				as, rep, err := repair.RepairParallel(actionable, algo, ropts)
				if err != nil {
					return false, fmt.Errorf("cleanse: parallel repair (iteration %d): %w", iter+1, err)
				}
				assignments = as
				res.Reports = append(res.Reports, rep)
			} else {
				csp := obs.BeginSpan(nil, "repair", engine.SpanRepair)
				as, err := algo.Repair(actionable)
				csp.Attr(engine.AttrAssignments, int64(len(as)))
				csp.End()
				if err != nil {
					return false, fmt.Errorf("cleanse: repair (iteration %d): %w", iter+1, err)
				}
				assignments = as
			}
			res.RepairTime += time.Since(t1)

			applied := repair.Apply(work, assignments, frozen)
			res.TotalAssignments += applied
			rsp.Attr(engine.AttrAssignments, int64(applied))
			changed = changed[:0]
			seenChanged := map[int64]bool{}
			for _, a := range assignments {
				k := a.CellKey()
				if !frozen[k] && !seenChanged[a.TupleID] {
					seenChanged[a.TupleID] = true
					changed = append(changed, a.TupleID)
				}
				if frozen[k] {
					continue
				}
				updates[k]++
				if updates[k] >= freezeAfter {
					frozen[k] = true
				}
			}
			if applied == 0 {
				// The algorithm proposed nothing applicable; freeze the cells
				// of the remaining fixes to guarantee forward progress.
				for _, fs := range actionable {
					for _, f := range fs.Fixes {
						for _, cell := range f.Cells() {
							frozen[cell.MapKey()] = true
						}
					}
				}
			}
			return false, nil
		}()
		rsp.End()
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}

	// Out of iterations: report what is left.
	det, err := core.DetectRules(c.Ctx, c.Rules, work)
	if err != nil {
		return nil, err
	}
	res.RemainingViolations = len(det.Violations)
	res.FrozenCells = len(frozen)
	return res, nil
}
