// Package cleanse orchestrates the full BigDansing pipeline of Figure 1:
// the RuleEngine detects violations and possible fixes, the repair
// algorithm chooses updates, the updates are applied, and the loop repeats
// until a repair (an instance with no violations, or only violations
// without possible fixes) is reached. Termination is guaranteed by the
// freezing device of Section 2.2: after a configurable number of updates, a
// cell is pinned and future violations that can only be fixed through it
// are abandoned.
package cleanse

import (
	"fmt"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// Cleaner couples a rule set with a repair algorithm over one dataflow
// context.
type Cleaner struct {
	// Ctx is the dataflow context detection runs on.
	Ctx *engine.Context
	// Rules are detected together (one consolidated plan).
	Rules []*core.Rule
	// Algo is the repair algorithm; nil defaults to the equivalence-class
	// algorithm.
	Algo repair.Algorithm
	// Parallel uses the black-box parallel repair of Section 5.1; false
	// runs the algorithm centralized over all violations, the baseline of
	// Figure 12(b).
	Parallel bool
	// RepairOpts configure the parallel repair.
	RepairOpts repair.Options
	// MaxIterations bounds the detect-repair loop (<=0: 10).
	MaxIterations int
	// FreezeAfter pins a cell after this many updates (<=0: 3).
	FreezeAfter int
	// Incremental re-detects only the blocks touched by the previous
	// iteration's repairs (rules that do not support block-incremental
	// maintenance re-run in full). The result is identical; later
	// iterations get cheaper.
	Incremental bool
}

// Option configures a Cleaner built with NewCleaner.
type Option func(*Cleaner)

// WithAlgorithm selects the repair algorithm. nil keeps the default
// equivalence-class algorithm.
func WithAlgorithm(a repair.Algorithm) Option {
	return func(c *Cleaner) { c.Algo = a }
}

// WithParallelRepair enables the black-box parallel repair of Section 5.1
// with the given options. The zero Options value uses the repair package
// defaults.
func WithParallelRepair(opts repair.Options) Option {
	return func(c *Cleaner) {
		c.Parallel = true
		c.RepairOpts = opts
	}
}

// WithIncremental re-detects only the blocks touched by the previous
// iteration's repairs on rules that support block-incremental maintenance.
func WithIncremental() Option {
	return func(c *Cleaner) { c.Incremental = true }
}

// WithMaxIterations bounds the detect-repair loop. Values <= 0 keep the
// default of 10.
func WithMaxIterations(n int) Option {
	return func(c *Cleaner) { c.MaxIterations = n }
}

// WithFreezeAfter pins a cell after n updates (the termination device of
// Section 2.2). Values <= 0 keep the default of 3.
func WithFreezeAfter(n int) Option {
	return func(c *Cleaner) { c.FreezeAfter = n }
}

// NewCleaner builds a Cleaner over ctx and rules, applying any options. It
// is the preferred construction path; the Cleaner struct remains exported
// for callers that need to set fields directly.
func NewCleaner(ctx *engine.Context, rules []*core.Rule, opts ...Option) *Cleaner {
	c := &Cleaner{Ctx: ctx, Rules: rules}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Result reports one cleansing run.
type Result struct {
	// Clean is the repaired instance (the input is not modified).
	Clean *model.Relation
	// Iterations is the number of detect-repair rounds executed.
	Iterations int
	// InitialViolations and RemainingViolations bracket the run.
	InitialViolations   int
	RemainingViolations int
	// FrozenCells counts cells pinned by the termination device.
	FrozenCells int
	// TotalAssignments counts applied updates across iterations.
	TotalAssignments int
	// DetectTime and RepairTime split the wall time (Figure 8(b)).
	DetectTime time.Duration
	RepairTime time.Duration
	// Reports holds the per-iteration parallel repair reports.
	Reports []*repair.Report
}

// Clean runs the iterative cleansing process on a copy of rel.
func (c *Cleaner) Clean(rel *model.Relation) (*Result, error) {
	if len(c.Rules) == 0 {
		return nil, fmt.Errorf("cleanse: no rules")
	}
	algo := c.Algo
	if algo == nil {
		algo = &repair.EquivalenceClass{}
	}
	maxIter := c.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}
	freezeAfter := c.FreezeAfter
	if freezeAfter <= 0 {
		freezeAfter = 3
	}

	work := rel.Clone()
	res := &Result{Clean: work}
	frozen := map[model.CellKey]bool{}
	updates := map[model.CellKey]int{}

	var incDet *core.IncrementalDetector
	if c.Incremental {
		d, err := core.NewIncrementalDetector(c.Ctx, c.Rules)
		if err != nil {
			return nil, err
		}
		incDet = d
	}
	var changed []int64 // nil forces a full first pass

	for iter := 0; iter < maxIter; iter++ {
		t0 := time.Now()
		var det *core.DetectResult
		var err error
		if incDet != nil {
			det, err = incDet.Detect(work, changed)
		} else {
			det, err = core.DetectRules(c.Ctx, c.Rules, work)
		}
		if err != nil {
			return nil, fmt.Errorf("cleanse: detection (iteration %d): %w", iter+1, err)
		}
		res.DetectTime += time.Since(t0)
		if iter == 0 {
			res.InitialViolations = len(det.Violations)
		}
		res.Iterations = iter + 1

		// Drop violations whose every fix touches a frozen cell: they have
		// no usable possible fixes anymore (Section 2.2's stopping rule).
		actionable := det.FixSets[:0:0]
		remaining := 0
		for _, fs := range det.FixSets {
			if len(fs.Fixes) == 0 {
				remaining++ // detection-only violation: reported, not repairable
				continue
			}
			usable := false
			for _, f := range fs.Fixes {
				ok := true
				for _, cell := range f.Cells() {
					if frozen[cell.MapKey()] {
						ok = false
						break
					}
				}
				if ok {
					usable = true
					break
				}
			}
			if usable {
				actionable = append(actionable, fs)
			} else {
				remaining++
			}
		}
		if len(actionable) == 0 {
			res.RemainingViolations = remaining
			res.FrozenCells = len(frozen)
			return res, nil
		}

		t1 := time.Now()
		var assignments []repair.Assignment
		if c.Parallel {
			as, rep, err := repair.RepairParallel(actionable, algo, c.RepairOpts)
			if err != nil {
				return nil, fmt.Errorf("cleanse: parallel repair (iteration %d): %w", iter+1, err)
			}
			assignments = as
			res.Reports = append(res.Reports, rep)
		} else {
			as, err := algo.Repair(actionable)
			if err != nil {
				return nil, fmt.Errorf("cleanse: repair (iteration %d): %w", iter+1, err)
			}
			assignments = as
		}
		res.RepairTime += time.Since(t1)

		applied := repair.Apply(work, assignments, frozen)
		res.TotalAssignments += applied
		changed = changed[:0]
		seenChanged := map[int64]bool{}
		for _, a := range assignments {
			k := a.CellKey()
			if !frozen[k] && !seenChanged[a.TupleID] {
				seenChanged[a.TupleID] = true
				changed = append(changed, a.TupleID)
			}
			if frozen[k] {
				continue
			}
			updates[k]++
			if updates[k] >= freezeAfter {
				frozen[k] = true
			}
		}
		if applied == 0 {
			// The algorithm proposed nothing applicable; freeze the cells
			// of the remaining fixes to guarantee forward progress.
			for _, fs := range actionable {
				for _, f := range fs.Fixes {
					for _, cell := range f.Cells() {
						frozen[cell.MapKey()] = true
					}
				}
			}
		}
	}

	// Out of iterations: report what is left.
	det, err := core.DetectRules(c.Ctx, c.Rules, work)
	if err != nil {
		return nil, err
	}
	res.RemainingViolations = len(det.Violations)
	res.FrozenCells = len(frozen)
	return res, nil
}
