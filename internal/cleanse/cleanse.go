// Package cleanse orchestrates the full BigDansing pipeline of Figure 1:
// the RuleEngine detects violations and possible fixes, the repair
// algorithm chooses updates, the updates are applied, and the loop repeats
// until a repair (an instance with no violations, or only violations
// without possible fixes) is reached. Termination is guaranteed by the
// freezing device of Section 2.2: after a configurable number of updates, a
// cell is pinned and future violations that can only be fixed through it
// are abandoned.
package cleanse

import (
	"fmt"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// Cleaner couples a rule set with a repair algorithm over one dataflow
// context.
type Cleaner struct {
	// Ctx is the dataflow context detection runs on.
	Ctx *engine.Context
	// Rules are detected together (one consolidated plan).
	Rules []*core.Rule
	// Algo is the repair algorithm; nil defaults to the equivalence-class
	// algorithm.
	Algo repair.Algorithm
	// Parallel uses the black-box parallel repair of Section 5.1; false
	// runs the algorithm centralized over all violations, the baseline of
	// Figure 12(b).
	Parallel bool
	// RepairOpts configure the parallel repair.
	RepairOpts repair.Options
	// MaxIterations bounds the detect-repair loop (<=0: 10).
	MaxIterations int
	// FreezeAfter pins a cell after this many updates (<=0: 3).
	FreezeAfter int
	// Incremental re-detects only the blocks touched by the previous
	// iteration's repairs (rules that do not support block-incremental
	// maintenance re-run in full). The result is identical; later
	// iterations get cheaper.
	Incremental bool
	// Observer, when set, is attached to the dataflow context on the first
	// Clean so one sink (e.g. a trace.Tracer) sees the whole run: engine
	// stages, plan compilation, detection pipelines, repair phases and the
	// detect-repair rounds. Equivalent to building the Context with
	// engine.Config.Observer.
	Observer engine.Observer
	// BatchSize, when positive, runs vectorizable detection pipelines over
	// column batches of this many rows (see engine.Config.BatchSize); it is
	// applied to the context on the first Clean or Open. Zero keeps the
	// tuple-at-a-time path. Results are identical either way.
	BatchSize int
	// Planner, when set, plans every detection pass (full and incremental)
	// of this Cleaner — typically core.NewPlanner with the cost-based model
	// and an Observer-feedback source, so long-lived sessions re-plan each
	// flush on measured costs. Nil falls back to the context's planner mode
	// (engine.Config.Planner).
	Planner *core.Planner

	observerAttached bool

	// engineCfg, when set by WithEngineConfig, makes NewCleaner build the
	// context itself; ownsCtx records that Close must shut it down (on the
	// networked backend that terminates the spawned worker processes).
	engineCfg *engine.Config
	ownsCtx   bool
}

// Option configures a Cleaner built with NewCleaner.
type Option func(*Cleaner)

// WithAlgorithm selects the repair algorithm. nil keeps the default
// equivalence-class algorithm.
func WithAlgorithm(a repair.Algorithm) Option {
	return func(c *Cleaner) { c.Algo = a }
}

// WithParallelRepair enables the black-box parallel repair of Section 5.1
// with the given options. The zero Options value uses the repair package
// defaults.
func WithParallelRepair(opts repair.Options) Option {
	return func(c *Cleaner) {
		c.Parallel = true
		c.RepairOpts = opts
	}
}

// WithIncremental re-detects only the blocks touched by the previous
// iteration's repairs on rules that support block-incremental maintenance.
// It affects Clean only: sessions opened with Open always attempt
// incremental detection, falling back to full re-detection when no rule in
// the set is incrementalizable (see Open).
func WithIncremental() Option {
	return func(c *Cleaner) { c.Incremental = true }
}

// WithMaxIterations bounds the detect-repair loop. Zero keeps the default
// of 10; negative values are rejected at construction.
func WithMaxIterations(n int) Option {
	return func(c *Cleaner) { c.MaxIterations = n }
}

// WithFreezeAfter pins a cell after n updates (the termination device of
// Section 2.2). Zero keeps the default of 3; negative values are rejected
// at construction.
func WithFreezeAfter(n int) Option {
	return func(c *Cleaner) { c.FreezeAfter = n }
}

// WithObserver routes the whole run's execution events — engine stages,
// plan compilation, detection pipelines, repair phases, detect-repair
// rounds — to o (for example a trace.Tracer). The context's own Stats
// keeps counting alongside.
func WithObserver(o engine.Observer) Option {
	return func(c *Cleaner) { c.Observer = o }
}

// WithEngineConfig makes the Cleaner build and own its dataflow context
// from cfg — the convenient way to run a cleanse on the networked backend
// (cfg.Backend = engine.BackendNet) without constructing a context by hand.
// Pass a nil context to NewCleaner when using it; combining it with a
// caller-supplied context is rejected at construction. Because the Cleaner
// owns the context, Close (on the Cleaner, or on a Session opened from it)
// shuts the backend down — on the networked backend that terminates the
// spawned worker processes.
func WithEngineConfig(cfg engine.Config) Option {
	return func(c *Cleaner) { c.engineCfg = &cfg }
}

// WithPlanner installs the physical Planner detection passes use — e.g.
// core.NewPlanner(core.WithCostModel(core.NewCostModel()),
// core.WithObserverFeedback(recorder)) for statistics- and feedback-driven
// plans. Nil keeps the context's planner mode.
func WithPlanner(p *core.Planner) Option {
	return func(c *Cleaner) { c.Planner = p }
}

// WithBatchSize runs vectorizable detection pipelines over column batches
// of n rows — the engine's vectorized execution path. Zero keeps the
// tuple-at-a-time path; negative values are rejected at construction.
// Equivalent to building the Context with engine.Config.BatchSize.
func WithBatchSize(n int) Option {
	return func(c *Cleaner) { c.BatchSize = n }
}

// NewCleaner builds a Cleaner over ctx and rules, applying any options, and
// validates the combined configuration: a nil context, an empty or nil rule
// set, a rule that fails core validation, or a negative WithMaxIterations /
// WithFreezeAfter is rejected here instead of misbehaving at Clean or Flush
// time. It is the preferred construction path; the Cleaner struct remains
// exported for callers that need to set fields directly (those configs are
// re-validated when Clean or Open runs).
func NewCleaner(ctx *engine.Context, rules []*core.Rule, opts ...Option) (*Cleaner, error) {
	c := &Cleaner{Ctx: ctx, Rules: rules}
	for _, o := range opts {
		o(c)
	}
	if c.engineCfg != nil {
		if c.Ctx != nil {
			return nil, fmt.Errorf("cleanse: WithEngineConfig combined with a caller-supplied context (pass a nil context)")
		}
		built, err := engine.NewContext(*c.engineCfg)
		if err != nil {
			return nil, fmt.Errorf("cleanse: building engine context: %w", err)
		}
		c.Ctx = built
		c.ownsCtx = true
	}
	if err := c.validate(); err != nil {
		if c.ownsCtx {
			c.Ctx.Close()
		}
		return nil, err
	}
	return c, nil
}

// Close releases the engine context when the Cleaner owns it (built via
// WithEngineConfig); on the networked backend that terminates the spawned
// worker processes. It is idempotent and a no-op for caller-supplied
// contexts — those stay the caller's to close.
func (c *Cleaner) Close() error {
	if !c.ownsCtx || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Close()
}

// validate checks a configuration for the nonsensical states that used to
// surface as panics or silent defaults deep inside the loop.
func (c *Cleaner) validate() error {
	if c.Ctx == nil {
		return fmt.Errorf("cleanse: nil engine context (build one with engine.New)")
	}
	if len(c.Rules) == 0 {
		return fmt.Errorf("cleanse: no rules")
	}
	for i, r := range c.Rules {
		if r == nil {
			return fmt.Errorf("cleanse: rule %d is nil", i)
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("cleanse: invalid rule: %w", err)
		}
	}
	if c.MaxIterations < 0 {
		return fmt.Errorf("cleanse: WithMaxIterations(%d): negative (0 keeps the default of 10)", c.MaxIterations)
	}
	if c.FreezeAfter < 0 {
		return fmt.Errorf("cleanse: WithFreezeAfter(%d): negative (0 keeps the default of 3)", c.FreezeAfter)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("cleanse: WithBatchSize(%d): negative (0 keeps the tuple path)", c.BatchSize)
	}
	return nil
}

// attachObserver applies the Cleaner's context-level settings once: it tees
// the configured Observer into the context and installs the vectorized
// batch size. Both Clean and Open route through it before any dataflow runs.
func (c *Cleaner) attachObserver() {
	if c.Observer != nil && !c.observerAttached {
		c.Ctx.AttachObserver(c.Observer)
		c.observerAttached = true
	}
	if c.BatchSize > 0 {
		c.Ctx.SetBatchSize(c.BatchSize)
	}
}

// Result reports one cleansing run. Apart from Clean (the repaired
// relation), every field duplicates a Report field; poke Report() instead
// of the struct.
type Result struct {
	// Clean is the repaired instance (the input is not modified).
	Clean *model.Relation
	// Iterations is the number of detect-repair rounds executed.
	//
	// Deprecated: use Report().Iterations.
	Iterations int
	// InitialViolations and RemainingViolations bracket the run.
	//
	// Deprecated: use Report().InitialViolations / RemainingViolations.
	InitialViolations int
	// Deprecated: use Report().RemainingViolations.
	RemainingViolations int
	// FrozenCells counts cells pinned by the termination device.
	//
	// Deprecated: use Report().FrozenCells.
	FrozenCells int
	// TotalAssignments counts applied updates across iterations.
	//
	// Deprecated: use Report().UpdatesApplied.
	TotalAssignments int
	// DetectTime and RepairTime split the wall time (Figure 8(b)).
	//
	// Deprecated: use Report().DetectTime / RepairTime.
	DetectTime time.Duration
	// Deprecated: use Report().RepairTime.
	RepairTime time.Duration
	// Reports holds the per-iteration parallel repair reports.
	//
	// Deprecated: use Report().RepairRounds.
	Reports []*repair.Report

	// engineSnap is the dataflow snapshot taken when Clean returned, so
	// Report() can hand callers the engine-side numbers without them
	// reaching into the Context.
	engineSnap engine.Snapshot
}

// Report is the one-struct summary of a cleansing run: what the loop did,
// what the dataflow engine did underneath, and what each parallel repair
// round decided. It replaces callers stitching together Result fields,
// engine.Stats getters and repair reports across three packages.
type Report struct {
	// Iterations is the number of detect-repair rounds executed.
	Iterations int
	// InitialViolations and RemainingViolations bracket the run.
	InitialViolations   int
	RemainingViolations int
	// UpdatesApplied counts cell updates applied across iterations.
	UpdatesApplied int
	// FrozenCells counts cells pinned by the termination device.
	FrozenCells int
	// DetectTime and RepairTime split the wall time (Figure 8(b)).
	DetectTime time.Duration
	RepairTime time.Duration
	// Engine is the dataflow execution snapshot (stages, shuffle volume,
	// spill activity) at the end of the run.
	Engine engine.Snapshot
	// RepairRounds holds the per-iteration parallel repair reports
	// (components, splits, conflicts, assignments); empty for the
	// centralized repair path.
	RepairRounds []*repair.Report
	// Flush is the 1-based ordinal of the session flush this report covers
	// (a one-shot Clean is its session's only flush, so 1).
	Flush int
	// Tuples is the relation size when the report was taken.
	Tuples int
}

// Report summarizes the run as one struct.
func (r *Result) Report() Report {
	return Report{
		Iterations:          r.Iterations,
		InitialViolations:   r.InitialViolations,
		RemainingViolations: r.RemainingViolations,
		UpdatesApplied:      r.TotalAssignments,
		FrozenCells:         r.FrozenCells,
		DetectTime:          r.DetectTime,
		RepairTime:          r.RepairTime,
		Engine:              r.engineSnap,
		RepairRounds:        r.Reports,
		Flush:               1,
		Tuples:              r.Clean.Len(),
	}
}

// Clean runs the iterative cleansing process on a copy of rel. It is a
// thin one-batch session: the relation is cloned into a Session seeded
// with the Cleaner's configuration (including the Clean-specific
// Incremental flag), flushed once, and closed — so its behavior is the
// historical one while the detect-repair loop itself lives in the Session.
func (c *Cleaner) Clean(rel *model.Relation) (*Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.attachObserver()
	s, err := newSession(*c, rel.Clone(), c.Incremental, nil)
	if err != nil {
		return nil, err
	}
	rep, err := s.flushLocked()
	if err != nil {
		return nil, err
	}
	s.closed = true
	return &Result{
		Clean:               s.rel,
		Iterations:          rep.Iterations,
		InitialViolations:   rep.InitialViolations,
		RemainingViolations: rep.RemainingViolations,
		FrozenCells:         rep.FrozenCells,
		TotalAssignments:    rep.UpdatesApplied,
		DetectTime:          rep.DetectTime,
		RepairTime:          rep.RepairTime,
		Reports:             rep.RepairRounds,
		engineSnap:          rep.Engine,
	}, nil
}
