package cleanse

import (
	"fmt"
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

// dirtyTax builds a tax table where some zipcodes map to two cities: per
// zipcode group, most tuples carry the correct city and a minority carry a
// corrupted one — the error model of the evaluation's TaxA generator.
func dirtyTax(groups, perGroup, dirtyPerGroup int) *model.Relation {
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	id := int64(0)
	for g := 0; g < groups; g++ {
		city := fmt.Sprintf("City%d", g)
		for i := 0; i < perGroup; i++ {
			c := city
			if i < dirtyPerGroup {
				c = city + "_typo"
			}
			rel.Append(model.NewTuple(id,
				model.S(fmt.Sprintf("P%d", id)),
				model.I(int64(10000+g)),
				model.S(c),
				model.S("ST"),
				model.F(float64(1000*id)),
				model.F(float64(id%50)),
			))
			id++
		}
	}
	return rel
}

func fdZipCity(t *testing.T, rel *model.Relation) *core.Rule {
	t.Helper()
	fd, err := rules.ParseFD("phi1", "zipcode -> city")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := fd.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

func TestCleanRepairsAllFDViolations(t *testing.T) {
	rel := dirtyTax(10, 8, 2)
	cleaner := &Cleaner{
		Ctx:   engine.New(4),
		Rules: []*core.Rule{fdZipCity(t, rel)},
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations == 0 {
		t.Fatal("generator should produce violations")
	}
	if res.RemainingViolations != 0 {
		t.Fatalf("remaining violations = %d, want 0", res.RemainingViolations)
	}
	// Majority repair restores the correct city everywhere.
	for _, tp := range res.Clean.Tuples {
		city := tp.Cell(2).String()
		zip := tp.Cell(1).Int
		want := fmt.Sprintf("City%d", zip-10000)
		if city != want {
			t.Errorf("tuple %d: city = %s, want %s", tp.ID, city, want)
		}
	}
	// The input must not be modified.
	if rel.Tuples[0].Cell(2).String() != "City0_typo" {
		t.Error("input relation was mutated")
	}
}

func TestCleanParallelMatchesCentralized(t *testing.T) {
	rel := dirtyTax(12, 6, 2)
	run := func(parallel bool) *Result {
		cleaner := &Cleaner{
			Ctx:      engine.New(4),
			Rules:    []*core.Rule{fdZipCity(t, rel)},
			Parallel: parallel,
		}
		res, err := cleaner.Clean(rel)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	if seq.RemainingViolations != 0 || par.RemainingViolations != 0 {
		t.Fatalf("both should converge: seq %d, par %d", seq.RemainingViolations, par.RemainingViolations)
	}
	if seq.Iterations != par.Iterations {
		t.Errorf("iterations differ: %d vs %d (paper: parallel matches centralized)", seq.Iterations, par.Iterations)
	}
	for i := range seq.Clean.Tuples {
		if seq.Clean.Tuples[i].Cell(2) != par.Clean.Tuples[i].Cell(2) {
			t.Errorf("tuple %d differs between parallel and centralized repair", i)
		}
	}
}

func TestCleanTerminatesOnContradictoryRules(t *testing.T) {
	// Two FDs that cannot both be satisfied by equivalence-class repair on
	// this data oscillate; the freeze device must still terminate.
	s := model.MustParseSchema("a,b,c")
	rel := model.NewRelation("r", s)
	// a -> b wants b equal within {t0,t1}; c -> b wants b equal within
	// {t1,t2}; but we seed three different b values and also make a
	// pathological rule pair that keeps reintroducing violations.
	rel.Append(
		model.NewTuple(0, model.S("a1"), model.S("b1"), model.S("c1")),
		model.NewTuple(1, model.S("a1"), model.S("b2"), model.S("c2")),
		model.NewTuple(2, model.S("a2"), model.S("b3"), model.S("c2")),
	)
	fd1, _ := rules.ParseFD("fd1", "a -> b")
	r1, err := fd1.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	fd2, _ := rules.ParseFD("fd2", "c -> b")
	r2, err := fd2.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	cleaner := &Cleaner{
		Ctx:           engine.New(2),
		Rules:         []*core.Rule{r1, r2},
		MaxIterations: 6,
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 6 {
		t.Errorf("iterations = %d exceeds bound", res.Iterations)
	}
	// b values should converge to a single value satisfying both FDs.
	if res.RemainingViolations != 0 {
		t.Logf("remaining = %d (allowed when only frozen-cell violations remain)", res.RemainingViolations)
	}
}

func TestCleanDetectionOnlyRule(t *testing.T) {
	// A rule without GenFix: violations are reported, nothing is repaired.
	rel := dirtyTax(2, 4, 1)
	r := fdZipCity(t, rel)
	r.GenFix = nil
	cleaner := &Cleaner{Ctx: engine.New(2), Rules: []*core.Rule{r}}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("detection-only should stop after one iteration, got %d", res.Iterations)
	}
	if res.RemainingViolations == 0 {
		t.Error("violations should remain reported")
	}
	if res.TotalAssignments != 0 {
		t.Error("nothing should be repaired")
	}
}

func TestCleanWithHypergraphAlgorithmOnDC(t *testing.T) {
	// TaxB-style numeric errors: salary/rate monotonicity violations
	// repaired by the hypergraph algorithm.
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("taxb", s)
	rel.Append(
		model.NewTuple(0, model.S("a"), model.I(1), model.S("X"), model.S("S"), model.F(10000), model.F(5)),
		model.NewTuple(1, model.S("b"), model.I(1), model.S("X"), model.S("S"), model.F(20000), model.F(30)), // rate too high? no: fine
		model.NewTuple(2, model.S("c"), model.I(1), model.S("X"), model.S("S"), model.F(30000), model.F(10)), // violates vs t1
	)
	dc, err := rules.ParseDC("phi2", "t1.rate > t2.rate & t1.salary < t2.salary")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := dc.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	cleaner := &Cleaner{
		Ctx:   engine.New(2),
		Rules: []*core.Rule{rule},
		Algo:  &repair.Hypergraph{},
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations == 0 {
		t.Fatal("seed data should violate phi2")
	}
	if res.RemainingViolations != 0 {
		t.Errorf("remaining = %d after hypergraph repair", res.RemainingViolations)
	}
}

func TestCleanNoRules(t *testing.T) {
	cleaner := &Cleaner{Ctx: engine.New(2)}
	if _, err := cleaner.Clean(dirtyTax(1, 2, 0)); err == nil {
		t.Error("no rules should error")
	}
}

func TestCleanSplitTimesAreRecorded(t *testing.T) {
	rel := dirtyTax(5, 6, 2)
	cleaner := &Cleaner{Ctx: engine.New(4), Rules: []*core.Rule{fdZipCity(t, rel)}}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectTime <= 0 {
		t.Error("detect time should be recorded")
	}
	if res.RepairTime <= 0 {
		t.Error("repair time should be recorded")
	}
}

// TestNewCleanerOptions checks the functional-options constructor wires
// every option onto the struct it returns.
func TestNewCleanerOptions(t *testing.T) {
	ctx := engine.New(2)
	rel := dirtyTax(3, 5, 1)
	r := fdZipCity(t, rel)
	hg := &repair.Hypergraph{}
	c, err := NewCleaner(ctx, []*core.Rule{r},
		WithAlgorithm(hg),
		WithParallelRepair(repair.Options{Parallelism: 3}),
		WithIncremental(),
		WithMaxIterations(7),
		WithFreezeAfter(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ctx != ctx || len(c.Rules) != 1 || c.Rules[0] != r {
		t.Fatal("ctx/rules not wired")
	}
	if c.Algo != hg {
		t.Error("WithAlgorithm not applied")
	}
	if !c.Parallel || c.RepairOpts.Parallelism != 3 {
		t.Error("WithParallelRepair not applied")
	}
	if !c.Incremental {
		t.Error("WithIncremental not applied")
	}
	if c.MaxIterations != 7 {
		t.Error("WithMaxIterations not applied")
	}
	if c.FreezeAfter != 2 {
		t.Error("WithFreezeAfter not applied")
	}

	// A cleaner built with options must actually clean.
	res, err := c.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingViolations != 0 {
		t.Errorf("remaining violations: %d", res.RemainingViolations)
	}
}
