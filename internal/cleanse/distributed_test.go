package cleanse

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/mapred"
	"bigdansing/internal/repair"
)

// TestCleanWithDistributedEquivalenceClass runs the full cleansing loop
// with the natively distributed equivalence-class algorithm (Section 5.2)
// plugged in as the repair algorithm, inside the parallel black-box
// wrapper — the full distributed stack of the paper.
func TestCleanWithDistributedEquivalenceClass(t *testing.T) {
	eng, err := mapred.New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	rel := dirtyTax(8, 8, 2)
	cleaner := &Cleaner{
		Ctx:      engine.New(4),
		Rules:    []*core.Rule{fdZipCity(t, rel)},
		Algo:     &repair.DistributedEquivalenceClass{Engine: eng, Splits: 4, Reduces: 4},
		Parallel: true,
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingViolations != 0 {
		t.Fatalf("remaining = %d", res.RemainingViolations)
	}

	// Must produce the same clean instance as the centralized algorithm.
	centralized := &Cleaner{
		Ctx:   engine.New(4),
		Rules: []*core.Rule{fdZipCity(t, rel)},
		Algo:  &repair.EquivalenceClass{},
	}
	want, err := centralized.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Clean.Tuples {
		if !want.Clean.Tuples[i].Cell(2).Equal(res.Clean.Tuples[i].Cell(2)) {
			t.Errorf("tuple %d: distributed %v vs centralized %v",
				i, res.Clean.Tuples[i].Cell(2), want.Clean.Tuples[i].Cell(2))
		}
	}
	if res.Iterations != want.Iterations {
		t.Errorf("iterations: distributed %d vs centralized %d", res.Iterations, want.Iterations)
	}
}
