package cleanse

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// flipAlgo proposes an update that re-dirties the cell every time: without
// the freeze device the loop would oscillate forever.
type flipAlgo struct{}

func (flipAlgo) Name() string { return "flip" }

func (flipAlgo) Repair(component []model.FixSet) ([]repair.Assignment, error) {
	var out []repair.Assignment
	for _, fs := range component {
		for _, c := range fs.Violation.Cells {
			// Always change the cell, never to the other cell's value: the
			// violation survives every "repair".
			out = append(out, repair.Assignment{
				TupleID: c.TupleID, Col: c.Col, Attr: c.Attr,
				Value: model.S(c.Value.String() + "x"),
			})
			break
		}
	}
	return out, nil
}

// TestFreezeStopsOscillation runs an adversarial repair algorithm whose
// proposals never converge; the freeze device (Section 2.2) must pin the
// oscillating cells and terminate with the violations reported as
// unfixable.
func TestFreezeStopsOscillation(t *testing.T) {
	s := model.MustParseSchema("k,v")
	rel := model.NewRelation("r", s)
	rel.Append(
		model.NewTuple(1, model.S("g"), model.S("A")),
		model.NewTuple(2, model.S("g"), model.S("B")),
	)
	rule := &core.Rule{
		ID:        "eq",
		Block:     func(tp model.Tuple) model.Value { return tp.Cell(0) },
		Symmetric: true,
		Detect: func(it core.Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if l.Cell(1).Equal(r.Cell(1)) {
				return nil
			}
			return []model.Violation{model.NewViolation("eq",
				model.NewCell(l.ID, 1, "v", l.Cell(1)),
				model.NewCell(r.ID, 1, "v", r.Cell(1)))}
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
		},
	}
	cleaner := &Cleaner{
		Ctx:           engine.New(2),
		Rules:         []*core.Rule{rule},
		Algo:          flipAlgo{},
		MaxIterations: 20,
		FreezeAfter:   2,
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 20 {
		t.Errorf("freeze should terminate early, ran %d iterations", res.Iterations)
	}
	if res.FrozenCells == 0 {
		t.Error("oscillating cells should be frozen")
	}
	if res.RemainingViolations == 0 {
		t.Error("the unfixable violation should be reported as remaining")
	}
}

// TestParallelRepairReportsCollected verifies the per-iteration reports of
// the parallel repair surface in the result.
func TestParallelRepairReportsCollected(t *testing.T) {
	rel := dirtyTax(6, 6, 2)
	cleaner := &Cleaner{
		Ctx:      engine.New(4),
		Rules:    []*core.Rule{fdZipCity(t, rel)},
		Parallel: true,
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("parallel runs should report per iteration")
	}
	if res.Reports[0].Components == 0 || res.Reports[0].Assignments == 0 {
		t.Errorf("first report = %+v", res.Reports[0])
	}
}
