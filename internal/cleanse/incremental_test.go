package cleanse

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
)

// TestIncrementalCleanMatchesFull runs the same cleansing job with and
// without incremental detection; the repaired instances must be identical.
func TestIncrementalCleanMatchesFull(t *testing.T) {
	rel := dirtyTax(15, 8, 2)
	run := func(incremental bool) *Result {
		cleaner := &Cleaner{
			Ctx:         engine.New(4),
			Rules:       []*core.Rule{fdZipCity(t, rel)},
			Parallel:    true,
			Incremental: incremental,
		}
		res, err := cleaner.Clean(rel)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(false)
	inc := run(true)
	if full.RemainingViolations != inc.RemainingViolations {
		t.Fatalf("remaining: full %d vs incremental %d", full.RemainingViolations, inc.RemainingViolations)
	}
	if full.Iterations != inc.Iterations {
		t.Errorf("iterations: full %d vs incremental %d", full.Iterations, inc.Iterations)
	}
	for i := range full.Clean.Tuples {
		for c := range full.Clean.Tuples[i].Cells {
			if !full.Clean.Tuples[i].Cell(c).Equal(inc.Clean.Tuples[i].Cell(c)) {
				t.Fatalf("tuple %d col %d differs: %v vs %v", i, c,
					full.Clean.Tuples[i].Cell(c), inc.Clean.Tuples[i].Cell(c))
			}
		}
	}
	if inc.RemainingViolations != 0 {
		t.Errorf("incremental cleaning should converge, %d left", inc.RemainingViolations)
	}
}

// TestIncrementalCleanMultiRule exercises incremental maintenance with two
// interacting FDs (repairs from one rule dirtying the other's blocks).
func TestIncrementalCleanMultiRule(t *testing.T) {
	rel := dirtyTax(10, 6, 2)
	// Second rule: zipcode -> state (all states equal here, so it never
	// fires, but its caches must stay consistent through the updates).
	fd2 := fdZipCity(t, rel)
	fd2.ID = "phi1b"
	cleaner := &Cleaner{
		Ctx:         engine.New(4),
		Rules:       []*core.Rule{fdZipCity(t, rel), fd2},
		Incremental: true,
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingViolations != 0 {
		t.Errorf("remaining = %d", res.RemainingViolations)
	}
}
