package cleanse

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/repair"
	"bigdansing/internal/trace"
)

// TestResultReport: Report() must mirror the Result fields and carry the
// engine snapshot and per-round repair reports, so callers need only one
// struct instead of poking three packages.
func TestResultReport(t *testing.T) {
	rel := dirtyTax(6, 6, 2)
	cleaner, err := NewCleaner(engine.New(4), []*core.Rule{fdZipCity(t, rel)},
		WithParallelRepair(repair.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Iterations != res.Iterations ||
		rep.InitialViolations != res.InitialViolations ||
		rep.RemainingViolations != res.RemainingViolations ||
		rep.UpdatesApplied != res.TotalAssignments ||
		rep.FrozenCells != res.FrozenCells ||
		rep.DetectTime != res.DetectTime ||
		rep.RepairTime != res.RepairTime {
		t.Errorf("Report diverges from Result: %+v vs %+v", rep, res)
	}
	if rep.Engine.Stages == 0 || rep.Engine.Tasks == 0 || rep.Engine.RecordsRead == 0 {
		t.Errorf("Report.Engine should carry the dataflow snapshot: %+v", rep.Engine)
	}
	if len(rep.RepairRounds) == 0 {
		t.Error("Report.RepairRounds empty for a parallel-repair run")
	}
	for i, rr := range rep.RepairRounds {
		if rr.Components <= 0 {
			t.Errorf("round %d: components = %d", i, rr.Components)
		}
	}
}

// TestWithObserverTracesWholeRun: an Observer installed via the cleanse
// option must see every layer — rounds, plan compilation, pipelines,
// engine stages and repair phases — and leave no span open.
func TestWithObserverTracesWholeRun(t *testing.T) {
	rel := dirtyTax(6, 6, 2)
	tr := trace.New()
	cleaner, err := NewCleaner(engine.New(4), []*core.Rule{fdZipCity(t, rel)},
		WithParallelRepair(repair.Options{}),
		WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cleaner.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingViolations != 0 {
		t.Fatalf("remaining violations: %d", res.RemainingViolations)
	}
	tr.Finish()
	kinds := map[engine.SpanKind]int{}
	for _, s := range tr.Spans() {
		kinds[s.Kind()]++
	}
	for _, k := range []engine.SpanKind{
		engine.SpanRound, engine.SpanPlan, engine.SpanPipeline,
		engine.SpanStage, engine.SpanTask, engine.SpanRepair,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v spans recorded (kinds: %v)", k, kinds)
		}
	}
	if kinds[engine.SpanRound] != res.Iterations {
		t.Errorf("round spans = %d, iterations = %d", kinds[engine.SpanRound], res.Iterations)
	}
	// Stats kept counting alongside the tracer.
	if res.Report().Engine.RecordsRead == 0 {
		t.Error("Stats stopped counting while traced")
	}
}
