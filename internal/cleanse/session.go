package cleanse

import (
	"fmt"
	"sync"
	"time"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// Session is a streaming cleanse: instead of one Clean(rel) call over a
// finished relation, a caller Opens a session against a schema, Ingests
// batches of tuples as they arrive, and Flushes when it wants the
// detect-repair loop run to quiescence over everything seen so far. The
// session owns the relation and every piece of cleansing state — the
// incremental detection caches, the equivalence-class repair memory, and
// the frozen-cell/update counters of the termination device — all of which
// survive across Flushes, so each Flush only pays for what changed since
// the last one.
//
// Lifecycle (the session state machine):
//
//	Open ──► open ──Ingest──► open ──Flush──► open ──Close──► closed
//
// Ingest and Flush may interleave freely while the session is open; every
// method but Relation and Status errors once it is closed. A Session is
// safe for concurrent use; calls are serialized on an internal mutex.
//
// Incremental detection: Ingest routes new tuples through the
// IncrementalDetector (only the blocks they land in are re-detected);
// rules that cannot be maintained incrementally fall back to bounded
// re-detection — they re-run at most once per Flush, and not at all when
// nothing changed. If no rule in the set is incrementalizable the session
// falls back to full re-detection each Flush round (see Open).
type Session struct {
	mu  sync.Mutex
	cfg Cleaner // frozen configuration copy (per-session options applied)

	rel *model.Relation
	idx map[int64]int // tuple ID -> position, maintained on ingest

	det    *core.IncrementalDetector // nil: full re-detection every round
	algo   repair.Algorithm
	ropts  repair.Options
	memory *repair.ClassMemory

	frozen  map[model.CellKey]bool
	updates map[model.CellKey]int
	dirty   []int64 // tuple IDs changed since the detector last saw them

	nextID int64
	closed bool

	// lifetime counters for Status and the per-flush reports.
	ingested      int64
	flushes       int
	totalUpdates  int64
	pendingDetect time.Duration // ingest-time detection, attributed to the next flush
}

// Open starts a streaming cleanse session over schema. Options are applied
// on top of the Cleaner's own configuration for this session only, and the
// combined configuration is validated up front (see NewCleaner) — a
// misconfigured session fails here, not at Flush time.
//
// Sessions always attempt incremental detection regardless of
// WithIncremental (streaming is what the incremental caches exist for).
// When no rule in the set supports block-incremental maintenance, Open
// succeeds but the session runs in full-re-detection mode: every Flush
// round re-detects the whole relation, exactly like Clean. Check
// Incremental() to see which mode a session got.
func (c *Cleaner) Open(schema *model.Schema, opts ...Option) (*Session, error) {
	if schema == nil {
		return nil, fmt.Errorf("cleanse: Open: nil schema")
	}
	cfg := *c
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Observer != nil && cfg.Observer != c.Observer {
		// A session-specific observer (WithObserver passed to Open) tees
		// into the context directly; the cleaner-level one attaches once.
		cfg.Ctx.AttachObserver(cfg.Observer)
	} else {
		c.attachObserver()
	}
	incremental := core.NumIncrementalizable(cfg.Rules) > 0
	return newSession(cfg, model.NewRelation("session", schema), incremental, nil)
}

// newSession wires the session state over an initial relation. dirty==nil
// means the detector has never seen the relation: the first Flush round
// runs a full pass (the Clean path seeds the relation this way so its
// behavior is byte-for-byte the old one).
func newSession(cfg Cleaner, rel *model.Relation, incremental bool, dirty []int64) (*Session, error) {
	s := &Session{
		cfg:     cfg,
		rel:     rel,
		idx:     rel.ByID(),
		memory:  repair.NewClassMemory(),
		frozen:  map[model.CellKey]bool{},
		updates: map[model.CellKey]int{},
		dirty:   dirty,
	}
	for _, t := range rel.Tuples {
		if t.ID >= s.nextID {
			s.nextID = t.ID + 1
		}
	}
	if incremental {
		d, err := core.NewIncrementalDetector(cfg.Ctx, cfg.Rules)
		if err != nil {
			return nil, err
		}
		d.SetPlanner(cfg.Planner)
		s.det = d
	}
	// The repair algorithm: the configured one, or the equivalence-class
	// default. When it is an equivalence-class instance without a prior,
	// thread the session's class memory through a copy so streaming repair
	// stays sticky without mutating the caller's struct.
	s.algo = cfg.Algo
	if s.algo == nil {
		s.algo = &repair.EquivalenceClass{Prior: s.memory}
	} else if ec, ok := s.algo.(*repair.EquivalenceClass); ok && ec.Prior == nil {
		cp := *ec
		cp.Prior = s.memory
		s.algo = &cp
	} else if cl, ok := s.algo.(repair.Cloner); ok {
		// Algorithms with per-session mutable state (the probabilistic
		// backend's learned weights) are cloned so sessions sharing one
		// Cleaner never share it.
		s.algo = cl.CloneAlgorithm()
	}
	s.ropts = cfg.RepairOpts
	if s.ropts.Observer == nil {
		s.ropts.Observer = cfg.Ctx.Observer()
	}
	return s, nil
}

// Ingest appends a batch of tuples to the session's relation and routes
// them through the incremental detector: only the blocks the new tuples
// land in are re-detected, and non-incrementalizable rules are merely
// marked stale for the next Flush. Tuples are cloned — the caller keeps
// ownership of the batch. A tuple with a negative ID is assigned the next
// free one; a duplicate ID fails the whole batch (nothing is appended).
func (s *Session) Ingest(batch []model.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cleanse: session closed")
	}
	if len(batch) == 0 {
		return nil
	}
	want := s.rel.Schema.Len()
	seen := make(map[int64]bool, len(batch))
	for i, t := range batch {
		if len(t.Cells) != want {
			return fmt.Errorf("cleanse: ingest: tuple %d has %d cells, schema has %d", i, len(t.Cells), want)
		}
		if t.ID >= 0 {
			if _, dup := s.idx[t.ID]; dup || seen[t.ID] {
				return fmt.Errorf("cleanse: ingest: duplicate tuple id %d", t.ID)
			}
			seen[t.ID] = true
		}
	}
	ids := make([]int64, 0, len(batch))
	for _, t := range batch {
		t = t.Clone()
		if t.ID < 0 {
			t.ID = s.nextID
		}
		if t.ID >= s.nextID {
			s.nextID = t.ID + 1
		}
		s.idx[t.ID] = len(s.rel.Tuples)
		s.rel.Append(t)
		ids = append(ids, t.ID)
	}
	s.ingested += int64(len(ids))
	if s.det != nil {
		t0 := time.Now()
		err := s.det.Observe(s.rel, ids)
		s.pendingDetect += time.Since(t0)
		if err != nil {
			return fmt.Errorf("cleanse: ingest: %w", err)
		}
	}
	return nil
}

// Flush runs the detect-repair loop to quiescence over everything ingested
// so far and returns the report for this flush. Repairs are applied to the
// session's relation in place; the frozen-cell state and the repair class
// memory carry over to later flushes, so a cell pinned by the termination
// device stays pinned for the life of the session. Flushing with nothing
// new ingested is cheap: cached detection state is re-assembled without
// re-running any dataflow.
func (s *Session) Flush() (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Report{}, fmt.Errorf("cleanse: session closed")
	}
	return s.flushLocked()
}

func (s *Session) flushLocked() (Report, error) {
	cfg := &s.cfg
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}
	freezeAfter := cfg.FreezeAfter
	if freezeAfter <= 0 {
		freezeAfter = 3
	}
	obs := cfg.Ctx.Observer()

	rep := Report{Flush: s.flushes + 1}
	rep.DetectTime = s.pendingDetect
	s.pendingDetect = 0
	var applied []repair.Assignment // everything applied this flush, for the class memory

	for iter := 0; iter < maxIter; iter++ {
		// One span per detect-repair round; the closure keeps it closed on
		// every exit path (early convergence, errors).
		rsp := obs.BeginSpan(nil, fmt.Sprintf("round %d", iter+1), engine.SpanRound)
		done, err := func() (bool, error) {
			t0 := time.Now()
			det, err := s.detect()
			if err != nil {
				return false, fmt.Errorf("cleanse: detection (iteration %d): %w", iter+1, err)
			}
			rep.DetectTime += time.Since(t0)
			if iter == 0 {
				rep.InitialViolations = len(det.Violations)
			}
			rep.Iterations = iter + 1
			rsp.Attr(engine.AttrViolations, int64(len(det.Violations)))

			// Drop violations whose every fix touches a frozen cell: they have
			// no usable possible fixes anymore (Section 2.2's stopping rule).
			actionable := det.FixSets[:0:0]
			remaining := 0
			for _, fs := range det.FixSets {
				if len(fs.Fixes) == 0 {
					remaining++ // detection-only violation: reported, not repairable
					continue
				}
				usable := false
				for _, f := range fs.Fixes {
					ok := true
					for _, cell := range f.Cells() {
						if s.frozen[cell.MapKey()] {
							ok = false
							break
						}
					}
					if ok {
						usable = true
						break
					}
				}
				if usable {
					actionable = append(actionable, fs)
				} else {
					remaining++
				}
			}
			if len(actionable) == 0 {
				rep.RemainingViolations = remaining
				return true, nil
			}

			t1 := time.Now()
			if iter == 0 {
				// Learning algorithms fit once per flush, on the pre-repair
				// relation (clean cells = cells no fix touches).
				if f, ok := s.algo.(repair.Fitter); ok {
					if err := f.Fit(s.rel, actionable, obs); err != nil {
						return false, fmt.Errorf("cleanse: repair fit (iteration %d): %w", iter+1, err)
					}
				}
			}
			var assignments []repair.Assignment
			if cfg.Parallel {
				as, rr, err := repair.RepairParallel(actionable, s.algo, s.ropts)
				if err != nil {
					return false, fmt.Errorf("cleanse: parallel repair (iteration %d): %w", iter+1, err)
				}
				assignments = as
				rep.RepairRounds = append(rep.RepairRounds, rr)
			} else {
				csp := obs.BeginSpan(nil, "repair", engine.SpanRepair)
				csp.Attr(engine.AttrAlgorithm, repair.AlgorithmCode(s.algo.Name()))
				var as []repair.Assignment
				var err error
				if sa, ok := s.algo.(repair.SpanAlgorithm); ok {
					as, err = sa.RepairSpanned(actionable, obs, csp)
				} else {
					as, err = s.algo.Repair(actionable)
				}
				csp.Attr(engine.AttrAssignments, int64(len(as)))
				csp.End()
				if err != nil {
					return false, fmt.Errorf("cleanse: repair (iteration %d): %w", iter+1, err)
				}
				assignments = as
			}
			rep.RepairTime += time.Since(t1)

			n := repair.Apply(s.rel, assignments, s.frozen)
			rep.UpdatesApplied += n
			rsp.Attr(engine.AttrAssignments, int64(n))
			s.dirty = s.dirty[:0]
			seenChanged := map[int64]bool{}
			for _, a := range assignments {
				k := a.CellKey()
				if !s.frozen[k] && !seenChanged[a.TupleID] {
					seenChanged[a.TupleID] = true
					s.dirty = append(s.dirty, a.TupleID)
				}
				if s.frozen[k] {
					continue
				}
				s.updates[k]++
				if s.updates[k] >= freezeAfter {
					s.frozen[k] = true
				}
			}
			if n == 0 {
				// The algorithm proposed nothing applicable; freeze the cells
				// of the remaining fixes to guarantee forward progress.
				for _, fs := range actionable {
					for _, f := range fs.Fixes {
						for _, cell := range f.Cells() {
							s.frozen[cell.MapKey()] = true
						}
					}
				}
			} else {
				applied = append(applied, assignments...)
			}
			return false, nil
		}()
		rsp.End()
		if err != nil {
			return Report{}, err
		}
		if done {
			return s.finishFlush(rep, applied), nil
		}
	}

	// Out of iterations: report what is left.
	det, err := s.detect()
	if err != nil {
		return Report{}, err
	}
	rep.RemainingViolations = len(det.Violations)
	return s.finishFlush(rep, applied), nil
}

// detect runs one detection pass: incremental over the dirty set when the
// session has a detector (nil dirty — a never-scanned relation — forces the
// priming full pass), full otherwise.
func (s *Session) detect() (*core.DetectResult, error) {
	if s.det == nil {
		return core.DetectRulesWith(s.cfg.Ctx, s.cfg.Planner, s.cfg.Rules, s.rel)
	}
	changed := s.dirty
	if !s.det.Primed() {
		changed = nil
	}
	res, err := s.det.Detect(s.rel, changed)
	if err != nil {
		return nil, err
	}
	s.dirty = s.dirty[:0]
	return res, nil
}

// finishFlush stamps the flush-invariant report fields and folds the
// flush's applied assignments into the session-lifetime repair memory (done
// here, not per round, so a flush behaves exactly like one Clean run).
func (s *Session) finishFlush(rep Report, applied []repair.Assignment) Report {
	s.memory.Record(applied, s.frozen)
	s.flushes++
	s.totalUpdates += int64(rep.UpdatesApplied)
	rep.FrozenCells = len(s.frozen)
	rep.Tuples = s.rel.Len()
	rep.Engine = s.cfg.Ctx.Stats().Snapshot()
	return rep
}

// Close ends the session. It does not flush — callers that want the last
// batches repaired call Flush first (the serve layer's drain path does).
// Close is idempotent; every other method fails after it.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	// A session opened from a context-owning Cleaner (WithEngineConfig)
	// carries the ownership in its frozen config copy: closing the session
	// shuts the backend down, which on the networked backend terminates the
	// spawned worker processes.
	return s.cfg.Close()
}

// Relation returns a deep copy of the session's current (repaired-so-far)
// relation. It remains available after Close.
func (s *Session) Relation() *model.Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rel.Clone()
}

// Incremental reports whether the session maintains incremental detection
// state (false means the rule set had nothing incrementalizable and the
// session fell back to full re-detection per Flush round).
func (s *Session) Incremental() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det != nil
}

// Status is a point-in-time summary of a session, cheap enough to poll.
type Status struct {
	// Tuples is the current relation size; Ingested counts tuples accepted
	// over the session's lifetime (the same unless tuples were removed).
	Tuples   int
	Ingested int64
	// Flushes counts completed Flush calls; UpdatesApplied and FrozenCells
	// accumulate over all of them.
	Flushes        int
	UpdatesApplied int64
	FrozenCells    int
	// Incremental reports the detection mode; Closed the lifecycle state.
	Incremental bool
	Closed      bool
}

// Status reports the session's current state. It remains available after
// Close.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Tuples:         s.rel.Len(),
		Ingested:       s.ingested,
		Flushes:        s.flushes,
		UpdatesApplied: s.totalUpdates,
		FrozenCells:    len(s.frozen),
		Incremental:    s.det != nil,
		Closed:         s.closed,
	}
}
