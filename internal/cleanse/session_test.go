package cleanse

import (
	"strings"
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/probrepair"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

func dcSalaryRate(t *testing.T, schema *model.Schema) *core.Rule {
	t.Helper()
	dc, err := rules.ParseDC("phi2", "t1.salary > t2.salary & t1.rate < t2.rate")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := dc.Compile(schema)
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

func assertSameRelation(t *testing.T, got, want *model.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("relation size: got %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		g, w := got.Tuples[i], want.Tuples[i]
		if g.ID != w.ID {
			t.Fatalf("tuple %d: id %d vs %d", i, g.ID, w.ID)
		}
		for c := range w.Cells {
			if !g.Cell(c).Equal(w.Cell(c)) {
				t.Errorf("tuple %d col %d: %v vs %v", w.ID, c, g.Cell(c), w.Cell(c))
			}
		}
	}
}

// TestSessionStreamingEquivalence is the acceptance test for the session
// API: the Figure 9 dataset (TaxA) pushed through a Session in k batches
// with one Flush must produce exactly the relation and violation counts of
// a one-shot Clean over the same tuples, for a mixed FD + DC rule set
// (the DC is not incrementalizable, so this also exercises the bounded
// re-detection fallback inside a streaming session).
func TestSessionStreamingEquivalence(t *testing.T) {
	rel := datagen.TaxA(240, 0.1, 7).Dirty
	mkRules := func() []*core.Rule {
		return []*core.Rule{fdZipCity(t, rel), dcSalaryRate(t, rel.Schema)}
	}

	oneShot, err := NewCleaner(engine.New(4), mkRules(),
		WithParallelRepair(repair.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := oneShot.Clean(rel)
	if err != nil {
		t.Fatal(err)
	}

	cleaner, err := NewCleaner(engine.New(4), mkRules(),
		WithParallelRepair(repair.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cleaner.Open(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Incremental() {
		t.Fatal("FD in the rule set should enable incremental detection")
	}
	const k = 4
	per := rel.Len() / k
	for b := 0; b < k; b++ {
		end := (b + 1) * per
		if b == k-1 {
			end = rel.Len()
		}
		if err := s.Ingest(rel.Tuples[b*per : end]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}

	want := res.Report()
	if rep.InitialViolations != want.InitialViolations {
		t.Errorf("initial violations: session %d, clean %d", rep.InitialViolations, want.InitialViolations)
	}
	if rep.RemainingViolations != want.RemainingViolations {
		t.Errorf("remaining violations: session %d, clean %d", rep.RemainingViolations, want.RemainingViolations)
	}
	if rep.Iterations != want.Iterations {
		t.Errorf("iterations: session %d, clean %d", rep.Iterations, want.Iterations)
	}
	if rep.UpdatesApplied != want.UpdatesApplied {
		t.Errorf("updates: session %d, clean %d", rep.UpdatesApplied, want.UpdatesApplied)
	}
	if rep.Flush != 1 || rep.Tuples != rel.Len() {
		t.Errorf("flush=%d tuples=%d, want 1 and %d", rep.Flush, rep.Tuples, rel.Len())
	}
	assertSameRelation(t, s.Relation(), res.Clean)
}

// TestSessionMultiFlushConverges: a session flushed between batches must
// leave zero remaining FD violations after every flush, carry the
// frozen-cell state across flushes, and number the flush reports.
func TestSessionMultiFlushConverges(t *testing.T) {
	rel := dirtyTax(8, 8, 2)
	cleaner, err := NewCleaner(engine.New(4), []*core.Rule{fdZipCity(t, rel)},
		WithParallelRepair(repair.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cleaner.Open(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	half := rel.Len() / 2
	if err := s.Ingest(rel.Tuples[:half]); err != nil {
		t.Fatal(err)
	}
	rep1, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Flush != 1 {
		t.Errorf("first flush numbered %d", rep1.Flush)
	}
	if rep1.RemainingViolations != 0 {
		t.Errorf("flush 1 left %d violations", rep1.RemainingViolations)
	}

	if err := s.Ingest(rel.Tuples[half:]); err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Flush != 2 {
		t.Errorf("second flush numbered %d", rep2.Flush)
	}
	if rep2.RemainingViolations != 0 {
		t.Errorf("flush 2 left %d violations", rep2.RemainingViolations)
	}
	if rep2.Tuples != rel.Len() {
		t.Errorf("flush 2 saw %d tuples, want %d", rep2.Tuples, rel.Len())
	}

	st := s.Status()
	if st.Flushes != 2 || st.Ingested != int64(rel.Len()) || st.Tuples != rel.Len() {
		t.Errorf("status after two flushes: %+v", st)
	}

	// A third flush with nothing new ingested must be a no-op: cached
	// detection state is reused and nothing is repaired.
	rep3, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.InitialViolations != 0 || rep3.UpdatesApplied != 0 {
		t.Errorf("idle flush did work: %+v", rep3)
	}
}

// TestSessionFallbackFullDetection: a rule set with nothing
// incrementalizable still opens; the session runs in full re-detection
// mode and cleansing works.
func TestSessionFallbackFullDetection(t *testing.T) {
	rel := datagen.TaxB(120, 0.05, 3).Dirty
	cleaner, err := NewCleaner(engine.New(2), []*core.Rule{dcSalaryRate(t, rel.Schema)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cleaner.Open(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Incremental() {
		t.Fatal("a DC-only rule set must fall back to full re-detection")
	}
	if err := s.Ingest(rel.Tuples); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitialViolations == 0 {
		t.Error("TaxB dirty instance should violate phi2")
	}
}

// TestOpenValidation: configuration errors surface at Open, not at Flush.
func TestOpenValidation(t *testing.T) {
	rel := dirtyTax(2, 4, 1)
	cleaner, err := NewCleaner(engine.New(2), []*core.Rule{fdZipCity(t, rel)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cleaner.Open(nil); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := cleaner.Open(rel.Schema, WithMaxIterations(-1)); err == nil {
		t.Error("negative WithMaxIterations accepted")
	}
	if _, err := cleaner.Open(rel.Schema, WithFreezeAfter(-2)); err == nil {
		t.Error("negative WithFreezeAfter accepted")
	}

	bad := &Cleaner{Ctx: engine.New(2)}
	if _, err := bad.Open(rel.Schema); err == nil || !strings.Contains(err.Error(), "no rules") {
		t.Errorf("empty rule set: %v", err)
	}
	bad = &Cleaner{Rules: []*core.Rule{fdZipCity(t, rel)}}
	if _, err := bad.Open(rel.Schema); err == nil || !strings.Contains(err.Error(), "nil engine context") {
		t.Errorf("nil context: %v", err)
	}

	if _, err := NewCleaner(engine.New(2), []*core.Rule{nil}); err == nil {
		t.Error("nil rule accepted")
	}
	if _, err := NewCleaner(engine.New(2), []*core.Rule{fdZipCity(t, rel)}, WithMaxIterations(-3)); err == nil {
		t.Error("NewCleaner accepted negative WithMaxIterations")
	}
}

// TestSessionIngestErrors: arity and duplicate-ID validation reject the
// whole batch atomically, and a closed session refuses everything.
func TestSessionIngestErrors(t *testing.T) {
	rel := dirtyTax(2, 4, 1)
	cleaner, err := NewCleaner(engine.New(2), []*core.Rule{fdZipCity(t, rel)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cleaner.Open(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Ingest(rel.Tuples[:4]); err != nil {
		t.Fatal(err)
	}
	// Wrong arity fails, and the valid leading tuple must not leak in.
	bad := []model.Tuple{rel.Tuples[4], model.NewTuple(99, model.S("short"))}
	if err := s.Ingest(bad); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if got := s.Status().Tuples; got != 4 {
		t.Fatalf("failed batch leaked tuples: %d", got)
	}
	// Duplicate against the relation and within the batch.
	if err := s.Ingest(rel.Tuples[3:4]); err == nil {
		t.Error("duplicate id vs relation accepted")
	}
	if err := s.Ingest([]model.Tuple{rel.Tuples[5], rel.Tuples[5]}); err == nil {
		t.Error("duplicate id within batch accepted")
	}

	// Negative IDs get fresh ones past the current maximum.
	fresh := rel.Tuples[6].Clone()
	fresh.ID = -1
	if err := s.Ingest([]model.Tuple{fresh}); err != nil {
		t.Fatal(err)
	}
	r := s.Relation()
	if last := r.Tuples[r.Len()-1].ID; last != 4 {
		t.Errorf("auto-assigned id = %d, want 4 (max ingested was 3)", last)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if err := s.Ingest(rel.Tuples[6:7]); err == nil {
		t.Error("ingest after close accepted")
	}
	if _, err := s.Flush(); err == nil {
		t.Error("flush after close accepted")
	}
	if s.Relation() == nil || !s.Status().Closed {
		t.Error("Relation/Status must survive Close")
	}
}

// TestSessionRepairMemorySticky: a value the session repaired toward in an
// earlier flush keeps winning ties in later flushes, even when fresh
// ingests would otherwise flip the majority (the class-memory extension).
func TestSessionRepairMemorySticky(t *testing.T) {
	schema := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	mk := func(id int64, city string) model.Tuple {
		return model.NewTuple(id, model.S("p"), model.I(11111), model.S(city),
			model.S("ST"), model.F(float64(id)), model.F(1))
	}
	cleaner, err := NewCleaner(engine.New(2),
		[]*core.Rule{fdZipCity(t, model.NewRelation("tax", schema))})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cleaner.Open(schema)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Flush 1: Beta outvotes Alpha 2-1; every city cell is driven to Beta.
	if err := s.Ingest([]model.Tuple{mk(1, "Beta"), mk(2, "Beta"), mk(3, "Alpha")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Flush 2: one more Alpha arrives. Current values now tie 3-3 as the
	// memory votes are what keep the class on Beta; without stickiness the
	// lexicographic tie-break would flip everything to Alpha.
	if err := s.Ingest([]model.Tuple{mk(4, "Alpha")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, tp := range s.Relation().Tuples {
		if got := tp.Cell(2).String(); got != "Beta" {
			t.Errorf("tuple %d: city %q, want sticky Beta", tp.ID, got)
		}
	}
}

// TestSessionProbAlgorithm runs streaming sessions with the probabilistic
// repair backend: the session must clone the algorithm (per-session learned
// state, the shared instance stays untouched), learn on the first flush,
// repair the violations, and reproduce the same relation session over
// session for a fixed seed.
func TestSessionProbAlgorithm(t *testing.T) {
	rel := dirtyTax(8, 8, 2)
	shared := probrepair.New(7)
	cleaner, err := NewCleaner(engine.New(4), []*core.Rule{fdZipCity(t, rel)},
		WithAlgorithm(shared),
		WithParallelRepair(repair.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *model.Relation {
		t.Helper()
		s, err := cleaner.Open(rel.Schema)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Ingest(rel.Tuples); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if rep.InitialViolations == 0 || rep.RemainingViolations != 0 {
			t.Fatalf("prob flush: %+v", rep)
		}
		return s.Relation()
	}
	a := runOnce()
	b := runOnce()
	assertSameRelation(t, a, b)
	// The session worked on a clone: the instance handed to the cleaner
	// must not have accumulated learned state.
	if cl := shared.CloneAlgorithm().(*probrepair.Prob); cl.Seed != 7 {
		t.Errorf("shared prob instance lost its configuration: %+v", cl)
	}
}
