package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// Keying-layer micro-benchmarks: the per-record cost of turning tuples into
// block groups and of deduplicating violations — the constant factors the
// paper's scalability figures (9 and 11) depend on.

func benchTuples(n int, seed int64) []model.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([]model.Tuple, n)
	for i := range out {
		out[i] = model.NewTuple(int64(i),
			model.S(fmt.Sprintf("zip%d", r.Intn(n/20+1))),
			model.I(int64(r.Intn(1000))),
			model.F(float64(r.Intn(1000))/7),
		)
	}
	return out
}

// BenchmarkBlockGroup measures the Block path: key every tuple on one cell
// and group — the shape of every FD/CFD detection pipeline's shuffle.
func BenchmarkBlockGroup(b *testing.B) {
	ctx := engine.New(4)
	tuples := benchTuples(100000, 42)
	block := func(t model.Tuple) model.Value { return t.Cell(0) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := engine.Parallelize(ctx, tuples, 0)
		keyed := engine.KeyBy(d, func(t model.Tuple) model.ValueKey { return block(t).MapKey() })
		if _, err := engine.GroupByKey(keyed).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFixSets(n int) []model.FixSet {
	out := make([]model.FixSet, 0, n)
	for i := 0; i < n; i++ {
		// Every violation emitted twice (both orientations), the SQL
		// self-join duplication dedup exists to remove.
		l := model.NewCell(int64(i), 2, "city", model.S("a"))
		r := model.NewCell(int64(i+n), 2, "city", model.S("b"))
		v1 := model.NewViolation("phi1", l, r)
		v2 := model.NewViolation("phi1", r, l)
		out = append(out, model.FixSet{Violation: v1}, model.FixSet{Violation: v2})
	}
	return out
}

// BenchmarkViolationDedup measures the violation-identity path used by both
// the per-pipeline Distinct and the cross-pipeline dedupeResult.
func BenchmarkViolationDedup(b *testing.B) {
	sets := benchFixSets(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := &DetectResult{}
		for _, fs := range sets {
			res.Violations = append(res.Violations, fs.Violation)
			res.FixSets = append(res.FixSets, fs)
		}
		dedupeResult(res)
		if len(res.Violations) != 50000 {
			b.Fatalf("got %d", len(res.Violations))
		}
	}
}

// benchDetectRel is tax-shaped data with bench-friendly blocking: zipcode
// cardinality scales with n so blocks stay ~16 rows and one iteration is a
// realistic FD scan, not a quadratic blowup inside a handful of huge blocks
// (vecTaxData's 12-zipcode domain is built for equivalence tests, not timing).
func benchDetectRel(n int, seed int64) *model.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	cities := []string{"NY", "LA", "CH", "SF", ""}
	zipCard := n/16 + 1
	for i := 0; i < n; i++ {
		var rate model.Value
		if rng.Intn(4) == 0 {
			rate = model.F(0)
		} else {
			rate = model.F(float64(rng.Intn(40)))
		}
		rel.Append(model.NewTuple(int64(i+1),
			model.S(fmt.Sprintf("p%d", i)),
			model.I(int64(rng.Intn(zipCard))),
			model.S(cities[rng.Intn(len(cities))]),
			model.S("ST"),
			model.F(float64(rng.Intn(9000))),
			rate,
		))
	}
	return rel
}

// BenchmarkDetectScan measures a full Scope→Block→Detect scan over the same
// rule and relation on the tuple-at-a-time path and the vectorized batch
// path. Uses the handwritten vec rules from exec_vector_test.go: a scoped FD
// over a blocked pair kernel and a unary constant-predicate rule.
func BenchmarkDetectScan(b *testing.B) {
	rel := benchDetectRel(20000, 42)
	run := func(name string, ctx *engine.Context, r *Rule) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DetectRule(ctx, r, rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	tuple := engine.New(4)
	vec := engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: 1024})
	run("fd-tuple", tuple, vecScopedFDRule())
	run("fd-vec", vec, vecScopedFDRule())
	run("unary-tuple", tuple, vecUnaryRule())
	run("unary-vec", vec, vecUnaryRule())
}
