package core

import (
	"sync/atomic"
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// Appendix E works over two tables: Global (employees as HQ sees them) and
// Local (employees as a site sees them). These tests exercise multi-input
// jobs and bushy plans: several Detects sharing scans over two relations.

func globalTable() *model.Relation {
	s := model.MustParseSchema("gid:int,fn,ln,role,city,st,sal:float")
	rel := model.NewRelation("G", s)
	add := func(id int64, fn, ln, role, city, st string, sal float64) {
		rel.Append(model.NewTuple(id, model.I(id), model.S(fn), model.S(ln), model.S(role), model.S(city), model.S(st), model.F(sal)))
	}
	add(1, "Ann", "Lee", "E", "NYC", "NY", 90000)
	add(2, "Bob", "Ray", "M", "NYC", "NY", 120000)
	add(3, "Cal", "Fox", "E", "SF", "CA", 95000)
	add(4, "Dee", "Kim", "E", "SF", "WA", 80000) // st inconsistent with city SF
	return rel
}

func localTable() *model.Relation {
	s := model.MustParseSchema("lid:int,fn,ln,rnk,city,mid:int,sal:float")
	rel := model.NewRelation("L", s)
	add := func(id int64, fn, ln, rnk, city string, mid int64, sal float64) {
		rel.Append(model.NewTuple(100+id, model.I(id), model.S(fn), model.S(ln), model.S(rnk), model.S(city), model.I(mid), model.F(sal)))
	}
	add(1, "Ann", "Lee", "senior", "NYC", 2, 91000) // salary disagrees with G
	add(2, "Bob", "Ray", "mgr", "NYC", 2, 120000)
	add(3, "Cal", "Fox", "junior", "SF", 2, 95000)
	return rel
}

// TestTwoRelationJob runs a cross-table rule: a local employee and a global
// employee with the same first+last name must report the same salary.
func TestTwoRelationJob(t *testing.T) {
	g, l := globalTable(), localTable()
	nameKeyG := func(tp model.Tuple) model.Value { return model.S(tp.Cell(1).Key() + "|" + tp.Cell(2).Key()) }
	nameKeyL := func(tp model.Tuple) model.Value { return model.S(tp.Cell(1).Key() + "|" + tp.Cell(2).Key()) }

	job := NewJob("cross-table salary")
	job.AddInput(l, "L")
	job.AddInput(g, "G")
	job.AddBlock(nameKeyL, "L")
	job.AddBlock(nameKeyG, "G")
	job.AddIterate(PairsAcross, "V", "L", "G")
	job.AddDetect(func(it Item) []model.Violation {
		lt, gt := it.Left(), it.Right()
		if lt.Cell(6).Equal(gt.Cell(6)) {
			return nil
		}
		return []model.Violation{model.NewViolation("salary",
			model.NewCell(lt.ID, 6, "sal", lt.Cell(6)),
			model.NewCell(gt.ID, 6, "sal", gt.Cell(6)))}
	}, "V")
	job.AddGenFix(func(v model.Violation) []model.Fix {
		return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
	}, "V")

	lp, err := BuildPlan(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Pipelines) != 1 || len(lp.Pipelines[0].Branches) != 2 {
		t.Fatalf("plan shape: %+v", lp.Pipelines)
	}
	if lp.Pipelines[0].Branches[0].Dataset != "L" || lp.Pipelines[0].Branches[1].Dataset != "G" {
		t.Errorf("branch datasets: %v, %v", lp.Pipelines[0].Branches[0].Dataset, lp.Pipelines[0].Branches[1].Dataset)
	}

	ctx := engine.New(4)
	res, err := RunJobSpark(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	// Only Ann Lee's salaries disagree (91000 vs 90000).
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(res.Violations), res.Violations)
	}
	ids := res.Violations[0].TupleIDs()
	if ids[0] != 1 || ids[1] != 101 {
		t.Errorf("violating tuples = %v, want G#1 and L#101", ids)
	}
	if len(res.FixSets[0].Fixes) != 1 {
		t.Error("a fix should be proposed")
	}
}

// TestBushyPlanSharedScans runs two Detects over the same two inputs (the
// Figure 16 shape): both rules block G on city; consolidation recognizes
// the shared scan.
func TestBushyPlanSharedScans(t *testing.T) {
	g := globalTable()
	cityKey := func(tp model.Tuple) model.Value { return tp.Cell(4) }

	job := NewJob("bushy")
	job.AddInput(g, "G1", "G2")
	// c1: same city must mean same state.
	job.AddBlock(cityKey, "G1")
	job.AddIterate(PairsUnique, "V1", "G1")
	job.AddDetect(func(it Item) []model.Violation {
		a, b := it.Left(), it.Right()
		if a.Cell(5).Equal(b.Cell(5)) {
			return nil
		}
		return []model.Violation{model.NewViolation("c1",
			model.NewCell(a.ID, 5, "st", a.Cell(5)),
			model.NewCell(b.ID, 5, "st", b.Cell(5)))}
	}, "V1")
	// c2: within a city, a manager must earn at least what an employee earns.
	job.AddBlock(cityKey, "G2")
	job.AddIterate(PairsOrdered, "V2", "G2")
	job.AddDetect(func(it Item) []model.Violation {
		m, e := it.Left(), it.Right()
		if m.Cell(3).String() != "M" || e.Cell(3).String() != "E" {
			return nil
		}
		if m.Cell(6).Float() >= e.Cell(6).Float() {
			return nil
		}
		return []model.Violation{model.NewViolation("c2",
			model.NewCell(m.ID, 6, "sal", m.Cell(6)),
			model.NewCell(e.ID, 6, "sal", e.Cell(6)))}
	}, "V2")

	lp, err := BuildPlan(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Pipelines) != 2 {
		t.Fatalf("pipelines = %d", len(lp.Pipelines))
	}
	lp = Consolidate(lp)
	if lp.SharedScans != 1 {
		t.Errorf("shared scans = %d, want 1 (G scanned once for both rules)", lp.SharedScans)
	}

	ctx := engine.New(4)
	res, err := RunJobSpark(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, v := range res.Violations {
		byRule[v.RuleID]++
	}
	// c1: SF has CA vs WA -> 1 violation. c2: no manager underpaid -> 0.
	if byRule["c1"] != 1 || byRule["c2"] != 0 {
		t.Errorf("per-rule counts = %v", byRule)
	}
}

// TestJobCustomIterateTwoStreams feeds a user Iterate the bags of two
// co-grouped streams (the D_M flow of Figure 4).
func TestJobCustomIterateTwoStreams(t *testing.T) {
	g, l := globalTable(), localTable()
	cityG := func(tp model.Tuple) model.Value { return tp.Cell(4) }
	cityL := func(tp model.Tuple) model.Value { return tp.Cell(4) }

	var calls atomic.Int32
	job := NewJob("custom iterate")
	job.AddInput(l, "L")
	job.AddInput(g, "G")
	job.AddBlock(cityL, "L")
	job.AddBlock(cityG, "G")
	job.AddIterate(func(blocks [][]model.Tuple) []Item {
		calls.Add(1)
		// Emit the whole co-grouped block as one list item.
		var all []model.Tuple
		for _, b := range blocks {
			all = append(all, b...)
		}
		if len(all) == 0 {
			return nil
		}
		return []Item{ListItem(all)}
	}, "V", "L", "G")
	job.AddDetect(func(it Item) []model.Violation {
		if it.Kind != ItemList {
			t.Errorf("expected list item, got %v", it.Kind)
		}
		return nil
	}, "V")

	ctx := engine.New(2)
	if _, err := RunJobSpark(ctx, job); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Error("custom iterate should run per co-grouped key")
	}
}
