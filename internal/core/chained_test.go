package core

import (
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// TestChainedIterates reproduces the Listing 3 / Figure 4 flow: dataset D1
// flows as labels S and T, an Iterate produces stream M from them, and a
// second Iterate combines M with D2's stream W before Detect.
func TestChainedIterates(t *testing.T) {
	s1 := model.MustParseSchema("id:int,grp,val:float")
	d1 := model.NewRelation("D1", s1)
	d1.Append(
		model.NewTuple(1, model.I(1), model.S("a"), model.F(10)),
		model.NewTuple(2, model.I(2), model.S("a"), model.F(20)),
		model.NewTuple(3, model.I(3), model.S("b"), model.F(30)),
	)
	s2 := model.MustParseSchema("id:int,grp,cap:float")
	d2 := model.NewRelation("D2", s2)
	d2.Append(
		model.NewTuple(100, model.I(100), model.S("a"), model.F(15)),
		model.NewTuple(101, model.I(101), model.S("b"), model.F(50)),
	)

	grpKey := func(tp model.Tuple) model.Value { return tp.Cell(1) }

	job := NewJob("Example Job")
	job.AddInput(d1, "S", "T")
	job.AddInput(d2, "W")
	job.AddBlock(grpKey, "S")
	job.AddBlock(grpKey, "T")
	// Iterate 1: per group, keep only the max-val unit of S∪T -> stream M.
	job.AddIterate(func(blocks [][]model.Tuple) []Item {
		var best *model.Tuple
		for _, bag := range blocks {
			for i := range bag {
				if best == nil || bag[i].Cell(2).Float() > best.Cell(2).Float() {
					best = &bag[i]
				}
			}
		}
		if best == nil {
			return nil
		}
		return []Item{Single(*best)}
	}, "M", "S", "T")
	// Stream M is blocked by group and joined with W's groups.
	job.AddBlock(grpKey, "M")
	job.AddBlock(grpKey, "W")
	// Iterate 2: pair each max unit with its group's cap row -> stream V.
	job.AddIterate(PairsAcross, "V", "M", "W")
	job.AddDetect(func(it Item) []model.Violation {
		m, w := it.Left(), it.Right()
		if m.Cell(2).Float() <= w.Cell(2).Float() {
			return nil
		}
		return []model.Violation{model.NewViolation("cap",
			model.NewCell(m.ID, 2, "val", m.Cell(2)),
			model.NewCell(w.ID, 2, "cap", w.Cell(2)))}
	}, "V")
	job.AddGenFix(func(v model.Violation) []model.Fix {
		return []model.Fix{model.NewCellFix(v.Cells[0], model.OpLE, v.Cells[1])}
	}, "V")

	lp, err := BuildPlan(job)
	if err != nil {
		t.Fatal(err)
	}
	p := lp.Pipelines[0]
	if len(p.Branches) != 2 {
		t.Fatalf("branches = %d", len(p.Branches))
	}
	if p.Branches[0].Derived == nil {
		t.Fatal("branch M should be derived from the first Iterate")
	}
	if len(p.Branches[0].Derived.Branches) != 2 {
		t.Errorf("derived branches = %d, want 2 (S and T)", len(p.Branches[0].Derived.Branches))
	}
	if p.Branches[1].Dataset != "W" {
		t.Errorf("second branch = %q", p.Branches[1].Dataset)
	}

	ctx := engine.New(4)
	res, err := RunJobSpark(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	// Group a: max val 20 > cap 15 -> violation. Group b: 30 <= 50 -> none.
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d: %v", len(res.Violations), res.Violations)
	}
	ids := res.Violations[0].TupleIDs()
	if ids[0] != 2 || ids[1] != 100 {
		t.Errorf("violating tuples = %v, want {2,100}", ids)
	}
}

// TestChainedIterateCycleDetected rejects a label cycle.
func TestChainedIterateCycleDetected(t *testing.T) {
	rel := exampleTax()
	job := NewJob("cycle")
	job.AddInput(rel, "S")
	job.AddIterate(Singles, "A", "B")
	job.AddIterate(Singles, "B", "A")
	job.AddDetect(func(Item) []model.Violation { return nil }, "A")
	if _, err := BuildPlan(job); err == nil {
		t.Fatal("cyclic labels should be rejected")
	}
}

// TestDerivedStreamUnkeyedFallback runs a two-branch custom Iterate where
// one side is unkeyed: the executor materializes the bags and calls the
// Iterate once.
func TestDerivedStreamUnkeyedFallback(t *testing.T) {
	rel := exampleTax()
	job := NewJob("unkeyed")
	job.AddInput(rel, "S", "T")
	job.AddBlock(func(tp model.Tuple) model.Value { return tp.Cell(3) }, "S")
	// T stays unkeyed.
	called := 0
	job.AddIterate(func(blocks [][]model.Tuple) []Item {
		called++
		if len(blocks) != 2 {
			t.Errorf("blocks = %d", len(blocks))
		}
		return nil
	}, "V", "S", "T")
	job.AddDetect(func(Item) []model.Violation { return nil }, "V")
	ctx := engine.New(2)
	if _, err := RunJobSpark(ctx, job); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Errorf("iterate calls = %d, want 1 (single materialized invocation)", called)
	}
}
