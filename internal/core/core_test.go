package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/join"
	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
)

// exampleTax builds the dataset D of Example 1 (Table 1).
func exampleTax() *model.Relation {
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	add := func(id int64, name string, zip int64, city, state string, salary, rate float64) {
		rel.Append(model.NewTuple(id, model.S(name), model.I(zip), model.S(city), model.S(state), model.F(salary), model.F(rate)))
	}
	add(1, "Annie", 10011, "NY", "NY", 24000, 15)
	add(2, "Laure", 90210, "LA", "CA", 25000, 10)
	add(3, "John", 60601, "CH", "IL", 40000, 25)
	add(4, "Mark", 90210, "SF", "CA", 88000, 28)
	add(5, "Robert", 68270, "CH", "IL", 15000, 20)
	add(6, "Mary", 90210, "LA", "CA", 81000, 28)
	return rel
}

// fdRule builds the φF rule (zipcode -> city) by hand, mirroring the code
// the declarative translator generates (Listings 1-2 and 4-6).
func fdRule() *Rule {
	return &Rule{
		ID: "phiF",
		Scope: func(t model.Tuple) []model.Tuple {
			// Project zipcode (orig col 1) and city (orig col 2), keeping
			// original column positions so fixes address the base table.
			return []model.Tuple{t}
		},
		Block:     func(t model.Tuple) model.Value { return t.Cell(1) },
		Symmetric: true,
		Detect: func(it Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if l.Cell(2).Equal(r.Cell(2)) {
				return nil
			}
			v := model.NewViolation("phiF",
				model.NewCell(l.ID, 2, "city", l.Cell(2)),
				model.NewCell(r.ID, 2, "city", r.Cell(2)),
			)
			return []model.Violation{v}
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
		},
	}
}

// dcRule builds φD: violation when t1.rate > t2.rate and t1.salary < t2.salary.
func dcRule() *Rule {
	return &Rule{
		ID: "phiD",
		OrderConds: []join.Cond{
			{LeftCol: 5, Op: model.OpGT, RightCol: 5}, // t1.rate > t2.rate
			{LeftCol: 4, Op: model.OpLT, RightCol: 4}, // t1.salary < t2.salary
		},
		Detect: func(it Item) []model.Violation {
			l, r := it.Left(), it.Right()
			v := model.NewViolation("phiD",
				model.NewCell(l.ID, 5, "rate", l.Cell(5)),
				model.NewCell(r.ID, 5, "rate", r.Cell(5)),
				model.NewCell(l.ID, 4, "salary", l.Cell(4)),
				model.NewCell(r.ID, 4, "salary", r.Cell(4)),
			)
			return []model.Violation{v}
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{
				model.NewCellFix(v.Cells[0], model.OpLE, v.Cells[1]),
				model.NewCellFix(v.Cells[2], model.OpGE, v.Cells[3]),
			}
		},
	}
}

func TestRuleValidate(t *testing.T) {
	if err := (&Rule{ID: "x", Detect: func(Item) []model.Violation { return nil }}).Validate(); err != nil {
		t.Errorf("minimal rule should validate: %v", err)
	}
	if err := (&Rule{ID: "x"}).Validate(); err == nil {
		t.Error("missing Detect should fail")
	}
	if err := (&Rule{Detect: func(Item) []model.Violation { return nil }}).Validate(); err == nil {
		t.Error("missing ID should fail")
	}
	bad := &Rule{ID: "x", Detect: func(Item) []model.Violation { return nil },
		Block:      func(model.Tuple) model.Value { return model.Value{} },
		OrderConds: []join.Cond{{LeftCol: 0, Op: model.OpLT, RightCol: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("Block plus OrderConds should fail")
	}
	badOp := &Rule{ID: "x", Detect: func(Item) []model.Violation { return nil },
		OrderConds: []join.Cond{{LeftCol: 0, Op: model.OpEQ, RightCol: 0}}}
	if err := badOp.Validate(); err == nil {
		t.Error("equality order condition should fail")
	}
	brOnly := &Rule{ID: "x", Detect: func(Item) []model.Violation { return nil },
		BlockRight: func(model.Tuple) model.Value { return model.Value{} }}
	if err := brOnly.Validate(); err == nil {
		t.Error("BlockRight without Block should fail")
	}
}

func TestFDDetectionFindsExampleViolations(t *testing.T) {
	ctx := engine.New(4)
	res, err := DetectRule(ctx, fdRule(), exampleTax())
	if err != nil {
		t.Fatal(err)
	}
	// Example 1: (t2,t4) and (t4,t6) violate phiF.
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %d, want 2: %v", len(res.Violations), res.Violations)
	}
	for _, v := range res.Violations {
		ids := v.TupleIDs()
		if !(contains(ids, 4) && (contains(ids, 2) || contains(ids, 6))) {
			t.Errorf("unexpected violation between tuples %v", ids)
		}
	}
	if len(res.AllFixes()) != 2 {
		t.Errorf("fixes = %d, want 2", len(res.AllFixes()))
	}
}

func TestDCDetectionViaOCJoin(t *testing.T) {
	ctx := engine.New(4)
	rel := exampleTax()
	lp, err := PlanRule(dcRule(), rel)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewPlanner().Plan(lp)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Pipelines[0].Impl != IterOCJoin {
		t.Fatalf("DC with ordering conditions should use OCJoin, got %v", pp.Pipelines[0].Impl)
	}
	res, err := RunPlanSpark(ctx, pp)
	if err != nil {
		t.Fatal(err)
	}
	// In this instance three pairs violate φD: (t1,t2), (t5,t2), (t5,t1) —
	// in each the left tuple earns less but pays a higher rate.
	if len(res.Violations) != 3 {
		t.Fatalf("violations = %d, want 3: %v", len(res.Violations), res.Violations)
	}
	pairs := map[[2]int64]bool{}
	for _, v := range res.Violations {
		ids := v.TupleIDs()
		pairs[[2]int64{ids[0], ids[1]}] = true
	}
	if !pairs[[2]int64{1, 2}] || !pairs[[2]int64{2, 5}] || !pairs[[2]int64{1, 5}] {
		t.Errorf("expected violations {1,2}, {2,5} and {1,5}, got %v", pairs)
	}
}

func contains(ids []int64, x int64) bool {
	for _, i := range ids {
		if i == x {
			return true
		}
	}
	return false
}

func TestOptimizerEnhancerSelection(t *testing.T) {
	rel := exampleTax()
	detect := func(Item) []model.Violation { return nil }
	block := func(t model.Tuple) model.Value { return t.Cell(1) }

	cases := []struct {
		name string
		rule *Rule
		want IterImpl
	}{
		{"symmetric blocked -> UCrossProduct", &Rule{ID: "a", Detect: detect, Block: block, Symmetric: true}, IterUniquePairs},
		{"asymmetric blocked -> CrossProduct", &Rule{ID: "b", Detect: detect, Block: block}, IterOrderedPairs},
		{"order conds -> OCJoin", &Rule{ID: "c", Detect: detect, OrderConds: []join.Cond{{LeftCol: 4, Op: model.OpLT, RightCol: 4}}}, IterOCJoin},
		{"coblock -> CoBlock", &Rule{ID: "d", Detect: detect, Block: block, BlockRight: block}, IterCoBlockPairs},
		{"unary -> PMap", &Rule{ID: "e", Detect: detect, Unary: true}, IterSingles},
		{"symmetric unblocked -> UCrossProduct", &Rule{ID: "f", Detect: detect, Symmetric: true}, IterUniquePairs},
		{"custom iterate -> PIterate", &Rule{ID: "g", Detect: detect, Iterate: func([][]model.Tuple) []Item { return nil }}, IterCustom},
	}
	for _, c := range cases {
		lp, err := PlanRule(c.rule, rel)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		pp, err := NewPlanner().Plan(lp)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := pp.Pipelines[0].Impl; got != c.want {
			t.Errorf("%s: impl = %v, want %v", c.name, got, c.want)
		}
		if pp.Explain() == "" {
			t.Errorf("%s: Explain should render", c.name)
		}
	}
}

func TestJobAPIAndPlanBuilding(t *testing.T) {
	rel := exampleTax()
	job := NewJob("Example Job")
	job.AddInput(rel, "S")
	job.AddScope(func(t model.Tuple) []model.Tuple { return []model.Tuple{t} }, "S")
	job.AddBlock(func(t model.Tuple) model.Value { return t.Cell(1) }, "S")
	job.AddIterate(PairsUnique, "V", "S")
	job.AddDetect(fdRule().Detect, "V")
	job.AddGenFix(fdRule().GenFix, "V")

	lp, err := BuildPlan(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Pipelines) != 1 {
		t.Fatalf("pipelines = %d", len(lp.Pipelines))
	}
	p := lp.Pipelines[0]
	if len(p.Branches) != 1 || p.Branches[0].Dataset != "S" {
		t.Errorf("branch = %+v", p.Branches)
	}
	if len(p.Branches[0].Scopes) != 1 || p.Branches[0].Block == nil {
		t.Error("scope and block should resolve")
	}
	if p.GenFix == nil {
		t.Error("genfix should match detect label")
	}

	ctx := engine.New(4)
	res, err := RunJobSpark(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Errorf("job execution found %d violations, want 2", len(res.Violations))
	}
}

func TestJobValidationErrors(t *testing.T) {
	rel := exampleTax()

	empty := NewJob("no inputs")
	empty.AddDetect(func(Item) []model.Violation { return nil }, "X")
	if _, err := BuildPlan(empty); err == nil {
		t.Error("job with no inputs should fail")
	}

	noDetect := NewJob("no detect")
	noDetect.AddInput(rel, "S")
	if _, err := BuildPlan(noDetect); err == nil {
		t.Error("job with no Detect should fail")
	}

	badLabel := NewJob("bad label")
	badLabel.AddInput(rel, "S")
	badLabel.AddBlock(func(model.Tuple) model.Value { return model.Value{} }, "T")
	badLabel.AddDetect(func(Item) []model.Violation { return nil }, "S")
	if _, err := BuildPlan(badLabel); err == nil {
		t.Error("block on undefined label should fail")
	}

	orphanFix := NewJob("orphan genfix")
	orphanFix.AddInput(rel, "S")
	orphanFix.AddDetect(func(Item) []model.Violation { return nil }, "S")
	orphanFix.AddGenFix(func(model.Violation) []model.Fix { return nil }, "Z")
	if _, err := BuildPlan(orphanFix); err == nil {
		t.Error("GenFix without matching Detect should fail")
	}
}

func TestConsolidationSharesScans(t *testing.T) {
	rel := exampleTax()
	// Rule (1)-style DC: same dataset scanned twice under different labels.
	scope := func(t model.Tuple) []model.Tuple { return []model.Tuple{t} }
	r := &Rule{
		ID:     "dc1",
		Scope:  scope,
		Block:  func(t model.Tuple) model.Value { return t.Cell(0) },
		Detect: func(Item) []model.Violation { return nil },
	}
	r.BlockRight = func(t model.Tuple) model.Value { return t.Cell(0) }
	lp, err := PlanRule(r, rel)
	if err != nil {
		t.Fatal(err)
	}
	lp = Consolidate(lp)
	if lp.SharedScans != 1 {
		t.Errorf("shared scans = %d, want 1 (two branches over one dataset+scope)", lp.SharedScans)
	}

	// Multi-rule consolidation: rules sharing the same Scope function over
	// the same table share one scan (Algorithm 1 matches operators by the
	// function they apply, not by label).
	sharedScope := func(t model.Tuple) []model.Tuple { return []model.Tuple{t} }
	mkRule := func(id string) *Rule {
		rr := fdRule()
		rr.ID = id
		rr.Scope = sharedScope
		return rr
	}
	rules := []*Rule{mkRule("r1"), mkRule("r2"), mkRule("r3")}
	mlp, err := PlanRules(rules, rel)
	if err != nil {
		t.Fatal(err)
	}
	mlp = Consolidate(mlp)
	if mlp.SharedScans < 2 {
		t.Errorf("multi-rule shared scans = %d, want >= 2", mlp.SharedScans)
	}
}

func TestCoBlockAcrossTwoKeyings(t *testing.T) {
	// A dedup-style self CoBlock: left keyed by zipcode, right keyed by
	// zipcode; detect reports pairs with different cities (same as FD but
	// through the CoBlock path, checking cross-bag pairing).
	ctx := engine.New(4)
	rel := exampleTax()
	seen := map[string]bool{}
	r := &Rule{
		ID:         "coblock",
		Block:      func(t model.Tuple) model.Value { return t.Cell(1) },
		BlockRight: func(t model.Tuple) model.Value { return t.Cell(1) },
		Detect: func(it Item) []model.Violation {
			l, rr := it.Left(), it.Right()
			if l.Cell(2).Equal(rr.Cell(2)) {
				return nil
			}
			v := model.NewViolation("coblock",
				model.NewCell(l.ID, 2, "city", l.Cell(2)),
				model.NewCell(rr.ID, 2, "city", rr.Cell(2)))
			return []model.Violation{v}
		},
	}
	res, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		seen[v.Key()] = true
	}
	// CoBlock pairs are ordered both ways but dedup keeps each once.
	if len(res.Violations) != 2 {
		t.Errorf("coblock violations = %d, want 2 (deduped)", len(res.Violations))
	}
}

func TestUnaryRule(t *testing.T) {
	ctx := engine.New(4)
	rel := exampleTax()
	r := &Rule{
		ID:    "salaryCap",
		Unary: true,
		Detect: func(it Item) []model.Violation {
			t := it.One()
			if t.Cell(4).Float() > 85000 {
				return []model.Violation{model.NewViolation("salaryCap",
					model.NewCell(t.ID, 4, "salary", t.Cell(4)))}
			}
			return nil
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{model.NewConstFix(v.Cells[0], model.OpLE, model.F(85000))}
		},
	}
	res, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("unary violations = %d, want 1 (t4 at 88000)", len(res.Violations))
	}
	if res.Violations[0].Cells[0].TupleID != 4 {
		t.Errorf("wrong tuple: %v", res.Violations[0])
	}
}

func TestCustomIterate(t *testing.T) {
	// Iterate that only pairs adjacent tuples within a block.
	ctx := engine.New(2)
	rel := exampleTax()
	var calls atomic.Int32
	r := &Rule{
		ID:    "adjacent",
		Block: func(t model.Tuple) model.Value { return t.Cell(3) }, // state
		Iterate: func(blocks [][]model.Tuple) []Item {
			calls.Add(1)
			us := blocks[0]
			var out []Item
			for i := 0; i+1 < len(us); i++ {
				out = append(out, PairItem(us[i], us[i+1]))
			}
			return out
		},
		Detect: func(it Item) []model.Violation {
			return []model.Violation{model.NewViolation("adjacent",
				model.NewCell(it.Left().ID, 0, "name", it.Left().Cell(0)),
				model.NewCell(it.Right().ID, 0, "name", it.Right().Cell(0)))}
		},
	}
	res, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	// States: NY(1), CA(3: adjacent pairs 2), IL(2: adjacent pairs 1) = 3.
	if len(res.Violations) != 3 {
		t.Errorf("custom iterate violations = %d, want 3", len(res.Violations))
	}
	if calls.Load() == 0 {
		t.Error("custom iterate should be invoked")
	}
}

func TestDetectPanicSurfacesAsError(t *testing.T) {
	ctx := engine.New(2)
	rel := exampleTax()
	r := &Rule{
		ID:     "boom",
		Detect: func(Item) []model.Violation { panic("detect exploded") },
	}
	_, err := DetectRule(ctx, r, rel)
	if err == nil || !strings.Contains(err.Error(), "detect exploded") {
		t.Fatalf("detect panic should surface: %v", err)
	}
}

func TestMapReduceBackendMatchesSparkBackend(t *testing.T) {
	rel := exampleTax()
	ctx := engine.New(4)
	sparkRes, err := DetectRule(ctx, fdRule(), rel)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := mapred.New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mrRes, err := DetectRuleMapReduce(eng, fdRule(), rel, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrRes.Violations) != len(sparkRes.Violations) {
		t.Fatalf("MR found %d violations, dataflow %d", len(mrRes.Violations), len(sparkRes.Violations))
	}
	keys := map[string]bool{}
	for _, v := range sparkRes.Violations {
		keys[v.Key()] = true
	}
	for _, v := range mrRes.Violations {
		if !keys[v.Key()] {
			t.Errorf("MR violation %v not found by dataflow backend", v)
		}
	}
	if len(mrRes.AllFixes()) != len(sparkRes.AllFixes()) {
		t.Errorf("fix counts differ: %d vs %d", len(mrRes.AllFixes()), len(sparkRes.AllFixes()))
	}
}

func TestMapReduceBackendRejectsOCJoin(t *testing.T) {
	eng, err := mapred.New(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, err = DetectRuleMapReduce(eng, dcRule(), exampleTax(), 2, 2)
	if err == nil {
		t.Fatal("OCJoin rule should be rejected on the MapReduce backend")
	}
}

func TestDetectRulesMultiRule(t *testing.T) {
	ctx := engine.New(4)
	res, err := DetectRules(ctx, []*Rule{fdRule(), dcRule()}, exampleTax())
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, v := range res.Violations {
		byRule[v.RuleID]++
	}
	if byRule["phiF"] != 2 || byRule["phiD"] != 3 {
		t.Errorf("per-rule counts = %v", byRule)
	}
}
