package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// This file holds the planner's cost side: the Cost vector, the CostModel
// interface with its two implementations (StaticCost reproduces the legacy
// rule-shape choices; CostBased prices scan, shuffle, pair enumeration and
// spill), the per-relation statistics gathered in one sampling pass, and the
// Observer-feedback loop (FeedbackRecorder / Feedback files) that lets
// repeated runs converge on measured pair counts.

// Cost is the planner's estimate for one physical alternative, broken into
// the components of the model so EXPLAIN can show where an alternative loses.
// Units are abstract "work" (roughly bytes moved / comparisons weighted by
// the model); only relative order matters.
type Cost struct {
	// Scan prices reading the branch inputs.
	Scan float64
	// Shuffle prices moving tuples across partitions (or collecting them
	// onto one node for broadcast variants), including stage-setup overhead.
	Shuffle float64
	// Pairs prices enumerating and Detect-ing the candidate pairs.
	Pairs float64
	// Spill penalizes working sets past the memory budget.
	Spill float64
}

// Total folds the components into the scalar the planner minimizes.
func (c Cost) Total() float64 { return c.Scan + c.Shuffle + c.Pairs + c.Spill }

// String renders the cost compactly for EXPLAIN output.
func (c Cost) String() string {
	return fmt.Sprintf("total=%.0f (scan=%.0f shuffle=%.0f pairs=%.0f spill=%.0f)",
		c.Total(), c.Scan, c.Shuffle, c.Pairs, c.Spill)
}

// BlockKeyStats describes one candidate Block column of a relation.
type BlockKeyStats struct {
	// Distinct estimates the number of distinct block keys.
	Distinct int64
	// TopFraction is the fraction of rows carried by the most frequent key
	// (1/Distinct for uniform data; near 1 for heavily skewed keys).
	TopFraction float64
	// KeyBytes is the average encoded key size.
	KeyBytes float64
}

// TableStats are the cheap per-branch statistics one sampling pass gathers:
// the (post-Scope) row count, the average tuple size, and per candidate
// block key the distinct count and skew.
type TableStats struct {
	Rows       int64
	TupleBytes float64
	// BlockKeys maps a block-key name (Branch.BlockAttr / AltBlockAttrs) to
	// its statistics.
	BlockKeys map[string]BlockKeyStats
}

// CostInputs carries everything a CostModel may price for one alternative.
type CostInputs struct {
	Impl      IterImpl
	Broadcast bool
	// Default marks the alternative the legacy rule-shape switch would have
	// chosen; StaticCost keys on it.
	Default bool

	// Rows/TupleBytes describe the (first) branch; RowsRight/TupleBytesRight
	// the second branch of a CoBlock (zero otherwise).
	Rows            int64
	TupleBytes      float64
	RowsRight       int64
	TupleBytesRight float64

	// HasBlock reports whether the alternative partitions by a block key;
	// Block (and BlockRight for CoBlock) then carry that key's statistics.
	HasBlock   bool
	Block      BlockKeyStats
	BlockRight BlockKeyStats

	// NumParts is the OCJoin partition count of this alternative (0 =
	// parallelism); Parallelism is the worker count.
	NumParts    int
	Parallelism int
	// MemoryBudget caps the in-memory working set (0 = unbounded).
	MemoryBudget int64
	// MeasuredPairs, when > 0, is the pair count a prior run observed for
	// this pipeline (Observer feedback); models should prefer it over the
	// statistical estimate.
	MeasuredPairs int64
}

// CostModel prices one physical alternative.
type CostModel interface {
	// Name identifies the model in EXPLAIN output ("static", "cost").
	Name() string
	// Cost returns the estimate for one alternative.
	Cost(in CostInputs) Cost
}

// StaticCost reproduces the legacy Optimize choices exactly: the default
// (rule-shape) alternative costs zero, everything else costs more, and the
// planner breaks ties in enumeration order. It needs no statistics, so the
// planner skips the sampling pass entirely under this model.
type StaticCost struct{}

// Name implements CostModel.
func (StaticCost) Name() string { return "static" }

// Cost implements CostModel.
func (StaticCost) Cost(in CostInputs) Cost {
	if in.Default {
		return Cost{}
	}
	return Cost{Pairs: 1}
}

// CostBased is the statistics-driven model: scan cost per byte read, shuffle
// cost per byte moved plus per-stage setup, pair-enumeration cost per
// candidate pair, and a spill penalty once the working set exceeds the
// memory budget. Zero-value weights are replaced by the defaults of
// NewCostModel.
type CostBased struct {
	// ScanByte prices reading one input byte.
	ScanByte float64
	// ShuffleByte prices moving one byte through a hash shuffle.
	ShuffleByte float64
	// CollectByte prices collecting one byte onto a single node (broadcast
	// variants); it is sequential work, so it is not divided by parallelism.
	CollectByte float64
	// StageSetup is the fixed overhead of scheduling one shuffle stage.
	StageSetup float64
	// PartSetup is the per-partition overhead of OCJoin range partitioning.
	PartSetup float64
	// PairCost prices enumerating + Detect-ing one candidate pair.
	PairCost float64
	// SpillByte penalizes each working-set byte past the budget on
	// operators that can spill (blocked shuffles).
	SpillByte float64
	// NoSpillByte penalizes each byte past the budget on operators that
	// cannot spill (broadcast collects pin everything in one heap), so
	// budgeted runs steer away from them.
	NoSpillByte float64
}

// NewCostModel returns the CostBased model with its default weights. The
// weights are deliberately coarse — they only need to order alternatives
// correctly at the crossovers the tests pin down (tiny relations prefer
// broadcast, budgeted memory prefers spillable shuffles, skewed keys prefer
// the key with less skew).
func NewCostModel() *CostBased {
	return &CostBased{
		ScanByte:    1,
		ShuffleByte: 1,
		CollectByte: 2,
		StageSetup:  65536,
		PartSetup:   2048,
		PairCost:    16,
		SpillByte:   2,
		NoSpillByte: 8,
	}
}

// Name implements CostModel.
func (m *CostBased) Name() string { return "cost" }

// estPairs estimates the candidate pairs a blocked enumeration produces:
// the top block contributes top^2, the remaining rows are assumed uniform
// over the remaining keys. unique halves the count (UCrossProduct).
func estPairs(rows int64, ks BlockKeyStats, unique bool) float64 {
	n := float64(rows)
	if n <= 0 {
		return 0
	}
	d := float64(ks.Distinct)
	if d < 1 {
		d = 1
	}
	f := ks.TopFraction
	if f < 1/d {
		f = 1 / d
	}
	if f > 1 {
		f = 1
	}
	top := f * n
	rest := n - top
	pairs := top * top
	if rest > 0 {
		restKeys := d - 1
		if restKeys < 1 {
			restKeys = 1
		}
		pairs += rest * (rest / restKeys)
	}
	if unique {
		pairs /= 2
	}
	return pairs
}

// Cost implements CostModel.
func (m *CostBased) Cost(in CostInputs) Cost {
	w := *m
	def := NewCostModel()
	if w.ScanByte == 0 {
		w.ScanByte = def.ScanByte
	}
	if w.ShuffleByte == 0 {
		w.ShuffleByte = def.ShuffleByte
	}
	if w.CollectByte == 0 {
		w.CollectByte = def.CollectByte
	}
	if w.StageSetup == 0 {
		w.StageSetup = def.StageSetup
	}
	if w.PartSetup == 0 {
		w.PartSetup = def.PartSetup
	}
	if w.PairCost == 0 {
		w.PairCost = def.PairCost
	}
	if w.SpillByte == 0 {
		w.SpillByte = def.SpillByte
	}
	if w.NoSpillByte == 0 {
		w.NoSpillByte = def.NoSpillByte
	}

	p := float64(in.Parallelism)
	if p < 1 {
		p = 1
	}
	n := float64(in.Rows)
	tb := in.TupleBytes
	var c Cost
	c.Scan = n * tb * w.ScanByte / p
	if in.RowsRight > 0 {
		c.Scan += float64(in.RowsRight) * in.TupleBytesRight * w.ScanByte / p
	}

	over := func(workingSet float64, spillable bool) float64 {
		if in.MemoryBudget <= 0 {
			return 0
		}
		excess := workingSet - float64(in.MemoryBudget)
		if excess <= 0 {
			return 0
		}
		if spillable {
			return excess * w.SpillByte
		}
		return excess * w.NoSpillByte
	}

	pairUnits := func(est float64) float64 {
		if in.MeasuredPairs > 0 {
			return float64(in.MeasuredPairs)
		}
		return est
	}

	switch {
	case in.Impl == IterSingles:
		c.Pairs = pairUnits(n) * w.PairCost / p
	case in.Impl == IterCustom:
		// User Iterates are opaque; assume linear work plus the shuffle the
		// blocking (if any) implies.
		if in.HasBlock && !in.Broadcast {
			c.Shuffle = w.StageSetup + n*(tb+in.Block.KeyBytes)*w.ShuffleByte/p
		}
		c.Pairs = pairUnits(n) * w.PairCost / p
	case in.Impl == IterOCJoin:
		parts := float64(in.NumParts)
		if parts < 1 {
			parts = p
		}
		c.Shuffle = w.StageSetup + n*tb*w.ShuffleByte/p + parts*w.PartSetup
		c.Pairs = pairUnits(n*n/parts) * w.PairCost / p
		c.Spill = over(n*tb/parts, true)
	case in.Impl == IterCoBlockPairs:
		nr := float64(in.RowsRight)
		tbr := in.TupleBytesRight
		if in.Broadcast {
			c.Shuffle = w.StageSetup + (n*tb+nr*tbr)*w.CollectByte
			c.Spill = over(n*tb+nr*tbr, false)
		} else {
			c.Shuffle = 2*w.StageSetup +
				(n*(tb+in.Block.KeyBytes)+nr*(tbr+in.BlockRight.KeyBytes))*w.ShuffleByte/p
			c.Spill = over((n*(tb+in.Block.KeyBytes)+nr*(tbr+in.BlockRight.KeyBytes))/p, true)
		}
		// Pairs across co-grouped bags: assume the left key's distribution
		// governs matching (rows paired per shared key).
		d := float64(in.Block.Distinct)
		if d < 1 {
			d = 1
		}
		c.Pairs = pairUnits(n*nr/d) * w.PairCost / p
	case in.HasBlock && in.Broadcast:
		// Collect the scoped stream onto one node, group locally, enumerate
		// pairs there. No shuffle stage, but sequential and unable to spill.
		c.Shuffle = w.StageSetup + n*tb*w.CollectByte
		c.Pairs = pairUnits(estPairs(in.Rows, in.Block, in.Impl == IterUniquePairs)) * w.PairCost
		c.Spill = over(n*tb, false)
	case in.HasBlock:
		c.Shuffle = 2*w.StageSetup + n*(tb+in.Block.KeyBytes)*w.ShuffleByte/p
		c.Pairs = pairUnits(estPairs(in.Rows, in.Block, in.Impl == IterUniquePairs)) * w.PairCost / p
		c.Spill = over(n*(tb+in.Block.KeyBytes), true)
	default:
		// Unblocked cross product: the whole relation is one block.
		est := n * n
		if in.Impl == IterUniquePairs {
			est /= 2
		}
		c.Pairs = pairUnits(est) * w.PairCost / p
		c.Spill = over(n*tb, true)
	}
	return c
}

// statsSampleCap bounds how many tuples the sampling pass examines per
// branch; larger relations are strided.
const statsSampleCap = 512

// sampleBranchStats gathers TableStats for one branch in a single pass over
// a sample of the relation: it applies the branch's Scope chain to estimate
// selectivity, measures encoded tuple size, and per candidate block key
// counts distinct values and the top-key fraction.
func sampleBranchStats(rel *model.Relation, b Branch, parallelism int) TableStats {
	_ = parallelism
	st := TableStats{BlockKeys: map[string]BlockKeyStats{}}
	if rel == nil || len(rel.Tuples) == 0 {
		return st
	}
	n := len(rel.Tuples)
	stride := n / statsSampleCap
	if stride < 1 {
		stride = 1
	}

	type keyAgg struct {
		counts map[model.ValueKey]int64
		bytes  float64
		total  int64
	}
	keys := []struct {
		name string
		fn   BlockFunc
	}{}
	if b.Block != nil {
		keys = append(keys, struct {
			name string
			fn   BlockFunc
		}{blockKeyName(b, -1), b.Block})
	}
	for i, alt := range b.AltBlocks {
		keys = append(keys, struct {
			name string
			fn   BlockFunc
		}{blockKeyName(b, i), alt})
	}
	aggs := make([]keyAgg, len(keys))
	for i := range aggs {
		aggs[i].counts = map[model.ValueKey]int64{}
	}

	sampled, kept := 0, 0
	var tupleBytes float64
	for i := 0; i < n; i += stride {
		t := rel.Tuples[i]
		sampled++
		units := []model.Tuple{t}
		for _, sc := range b.Scopes {
			var next []model.Tuple
			for _, u := range units {
				next = append(next, sc(u)...)
			}
			units = next
			if len(units) == 0 {
				break
			}
		}
		for _, u := range units {
			kept++
			tupleBytes += float64(len(model.EncodeTuple(u)))
			for ki, k := range keys {
				v := k.fn(u)
				aggs[ki].counts[v.MapKey()]++
				aggs[ki].bytes += float64(len(v.Key()))
				aggs[ki].total++
			}
		}
	}
	if sampled == 0 {
		return st
	}
	// Extrapolate the scoped row count from the sample's selectivity.
	st.Rows = int64(float64(n) * float64(kept) / float64(sampled))
	if kept > 0 {
		st.TupleBytes = tupleBytes / float64(kept)
	}
	for ki, k := range keys {
		a := aggs[ki]
		if a.total == 0 {
			continue
		}
		d := int64(len(a.counts))
		var top int64
		for _, c := range a.counts {
			if c > top {
				top = c
			}
		}
		// Distinct extrapolation: a saturated sample (most keys repeat) is
		// kept as-is; a sample where keys look near-unique scales with the
		// row count, capped by it.
		if d*2 >= a.total {
			scaled := int64(float64(d) * float64(st.Rows) / float64(a.total))
			if scaled > st.Rows {
				scaled = st.Rows
			}
			if scaled > d {
				d = scaled
			}
		}
		st.BlockKeys[k.name] = BlockKeyStats{
			Distinct:    d,
			TopFraction: float64(top) / float64(a.total),
			KeyBytes:    a.bytes / float64(a.total),
		}
	}
	return st
}

// PipelineFeedback is what one observed run contributes per pipeline.
type PipelineFeedback struct {
	// Pairs is the measured candidate-pair count (AttrPairs).
	Pairs int64 `json:"pairs"`
	// Violations is the measured violation count (AttrViolations).
	Violations int64 `json:"violations"`
}

// Feedback is a persisted set of per-pipeline measurements from prior runs,
// keyed by rule ID. It round-trips through -stats-out/-stats-in as JSON and
// is what WithObserverFeedback feeds back into the planner.
type Feedback struct {
	Pipelines map[string]PipelineFeedback `json:"pipelines"`
}

// PlanFeedback implements FeedbackSource (a Feedback is its own source).
func (f *Feedback) PlanFeedback() *Feedback { return f }

// WriteFile persists the feedback as JSON.
func (f *Feedback) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFeedbackFile loads a -stats-out file back in.
func ReadFeedbackFile(path string) (*Feedback, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &Feedback{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("core: stats file %s: %w", path, err)
	}
	if f.Pipelines == nil {
		f.Pipelines = map[string]PipelineFeedback{}
	}
	return f, nil
}

// FeedbackSource supplies prior-run measurements to a Planner; Feedback and
// FeedbackRecorder both implement it.
type FeedbackSource interface {
	PlanFeedback() *Feedback
}

// FeedbackRecorder is an engine.Observer that harvests the per-pipeline
// measurements the planner can learn from (AttrPairs, AttrViolations on
// SpanPipeline spans) while discarding everything else. Install it with
// engine.Tee alongside the regular observer, then feed it to the next run's
// planner via WithObserverFeedback — or persist it with
// PlanFeedback().WriteFile for the -stats-out/-stats-in round-trip.
// Long-lived serve sessions hold one recorder so every flush re-plans
// against the previous flush's measurements.
type FeedbackRecorder struct {
	mu sync.Mutex
	fb Feedback
}

// NewFeedbackRecorder returns an empty recorder.
func NewFeedbackRecorder() *FeedbackRecorder {
	return &FeedbackRecorder{fb: Feedback{Pipelines: map[string]PipelineFeedback{}}}
}

// PlanFeedback implements FeedbackSource: a snapshot of what has been
// recorded so far (latest measurement per pipeline wins).
func (r *FeedbackRecorder) PlanFeedback() *Feedback {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Feedback{Pipelines: make(map[string]PipelineFeedback, len(r.fb.Pipelines))}
	for k, v := range r.fb.Pipelines {
		out.Pipelines[k] = v
	}
	return out
}

// BeginSpan implements engine.Observer: pipeline spans are captured, the
// rest are discarded.
func (r *FeedbackRecorder) BeginSpan(parent engine.Span, name string, kind engine.SpanKind) engine.Span {
	if kind != engine.SpanPipeline {
		return engine.Discard.BeginSpan(parent, name, kind)
	}
	return &fbSpan{rec: r, name: name}
}

// Count implements engine.Observer (flat counters are not used).
func (r *FeedbackRecorder) Count(engine.Metric, int64) {}

type fbSpan struct {
	rec        *FeedbackRecorder
	name       string
	pairs      int64
	violations int64
	done       bool
}

func (s *fbSpan) Attr(k engine.Attr, v int64) {
	switch k {
	case engine.AttrPairs:
		s.pairs = v
	case engine.AttrViolations:
		s.violations = v
	}
}

func (s *fbSpan) End() {
	if s.done {
		return
	}
	s.done = true
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	s.rec.fb.Pipelines[s.name] = PipelineFeedback{Pairs: s.pairs, Violations: s.violations}
}

// sortedPipelineIDs returns the feedback's rule IDs in stable order (for
// deterministic EXPLAIN / test output).
func sortedPipelineIDs(f *Feedback) []string {
	ids := make([]string, 0, len(f.Pipelines))
	for id := range f.Pipelines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
