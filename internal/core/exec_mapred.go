package core

import (
	"fmt"

	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
)

// RunPlanMapReduce executes the physical plan's detection pipelines on the
// disk-based MapReduce backend (Appendix G.2's translation): PScope runs in
// the map function, PBlock becomes the shuffle partitioner, PIterate and
// PDetect run in the reduce function, and PGenFix runs on the reducer's
// violations. Each pipeline is one MapReduce job; fix sets travel between
// phases in the binary codec.
//
// Like the paper's BigDansing-Hadoop, the backend covers blocking-based
// rules; ordering-comparison rules (OCJoin) are only supported by the
// dataflow backend and return an error here.
func RunPlanMapReduce(eng *mapred.Engine, pp *PhysicalPlan, nSplits, nReduce int) (*DetectResult, error) {
	result := &DetectResult{}
	for i := range pp.Pipelines {
		if err := runPipelineMR(eng, pp, &pp.Pipelines[i], nSplits, nReduce, result); err != nil {
			return nil, err
		}
	}
	dedupeResult(result)
	return result, nil
}

func runPipelineMR(eng *mapred.Engine, pp *PhysicalPlan, p *PhysicalPipeline, nSplits, nReduce int, out *DetectResult) error {
	if p.Impl == IterOCJoin {
		return fmt.Errorf("core: pipeline %s: OCJoin is not supported on the MapReduce backend", p.RuleID)
	}
	if p.Broadcast {
		return fmt.Errorf("core: pipeline %s: broadcast plans are not supported on the MapReduce backend", p.RuleID)
	}
	if len(p.Branches) > 2 {
		return fmt.Errorf("core: pipeline %s: MapReduce backend supports at most two branches", p.RuleID)
	}

	// Encode input records: branchTag:uint8 tuple. Branches over the same
	// dataset are emitted per tag so the reducer can rebuild the bags.
	var input [][]byte
	for tag, b := range p.Branches {
		rel, ok := pp.Logical.Inputs[b.Dataset]
		if !ok {
			return fmt.Errorf("core: plan %s references unknown dataset %q", pp.Name, b.Dataset)
		}
		for _, t := range rel.Tuples {
			rec := append([]byte{byte(tag)}, model.EncodeTuple(t)...)
			input = append(input, rec)
		}
	}

	branches := p.Branches
	mapFn := func(rec []byte, emit mapred.Emit) {
		tag := int(rec[0])
		t, _, err := model.DecodeTuple(rec[1:])
		if err != nil {
			panic(fmt.Sprintf("decode input tuple: %v", err))
		}
		b := branches[tag]
		units := []model.Tuple{t}
		for _, s := range b.Scopes {
			var next []model.Tuple
			for _, u := range units {
				next = append(next, s(u)...)
			}
			units = next
		}
		// Serialization boundary: the disk-based MR engine shuffles string
		// keys by design, so the block value is rendered once per record
		// here — the in-memory backend never does (it groups on MapKey).
		key := ""
		for _, u := range units {
			if b.Block != nil {
				key = b.Block(u).Key()
			}
			emit(key, append([]byte{byte(tag)}, model.EncodeTuple(u)...))
		}
	}

	detect, genfix, iterate := p.Detect, p.GenFix, p.Iterate
	impl := p.Impl
	nBranches := len(p.Branches)
	reduceFn := func(key string, values [][]byte, emit func([]byte)) {
		bags := make([][]model.Tuple, nBranches)
		for _, v := range values {
			tag := int(v[0])
			t, _, err := model.DecodeTuple(v[1:])
			if err != nil {
				panic(fmt.Sprintf("decode shuffled tuple: %v", err))
			}
			bags[tag] = append(bags[tag], t)
		}
		var items []Item
		switch impl {
		case IterSingles:
			items = Singles(bags)
		case IterUniquePairs:
			items = PairsUnique(bags)
		case IterOrderedPairs:
			items = PairsOrdered(bags)
		case IterCoBlockPairs:
			items = PairsAcross(bags)
		case IterCustom:
			items = iterate(bags)
		}
		for _, it := range items {
			for _, v := range detect(it) {
				fs := model.FixSet{Violation: v}
				if genfix != nil {
					fs.Fixes = genfix(v)
				}
				emit(model.EncodeFixSet(fs))
			}
		}
	}

	outRecs, err := eng.Run(input, nSplits, nReduce, mapFn, reduceFn)
	if err != nil {
		return fmt.Errorf("core: MapReduce job for %s: %w", p.RuleID, err)
	}
	for _, rec := range outRecs {
		fs, err := model.DecodeFixSet(rec)
		if err != nil {
			return fmt.Errorf("core: decode fix set from %s: %w", p.RuleID, err)
		}
		out.Violations = append(out.Violations, fs.Violation)
		out.FixSets = append(out.FixSets, fs)
	}
	return nil
}

// DetectRuleMapReduce plans, optimizes and runs one rule on the MapReduce
// backend.
func DetectRuleMapReduce(eng *mapred.Engine, r *Rule, rel *model.Relation, nSplits, nReduce int) (*DetectResult, error) {
	lp, err := PlanRule(r, rel)
	if err != nil {
		return nil, err
	}
	pp, err := NewPlanner().Plan(lp)
	if err != nil {
		return nil, err
	}
	return RunPlanMapReduce(eng, pp, nSplits, nReduce)
}
