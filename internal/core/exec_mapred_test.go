package core

import (
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
)

// TestMapReduceCoBlockParity runs a CoBlock rule (doubly-keyed self join)
// through both backends and compares results.
func TestMapReduceCoBlockParity(t *testing.T) {
	s := model.MustParseSchema("c_name,c_city,s_name,s_city")
	rel := model.NewRelation("cs", s)
	rel.Append(
		model.NewTuple(1, model.S("acme"), model.S("NY"), model.S("zenith"), model.S("LA")),
		model.NewTuple(2, model.S("zenith"), model.S("SF"), model.S("acme"), model.S("NY")),
		model.NewTuple(3, model.S("orbit"), model.S("CH"), model.S("orbit"), model.S("CH")),
		model.NewTuple(4, model.S("nova"), model.S("SE"), model.S("nova"), model.S("PD")),
	)
	r := &Rule{
		ID:         "dc1",
		Block:      func(tp model.Tuple) model.Value { return tp.Cell(0) }, // c_name
		BlockRight: func(tp model.Tuple) model.Value { return tp.Cell(2) }, // s_name
		Detect: func(it Item) []model.Violation {
			c, sup := it.Left(), it.Right()
			if c.Cell(0).Equal(sup.Cell(2)) && !c.Cell(1).Equal(sup.Cell(3)) {
				return []model.Violation{model.NewViolation("dc1",
					model.NewCell(c.ID, 1, "c_city", c.Cell(1)),
					model.NewCell(sup.ID, 3, "s_city", sup.Cell(3)))}
			}
			return nil
		},
	}
	ctx := engine.New(4)
	sparkRes, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapred.New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mrRes, err := DetectRuleMapReduce(eng, r, rel, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrRes.Violations) != len(sparkRes.Violations) {
		t.Fatalf("MR %d vs dataflow %d violations", len(mrRes.Violations), len(sparkRes.Violations))
	}
	keys := map[string]bool{}
	for _, v := range sparkRes.Violations {
		keys[v.Key()] = true
	}
	for _, v := range mrRes.Violations {
		if !keys[v.Key()] {
			t.Errorf("MR-only violation %v", v)
		}
	}
}

// TestMapReduceUnaryRule runs a unary rule through the MapReduce backend.
func TestMapReduceUnaryRule(t *testing.T) {
	rel := exampleTax()
	r := &Rule{
		ID:    "cap",
		Unary: true,
		Detect: func(it Item) []model.Violation {
			tp := it.One()
			if tp.Cell(4).Float() > 85000 {
				return []model.Violation{model.NewViolation("cap",
					model.NewCell(tp.ID, 4, "salary", tp.Cell(4)))}
			}
			return nil
		},
	}
	eng, err := mapred.New(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := DetectRuleMapReduce(eng, r, rel, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Cells[0].TupleID != 4 {
		t.Fatalf("violations = %v", res.Violations)
	}
}

// TestMapReduceScopeRuns verifies Scope executes inside the map phase.
func TestMapReduceScopeRuns(t *testing.T) {
	rel := exampleTax()
	r := fdRule()
	// Scope that drops California rows entirely: the two CA violations of
	// phiF disappear.
	r.Scope = func(tp model.Tuple) []model.Tuple {
		if tp.Cell(3).String() == "CA" {
			return nil
		}
		return []model.Tuple{tp}
	}
	eng, err := mapred.New(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := DetectRuleMapReduce(eng, r, rel, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("scoped-out violations still detected: %v", res.Violations)
	}
}

// TestMapReduceDetectPanic surfaces a Detect panic from inside a reducer.
func TestMapReduceDetectPanic(t *testing.T) {
	rel := exampleTax()
	r := fdRule()
	r.Detect = func(Item) []model.Violation { panic("reducer boom") }
	eng, err := mapred.New(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := DetectRuleMapReduce(eng, r, rel, 2, 2); err == nil {
		t.Fatal("detect panic should surface")
	}
}
