package core

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"time"

	"bigdansing/internal/engine"
	"bigdansing/internal/join"
	"bigdansing/internal/model"
)

// DetectResult is the output of running a plan's detection stage: the
// deduplicated violations and, per violation, its possible fixes.
type DetectResult struct {
	Violations []model.Violation
	FixSets    []model.FixSet
}

// NumViolations returns the violation count.
func (r *DetectResult) NumViolations() int { return len(r.Violations) }

// AllFixes flattens every possible fix.
func (r *DetectResult) AllFixes() []model.Fix {
	var out []model.Fix
	for _, fs := range r.FixSets {
		out = append(out, fs.Fixes...)
	}
	return out
}

// Merge appends another result (used when accumulating over plans).
func (r *DetectResult) Merge(o *DetectResult) {
	r.Violations = append(r.Violations, o.Violations...)
	r.FixSets = append(r.FixSets, o.FixSets...)
}

// RunPlanSpark executes the physical plan's detection pipelines on the
// in-memory dataflow backend (Appendix G.1's translation): Scope becomes
// map/filter, Block becomes groupByKey, CoBlock becomes cogroup, Iterate
// becomes the chosen pair enumeration (or OCJoin), Detect and GenFix become
// flat maps. The backend is lazy, so each pipeline's narrow tail —
// enumeration, Detect, GenFix — fuses into a single per-partition stage at
// the pipeline's collect; only Block/CoBlock shuffles break the pipeline
// into stages. Violations are deduplicated on their canonical key, matching
// the paper's observation that BigDansing, unlike SQL self-joins, does not
// emit duplicate violations.
func RunPlanSpark(ctx *engine.Context, pp *PhysicalPlan) (*DetectResult, error) {
	return newSparkExec(ctx).run(pp)
}

// scanKey identifies a consolidated scoped scan: same dataset (labels over
// one relation resolve to the same scan) + same scope chain ⇒ one
// materialization (Algorithm 1's effect at execution time).
type scanKey struct {
	rel    *model.Relation
	scopes [4]uintptr // first scopes' fn pointers; enough to discriminate
}

type sparkExec struct {
	ctx *engine.Context
	// batchSize is the context's vectorized batch size; 0 keeps every
	// pipeline on the tuple path.
	batchSize int

	base   map[*model.Relation]*engine.Dataset[model.Tuple]
	scoped map[scanKey]*engine.Dataset[model.Tuple]

	// Batch-path state (exec_vector.go): the chunked base batches and the
	// scoped batch streams, cached under the same scan keys as the tuple
	// path so consolidated scans share materializations on either path.
	batched   map[batchKey]*engine.Dataset[*model.Batch]
	scopedVec map[scanKey]*engine.Dataset[*model.Batch]
	// pre holds relations whose data arrived as pre-built column batches
	// (DetectRuleOnBatches); the batch path reads them zero-copy and the
	// tuple path materializes them once in dataset().
	pre map[*model.Relation][]*model.Batch
}

func newSparkExec(ctx *engine.Context) *sparkExec {
	return &sparkExec{
		ctx:       ctx,
		batchSize: ctx.BatchSize(),
		base:      make(map[*model.Relation]*engine.Dataset[model.Tuple]),
		scoped:    make(map[scanKey]*engine.Dataset[model.Tuple]),
		batched:   make(map[batchKey]*engine.Dataset[*model.Batch]),
		scopedVec: make(map[scanKey]*engine.Dataset[*model.Batch]),
		pre:       make(map[*model.Relation][]*model.Batch),
	}
}

func (ex *sparkExec) run(pp *PhysicalPlan) (*DetectResult, error) {
	result := &DetectResult{}
	for i := range pp.Pipelines {
		if err := ex.runPipeline(pp, &pp.Pipelines[i], result); err != nil {
			return nil, err
		}
	}
	dedupeResult(result)
	return result, nil
}

func (ex *sparkExec) dataset(pp *PhysicalPlan, name string) (*engine.Dataset[model.Tuple], error) {
	rel, ok := pp.Logical.Inputs[name]
	if !ok {
		return nil, fmt.Errorf("core: plan %s references unknown dataset %q", pp.Name, name)
	}
	if d, ok := ex.base[rel]; ok {
		return d, nil
	}
	ts := rel.Tuples
	if pre := ex.pre[rel]; len(pre) > 0 && len(ts) == 0 {
		// The relation's data arrived columnar; materialize rows once for
		// the tuple path (the relation itself stays untouched).
		for _, b := range pre {
			ts = b.AppendTuples(ts)
		}
	}
	d := engine.Parallelize(ex.ctx, ts, 0)
	ex.base[rel] = d
	return d, nil
}

// branchStream materializes a branch's scoped stream, sharing consolidated
// scans across branches and pipelines. Derived branches (an upstream
// Iterate's output, Figure 4) are computed by running that Iterate and
// flattening its items back to data units.
func (ex *sparkExec) branchStream(pp *PhysicalPlan, b Branch) (*engine.Dataset[model.Tuple], error) {
	if b.Derived != nil {
		items, err := ex.iterateItems(pp, b.Derived.Iterate, b.Derived.Branches)
		if err != nil {
			return nil, err
		}
		d := engine.FlatMap(items, func(it Item) []model.Tuple { return it.Tuples })
		for _, s := range b.Scopes {
			scope := s
			d = engine.FlatMap(d, func(t model.Tuple) []model.Tuple { return scope(t) })
		}
		// Force the derived stream: it feeds a downstream pipeline and any
		// upstream failure should surface here with the branch's label.
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("core: derived stream %s failed: %w", b.Label, err)
		}
		return d, nil
	}
	key := scanKey{rel: pp.Logical.Inputs[b.Dataset]}
	for i, s := range b.Scopes {
		if i >= len(key.scopes) {
			break
		}
		key.scopes[i] = reflect.ValueOf(s).Pointer()
	}
	if d, ok := ex.scoped[key]; ok {
		return d, nil
	}
	d, err := ex.dataset(pp, b.Dataset)
	if err != nil {
		return nil, err
	}
	for _, s := range b.Scopes {
		scope := s
		d = engine.FlatMap(d, func(t model.Tuple) []model.Tuple { return scope(t) })
	}
	// Err is an action: the whole scope chain runs here as one fused stage
	// and the materialized stream is cached, so every pipeline sharing this
	// consolidated scan (Algorithm 1) reuses the computed data instead of
	// re-running the scopes.
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: Scope failed: %w", err)
	}
	ex.scoped[key] = d
	return d, nil
}

// iterateItems runs a user Iterate over its branch streams: co-grouped
// when both of two branches are keyed, blockwise for one keyed branch, and
// once over the materialized bags otherwise.
func (ex *sparkExec) iterateItems(pp *PhysicalPlan, iterate IterateFunc, branches []Branch) (*engine.Dataset[Item], error) {
	switch {
	case len(branches) >= 2 && branches[0].Block != nil && branches[1].Block != nil:
		cg, err := ex.coGroupBranches(pp, branches)
		if err != nil {
			return nil, err
		}
		return engine.FlatMap(cg, func(g engine.Pair[model.ValueKey, engine.CoGrouped[model.Tuple, model.Tuple]]) []Item {
			return iterate([][]model.Tuple{g.Value.Left, g.Value.Right})
		}), nil
	case len(branches) >= 2:
		// At least one side unkeyed: materialize every bag and run the
		// Iterate once over them.
		bags := make([][]model.Tuple, len(branches))
		for i, b := range branches {
			s, err := ex.branchStream(pp, b)
			if err != nil {
				return nil, err
			}
			all, err := s.Collect()
			if err != nil {
				return nil, err
			}
			bags[i] = all
		}
		return engine.Parallelize(ex.ctx, iterate(bags), 0), nil
	default:
		first, err := ex.branchStream(pp, branches[0])
		if err != nil {
			return nil, err
		}
		if branches[0].Block != nil {
			grouped := ex.blocks(first, branches[0].Block)
			return engine.FlatMap(grouped, func(g engine.Pair[model.ValueKey, []model.Tuple]) []Item {
				return iterate([][]model.Tuple{g.Value})
			}), nil
		}
		all, err := first.Collect()
		if err != nil {
			return nil, err
		}
		return engine.Parallelize(ex.ctx, iterate([][]model.Tuple{all}), 0), nil
	}
}

// blocks groups a branch stream by its Block key. Grouping is on the
// value's comparable MapKey — no per-record key string is materialized.
func (ex *sparkExec) blocks(d *engine.Dataset[model.Tuple], block BlockFunc) *engine.Dataset[engine.Pair[model.ValueKey, []model.Tuple]] {
	keyed := engine.KeyBy(d, func(t model.Tuple) model.ValueKey { return block(t).MapKey() })
	return engine.GroupByKey(keyed)
}

func (ex *sparkExec) runPipeline(pp *PhysicalPlan, p *PhysicalPipeline, out *DetectResult) error {
	sp := ex.ctx.Observer().BeginSpan(nil, p.RuleID, engine.SpanPipeline)
	defer sp.End()
	// When a user Observer is installed, wrap the Detect and GenFix UDFs
	// with cumulative nanosecond timers (one atomic add per item, never per
	// record cell) and count the candidate items fed to Detect (AttrPairs —
	// the measurement the cost-based planner's feedback loop learns from).
	// With only the default Stats observer the closures stay unwrapped and
	// the hot path pays nothing.
	var detectNs, genfixNs, pairs atomic.Int64
	instrumented := ex.ctx.Instrumented()

	var violations *engine.Dataset[model.Violation]
	if ex.vecEligible(p) {
		dBatch, dBlock := p.Vec.DetectBatch, p.Vec.DetectBlock
		if instrumented {
			if inner := dBatch; inner != nil {
				dBatch = func(b *model.Batch) []model.Violation {
					t0 := time.Now()
					vs := inner(b)
					detectNs.Add(int64(time.Since(t0)))
					return vs
				}
			}
			if inner := dBlock; inner != nil {
				dBlock = func(us []model.Tuple, ordered bool) []model.Violation {
					t0 := time.Now()
					vs := inner(us, ordered)
					detectNs.Add(int64(time.Since(t0)))
					return vs
				}
			}
		}
		v, err := ex.vecViolations(pp, p, dBatch, dBlock)
		if err != nil {
			return err
		}
		violations = v
	} else {
		items, err := ex.items(pp, p)
		if err != nil {
			return err
		}
		detect := p.Detect
		if instrumented {
			inner := detect
			detect = func(it Item) []model.Violation {
				pairs.Add(1)
				t0 := time.Now()
				vs := inner(it)
				detectNs.Add(int64(time.Since(t0)))
				return vs
			}
		}
		violations = engine.FlatMap(items, func(it Item) []model.Violation { return detect(it) })
	}
	// No action here: Detect stays lazy so the enumeration, detection and
	// (below) fix generation fuse into a single per-partition stage. A
	// failure anywhere in the chain surfaces at the pipeline's collect.
	//
	// Dedup violations (BigDansing emits each violation once). OCJoin,
	// unique pairs and single-unit enumeration produce each candidate once
	// by construction, so only the both-orientation enumerations pay the
	// dedup shuffle.
	switch p.Impl {
	case IterOrderedPairs, IterCoBlockPairs, IterCustom:
		violations = engine.Distinct(violations, func(v model.Violation) model.ViolationKey { return v.MapKey() })
	}
	if p.GenFix != nil {
		genfix := p.GenFix
		if instrumented {
			inner := genfix
			genfix = func(v model.Violation) []model.Fix {
				t0 := time.Now()
				fs := inner(v)
				genfixNs.Add(int64(time.Since(t0)))
				return fs
			}
		}
		fixSets := engine.Map(violations, func(v model.Violation) model.FixSet {
			return model.FixSet{Violation: v, Fixes: genfix(v)}
		})
		sets, err := fixSets.Collect()
		if err != nil {
			return fmt.Errorf("core: detection pipeline %s failed: %w", p.RuleID, err)
		}
		fixes := 0
		for _, fs := range sets {
			out.Violations = append(out.Violations, fs.Violation)
			out.FixSets = append(out.FixSets, fs)
			fixes += len(fs.Fixes)
		}
		finishPipelineSpan(sp, instrumented, int64(len(sets)), int64(fixes), &detectNs, &genfixNs, &pairs)
		return nil
	}
	vs, err := violations.Collect()
	if err != nil {
		return fmt.Errorf("core: detection pipeline %s failed: %w", p.RuleID, err)
	}
	for _, v := range vs {
		out.Violations = append(out.Violations, v)
		out.FixSets = append(out.FixSets, model.FixSet{Violation: v})
	}
	finishPipelineSpan(sp, instrumented, int64(len(vs)), 0, &detectNs, &genfixNs, &pairs)
	return nil
}

// finishPipelineSpan stamps a pipeline span's summary attributes. The UDF
// timers and the pair count are only reported when they were actually
// measured.
func finishPipelineSpan(sp engine.Span, instrumented bool, violations, fixes int64, detectNs, genfixNs, pairs *atomic.Int64) {
	sp.Attr(engine.AttrViolations, violations)
	sp.Attr(engine.AttrFixes, fixes)
	if instrumented {
		sp.Attr(engine.AttrDetectNanos, detectNs.Load())
		sp.Attr(engine.AttrGenFixNanos, genfixNs.Load())
		sp.Attr(engine.AttrPairs, pairs.Load())
	}
}

// items produces the candidate items of a pipeline under its chosen
// physical Iterate implementation.
func (ex *sparkExec) items(pp *PhysicalPlan, p *PhysicalPipeline) (*engine.Dataset[Item], error) {
	// The CoBlock and custom-Iterate paths pull their own branch streams.
	if p.Impl == IterCoBlockPairs {
		if p.Broadcast {
			return ex.broadcastCoBlock(pp, p)
		}
		cg, err := ex.coGroupBranches(pp, p.Branches)
		if err != nil {
			return nil, err
		}
		return engine.FlatMap(cg, func(g engine.Pair[model.ValueKey, engine.CoGrouped[model.Tuple, model.Tuple]]) []Item {
			return PairsAcross([][]model.Tuple{g.Value.Left, g.Value.Right})
		}), nil
	}
	if p.Impl == IterCustom {
		return ex.iterateItems(pp, p.Iterate, p.Branches)
	}
	first, err := ex.branchStream(pp, p.Branches[0])
	if err != nil {
		return nil, err
	}
	switch p.Impl {
	case IterSingles:
		return engine.Map(first, Single), nil

	case IterOCJoin:
		pairs, err := join.OCJoin(first, p.OrderConds, p.NumParts)
		if err != nil {
			return nil, fmt.Errorf("core: OCJoin in %s: %w", p.RuleID, err)
		}
		return engine.Map(pairs, func(pr engine.PairOf[model.Tuple]) Item {
			return PairItem(pr.Left, pr.Right)
		}), nil

	case IterUniquePairs:
		if b := p.Branches[0].Block; b != nil {
			if p.Broadcast {
				return ex.broadcastPairs(first, b, true)
			}
			grouped := ex.blocks(first, b)
			return engine.FlatMap(grouped, func(g engine.Pair[model.ValueKey, []model.Tuple]) []Item {
				return PairsUnique([][]model.Tuple{g.Value})
			}), nil
		}
		pairs := join.UCrossProduct(first)
		return engine.Map(pairs, func(pr engine.PairOf[model.Tuple]) Item {
			return PairItem(pr.Left, pr.Right)
		}), nil

	case IterOrderedPairs:
		if b := p.Branches[0].Block; b != nil {
			if p.Broadcast {
				return ex.broadcastPairs(first, b, false)
			}
			grouped := ex.blocks(first, b)
			return engine.FlatMap(grouped, func(g engine.Pair[model.ValueKey, []model.Tuple]) []Item {
				return PairsOrdered([][]model.Tuple{g.Value})
			}), nil
		}
		pairs := join.CrossProduct(first)
		return engine.Map(pairs, func(pr engine.PairOf[model.Tuple]) Item {
			return PairItem(pr.Left, pr.Right)
		}), nil

	default:
		return nil, fmt.Errorf("core: pipeline %s: unknown iterate implementation", p.RuleID)
	}
}

// groupLocal collects a branch stream and groups it by its block key in
// first-seen order — the broadcast (collect-locally) alternative's grouping,
// deterministic without a shuffle stage.
func groupLocal(ts []model.Tuple, block BlockFunc) [][]model.Tuple {
	idx := make(map[model.ValueKey]int)
	var bags [][]model.Tuple
	for _, t := range ts {
		k := block(t).MapKey()
		i, ok := idx[k]
		if !ok {
			i = len(bags)
			idx[k] = i
			bags = append(bags, nil)
		}
		bags[i] = append(bags[i], t)
	}
	return bags
}

// broadcastPairs is the collect-locally variant of the blocked pair
// enumerations: the scoped stream is gathered onto the driver, grouped
// there, and the per-block pairs are parallelized back out. Chosen by the
// cost-based planner when the relation is small enough that shuffle-stage
// setup dominates.
func (ex *sparkExec) broadcastPairs(first *engine.Dataset[model.Tuple], block BlockFunc, unique bool) (*engine.Dataset[Item], error) {
	ts, err := first.Collect()
	if err != nil {
		return nil, err
	}
	var items []Item
	for _, bag := range groupLocal(ts, block) {
		if unique {
			items = append(items, PairsUnique([][]model.Tuple{bag})...)
		} else {
			items = append(items, PairsOrdered([][]model.Tuple{bag})...)
		}
	}
	return engine.Parallelize(ex.ctx, items, 0), nil
}

// broadcastCoBlock is the collect-locally variant of CoBlock: both branch
// streams are gathered, grouped by their keys, and paired across bags per
// shared key (left keys in first-seen order).
func (ex *sparkExec) broadcastCoBlock(pp *PhysicalPlan, p *PhysicalPipeline) (*engine.Dataset[Item], error) {
	if len(p.Branches) < 2 {
		return nil, fmt.Errorf("core: CoBlock needs two branches")
	}
	lb, rb := p.Branches[0].Block, p.Branches[1].Block
	if lb == nil || rb == nil {
		return nil, fmt.Errorf("core: CoBlock requires Block on both branches")
	}
	left, err := ex.branchStream(pp, p.Branches[0])
	if err != nil {
		return nil, err
	}
	right, err := ex.branchStream(pp, p.Branches[1])
	if err != nil {
		return nil, err
	}
	lts, err := left.Collect()
	if err != nil {
		return nil, err
	}
	rts, err := right.Collect()
	if err != nil {
		return nil, err
	}
	rbags := make(map[model.ValueKey][]model.Tuple)
	for _, t := range rts {
		k := rb(t).MapKey()
		rbags[k] = append(rbags[k], t)
	}
	type bagPair struct {
		l []model.Tuple
		r []model.Tuple
	}
	idx := make(map[model.ValueKey]int)
	var bags []bagPair
	for _, t := range lts {
		k := lb(t).MapKey()
		i, ok := idx[k]
		if !ok {
			i = len(bags)
			idx[k] = i
			bags = append(bags, bagPair{r: rbags[k]})
		}
		bags[i].l = append(bags[i].l, t)
	}
	var items []Item
	for _, bp := range bags {
		items = append(items, PairsAcross([][]model.Tuple{bp.l, bp.r})...)
	}
	return engine.Parallelize(ex.ctx, items, 0), nil
}

// coGroupBranches keys the first two branches and co-groups them.
func (ex *sparkExec) coGroupBranches(pp *PhysicalPlan, branches []Branch) (*engine.Dataset[engine.Pair[model.ValueKey, engine.CoGrouped[model.Tuple, model.Tuple]]], error) {
	if len(branches) < 2 {
		return nil, fmt.Errorf("core: CoBlock needs two branches")
	}
	left, err := ex.branchStream(pp, branches[0])
	if err != nil {
		return nil, err
	}
	right, err := ex.branchStream(pp, branches[1])
	if err != nil {
		return nil, err
	}
	lb, rb := branches[0].Block, branches[1].Block
	if lb == nil || rb == nil {
		return nil, fmt.Errorf("core: CoBlock requires Block on both branches")
	}
	lk := engine.KeyBy(left, func(t model.Tuple) model.ValueKey { return lb(t).MapKey() })
	rk := engine.KeyBy(right, func(t model.Tuple) model.ValueKey { return rb(t).MapKey() })
	cg := engine.CoGroup(lk, rk)
	if err := cg.Err(); err != nil {
		return nil, err
	}
	return cg, nil
}

// dedupeResult removes duplicate violations across pipelines while keeping
// FixSets aligned. Identity is the comparable ViolationKey, so deduping a
// result allocates nothing per violation.
func dedupeResult(r *DetectResult) {
	seen := make(map[model.ViolationKey]bool, len(r.FixSets))
	outV := r.Violations[:0]
	outF := r.FixSets[:0]
	for i, fs := range r.FixSets {
		k := fs.Violation.MapKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		outV = append(outV, r.Violations[i])
		outF = append(outF, fs)
	}
	r.Violations = outV
	r.FixSets = outF
}

// compilePlan runs a logical planner and the physical Planner under one
// plan span, so a tracer sees how long logical->physical compilation took
// and what the planner decided (pipeline count, consolidated shared scans).
// A nil Planner resolves via the context's PlannerMode (static by default).
func compilePlan(ctx *engine.Context, pl *Planner, plan func() (*LogicalPlan, error)) (*PhysicalPlan, error) {
	sp := ctx.Observer().BeginSpan(nil, "compile", engine.SpanPlan)
	defer sp.End()
	lp, err := plan()
	if err != nil {
		return nil, err
	}
	pp, err := plannerFor(ctx, pl).Plan(lp)
	if err != nil {
		return nil, err
	}
	sp.Attr(engine.AttrPipelines, int64(len(pp.Pipelines)))
	sp.Attr(engine.AttrSharedScans, int64(pp.SharedScans))
	return pp, nil
}

// DetectRule is the convenience entry point: plan and run one rule over a
// relation on the dataflow backend, under the context's planner mode.
func DetectRule(ctx *engine.Context, r *Rule, rel *model.Relation) (*DetectResult, error) {
	return DetectRuleWith(ctx, nil, r, rel)
}

// DetectRuleWith is DetectRule with an explicit Planner (nil falls back to
// the context's planner mode).
func DetectRuleWith(ctx *engine.Context, pl *Planner, r *Rule, rel *model.Relation) (*DetectResult, error) {
	pp, err := compilePlan(ctx, pl, func() (*LogicalPlan, error) { return PlanRule(r, rel) })
	if err != nil {
		return nil, err
	}
	return RunPlanSpark(ctx, pp)
}

// DetectRules plans all rules over one relation as a single consolidated
// plan and runs it.
func DetectRules(ctx *engine.Context, rs []*Rule, rel *model.Relation) (*DetectResult, error) {
	return DetectRulesWith(ctx, nil, rs, rel)
}

// DetectRulesWith is DetectRules with an explicit Planner (nil falls back
// to the context's planner mode).
func DetectRulesWith(ctx *engine.Context, pl *Planner, rs []*Rule, rel *model.Relation) (*DetectResult, error) {
	pp, err := compilePlan(ctx, pl, func() (*LogicalPlan, error) { return PlanRules(rs, rel) })
	if err != nil {
		return nil, err
	}
	return RunPlanSpark(ctx, pp)
}

// RunJobSpark validates, plans and executes a job.
func RunJobSpark(ctx *engine.Context, j *Job) (*DetectResult, error) {
	return RunJobSparkWith(ctx, nil, j)
}

// RunJobSparkWith is RunJobSpark with an explicit Planner (nil falls back
// to the context's planner mode).
func RunJobSparkWith(ctx *engine.Context, pl *Planner, j *Job) (*DetectResult, error) {
	pp, err := compilePlan(ctx, pl, func() (*LogicalPlan, error) { return BuildPlan(j) })
	if err != nil {
		return nil, err
	}
	return RunPlanSpark(ctx, pp)
}
