package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// This file is the vectorized half of the dataflow executor: when the
// engine context configures a batch size and a pipeline carries vectorized
// operator forms (VecForms), the Scope→Detect chain runs over model.Batch
// column vectors — the Scope kernel flips selection bits on flat []Value
// slices, blocked rules materialize tuples only at the shuffle boundary,
// and the per-block Detect kernel gathers its comparison columns once per
// block instead of allocating an Item per candidate pair. Everything
// downstream (violation dedup, GenFix, collection) is shared with the
// tuple path, and pipelines the vectorized executor does not support fall
// back to it transparently.

// vecEligible reports whether a pipeline can run on the batch path: a
// batch size is configured, vectorized forms exist, and the pipeline is a
// single-branch base scan whose shape the vectorized executor supports —
// unary rules with a batch Detect, or blocked pair rules with a block
// Detect. Derived streams, CoBlock, OCJoin, custom Iterates, unblocked
// cross products and transforming or chained Scopes all fall back.
func (ex *sparkExec) vecEligible(p *PhysicalPipeline) bool {
	if ex.batchSize <= 0 || p.Vec == nil || p.Broadcast || len(p.Branches) != 1 {
		return false
	}
	b := p.Branches[0]
	if b.Derived != nil {
		return false
	}
	if len(b.Scopes) > 1 || (len(b.Scopes) == 1 && p.Vec.Scope == nil) {
		return false
	}
	switch p.Impl {
	case IterSingles:
		return p.Vec.DetectBatch != nil
	case IterUniquePairs, IterOrderedPairs:
		return b.Block != nil && p.Vec.DetectBlock != nil
	default:
		return false
	}
}

// batchKey identifies one chunked materialization of a relation: cols is the
// canonical key of the column set transposed into vectors ("*" when the
// pipeline needs every column, "" when it reads rows only through TupleAt).
// Keying the cache by column set keeps pipelines with different vector needs
// from seeing each other's partially materialized batches.
type batchKey struct {
	rel  *model.Relation
	cols string
}

// vecScanCols decides which column vectors the chunker must materialize for
// a pipeline: the rule's declared ScanCols plus the block column when the
// key is a single column read. Shapes that run batch kernels (a vectorized
// Scope, or a unary batch Detect) without a ScanCols declaration
// conservatively get every column.
func vecScanCols(p *PhysicalPipeline, vscope func(*model.Batch) *model.Batch) (cols []int, all bool) {
	if (vscope != nil || p.Impl == IterSingles) && p.Vec.ScanCols == nil {
		return nil, true
	}
	cols = append(cols, p.Vec.ScanCols...)
	if p.Impl != IterSingles && p.Vec.BlockCol >= 0 {
		cols = append(cols, p.Vec.BlockCol)
	}
	return cols, false
}

// colsKey canonicalizes a materialization request (sorted, deduplicated)
// into a batchKey string.
func colsKey(cols []int, all bool) string {
	if all {
		return "*"
	}
	s := append([]int(nil), cols...)
	sort.Ints(s)
	var sb strings.Builder
	for i, c := range s {
		if i > 0 && c == s[i-1] {
			continue
		}
		fmt.Fprintf(&sb, "%d,", c)
	}
	return sb.String()
}

// batchedStream materializes a branch's scoped column-batch stream,
// mirroring branchStream: the base relation is chunked into batches once
// per executor (zero-copy when the relation arrived as pre-built storage
// batches), the vectorized Scope runs as one fused FilterBatches stage, and
// the scoped stream is cached under the same scan key the tuple path uses,
// so pipelines sharing a consolidated scan share the scoped batches too.
// needCols narrows which column vectors the in-memory chunker transposes
// (all of them when allCols is set); pre-built storage batches always arrive
// with every column.
func (ex *sparkExec) batchedStream(pp *PhysicalPlan, b Branch, vscope func(*model.Batch) *model.Batch, needCols []int, allCols bool) (*engine.Dataset[*model.Batch], error) {
	rel, ok := pp.Logical.Inputs[b.Dataset]
	if !ok {
		return nil, fmt.Errorf("core: plan %s references unknown dataset %q", pp.Name, b.Dataset)
	}
	key := scanKey{rel: rel}
	for i, s := range b.Scopes {
		if i >= len(key.scopes) {
			break
		}
		key.scopes[i] = reflect.ValueOf(s).Pointer()
	}
	if vscope != nil {
		if d, ok := ex.scopedVec[key]; ok {
			return d, nil
		}
	}
	bkey := batchKey{rel: rel, cols: colsKey(needCols, allCols)}
	base, ok := ex.batched[bkey]
	if !ok {
		var bs []*model.Batch
		if pre := ex.pre[rel]; len(pre) > 0 {
			bs = rechunk(pre, ex.batchSize)
		} else if allCols {
			bs = model.MakeBatches(rel.Tuples, rel.Schema.Len(), ex.batchSize)
		} else {
			bs = model.MakeBatchesCols(rel.Tuples, rel.Schema.Len(), ex.batchSize, needCols...)
		}
		base = engine.Parallelize(ex.ctx, bs, 0)
		ex.batched[bkey] = base
	}
	if vscope == nil {
		return base, nil
	}
	d := engine.FilterBatches(base, vscope)
	// Force like the tuple path does: the scope kernel runs here as one
	// fused stage and the scoped batches are cached for reuse.
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: Scope failed: %w", err)
	}
	ex.scopedVec[key] = d
	return d, nil
}

// vecViolations builds a pipeline's violation stream on the batch path.
// Unary rules flat-map the batch Detect kernel straight over the scoped
// batches — no tuple is ever materialized. Blocked pair rules materialize
// each live row into a keyed pair only at the shuffle boundary (reading the
// block key from its column vector when BlockCol names one), group, and
// run the block kernel per group; grouping order and within-group row
// order match the tuple path, so the violations come out in the same order.
func (ex *sparkExec) vecViolations(pp *PhysicalPlan, p *PhysicalPipeline,
	detectBatch func(*model.Batch) []model.Violation,
	detectBlock func([]model.Tuple, bool) []model.Violation,
) (*engine.Dataset[model.Violation], error) {
	b := p.Branches[0]
	var vscope func(*model.Batch) *model.Batch
	if len(b.Scopes) == 1 {
		vscope = p.Vec.Scope
	}
	// Materialize only the vectors this pipeline's kernels scan (ScanCols
	// plus the block column); everything else reads through the row backing.
	// Undeclared kernel shapes conservatively get every column.
	needCols, allCols := vecScanCols(p, vscope)
	src, err := ex.batchedStream(pp, b, vscope, needCols, allCols)
	if err != nil {
		return nil, err
	}
	if p.Impl == IterSingles {
		return engine.FlatMapBatches(src, detectBatch), nil
	}
	block := b.Block
	blockCol := p.Vec.BlockCol
	keyed := engine.FlatMapBatches(src, func(bt *model.Batch) []engine.Pair[model.ValueKey, model.Tuple] {
		out := make([]engine.Pair[model.ValueKey, model.Tuple], 0, bt.LiveRows())
		var col []model.Value
		if blockCol >= 0 && blockCol < len(bt.Cols) {
			col = bt.Cols[blockCol] // nil if this batch never transposed it
		}
		bt.ForEachLive(func(r int) {
			var k model.ValueKey
			if col != nil {
				k = col[r].MapKey()
			} else {
				k = block(bt.TupleAt(r)).MapKey()
			}
			out = append(out, engine.Pair[model.ValueKey, model.Tuple]{Key: k, Value: bt.TupleAt(r)})
		})
		return out
	})
	grouped := engine.GroupByKey(keyed)
	ordered := p.Impl == IterOrderedPairs
	return engine.FlatMap(grouped, func(g engine.Pair[model.ValueKey, []model.Tuple]) []model.Violation {
		return detectBlock(g.Value, ordered)
	}), nil
}

// rechunk re-windows pre-built batches (typically one per storage
// partition) into batches of at most size rows. Windows share the
// originals' column vectors — no value is copied.
func rechunk(pre []*model.Batch, size int) []*model.Batch {
	out := make([]*model.Batch, 0, len(pre))
	for _, b := range pre {
		n := b.Len()
		switch {
		case n == 0:
			// skip
		case n <= size:
			out = append(out, b)
		default:
			for lo := 0; lo < n; lo += size {
				hi := lo + size
				if hi > n {
					hi = n
				}
				out = append(out, b.Slice(lo, hi))
			}
		}
	}
	return out
}

// DetectRuleOnBatches plans and runs one rule over a relation whose data
// arrives as pre-built column batches — the storage batch reader's output.
// The batch path consumes the batches zero-copy; if the rule is not
// vectorizable (or no batch size is configured) the tuples are materialized
// once and the tuple path runs, so the result is identical either way.
// rel carries the schema and name; its Tuples may be empty.
func DetectRuleOnBatches(ctx *engine.Context, r *Rule, rel *model.Relation, batches []*model.Batch) (*DetectResult, error) {
	pp, err := compilePlan(ctx, nil, func() (*LogicalPlan, error) { return PlanRule(r, rel) })
	if err != nil {
		return nil, err
	}
	ex := newSparkExec(ctx)
	ex.pre[rel] = batches
	return ex.run(pp)
}
