package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/storage"
)

// vecTaxData generates a relation with plenty of block collisions, NaN,
// -0, nulls and cross-kind numerics, so equivalence tests exercise the
// normalization corners.
func vecTaxData(n int, seed int64) *model.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	cities := []string{"NY", "LA", "CH", "SF", ""}
	for i := 0; i < n; i++ {
		city := model.S(cities[rng.Intn(len(cities))])
		var rate model.Value
		switch rng.Intn(5) {
		case 0:
			rate = model.F(math.NaN())
		case 1:
			rate = model.F(math.Copysign(0, -1))
		case 2:
			rate = model.I(int64(rng.Intn(4))) // cross-kind vs float rates
		case 3:
			rate = model.Null()
		default:
			rate = model.F(float64(rng.Intn(40)))
		}
		rel.Append(model.NewTuple(int64(i+1),
			model.S(fmt.Sprintf("p%d", i)),
			model.I(int64(rng.Intn(12))),
			city,
			model.S("ST"),
			model.F(float64(rng.Intn(9000))),
			rate,
		))
	}
	return rel
}

// vecScopedFDRule is a handwritten FD-style rule (zipcode -> city) with a
// row-dropping Scope, carrying hand-built vectorized forms for all three
// operators — the full Scope→Block→Detect chain on column vectors.
func vecScopedFDRule() *Rule {
	scopeKeep := func(city model.Value) bool { return !city.Equal(model.S("")) }
	r := &Rule{
		ID: "vfd",
		Scope: func(t model.Tuple) []model.Tuple {
			if !scopeKeep(t.Cell(2)) {
				return nil
			}
			return []model.Tuple{t}
		},
		Block:     func(t model.Tuple) model.Value { return t.Cell(1) },
		Symmetric: true,
		Detect: func(it Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if l.Cell(2).Equal(r.Cell(2)) {
				return nil
			}
			return []model.Violation{model.NewViolation("vfd",
				model.NewCell(l.ID, 2, "city", l.Cell(2)),
				model.NewCell(r.ID, 2, "city", r.Cell(2)),
			)}
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
		},
	}
	r.Vec = &VecForms{
		BlockCol: 1,
		ScanCols: []int{2}, // the Scope kernel indexes Cols[2] directly
		Scope: func(b *model.Batch) *model.Batch {
			s := b.CloneSel()
			cities := s.Cols[2]
			s.ForEachLive(func(row int) {
				if !scopeKeep(cities[row]) {
					s.Kill(row)
				}
			})
			return s
		},
		DetectBlock: func(us []model.Tuple, ordered bool) []model.Violation {
			n := len(us)
			cities := make([]model.Value, n)
			for i, t := range us {
				cities[i] = t.Cell(2)
			}
			var out []model.Violation
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if cities[i].Equal(cities[j]) {
						continue
					}
					out = append(out, model.NewViolation("vfd",
						model.NewCell(us[i].ID, 2, "city", cities[i]),
						model.NewCell(us[j].ID, 2, "city", cities[j]),
					))
				}
			}
			return out
		},
	}
	return r
}

// vecUnaryRule flags rows whose rate is NaN-or-negative-zero-normalized
// equal to 0 — it exercises the unary DetectBatch path.
func vecUnaryRule() *Rule {
	r := &Rule{
		ID:    "vzero",
		Unary: true,
		Detect: func(it Item) []model.Violation {
			t := it.One()
			if !t.Cell(5).Equal(model.F(0)) {
				return nil
			}
			return []model.Violation{model.NewViolation("vzero",
				model.NewCell(t.ID, 5, "rate", t.Cell(5)))}
		},
	}
	r.Vec = &VecForms{
		BlockCol: -1,
		ScanCols: []int{5}, // the Detect kernel indexes Cols[5] directly
		DetectBatch: func(b *model.Batch) []model.Violation {
			var out []model.Violation
			rates := b.Cols[5]
			b.ForEachLive(func(row int) {
				if rates[row].Equal(model.F(0)) {
					out = append(out, model.NewViolation("vzero",
						model.NewCell(b.IDs[row], 5, "rate", rates[row])))
				}
			})
			return out
		},
	}
	return r
}

// requireSameResult asserts two detection results are identical: same
// violations in the same order, same fix counts.
func requireSameResult(t *testing.T, want, got *DetectResult, label string) {
	t.Helper()
	if len(want.Violations) != len(got.Violations) {
		t.Fatalf("%s: %d violations, want %d", label, len(got.Violations), len(want.Violations))
	}
	for i := range want.Violations {
		if want.Violations[i].MapKey() != got.Violations[i].MapKey() {
			t.Fatalf("%s: violation %d differs:\n  want %v\n  got  %v",
				label, i, want.Violations[i], got.Violations[i])
		}
		if len(want.FixSets[i].Fixes) != len(got.FixSets[i].Fixes) {
			t.Fatalf("%s: violation %d fix count differs", label, i)
		}
	}
}

func TestVecPipelineEquivalence(t *testing.T) {
	rel := vecTaxData(500, 7)
	for _, rule := range []*Rule{vecScopedFDRule(), vecUnaryRule()} {
		tupleCtx := engine.New(4)
		want, err := DetectRule(tupleCtx, rule, rel)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Violations) == 0 {
			t.Fatalf("rule %s: test data produced no violations", rule.ID)
		}
		for _, size := range []int{1, 3, 64, 1024} {
			ctx := engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: size})
			got, err := DetectRule(ctx, rule, rel)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, want, got, fmt.Sprintf("%s batch=%d", rule.ID, size))
		}
	}
}

func TestVecEligibilityFallbacks(t *testing.T) {
	ex := newSparkExec(engine.NewWithConfig(engine.Config{Parallelism: 2, BatchSize: 8}))
	rel := vecTaxData(10, 1)

	mustPlan := func(r *Rule) *PhysicalPipeline {
		t.Helper()
		pp, err := compilePlan(ex.ctx, nil, func() (*LogicalPlan, error) { return PlanRule(r, rel) })
		if err != nil {
			t.Fatal(err)
		}
		return &pp.Pipelines[0]
	}

	if !ex.vecEligible(mustPlan(vecScopedFDRule())) {
		t.Error("scoped blocked rule with full vec forms should be eligible")
	}
	if !ex.vecEligible(mustPlan(vecUnaryRule())) {
		t.Error("unary rule with DetectBatch should be eligible")
	}

	// No vec forms at all.
	plain := vecScopedFDRule()
	plain.Vec = nil
	if ex.vecEligible(mustPlan(plain)) {
		t.Error("rule without vec forms must fall back")
	}
	// A Scope with no vectorized form.
	noVecScope := vecScopedFDRule()
	noVecScope.Vec.Scope = nil
	if ex.vecEligible(mustPlan(noVecScope)) {
		t.Error("scoped rule without a vec Scope must fall back")
	}
	// Custom Iterate.
	custom := vecScopedFDRule()
	custom.Iterate = func(blocks [][]model.Tuple) []Item { return PairsUnique(blocks) }
	if ex.vecEligible(mustPlan(custom)) {
		t.Error("custom Iterate must fall back")
	}
	// CoBlock (two-sided keys).
	cob := vecScopedFDRule()
	cob.BlockRight = func(t model.Tuple) model.Value { return t.Cell(2) }
	if ex.vecEligible(mustPlan(cob)) {
		t.Error("CoBlock must fall back")
	}
	// Tuple path configured (BatchSize 0).
	exTuple := newSparkExec(engine.New(2))
	if exTuple.vecEligible(mustPlan(vecScopedFDRule())) {
		t.Error("BatchSize 0 must keep the tuple path")
	}
}

func TestVecFallbackResultsMatch(t *testing.T) {
	// A vec-ineligible shape under a configured batch size must produce the
	// tuple path's exact result.
	rel := vecTaxData(200, 11)
	custom := vecScopedFDRule()
	custom.Iterate = func(blocks [][]model.Tuple) []Item { return PairsUnique(blocks) }

	want, err := DetectRule(engine.New(4), custom, rel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectRule(engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: 16}), custom, rel)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got, "custom-iterate fallback")
}

func TestDetectRuleOnBatchesMatchesTuples(t *testing.T) {
	rel := vecTaxData(300, 3)
	want, err := DetectRule(engine.New(4), vecScopedFDRule(), rel)
	if err != nil {
		t.Fatal(err)
	}

	// Column batches standing in for a storage read (no row backing).
	var batches []*model.Batch
	for _, b := range model.MakeBatches(rel.Tuples, rel.Schema.Len(), 128) {
		cols := make([][]model.Value, len(b.Cols))
		copy(cols, b.Cols)
		batches = append(batches, model.NewBatch(b.IDs, cols))
	}
	shell := model.NewRelation("tax", rel.Schema)

	for _, size := range []int{0, 50, 1024} {
		ctx := engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: size})
		got, err := DetectRuleOnBatches(ctx, vecScopedFDRule(), shell, batches)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, want, got, fmt.Sprintf("on-batches size=%d", size))
	}
}

func TestVecPushdownFromStore(t *testing.T) {
	rel := vecTaxData(250, 9)
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rule := vecScopedFDRule()
	rule.BlockAttr = "zipcode"
	if _, err := st.Upload(rel, "zipcode", 5); err != nil {
		t.Fatal(err)
	}

	want, usedWant, err := DetectRuleFromStore(engine.New(4), st, "tax", rule)
	if err != nil {
		t.Fatal(err)
	}
	got, usedGot, err := DetectRuleFromStore(
		engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: 32}), st, "tax", rule)
	if err != nil {
		t.Fatal(err)
	}
	if !usedWant || !usedGot {
		t.Fatalf("block pushdown should engage on both paths (tuple=%v, batch=%v)", usedWant, usedGot)
	}
	if len(want.Violations) == 0 {
		t.Fatal("pushdown test data produced no violations")
	}
	requireSameResult(t, want, got, "pushdown")

	// The whole-read fallback (no matching replica attribute) too.
	rule2 := vecScopedFDRule()
	want2, _, err := DetectRuleFromStore(engine.New(4), st, "tax", rule2)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := DetectRuleFromStore(
		engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: 32}), st, "tax", rule2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want2, got2, "pushdown whole-read fallback")
}

func TestRechunkWindows(t *testing.T) {
	rel := vecTaxData(25, 5)
	pre := model.MakeBatches(rel.Tuples, rel.Schema.Len(), 10) // 10,10,5
	out := rechunk(pre, 4)
	var rows int
	next := 0
	for _, b := range out {
		if b.Len() > 4 {
			t.Fatalf("rechunk produced a %d-row batch, cap 4", b.Len())
		}
		for r := 0; r < b.Len(); r++ {
			if b.IDs[r] != rel.Tuples[next].ID {
				t.Fatalf("rechunk reordered rows at %d", next)
			}
			next++
		}
		rows += b.Len()
	}
	if rows != 25 {
		t.Fatalf("rechunk dropped rows: %d/25", rows)
	}
	// Larger target than inputs: batches pass through untouched.
	same := rechunk(pre, 100)
	if len(same) != len(pre) || same[0] != pre[0] {
		t.Fatal("rechunk should pass through batches already under the size")
	}
}
