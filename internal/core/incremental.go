package core

import (
	"fmt"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// IncrementalDetector maintains detection state across updates: after a
// full first pass, later passes re-detect only the blocks containing
// changed tuples (under both their old and new blocking keys), splicing
// fresh violations over the cached ones. The iterative detect-repair loop
// benefits directly — each round only touches the blocks its repairs
// changed — in the spirit of incremental inconsistency detection [14].
//
// Rules qualify for incremental maintenance when they are blocked,
// single-branch, scope-free and planner-enumerated (unique or ordered
// pairs), or unary; other rules (OCJoin, CoBlock, custom Iterate, scoped)
// are re-run in full each pass.
type IncrementalDetector struct {
	ctx   *engine.Context
	rules []*Rule

	// state per incremental rule index.
	state map[int]*ruleState
	// full holds the latest results of non-incremental rules.
	full []model.FixSet
	// primed reports whether the first full pass ran.
	primed bool
}

// blockID is the comparable identity of one block in the incremental
// cache: the Block value's MapKey for blocked rules, or the tuple ID for
// unary rules (each tuple is its own block). Keeping it a struct avoids the
// per-tuple "u%d" / key-string formatting of the string-keyed cache.
type blockID struct {
	unary bool
	tuple int64
	key   model.ValueKey
}

type ruleState struct {
	// keyOf is the tuple ID -> blocking key map of the last pass.
	keyOf map[int64]blockID
	// byBlock groups the rule's fix sets by blocking key.
	byBlock map[blockID][]model.FixSet
}

// NewIncrementalDetector validates the rules and prepares state.
func NewIncrementalDetector(ctx *engine.Context, rules []*Rule) (*IncrementalDetector, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &IncrementalDetector{ctx: ctx, rules: rules, state: map[int]*ruleState{}}, nil
}

// incrementalizable reports whether a rule supports block-incremental
// maintenance.
func incrementalizable(r *Rule) bool {
	if r.Unary {
		return true
	}
	return r.Block != nil && r.BlockRight == nil && r.Iterate == nil &&
		r.Scope == nil && len(r.OrderConds) == 0
}

// Detect runs a pass. changed lists the tuple IDs updated since the last
// pass; nil (or a first call) forces a full pass. The returned result is a
// fresh snapshot — callers may retain it.
func (d *IncrementalDetector) Detect(rel *model.Relation, changed []int64) (*DetectResult, error) {
	if !d.primed || changed == nil {
		return d.fullPass(rel)
	}
	res := &DetectResult{}
	d.full = d.full[:0]
	for i, r := range d.rules {
		if !incrementalizable(r) {
			sub, err := DetectRule(d.ctx, r, rel)
			if err != nil {
				return nil, err
			}
			d.full = append(d.full, sub.FixSets...)
			continue
		}
		if err := d.incrementalPass(i, r, rel, changed); err != nil {
			return nil, err
		}
	}
	d.assemble(res)
	return res, nil
}

// fullPass recomputes everything and primes the caches.
func (d *IncrementalDetector) fullPass(rel *model.Relation) (*DetectResult, error) {
	d.full = d.full[:0]
	for i, r := range d.rules {
		sub, err := DetectRule(d.ctx, r, rel)
		if err != nil {
			return nil, err
		}
		if !incrementalizable(r) {
			d.full = append(d.full, sub.FixSets...)
			continue
		}
		st := &ruleState{keyOf: map[int64]blockID{}, byBlock: map[blockID][]model.FixSet{}}
		for _, t := range rel.Tuples {
			st.keyOf[t.ID] = d.blockKey(r, t)
		}
		for _, fs := range sub.FixSets {
			k := d.violationBlock(r, st, fs)
			st.byBlock[k] = append(st.byBlock[k], fs)
		}
		d.state[i] = st
	}
	d.primed = true
	out := &DetectResult{}
	d.assemble(out)
	return out, nil
}

// blockKey computes a tuple's blocking identity (the tuple ID for unary
// rules, which are keyed per tuple).
func (d *IncrementalDetector) blockKey(r *Rule, t model.Tuple) blockID {
	if r.Unary {
		return blockID{unary: true, tuple: t.ID}
	}
	return blockID{key: r.Block(t).MapKey()}
}

// violationBlock attributes a fix set to a block through its first cell.
func (d *IncrementalDetector) violationBlock(r *Rule, st *ruleState, fs model.FixSet) blockID {
	if len(fs.Violation.Cells) == 0 {
		return blockID{}
	}
	return st.keyOf[fs.Violation.Cells[0].TupleID]
}

// incrementalPass refreshes one rule's state for the changed tuples.
func (d *IncrementalDetector) incrementalPass(idx int, r *Rule, rel *model.Relation, changed []int64) error {
	st := d.state[idx]
	if st == nil {
		return fmt.Errorf("core: incremental state missing for rule %s", r.ID)
	}
	byID := rel.ByID()

	// Affected blocks: old key and new key of every changed tuple.
	affected := map[blockID]bool{}
	for _, id := range changed {
		if old, ok := st.keyOf[id]; ok {
			affected[old] = true
		}
		if i, ok := byID[id]; ok {
			t := rel.Tuples[i]
			k := d.blockKey(r, t)
			affected[k] = true
			st.keyOf[id] = k
		} else {
			delete(st.keyOf, id) // tuple removed
		}
	}
	if len(affected) == 0 {
		return nil
	}

	// Re-detect the affected blocks only: restrict the relation to tuples
	// whose current key is affected.
	sub := model.NewRelation(rel.Name, rel.Schema)
	for _, t := range rel.Tuples {
		if affected[d.blockKey(r, t)] {
			sub.Append(t)
		}
	}
	for k := range affected {
		delete(st.byBlock, k)
	}
	if sub.Len() > 0 {
		res, err := DetectRule(d.ctx, r, sub)
		if err != nil {
			return err
		}
		for _, fs := range res.FixSets {
			k := d.violationBlock(r, st, fs)
			st.byBlock[k] = append(st.byBlock[k], fs)
		}
	}
	return nil
}

// assemble snapshots the cached state into a result.
func (d *IncrementalDetector) assemble(res *DetectResult) {
	for _, st := range d.state {
		for _, sets := range st.byBlock {
			for _, fs := range sets {
				res.Violations = append(res.Violations, fs.Violation)
				res.FixSets = append(res.FixSets, fs)
			}
		}
	}
	for _, fs := range d.full {
		res.Violations = append(res.Violations, fs.Violation)
		res.FixSets = append(res.FixSets, fs)
	}
	dedupeResult(res)
}
