package core

import (
	"fmt"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// IncrementalDetector maintains detection state across updates: after a
// full first pass, later passes re-detect only the blocks containing
// changed tuples (under both their old and new blocking keys), splicing
// fresh violations over the cached ones. The iterative detect-repair loop
// benefits directly — each round only touches the blocks its repairs
// changed — in the spirit of incremental inconsistency detection [14]. The
// state survives across calls and across appends, so a long-lived caller (a
// cleanse.Session) can keep feeding it batches of new tuples: a changed ID
// with no cached blocking key is treated as an append and only its target
// block is re-detected.
//
// Rules qualify for incremental maintenance when they are blocked,
// single-branch, scope-free and planner-enumerated (unique or ordered
// pairs), or unary; other rules (OCJoin, CoBlock, custom Iterate, scoped)
// fall back to bounded re-detection: their cached results are kept until a
// change marks them stale, and they re-run (in full, over the current
// relation) at most once per Detect — never during Observe.
type IncrementalDetector struct {
	ctx   *engine.Context
	rules []*Rule
	// planner, when non-nil, plans the full and block-local re-detections
	// (see SetPlanner); nil falls back to the context's planner mode.
	planner *Planner

	// state per incremental rule index.
	state map[int]*ruleState
	// full holds the latest results of non-incremental rules; fullStale
	// marks them out of date (changes observed since they last ran).
	full      []model.FixSet
	fullStale bool
	// primed reports whether the first full pass ran.
	primed bool
}

// blockID is the comparable identity of one block in the incremental
// cache: the Block value's MapKey for blocked rules, or the tuple ID for
// unary rules (each tuple is its own block). Keeping it a struct avoids the
// per-tuple "u%d" / key-string formatting of the string-keyed cache.
type blockID struct {
	unary bool
	tuple int64
	key   model.ValueKey
}

type ruleState struct {
	// keyOf is the tuple ID -> blocking key map of the last pass.
	keyOf map[int64]blockID
	// byBlock groups the rule's fix sets by blocking key.
	byBlock map[blockID][]model.FixSet
}

// NewIncrementalDetector validates the rules and prepares state.
func NewIncrementalDetector(ctx *engine.Context, rules []*Rule) (*IncrementalDetector, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &IncrementalDetector{ctx: ctx, rules: rules, state: map[int]*ruleState{}}, nil
}

// SetPlanner installs the physical Planner the detector's re-detections
// use (nil keeps the context's planner mode). Long-lived sessions pass
// their feedback-fed planner here so every pass re-plans on measured costs.
func (d *IncrementalDetector) SetPlanner(pl *Planner) { d.planner = pl }

// incrementalizable reports whether a rule supports block-incremental
// maintenance.
func incrementalizable(r *Rule) bool {
	if r.Unary {
		return true
	}
	return r.Block != nil && r.BlockRight == nil && r.Iterate == nil &&
		r.Scope == nil && len(r.OrderConds) == 0
}

// Incrementalizable reports whether a rule supports block-incremental
// maintenance. Callers (cleanse.Open) use it to decide whether a rule set
// can stream at all or must fall back to full re-detection.
func Incrementalizable(r *Rule) bool { return incrementalizable(r) }

// NumIncrementalizable counts the rules of rs that support block-incremental
// maintenance.
func NumIncrementalizable(rs []*Rule) int {
	n := 0
	for _, r := range rs {
		if incrementalizable(r) {
			n++
		}
	}
	return n
}

// Reset drops all cached state: the next Detect (or Observe) runs a full
// pass. It is the fallback path for callers whose relation changed in ways
// they cannot enumerate (bulk rewrites, tuple removals they did not track).
func (d *IncrementalDetector) Reset() {
	d.state = map[int]*ruleState{}
	d.full = d.full[:0]
	d.fullStale = false
	d.primed = false
}

// Primed reports whether the first full pass has run.
func (d *IncrementalDetector) Primed() bool { return d.primed }

// Observe folds changed (updated or appended) tuples into the incremental
// caches without producing a result: incrementalizable rules re-detect only
// the affected blocks now, while non-incrementalizable rules are merely
// marked stale — their bounded full re-detection is deferred to the next
// Detect. A streaming caller ingesting many batches between flushes pays
// the per-block cost per batch but the full-rule cost once per flush.
func (d *IncrementalDetector) Observe(rel *model.Relation, changed []int64) error {
	if !d.primed {
		return d.prime(rel, true)
	}
	if len(changed) == 0 {
		return nil
	}
	d.fullStale = true
	for i, r := range d.rules {
		if !incrementalizable(r) {
			continue
		}
		if err := d.incrementalPass(i, r, rel, changed); err != nil {
			return err
		}
	}
	return nil
}

// Detect runs a pass. changed lists the tuple IDs updated since the last
// pass; nil (or a first call) forces a full pass, while an empty non-nil
// slice reuses every cache that is not stale. The returned result is a
// fresh snapshot — callers may retain it.
func (d *IncrementalDetector) Detect(rel *model.Relation, changed []int64) (*DetectResult, error) {
	if !d.primed || changed == nil {
		return d.fullPass(rel)
	}
	if len(changed) > 0 {
		d.fullStale = true
	}
	for i, r := range d.rules {
		if incrementalizable(r) {
			if len(changed) == 0 {
				continue
			}
			if err := d.incrementalPass(i, r, rel, changed); err != nil {
				return nil, err
			}
		}
	}
	if d.fullStale {
		if err := d.refreshFull(rel); err != nil {
			return nil, err
		}
	}
	res := &DetectResult{}
	d.assemble(res)
	return res, nil
}

// refreshFull re-runs every non-incrementalizable rule over the current
// relation and clears the stale mark. This is the bounded fallback: at most
// one full re-detection per rule per Detect, and none at all while the
// relation is unchanged.
func (d *IncrementalDetector) refreshFull(rel *model.Relation) error {
	d.full = d.full[:0]
	for _, r := range d.rules {
		if incrementalizable(r) {
			continue
		}
		sub, err := DetectRuleWith(d.ctx, d.planner, r, rel)
		if err != nil {
			return err
		}
		d.full = append(d.full, sub.FixSets...)
	}
	d.fullStale = false
	return nil
}

// fullPass recomputes everything and primes the caches.
func (d *IncrementalDetector) fullPass(rel *model.Relation) (*DetectResult, error) {
	if err := d.prime(rel, false); err != nil {
		return nil, err
	}
	out := &DetectResult{}
	d.assemble(out)
	return out, nil
}

// prime runs the first full pass over the incrementalizable rules and,
// unless deferFull is set, the non-incrementalizable ones too (deferFull
// leaves them stale so Observe never pays for a full-rule run).
func (d *IncrementalDetector) prime(rel *model.Relation, deferFull bool) error {
	d.full = d.full[:0]
	d.fullStale = deferFull
	for i, r := range d.rules {
		if !incrementalizable(r) {
			if deferFull {
				continue
			}
			sub, err := DetectRuleWith(d.ctx, d.planner, r, rel)
			if err != nil {
				return err
			}
			d.full = append(d.full, sub.FixSets...)
			continue
		}
		sub, err := DetectRuleWith(d.ctx, d.planner, r, rel)
		if err != nil {
			return err
		}
		st := &ruleState{keyOf: map[int64]blockID{}, byBlock: map[blockID][]model.FixSet{}}
		for _, t := range rel.Tuples {
			st.keyOf[t.ID] = d.blockKey(r, t)
		}
		for _, fs := range sub.FixSets {
			k := d.violationBlock(r, st, fs)
			st.byBlock[k] = append(st.byBlock[k], fs)
		}
		d.state[i] = st
	}
	d.primed = true
	return nil
}

// blockKey computes a tuple's blocking identity (the tuple ID for unary
// rules, which are keyed per tuple).
func (d *IncrementalDetector) blockKey(r *Rule, t model.Tuple) blockID {
	if r.Unary {
		return blockID{unary: true, tuple: t.ID}
	}
	return blockID{key: r.Block(t).MapKey()}
}

// violationBlock attributes a fix set to a block through its first cell.
func (d *IncrementalDetector) violationBlock(r *Rule, st *ruleState, fs model.FixSet) blockID {
	if len(fs.Violation.Cells) == 0 {
		return blockID{}
	}
	return st.keyOf[fs.Violation.Cells[0].TupleID]
}

// incrementalPass refreshes one rule's state for the changed tuples.
func (d *IncrementalDetector) incrementalPass(idx int, r *Rule, rel *model.Relation, changed []int64) error {
	st := d.state[idx]
	if st == nil {
		return fmt.Errorf("core: incremental state missing for rule %s", r.ID)
	}
	byID := rel.ByID()

	// Affected blocks: old key and new key of every changed tuple.
	affected := map[blockID]bool{}
	for _, id := range changed {
		if old, ok := st.keyOf[id]; ok {
			affected[old] = true
		}
		if i, ok := byID[id]; ok {
			t := rel.Tuples[i]
			k := d.blockKey(r, t)
			affected[k] = true
			st.keyOf[id] = k
		} else {
			delete(st.keyOf, id) // tuple removed
		}
	}
	if len(affected) == 0 {
		return nil
	}

	// Re-detect the affected blocks only: restrict the relation to tuples
	// whose current key is affected.
	sub := model.NewRelation(rel.Name, rel.Schema)
	for _, t := range rel.Tuples {
		if affected[d.blockKey(r, t)] {
			sub.Append(t)
		}
	}
	for k := range affected {
		delete(st.byBlock, k)
	}
	if sub.Len() > 0 {
		res, err := DetectRuleWith(d.ctx, d.planner, r, sub)
		if err != nil {
			return err
		}
		for _, fs := range res.FixSets {
			k := d.violationBlock(r, st, fs)
			st.byBlock[k] = append(st.byBlock[k], fs)
		}
	}
	return nil
}

// assemble snapshots the cached state into a result.
func (d *IncrementalDetector) assemble(res *DetectResult) {
	for _, st := range d.state {
		for _, sets := range st.byBlock {
			for _, fs := range sets {
				res.Violations = append(res.Violations, fs.Violation)
				res.FixSets = append(res.FixSets, fs)
			}
		}
	}
	for _, fs := range d.full {
		res.Violations = append(res.Violations, fs.Violation)
		res.FixSets = append(res.FixSets, fs)
	}
	dedupeResult(res)
}
