package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// mutableTax builds a tax relation with n rows over k zip blocks where the
// city is derived from the zip, plus a few corruptions.
func mutableTax(n, k int, seed int64) *model.Relation {
	r := rand.New(rand.NewSource(seed))
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	for i := 0; i < n; i++ {
		zip := int64(10000 + r.Intn(k))
		city := fmt.Sprintf("C%d", zip)
		if r.Intn(10) == 0 {
			city = "BAD" + city
		}
		rel.Append(model.NewTuple(int64(i), model.S("p"), model.I(zip), model.S(city),
			model.S("ST"), model.F(1), model.F(1)))
	}
	return rel
}

func violationKeySet(res *DetectResult) map[string]bool {
	out := map[string]bool{}
	for _, v := range res.Violations {
		out[v.Key()] = true
	}
	return out
}

func assertSameViolations(t *testing.T, got, want *DetectResult, context string) {
	t.Helper()
	gk, wk := violationKeySet(got), violationKeySet(want)
	if len(gk) != len(wk) {
		t.Fatalf("%s: incremental %d vs full %d violations", context, len(gk), len(wk))
	}
	for k := range wk {
		if !gk[k] {
			t.Errorf("%s: missing violation %s", context, k)
		}
	}
}

func TestIncrementalMatchesFullAfterUpdates(t *testing.T) {
	ctx := engine.New(4)
	rel := mutableTax(300, 25, 3)
	rule := fdRule()

	det, err := NewIncrementalDetector(ctx, []*Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	first, err := det.Detect(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullFirst, err := DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, first, fullFirst, "first pass")

	// Apply a series of random updates (city fixes and zip moves) and
	// verify parity after each round.
	r := rand.New(rand.NewSource(99))
	idx := rel.ByID()
	for round := 0; round < 5; round++ {
		var changed []int64
		for j := 0; j < 10; j++ {
			id := int64(r.Intn(300))
			i := idx[id]
			switch r.Intn(3) {
			case 0: // repair the city to the block's canonical value
				zip := rel.Tuples[i].Cell(1).Int
				rel.Tuples[i].Cells[2] = model.S(fmt.Sprintf("C%d", zip))
			case 1: // corrupt the city
				rel.Tuples[i].Cells[2] = model.S(fmt.Sprintf("BAD%d", r.Intn(50)))
			default: // move the tuple to another block (zip update)
				rel.Tuples[i].Cells[1] = model.I(int64(10000 + r.Intn(25)))
			}
			changed = append(changed, id)
		}
		inc, err := det.Detect(rel, changed)
		if err != nil {
			t.Fatal(err)
		}
		full, err := DetectRule(ctx, rule, rel)
		if err != nil {
			t.Fatal(err)
		}
		assertSameViolations(t, inc, full, fmt.Sprintf("round %d", round))
	}
}

func TestIncrementalUnaryRule(t *testing.T) {
	ctx := engine.New(2)
	rel := mutableTax(50, 5, 7)
	rule := &Rule{
		ID:    "badCity",
		Unary: true,
		Detect: func(it Item) []model.Violation {
			tp := it.One()
			if len(tp.Cell(2).String()) > 0 && tp.Cell(2).String()[0] == 'B' {
				return []model.Violation{model.NewViolation("badCity",
					model.NewCell(tp.ID, 2, "city", tp.Cell(2)))}
			}
			return nil
		},
	}
	det, err := NewIncrementalDetector(ctx, []*Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(rel, nil); err != nil {
		t.Fatal(err)
	}
	// Fix one bad city and corrupt a good one.
	var fixed, broken int64 = -1, -1
	for i := range rel.Tuples {
		city := rel.Tuples[i].Cell(2).String()
		if fixed < 0 && city[0] == 'B' {
			rel.Tuples[i].Cells[2] = model.S("CLEAN")
			fixed = rel.Tuples[i].ID
		} else if broken < 0 && city[0] != 'B' {
			rel.Tuples[i].Cells[2] = model.S("BROKEN")
			broken = rel.Tuples[i].ID
		}
	}
	inc, err := det.Detect(rel, []int64{fixed, broken})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, inc, full, "unary")
}

func TestIncrementalFallsBackForComplexRules(t *testing.T) {
	// An OCJoin rule is not incrementalizable; the detector must still
	// produce correct results by re-running it fully.
	ctx := engine.New(2)
	rel := exampleTax()
	det, err := NewIncrementalDetector(ctx, []*Rule{dcRule()})
	if err != nil {
		t.Fatal(err)
	}
	first, err := det.Detect(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Violations) != 3 {
		t.Fatalf("first pass = %d violations", len(first.Violations))
	}
	// Repair one rate and pass the change.
	idx := rel.ByID()
	rel.Tuples[idx[2]].Cells[5] = model.F(11) // t2 rate 10 -> 11
	inc, err := det.Detect(rel, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DetectRule(ctx, dcRule(), rel)
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, inc, full, "ocjoin fallback")
}

// TestIncrementalAppendMatchesFull: feeding the relation in batches —
// Detect over the IDs appended since the last pass — must match a full
// re-detection after every batch. This is the property streaming sessions
// (cleanse.Session) are built on.
func TestIncrementalAppendMatchesFull(t *testing.T) {
	ctx := engine.New(4)
	whole := mutableTax(240, 20, 11)
	rel := model.NewRelation(whole.Name, whole.Schema)
	det, err := NewIncrementalDetector(ctx, []*Rule{fdRule()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(rel, nil); err != nil { // prime on the empty relation
		t.Fatal(err)
	}
	const batch = 60
	for off := 0; off < whole.Len(); off += batch {
		end := off + batch
		if end > whole.Len() {
			end = whole.Len()
		}
		var appended []int64
		for _, tp := range whole.Tuples[off:end] {
			rel.Append(tp)
			appended = append(appended, tp.ID)
		}
		inc, err := det.Detect(rel, appended)
		if err != nil {
			t.Fatal(err)
		}
		full, err := DetectRule(ctx, fdRule(), rel)
		if err != nil {
			t.Fatal(err)
		}
		assertSameViolations(t, inc, full, fmt.Sprintf("after append %d..%d", off, end))
	}
}

// TestIncrementalBlockKeyChurn: a repair that rewrites the blocking key
// itself must re-detect both the block the tuple left and the block it
// joined — the old block may lose a violation, the new one may gain one.
func TestIncrementalBlockKeyChurn(t *testing.T) {
	ctx := engine.New(2)
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	// Block 10000: two tuples agreeing on city A. Block 10001: two tuples
	// agreeing on city B. Moving t0 from 10000 to 10001 creates a violation
	// in 10001 and leaves 10000 clean.
	mk := func(id, zip int64, city string) model.Tuple {
		return model.NewTuple(id, model.S("p"), model.I(zip), model.S(city),
			model.S("ST"), model.F(1), model.F(1))
	}
	rel.Append(mk(0, 10000, "A"), mk(1, 10000, "A"), mk(2, 10001, "B"), mk(3, 10001, "B"))
	det, err := NewIncrementalDetector(ctx, []*Rule{fdRule()})
	if err != nil {
		t.Fatal(err)
	}
	first, err := det.Detect(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Violations) != 0 {
		t.Fatalf("clean start expected, got %d violations", len(first.Violations))
	}
	rel.Tuples[0].Cells[1] = model.I(10001) // t0 changes block
	inc, err := det.Detect(rel, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Violations) == 0 {
		t.Fatal("moving t0 into block 10001 must violate zipcode -> city")
	}
	full, err := DetectRule(ctx, fdRule(), rel)
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, inc, full, "block churn")
	// And back: the violation must disappear from both caches.
	rel.Tuples[0].Cells[1] = model.I(10000)
	inc, err = det.Detect(rel, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Violations) != 0 {
		t.Fatalf("moving t0 back must clear the violation, got %d", len(inc.Violations))
	}
}

// TestIncrementalBoundedFallback: non-incrementalizable rules re-run only
// when a change marked them stale — Detect with an empty changed set must
// not launch any dataflow stages, and Observe must never run them at all.
func TestIncrementalBoundedFallback(t *testing.T) {
	ctx := engine.New(2)
	rel := mutableTax(120, 10, 5)
	rules := []*Rule{fdRule(), dcRule()} // dcRule (OCJoin) is the fallback rule
	det, err := NewIncrementalDetector(ctx, rules)
	if err != nil {
		t.Fatal(err)
	}
	first, err := det.Detect(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := ctx.Stats().Snapshot().Stages
	again, err := det.Detect(rel, []int64{})
	if err != nil {
		t.Fatal(err)
	}
	if after := ctx.Stats().Snapshot().Stages; after != before {
		t.Errorf("Detect with no changes ran %d stages", after-before)
	}
	assertSameViolations(t, again, first, "cached re-assembly")

	// A change marks the fallback rule stale; Observe must not re-run it
	// (only the FD's touched block), Detect must.
	idx := rel.ByID()
	rel.Tuples[idx[3]].Cells[2] = model.S("Rewritten")
	if err := det.Observe(rel, []int64{3}); err != nil {
		t.Fatal(err)
	}
	full, err := DetectRules(ctx, rules, rel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(rel, []int64{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, res, full, "stale fallback refresh")
}

// TestIncrementalReset: Reset drops the caches so the next Detect re-primes
// with a full pass and still matches full detection.
func TestIncrementalReset(t *testing.T) {
	ctx := engine.New(2)
	rel := mutableTax(80, 8, 4)
	det, err := NewIncrementalDetector(ctx, []*Rule{fdRule()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(rel, nil); err != nil {
		t.Fatal(err)
	}
	// Rewrite a swath of tuples without telling the detector, then Reset:
	// the fallback path for untracked changes.
	for i := 0; i < 20; i++ {
		rel.Tuples[i].Cells[2] = model.S("Zapped")
	}
	det.Reset()
	if det.Primed() {
		t.Fatal("Reset must unprime the detector")
	}
	res, err := det.Detect(rel, []int64{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DetectRule(ctx, fdRule(), rel)
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, res, full, "post-reset")
}

func TestIncrementalNoChanges(t *testing.T) {
	ctx := engine.New(2)
	rel := mutableTax(60, 6, 1)
	det, _ := NewIncrementalDetector(ctx, []*Rule{fdRule()})
	first, err := det.Detect(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := det.Detect(rel, []int64{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, again, first, "no-op update")
}
