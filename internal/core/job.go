package core

import (
	"fmt"

	"bigdansing/internal/model"
)

// OpKind identifies a logical operator in a job.
type OpKind uint8

const (
	// OpScope is the Scope operator.
	OpScope OpKind = iota
	// OpBlock is the Block operator.
	OpBlock
	// OpIterate is the Iterate operator.
	OpIterate
	// OpDetect is the Detect operator.
	OpDetect
	// OpGenFix is the GenFix operator.
	OpGenFix
)

// String names the operator kind.
func (k OpKind) String() string {
	switch k {
	case OpScope:
		return "Scope"
	case OpBlock:
		return "Block"
	case OpIterate:
		return "Iterate"
	case OpDetect:
		return "Detect"
	case OpGenFix:
		return "GenFix"
	default:
		return "Op?"
	}
}

// OpDecl is one labeled operator in a job. Labels stamp data streams and
// define the data flow among operators (Section 3.1): an operator consumes
// the streams named by In and, for Iterate, produces the stream named Out.
type OpDecl struct {
	Kind    OpKind
	Scope   ScopeFunc
	Block   BlockFunc
	Iterate IterateFunc
	Detect  DetectFunc
	GenFix  GenFixFunc
	In      []string
	Out     string
}

// Job is the UDF-facing specification API of Appendix A: users register
// input datasets under labels, then attach labeled operators in the order
// they want them to run.
type Job struct {
	// Name labels the job in diagnostics.
	Name string

	inputs map[string]*model.Relation // label -> dataset
	order  []string                   // label registration order
	ops    []OpDecl
}

// NewJob creates an empty job.
func NewJob(name string) *Job {
	return &Job{Name: name, inputs: make(map[string]*model.Relation)}
}

// AddInput registers a dataset under one or more labels. Multiple labels on
// the same relation declare multiple logical data flows over it (the "S",
// "T" copies of Listing 3); the optimizer consolidates them back into
// shared scans.
func (j *Job) AddInput(rel *model.Relation, labels ...string) *Job {
	for _, l := range labels {
		if _, dup := j.inputs[l]; !dup {
			j.order = append(j.order, l)
		}
		j.inputs[l] = rel
	}
	return j
}

// AddScope attaches a Scope operator to the stream with the given label.
func (j *Job) AddScope(fn ScopeFunc, label string) *Job {
	j.ops = append(j.ops, OpDecl{Kind: OpScope, Scope: fn, In: []string{label}, Out: label})
	return j
}

// AddBlock attaches a Block operator to the stream with the given label.
func (j *Job) AddBlock(fn BlockFunc, label string) *Job {
	j.ops = append(j.ops, OpDecl{Kind: OpBlock, Block: fn, In: []string{label}, Out: label})
	return j
}

// AddIterate attaches an Iterate operator reading the streams named by in
// and producing the stream out.
func (j *Job) AddIterate(fn IterateFunc, out string, in ...string) *Job {
	j.ops = append(j.ops, OpDecl{Kind: OpIterate, Iterate: fn, In: in, Out: out})
	return j
}

// AddDetect attaches a Detect operator to the stream with the given label.
func (j *Job) AddDetect(fn DetectFunc, label string) *Job {
	j.ops = append(j.ops, OpDecl{Kind: OpDetect, Detect: fn, In: []string{label}, Out: label})
	return j
}

// AddGenFix attaches a GenFix operator to the violations of the Detect with
// the same label.
func (j *Job) AddGenFix(fn GenFixFunc, label string) *Job {
	j.ops = append(j.ops, OpDecl{Kind: OpGenFix, GenFix: fn, In: []string{label}, Out: label})
	return j
}

// Inputs returns the labeled datasets.
func (j *Job) Inputs() map[string]*model.Relation { return j.inputs }

// Ops returns the declared operators in order.
func (j *Job) Ops() []OpDecl { return j.ops }

// validate performs the checks of Section 3.2: all labels resolve and at
// least one Detect exists.
func (j *Job) validate() error {
	if len(j.inputs) == 0 {
		return fmt.Errorf("core: job %q has no input dataset", j.Name)
	}
	produced := make(map[string]bool, len(j.inputs))
	for l := range j.inputs {
		produced[l] = true
	}
	hasDetect := false
	for _, op := range j.ops {
		switch op.Kind {
		case OpScope, OpBlock:
			if !produced[op.In[0]] {
				return fmt.Errorf("core: job %q: %s references undefined label %q", j.Name, op.Kind, op.In[0])
			}
		case OpIterate:
			for _, in := range op.In {
				if !produced[in] {
					return fmt.Errorf("core: job %q: Iterate references undefined label %q", j.Name, in)
				}
			}
			produced[op.Out] = true
		case OpDetect:
			if !produced[op.In[0]] {
				return fmt.Errorf("core: job %q: Detect references undefined label %q", j.Name, op.In[0])
			}
			hasDetect = true
		case OpGenFix:
			// matched to a Detect label below
		}
	}
	if !hasDetect {
		return fmt.Errorf("core: job %q has no Detect operator", j.Name)
	}
	for _, op := range j.ops {
		if op.Kind != OpGenFix {
			continue
		}
		found := false
		for _, d := range j.ops {
			if d.Kind == OpDetect && d.In[0] == op.In[0] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: job %q: GenFix label %q has no matching Detect", j.Name, op.In[0])
		}
	}
	return nil
}
