// Package core implements BigDansing's primary contribution: the
// five-operator rule-specification abstraction (Scope, Block, Iterate,
// Detect, GenFix), the job API that wires labeled operators over input
// datasets (Appendix A), the logical planner (Section 3.2), the plan
// consolidation and enhancer-selection optimizations (Section 4), and
// execution layers for both the in-memory dataflow backend and the
// disk-based MapReduce backend (Appendix G).
//
// Operator functions are invoked concurrently from many workers — that is
// the point of the abstraction ("it allows to apply an operator in a highly
// parallel fashion", Section 3.1) — so they must be safe for concurrent
// use: treat their inputs as read-only and avoid writing shared state
// without synchronization.
package core

import (
	"bigdansing/internal/model"
)

// ScopeFunc removes irrelevant data units and/or projects their elements.
// Returning an empty slice drops the unit; returning several replicates it
// (Section 3.1, operator 1).
type ScopeFunc func(model.Tuple) []model.Tuple

// BlockFunc assigns a data unit the blocking key of the group in which
// violations may occur (Section 3.1, operator 2). The key is a model.Value:
// single-attribute blocks return the cell value itself (no per-record
// allocation), composite blocks render their parts into one string value.
// The engine groups on the value's comparable MapKey, so I(1), F(1) and
// S("1") block apart exactly as the old string keys did.
type BlockFunc func(model.Tuple) model.Value

// IterateFunc combines data units into candidate violations. It receives
// one list per input stream (the units of one co-grouped block) and emits
// the items Detect will examine (Section 3.1, operator 3).
type IterateFunc func(blocks [][]model.Tuple) []Item

// DetectFunc decides whether a candidate is a real violation, returning
// zero or more violations (Section 3.1, operator 4).
type DetectFunc func(Item) []model.Violation

// GenFixFunc computes the possible fixes for one violation (Section 3.1,
// operator 5).
type GenFixFunc func(model.Violation) []model.Fix

// ItemKind distinguishes the three input granularities Detect accepts: a
// single unit, a pair of units, or a list of units. Distinguishing them
// lets the executor parallelize at the finest granularity available.
type ItemKind uint8

const (
	// ItemSingle is one data unit.
	ItemSingle ItemKind = iota
	// ItemPair is an ordered pair of units.
	ItemPair
	// ItemList is an arbitrary list of units.
	ItemList
)

// Item is a candidate violation: the unit(s) Iterate hands to Detect.
type Item struct {
	Kind   ItemKind
	Tuples []model.Tuple
}

// Single wraps one unit.
func Single(t model.Tuple) Item { return Item{Kind: ItemSingle, Tuples: []model.Tuple{t}} }

// PairItem wraps an ordered pair.
func PairItem(l, r model.Tuple) Item {
	return Item{Kind: ItemPair, Tuples: []model.Tuple{l, r}}
}

// ListItem wraps a list of units.
func ListItem(ts []model.Tuple) Item { return Item{Kind: ItemList, Tuples: ts} }

// One returns the single unit (valid for ItemSingle).
func (it Item) One() model.Tuple { return it.Tuples[0] }

// Left returns the first unit of a pair.
func (it Item) Left() model.Tuple { return it.Tuples[0] }

// Right returns the second unit of a pair.
func (it Item) Right() model.Tuple { return it.Tuples[1] }

// PairsUnique is the default Iterate for symmetric rules over one stream:
// the unique unordered pairs within the block, n(n-1)/2 instead of n²
// (Figure 2's four pairs instead of thirteen).
func PairsUnique(blocks [][]model.Tuple) []Item {
	if len(blocks) == 0 {
		return nil
	}
	us := blocks[0]
	if len(us) < 2 {
		return nil
	}
	out := make([]Item, 0, len(us)*(len(us)-1)/2)
	for i := 0; i < len(us); i++ {
		for j := i + 1; j < len(us); j++ {
			out = append(out, PairItem(us[i], us[j]))
		}
	}
	return out
}

// PairsOrdered is the default Iterate for asymmetric rules over one stream:
// all ordered pairs within the block.
func PairsOrdered(blocks [][]model.Tuple) []Item {
	if len(blocks) == 0 {
		return nil
	}
	us := blocks[0]
	if len(us) < 2 {
		return nil
	}
	out := make([]Item, 0, len(us)*(len(us)-1))
	for i := range us {
		for j := range us {
			if i == j {
				continue
			}
			out = append(out, PairItem(us[i], us[j]))
		}
	}
	return out
}

// PairsAcross is the default Iterate for two co-grouped streams: the cross
// pairs between the left and right bags of one key (the CoBlock pattern of
// Figure 6).
func PairsAcross(blocks [][]model.Tuple) []Item {
	if len(blocks) < 2 {
		return nil
	}
	left, right := blocks[0], blocks[1]
	out := make([]Item, 0, len(left)*len(right))
	for _, l := range left {
		for _, r := range right {
			if l.ID == r.ID {
				continue
			}
			out = append(out, PairItem(l, r))
		}
	}
	return out
}

// Singles is the Iterate for unary rules: each unit is its own candidate.
func Singles(blocks [][]model.Tuple) []Item {
	if len(blocks) == 0 {
		return nil
	}
	out := make([]Item, 0, len(blocks[0]))
	for _, t := range blocks[0] {
		out = append(out, Single(t))
	}
	return out
}
