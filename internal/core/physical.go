package core

import (
	"fmt"
	"strings"
)

// IterImpl enumerates the physical implementations the optimizer can pick
// for the Iterate stage (Section 4.2's wrappers and enhancers).
type IterImpl uint8

const (
	// IterCustom wraps a user-provided Iterate (a wrapper, no enhancer).
	IterCustom IterImpl = iota
	// IterUniquePairs enumerates unique unordered pairs per block —
	// the UCrossProduct enhancer, valid for symmetric rules.
	IterUniquePairs
	// IterOrderedPairs enumerates all ordered pairs per block — the plain
	// CrossProduct wrapper for asymmetric rules.
	IterOrderedPairs
	// IterCoBlockPairs pairs units across the bags of two co-grouped
	// streams — the CoBlock enhancer (Figure 6).
	IterCoBlockPairs
	// IterOCJoin produces exactly the pairs satisfying the rule's ordering
	// comparisons — the OCJoin enhancer (Section 4.3).
	IterOCJoin
	// IterSingles feeds each unit on its own — unary rules.
	IterSingles
)

// String names the implementation as the paper's physical operators.
func (i IterImpl) String() string {
	switch i {
	case IterCustom:
		return "PIterate"
	case IterUniquePairs:
		return "UCrossProduct"
	case IterOrderedPairs:
		return "CrossProduct"
	case IterCoBlockPairs:
		return "CoBlock"
	case IterOCJoin:
		return "OCJoin"
	case IterSingles:
		return "PMap"
	default:
		return "Iter?"
	}
}

// PhysicalPipeline is a pipeline plus the optimizer's physical choices.
type PhysicalPipeline struct {
	Pipeline
	Impl IterImpl
	// Ops lists the physical operator sequence for EXPLAIN-style output.
	Ops []string
}

// PhysicalPlan is the optimized executable plan.
type PhysicalPlan struct {
	Name        string
	Logical     *LogicalPlan
	Pipelines   []PhysicalPipeline
	SharedScans int
}

// Optimize consolidates the logical plan (Algorithm 1) and translates each
// pipeline into physical operators, selecting enhancers where the rule's
// structure permits (Section 4.2):
//
//   - ordering-comparison rules take OCJoin;
//   - two-branch (or doubly-keyed) rules take CoBlock;
//   - symmetric blocked rules take UCrossProduct within blocks;
//   - asymmetric blocked rules fall back to ordered pairs;
//   - user Iterates are wrapped unchanged.
func Optimize(lp *LogicalPlan) (*PhysicalPlan, error) {
	lp = Consolidate(lp)
	pp := &PhysicalPlan{Name: lp.Name, Logical: lp, SharedScans: lp.SharedScans}
	for _, p := range lp.Pipelines {
		phys := PhysicalPipeline{Pipeline: p}
		var ops []string
		for _, b := range p.Branches {
			if len(b.Scopes) > 0 {
				ops = append(ops, "PScope")
			}
		}
		switch {
		case p.Unary:
			phys.Impl = IterSingles
		case p.Iterate != nil:
			phys.Impl = IterCustom
			if len(p.Branches) > 1 {
				ops = append(ops, "Co-Block")
			} else if p.Branches[0].Block != nil {
				ops = append(ops, "PBlock")
			}
		case len(p.OrderConds) > 0:
			phys.Impl = IterOCJoin
		case len(p.Branches) > 1:
			phys.Impl = IterCoBlockPairs
			for _, b := range p.Branches {
				if b.Block == nil {
					return nil, fmt.Errorf("core: pipeline %s: CoBlock branches must all have Block operators", p.RuleID)
				}
			}
		case p.Branches[0].Block != nil && p.Symmetric:
			phys.Impl = IterUniquePairs
			ops = append(ops, "PBlock")
		case p.Branches[0].Block != nil:
			phys.Impl = IterOrderedPairs
			ops = append(ops, "PBlock")
		case p.Symmetric:
			phys.Impl = IterUniquePairs
		default:
			phys.Impl = IterOrderedPairs
		}
		ops = append(ops, phys.Impl.String(), "PDetect")
		if p.GenFix != nil {
			ops = append(ops, "PGenFix")
		}
		phys.Ops = ops
		pp.Pipelines = append(pp.Pipelines, phys)
	}
	return pp, nil
}

// Explain renders the physical plan, one pipeline per line.
func (pp *PhysicalPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (shared scans: %d)\n", pp.Name, pp.SharedScans)
	for _, p := range pp.Pipelines {
		fmt.Fprintf(&b, "  %s: %s\n", p.RuleID, strings.Join(p.Ops, " -> "))
	}
	return b.String()
}
