package core

import (
	"fmt"
	"strings"
)

// IterImpl enumerates the physical implementations the optimizer can pick
// for the Iterate stage (Section 4.2's wrappers and enhancers).
type IterImpl uint8

const (
	// IterCustom wraps a user-provided Iterate (a wrapper, no enhancer).
	IterCustom IterImpl = iota
	// IterUniquePairs enumerates unique unordered pairs per block —
	// the UCrossProduct enhancer, valid for symmetric rules.
	IterUniquePairs
	// IterOrderedPairs enumerates all ordered pairs per block — the plain
	// CrossProduct wrapper for asymmetric rules.
	IterOrderedPairs
	// IterCoBlockPairs pairs units across the bags of two co-grouped
	// streams — the CoBlock enhancer (Figure 6).
	IterCoBlockPairs
	// IterOCJoin produces exactly the pairs satisfying the rule's ordering
	// comparisons — the OCJoin enhancer (Section 4.3).
	IterOCJoin
	// IterSingles feeds each unit on its own — unary rules.
	IterSingles
)

// String names the implementation as the paper's physical operators.
func (i IterImpl) String() string {
	switch i {
	case IterCustom:
		return "PIterate"
	case IterUniquePairs:
		return "UCrossProduct"
	case IterOrderedPairs:
		return "CrossProduct"
	case IterCoBlockPairs:
		return "CoBlock"
	case IterOCJoin:
		return "OCJoin"
	case IterSingles:
		return "PMap"
	default:
		return "Iter?"
	}
}

// PhysicalPipeline is a pipeline plus the planner's physical choices.
type PhysicalPipeline struct {
	Pipeline
	Impl IterImpl
	// Broadcast marks the collect-locally variants: the scoped stream(s)
	// are gathered onto one node and grouped there instead of through a
	// shuffle stage. Chosen by the cost model for tiny relations.
	Broadcast bool
	// Ops lists the physical operator sequence for EXPLAIN-style output.
	Ops []string
	// EstCost is the planner's estimate for the chosen alternative;
	// Alternatives keeps every legal alternative it priced (chosen and
	// rejected) so EXPLAIN can audit the decision.
	EstCost      Cost
	Alternatives []PlanAlternative
}

// PhysicalPlan is the optimized executable plan.
type PhysicalPlan struct {
	Name        string
	Logical     *LogicalPlan
	Pipelines   []PhysicalPipeline
	SharedScans int
}

// Optimize consolidates the logical plan (Algorithm 1) and translates each
// pipeline into physical operators, selecting enhancers where the rule's
// structure permits (Section 4.2):
//
//   - ordering-comparison rules take OCJoin;
//   - two-branch (or doubly-keyed) rules take CoBlock;
//   - symmetric blocked rules take UCrossProduct within blocks;
//   - asymmetric blocked rules fall back to ordered pairs;
//   - user Iterates are wrapped unchanged.
//
// Deprecated: Optimize is the legacy rule-shape translation. Use
// NewPlanner().Plan(lp) — the default static cost model reproduces these
// choices exactly, and NewPlanner(WithCostModel(NewCostModel())) plans
// from statistics instead.
func Optimize(lp *LogicalPlan) (*PhysicalPlan, error) {
	return NewPlanner().Plan(lp)
}

// Explain renders the physical plan: one operator-sequence line per
// pipeline, followed (when the planner kept them) by the priced
// alternatives — chosen and rejected — of each decision.
func (pp *PhysicalPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (shared scans: %d)\n", pp.Name, pp.SharedScans)
	for _, p := range pp.Pipelines {
		fmt.Fprintf(&b, "  %s: %s\n", p.RuleID, strings.Join(p.Ops, " -> "))
		explainAlternatives(&b, p)
	}
	return b.String()
}
