package core

import (
	"fmt"
	"reflect"

	"bigdansing/internal/join"
	"bigdansing/internal/model"
)

// Branch is one resolved input chain of a pipeline: the dataset label it
// reads (or the derived stream producing it), the Scope operators applied
// to it in order, and the optional Block operator keying it.
type Branch struct {
	// Label is the stream label the branch carries.
	Label string
	// Dataset is the input label the branch reads (a key of the plan's
	// Inputs map). Empty when the branch reads a derived stream.
	Dataset string
	// Derived, when non-nil, produces the branch's units from an upstream
	// Iterate instead of a base dataset — the D_M flow of Figure 4, where
	// one Iterate's output feeds further operators.
	Derived *Derived
	// Scopes are applied in order.
	Scopes []ScopeFunc
	// Block keys the stream; nil means unkeyed.
	Block BlockFunc
	// BlockAttr optionally names the attribute Block keys on, for stats and
	// EXPLAIN (see Rule.BlockAttr).
	BlockAttr string
	// AltBlocks are semantically valid alternative block keys the planner
	// may substitute for Block (coarser keys for rules whose Detect
	// re-checks the full predicate per pair); AltBlockAttrs names them
	// position-for-position.
	AltBlocks     []BlockFunc
	AltBlockAttrs []string
}

// Derived is an upstream Iterate whose emitted units form a stream: the
// items it produces are flattened back to data units (single-unit items
// pass through; list items expand; pair items contribute both units).
type Derived struct {
	Iterate  IterateFunc
	Branches []Branch
}

// Pipeline is the resolved plan of one Detect: its input branches, the
// Iterate joining them (nil for planner-chosen defaults), the Detect and
// the optional GenFix, plus the optimization hints.
type Pipeline struct {
	RuleID  string
	Detect  DetectFunc
	GenFix  GenFixFunc
	Iterate IterateFunc
	// Branches feed Iterate in order; for the common single-dataset rule
	// there is exactly one.
	Branches []Branch

	Symmetric  bool
	OrderConds []join.Cond
	Unary      bool
	NumParts   int

	// Vec carries the rule's vectorized operator forms, when it has any
	// (see Rule.Vec); nil keeps the pipeline on the tuple path.
	Vec *VecForms
}

// LogicalPlan is the validated, resolved form of a job (Figure 3's output):
// the labeled input datasets plus one pipeline per Detect operator.
type LogicalPlan struct {
	Name      string
	Inputs    map[string]*model.Relation
	Pipelines []Pipeline
	// SharedScans counts the branch pairs the consolidation step merged
	// onto one scan (Algorithm 1); informational.
	SharedScans int
}

// BuildPlan turns a job into a logical plan following the planner flow of
// Figure 3: for each Detect, find its Iterate (or schedule a default), then
// walk backwards collecting matching Block and Scope operators per input
// label, ending at the input datasets.
func BuildPlan(j *Job) (*LogicalPlan, error) {
	if err := j.validate(); err != nil {
		return nil, err
	}
	lp := &LogicalPlan{Name: j.Name, Inputs: j.inputs}

	genFixFor := func(label string) GenFixFunc {
		for _, op := range j.ops {
			if op.Kind == OpGenFix && op.In[0] == label {
				return op.GenFix
			}
		}
		return nil
	}
	iterateFor := func(label string) *OpDecl {
		for i, op := range j.ops {
			if op.Kind == OpIterate && op.Out == label {
				return &j.ops[i]
			}
		}
		return nil
	}

	// resolveBranch walks Scope/Block declarations for one stream label,
	// recursing into upstream Iterates (Figure 4's chained flows). visiting
	// guards against label cycles.
	var resolveBranch func(label string, visiting map[string]bool) (Branch, error)
	resolveBranch = func(label string, visiting map[string]bool) (Branch, error) {
		b := Branch{Label: label}
		if visiting[label] {
			return b, fmt.Errorf("core: job %q: label %q forms a cycle", j.Name, label)
		}
		if _, isInput := j.inputs[label]; isInput {
			b.Dataset = label
		} else {
			up := iterateFor(label)
			if up == nil {
				return b, fmt.Errorf("core: job %q: label %q does not resolve to an input dataset or an Iterate output", j.Name, label)
			}
			visiting[label] = true
			d := &Derived{Iterate: up.Iterate}
			for _, in := range up.In {
				sub, err := resolveBranch(in, visiting)
				if err != nil {
					return b, err
				}
				d.Branches = append(d.Branches, sub)
			}
			delete(visiting, label)
			b.Derived = d
		}
		for _, op := range j.ops {
			switch op.Kind {
			case OpScope:
				if op.In[0] == label {
					b.Scopes = append(b.Scopes, op.Scope)
				}
			case OpBlock:
				if op.In[0] == label {
					if b.Block != nil {
						return b, fmt.Errorf("core: job %q: label %q has more than one Block", j.Name, label)
					}
					b.Block = op.Block
				}
			}
		}
		return b, nil
	}

	ndetect := 0
	for _, op := range j.ops {
		if op.Kind != OpDetect {
			continue
		}
		ndetect++
		p := Pipeline{
			RuleID: fmt.Sprintf("%s#%d", j.Name, ndetect),
			Detect: op.Detect,
			GenFix: genFixFor(op.In[0]),
		}
		if it := iterateFor(op.In[0]); it != nil {
			p.Iterate = it.Iterate
			for _, in := range it.In {
				b, err := resolveBranch(in, map[string]bool{})
				if err != nil {
					return nil, err
				}
				p.Branches = append(p.Branches, b)
			}
		} else {
			// No Iterate: the Detect label must itself be a stream
			// (Section 3.2: "If Iterate is not specified, BigDansing
			// generates one according to the input required by Detect").
			b, err := resolveBranch(op.In[0], map[string]bool{})
			if err != nil {
				return nil, err
			}
			p.Branches = append(p.Branches, b)
		}
		lp.Pipelines = append(lp.Pipelines, p)
	}
	return lp, nil
}

// PlanRule builds the single-pipeline logical plan of a Rule over one
// relation — the path declarative rules take after translation.
func PlanRule(r *Rule, rel *model.Relation) (*LogicalPlan, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	b := Branch{
		Label: r.ID, Dataset: rel.Name,
		Block: r.Block, BlockAttr: r.BlockAttr,
		AltBlocks: r.AltBlocks, AltBlockAttrs: r.AltBlockAttrs,
	}
	if r.Scope != nil {
		b.Scopes = []ScopeFunc{r.Scope}
	}
	p := Pipeline{
		RuleID:     r.ID,
		Detect:     r.Detect,
		GenFix:     r.GenFix,
		Iterate:    r.Iterate,
		Branches:   []Branch{b},
		Symmetric:  r.Symmetric,
		OrderConds: r.OrderConds,
		Unary:      r.Unary,
		NumParts:   r.NumParts,
		Vec:        r.Vec,
	}
	if r.BlockRight != nil {
		// A self CoBlock: the same dataset keyed twice.
		right := Branch{Label: r.ID + "/right", Dataset: rel.Name, Block: r.BlockRight}
		if r.Scope != nil {
			right.Scopes = []ScopeFunc{r.Scope}
		}
		p.Branches = append(p.Branches, right)
	}
	return &LogicalPlan{
		Name:      r.ID,
		Inputs:    map[string]*model.Relation{rel.Name: rel},
		Pipelines: []Pipeline{p},
	}, nil
}

// PlanRules merges the single-rule plans of several rules over the same
// relation into one logical plan, so consolidation can share scans across
// rules (the multi-rule HAI runs of Table 4 and the bushy plan of
// Appendix E).
func PlanRules(rs []*Rule, rel *model.Relation) (*LogicalPlan, error) {
	lp := &LogicalPlan{
		Name:   rel.Name,
		Inputs: map[string]*model.Relation{rel.Name: rel},
	}
	for _, r := range rs {
		sub, err := PlanRule(r, rel)
		if err != nil {
			return nil, err
		}
		lp.Pipelines = append(lp.Pipelines, sub.Pipelines...)
	}
	return lp, nil
}

// Consolidate implements Algorithm 1: logical operators that apply the same
// function to the same dataset under different labels are merged so that
// the execution shares one scan (and one scoped materialization) instead of
// duplicating the input. The executor honors the merge through scan keys;
// Consolidate records how many merges it found and returns the plan (the
// plan structure itself is unchanged — merging is a matter of keying, since
// branches already reference datasets by name).
func Consolidate(lp *LogicalPlan) *LogicalPlan {
	type scanKey struct {
		rel   *model.Relation // labels are resolved to the dataset itself
		scope uintptr
	}
	seen := make(map[scanKey]int)
	shared := 0
	for _, p := range lp.Pipelines {
		for _, b := range p.Branches {
			if b.Derived != nil {
				continue // derived streams are not base scans
			}
			k := scanKey{rel: lp.Inputs[b.Dataset]}
			if len(b.Scopes) > 0 {
				k.scope = reflect.ValueOf(b.Scopes[0]).Pointer()
			}
			seen[k]++
			if seen[k] > 1 {
				shared++
			}
		}
	}
	lp.SharedScans = shared
	return lp
}
