package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"bigdansing/internal/engine"
)

// Planner is the public planning API: it consolidates a logical plan
// (Algorithm 1), enumerates the legal physical alternatives of every
// pipeline (Section 4.2's wrappers and enhancers plus the broadcast and
// alternate-key variants), prices each with its CostModel, and picks the
// cheapest. The zero-configuration planner (NewPlanner()) uses StaticCost
// and reproduces the legacy Optimize choices exactly; NewPlanner with
// WithCostModel(NewCostModel()) plans from sampled statistics and
// Observer feedback.
//
// A Planner is safe for concurrent use.
type Planner struct {
	model       CostModel
	stats       map[string]TableStats
	src         FeedbackSource
	budget      int64
	parallelism int

	mu      sync.Mutex
	history []string
}

// PlannerOption configures a Planner.
type PlannerOption func(*Planner)

// WithCostModel installs the cost model (default StaticCost).
func WithCostModel(m CostModel) PlannerOption {
	return func(p *Planner) {
		if m != nil {
			p.model = m
		}
	}
}

// WithTableStats installs precomputed statistics keyed by branch label,
// overriding the sampling pass for those labels (tests and external stats
// stores use this).
func WithTableStats(stats map[string]TableStats) PlannerOption {
	return func(p *Planner) { p.stats = stats }
}

// WithObserverFeedback installs a source of prior-run measurements (a
// *Feedback loaded via -stats-in, or a live *FeedbackRecorder teed into the
// run's Observer). Measured pair counts override the statistical estimate
// for the pipeline they were recorded on.
func WithObserverFeedback(src FeedbackSource) PlannerOption {
	return func(p *Planner) { p.src = src }
}

// WithMemoryBudget tells the cost model the engine's MemoryBudgetBytes so
// it can penalize working sets that spill (0 = unbounded).
func WithMemoryBudget(bytes int64) PlannerOption {
	return func(p *Planner) { p.budget = bytes }
}

// WithParallelism tells the cost model the worker count (default
// runtime.GOMAXPROCS).
func WithParallelism(n int) PlannerOption {
	return func(p *Planner) {
		if n > 0 {
			p.parallelism = n
		}
	}
}

// NewPlanner builds a Planner. With no options it is the drop-in
// replacement for the deprecated Optimize: StaticCost, no statistics.
func NewPlanner(opts ...PlannerOption) *Planner {
	p := &Planner{
		model:       StaticCost{},
		parallelism: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// PlanAlternative is one legal physical choice for a pipeline, priced.
// PhysicalPipeline.Alternatives keeps all of them (chosen and rejected) so
// EXPLAIN can audit the decision.
type PlanAlternative struct {
	Impl IterImpl
	// Broadcast marks the collect-locally variant (no shuffle stage; the
	// scoped stream is grouped on one node).
	Broadcast bool
	// Default marks the alternative the legacy rule-shape switch picks.
	Default bool
	// BlockAttr names the block key this alternative partitions on ("" when
	// unkeyed); AltBlock is the index into Branch.AltBlocks (-1 = the
	// primary Block).
	BlockAttr string
	AltBlock  int
	// NumParts is the OCJoin partition count (0 = parallelism).
	NumParts int
	// Cost is the model's estimate; Chosen marks the winner.
	Cost   Cost
	Chosen bool
}

// Label renders the alternative for EXPLAIN output.
func (a PlanAlternative) Label() string {
	switch {
	case a.Impl == IterOCJoin:
		if a.NumParts > 0 {
			return fmt.Sprintf("OCJoin(parts=%d)", a.NumParts)
		}
		return "OCJoin(parts=auto)"
	case a.Impl == IterCoBlockPairs && a.Broadcast:
		return "BroadcastCoBlock"
	case a.Broadcast:
		return "Broadcast" + a.Impl.String()
	case a.AltBlock >= 0 && a.BlockAttr != "":
		return fmt.Sprintf("%s(block=%s)", a.Impl.String(), a.BlockAttr)
	default:
		return a.Impl.String()
	}
}

// blockKeyName names one candidate block key of a branch: alt < 0 is the
// primary Block (Branch.BlockAttr or "block"), alt >= 0 indexes AltBlocks.
func blockKeyName(b Branch, alt int) string {
	if alt >= 0 {
		if alt < len(b.AltBlockAttrs) && b.AltBlockAttrs[alt] != "" {
			return b.AltBlockAttrs[alt]
		}
		return fmt.Sprintf("alt%d", alt)
	}
	if b.BlockAttr != "" {
		return b.BlockAttr
	}
	return "block"
}

// enumerateAlternatives lists the legal physical choices of one pipeline in
// deterministic order, legacy choice first (alts[0].Default = true), so
// StaticCost — which prices the default at zero and breaks ties in order —
// reproduces Optimize exactly.
func enumerateAlternatives(p Pipeline, parallelism int) ([]PlanAlternative, error) {
	switch {
	case p.Unary:
		return []PlanAlternative{{Impl: IterSingles, Default: true, AltBlock: -1}}, nil
	case p.Iterate != nil:
		return []PlanAlternative{{Impl: IterCustom, Default: true, AltBlock: -1}}, nil
	case len(p.OrderConds) > 0:
		base := p.NumParts
		if base <= 0 {
			base = parallelism
		}
		alts := []PlanAlternative{{Impl: IterOCJoin, Default: true, AltBlock: -1, NumParts: p.NumParts}}
		for _, parts := range []int{2 * base, 4 * base} {
			if parts == p.NumParts {
				continue
			}
			alts = append(alts, PlanAlternative{Impl: IterOCJoin, AltBlock: -1, NumParts: parts})
		}
		return alts, nil
	case len(p.Branches) > 1:
		for _, b := range p.Branches {
			if b.Block == nil {
				return nil, fmt.Errorf("core: pipeline %s: CoBlock branches must all have Block operators", p.RuleID)
			}
		}
		return []PlanAlternative{
			{Impl: IterCoBlockPairs, Default: true, AltBlock: -1},
			{Impl: IterCoBlockPairs, Broadcast: true, AltBlock: -1},
		}, nil
	case p.Branches[0].Block != nil:
		impl := IterOrderedPairs
		if p.Symmetric {
			impl = IterUniquePairs
		}
		b := p.Branches[0]
		alts := []PlanAlternative{
			{Impl: impl, Default: true, AltBlock: -1, BlockAttr: blockKeyName(b, -1)},
		}
		// Alternate block keys and the broadcast variant are only legal on
		// base scans (derived streams are single-shot and feed the custom
		// path anyway).
		if b.Derived == nil {
			for i := range b.AltBlocks {
				alts = append(alts, PlanAlternative{
					Impl: impl, AltBlock: i, BlockAttr: blockKeyName(b, i),
				})
			}
			alts = append(alts, PlanAlternative{
				Impl: impl, Broadcast: true, AltBlock: -1, BlockAttr: blockKeyName(b, -1),
			})
		}
		return alts, nil
	case p.Symmetric:
		return []PlanAlternative{{Impl: IterUniquePairs, Default: true, AltBlock: -1}}, nil
	default:
		return []PlanAlternative{{Impl: IterOrderedPairs, Default: true, AltBlock: -1}}, nil
	}
}

// renderOps builds the EXPLAIN operator sequence for one pipeline under one
// alternative. It matches the legacy rendering, plus the markers the legacy
// path omitted (OCJoin's RangePartition, CoBlock's Co-Block) and the
// Broadcast marker for collect-locally variants.
func renderOps(p Pipeline, alt PlanAlternative) []string {
	var ops []string
	for _, b := range p.Branches {
		if len(b.Scopes) > 0 {
			ops = append(ops, "PScope")
		}
	}
	switch {
	case alt.Impl == IterSingles:
	case alt.Impl == IterCustom:
		if len(p.Branches) > 1 {
			ops = append(ops, "Co-Block")
		} else if p.Branches[0].Block != nil {
			ops = append(ops, "PBlock")
		}
	case alt.Impl == IterOCJoin:
		ops = append(ops, "RangePartition")
	case alt.Impl == IterCoBlockPairs:
		if alt.Broadcast {
			ops = append(ops, "Broadcast")
		} else {
			ops = append(ops, "Co-Block")
		}
	case p.Branches[0].Block != nil || alt.AltBlock >= 0:
		if alt.Broadcast {
			ops = append(ops, "Broadcast")
		} else {
			ops = append(ops, "PBlock")
		}
	}
	ops = append(ops, alt.Impl.String(), "PDetect")
	if p.GenFix != nil {
		ops = append(ops, "PGenFix")
	}
	return ops
}

// Plan consolidates the logical plan and translates each pipeline into
// physical operators, choosing the cheapest legal alternative under the
// planner's cost model. The full alternative list (with costs, chosen
// first-class) is kept on each PhysicalPipeline for EXPLAIN.
func (pl *Planner) Plan(lp *LogicalPlan) (*PhysicalPlan, error) {
	lp = Consolidate(lp)
	pp := &PhysicalPlan{Name: lp.Name, Logical: lp, SharedScans: lp.SharedScans}
	var fb *Feedback
	if pl.src != nil {
		fb = pl.src.PlanFeedback()
	}
	for _, p := range lp.Pipelines {
		phys, err := pl.planPipeline(lp, p, fb)
		if err != nil {
			return nil, err
		}
		pp.Pipelines = append(pp.Pipelines, phys)
	}
	pl.remember(pp)
	return pp, nil
}

// branchStats resolves statistics for one branch: WithTableStats overrides
// by label, else one sampling pass over the base relation. Derived branches
// (no base relation) get zero stats — their alternatives are not enumerated
// anyway.
func (pl *Planner) branchStats(lp *LogicalPlan, b Branch) TableStats {
	if st, ok := pl.stats[b.Label]; ok {
		return st
	}
	if st, ok := pl.stats[b.Dataset]; ok {
		return st
	}
	if b.Derived != nil {
		return TableStats{BlockKeys: map[string]BlockKeyStats{}}
	}
	return sampleBranchStats(lp.Inputs[b.Dataset], b, pl.parallelism)
}

func (pl *Planner) planPipeline(lp *LogicalPlan, p Pipeline, fb *Feedback) (PhysicalPipeline, error) {
	alts, err := enumerateAlternatives(p, pl.parallelism)
	if err != nil {
		return PhysicalPipeline{}, err
	}

	// Statistics are only gathered when the model prices them; StaticCost
	// keeps planning allocation-free.
	_, static := pl.model.(StaticCost)
	var left, right TableStats
	if !static {
		left = pl.branchStats(lp, p.Branches[0])
		if len(p.Branches) > 1 {
			right = pl.branchStats(lp, p.Branches[1])
		}
	}
	var measured int64
	if fb != nil {
		if pf, ok := fb.Pipelines[p.RuleID]; ok {
			measured = pf.Pairs
		}
	}

	best := 0
	for i := range alts {
		a := &alts[i]
		in := CostInputs{
			Impl:         a.Impl,
			Broadcast:    a.Broadcast,
			Default:      a.Default,
			Rows:         left.Rows,
			TupleBytes:   left.TupleBytes,
			NumParts:     a.NumParts,
			Parallelism:  pl.parallelism,
			MemoryBudget: pl.budget,
		}
		if len(p.Branches) > 1 {
			in.RowsRight = right.Rows
			in.TupleBytesRight = right.TupleBytes
		}
		if a.BlockAttr != "" || a.Impl == IterCoBlockPairs {
			in.HasBlock = true
			in.Block = left.BlockKeys[blockKeyName(p.Branches[0], a.AltBlock)]
			if len(p.Branches) > 1 {
				in.BlockRight = right.BlockKeys[blockKeyName(p.Branches[1], -1)]
			}
		}
		// Measured pair counts describe the plan the prior run executed —
		// only the primary-key (default-shaped) blocked/broadcast and
		// custom/co-block alternatives reuse them; alternate keys and
		// repartitioned OCJoins enumerate different pairs.
		if measured > 0 && a.AltBlock < 0 && a.Impl != IterOCJoin {
			in.MeasuredPairs = measured
		}
		a.Cost = pl.model.Cost(in)
		if a.Cost.Total() < alts[best].Cost.Total() {
			best = i
		}
	}
	chosen := &alts[best]
	chosen.Chosen = true

	phys := PhysicalPipeline{Pipeline: p, Impl: chosen.Impl, Broadcast: chosen.Broadcast}
	phys.EstCost = chosen.Cost
	if !static {
		// Static planning keeps the legacy EXPLAIN output (the 0/1 tie-break
		// costs audit nothing); cost-based plans carry the full audit trail.
		phys.Alternatives = alts
	}
	phys.Ops = renderOps(p, *chosen)
	if chosen.Impl == IterOCJoin && !chosen.Default {
		phys.NumParts = chosen.NumParts
	}
	if chosen.AltBlock >= 0 {
		// Re-key the branch on the alternate block key. Clone the slice so
		// the logical plan (and other planners) keep the original.
		branches := make([]Branch, len(p.Branches))
		copy(branches, p.Branches)
		b := &branches[0]
		b.Block = b.AltBlocks[chosen.AltBlock]
		b.BlockAttr = chosen.BlockAttr
		phys.Branches = branches
		phys.Vec = nil // the vectorized forms are keyed to the primary Block
	}
	if chosen.Broadcast {
		phys.Vec = nil // the vectorized executor has no broadcast path
	}
	return phys, nil
}

// remember keeps a bounded history of plan explanations for audit endpoints
// (serve's EXPLAIN shows the decisions of the latest re-plans).
func (pl *Planner) remember(pp *PhysicalPlan) {
	const maxHistory = 8
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.history = append(pl.history, pp.Explain())
	if len(pl.history) > maxHistory {
		pl.history = pl.history[len(pl.history)-maxHistory:]
	}
}

// History returns the explanations of the plans this planner produced,
// oldest first (bounded).
func (pl *Planner) History() []string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]string, len(pl.history))
	copy(out, pl.history)
	return out
}

// ModelName names the planner's cost model ("static", "cost").
func (pl *Planner) ModelName() string { return pl.model.Name() }

// plannerFor resolves the planner an execution entry point should use: an
// explicitly supplied one wins; otherwise the context's PlannerMode selects
// the cost-based model or the static default.
func plannerFor(ctx *engine.Context, explicit *Planner) *Planner {
	if explicit != nil {
		return explicit
	}
	if ctx != nil && ctx.PlannerMode() == engine.PlannerCost {
		return NewPlanner(
			WithCostModel(NewCostModel()),
			WithMemoryBudget(ctx.MemoryBudget()),
			WithParallelism(ctx.Parallelism()),
		)
	}
	return NewPlanner()
}

// explainAlternatives renders the chosen-vs-rejected audit block of one
// pipeline (used by PhysicalPlan.Explain).
func explainAlternatives(b *strings.Builder, p PhysicalPipeline) {
	if len(p.Alternatives) == 0 {
		return
	}
	for _, a := range p.Alternatives {
		marker := "rejected"
		if a.Chosen {
			marker = "chosen  "
		}
		fmt.Fprintf(b, "    %s %-28s %s\n", marker, a.Label(), a.Cost.String())
	}
}
