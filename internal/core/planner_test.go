package core

import (
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// planTaxData builds a tax-like relation of n rows whose zipcode (col 1)
// cycles through `distinct` values; every block of shared zipcode disagrees
// on city for one row in ten, so FD detection finds work at every size.
func planTaxData(n, distinct int) *model.Relation {
	s := model.MustParseSchema("name,zipcode:int,city")
	rel := model.NewRelation("tax", s)
	for i := 0; i < n; i++ {
		city := "C"
		if i%10 == 0 {
			city = "X"
		}
		rel.Append(model.NewTuple(int64(i+1),
			model.S("n"), model.I(int64(i%distinct)), model.S(city)))
	}
	return rel
}

// planFDRule is a minimal blocked symmetric FD-shaped rule over planTaxData.
func planFDRule() *Rule {
	return &Rule{
		ID:        "planFD",
		Block:     func(t model.Tuple) model.Value { return t.Cell(1) },
		BlockAttr: "zipcode",
		Symmetric: true,
		Detect: func(it Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if !l.Cell(1).Equal(r.Cell(1)) || l.Cell(2).Equal(r.Cell(2)) {
				return nil
			}
			return []model.Violation{model.NewViolation("planFD",
				model.NewCell(l.ID, 2, "city", l.Cell(2)),
				model.NewCell(r.ID, 2, "city", r.Cell(2)))}
		},
	}
}

func mustPlanRule(t *testing.T, pl *Planner, r *Rule, rel *model.Relation) *PhysicalPlan {
	t.Helper()
	lp, err := PlanRule(r, rel)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := pl.Plan(lp)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func costPlanner(opts ...PlannerOption) *Planner {
	base := []PlannerOption{WithCostModel(NewCostModel()), WithParallelism(4)}
	return NewPlanner(append(base, opts...)...)
}

func violationKeys(res *DetectResult) []string {
	keys := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		keys = append(keys, v.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestStaticPlannerMatchesLegacyChoices pins the static model to the legacy
// rule-shape switch over every pipeline shape.
func TestStaticPlannerMatchesLegacyChoices(t *testing.T) {
	rel := exampleTax()
	cases := []struct {
		name string
		rule *Rule
		want IterImpl
	}{
		{"blocked symmetric", fdRule(), IterUniquePairs},
		{"order conds", dcRule(), IterOCJoin},
		{"unary", &Rule{
			ID: "u", Unary: true,
			Detect: func(Item) []model.Violation { return nil },
		}, IterSingles},
	}
	for _, c := range cases {
		pp := mustPlanRule(t, NewPlanner(), c.rule, rel)
		p := pp.Pipelines[0]
		if p.Impl != c.want {
			t.Errorf("%s: impl = %v, want %v", c.name, p.Impl, c.want)
		}
		if p.Broadcast {
			t.Errorf("%s: static planner chose broadcast", c.name)
		}
		if len(p.Alternatives) != 0 {
			t.Errorf("%s: static plan should not carry alternatives, got %d", c.name, len(p.Alternatives))
		}
	}
}

// TestOptimizeShimMatchesPlanner pins the deprecated Optimize to
// NewPlanner().Plan.
func TestOptimizeShimMatchesPlanner(t *testing.T) {
	rel := exampleTax()
	for _, r := range []*Rule{fdRule(), dcRule()} {
		lp1, err := PlanRule(r, rel)
		if err != nil {
			t.Fatal(err)
		}
		shim, err := Optimize(lp1)
		if err != nil {
			t.Fatal(err)
		}
		lp2, err := PlanRule(r, rel)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewPlanner().Plan(lp2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range shim.Pipelines {
			if shim.Pipelines[i].Impl != direct.Pipelines[i].Impl {
				t.Errorf("%s: shim impl %v != planner impl %v", r.ID, shim.Pipelines[i].Impl, direct.Pipelines[i].Impl)
			}
			if !reflect.DeepEqual(shim.Pipelines[i].Ops, direct.Pipelines[i].Ops) {
				t.Errorf("%s: shim ops %v != planner ops %v", r.ID, shim.Pipelines[i].Ops, direct.Pipelines[i].Ops)
			}
		}
	}
}

// TestOpsMarkersForOCJoinAndCoBlock covers the Ops-rendering fix: the
// OCJoin and CoBlock paths now name their partitioning operators.
func TestOpsMarkersForOCJoinAndCoBlock(t *testing.T) {
	rel := exampleTax()

	pp := mustPlanRule(t, NewPlanner(), dcRule(), rel)
	ops := strings.Join(pp.Pipelines[0].Ops, " -> ")
	if !strings.Contains(ops, "RangePartition") {
		t.Errorf("OCJoin ops missing RangePartition: %s", ops)
	}

	co := &Rule{
		ID:         "co",
		Block:      func(t model.Tuple) model.Value { return t.Cell(1) },
		BlockRight: func(t model.Tuple) model.Value { return t.Cell(2) },
		Detect:     func(Item) []model.Violation { return nil },
	}
	pp = mustPlanRule(t, NewPlanner(), co, rel)
	ops = strings.Join(pp.Pipelines[0].Ops, " -> ")
	if pp.Pipelines[0].Impl != IterCoBlockPairs {
		t.Fatalf("impl = %v, want CoBlock", pp.Pipelines[0].Impl)
	}
	if !strings.Contains(ops, "Co-Block") {
		t.Errorf("CoBlock ops missing Co-Block: %s", ops)
	}
}

// TestCostPlannerBroadcastsTinyRelation: on a tiny blocked relation the
// cost model prefers the broadcast variant (no shuffle-stage setup), and
// the result is identical to the static plan's.
func TestCostPlannerBroadcastsTinyRelation(t *testing.T) {
	rel := planTaxData(300, 60)
	r := planFDRule()

	pp := mustPlanRule(t, costPlanner(), r, rel)
	p := pp.Pipelines[0]
	if !p.Broadcast {
		t.Fatalf("tiny relation: want broadcast, chose %s (cost %s)\n%s",
			p.Impl, p.EstCost, pp.Explain())
	}
	if len(p.Alternatives) == 0 {
		t.Fatal("cost plan should carry alternatives")
	}
	chosen := 0
	for _, a := range p.Alternatives {
		if a.Chosen {
			chosen++
		}
	}
	if chosen != 1 {
		t.Errorf("chosen alternatives = %d, want 1", chosen)
	}
	exp := pp.Explain()
	if !strings.Contains(exp, "chosen") || !strings.Contains(exp, "rejected") || !strings.Contains(exp, "total=") {
		t.Errorf("Explain should audit chosen-vs-rejected with costs:\n%s", exp)
	}

	ctx := engine.New(4)
	got, err := DetectRuleWith(ctx, costPlanner(), r, rel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(violationKeys(got), violationKeys(want)) {
		t.Errorf("broadcast plan found %d violations, static %d", len(got.Violations), len(want.Violations))
	}
}

// TestCostPlannerKeepsShuffleForLargeRelation: past the crossover the
// blocked shuffle wins again (collect cost scales with size and is not
// divided by parallelism).
func TestCostPlannerKeepsShuffleForLargeRelation(t *testing.T) {
	rel := planTaxData(20000, 500)
	pp := mustPlanRule(t, costPlanner(), planFDRule(), rel)
	p := pp.Pipelines[0]
	if p.Broadcast {
		t.Fatalf("large relation: broadcast chosen over shuffle\n%s", pp.Explain())
	}
	if p.Impl != IterUniquePairs {
		t.Errorf("impl = %v, want UCrossProduct", p.Impl)
	}
}

// TestCostPlannerSpillPenaltySteersOffBroadcast: with a memory budget the
// broadcast collect (which cannot spill) is penalized harder than the
// spillable shuffle, flipping the tiny-relation choice back to blocked.
func TestCostPlannerSpillPenaltySteersOffBroadcast(t *testing.T) {
	// Near the broadcast/shuffle crossover: unconstrained, broadcast still
	// wins on stage setup; a budget makes its un-spillable collect lose.
	rel := planTaxData(1200, 600)
	r := planFDRule()

	free := mustPlanRule(t, costPlanner(), r, rel).Pipelines[0]
	if !free.Broadcast {
		t.Fatalf("without budget this relation should broadcast\n%v", free.EstCost)
	}
	budgeted := mustPlanRule(t, costPlanner(WithMemoryBudget(4<<10)), r, rel).Pipelines[0]
	if budgeted.Broadcast {
		t.Fatalf("4KiB budget: broadcast still chosen (cost %s)", budgeted.EstCost)
	}
	if budgeted.EstCost.Spill <= 0 {
		t.Errorf("budgeted choice should carry a spill penalty, got %s", budgeted.EstCost)
	}
}

// TestCostPlannerPicksAlternateKeyUnderSkew: when the primary block key is
// heavily skewed and the rule offers a uniform alternate, the planner
// re-keys the branch on the alternate.
func TestCostPlannerPicksAlternateKeyUnderSkew(t *testing.T) {
	rel := planTaxData(10000, 4)
	r := planFDRule()
	r.AltBlocks = []BlockFunc{func(t model.Tuple) model.Value { return t.Cell(0) }}
	r.AltBlockAttrs = []string{"name"}

	stats := map[string]TableStats{
		r.ID: {
			Rows:       10000,
			TupleBytes: 48,
			BlockKeys: map[string]BlockKeyStats{
				"zipcode": {Distinct: 4, TopFraction: 0.9, KeyBytes: 6},
				"name":    {Distinct: 2000, TopFraction: 0.001, KeyBytes: 6},
			},
		},
	}
	pp := mustPlanRule(t, costPlanner(WithTableStats(stats)), r, rel)
	p := pp.Pipelines[0]
	if p.Broadcast {
		t.Fatalf("skewed 10k-row relation should not broadcast\n%s", pp.Explain())
	}
	var chosen *PlanAlternative
	for i := range p.Alternatives {
		if p.Alternatives[i].Chosen {
			chosen = &p.Alternatives[i]
		}
	}
	if chosen == nil || chosen.AltBlock != 0 || chosen.BlockAttr != "name" {
		t.Fatalf("want alternate key 'name' chosen, got %+v\n%s", chosen, pp.Explain())
	}
	// The physical branch must actually be re-keyed (and fall off the
	// vectorized path, whose kernels are bound to the primary key).
	got := p.Branches[0].Block(rel.Tuples[0])
	if !got.Equal(rel.Tuples[0].Cell(0)) {
		t.Errorf("physical branch still keyed on the primary block")
	}
	if p.Vec != nil {
		t.Errorf("alternate-key plan must drop Vec forms")
	}
}

// TestSampleBranchStats sanity-checks the one-pass sampler: row counts,
// scope selectivity, and distinct/skew per candidate key.
func TestSampleBranchStats(t *testing.T) {
	rel := planTaxData(1000, 10)
	b := Branch{
		Label: "x", Dataset: "tax",
		Block:     func(t model.Tuple) model.Value { return t.Cell(1) },
		BlockAttr: "zipcode",
	}
	st := sampleBranchStats(rel, b, 4)
	if st.Rows != 1000 {
		t.Errorf("rows = %d, want 1000", st.Rows)
	}
	if st.TupleBytes <= 0 {
		t.Errorf("tuple bytes = %v, want > 0", st.TupleBytes)
	}
	ks, ok := st.BlockKeys["zipcode"]
	if !ok {
		t.Fatalf("no stats for zipcode: %+v", st.BlockKeys)
	}
	if ks.Distinct != 10 {
		t.Errorf("distinct = %d, want 10", ks.Distinct)
	}
	if ks.TopFraction < 0.05 || ks.TopFraction > 0.2 {
		t.Errorf("top fraction = %v, want ~0.1", ks.TopFraction)
	}

	// A scope that drops everything drives Rows to zero.
	b.Scopes = []ScopeFunc{func(model.Tuple) []model.Tuple { return nil }}
	st = sampleBranchStats(rel, b, 4)
	if st.Rows != 0 {
		t.Errorf("scoped-out rows = %d, want 0", st.Rows)
	}
}

// TestObserverFeedbackChangesEstimate: pipeline measurements loaded from a
// -stats-out file measurably change the planner's pair estimate.
func TestObserverFeedbackChangesEstimate(t *testing.T) {
	rel := planTaxData(2000, 100)
	r := planFDRule()

	before := mustPlanRule(t, costPlanner(), r, rel).Pipelines[0].EstCost

	fb := &Feedback{Pipelines: map[string]PipelineFeedback{
		r.ID: {Pairs: 5_000_000, Violations: 12},
	}}
	path := filepath.Join(t.TempDir(), "stats.json")
	if err := fb.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFeedbackFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Pipelines, fb.Pipelines) {
		t.Fatalf("round trip mismatch: %+v != %+v", loaded.Pipelines, fb.Pipelines)
	}

	after := mustPlanRule(t, costPlanner(WithObserverFeedback(loaded)), r, rel).Pipelines[0].EstCost
	if after.Pairs <= before.Pairs {
		t.Errorf("measured 5M pairs should raise the estimate: before %v, after %v", before.Pairs, after.Pairs)
	}
}

// TestFeedbackRecorderHarvestsPipelineSpans: a FeedbackRecorder installed
// as the run's Observer captures measured pair and violation counts.
func TestFeedbackRecorderHarvestsPipelineSpans(t *testing.T) {
	rec := NewFeedbackRecorder()
	ctx := engine.NewWithConfig(engine.Config{Parallelism: 4, Observer: rec})
	rel := planTaxData(200, 20)
	r := planFDRule()
	res, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	fb := rec.PlanFeedback()
	pf, ok := fb.Pipelines[r.ID]
	if !ok {
		t.Fatalf("no feedback recorded for %s: %+v", r.ID, fb.Pipelines)
	}
	if pf.Pairs <= 0 {
		t.Errorf("measured pairs = %d, want > 0", pf.Pairs)
	}
	if pf.Violations != int64(len(res.Violations)) {
		t.Errorf("measured violations = %d, want %d", pf.Violations, len(res.Violations))
	}
}

// TestContextPlannerMode: engine.Config.Planner routes detection through
// the cost planner without an explicit core.Planner, and unknown modes are
// rejected at construction.
func TestContextPlannerMode(t *testing.T) {
	if _, err := engine.NewContext(engine.Config{Planner: "bogus"}); err == nil {
		t.Error("bogus planner mode should fail NewContext")
	}
	ctx, err := engine.NewContext(engine.Config{Parallelism: 4, Planner: engine.PlannerCost})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.PlannerMode() != engine.PlannerCost {
		t.Fatalf("planner mode = %q", ctx.PlannerMode())
	}
	rel := planTaxData(300, 60)
	r := planFDRule()
	got, err := DetectRule(ctx, r, rel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DetectRule(engine.New(4), r, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(violationKeys(got), violationKeys(want)) {
		t.Errorf("cost-mode context changed results: %d vs %d violations", len(got.Violations), len(want.Violations))
	}
}

// TestBroadcastCoBlockEquivalence: the broadcast CoBlock variant finds the
// same violations as the co-grouped shuffle.
func TestBroadcastCoBlockEquivalence(t *testing.T) {
	rel := exampleTax()
	co := &Rule{
		ID:         "co",
		Block:      func(t model.Tuple) model.Value { return t.Cell(3) }, // state
		BlockRight: func(t model.Tuple) model.Value { return t.Cell(3) },
		Detect: func(it Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if l.ID == r.ID || l.Cell(2).Equal(r.Cell(2)) {
				return nil
			}
			return []model.Violation{model.NewViolation("co",
				model.NewCell(l.ID, 2, "city", l.Cell(2)),
				model.NewCell(r.ID, 2, "city", r.Cell(2)))}
		},
	}
	lp, err := PlanRule(co, rel)
	if err != nil {
		t.Fatal(err)
	}
	static, err := NewPlanner().Plan(lp)
	if err != nil {
		t.Fatal(err)
	}
	lp2, err := PlanRule(co, rel)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := NewPlanner().Plan(lp2)
	if err != nil {
		t.Fatal(err)
	}
	bcast.Pipelines[0].Broadcast = true

	ctx := engine.New(4)
	want, err := RunPlanSpark(ctx, static)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPlanSpark(ctx, bcast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(violationKeys(got), violationKeys(want)) {
		t.Errorf("broadcast CoBlock diverged: %d vs %d violations", len(got.Violations), len(want.Violations))
	}
}

// TestPlannerHistory: Plan calls append bounded Explain snapshots for the
// serve audit endpoint.
func TestPlannerHistory(t *testing.T) {
	pl := NewPlanner()
	rel := exampleTax()
	for i := 0; i < 12; i++ {
		mustPlanRule(t, pl, fdRule(), rel)
	}
	h := pl.History()
	if len(h) != 8 {
		t.Fatalf("history length = %d, want bounded at 8", len(h))
	}
	if !strings.Contains(h[0], "phiF") {
		t.Errorf("history entry should render the plan: %q", h[0])
	}
}

// TestOCJoinAlternativePartitionCounts: the cost planner enumerates
// repartitioned OCJoin alternatives and EXPLAIN shows them.
func TestOCJoinAlternativePartitionCounts(t *testing.T) {
	rel := exampleTax()
	pp := mustPlanRule(t, costPlanner(), dcRule(), rel)
	p := pp.Pipelines[0]
	if p.Impl != IterOCJoin {
		t.Fatalf("impl = %v", p.Impl)
	}
	if len(p.Alternatives) < 3 {
		t.Fatalf("OCJoin alternatives = %d, want >= 3\n%s", len(p.Alternatives), pp.Explain())
	}
	seen := map[int]bool{}
	for _, a := range p.Alternatives {
		seen[a.NumParts] = true
	}
	if len(seen) < 3 {
		t.Errorf("want distinct partition counts, got %v", seen)
	}
}
