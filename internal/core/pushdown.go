package core

import (
	"fmt"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/storage"
)

// DetectRuleFromStore runs a rule's detection over a dataset stored in the
// storage manager, exploiting the pushdowns of Appendix F:
//
//   - Block pushdown: when the rule declares its blocking attribute
//     (Rule.BlockAttr) and the store holds a replica content-partitioned on
//     that attribute, every block is fully contained in one storage
//     partition, so partitions are detected independently — no shuffle
//     crosses partition boundaries ("BigDansing can push down the Block
//     operator to the storage manager").
//   - Otherwise the best available replica is read whole and detection
//     falls back to the normal shuffled plan.
//
// The returned bool reports whether the pushdown was used.
func DetectRuleFromStore(ctx *engine.Context, st *storage.Store, dataset string, r *Rule) (*DetectResult, bool, error) {
	if err := r.Validate(); err != nil {
		return nil, false, err
	}
	replicas, err := st.Replicas(dataset)
	if err != nil {
		return nil, false, err
	}
	pick := ""
	havePushdown := false
	for _, rep := range replicas {
		if r.BlockAttr != "" && rep == r.BlockAttr {
			pick = rep
			havePushdown = true
			break
		}
	}
	if !havePushdown {
		if len(replicas) == 0 {
			return nil, false, fmt.Errorf("core: dataset %q has no stored replicas", dataset)
		}
		pick = replicas[0]
	}

	if !havePushdown || r.Block == nil {
		res, err := detectFromReplica(ctx, st, dataset, pick, -1, r)
		return res, false, err
	}

	// Pushdown path: iterate the replica's partitions; blocks never span
	// partitions because the partitioner and the blocking key agree.
	plan, err := st.Plan(dataset, pick)
	if err != nil {
		return nil, false, err
	}
	result := &DetectResult{}
	for p := 0; p < plan.Partitions; p++ {
		res, err := detectFromReplica(ctx, st, dataset, pick, p, r)
		if err != nil {
			return nil, false, err
		}
		if res != nil {
			result.Merge(res)
		}
	}
	dedupeResult(result)
	return result, true, nil
}

// detectFromReplica reads one partition (or, with part -1, the whole
// replica) and detects r over it. With vectorized execution enabled the
// stored columns feed the batch path zero-copy (ReadBatches →
// DetectRuleOnBatches); otherwise rows are materialized as before. An
// empty single partition returns (nil, nil) so the pushdown loop can skip
// it without planning anything.
func detectFromReplica(ctx *engine.Context, st *storage.Store, dataset, replica string, part int, r *Rule) (*DetectResult, error) {
	opts := storage.ReadOptions{Partition: part}
	if ctx.BatchSize() > 0 {
		batches, schema, err := st.ReadBatches(dataset, replica, opts)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, b := range batches {
			total += b.Len()
		}
		if total == 0 && part >= 0 {
			return nil, nil
		}
		rel := model.NewRelation(dataset, schema)
		return DetectRuleOnBatches(ctx, r, rel, batches)
	}
	rel, err := st.Read(dataset, replica, opts)
	if err != nil {
		return nil, err
	}
	if rel.Len() == 0 && part >= 0 {
		return nil, nil
	}
	return DetectRule(ctx, r, rel)
}
