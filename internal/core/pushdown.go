package core

import (
	"fmt"

	"bigdansing/internal/engine"
	"bigdansing/internal/storage"
)

// DetectRuleFromStore runs a rule's detection over a dataset stored in the
// storage manager, exploiting the pushdowns of Appendix F:
//
//   - Block pushdown: when the rule declares its blocking attribute
//     (Rule.BlockAttr) and the store holds a replica content-partitioned on
//     that attribute, every block is fully contained in one storage
//     partition, so partitions are detected independently — no shuffle
//     crosses partition boundaries ("BigDansing can push down the Block
//     operator to the storage manager").
//   - Otherwise the best available replica is read whole and detection
//     falls back to the normal shuffled plan.
//
// The returned bool reports whether the pushdown was used.
func DetectRuleFromStore(ctx *engine.Context, st *storage.Store, dataset string, r *Rule) (*DetectResult, bool, error) {
	if err := r.Validate(); err != nil {
		return nil, false, err
	}
	replicas, err := st.Replicas(dataset)
	if err != nil {
		return nil, false, err
	}
	pick := ""
	havePushdown := false
	for _, rep := range replicas {
		if r.BlockAttr != "" && rep == r.BlockAttr {
			pick = rep
			havePushdown = true
			break
		}
	}
	if !havePushdown {
		if len(replicas) == 0 {
			return nil, false, fmt.Errorf("core: dataset %q has no stored replicas", dataset)
		}
		pick = replicas[0]
	}

	if !havePushdown || r.Block == nil {
		rel, err := st.Read(dataset, pick, storage.ReadOptions{Partition: -1})
		if err != nil {
			return nil, false, err
		}
		res, err := DetectRule(ctx, r, rel)
		return res, false, err
	}

	// Pushdown path: iterate the replica's partitions; blocks never span
	// partitions because the partitioner and the blocking key agree.
	plan, err := st.Plan(dataset, pick)
	if err != nil {
		return nil, false, err
	}
	result := &DetectResult{}
	for p := 0; p < plan.Partitions; p++ {
		part, err := st.Read(dataset, pick, storage.ReadOptions{Partition: p})
		if err != nil {
			return nil, false, err
		}
		if part.Len() == 0 {
			continue
		}
		res, err := DetectRule(ctx, r, part)
		if err != nil {
			return nil, false, err
		}
		result.Merge(res)
	}
	dedupeResult(result)
	return result, true, nil
}
