package core

import (
	"testing"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/storage"
)

// pushdownRule is an FD-shaped rule (zipcode -> city over the exampleTax
// schema) declaring its blocking attribute for storage pushdown.
func pushdownRule() *Rule {
	r := fdRule()
	r.BlockAttr = "zipcode"
	return r
}

func TestDetectFromStoreWithBlockPushdown(t *testing.T) {
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rel := exampleTax()
	// Two replicas: content-partitioned on zipcode (pushdown target) and
	// round-robin.
	if _, err := st.Upload(rel, "zipcode", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Upload(rel, "", 3); err != nil {
		t.Fatal(err)
	}

	ctx := engine.New(4)
	want, err := DetectRule(ctx, pushdownRule(), rel)
	if err != nil {
		t.Fatal(err)
	}

	got, pushed, err := DetectRuleFromStore(ctx, st, "tax", pushdownRule())
	if err != nil {
		t.Fatal(err)
	}
	if !pushed {
		t.Fatal("zipcode replica should enable the Block pushdown")
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("pushdown found %d violations, plain %d", len(got.Violations), len(want.Violations))
	}
	keys := map[string]bool{}
	for _, v := range want.Violations {
		keys[v.Key()] = true
	}
	for _, v := range got.Violations {
		if !keys[v.Key()] {
			t.Errorf("pushdown violation %v not in plain result", v)
		}
	}
}

func TestDetectFromStoreFallsBackWithoutMatchingReplica(t *testing.T) {
	st, _ := storage.Open(t.TempDir())
	rel := exampleTax()
	if _, err := st.Upload(rel, "city", 2); err != nil { // wrong attribute
		t.Fatal(err)
	}
	ctx := engine.New(2)
	got, pushed, err := DetectRuleFromStore(ctx, st, "tax", pushdownRule())
	if err != nil {
		t.Fatal(err)
	}
	if pushed {
		t.Error("no zipcode replica: pushdown must not claim to run")
	}
	if len(got.Violations) != 2 {
		t.Errorf("fallback should still detect: %d violations", len(got.Violations))
	}
}

func TestDetectFromStoreMissingDataset(t *testing.T) {
	st, _ := storage.Open(t.TempDir())
	ctx := engine.New(2)
	if _, _, err := DetectRuleFromStore(ctx, st, "ghost", pushdownRule()); err == nil {
		t.Error("missing dataset should error")
	}
}

func TestPushdownAvoidsShuffle(t *testing.T) {
	// With the Block pushdown, partitions are small and self-contained:
	// the per-partition plans shuffle only their own few tuples, while the
	// plain plan shuffles the whole dataset once. Verify the result parity
	// on a bigger relation and that both paths dedupe identically.
	st, _ := storage.Open(t.TempDir())
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	for i := int64(0); i < 500; i++ {
		city := "C" + model.I(i%40).String()
		if i%11 == 0 {
			city = "WRONG"
		}
		rel.Append(model.NewTuple(i, model.S("p"), model.I(10000+i%40), model.S(city), model.S("ST"), model.F(1), model.F(1)))
	}
	if _, err := st.Upload(rel, "zipcode", 8); err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(4)
	plain, err := DetectRule(ctx, pushdownRule(), rel)
	if err != nil {
		t.Fatal(err)
	}
	pushed, ok, err := DetectRuleFromStore(ctx, st, "tax", pushdownRule())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pushdown expected")
	}
	if len(pushed.Violations) != len(plain.Violations) {
		t.Errorf("pushdown %d vs plain %d violations", len(pushed.Violations), len(plain.Violations))
	}
}
