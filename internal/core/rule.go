package core

import (
	"fmt"

	"bigdansing/internal/join"
)

// Rule is the UDF-based specification of one data quality rule over a
// single dataset: the five logical operators plus the optimization hints a
// declarative front end (package rules) can derive. Only Detect is
// mandatory; the planner fills in defaults for the rest (Section 3.2).
//
// Multi-dataset and bushy flows are expressed through the Job API instead.
type Rule struct {
	// ID names the rule; it is stamped on every violation it produces.
	ID string

	// Scope filters/projects units. Nil passes everything through.
	Scope ScopeFunc
	// Block groups units; violations only arise within a block. Nil means
	// no grouping (the whole dataset is one block).
	Block BlockFunc
	// BlockRight, when set together with Block, turns blocking into a
	// CoBlock: the dataset is keyed twice (for example customer name vs
	// supplier name in the DC of rule (1)) and candidates pair a
	// left-keyed unit with a right-keyed unit sharing the key.
	BlockRight BlockFunc
	// Iterate enumerates candidates from a block. Nil lets the planner
	// choose (unique pairs, ordered pairs, cross pairs, or OCJoin).
	Iterate IterateFunc
	// Detect decides violations. Required.
	Detect DetectFunc
	// GenFix proposes fixes. Nil means detection-only (violations are
	// reported but carry no repair candidates).
	GenFix GenFixFunc

	// Symmetric declares Detect order-insensitive: Detect(a,b) and
	// Detect(b,a) find the same violations, enabling the UCrossProduct /
	// unique-pairs enhancers (Section 4.2).
	Symmetric bool
	// OrderConds, when non-empty and Block is nil, declares that candidate
	// pairs are exactly the pairs satisfying this conjunction of ordering
	// comparisons, enabling the OCJoin enhancer (Section 4.3). The
	// conditions refer to columns of the scoped tuples.
	OrderConds []join.Cond
	// Unary declares a single-tuple rule: Detect examines one unit at a
	// time and no pairing is needed.
	Unary bool
	// NumParts overrides the OCJoin partition count (0 = parallelism).
	NumParts int
	// BlockAttr optionally names the single attribute Block keys on,
	// letting the storage manager push the Block operator down to a
	// content-partitioned replica (Appendix F; see DetectRuleFromStore).
	BlockAttr string
	// AltBlocks lists alternative block keys the cost-based planner may
	// substitute for Block. They must be semantically valid: every
	// violation found under Block must also surface under each alternative
	// (true for coarser keys when Detect re-checks the full predicate per
	// pair, as the FD/CFD front ends do). AltBlockAttrs names them
	// position-for-position for stats and EXPLAIN. The static planner
	// ignores them.
	AltBlocks     []BlockFunc
	AltBlockAttrs []string

	// Vec optionally carries vectorized forms of the rule's operators
	// (a batch Scope kernel, a column-indexed block key, batch/blocked
	// Detect kernels). Rules that provide them run over column batches
	// when the engine context enables a batch size; rules without them
	// fall back transparently to the tuple path. The vectorized forms
	// must be observationally identical to the tuple operators — same
	// violations, same order.
	Vec *VecForms
}

// Validate checks the rule is executable.
func (r *Rule) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("core: rule has no ID")
	}
	if r.Detect == nil {
		return fmt.Errorf("core: rule %s has no Detect operator", r.ID)
	}
	if len(r.OrderConds) > 0 {
		for _, c := range r.OrderConds {
			if !c.Op.IsOrdering() {
				return fmt.Errorf("core: rule %s order condition %s is not an ordering comparison", r.ID, c)
			}
		}
		if r.Block != nil {
			return fmt.Errorf("core: rule %s sets both Block and OrderConds; OCJoin replaces blocking", r.ID)
		}
		if r.Unary {
			return fmt.Errorf("core: rule %s cannot be unary and have order conditions", r.ID)
		}
	}
	if r.BlockRight != nil && r.Block == nil {
		return fmt.Errorf("core: rule %s sets BlockRight without Block", r.ID)
	}
	if len(r.AltBlocks) > 0 && r.Block == nil {
		return fmt.Errorf("core: rule %s sets AltBlocks without Block", r.ID)
	}
	return nil
}
