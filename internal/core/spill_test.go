package core

import (
	"os"
	"testing"

	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// End-to-end out-of-core cleansing: with a memory budget far below the
// shuffle working set, FD and DC detection must spill to disk yet produce
// exactly the violations and fixes of an unbounded run, never reserve past
// the budget, and leave no spill files behind.

// spillBudget is well below the encoded size of the generated datasets'
// shuffles, so every wide operator is forced out of core.
const spillBudget = 64 << 10

func violationCounts(vs []model.Violation) map[model.ViolationKey]int {
	m := make(map[model.ViolationKey]int, len(vs))
	for _, v := range vs {
		m[v.MapKey()]++
	}
	return m
}

func fixCounts(fs []model.Fix) map[model.Fix]int {
	m := make(map[model.Fix]int, len(fs))
	for _, f := range fs {
		m[f]++
	}
	return m
}

// runDetect executes the rules over rel on a fresh context, returning the
// result and the context for stats inspection.
func runDetect(t *testing.T, cfg engine.Config, rules []*Rule, rel *model.Relation) (*DetectResult, *engine.Context) {
	t.Helper()
	ctx := engine.NewWithConfig(cfg)
	res, err := DetectRules(ctx, rules, rel)
	if err != nil {
		t.Fatal(err)
	}
	return res, ctx
}

func assertSameOutcome(t *testing.T, want, got *DetectResult) {
	t.Helper()
	// The external shuffle visits groups in merge order, not first-seen
	// order, so results are compared as multisets.
	wv, gv := violationCounts(want.Violations), violationCounts(got.Violations)
	if len(wv) != len(gv) || len(want.Violations) != len(got.Violations) {
		t.Fatalf("violations diverged: %d distinct/%d total vs %d distinct/%d total",
			len(gv), len(got.Violations), len(wv), len(want.Violations))
	}
	for k, n := range wv {
		if gv[k] != n {
			t.Fatalf("violation %v: count %d != %d", k, gv[k], n)
		}
	}
	wf, gf := fixCounts(want.AllFixes()), fixCounts(got.AllFixes())
	if len(wf) != len(gf) {
		t.Fatalf("fix sets diverged: %d distinct vs %d distinct", len(gf), len(wf))
	}
	for f, n := range wf {
		if gf[f] != n {
			t.Fatalf("fix %v: count %d != %d", f, gf[f], n)
		}
	}
}

func assertSpilledWithinBudget(t *testing.T, ctx *engine.Context, budget int64, dir string) {
	t.Helper()
	sn := ctx.Stats().Snapshot()
	if sn.BytesSpilled == 0 || sn.SpillRuns == 0 {
		t.Fatalf("budget %d should have forced spilling, stats: %+v", budget, sn)
	}
	if sn.PeakReservedBytes > budget {
		t.Fatalf("peak reserved %d exceeds budget %d", sn.PeakReservedBytes, budget)
	}
	if r := ctx.MemoryManager().Reserved(); r != 0 {
		t.Fatalf("leaked reservation: %d bytes", r)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover spill files in %s: %d entries", dir, len(entries))
	}
}

func TestFDDetectionOutOfCoreMatchesUnbounded(t *testing.T) {
	tr := datagen.TaxA(4000, 0.05, 1)

	want, _ := runDetect(t, engine.Config{Parallelism: 4}, []*Rule{fdRule()}, tr.Dirty)
	if want.NumViolations() == 0 {
		t.Fatal("generator produced no FD violations; test is vacuous")
	}

	dir := t.TempDir()
	cfg := engine.Config{Parallelism: 4, MemoryBudgetBytes: spillBudget, SpillDir: dir}
	got, ctx := runDetect(t, cfg, []*Rule{fdRule()}, tr.Dirty)

	assertSpilledWithinBudget(t, ctx, spillBudget, dir)
	assertSameOutcome(t, want, got)
}

func TestDCDetectionOutOfCoreMatchesUnbounded(t *testing.T) {
	tr := datagen.TaxB(1500, 0.05, 2)

	want, _ := runDetect(t, engine.Config{Parallelism: 4}, []*Rule{dcRule()}, tr.Dirty)
	if want.NumViolations() == 0 {
		t.Fatal("generator produced no DC violations; test is vacuous")
	}

	dir := t.TempDir()
	cfg := engine.Config{Parallelism: 4, MemoryBudgetBytes: spillBudget, SpillDir: dir}
	got, ctx := runDetect(t, cfg, []*Rule{dcRule()}, tr.Dirty)

	assertSpilledWithinBudget(t, ctx, spillBudget, dir)
	assertSameOutcome(t, want, got)
}

func TestCombinedRulesOutOfCoreMatchesUnbounded(t *testing.T) {
	// Both rule shapes through one consolidated plan, the Table-2 style
	// mixed workload: FD via blocking GroupByKey, DC via OCJoin's range
	// partitioning — every wide operator class spills in one run.
	tr := datagen.TaxB(1200, 0.08, 3)
	rules := []*Rule{fdRule(), dcRule()}

	want, _ := runDetect(t, engine.Config{Parallelism: 4}, rules, tr.Dirty)
	if want.NumViolations() == 0 {
		t.Fatal("no violations; test is vacuous")
	}

	dir := t.TempDir()
	cfg := engine.Config{Parallelism: 4, MemoryBudgetBytes: spillBudget, SpillDir: dir}
	got, ctx := runDetect(t, cfg, rules, tr.Dirty)

	assertSpilledWithinBudget(t, ctx, spillBudget, dir)
	assertSameOutcome(t, want, got)
}

// TestDetectPanicUnderBudgetCleansUp drives the operator-panic path through
// the full stack: a Detect that panics mid-stream while the shuffle is
// spilled must surface as an error, release every reservation, and leave
// the spill directory empty.
func TestDetectPanicUnderBudgetCleansUp(t *testing.T) {
	tr := datagen.TaxA(3000, 0.05, 4)
	bad := fdRule()
	calls := 0
	inner := bad.Detect
	bad.Detect = func(it Item) []model.Violation {
		calls++
		if calls > 500 {
			panic("detect exploded")
		}
		return inner(it)
	}

	dir := t.TempDir()
	ctx := engine.NewWithConfig(engine.Config{Parallelism: 4, MemoryBudgetBytes: spillBudget, SpillDir: dir})
	_, err := DetectRules(ctx, []*Rule{bad}, tr.Dirty)
	if err == nil {
		t.Fatal("expected the detect panic to surface as an error")
	}
	if r := ctx.MemoryManager().Reserved(); r != 0 {
		t.Fatalf("leaked reservation after panic: %d bytes", r)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover spill files after panic: %d entries", len(entries))
	}
}
