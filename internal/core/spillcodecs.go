package core

import (
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// Spill codecs: registering the data model's binary encodings with the
// engine makes every wide operator over tuples out-of-core capable. With a
// memory budget configured (engine.Config.MemoryBudgetBytes), the blocking
// GroupByKey of the FD path, the CoGroup behind joins, and OCJoin's range
// partitioning all spill to disk instead of growing without bound; without
// a budget the registrations are inert and the in-memory fast paths run
// unchanged.
//
// This lives in core (not model) so the model package stays independent of
// the engine, mirroring how the physical layer is the one place logical
// rules meet execution.
func init() {
	engine.RegisterCodec(engine.Codec[model.ValueKey]{
		Append: model.AppendValueKey,
		Decode: model.DecodeValueKey,
	})
	engine.RegisterCodec(engine.Codec[model.Value]{
		Append: model.AppendValue,
		Decode: model.DecodeValue,
	})
	engine.RegisterCodec(engine.Codec[model.Tuple]{
		Append: model.AppendTuple,
		Decode: model.DecodeTuple,
	})
	engine.RegisterCodec(engine.Codec[model.Violation]{
		Append: model.AppendViolation,
		Decode: model.DecodeViolation,
	})
}
