package core

import "bigdansing/internal/model"

// VecForms holds the vectorized (batch-at-a-time) forms of a rule's
// operators. A declarative front end that compiles a rule (package rules)
// can attach them to Rule.Vec; the executor then runs the rule's eligible
// Scope→Detect chain over model.Batch column vectors instead of
// tuple-at-a-time closures whenever the engine context configures a batch
// size.
//
// Every form is optional and every form must be observationally identical
// to its tuple counterpart — the same violations emitted in the same order
// — because equivalence (identical violations, hence identical repairs) is
// the contract the batch path is tested against. A pipeline whose shape the
// vectorized executor does not support (CoBlock, OCJoin, custom Iterate,
// derived streams, multi-branch) silently runs on the tuple path even when
// forms are present.
type VecForms struct {
	// Scope is the vectorized Scope kernel: it narrows a batch by flipping
	// selection bits (on a private CloneSel copy — the input batch may be
	// shared) and returns the narrowed batch. It must select exactly the
	// rows the tuple ScopeFunc passes through; drop-only — a vectorized
	// Scope cannot rewrite values or emit extra rows, which is why rules
	// with transforming Scopes leave this nil and fall back.
	Scope func(*model.Batch) *model.Batch

	// ScanCols lists the columns the batch kernels (Scope, DetectBatch)
	// read, letting the executor materialize exactly those vectors when it
	// chunks an in-memory relation — the rest of the schema is never
	// transposed and reads through the row backing. The listed columns are
	// guaranteed present in Batch.Cols; kernels touching any column not
	// listed must read it through Batch.Value (which falls back to the rows)
	// rather than indexing Cols directly. nil means undeclared: the executor
	// conservatively materializes every column for shapes that run batch
	// kernels. DetectBlock reads through the block's tuples and needs no
	// entry here.
	ScanCols []int

	// BlockCol, when >= 0, names the column whose value is the Block key,
	// letting the blocked path read the key straight out of the column
	// vector. -1 means the key is not a single column read; the executor
	// then calls the tuple BlockFunc on the materialized row.
	BlockCol int

	// DetectBatch is the vectorized Detect of a unary rule: one call scans
	// a whole batch and returns the violations of its live rows, in row
	// order (the order the tuple path's Singles enumeration produces).
	DetectBatch func(*model.Batch) []model.Violation

	// DetectBlock is the vectorized Detect over one block of a pair rule:
	// it receives the block's tuples in grouping order, gathers the columns
	// it compares into flat vectors once, and enumerates pairs exactly like
	// the tuple path — PairsUnique order (i<j) when ordered is false,
	// PairsOrdered order (all i≠j, outer i, inner j) when true.
	DetectBlock func(us []model.Tuple, ordered bool) []model.Violation
}
