// Package datagen generates the evaluation datasets of Section 6.1 —
// TaxA, TaxB, TPCH (lineitem ⋈ customer), Customer (dedup variants),
// NCVoter and HAI — with seeded, schema-faithful synthetic data, the same
// error models the paper injects (random text errors, numeric rate errors,
// duplicates with random edits), and retained ground truth for the repair
// quality measurements of Table 4.
package datagen

import (
	"fmt"
	"math/rand"

	"bigdansing/internal/model"
)

// Truth is the ground truth of a generated dirty dataset: the clean
// instance plus the set of corrupted cells.
type Truth struct {
	// Clean is the error-free instance (same tuple IDs as the dirty one).
	Clean *model.Relation
	// Dirty is the generated instance with injected errors.
	Dirty *model.Relation
	// Errors maps corrupted cells to the clean value.
	Errors map[model.CellKey]model.Value
	// DupPairs lists injected duplicate pairs (dedup datasets only).
	DupPairs [][2]int64
}

// markError registers a corruption.
func (tr *Truth) markError(tupleID int64, col int, clean model.Value) {
	tr.Errors[model.CellKey{TupleID: tupleID, Col: col}] = clean
}

var firstNames = []string{
	"Annie", "Laure", "John", "Mark", "Robert", "Mary", "Linda", "James",
	"Patricia", "Michael", "Jennifer", "William", "Elizabeth", "David",
	"Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Jackson", "Martin",
}

var states = []string{
	"NY", "CA", "IL", "TX", "FL", "WA", "MA", "PA", "OH", "GA",
	"NC", "MI", "NJ", "VA", "AZ", "TN", "IN", "MO", "MD", "WI",
}

// cityOf deterministically names the city of a zipcode.
func cityOf(zip int64) string { return fmt.Sprintf("City%03d", zip%997) }

// stateOf deterministically names the state of a zipcode region.
func stateOf(zip int64) string { return states[int(zip/1000)%len(states)] }

func personName(r *rand.Rand) string {
	return firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
}

// corruptText appends a short random suffix, the paper's "random text
// added to attributes" error model.
func corruptText(r *rand.Rand, s string) string {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 2 + r.Intn(3)
	b := []byte(s + "_")
	for i := 0; i < n; i++ {
		b = append(b, letters[r.Intn(len(letters))])
	}
	return string(b)
}

// editText applies 1-2 random character edits (the duplicate error model).
func editText(r *rand.Rand, s string) string {
	b := []rune(s)
	if len(b) == 0 {
		return "x"
	}
	edits := 1 + r.Intn(2)
	for e := 0; e < edits; e++ {
		i := r.Intn(len(b))
		switch r.Intn(3) {
		case 0: // substitute
			b[i] = rune('a' + r.Intn(26))
		case 1: // delete
			if len(b) > 1 {
				b = append(b[:i], b[i+1:]...)
			}
		default: // insert
			b = append(b[:i], append([]rune{rune('a' + r.Intn(26))}, b[i:]...)...)
		}
	}
	return string(b)
}

// TaxSchema is the schema of TaxA/TaxB.
func TaxSchema() *model.Schema {
	return model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
}

// TaxA generates the US tax dataset: zipcode functionally determines city
// (rule φ1) and state (φ6-style); errors are random text added to City and
// State on errRate of the rows.
func TaxA(rows int, errRate float64, seed int64) *Truth {
	r := rand.New(rand.NewSource(seed))
	schema := TaxSchema()
	clean := model.NewRelation("taxa", schema)
	nZips := rows/20 + 1
	for i := 0; i < rows; i++ {
		zip := int64(10000 + r.Intn(nZips))
		salary := float64(20000 + r.Intn(180000))
		rate := salary / 10000 // monotone in salary: clean for φ2
		clean.Append(model.NewTuple(int64(i),
			model.S(personName(r)),
			model.I(zip),
			model.S(cityOf(zip)),
			model.S(stateOf(zip)),
			model.F(salary),
			model.F(rate),
		))
	}
	tr := &Truth{Clean: clean, Dirty: clean.Clone(), Errors: map[model.CellKey]model.Value{}}
	for i := range tr.Dirty.Tuples {
		if r.Float64() >= errRate {
			continue
		}
		t := &tr.Dirty.Tuples[i]
		// Corrupt City, and sometimes State too.
		tr.markError(t.ID, 2, t.Cells[2])
		t.Cells[2] = model.S(corruptText(r, t.Cells[2].Str))
		if r.Float64() < 0.5 {
			tr.markError(t.ID, 3, t.Cells[3])
			t.Cells[3] = model.S(corruptText(r, t.Cells[3].Str))
		}
	}
	return tr
}

// TaxB generates TaxA plus numeric random errors on the Rate attribute
// (rule φ2's inequality workload).
func TaxB(rows int, errRate float64, seed int64) *Truth {
	tr := TaxA(rows, 0, seed)
	tr.Dirty.Name, tr.Clean.Name = "taxb", "taxb"
	r := rand.New(rand.NewSource(seed + 1))
	for i := range tr.Dirty.Tuples {
		if r.Float64() >= errRate {
			continue
		}
		t := &tr.Dirty.Tuples[i]
		tr.markError(t.ID, 5, t.Cells[5])
		// A random rate breaks the salary/rate monotonicity for some pairs.
		t.Cells[5] = model.F(float64(r.Intn(40)) + r.Float64())
	}
	return tr
}

// TPCHSchema is the joined lineitem ⋈ customer schema used for rule φ3.
func TPCHSchema() *model.Schema {
	return model.MustParseSchema(
		"o_custkey:int,c_name,c_address,c_phone,c_city,l_quantity:float,l_price:float")
}

// TPCH generates the joined lineitem-customer table: o_custkey determines
// c_address (φ3); errors are random text on the address.
func TPCH(rows int, errRate float64, seed int64) *Truth {
	r := rand.New(rand.NewSource(seed))
	schema := TPCHSchema()
	clean := model.NewRelation("tpch", schema)
	nCust := rows/8 + 1
	addr := func(ck int64) string { return fmt.Sprintf("%d Main Street Apt %d", 100+ck%900, ck%50) }
	phone := func(ck int64) string { return fmt.Sprintf("%03d-555-%04d", ck%1000, ck%10000) }
	for i := 0; i < rows; i++ {
		ck := int64(r.Intn(nCust))
		clean.Append(model.NewTuple(int64(i),
			model.I(ck),
			model.S(fmt.Sprintf("Customer#%06d", ck)),
			model.S(addr(ck)),
			model.S(phone(ck)),
			model.S(cityOf(ck)),
			model.F(float64(1+r.Intn(50))),
			model.F(float64(r.Intn(100000))/100),
		))
	}
	tr := &Truth{Clean: clean, Dirty: clean.Clone(), Errors: map[model.CellKey]model.Value{}}
	for i := range tr.Dirty.Tuples {
		if r.Float64() >= errRate {
			continue
		}
		t := &tr.Dirty.Tuples[i]
		tr.markError(t.ID, 2, t.Cells[2])
		t.Cells[2] = model.S(corruptText(r, t.Cells[2].Str))
	}
	return tr
}

// CustomerSchema is the TPC-H customer schema used by the dedup workloads.
func CustomerSchema() *model.Schema {
	return model.MustParseSchema("c_custkey:int,c_name,c_address,c_phone,c_acctbal:float")
}

// Customers generates the deduplication workload of Section 6.5: base
// distinct customers, each replicated dupFactor times exactly, plus
// editRate of the total duplicated with random edits on name and phone.
// DupPairs records every injected duplicate pair (edited ones).
func Customers(name string, base, dupFactor int, editRate float64, seed int64) *Truth {
	r := rand.New(rand.NewSource(seed))
	schema := CustomerSchema()
	dirty := model.NewRelation(name, schema)
	tr := &Truth{Dirty: dirty, Errors: map[model.CellKey]model.Value{}}
	id := int64(0)
	mk := func(ck int64) model.Tuple {
		t := model.NewTuple(id,
			model.I(ck),
			model.S(personName(rand.New(rand.NewSource(seed+ck)))),
			model.S(fmt.Sprintf("%d Elm Street", 1+ck%999)),
			model.S(fmt.Sprintf("%03d-555-%04d", ck%1000, ck%10000)),
			model.F(float64(r.Intn(100000))/100),
		)
		id++
		return t
	}
	var originals []model.Tuple
	for ck := int64(0); ck < int64(base); ck++ {
		t := mk(ck)
		originals = append(originals, t)
		dirty.Append(t)
		for d := 1; d < dupFactor; d++ {
			dup := t.Clone()
			dup.ID = id
			id++
			dirty.Append(dup)
			tr.DupPairs = append(tr.DupPairs, [2]int64{t.ID, dup.ID})
		}
	}
	// Edited duplicates.
	nEdited := int(float64(dirty.Len()) * editRate)
	for e := 0; e < nEdited; e++ {
		src := originals[r.Intn(len(originals))]
		dup := src.Clone()
		dup.ID = id
		id++
		dup.Cells[1] = model.S(editText(r, dup.Cells[1].Str)) // name
		dup.Cells[3] = model.S(editText(r, dup.Cells[3].Str)) // phone
		dirty.Append(dup)
		tr.DupPairs = append(tr.DupPairs, [2]int64{src.ID, dup.ID})
	}
	tr.Clean = dirty // dedup truth is the pair list, not cell repairs
	return tr
}

// NCVoterSchema mirrors the real North Carolina voter table's relevant
// attributes.
func NCVoterSchema() *model.Schema {
	return model.MustParseSchema("voter_id:int,name,city,zip:int,phone")
}

// NCVoter generates the voter dedup dataset: dupRate of rows duplicated
// with random edits in name and phone (Section 6.1, dataset 5).
func NCVoter(rows int, dupRate float64, seed int64) *Truth {
	r := rand.New(rand.NewSource(seed))
	schema := NCVoterSchema()
	dirty := model.NewRelation("ncvoter", schema)
	tr := &Truth{Dirty: dirty, Errors: map[model.CellKey]model.Value{}}
	id := int64(0)
	var all []model.Tuple
	for i := 0; i < rows; i++ {
		zip := int64(27000 + r.Intn(900))
		t := model.NewTuple(id,
			model.I(int64(i)),
			model.S(personName(r)),
			model.S(cityOf(zip)),
			model.I(zip),
			model.S(fmt.Sprintf("919-555-%04d", r.Intn(10000))),
		)
		id++
		all = append(all, t)
		dirty.Append(t)
	}
	nDup := int(float64(rows) * dupRate)
	for d := 0; d < nDup; d++ {
		src := all[r.Intn(len(all))]
		dup := src.Clone()
		dup.ID = id
		id++
		dup.Cells[1] = model.S(editText(r, dup.Cells[1].Str))
		dup.Cells[4] = model.S(editText(r, dup.Cells[4].Str))
		dirty.Append(dup)
		tr.DupPairs = append(tr.DupPairs, [2]int64{src.ID, dup.ID})
	}
	tr.Clean = dirty
	return tr
}

// HAISchema mirrors the Healthcare Associated Infections table's attributes
// covered by rules φ6, φ7, φ8.
func HAISchema() *model.Schema {
	return model.MustParseSchema(
		"providerID:int,hospital,city,state,zip:int,county,phone,measure,score:float")
}

// HAI generates the hospital dataset with consistent functional
// relationships — zip -> state (φ6), phone -> zip (φ7), providerID ->
// city, phone (φ8) — then corrupts errRate of the rows on the attributes
// named by targets (defaults to city, state, zip and phone — the columns
// covered by the three FDs), keeping ground truth for Table 4's
// precision/recall. The paper gives each rule combination its own dirty
// dataset; pass the combination's covered attributes as targets.
func HAI(rows int, errRate float64, seed int64, targets ...int) *Truth {
	r := rand.New(rand.NewSource(seed))
	schema := HAISchema()
	clean := model.NewRelation("hai", schema)
	nProviders := rows/6 + 1
	phoneOf := func(p int64) string { return fmt.Sprintf("555-%07d", p%10000000) }
	zipOfProv := func(p int64) int64 { return 10000 + p%500 }
	for i := 0; i < rows; i++ {
		p := int64(r.Intn(nProviders))
		zip := zipOfProv(p)
		clean.Append(model.NewTuple(int64(i),
			model.I(p),
			model.S(fmt.Sprintf("Hospital %d", p)),
			model.S(cityOf(zip)),
			model.S(stateOf(zip)),
			model.I(zip),
			model.S(fmt.Sprintf("County%d", zip%97)),
			model.S(phoneOf(p)),
			model.S(fmt.Sprintf("HAI-%d", r.Intn(6)+1)),
			model.F(float64(r.Intn(200))/100),
		))
	}
	tr := &Truth{Clean: clean, Dirty: clean.Clone(), Errors: map[model.CellKey]model.Value{}}
	if len(targets) == 0 {
		// city (col 2), state (col 3), zip (col 4), phone (col 6).
		targets = []int{2, 3, 4, 6}
	}
	for i := range tr.Dirty.Tuples {
		if r.Float64() >= errRate {
			continue
		}
		t := &tr.Dirty.Tuples[i]
		col := targets[r.Intn(len(targets))]
		tr.markError(t.ID, col, t.Cells[col])
		switch t.Cells[col].Kind {
		case model.KindInt:
			t.Cells[col] = model.I(t.Cells[col].Int + int64(1+r.Intn(99)))
		default:
			t.Cells[col] = model.S(corruptText(r, t.Cells[col].Str))
		}
	}
	return tr
}
