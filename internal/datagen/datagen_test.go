package datagen

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/rules"
)

func TestTaxACleanInstanceSatisfiesFD(t *testing.T) {
	tr := TaxA(500, 0, 1)
	// zipcode -> city must hold on the clean data.
	cityByZip := map[int64]string{}
	for _, tp := range tr.Clean.Tuples {
		zip := tp.Cell(1).Int
		city := tp.Cell(2).String()
		if prev, ok := cityByZip[zip]; ok && prev != city {
			t.Fatalf("clean TaxA violates zipcode->city: %d -> %s and %s", zip, prev, city)
		}
		cityByZip[zip] = city
	}
	if len(tr.Errors) != 0 {
		t.Error("no errors at rate 0")
	}
}

func TestTaxAErrorInjectionRate(t *testing.T) {
	tr := TaxA(2000, 0.1, 2)
	dirtyRows := map[int64]bool{}
	for key := range tr.Errors {
		dirtyRows[key.TupleID] = true
	}
	frac := float64(len(dirtyRows)) / 2000
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("dirty row fraction = %v, want ~0.10", frac)
	}
	// Errors recorded accurately: dirty differs from clean exactly there.
	cleanIdx := tr.Clean.ByID()
	for key, cleanVal := range tr.Errors {
		di := cleanIdx[key.TupleID]
		if tr.Dirty.Tuples[di].Cell(key.Col).Equal(cleanVal) {
			t.Errorf("cell %v marked dirty but equals clean value", key)
		}
		if !tr.Clean.Tuples[di].Cell(key.Col).Equal(cleanVal) {
			t.Errorf("ground truth mismatch at %v", key)
		}
	}
}

func TestTaxADeterministicBySeed(t *testing.T) {
	a := TaxA(100, 0.1, 42)
	b := TaxA(100, 0.1, 42)
	for i := range a.Dirty.Tuples {
		for c := range a.Dirty.Tuples[i].Cells {
			if !a.Dirty.Tuples[i].Cell(c).Equal(b.Dirty.Tuples[i].Cell(c)) {
				t.Fatalf("same seed should reproduce: tuple %d col %d", i, c)
			}
		}
	}
	c := TaxA(100, 0.1, 43)
	same := true
	for i := range a.Dirty.Tuples {
		if !a.Dirty.Tuples[i].Cell(0).Equal(c.Dirty.Tuples[i].Cell(0)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestTaxBCleanSatisfiesPhi2AndDirtyViolates(t *testing.T) {
	tr := TaxB(300, 0.1, 3)
	ctx := engine.New(4)
	dc, _ := rules.ParseDC("phi2", "t1.rate > t2.rate & t1.salary < t2.salary")
	rule, err := dc.Compile(TaxSchema())
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := core.DetectRule(ctx, rule, tr.Clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanRes.Violations) != 0 {
		t.Fatalf("clean TaxB has %d phi2 violations", len(cleanRes.Violations))
	}
	dirtyRes, err := core.DetectRule(ctx, rule, tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirtyRes.Violations) == 0 {
		t.Error("dirty TaxB should violate phi2")
	}
}

func TestTPCHFDHolds(t *testing.T) {
	tr := TPCH(400, 0.1, 4)
	addrByCust := map[int64]string{}
	for _, tp := range tr.Clean.Tuples {
		ck := tp.Cell(0).Int
		addr := tp.Cell(2).String()
		if prev, ok := addrByCust[ck]; ok && prev != addr {
			t.Fatalf("clean TPCH violates custkey->address")
		}
		addrByCust[ck] = addr
	}
	if len(tr.Errors) == 0 {
		t.Error("errors should be injected")
	}
}

func TestCustomersDuplicates(t *testing.T) {
	tr := Customers("cust1", 100, 3, 0.02, 5)
	// 100 originals x3 exact copies plus 2% edited.
	if tr.Dirty.Len() < 300 {
		t.Fatalf("rows = %d, want >= 300", tr.Dirty.Len())
	}
	if len(tr.DupPairs) < 200 {
		t.Errorf("dup pairs = %d, want >= 200 (2 exact copies per original)", len(tr.DupPairs))
	}
	// Every recorded pair has identical custkey (copies of one original).
	byID := tr.Dirty.ByID()
	for _, p := range tr.DupPairs {
		a := tr.Dirty.Tuples[byID[p[0]]]
		b := tr.Dirty.Tuples[byID[p[1]]]
		if a.Cell(0) != b.Cell(0) {
			t.Fatalf("dup pair %v crosses customers", p)
		}
	}
}

func TestNCVoter(t *testing.T) {
	tr := NCVoter(500, 0.2, 6)
	wantDups := int(500 * 0.2)
	if len(tr.DupPairs) != wantDups {
		t.Errorf("dup pairs = %d, want %d", len(tr.DupPairs), wantDups)
	}
	if tr.Dirty.Len() != 500+wantDups {
		t.Errorf("rows = %d", tr.Dirty.Len())
	}
}

func TestHAIFDsHoldOnClean(t *testing.T) {
	tr := HAI(600, 0.1, 7)
	schema := HAISchema()
	ctx := engine.New(4)
	for _, spec := range []string{"zip -> state", "phone -> zip", "providerID -> city, phone"} {
		fd, err := rules.ParseFD("fd", spec)
		if err != nil {
			t.Fatal(err)
		}
		rule, err := fd.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.DetectRule(ctx, rule, tr.Clean)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("clean HAI violates %s: %d violations", spec, len(res.Violations))
		}
		dirtyRes, err := core.DetectRule(ctx, rule, tr.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirtyRes.Violations) == 0 {
			t.Errorf("dirty HAI should violate %s", spec)
		}
	}
}

func TestEvaluatePerfectRepair(t *testing.T) {
	tr := TaxA(200, 0.1, 8)
	q := Evaluate(tr, tr.Clean) // repairing to the ground truth is perfect
	if q.Precision != 1 {
		t.Errorf("precision = %v, want 1", q.Precision)
	}
	if q.Recall != 1 {
		t.Errorf("recall = %v, want 1", q.Recall)
	}
}

func TestEvaluateNoRepair(t *testing.T) {
	tr := TaxA(200, 0.1, 9)
	q := Evaluate(tr, tr.Dirty) // doing nothing: no updates, zero recall
	if q.Updated != 0 || q.Recall != 0 {
		t.Errorf("quality = %+v", q)
	}
}

func TestEvaluatePartialRepair(t *testing.T) {
	tr := TaxA(200, 0.2, 10)
	// Repair half the errors correctly, and make one wrong update.
	rep := tr.Dirty.Clone()
	idx := rep.ByID()
	i := 0
	for key, cleanVal := range tr.Errors {
		if i%2 == 0 {
			rep.Apply(idx, key.TupleID, key.Col, cleanVal)
		}
		i++
	}
	rep.Apply(idx, rep.Tuples[0].ID, 0, model.S("WRONG NAME"))
	q := Evaluate(tr, rep)
	if q.Precision >= 1 || q.Precision <= 0.5 {
		t.Errorf("precision = %v, want in (0.5, 1)", q.Precision)
	}
	if q.Recall < 0.4 || q.Recall > 0.6 {
		t.Errorf("recall = %v, want ~0.5", q.Recall)
	}
}

func TestDedupQuality(t *testing.T) {
	tr := &Truth{DupPairs: [][2]int64{{1, 2}, {1, 3}, {10, 11}}}
	// Detected: (2,3) connects 2-3 (same cluster as 1), (10,11) exact,
	// (5,6) wrong.
	q := DedupQuality(tr, [][2]int64{{2, 3}, {10, 11}, {5, 6}})
	if q.Correct != 2 {
		t.Errorf("correct = %d, want 2", q.Correct)
	}
	// Recall: (1,2) not recalled (1 unseen), (1,3) not recalled, (10,11)
	// recalled -> 1/3.
	if q.Recall < 0.32 || q.Recall > 0.34 {
		t.Errorf("recall = %v, want 1/3", q.Recall)
	}
	if q.Precision < 0.66 || q.Precision > 0.67 {
		t.Errorf("precision = %v, want 2/3", q.Precision)
	}
}

func TestTruthErrorsKeyedByCellKey(t *testing.T) {
	tr := &Truth{Errors: map[model.CellKey]model.Value{}}
	tr.markError(12345, 7, model.S("clean"))
	v, ok := tr.Errors[model.CellKey{TupleID: 12345, Col: 7}]
	if !ok || !v.Equal(model.S("clean")) {
		t.Errorf("markError lookup = %v, %v", v, ok)
	}
}
