package datagen

import (
	"math"

	"bigdansing/internal/model"
)

// Quality holds the repair-quality measures of Table 4.
type Quality struct {
	// Precision is the ratio of correctly updated cells (exact match with
	// the ground truth) to all updated cells.
	Precision float64
	// Recall is the ratio of correctly restored cells to all injected
	// errors.
	Recall float64
	// Updated and Correct are the raw counts behind Precision.
	Updated, Correct int
	// AvgDistance and TotalDistance measure numeric repairs against the
	// ground truth (the ||R,G||/e and ||R,G|| columns for the hypergraph
	// algorithm), over the injected-error cells.
	AvgDistance, TotalDistance float64
}

// Evaluate compares a repaired instance against the ground truth, following
// Section 6.6: precision over the cells the repair changed, recall over the
// injected errors, and euclidean-style distance for numeric attributes.
func Evaluate(tr *Truth, repaired *model.Relation) Quality {
	q := Quality{}
	cleanIdx := tr.Clean.ByID()
	dirtyIdx := tr.Dirty.ByID()
	repIdx := repaired.ByID()

	cellOf := func(rel *model.Relation, idx map[int64]int, id int64, col int) (model.Value, bool) {
		i, ok := idx[id]
		if !ok {
			return model.Value{}, false
		}
		return rel.Tuples[i].Cell(col), true
	}

	// Precision: walk every cell, find updates (repaired != dirty).
	for _, t := range repaired.Tuples {
		di, ok := dirtyIdx[t.ID]
		if !ok {
			continue
		}
		for c := range t.Cells {
			dv := tr.Dirty.Tuples[di].Cell(c)
			rv := t.Cell(c)
			if rv.Equal(dv) {
				continue
			}
			q.Updated++
			if cv, ok := cellOf(tr.Clean, cleanIdx, t.ID, c); ok && rv.Equal(cv) {
				q.Correct++
			}
		}
	}
	if q.Updated > 0 {
		q.Precision = float64(q.Correct) / float64(q.Updated)
	}

	// Recall and distance over the injected errors.
	restored := 0
	for key, cleanVal := range tr.Errors {
		rv, ok := cellOf(repaired, repIdx, key.TupleID, key.Col)
		if !ok {
			continue
		}
		if rv.Equal(cleanVal) {
			restored++
		}
		if cleanVal.Kind == model.KindFloat || cleanVal.Kind == model.KindInt {
			d := rv.Float() - cleanVal.Float()
			q.TotalDistance += math.Abs(d)
		}
	}
	if len(tr.Errors) > 0 {
		q.Recall = float64(restored) / float64(len(tr.Errors))
		q.AvgDistance = q.TotalDistance / float64(len(tr.Errors))
	}
	return q
}

// DedupQuality measures a deduplication run. Because injected duplicates
// form clusters (an original replicated several times), correctness is
// judged cluster-wise: a detected pair is correct when both tuples belong
// to the same duplicate cluster, and a truth pair counts as recalled when
// the detected pairs connect its two tuples (directly or transitively).
func DedupQuality(tr *Truth, detected [][2]int64) Quality {
	truthUF := graphLikeUF{}
	for _, p := range tr.DupPairs {
		truthUF.union(p[0], p[1])
	}
	correct := 0
	detUF := graphLikeUF{}
	for _, p := range detected {
		if truthUF.sameKnown(p[0], p[1]) {
			correct++
		}
		detUF.union(p[0], p[1])
	}
	recalled := 0
	for _, p := range tr.DupPairs {
		if detUF.sameKnown(p[0], p[1]) {
			recalled++
		}
	}
	q := Quality{Updated: len(detected), Correct: correct}
	if len(detected) > 0 {
		q.Precision = float64(correct) / float64(len(detected))
	}
	if len(tr.DupPairs) > 0 {
		q.Recall = float64(recalled) / float64(len(tr.DupPairs))
	}
	return q
}

// graphLikeUF is a tiny lazy union-find over int64 keys.
type graphLikeUF map[int64]int64

func (u graphLikeUF) find(x int64) int64 {
	r, ok := u[x]
	if !ok || r == x {
		return x
	}
	root := u.find(r)
	u[x] = root
	return root
}

func (u graphLikeUF) union(a, b int64) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[ra] = rb
	}
	if _, ok := u[a]; !ok {
		u[a] = rb
	}
	if _, ok := u[b]; !ok {
		u[b] = rb
	}
}

// sameKnown reports whether both keys were seen and share a set.
func (u graphLikeUF) sameKnown(a, b int64) bool {
	_, okA := u[a]
	_, okB := u[b]
	return okA && okB && u.find(a) == u.find(b)
}
