package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// Substrate micro-benchmarks: the narrow/wide transformation costs that
// every detection plan is built from.

func benchData(n int, seed int64) []Pair[string, int] {
	r := rand.New(rand.NewSource(seed))
	out := make([]Pair[string, int], n)
	for i := range out {
		out[i] = KV(fmt.Sprintf("k%d", r.Intn(n/20+1)), i)
	}
	return out
}

func BenchmarkGroupByKey(b *testing.B) {
	ctx := New(4)
	for _, n := range []int{10000, 100000} {
		data := benchData(n, int64(n))
		b.Run(fmt.Sprintf("rows-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := Parallelize(ctx, data, 0)
				if _, err := GroupByKey(d).Count(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReduceByKey(b *testing.B) {
	ctx := New(4)
	data := benchData(100000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(ctx, data, 0)
		out := ReduceByKey(d, func(a, b int) int { return a + b })
		if _, err := out.Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortBy(b *testing.B) {
	ctx := New(4)
	r := rand.New(rand.NewSource(9))
	data := make([]int, 100000)
	for i := range data {
		data[i] = r.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(ctx, data, 0)
		out := SortBy(d, func(a, b int) bool { return a < b }, 8)
		if _, err := out.Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapFilterPipeline(b *testing.B) {
	ctx := New(4)
	data := make([]int, 200000)
	for i := range data {
		data[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(ctx, data, 0)
		out := Filter(Map(d, func(v int) int { return v * 3 }), func(v int) bool { return v%2 == 0 })
		if _, err := out.Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockPairsUnique(b *testing.B) {
	ctx := New(4)
	// 1000 blocks of 20: the blocked-FD pair enumeration shape.
	groups := make([]Pair[string, []int], 1000)
	for g := range groups {
		us := make([]int, 20)
		for i := range us {
			us[i] = g*20 + i
		}
		groups[g] = KV(fmt.Sprintf("b%d", g), us)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(ctx, groups, 0)
		if _, err := BlockPairsUnique(d).Count(); err != nil {
			b.Fatal(err)
		}
	}
}
