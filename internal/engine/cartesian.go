package engine

// PairOf is an ordered pair of same-typed elements, the output unit of the
// cartesian transformations below.
type PairOf[T any] struct {
	Left, Right T
}

// Cartesian computes the full cross product of two datasets: every (a, b).
// The right side is collected and broadcast to every left partition, the
// strategy Spark uses when one side is small. Collecting the right side is
// a stage boundary; the pair expansion over the left side is lazy and fuses
// with the left side's pending chain and downstream narrow ops.
func Cartesian[A, B any](da *Dataset[A], db *Dataset[B]) *Dataset[JoinRow[A, B]] {
	ctx := da.ctx
	right, err := db.Collect()
	if err != nil {
		return errDataset[JoinRow[A, B]](ctx, err)
	}
	// Networked regime: the right side is broadcast to the workers owning
	// the left partitions and the pair expansion runs worker-local over
	// the opaque encodings (the cross product is pure concatenation, so
	// the workers need no codecs). The result is materialized; contents
	// and per-partition order match the lazy in-process expansion.
	if ctx.exchange != nil {
		if ac, ok := codecFor[A](); ok {
			if bc, ok := codecFor[B](); ok {
				left, ferr := da.forced()
				if ferr != nil {
					return errDataset[JoinRow[A, B]](ctx, ferr)
				}
				ctx.obs.Count(MetricRecordsShuffled, int64(len(right))*int64(len(left)))
				out, nerr := netCartesian(ctx, left, right, ac, bc)
				if nerr != nil {
					return errDataset[JoinRow[A, B]](ctx, nerr)
				}
				return fromParts(ctx, out)
			}
		}
	}
	ctx.obs.Count(MetricRecordsShuffled, int64(len(right))*int64(da.NumPartitions()))
	return FlatMap(da, func(a A) []JoinRow[A, B] {
		out := make([]JoinRow[A, B], len(right))
		for i, b := range right {
			out[i] = JoinRow[A, B]{Left: a, Right: b}
		}
		return out
	})
}

// SelfCartesian materializes all ordered pairs (a_i, a_j) with i != j of one
// dataset: n*(n-1) pairs. It is the naive CrossProduct physical operator the
// evaluation's Figure 11(c) ablates against.
func SelfCartesian[T any](d *Dataset[T]) *Dataset[PairOf[T]] {
	all, err := d.Collect()
	if err != nil {
		return errDataset[PairOf[T]](d.ctx, err)
	}
	nParts := d.NumPartitions()
	d.ctx.obs.Count(MetricRecordsShuffled, int64(len(all))*int64(nParts))
	// Index the elements so each partition can skip self-pairs globally.
	type indexed struct {
		pos int
		v   T
	}
	idx := make([]indexed, len(all))
	for i, v := range all {
		idx[i] = indexed{pos: i, v: v}
	}
	di := Parallelize(d.ctx, idx, nParts)
	return FlatMap(di, func(a indexed) []PairOf[T] {
		out := make([]PairOf[T], 0, len(all)-1)
		for j, b := range all {
			if j == a.pos {
				continue
			}
			out = append(out, PairOf[T]{Left: a.v, Right: b})
		}
		return out
	})
}

// SelfCartesianUnique materializes the unordered unique pairs (a_i, a_j)
// with i < j: n*(n-1)/2 pairs. This is the selfCartesian() extension the
// paper added to Spark to implement UCrossProduct (Appendix G.1).
func SelfCartesianUnique[T any](d *Dataset[T]) *Dataset[PairOf[T]] {
	all, err := d.Collect()
	if err != nil {
		return errDataset[PairOf[T]](d.ctx, err)
	}
	nParts := d.NumPartitions()
	d.ctx.obs.Count(MetricRecordsShuffled, int64(len(all))*int64(nParts))
	type indexed struct {
		pos int
		v   T
	}
	idx := make([]indexed, len(all))
	for i, v := range all {
		idx[i] = indexed{pos: i, v: v}
	}
	di := Parallelize(d.ctx, idx, nParts)
	return FlatMap(di, func(a indexed) []PairOf[T] {
		if a.pos+1 >= len(all) {
			return nil
		}
		out := make([]PairOf[T], 0, len(all)-a.pos-1)
		for _, b := range all[a.pos+1:] {
			out = append(out, PairOf[T]{Left: a.v, Right: b})
		}
		return out
	})
}

// BlockPairsUnique enumerates the unique unordered pairs inside each group
// of a grouped dataset — UCrossProduct applied blockwise, which is exactly
// the Iterate of Figure 2 (four pairs instead of thirteen). Lazy: the pair
// expansion fuses with downstream narrow transformations.
func BlockPairsUnique[K comparable, T any](d *Dataset[Pair[K, []T]]) *Dataset[PairOf[T]] {
	return FlatMap(d, func(g Pair[K, []T]) []PairOf[T] {
		us := g.Value
		if len(us) < 2 {
			return nil
		}
		out := make([]PairOf[T], 0, len(us)*(len(us)-1)/2)
		for i := 0; i < len(us); i++ {
			for j := i + 1; j < len(us); j++ {
				out = append(out, PairOf[T]{Left: us[i], Right: us[j]})
			}
		}
		return out
	})
}
