package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Codec describes how elements of a dataset are persisted into spill runs
// when a wide operator goes out-of-core. Append must be injective (distinct
// values encode to distinct byte strings) and Decode must invert it exactly,
// so that a record surviving an encode→decode round trip hashes and groups
// identically to the original — the engine's external algorithms order
// records by (64-bit key hash, encoded key bytes), which is only a valid
// grouping order under that contract.
type Codec[T any] struct {
	// Append appends the encoding of t to buf and returns the extended
	// buffer.
	Append func(buf []byte, t T) []byte
	// Decode decodes one value from the front of buf, returning it and the
	// number of bytes consumed.
	Decode func(buf []byte) (T, int, error)
}

// codecRegistry maps reflect.Type of T to a Codec[T] boxed as any. Wide
// operators are generic, so they cannot require a codec statically; instead
// they look one up at runtime and fall back to the in-memory algorithm when
// the element type has none registered.
var codecRegistry sync.Map

// RegisterCodec makes elements of type T spillable. Data-model packages
// register their types at init time (the core layer registers model.Tuple,
// model.Value and model.ValueKey); the engine registers Go primitives below.
// Later registrations replace earlier ones.
func RegisterCodec[T any](c Codec[T]) {
	codecRegistry.Store(reflect.TypeFor[T](), c)
}

// codecFor looks up the codec registered for T.
func codecFor[T any]() (Codec[T], bool) {
	v, ok := codecRegistry.Load(reflect.TypeFor[T]())
	if !ok {
		var zero Codec[T]
		return zero, false
	}
	c, ok := v.(Codec[T])
	return c, ok
}

// pairCodec composes element codecs into a codec for Pair[K, V]: the key
// encoding followed by the value encoding. No length prefix is needed
// because Decode is sequential and each codec consumes exactly its own
// encoding.
func pairCodec[K comparable, V any](kc Codec[K], vc Codec[V]) Codec[Pair[K, V]] {
	return Codec[Pair[K, V]]{
		Append: func(buf []byte, p Pair[K, V]) []byte {
			buf = kc.Append(buf, p.Key)
			return vc.Append(buf, p.Value)
		},
		Decode: func(buf []byte) (Pair[K, V], int, error) {
			k, n, err := kc.Decode(buf)
			if err != nil {
				return Pair[K, V]{}, 0, err
			}
			v, m, err := vc.Decode(buf[n:])
			if err != nil {
				return Pair[K, V]{}, 0, err
			}
			return Pair[K, V]{Key: k, Value: v}, n + m, nil
		},
	}
}

// Primitive codecs, so engine-level datasets (and tests/benchmarks) spill
// without extra wiring.

func varintCodec[T ~int | ~int32 | ~int64]() Codec[T] {
	return Codec[T]{
		Append: func(buf []byte, v T) []byte { return binary.AppendVarint(buf, int64(v)) },
		Decode: func(buf []byte) (T, int, error) {
			v, n := binary.Varint(buf)
			if n <= 0 {
				return 0, 0, fmt.Errorf("engine: decode varint")
			}
			return T(v), n, nil
		},
	}
}

func uvarintCodec[T ~uint | ~uint32 | ~uint64]() Codec[T] {
	return Codec[T]{
		Append: func(buf []byte, v T) []byte { return binary.AppendUvarint(buf, uint64(v)) },
		Decode: func(buf []byte) (T, int, error) {
			v, n := binary.Uvarint(buf)
			if n <= 0 {
				return 0, 0, fmt.Errorf("engine: decode uvarint")
			}
			return T(v), n, nil
		},
	}
}

// StringCodec is the length-prefixed string codec (exported for reuse when
// composing codecs for user types).
func StringCodec() Codec[string] {
	return Codec[string]{
		Append: func(buf []byte, s string) []byte {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			return append(buf, s...)
		},
		Decode: func(buf []byte) (string, int, error) {
			n, sz := binary.Uvarint(buf)
			if sz <= 0 || sz+int(n) > len(buf) {
				return "", 0, fmt.Errorf("engine: decode string")
			}
			return string(buf[sz : sz+int(n)]), sz + int(n), nil
		},
	}
}

// Float64Codec encodes the exact bit pattern (NaN payloads and -0 survive
// the round trip).
func Float64Codec() Codec[float64] {
	return Codec[float64]{
		Append: func(buf []byte, f float64) []byte {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
			return append(buf, b[:]...)
		},
		Decode: func(buf []byte) (float64, int, error) {
			if len(buf) < 8 {
				return 0, 0, fmt.Errorf("engine: decode float64")
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(buf)), 8, nil
		},
	}
}

func init() {
	RegisterCodec(varintCodec[int]())
	RegisterCodec(varintCodec[int32]())
	RegisterCodec(varintCodec[int64]())
	RegisterCodec(uvarintCodec[uint]())
	RegisterCodec(uvarintCodec[uint32]())
	RegisterCodec(uvarintCodec[uint64]())
	RegisterCodec(StringCodec())
	RegisterCodec(Float64Codec())
}
