// Package engine implements the in-memory parallel dataflow substrate that
// plays the role Apache Spark plays in the paper: partitioned datasets,
// narrow transformations (map, filter), and wide transformations that
// shuffle data between partitions (group-by-key, joins, range partitioning,
// cartesian products).
//
// A Context models a cluster: its parallelism is the number of workers
// ("nodes" in the paper's multi-node experiments), and its Stats expose the
// stage, task and shuffle volumes the paper's optimizations aim to reduce.
//
// # Lazy execution and narrow-stage fusion
//
// Narrow transformations (Map, FlatMap, Filter, MapPartitions) are lazy:
// they record a plan node and return immediately. Execution happens at an
// action — Collect, Count, Reduce, Err — or at a wide transformation
// (GroupByKey, ReduceByKey, CoGroup, Join, SortBy, RangePartitionBy,
// Cartesian, Repartition), which is a stage boundary. When a plan runs, the
// whole chain of narrow transformations between two stage boundaries fuses
// into a single per-partition pass: elements are pushed through the
// composed operator closures one at a time, so no intermediate partition
// slices are materialized and Stats counts the chain as exactly one stage.
//
// A dataset that has been executed caches its partitions; building further
// transformations on top of it reads the cached data. Building on top of a
// dataset that has NOT been executed re-runs its (pure) operator chain for
// each downstream action, like an uncached Spark RDD — force a dataset
// (e.g. with Err) before fanning out if its chain is expensive.
//
// Errors — including panics inside user functions — stick to the dataset
// and propagate through downstream transformations until an action reports
// them, in the spirit of Spark job failure. A panic inside a fused stage is
// attributed to the operator that raised it (e.g. "Filter#2", the second
// operator of its chain).
package engine

import (
	"fmt"
	"hash/maphash"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bigdansing/internal/spill"
)

// Stats accumulates execution counters for one Context: cheap atomic
// totals plus a per-stage log. It is the built-in default Observer — the
// engine feeds it spans and counters through the Observer interface, and it
// folds them into the flat totals Snapshot reports.
//
// Contention audit (fused stages report once per partition): the four hot
// totals are sync/atomic counters touched once per stage or task, never per
// record; per-task shuffle counts accumulate lock-free in taskCtx and fold
// into one atomic add at task exit. The only mutex is the per-stage log,
// taken once per stage execution (not per task), where entries are
// aggregated by stage name in place so the log stays bounded by the number
// of distinct stage names rather than growing per execution.
type Stats struct {
	tasks           atomic.Int64
	stages          atomic.Int64
	recordsShuffled atomic.Int64
	recordsRead     atomic.Int64

	// Out-of-core counters, fed by the external (spilling) wide operators.
	bytesSpilled atomic.Int64
	spillRuns    atomic.Int64
	mergePasses  atomic.Int64
	peakReserved atomic.Int64

	// Networked-backend counters, fed by the multi-process exchange.
	netBytesSent atomic.Int64
	netBytesRecv atomic.Int64
	netDials     atomic.Int64
	netRetries   atomic.Int64
	netStraggler atomic.Int64
	netRecovered atomic.Int64

	mu       sync.Mutex
	perStage []StageStat
	stageIdx map[string]int
}

// StageStat describes the executions of one named stage: how many times it
// ran, the partition tasks it executed, the records it moved across
// partitions, and its cumulative wall time. ID is the stage's first-seen
// index — a stable, deterministic identity the per-stage report orders by.
type StageStat struct {
	ID              int
	Name            string
	Runs            int
	Tasks           int64
	RecordsShuffled int64
	Wall            time.Duration
}

// Snapshot is a consistent copy of a Context's statistics, with the
// per-stage log aggregated by stage name (in first-execution order).
type Snapshot struct {
	Stages          int64
	Tasks           int64
	RecordsRead     int64
	RecordsShuffled int64

	// BytesSpilled is the total run-file bytes written by out-of-core
	// operators; SpillRuns counts the run files, MergePasses the k-way
	// merges executed over them, and PeakReservedBytes the high-water mark
	// of memory reserved against the context's budget (never above it).
	BytesSpilled      int64
	SpillRuns         int64
	MergePasses       int64
	PeakReservedBytes int64

	// Networked-backend activity: socket traffic of the multi-process
	// exchange, TCP dials, RPC retries, straggler re-dispatches, and
	// worker-death recoveries. All zero on the in-process backends.
	NetBytesSent  int64
	NetBytesRecv  int64
	NetDials      int64
	NetRetries    int64
	NetStragglers int64
	NetRecoveries int64

	PerStage []StageStat
}

// Snapshot returns the current counters and the per-stage breakdown in one
// struct, so callers no longer stitch the four atomic accessors together.
// The totals are atomic loads and the per-stage log is already aggregated by
// name at record time, so the copy under the mutex is proportional to the
// number of distinct stage names.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		Stages:            s.stages.Load(),
		Tasks:             s.tasks.Load(),
		RecordsRead:       s.recordsRead.Load(),
		RecordsShuffled:   s.recordsShuffled.Load(),
		BytesSpilled:      s.bytesSpilled.Load(),
		SpillRuns:         s.spillRuns.Load(),
		MergePasses:       s.mergePasses.Load(),
		PeakReservedBytes: s.peakReserved.Load(),
		NetBytesSent:      s.netBytesSent.Load(),
		NetBytesRecv:      s.netBytesRecv.Load(),
		NetDials:          s.netDials.Load(),
		NetRetries:        s.netRetries.Load(),
		NetStragglers:     s.netStraggler.Load(),
		NetRecoveries:     s.netRecovered.Load(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap.PerStage = append([]StageStat(nil), s.perStage...)
	return snap
}

// String renders the snapshot as a small table for diagnostics (the
// `bigdansing --stats` report). Stages are ordered by their stage ID
// (first-seen order), so the report is deterministic run to run — wall
// times vary, row order does not.
func (sn Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stages: %d, tasks: %d, records read: %d, records shuffled: %d\n",
		sn.Stages, sn.Tasks, sn.RecordsRead, sn.RecordsShuffled)
	if sn.BytesSpilled > 0 || sn.PeakReservedBytes > 0 {
		fmt.Fprintf(&b, "spill: %d bytes in %d runs, %d merge passes, peak reserved: %d bytes\n",
			sn.BytesSpilled, sn.SpillRuns, sn.MergePasses, sn.PeakReservedBytes)
	}
	if sn.NetBytesSent > 0 || sn.NetBytesRecv > 0 || sn.NetDials > 0 {
		fmt.Fprintf(&b, "net: %d bytes sent, %d bytes received, %d dials, %d retries, %d straggler re-dispatches, %d recoveries\n",
			sn.NetBytesSent, sn.NetBytesRecv, sn.NetDials, sn.NetRetries, sn.NetStragglers, sn.NetRecoveries)
	}
	if len(sn.PerStage) == 0 {
		return b.String()
	}
	stages := append([]StageStat(nil), sn.PerStage...)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].ID < stages[j].ID })
	fmt.Fprintf(&b, "%4s %-40s %6s %8s %12s %12s\n", "id", "stage", "runs", "tasks", "shuffled", "wall")
	for _, st := range stages {
		fmt.Fprintf(&b, "%4d %-40s %6d %8d %12d %12s\n",
			st.ID, st.Name, st.Runs, st.Tasks, st.RecordsShuffled, st.Wall.Round(time.Microsecond))
	}
	return b.String()
}

// Tasks returns the number of partition tasks executed.
//
// Deprecated: use Snapshot().Tasks; the accessor sprawl is replaced by the
// Observer API plus Snapshot.
func (s *Stats) Tasks() int64 { return s.tasks.Load() }

// Stages returns the number of parallel stages executed.
//
// Deprecated: use Snapshot().Stages.
func (s *Stats) Stages() int64 { return s.stages.Load() }

// RecordsShuffled returns the number of records moved across partitions by
// wide transformations.
//
// Deprecated: use Snapshot().RecordsShuffled.
func (s *Stats) RecordsShuffled() int64 { return s.recordsShuffled.Load() }

// RecordsRead returns the number of records ingested by Parallelize.
//
// Deprecated: use Snapshot().RecordsRead.
func (s *Stats) RecordsRead() int64 { return s.recordsRead.Load() }

// BytesSpilled returns the total bytes written to spill runs.
//
// Deprecated: use Snapshot().BytesSpilled.
func (s *Stats) BytesSpilled() int64 { return s.bytesSpilled.Load() }

// SpillRuns returns the number of spill run files written.
//
// Deprecated: use Snapshot().SpillRuns.
func (s *Stats) SpillRuns() int64 { return s.spillRuns.Load() }

// MergePasses returns the number of k-way merges executed over spill runs.
//
// Deprecated: use Snapshot().MergePasses.
func (s *Stats) MergePasses() int64 { return s.mergePasses.Load() }

// PeakReservedBytes returns the high-water mark of memory reserved against
// the context's budget.
//
// Deprecated: use Snapshot().PeakReservedBytes.
func (s *Stats) PeakReservedBytes() int64 { return s.peakReserved.Load() }

// BeginSpan implements Observer: stage spans fold into the per-stage log
// when they end, task spans count one task, every other kind is dropped
// (Stats keeps totals, not trees). The task path returns a shared no-op
// span, so the per-task cost is one atomic add and no allocation.
func (s *Stats) BeginSpan(parent Span, name string, kind SpanKind) Span {
	switch kind {
	case SpanStage:
		return &statsStageSpan{stats: s, name: name, start: time.Now()}
	case SpanTask:
		s.tasks.Add(1)
		return discardSpan{}
	default:
		return discardSpan{}
	}
}

// Count implements Observer: flat counter deltas fold into the atomic
// totals (the peak-reservation metric folds with max).
func (s *Stats) Count(m Metric, v int64) {
	if v == 0 {
		return
	}
	switch m {
	case MetricRecordsRead:
		s.recordsRead.Add(v)
	case MetricRecordsShuffled:
		s.recordsShuffled.Add(v)
	case MetricBytesSpilled:
		s.bytesSpilled.Add(v)
	case MetricSpillRuns:
		s.spillRuns.Add(v)
	case MetricMergePasses:
		s.mergePasses.Add(v)
	case MetricPeakReservedBytes:
		for {
			p := s.peakReserved.Load()
			if v <= p || s.peakReserved.CompareAndSwap(p, v) {
				return
			}
		}
	case MetricNetBytesSent:
		s.netBytesSent.Add(v)
	case MetricNetBytesRecv:
		s.netBytesRecv.Add(v)
	case MetricNetDials:
		s.netDials.Add(v)
	case MetricNetRetries:
		s.netRetries.Add(v)
	case MetricNetStragglers:
		s.netStraggler.Add(v)
	case MetricNetRecoveries:
		s.netRecovered.Add(v)
	}
}

// statsStageSpan accumulates one stage execution for the per-stage log. It
// is owned by the goroutine driving the stage (runStage), so its fields
// need no synchronization; End folds the totals.
type statsStageSpan struct {
	stats    *Stats
	name     string
	start    time.Time
	tasks    int64
	shuffled int64
	ended    bool
}

func (sp *statsStageSpan) Attr(k Attr, v int64) {
	switch k {
	case AttrPartitions:
		sp.tasks = v
	case AttrRecordsShuffled:
		sp.shuffled = v
	}
}

func (sp *statsStageSpan) End() {
	if sp.ended {
		return
	}
	sp.ended = true
	sp.stats.stages.Add(1)
	sp.stats.recordsShuffled.Add(sp.shuffled)
	sp.stats.record(StageStat{
		Name:            sp.name,
		Runs:            1,
		Tasks:           sp.tasks,
		RecordsShuffled: sp.shuffled,
		Wall:            time.Since(sp.start),
	})
}

// Reset zeroes all counters and clears the per-stage log.
func (s *Stats) Reset() {
	s.tasks.Store(0)
	s.stages.Store(0)
	s.recordsShuffled.Store(0)
	s.recordsRead.Store(0)
	s.bytesSpilled.Store(0)
	s.spillRuns.Store(0)
	s.mergePasses.Store(0)
	s.peakReserved.Store(0)
	s.netBytesSent.Store(0)
	s.netBytesRecv.Store(0)
	s.netDials.Store(0)
	s.netRetries.Store(0)
	s.netStraggler.Store(0)
	s.netRecovered.Store(0)
	s.mu.Lock()
	s.perStage = nil
	s.stageIdx = nil
	s.mu.Unlock()
}

// record folds one stage execution into the per-name aggregate (first-seen
// order preserved), taken once per stage, not per task or record.
func (s *Stats) record(st StageStat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stageIdx == nil {
		s.stageIdx = make(map[string]int)
	}
	if i, ok := s.stageIdx[st.Name]; ok {
		agg := &s.perStage[i]
		agg.Runs += st.Runs
		agg.Tasks += st.Tasks
		agg.RecordsShuffled += st.RecordsShuffled
		agg.Wall += st.Wall
		return
	}
	st.ID = len(s.perStage)
	s.stageIdx[st.Name] = len(s.perStage)
	s.perStage = append(s.perStage, st)
}

// Context is the execution environment for datasets: a fixed-size worker
// pool plus statistics, and optionally a memory budget that switches wide
// operators into their out-of-core (spilling) regime. A Context is safe for
// concurrent use.
type Context struct {
	parallelism int
	stats       Stats

	// obs receives every execution event; it is the context's own Stats by
	// default, or a tee of Stats and the configured user Observer.
	obs Observer
	// instrumented records that a user Observer is installed, which turns
	// on the (slightly costlier) fine-grained measurements layers above the
	// engine take, like per-rule UDF timings.
	instrumented bool

	// batchSize is the vectorized-execution batch size; 0 disables the
	// batch path (see Config.BatchSize).
	batchSize int

	// plannerMode selects the physical planner of the detection layer (see
	// Config.Planner); "" and PlannerStatic mean the legacy static choices.
	plannerMode string

	// mem arbitrates the memory budget; nil means unbounded, in which case
	// every wide operator takes its in-memory fast path.
	mem *spill.Manager
	// spillDir is the base directory operators create their run
	// directories under; only set when mem is non-nil.
	spillDir string

	// exchange, when non-nil, is the networked multi-process backend: the
	// wide operators route their encoded bytes through it instead of
	// moving slices between goroutines. It takes precedence over the spill
	// regime for the scatter-style operators it covers.
	exchange Exchange
}

// Config configures a Context beyond plain parallelism.
type Config struct {
	// Parallelism is the number of workers; non-positive defaults to
	// GOMAXPROCS.
	Parallelism int
	// Observer, when non-nil, additionally receives every execution event
	// (spans for stages, tasks, plans, pipelines, repair phases; flat
	// counters for reads and spills). The context's own Stats always keeps
	// counting, so Snapshot stays truthful with or without an Observer.
	// Install a *trace.Tracer here (or via cleanse.WithObserver) to capture
	// the full span tree for EXPLAIN / Chrome-trace export.
	Observer Observer
	// MemoryBudgetBytes bounds the working memory of wide operators
	// (shuffle buckets, group state, sort buffers). When a task cannot
	// reserve memory under the budget it spills sorted runs to disk and
	// k-way merges them — the engine's second, disk-backed execution
	// regime. Non-positive means unbounded: all wide operators keep their
	// existing in-memory fast path and never touch disk.
	MemoryBudgetBytes int64
	// SpillDir is the base directory for spill files; empty means the
	// system temp dir. Operators create (and always remove) per-operator
	// subdirectories beneath it.
	SpillDir string
	// BatchSize is the row count per column batch for vectorized
	// execution. Layers above the engine (core's detection executor,
	// storage's batch reader) consult it via Context.BatchSize: a positive
	// value makes eligible Scope→Detect chains run over model.Batch column
	// vectors; zero (or negative) keeps every pipeline on the
	// tuple-at-a-time path. The engine itself is agnostic — batch and
	// tuple datasets use the same operators.
	BatchSize int

	// Planner selects the physical planner the detection layer uses when no
	// explicit core.Planner is supplied: PlannerStatic (or empty, the
	// default) reproduces the legacy rule-shape choices; PlannerCost plans
	// from sampled statistics with the cost-based model. The engine itself
	// is agnostic — it only carries the setting, like BatchSize.
	Planner string

	// Backend selects the execution backend. BackendLocal (the zero value)
	// is the in-process worker pool; BackendNet runs partition exchanges
	// across separate OS worker processes over TCP (requires the netexec
	// package to be linked in, and NewContext instead of NewWithConfig so
	// spawn failures surface as errors).
	Backend BackendKind
	// NetWorkers is the number of worker processes the net backend spawns
	// (<=0: 2). Ignored by BackendLocal.
	NetWorkers int
	// NetListenAddr is the host (or host:0) the spawned workers bind their
	// listeners to; empty means 127.0.0.1 (loopback scale-out).
	NetListenAddr string
	// NetWorkerAddrs, when non-empty, joins pre-started workers
	// (`bigdansing worker -addr ...`) at these addresses instead of
	// spawning local processes; NetWorkers is then ignored.
	NetWorkerAddrs []string
	// Exchange, when non-nil, installs this pre-built exchange directly,
	// bypassing the Backend factory. The context takes ownership (Close
	// closes it). The fault-injection harness uses it to run plans over a
	// coordinator with chaos hooks armed.
	Exchange Exchange
}

// Planner modes carried by Config.Planner / Context.PlannerMode.
const (
	// PlannerStatic is the legacy rule-shape translation (the default).
	PlannerStatic = "static"
	// PlannerCost is the statistics-driven cost-based planner.
	PlannerCost = "cost"
)

// New creates a Context with the given parallelism (number of workers) and
// no memory budget. Non-positive parallelism defaults to GOMAXPROCS.
func New(parallelism int) *Context {
	return NewWithConfig(Config{Parallelism: parallelism})
}

// NewWithConfig creates a Context from a full configuration. It panics when
// the configuration selects a non-local backend — backend construction can
// fail (worker spawn, dial), so those callers must use NewContext and handle
// the error.
func NewWithConfig(cfg Config) *Context {
	ctx, err := NewContext(cfg)
	if err != nil {
		panic(fmt.Sprintf("engine: NewWithConfig: %v (use NewContext for non-local backends)", err))
	}
	return ctx
}

// NewContext creates a Context from a full configuration, constructing the
// configured backend. For BackendNet the exchange factory registered by the
// netexec package spawns (or joins) the worker processes; the error reports
// spawn and dial failures. Call Close on the returned context to shut the
// workers down.
func NewContext(cfg Config) (*Context, error) {
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	c := &Context{parallelism: p}
	if cfg.BatchSize > 0 {
		c.batchSize = cfg.BatchSize
	}
	switch cfg.Planner {
	case "", PlannerStatic:
		c.plannerMode = PlannerStatic
	case PlannerCost:
		c.plannerMode = PlannerCost
	default:
		return nil, fmt.Errorf("engine: unknown planner %q (want %q or %q)", cfg.Planner, PlannerStatic, PlannerCost)
	}
	c.obs = &c.stats
	if cfg.Observer != nil {
		c.obs = Tee(&c.stats, cfg.Observer)
		c.instrumented = true
	}
	if cfg.MemoryBudgetBytes > 0 {
		c.mem = spill.NewManager(cfg.MemoryBudgetBytes)
		c.spillDir = cfg.SpillDir
		if c.spillDir == "" {
			c.spillDir = os.TempDir()
		}
	}
	if cfg.Exchange != nil {
		c.exchange = cfg.Exchange
	} else if cfg.Backend != BackendLocal {
		x, err := newExchange(cfg, c.obs)
		if err != nil {
			return nil, err
		}
		c.exchange = x
	}
	return c, nil
}

// Exchange returns the networked exchange backing this context, or nil on
// the in-process backends.
func (c *Context) Exchange() Exchange { return c.exchange }

// Close shuts down the context's backend: on BackendNet it closes every
// worker connection and terminates the spawned worker processes. It is
// idempotent and a no-op for in-process contexts.
func (c *Context) Close() error {
	x := c.exchange
	if x == nil {
		return nil
	}
	c.exchange = nil
	return x.Close()
}

// Parallelism returns the number of workers.
func (c *Context) Parallelism() int { return c.parallelism }

// Stats returns the context's statistics.
func (c *Context) Stats() *Stats { return &c.stats }

// Observer returns the context's event sink — its own Stats by default, or
// the tee of Stats and the configured Observer. Layers above the engine
// (planning, detection, repair, the cleansing loop) report their spans
// through it so one installed Observer sees the whole run.
func (c *Context) Observer() Observer { return c.obs }

// Instrumented reports whether a user Observer is installed. Layers use it
// to gate measurements that are not free (per-rule UDF timings), keeping
// the default path unburdened.
func (c *Context) Instrumented() bool { return c.instrumented }

// AttachObserver tees o into the context's observer after construction,
// for layers (cleanse.WithObserver) that receive an Observer without
// building the Context themselves. Call it before running any dataflow on
// the context; it is not safe concurrently with a running stage.
func (c *Context) AttachObserver(o Observer) {
	if o == nil || o == Discard {
		return
	}
	c.obs = Tee(c.obs, o)
	c.instrumented = true
}

// BatchSize returns the configured vectorized-execution batch size; 0 means
// the tuple-at-a-time path everywhere.
func (c *Context) BatchSize() int { return c.batchSize }

// SetBatchSize sets the vectorized-execution batch size after construction,
// for layers (cleanse.WithBatchSize) that receive the setting without
// building the Context themselves. Non-positive disables the batch path.
// Like AttachObserver, call it before running any dataflow on the context.
func (c *Context) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	c.batchSize = n
}

// PlannerMode returns the configured physical-planner mode (PlannerStatic
// or PlannerCost; never empty).
func (c *Context) PlannerMode() string {
	if c.plannerMode == "" {
		return PlannerStatic
	}
	return c.plannerMode
}

// SetPlannerMode sets the planner mode after construction, for layers
// (cleanse sessions, serve) that receive the setting without building the
// Context themselves. Unknown modes are ignored. Like AttachObserver, call
// it before running any dataflow on the context.
func (c *Context) SetPlannerMode(mode string) {
	switch mode {
	case "", PlannerStatic:
		c.plannerMode = PlannerStatic
	case PlannerCost:
		c.plannerMode = PlannerCost
	}
}

// MemoryBudget returns the configured wide-operator memory budget in bytes
// (0 when unbounded).
func (c *Context) MemoryBudget() int64 { return c.mem.Budget() }

// MemoryManager exposes the context's budget manager (nil when unbounded),
// for callers that coordinate their own buffers with the engine's budget.
func (c *Context) MemoryManager() *spill.Manager { return c.mem }

// taskCtx is the per-task handle a stage function receives. Fused operators
// store their name in op before invoking user code, so a panic can be
// attributed to the operator that raised it; shuffle tasks accumulate the
// records they moved in shuffled. recordsIn/recordsOut are plain fields the
// operators set once per task (never per record) — runStage pushes them
// onto the task's span when it ends, so tracing them costs nothing on the
// record paths.
type taskCtx struct {
	part       int
	worker     int
	op         string
	shuffled   int64
	recordsIn  int64
	recordsOut int64
}

// runStage executes f for every partition index in [0, n) using at most
// Parallelism workers, reports the stage (and each task) to the observer
// under name, and returns the first task failure. A panic inside f is
// recovered and returned as an error naming the partition (and, for fused
// stages, the originating operator), so one bad record fails the stage
// rather than the process. Spans are closed on every exit path, panics
// included, so an observer never sees a leaked span.
func (c *Context) runStage(name string, n int, f func(tk *taskCtx)) error {
	if n == 0 {
		return nil
	}
	sp := c.obs.BeginSpan(nil, name, SpanStage)
	sp.Attr(AttrPartitions, int64(n))
	workers := c.parallelism
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		shuffled atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstEr  error
	)
	run := func(worker, part int) (err error) {
		tsp := c.obs.BeginSpan(sp, name, SpanTask)
		tk := &taskCtx{part: part, worker: worker}
		defer func() {
			if tk.shuffled != 0 {
				shuffled.Add(tk.shuffled)
			}
			tsp.Attr(AttrPart, int64(part))
			tsp.Attr(AttrWorker, int64(worker))
			tsp.Attr(AttrRecordsIn, tk.recordsIn)
			tsp.Attr(AttrRecordsOut, tk.recordsOut)
			tsp.Attr(AttrRecordsShuffled, tk.shuffled)
			tsp.End()
			if r := recover(); r != nil {
				if tk.op != "" {
					err = fmt.Errorf("engine: task for partition %d panicked in %s: %v", part, tk.op, r)
				} else {
					err = fmt.Errorf("engine: task for partition %d panicked: %v", part, r)
				}
			}
		}()
		f(tk)
		return nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(worker, i); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	sp.Attr(AttrRecordsShuffled, shuffled.Load())
	sp.End()
	return firstEr
}

// shuffleSeed is the process-wide seed for shuffle-key hashing; it only has
// to be consistent within one run, which is all hash partitioning needs.
var shuffleSeed = maphash.MakeSeed()

// hashKey hashes any comparable shuffle key via the runtime's native hash.
// Unlike the interface-based hashAny it replaces, it never boxes the key
// into an interface (no per-record allocation) and never stringifies —
// struct keys like model.ValueKey hash at memory speed.
func hashKey[K comparable](k K) uint64 {
	return maphash.Comparable(shuffleSeed, k)
}

// itoa is a tiny helper used in diagnostics.
func itoa(i int) string { return strconv.Itoa(i) }
