// Package engine implements the in-memory parallel dataflow substrate that
// plays the role Apache Spark plays in the paper: partitioned datasets,
// narrow transformations (map, filter), and wide transformations that
// shuffle data between partitions (group-by-key, joins, range partitioning,
// cartesian products).
//
// A Context models a cluster: its parallelism is the number of workers
// ("nodes" in the paper's multi-node experiments), and its Stats expose the
// task and shuffle volumes the paper's optimizations aim to reduce.
//
// Transformations are eager: each one runs a parallel stage and materializes
// its result. Errors — including panics inside user functions — stick to the
// dataset and propagate through downstream transformations until an action
// (Collect, Count) reports them, in the spirit of Spark job failure.
package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Stats accumulates execution counters for one Context. All fields are
// updated atomically; read them with the accessor methods.
type Stats struct {
	tasks           atomic.Int64
	stages          atomic.Int64
	recordsShuffled atomic.Int64
	recordsRead     atomic.Int64
}

// Tasks returns the number of partition tasks executed.
func (s *Stats) Tasks() int64 { return s.tasks.Load() }

// Stages returns the number of parallel stages executed.
func (s *Stats) Stages() int64 { return s.stages.Load() }

// RecordsShuffled returns the number of records moved across partitions by
// wide transformations.
func (s *Stats) RecordsShuffled() int64 { return s.recordsShuffled.Load() }

// RecordsRead returns the number of records ingested by Parallelize.
func (s *Stats) RecordsRead() int64 { return s.recordsRead.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.tasks.Store(0)
	s.stages.Store(0)
	s.recordsShuffled.Store(0)
	s.recordsRead.Store(0)
}

// Context is the execution environment for datasets: a fixed-size worker
// pool plus statistics. A Context is safe for concurrent use.
type Context struct {
	parallelism int
	stats       Stats
}

// New creates a Context with the given parallelism (number of workers).
// Non-positive parallelism defaults to GOMAXPROCS.
func New(parallelism int) *Context {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Context{parallelism: parallelism}
}

// Parallelism returns the number of workers.
func (c *Context) Parallelism() int { return c.parallelism }

// Stats returns the context's statistics.
func (c *Context) Stats() *Stats { return &c.stats }

// runParts executes f for every partition index in [0, n) using at most
// Parallelism workers. A panic inside f is recovered and returned as an
// error naming the partition, so one bad record fails the stage rather than
// the process.
func (c *Context) runParts(n int, f func(part int)) error {
	if n == 0 {
		return nil
	}
	c.stats.stages.Add(1)
	c.stats.tasks.Add(int64(n))
	workers := c.parallelism
	if workers > n {
		workers = n
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	run := func(part int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("engine: task for partition %d panicked: %v", part, r)
			}
		}()
		f(part)
		return nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// hashAny hashes a comparable key for hash partitioning. Strings and
// integers — the key types BigDansing produces — take fast paths.
func hashAny(k any) uint64 {
	switch v := k.(type) {
	case string:
		h := fnv.New64a()
		h.Write([]byte(v))
		return h.Sum64()
	case int:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case float64:
		return mix64(math.Float64bits(v))
	case bool:
		if v {
			return mix64(1)
		}
		return mix64(0)
	default:
		h := fnv.New64a()
		h.Write([]byte(fmt.Sprint(v)))
		return h.Sum64()
	}
}

// mix64 is a finalizer-style bit mixer (splitmix64) giving integer keys a
// uniform spread over partitions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// itoa is a tiny helper used in diagnostics.
func itoa(i int) string { return strconv.Itoa(i) }
