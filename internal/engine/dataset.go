package engine

import (
	"errors"
	"fmt"
)

// Dataset is a partitioned, immutable collection of T — the analogue of a
// Spark RDD. Transformations produce new datasets; the error of a failed
// stage sticks to the result and surfaces at the next action.
type Dataset[T any] struct {
	ctx   *Context
	parts [][]T
	err   error
}

// Parallelize slices data into n partitions (n <= 0 means the context's
// parallelism) and wraps it in a Dataset. The input slice is not copied;
// callers must not mutate it afterwards.
func Parallelize[T any](ctx *Context, data []T, n int) *Dataset[T] {
	if n <= 0 {
		n = ctx.parallelism
	}
	if n > len(data) && len(data) > 0 {
		n = len(data)
	}
	if len(data) == 0 {
		n = 1
	}
	parts := make([][]T, n)
	chunk := (len(data) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		parts[i] = data[lo:hi:hi]
	}
	ctx.stats.recordsRead.Add(int64(len(data)))
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// fromParts wraps pre-built partitions.
func fromParts[T any](ctx *Context, parts [][]T) *Dataset[T] {
	if len(parts) == 0 {
		parts = make([][]T, 1)
	}
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// errDataset propagates a stage failure.
func errDataset[T any](ctx *Context, err error) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, parts: make([][]T, 1), err: err}
}

// Context returns the dataset's execution context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Err returns the sticky error, if any stage failed.
func (d *Dataset[T]) Err() error { return d.err }

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return len(d.parts) }

// Partition returns the contents of one partition. Callers must not mutate
// the returned slice.
func (d *Dataset[T]) Partition(i int) []T { return d.parts[i] }

// Collect gathers all elements into one slice, in partition order.
func (d *Dataset[T]) Collect() ([]T, error) {
	if d.err != nil {
		return nil, d.err
	}
	total := 0
	for _, p := range d.parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out, nil
}

// MustCollect is Collect for callers that treat failure as fatal (tests,
// examples).
func (d *Dataset[T]) MustCollect() []T {
	out, err := d.Collect()
	if err != nil {
		panic(err)
	}
	return out
}

// Count returns the number of elements.
func (d *Dataset[T]) Count() (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n, nil
}

// Map applies f to every element in parallel.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	if d.err != nil {
		return errDataset[U](d.ctx, d.err)
	}
	out := make([][]U, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(p int) {
		in := d.parts[p]
		res := make([]U, len(in))
		for i, v := range in {
			res[i] = f(v)
		}
		out[p] = res
	})
	if err != nil {
		return errDataset[U](d.ctx, err)
	}
	return fromParts(d.ctx, out)
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	if d.err != nil {
		return errDataset[U](d.ctx, d.err)
	}
	out := make([][]U, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(p int) {
		var res []U
		for _, v := range d.parts[p] {
			res = append(res, f(v)...)
		}
		out[p] = res
	})
	if err != nil {
		return errDataset[U](d.ctx, err)
	}
	return fromParts(d.ctx, out)
}

// MapPartitions applies f to whole partitions, the hook wrappers use to
// amortize per-call overhead (the paper's physical operators receive sets of
// units, not single units).
func MapPartitions[T, U any](d *Dataset[T], f func(part int, in []T) []U) *Dataset[U] {
	if d.err != nil {
		return errDataset[U](d.ctx, d.err)
	}
	out := make([][]U, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(p int) {
		out[p] = f(p, d.parts[p])
	})
	if err != nil {
		return errDataset[U](d.ctx, err)
	}
	return fromParts(d.ctx, out)
}

// Filter keeps the elements for which pred is true.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	if d.err != nil {
		return d
	}
	out := make([][]T, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(p int) {
		var res []T
		for _, v := range d.parts[p] {
			if pred(v) {
				res = append(res, v)
			}
		}
		out[p] = res
	})
	if err != nil {
		return errDataset[T](d.ctx, err)
	}
	return fromParts(d.ctx, out)
}

// Union concatenates datasets of the same element type under one context.
func Union[T any](ds ...*Dataset[T]) *Dataset[T] {
	if len(ds) == 0 {
		return nil
	}
	ctx := ds[0].ctx
	var parts [][]T
	for _, d := range ds {
		if d.err != nil {
			return errDataset[T](ctx, d.err)
		}
		parts = append(parts, d.parts...)
	}
	return fromParts(ctx, parts)
}

// Repartition redistributes elements round-robin into n partitions, moving
// every record (a full shuffle).
func Repartition[T any](d *Dataset[T], n int) *Dataset[T] {
	if d.err != nil {
		return d
	}
	if n <= 0 {
		n = d.ctx.parallelism
	}
	all, _ := d.Collect()
	d.ctx.stats.recordsShuffled.Add(int64(len(all)))
	return Parallelize(d.ctx, all, n)
}

// Reduce folds all elements with a binary, associative function. It returns
// an error on an empty dataset.
func Reduce[T any](d *Dataset[T], f func(a, b T) T) (T, error) {
	var zero T
	if d.err != nil {
		return zero, d.err
	}
	partial := make([]T, 0, len(d.parts))
	var hasAny []bool = make([]bool, len(d.parts))
	partials := make([]T, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(p int) {
		in := d.parts[p]
		if len(in) == 0 {
			return
		}
		acc := in[0]
		for _, v := range in[1:] {
			acc = f(acc, v)
		}
		partials[p] = acc
		hasAny[p] = true
	})
	if err != nil {
		return zero, err
	}
	for p, ok := range hasAny {
		if ok {
			partial = append(partial, partials[p])
		}
	}
	if len(partial) == 0 {
		return zero, errors.New("engine: reduce of empty dataset")
	}
	acc := partial[0]
	for _, v := range partial[1:] {
		acc = f(acc, v)
	}
	return acc, nil
}

// String describes the dataset shape for diagnostics.
func (d *Dataset[T]) String() string {
	n, _ := d.Count()
	return fmt.Sprintf("dataset(%d elems, %s parts)", n, itoa(len(d.parts)))
}
