package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Dataset is a partitioned, immutable collection of T — the analogue of a
// Spark RDD. Narrow transformations are lazy: they record a plan and return
// immediately; actions (Collect, Count, Reduce, Err) and wide
// transformations trigger execution, fusing the pending narrow chain into a
// single per-partition stage. The error of a failed stage sticks to the
// result and surfaces at the next action.
type Dataset[T any] struct {
	ctx *Context

	mu    sync.Mutex
	state dsState
	parts [][]T          // materialized partitions, valid when state == dsDone
	err   error          // sticky failure, valid when state == dsFailed
	plan  *narrowPlan[T] // pending fused chain, valid when state == dsLazy
}

type dsState uint8

const (
	dsLazy dsState = iota
	dsDone
	dsFailed
)

// narrowPlan is a fused chain of narrow operators over an upstream stage
// boundary: feed pushes the elements of one source partition through every
// recorded operator without materializing intermediate slices. bounded
// marks chains of non-expanding operators (Map, Filter), whose output per
// partition is at most the source partition's length — the sink uses it to
// allocate each output partition once, at its upper bound.
type narrowPlan[T any] struct {
	src     forceable
	feed    func(p int, tk *taskCtx, emit func(T))
	ops     []string
	bounded bool
}

// forceable is the untyped handle a narrow plan keeps to its source
// dataset: enough to ensure it is materialized and walk its partitions.
// partRows reports a partition's record count in rows — it diverges from
// partLen only for batch element types, where one element carries many rows
// (see rowsOf).
type forceable interface {
	force() error
	partsCount() int
	partLen(p int) int
	partRows(p int) int64
}

// Parallelize slices data into n partitions (n <= 0 means the context's
// parallelism) and wraps it in a materialized Dataset. The input slice is
// not copied; callers must not mutate it afterwards.
func Parallelize[T any](ctx *Context, data []T, n int) *Dataset[T] {
	if n <= 0 {
		n = ctx.parallelism
	}
	if n > len(data) && len(data) > 0 {
		n = len(data)
	}
	if len(data) == 0 {
		n = 1
	}
	parts := make([][]T, n)
	chunk := (len(data) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		parts[i] = data[lo:hi:hi]
	}
	// Batch-typed data counts its rows, not its batch handles, so the
	// records-read metric means the same thing on both execution paths.
	ctx.obs.Count(MetricRecordsRead, rowsOf(data))
	return &Dataset[T]{ctx: ctx, state: dsDone, parts: parts}
}

// fromParts wraps pre-built partitions.
func fromParts[T any](ctx *Context, parts [][]T) *Dataset[T] {
	if len(parts) == 0 {
		parts = make([][]T, 1)
	}
	return &Dataset[T]{ctx: ctx, state: dsDone, parts: parts}
}

// errDataset propagates a stage failure.
func errDataset[T any](ctx *Context, err error) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, state: dsFailed, parts: make([][]T, 1), err: err}
}

// force executes the pending plan, if any, and caches the result (or the
// failure). It is safe for concurrent use and idempotent.
func (d *Dataset[T]) force() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.state {
	case dsDone:
		return nil
	case dsFailed:
		return d.err
	}
	plan := d.plan
	if err := plan.src.force(); err != nil {
		d.fail(err)
		return err
	}
	n := plan.src.partsCount()
	parts := make([][]T, n)
	err := d.ctx.runStage(fusedStageName(plan.ops), n, func(tk *taskCtx) {
		// Record flow is counted in rows: for batch element types one
		// element is many records, and the Observer seam should see the
		// rows, not the batch handles.
		tk.recordsIn = plan.src.partRows(tk.part)
		var out []T
		if plan.bounded {
			out = make([]T, 0, plan.src.partLen(tk.part))
		}
		plan.feed(tk.part, tk, func(t T) { out = append(out, t) })
		parts[tk.part] = out
		tk.recordsOut = rowsOf(out)
	})
	if err != nil {
		d.fail(err)
		return err
	}
	d.state = dsDone
	d.parts = parts
	d.plan = nil
	return nil
}

// fail transitions to the failed state (caller holds d.mu).
func (d *Dataset[T]) fail(err error) {
	d.state = dsFailed
	d.err = err
	d.parts = make([][]T, 1)
	d.plan = nil
}

// forced materializes the dataset and returns its partitions.
func (d *Dataset[T]) forced() ([][]T, error) {
	if err := d.force(); err != nil {
		return nil, err
	}
	return d.parts, nil
}

// partsCount implements forceable; only valid after force.
func (d *Dataset[T]) partsCount() int { return len(d.parts) }

// partLen implements forceable; only valid after force.
func (d *Dataset[T]) partLen(p int) int { return len(d.parts[p]) }

// partRows implements forceable; only valid after force. It counts rows,
// which for batch element types means summing live rows per element.
func (d *Dataset[T]) partRows(p int) int64 { return rowsOf(d.parts[p]) }

// fusedStageName labels the stage of a fused chain, e.g. "Map·Filter".
func fusedStageName(ops []string) string {
	if len(ops) == 0 {
		return "identity"
	}
	return strings.Join(ops, "·")
}

// narrowSrc is the composition base a new narrow operator builds on: the
// upstream stage boundary plus the already-fused feed to extend. For a
// materialized dataset, parts holds its partitions so whole-partition
// operators (MapPartitions) can read them without copying.
type narrowSrc[T any] struct {
	src     forceable
	feed    func(p int, tk *taskCtx, emit func(T))
	ops     []string
	bounded bool
	parts   [][]T // non-nil iff the dataset is already materialized
	err     error // non-nil iff the dataset already failed
}

// narrowBase inspects d and returns the composition base for a new narrow
// operator: the pending fused chain if d is lazy, or a partition walker
// over the cached data if d is materialized.
func narrowBase[T any](d *Dataset[T]) narrowSrc[T] {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.state {
	case dsFailed:
		return narrowSrc[T]{err: d.err}
	case dsDone:
		parts := d.parts
		return narrowSrc[T]{
			src: d,
			feed: func(p int, _ *taskCtx, emit func(T)) {
				for _, v := range parts[p] {
					emit(v)
				}
			},
			bounded: true,
			parts:   parts,
		}
	default:
		return narrowSrc[T]{src: d.plan.src, feed: d.plan.feed, ops: d.plan.ops, bounded: d.plan.bounded}
	}
}

// lazyFrom wraps a composed feed as a new lazy dataset.
func lazyFrom[T any](ctx *Context, base forceable, ops []string, bounded bool, feed func(p int, tk *taskCtx, emit func(T))) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, state: dsLazy, plan: &narrowPlan[T]{src: base, feed: feed, ops: ops, bounded: bounded}}
}

// opLabel names one operator instance inside a fused chain for panic
// attribution: kind plus its 1-based position, e.g. "Filter#2".
func opLabel(kind string, ops []string) string {
	return fmt.Sprintf("%s#%d", kind, len(ops)+1)
}

// appendOp clones-and-appends so sibling chains sharing a prefix do not
// alias the ops slice.
func appendOp(ops []string, kind string) []string {
	out := make([]string, 0, len(ops)+1)
	out = append(out, ops...)
	return append(out, kind)
}

// Context returns the dataset's execution context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Err is an action: it forces execution of any pending transformations and
// returns the sticky error, if any stage failed. Use it to materialize a
// dataset that will be consumed more than once.
func (d *Dataset[T]) Err() error { return d.force() }

// NumPartitions forces execution and returns the partition count. A failed
// dataset reports one (empty) placeholder partition.
func (d *Dataset[T]) NumPartitions() int {
	d.force()
	return len(d.parts)
}

// Partition forces execution and returns the contents of one partition.
// Callers must not mutate the returned slice. On a failed dataset only the
// empty placeholder partition 0 exists.
func (d *Dataset[T]) Partition(i int) []T {
	d.force()
	return d.parts[i]
}

// Collect is an action: it executes the pending plan — the whole narrow
// chain as one fused stage — and gathers all elements into one slice, in
// partition order.
func (d *Dataset[T]) Collect() ([]T, error) {
	parts, err := d.forced()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// MustCollect is Collect for callers that treat failure as fatal (tests,
// examples).
func (d *Dataset[T]) MustCollect() []T {
	out, err := d.Collect()
	if err != nil {
		panic(err)
	}
	return out
}

// Count is an action: it returns the number of elements. On a dataset with
// a pending narrow chain it streams the fused pass through a counter
// without materializing (or caching) the elements; on a materialized
// dataset it sums the cached partition lengths.
func (d *Dataset[T]) Count() (int, error) {
	base := narrowBase(d)
	if base.err != nil {
		return 0, base.err
	}
	if base.parts != nil {
		n := 0
		for _, p := range base.parts {
			n += len(p)
		}
		return n, nil
	}
	if err := base.src.force(); err != nil {
		return 0, err
	}
	nParts := base.src.partsCount()
	counts := make([]int64, nParts)
	feed := base.feed
	err := d.ctx.runStage(fusedStageName(appendOp(base.ops, "Count")), nParts, func(tk *taskCtx) {
		n := int64(0)
		feed(tk.part, tk, func(T) { n++ })
		counts[tk.part] = n
		tk.recordsIn = n
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += int(n)
	}
	return total, nil
}

// Map records the element-wise application of f; it fuses with adjacent
// narrow transformations when an action runs.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	base := narrowBase(d)
	if base.err != nil {
		return errDataset[U](d.ctx, base.err)
	}
	op := opLabel("Map", base.ops)
	feed := base.feed
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "Map"), base.bounded, func(p int, tk *taskCtx, emit func(U)) {
		feed(p, tk, func(t T) {
			tk.op = op
			emit(f(t))
		})
	})
}

// FlatMap records the application of f with concatenation of the results;
// lazy and fusable like Map.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	base := narrowBase(d)
	if base.err != nil {
		return errDataset[U](d.ctx, base.err)
	}
	op := opLabel("FlatMap", base.ops)
	feed := base.feed
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "FlatMap"), false, func(p int, tk *taskCtx, emit func(U)) {
		feed(p, tk, func(t T) {
			tk.op = op
			us := f(t)
			for _, u := range us {
				emit(u)
			}
		})
	})
}

// Filter records the predicate; lazy and fusable like Map.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	base := narrowBase(d)
	if base.err != nil {
		return d
	}
	op := opLabel("Filter", base.ops)
	feed := base.feed
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "Filter"), base.bounded, func(p int, tk *taskCtx, emit func(T)) {
		feed(p, tk, func(t T) {
			tk.op = op
			if pred(t) {
				emit(t)
			}
		})
	})
}

// MapPartitions records the whole-partition application of f, the hook
// wrappers use to amortize per-call overhead (the paper's physical
// operators receive sets of units, not single units). It fuses into the
// surrounding narrow chain, but because f needs its input partition as one
// slice, a pending upstream chain buffers its output here (a materialized
// upstream is passed through without copying).
func MapPartitions[T, U any](d *Dataset[T], f func(part int, in []T) []U) *Dataset[U] {
	base := narrowBase(d)
	if base.err != nil {
		return errDataset[U](d.ctx, base.err)
	}
	op := opLabel("MapPartitions", base.ops)
	feed := base.feed
	parts := base.parts
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "MapPartitions"), false, func(p int, tk *taskCtx, emit func(U)) {
		var in []T
		if parts != nil {
			in = parts[p]
		} else {
			feed(p, tk, func(t T) { in = append(in, t) })
		}
		tk.op = op
		out := f(p, in)
		for _, u := range out {
			emit(u)
		}
	})
}

// Union concatenates datasets of the same element type under one context.
// It is a stage boundary: each input is forced and the materialized
// partitions are concatenated (element slices are shared, not copied).
func Union[T any](ds ...*Dataset[T]) *Dataset[T] {
	if len(ds) == 0 {
		return nil
	}
	ctx := ds[0].ctx
	var parts [][]T
	for _, d := range ds {
		dp, err := d.forced()
		if err != nil {
			return errDataset[T](ctx, err)
		}
		parts = append(parts, dp...)
	}
	return fromParts(ctx, parts)
}

// Repartition redistributes elements round-robin into n partitions, moving
// every record (a full shuffle). It is a stage boundary.
func Repartition[T any](d *Dataset[T], n int) *Dataset[T] {
	if n <= 0 {
		n = d.ctx.parallelism
	}
	all, err := d.Collect()
	if err != nil {
		return d
	}
	d.ctx.obs.Count(MetricRecordsShuffled, int64(len(all)))
	if n > len(all) && len(all) > 0 {
		n = len(all)
	}
	if len(all) == 0 {
		n = 1
	}
	parts := make([][]T, n)
	chunk := (len(all) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := min(i*chunk, len(all))
		hi := min(lo+chunk, len(all))
		parts[i] = all[lo:hi:hi]
	}
	return fromParts(d.ctx, parts)
}

// Reduce is an action: it folds all elements with a binary, associative
// function, consuming any pending narrow chain in the same fused stage
// (per-partition partial folds, then a final fold of the partials). It
// returns an error on an empty dataset.
func Reduce[T any](d *Dataset[T], f func(a, b T) T) (T, error) {
	var zero T
	base := narrowBase(d)
	if base.err != nil {
		return zero, base.err
	}
	if err := base.src.force(); err != nil {
		return zero, err
	}
	n := base.src.partsCount()
	partials := make([]T, n)
	hasAny := make([]bool, n)
	feed := base.feed
	err := d.ctx.runStage(fusedStageName(appendOp(base.ops, "Reduce")), n, func(tk *taskCtx) {
		var acc T
		ok := false
		feed(tk.part, tk, func(t T) {
			if !ok {
				acc, ok = t, true
				return
			}
			tk.op = "Reduce"
			acc = f(acc, t)
		})
		partials[tk.part], hasAny[tk.part] = acc, ok
		tk.recordsOut = 1
	})
	if err != nil {
		return zero, err
	}
	var acc T
	any := false
	for p, ok := range hasAny {
		if !ok {
			continue
		}
		if !any {
			acc, any = partials[p], true
			continue
		}
		acc = f(acc, partials[p])
	}
	if !any {
		return zero, errors.New("engine: reduce of empty dataset")
	}
	return acc, nil
}

// String describes the dataset shape for diagnostics. It forces execution.
func (d *Dataset[T]) String() string {
	parts, err := d.forced()
	if err != nil {
		return fmt.Sprintf("dataset(failed: %v)", err)
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return fmt.Sprintf("dataset(%d elems, %s parts)", n, itoa(len(parts)))
}
