package engine

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizePartitioning(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, ints(10), 3)
	if d.NumPartitions() != 3 {
		t.Fatalf("parts = %d", d.NumPartitions())
	}
	got, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collected %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order not preserved: %v", got)
		}
	}
}

func TestParallelizeEmptyAndOversized(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, []int{}, 8)
	if n, _ := d.Count(); n != 0 {
		t.Error("empty count")
	}
	d2 := Parallelize(ctx, []int{1, 2}, 8)
	if d2.NumPartitions() > 2 {
		t.Errorf("should not create more partitions than elements, got %d", d2.NumPartitions())
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, ints(100), 0)
	doubled := Map(d, func(i int) int { return i * 2 })
	evens := Filter(doubled, func(i int) bool { return i%4 == 0 })
	expanded := FlatMap(evens, func(i int) []int { return []int{i, i + 1} })
	got, err := expanded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	ctx := New(2)
	d := Parallelize(ctx, ints(10), 2)
	bad := Map(d, func(i int) int {
		if i == 7 {
			panic("injected failure")
		}
		return i
	})
	if bad.Err() == nil {
		t.Fatal("panic should surface as sticky error")
	}
	if !strings.Contains(bad.Err().Error(), "injected failure") {
		t.Errorf("error should carry panic value: %v", bad.Err())
	}
	// Error propagates through further transformations and actions.
	next := Filter(bad, func(int) bool { return true })
	if _, err := next.Collect(); err == nil {
		t.Error("error should propagate to actions")
	}
	if _, err := next.Count(); err == nil {
		t.Error("error should propagate to Count")
	}
}

func TestReduce(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, ints(101), 7)
	sum, err := Reduce(d, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Errorf("sum = %d", sum)
	}
	empty := Parallelize(ctx, []int{}, 0)
	if _, err := Reduce(empty, func(a, b int) int { return a + b }); err == nil {
		t.Error("reduce of empty should error")
	}
}

func TestUnionAndRepartition(t *testing.T) {
	ctx := New(4)
	a := Parallelize(ctx, []int{1, 2}, 1)
	b := Parallelize(ctx, []int{3}, 1)
	u := Union(a, b)
	if n, _ := u.Count(); n != 3 {
		t.Errorf("union count = %d", n)
	}
	r := Repartition(u, 2)
	if r.NumPartitions() != 2 {
		t.Errorf("repartition parts = %d", r.NumPartitions())
	}
	got, _ := r.Collect()
	sort.Ints(got)
	if got[0] != 1 || got[2] != 3 {
		t.Errorf("repartition lost data: %v", got)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := New(4)
	data := []Pair[string, int]{
		KV("a", 1), KV("b", 2), KV("a", 3), KV("c", 4), KV("b", 5),
	}
	d := Parallelize(ctx, data, 3)
	grouped, err := GroupByKey(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]int{}
	for _, g := range grouped {
		byKey[g.Key] = g.Value
	}
	if len(byKey) != 3 {
		t.Fatalf("groups = %v", byKey)
	}
	sort.Ints(byKey["a"])
	if byKey["a"][0] != 1 || byKey["a"][1] != 3 {
		t.Errorf("group a = %v", byKey["a"])
	}
}

func TestReduceByKeyMatchesGroupReduce(t *testing.T) {
	ctx := New(4)
	f := func(keys []uint8, vals []int8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		pairs := make([]Pair[string, int], n)
		for i := 0; i < n; i++ {
			pairs[i] = KV(string(rune('a'+keys[i]%5)), int(vals[i]))
		}
		d := Parallelize(ctx, pairs, 4)
		red, err := ReduceByKey(d, func(a, b int) int { return a + b }).Collect()
		if err != nil {
			return false
		}
		want := map[string]int{}
		for _, p := range pairs {
			want[p.Key] += p.Value
		}
		if len(red) != len(want) {
			return false
		}
		for _, p := range red {
			if want[p.Key] != p.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoGroupAndJoin(t *testing.T) {
	ctx := New(4)
	left := Parallelize(ctx, []Pair[string, int]{KV("x", 1), KV("y", 2), KV("x", 3)}, 2)
	right := Parallelize(ctx, []Pair[string, string]{KV("x", "a"), KV("z", "b")}, 2)
	cg, err := CoGroup(left, right).Collect()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]CoGrouped[int, string]{}
	for _, g := range cg {
		seen[g.Key] = g.Value
	}
	if len(seen["x"].Left) != 2 || len(seen["x"].Right) != 1 {
		t.Errorf("cogroup x = %+v", seen["x"])
	}
	if len(seen["z"].Left) != 0 || len(seen["z"].Right) != 1 {
		t.Errorf("cogroup z = %+v", seen["z"])
	}

	joined, err := Join(left, right).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 2 {
		t.Fatalf("join rows = %d, want 2 (x1-a, x3-a)", len(joined))
	}
	for _, j := range joined {
		if j.Key != "x" || j.Value.Right != "a" {
			t.Errorf("unexpected join row %+v", j)
		}
	}
}

func TestDistinct(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, []int{1, 2, 2, 3, 3, 3}, 3)
	got, err := Distinct(d, func(i int) int { return i }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("distinct = %v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	ctx := New(4)
	ctx.Stats().Reset()
	d := Parallelize(ctx, ints(100), 4)
	if ctx.Stats().Snapshot().RecordsRead != 100 {
		t.Errorf("records read = %d", ctx.Stats().Snapshot().RecordsRead)
	}
	_ = GroupByKey(KeyBy(d, func(i int) int { return i % 3 })).MustCollect()
	if ctx.Stats().Snapshot().RecordsShuffled == 0 {
		t.Error("group by should shuffle")
	}
	if ctx.Stats().Snapshot().Stages == 0 || ctx.Stats().Snapshot().Tasks == 0 {
		t.Error("stage/task counters should advance")
	}
}
