package engine

import (
	"strings"
	"testing"
)

// failing builds a dataset whose first transformation panics.
func failing(ctx *Context) *Dataset[int] {
	d := Parallelize(ctx, ints(10), 2)
	return Map(d, func(i int) int { panic("wide boom") })
}

func TestErrorPropagatesThroughWideOps(t *testing.T) {
	ctx := New(2)

	kv := Map(failing(ctx), func(i int) Pair[string, int] { return KV("k", i) })
	if GroupByKey(kv).Err() == nil {
		t.Error("GroupByKey should propagate")
	}
	if ReduceByKey(kv, func(a, b int) int { return a + b }).Err() == nil {
		t.Error("ReduceByKey should propagate")
	}
	good := Parallelize(ctx, []Pair[string, int]{KV("k", 1)}, 1)
	if CoGroup(kv, good).Err() == nil {
		t.Error("CoGroup should propagate from left")
	}
	if CoGroup(good, kv).Err() == nil {
		t.Error("CoGroup should propagate from right")
	}
	if Join(kv, good).Err() == nil {
		t.Error("Join should propagate")
	}
}

func TestErrorPropagatesThroughSortAndCartesian(t *testing.T) {
	ctx := New(2)
	bad := failing(ctx)
	if SortBy(bad, func(a, b int) bool { return a < b }, 2).Err() == nil {
		t.Error("SortBy should propagate")
	}
	if RangePartitionBy(bad, func(a, b int) bool { return a < b }, 2).Err() == nil {
		t.Error("RangePartitionBy should propagate")
	}
	good := Parallelize(ctx, ints(3), 1)
	if Cartesian(bad, good).Err() == nil {
		t.Error("Cartesian should propagate from left")
	}
	if Cartesian(good, bad).Err() == nil {
		t.Error("Cartesian should propagate from right")
	}
	if SelfCartesian(bad).Err() == nil {
		t.Error("SelfCartesian should propagate")
	}
	if SelfCartesianUnique(bad).Err() == nil {
		t.Error("SelfCartesianUnique should propagate")
	}
	if Union(good, bad).Err() == nil {
		t.Error("Union should propagate")
	}
	if Repartition(bad, 2).Err() == nil {
		t.Error("Repartition should propagate")
	}
	if _, err := Reduce(bad, func(a, b int) int { return a + b }); err == nil {
		t.Error("Reduce should propagate")
	}
}

func TestMustCollectPanicsOnError(t *testing.T) {
	ctx := New(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustCollect should panic on sticky error")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "boom") {
			t.Errorf("panic should carry the cause: %v", r)
		}
	}()
	failing(ctx).MustCollect()
}

func TestMapPartitions(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, ints(20), 4)
	sums := MapPartitions(d, func(part int, in []int) []int {
		total := 0
		for _, v := range in {
			total += v
		}
		return []int{total}
	})
	got, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("one output per partition: %v", got)
	}
	all := 0
	for _, v := range got {
		all += v
	}
	if all != 190 {
		t.Errorf("sum = %d", all)
	}
}

func TestKeyByPreservesValues(t *testing.T) {
	ctx := New(2)
	d := Parallelize(ctx, []string{"aa", "b", "cc"}, 2)
	kv, err := KeyBy(d, func(s string) int { return len(s) }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range kv {
		if p.Key != len(p.Value) {
			t.Errorf("pair %v", p)
		}
	}
}

func TestGroupByKeyIntegerKeys(t *testing.T) {
	ctx := New(4)
	var pairs []Pair[int64, int]
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, KV(int64(i%13), i))
	}
	groups, err := GroupByKey(Parallelize(ctx, pairs, 8)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 13 {
		t.Fatalf("groups = %d", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Value)
	}
	if total != 1000 {
		t.Errorf("grouped values = %d", total)
	}
}
