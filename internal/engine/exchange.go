package engine

import (
	"fmt"
	"sync"
)

// The Exchange seam is how the engine talks to the networked multi-process
// backend without importing it. The wide transformations that move data
// between partitions — shuffleByKey, RangePartitionBy, Cartesian — already
// know how to turn their records into codec-encoded bytes (the spill regime
// fixed that wire format in PR 3); with an Exchange installed they hand
// those bytes to it instead of concatenating slices in-process, and the
// Exchange moves them through separate OS worker processes over TCP. The
// engine stays oblivious to sockets, retries and worker placement: the
// Exchange contract is purely about bytes and ordering.

// BackendKind selects a Context's execution backend.
type BackendKind uint8

const (
	// BackendLocal is the in-process worker pool (the default).
	BackendLocal BackendKind = iota
	// BackendNet is the networked multi-process backend: partition
	// exchanges move codec-encoded frames between worker processes over
	// TCP sockets (implemented by internal/netexec).
	BackendNet
)

// String names the backend for diagnostics and flags.
func (k BackendKind) String() string {
	switch k {
	case BackendLocal:
		return "local"
	case BackendNet:
		return "net"
	default:
		return fmt.Sprintf("backend(%d)", uint8(k))
	}
}

// EncodedRec is one codec-encoded record staged for a distributed exchange,
// tagged with its destination partition.
type EncodedRec struct {
	Dst  uint32
	Data []byte
}

// Exchange is the data plane of a distributed backend. Implementations must
// be safe for concurrent use (independent shuffles may overlap) and must
// preserve the engine's ordering contract: the records of destination d are
// returned in (source partition index, within-source order) — exactly the
// concatenation order of the in-memory gather — so the two backends produce
// element-for-element identical results.
type Exchange interface {
	// Shuffle routes each source partition's encoded records to their Dst
	// (in [0, n)) through the backend's workers and gathers the n
	// destination partitions back. The returned byte slices are owned by
	// the caller. op names the operation for observability.
	Shuffle(op string, parts [][]EncodedRec, n int) ([][][]byte, error)
	// Cartesian broadcasts the encoded right side to the workers owning
	// the left partitions and expands the cross product worker-local: for
	// left partition p the result holds, for each left record l in order,
	// the concatenations l||r for each right record r in order — which is
	// the valid encoding of JoinRow under the engine's sequential codecs.
	Cartesian(op string, left [][][]byte, right [][]byte) ([][][]byte, error)
	// Workers reports the number of worker processes.
	Workers() int
	// Close terminates the backend: connections are closed and spawned
	// worker processes are shut down. Idempotent.
	Close() error
}

// exchangeFactory builds an Exchange for a backend kind. The Observer is
// the context's event sink (Stats plus any user observer), which the
// exchange feeds its spans and net metrics.
type exchangeFactory func(cfg Config, obs Observer) (Exchange, error)

var (
	exchangeMu        sync.RWMutex
	exchangeFactories = map[BackendKind]exchangeFactory{}
)

// RegisterExchange installs the factory for a backend kind. The netexec
// package registers BackendNet at init time; importing it (directly or via
// cmd/serve wiring) is what makes `Backend: BackendNet` constructible.
func RegisterExchange(kind BackendKind, f func(cfg Config, obs Observer) (Exchange, error)) {
	exchangeMu.Lock()
	defer exchangeMu.Unlock()
	exchangeFactories[kind] = f
}

// newExchange builds the exchange for cfg.Backend.
func newExchange(cfg Config, obs Observer) (Exchange, error) {
	exchangeMu.RLock()
	f, ok := exchangeFactories[cfg.Backend]
	exchangeMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: backend %q has no registered exchange (import bigdansing/internal/netexec)", cfg.Backend)
	}
	return f(cfg, obs)
}

// netScatter is the networked counterpart of the scatter/gather shuffle: it
// encodes every record of every source partition (a parallel stage, so a
// panicking codec is attributed and recovered like any operator panic),
// routes the bytes through the exchange, and decodes the gathered
// destination partitions (another parallel stage). The output is
// element-for-element identical to the in-memory scatter's.
func netScatter[T any](ctx *Context, op string, parts [][]T, n int, c Codec[T], dstOf func(T) int) ([][]T, error) {
	enc := make([][]EncodedRec, len(parts))
	err := ctx.runStage(op+":encode", len(parts), func(tk *taskCtx) {
		in := parts[tk.part]
		tk.recordsIn = int64(len(in))
		tk.op = "Encode"
		recs := make([]EncodedRec, len(in))
		for i, v := range in {
			recs[i] = EncodedRec{Dst: uint32(dstOf(v)), Data: c.Append(nil, v)}
		}
		tk.op = ""
		enc[tk.part] = recs
		tk.recordsOut = int64(len(in))
	})
	if err != nil {
		return nil, err
	}
	raw, err := ctx.exchange.Shuffle(op, enc, n)
	if err != nil {
		return nil, err
	}
	out := make([][]T, n)
	errs := make([]error, n)
	derr := ctx.runStage(op+":decode", n, func(tk *taskCtx) {
		in := raw[tk.part]
		tk.recordsIn = int64(len(in))
		bucket := make([]T, 0, len(in))
		for _, b := range in {
			v, used, err := c.Decode(b)
			if err != nil {
				errs[tk.part] = fmt.Errorf("engine: %s: decode gathered record: %w", op, err)
				return
			}
			if used != len(b) {
				errs[tk.part] = fmt.Errorf("engine: %s: gathered record has %d trailing bytes", op, len(b)-used)
				return
			}
			bucket = append(bucket, v)
		}
		out[tk.part] = bucket
		tk.shuffled += int64(len(bucket))
		tk.recordsOut = int64(len(bucket))
	})
	if derr == nil {
		derr = firstError(errs)
	}
	if derr != nil {
		return nil, derr
	}
	return out, nil
}

// netCartesian is the networked cross product: the left partitions and the
// broadcast right side cross the wire once, the pair expansion runs
// worker-local (the workers only concatenate opaque encodings, so they need
// no type knowledge), and the coordinator decodes the JoinRow stream.
func netCartesian[A, B any](ctx *Context, left [][]A, right []B, ac Codec[A], bc Codec[B]) ([][]JoinRow[A, B], error) {
	encLeft := make([][][]byte, len(left))
	err := ctx.runStage("cartesian:encode", len(left), func(tk *taskCtx) {
		in := left[tk.part]
		tk.recordsIn = int64(len(in))
		tk.op = "Encode"
		recs := make([][]byte, len(in))
		for i, v := range in {
			recs[i] = ac.Append(nil, v)
		}
		tk.op = ""
		encLeft[tk.part] = recs
	})
	if err != nil {
		return nil, err
	}
	encRight := make([][]byte, len(right))
	for i, v := range right {
		encRight[i] = bc.Append(nil, v)
	}
	raw, err := ctx.exchange.Cartesian("cartesian", encLeft, encRight)
	if err != nil {
		return nil, err
	}
	out := make([][]JoinRow[A, B], len(raw))
	errs := make([]error, len(raw))
	derr := ctx.runStage("cartesian:decode", len(raw), func(tk *taskCtx) {
		in := raw[tk.part]
		tk.recordsIn = int64(len(in))
		rows := make([]JoinRow[A, B], 0, len(in))
		for _, b := range in {
			a, n, err := ac.Decode(b)
			if err != nil {
				errs[tk.part] = fmt.Errorf("engine: cartesian: decode left: %w", err)
				return
			}
			bb, m, err := bc.Decode(b[n:])
			if err != nil {
				errs[tk.part] = fmt.Errorf("engine: cartesian: decode right: %w", err)
				return
			}
			if n+m != len(b) {
				errs[tk.part] = fmt.Errorf("engine: cartesian: pair record has %d trailing bytes", len(b)-n-m)
				return
			}
			rows = append(rows, JoinRow[A, B]{Left: a, Right: bb})
		}
		out[tk.part] = rows
		tk.recordsOut = int64(len(rows))
	})
	if derr == nil {
		derr = firstError(errs)
	}
	if derr != nil {
		return nil, derr
	}
	return out, nil
}
