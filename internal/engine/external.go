package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"bigdansing/internal/spill"
)

// External (out-of-core) wide operators. When a Context carries a memory
// budget (Config.MemoryBudgetBytes) and the element types have registered
// codecs, the wide transformations switch from their in-memory algorithms
// to the spill regime implemented here:
//
//   - GroupByKey / ReduceByKey: each source partition encodes its records,
//     buffers them under reservation from the budget manager, and — when a
//     reservation is refused — stable-sorts the buffer by (destination,
//     64-bit key hash, encoded key bytes) and spills it as per-destination
//     run files; the final buffer stays in memory as one more sorted run.
//     Each destination then k-way merges its runs in (hash, key-bytes)
//     order and folds adjacent equal keys into groups (or reduced values)
//     without ever holding a per-key hash map. Hash-then-key ordering is a
//     valid grouping order because codecs are injective: equal keys have
//     equal hashes and equal encodings, so every record of a key is
//     adjacent after the merge.
//   - SortBy: the same spill structure with runs ordered by the user's less
//     function; the per-destination merge yields each output partition
//     already sorted, turning sample-sort into a true external merge sort.
//   - shuffleByKey / RangePartitionBy: order-preserving scatter with spill —
//     runs are ordered by destination only and the "merge" concatenates
//     them in (source, flush) order, so the output is element-for-element
//     identical to the in-memory path's.
//
// Every operator creates its run files under a lazily made temp directory
// that is removed on all exits — success, error and operator panic alike.

// recOverhead is the bookkeeping cost charged to the budget per buffered
// record on top of its encoded payload (slice headers, hash, destination).
const recOverhead = 48

// spillStats aggregates one operator's spill activity; folded into the
// context Stats when the operator finishes.
type spillStats struct {
	bytes  atomic.Int64
	runs   atomic.Int64
	merges atomic.Int64
}

// flushInto reports the totals (and the budget high-water mark) to the
// context's observer.
func (sp *spillStats) flushInto(ctx *Context) {
	ctx.obs.Count(MetricBytesSpilled, sp.bytes.Load())
	ctx.obs.Count(MetricSpillRuns, sp.runs.Load())
	ctx.obs.Count(MetricMergePasses, sp.merges.Load())
	ctx.obs.Count(MetricPeakReservedBytes, ctx.mem.Peak())
}

// runOf is one spilled run holding records of a single destination.
type runOf struct {
	dst int
	run *spill.Run
}

// spillSource is the spill stage's output for one source partition: its
// file runs in flush order, the final in-memory run (sorted like the
// files), and the budget bytes still reserved for that in-memory run.
type spillSource[R any] struct {
	files    []runOf
	mem      []R
	reserved int64
}

// memSegment returns the subrange of the (dst-major sorted) in-memory run
// holding destination dst.
func (s *spillSource[R]) memSegment(dst int, dstOf func(R) int) []R {
	lo := sort.Search(len(s.mem), func(i int) bool { return dstOf(s.mem[i]) >= dst })
	hi := sort.Search(len(s.mem), func(i int) bool { return dstOf(s.mem[i]) > dst })
	return s.mem[lo:hi]
}

// spiller accumulates one source partition's records under budget
// reservation and spills per-destination runs when a reservation is
// refused. The record type R carries its destination; sortRun must
// stable-sort a buffer into run order (destination-major), encode must
// serialize one record, and cost prices one record against the budget.
type spiller[R any] struct {
	mm      *spill.Manager
	dir     *spill.Dir
	stats   *spillStats
	dstOf   func(R) int
	sortRun func([]R)
	encode  func(buf []byte, r R) []byte
	cost    func(R) int64

	buf      []R
	reserved int64
	files    []runOf
	scratch  []byte
}

// add stages one record, spilling the buffer first if the budget refuses
// the reservation.
func (s *spiller[R]) add(r R) error {
	c := s.cost(r)
	if !s.mm.TryReserve(c) {
		if err := s.flush(); err != nil {
			return err
		}
		if !s.mm.TryReserve(c) {
			// The budget is exhausted by other tasks and this record alone
			// does not fit: write it straight through as a one-record run
			// so the operator still makes progress without overcommitting.
			one := []R{r}
			s.sortRun(one)
			return s.writeRuns(one)
		}
	}
	s.reserved += c
	s.buf = append(s.buf, r)
	return nil
}

// flush sorts the buffer into run order, writes one run per destination,
// and releases the buffer's reservation.
func (s *spiller[R]) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortRun(s.buf)
	if err := s.writeRuns(s.buf); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	s.mm.Release(s.reserved)
	s.reserved = 0
	return nil
}

// writeRuns writes one run per destination segment of the sorted records.
func (s *spiller[R]) writeRuns(recs []R) error {
	for i := 0; i < len(recs); {
		j := i
		dst := s.dstOf(recs[i])
		for j < len(recs) && s.dstOf(recs[j]) == dst {
			j++
		}
		w, err := s.dir.NewRun()
		if err != nil {
			return err
		}
		for _, r := range recs[i:j] {
			s.scratch = s.encode(s.scratch[:0], r)
			if err := w.Append(s.scratch); err != nil {
				w.Abort()
				return err
			}
		}
		run, err := w.Finish()
		if err != nil {
			return err
		}
		s.files = append(s.files, runOf{dst: dst, run: run})
		s.stats.bytes.Add(run.Bytes)
		s.stats.runs.Add(1)
		i = j
	}
	return nil
}

// finish sorts the leftover buffer (kept in memory as the last run) and
// returns the source descriptor. The leftover's reservation is released by
// the operator after the merge stage.
func (s *spiller[R]) finish() *spillSource[R] {
	s.sortRun(s.buf)
	return &spillSource[R]{files: s.files, mem: s.buf, reserved: s.reserved}
}

// runSpillStage executes the spill stage: one task per source partition
// feeds its records through a fresh spiller. feed converts the partition's
// elements into records and adds them (returning the first failure).
// Reservations of failed or panicking tasks are released before the stage
// returns, so no budget leaks on the operator-panic path.
func runSpillStage[T, R any](
	ctx *Context, stage string, parts [][]T,
	newSpiller func() *spiller[R],
	feed func(sp *spiller[R], tk *taskCtx, in []T) error,
) ([]*spillSource[R], error) {
	sources := make([]*spillSource[R], len(parts))
	errs := make([]error, len(parts))
	serr := ctx.runStage(stage+":spill", len(parts), func(tk *taskCtx) {
		sp := newSpiller()
		handedOver := false
		defer func() {
			if !handedOver {
				ctx.mem.Release(sp.reserved)
			}
		}()
		if err := feed(sp, tk, parts[tk.part]); err != nil {
			errs[tk.part] = err
			return
		}
		sources[tk.part] = sp.finish()
		handedOver = true
	})
	if serr == nil {
		serr = firstError(errs)
	}
	if serr != nil {
		releaseSources(ctx, sources)
		return nil, serr
	}
	return sources, nil
}

// releaseSources returns the in-memory-run reservations to the budget.
func releaseSources[R any](ctx *Context, sources []*spillSource[R]) {
	for i, s := range sources {
		if s != nil {
			ctx.mem.Release(s.reserved)
			sources[i] = nil
		}
	}
}

// mergeSource is one sorted input of a k-way merge. pull returns the next
// record; ord breaks ties so that sources earlier in (source partition,
// flush) order win, preserving arrival order for equal elements.
type mergeSource[R any] struct {
	pull func() (R, bool, error)
	cur  R
	ord  int
}

// sliceSource adapts a sorted slice segment to a mergeSource.
func sliceSource[R any](seg []R, ord int) *mergeSource[R] {
	i := 0
	return &mergeSource[R]{ord: ord, pull: func() (R, bool, error) {
		if i >= len(seg) {
			var zero R
			return zero, false, nil
		}
		r := seg[i]
		i++
		return r, true, nil
	}}
}

// mergeSourcesFor assembles the merge inputs of one destination: every
// source partition contributes its file runs for dst (flush order) then its
// in-memory segment, so ord reproduces arrival order. decode parses one run
// record (its input aliases the reader's frame buffer and is only valid
// until the next pull of the same source). The returned closers must run
// when the merge is done.
func mergeSourcesFor[R any](
	sources []*spillSource[R], dst int, dstOf func(R) int,
	decode func(b []byte) (R, error),
) (srcs []*mergeSource[R], closers []func(), err error) {
	ord := 0
	for _, s := range sources {
		for _, fr := range s.files {
			if fr.dst != dst {
				continue
			}
			rd, oerr := fr.run.Open()
			if oerr != nil {
				return nil, closers, oerr
			}
			closers = append(closers, func() { rd.Close() })
			srcs = append(srcs, &mergeSource[R]{ord: ord, pull: func() (R, bool, error) {
				var zero R
				b, rerr := rd.Next()
				if rerr == io.EOF {
					return zero, false, nil
				}
				if rerr != nil {
					return zero, false, rerr
				}
				r, derr := decode(b)
				if derr != nil {
					return zero, false, derr
				}
				return r, true, nil
			}})
			ord++
		}
		if seg := s.memSegment(dst, dstOf); len(seg) > 0 {
			srcs = append(srcs, sliceSource(seg, ord))
			ord++
		}
	}
	return srcs, closers, nil
}

// kWayMerge merges the sources in before-order, calling emit for every
// record. A binary heap keyed by (before, ord) keeps the pop at O(log k).
func kWayMerge[R any](srcs []*mergeSource[R], before func(a, b R) bool, emit func(R) error) error {
	h := make([]*mergeSource[R], 0, len(srcs))
	for _, s := range srcs {
		r, ok, err := s.pull()
		if err != nil {
			return err
		}
		if ok {
			s.cur = r
			h = append(h, s)
		}
	}
	lessAt := func(a, b *mergeSource[R]) bool {
		if before(a.cur, b.cur) {
			return true
		}
		if before(b.cur, a.cur) {
			return false
		}
		return a.ord < b.ord
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && lessAt(h[l], h[m]) {
				m = l
			}
			if r < len(h) && lessAt(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		top := h[0]
		if err := emit(top.cur); err != nil {
			return err
		}
		r, ok, err := top.pull()
		if err != nil {
			return err
		}
		if ok {
			top.cur = r
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) == 0 {
				return nil
			}
		}
		siftDown(0)
	}
	return nil
}

// --- key-value records (GroupByKey / ReduceByKey) ---

// spillRec is one key-value record staged for spilling: its destination
// partition, the key's 64-bit hash, and the codec encodings of key and
// value. On disk it is framed as [hash:8le][keyLen:uvarint][key][val]; the
// destination is implied by which run the record lives in.
type spillRec struct {
	dst  uint32
	hash uint64
	key  []byte
	val  []byte
}

// appendKVRec serializes r (without its dst) into buf.
func appendKVRec(buf []byte, r spillRec) []byte {
	var h [8]byte
	binary.LittleEndian.PutUint64(h[:], r.hash)
	buf = append(buf, h[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(r.key)))
	buf = append(buf, r.key...)
	return append(buf, r.val...)
}

// decodeKVRec parses a serialized record. The returned key/val alias b.
func decodeKVRec(b []byte) (spillRec, error) {
	if len(b) < 8 {
		return spillRec{}, fmt.Errorf("engine: spill record truncated")
	}
	h := binary.LittleEndian.Uint64(b)
	klen, sz := binary.Uvarint(b[8:])
	if sz <= 0 || 8+sz+int(klen) > len(b) {
		return spillRec{}, fmt.Errorf("engine: spill record key truncated")
	}
	key := b[8+sz : 8+sz+int(klen)]
	val := b[8+sz+int(klen):]
	return spillRec{hash: h, key: key, val: val}, nil
}

// kvBefore is the merge order of the external group algorithms: key hash,
// then encoded key bytes (an arbitrary but total tie-break that keeps equal
// keys adjacent).
func kvBefore(a, b spillRec) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return bytes.Compare(a.key, b.key) < 0
}

// newKVSpiller builds the spiller of the external group algorithms.
func newKVSpiller(ctx *Context, dir *spill.Dir, st *spillStats) *spiller[spillRec] {
	return &spiller[spillRec]{
		mm:    ctx.mem,
		dir:   dir,
		stats: st,
		dstOf: func(r spillRec) int { return int(r.dst) },
		sortRun: func(buf []spillRec) {
			sort.SliceStable(buf, func(i, j int) bool {
				if buf[i].dst != buf[j].dst {
					return buf[i].dst < buf[j].dst
				}
				return kvBefore(buf[i], buf[j])
			})
		},
		encode: appendKVRec,
		cost:   func(r spillRec) int64 { return int64(len(r.key)+len(r.val)) + recOverhead },
	}
}

// externalGroupRuns executes the spill stage of the external group
// algorithms over the materialized input partitions.
func externalGroupRuns[K comparable, V any](
	ctx *Context, stage string, dir *spill.Dir, st *spillStats,
	parts [][]Pair[K, V], n int, kc Codec[K], vc Codec[V],
) ([]*spillSource[spillRec], error) {
	return runSpillStage(ctx, stage, parts,
		func() *spiller[spillRec] { return newKVSpiller(ctx, dir, st) },
		func(sp *spiller[spillRec], _ *taskCtx, in []Pair[K, V]) error {
			for _, kv := range in {
				h := hashKey(kv.Key)
				// One allocation per record: key and value share a buffer,
				// sliced apart after encoding.
				enc := kc.Append(make([]byte, 0, 48), kv.Key)
				klen := len(enc)
				enc = vc.Append(enc, kv.Value)
				r := spillRec{
					dst:  uint32(h % uint64(n)),
					hash: h,
					key:  enc[:klen:klen],
					val:  enc[klen:],
				}
				if err := sp.add(r); err != nil {
					return err
				}
			}
			return nil
		})
}

// mergeKVDst k-way merges one destination's runs in (hash, key) order and
// streams every record to emit with a flag marking the first record of each
// key group.
func mergeKVDst(
	sources []*spillSource[spillRec], dst int, st *spillStats,
	emit func(r spillRec, firstOfKey bool) error,
) error {
	srcs, closers, err := mergeSourcesFor(sources, dst,
		func(r spillRec) int { return int(r.dst) }, decodeKVRec)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	if err != nil {
		return err
	}
	if len(srcs) > 1 {
		st.merges.Add(1)
	}
	var (
		keyBytes []byte
		curHash  uint64
		started  bool
	)
	return kWayMerge(srcs, kvBefore, func(r spillRec) error {
		first := !started || r.hash != curHash || !bytes.Equal(r.key, keyBytes)
		if first {
			curHash = r.hash
			keyBytes = append(keyBytes[:0], r.key...)
			started = true
		}
		return emit(r, first)
	})
}

// groupByKeyExternal is GroupByKey in the disk-backed regime.
func groupByKeyExternal[K comparable, V any](d *Dataset[Pair[K, V]], kc Codec[K], vc Codec[V]) *Dataset[Pair[K, []V]] {
	ctx := d.ctx
	n := ctx.parallelism
	parts, err := d.forced()
	if err != nil {
		return errDataset[Pair[K, []V]](ctx, err)
	}
	dir := spill.NewDir(ctx.spillDir, "groupByKey")
	defer dir.Cleanup()
	st := &spillStats{}
	defer st.flushInto(ctx)

	sources, err := externalGroupRuns(ctx, "groupByKey", dir, st, parts, n, kc, vc)
	if err != nil {
		return errDataset[Pair[K, []V]](ctx, err)
	}
	defer releaseSources(ctx, sources)

	out := make([][]Pair[K, []V], n)
	errs := make([]error, n)
	gerr := ctx.runStage("groupByKey:merge", n, func(tk *taskCtx) {
		res := out[tk.part]
		errs[tk.part] = mergeKVDst(sources, tk.part, st, func(r spillRec, first bool) error {
			if first {
				k, _, derr := kc.Decode(r.key)
				if derr != nil {
					return derr
				}
				res = append(res, KV(k, []V(nil)))
			}
			v, _, derr := vc.Decode(r.val)
			if derr != nil {
				return derr
			}
			g := &res[len(res)-1]
			g.Value = append(g.Value, v)
			tk.shuffled++
			return nil
		})
		out[tk.part] = res
		tk.recordsIn = tk.shuffled
		tk.recordsOut = int64(len(res))
	})
	if gerr == nil {
		gerr = firstError(errs)
	}
	if gerr != nil {
		return errDataset[Pair[K, []V]](ctx, gerr)
	}
	return fromParts(ctx, out)
}

// reduceByKeyExternal is ReduceByKey in the disk-backed regime: the merge
// folds values into the running accumulator as they stream by, so no group
// slice and no per-key map are ever materialized. The in-memory path's
// map-side combine is skipped — its combine map is exactly the unbounded
// state this regime exists to avoid.
func reduceByKeyExternal[K comparable, V any](d *Dataset[Pair[K, V]], combine func(a, b V) V, kc Codec[K], vc Codec[V]) *Dataset[Pair[K, V]] {
	ctx := d.ctx
	n := ctx.parallelism
	parts, err := d.forced()
	if err != nil {
		return errDataset[Pair[K, V]](ctx, err)
	}
	dir := spill.NewDir(ctx.spillDir, "reduceByKey")
	defer dir.Cleanup()
	st := &spillStats{}
	defer st.flushInto(ctx)

	sources, err := externalGroupRuns(ctx, "reduceByKey", dir, st, parts, n, kc, vc)
	if err != nil {
		return errDataset[Pair[K, V]](ctx, err)
	}
	defer releaseSources(ctx, sources)

	out := make([][]Pair[K, V], n)
	errs := make([]error, n)
	gerr := ctx.runStage("reduceByKey:merge", n, func(tk *taskCtx) {
		res := out[tk.part]
		errs[tk.part] = mergeKVDst(sources, tk.part, st, func(r spillRec, first bool) error {
			v, _, derr := vc.Decode(r.val)
			if derr != nil {
				return derr
			}
			if first {
				k, _, derr := kc.Decode(r.key)
				if derr != nil {
					return derr
				}
				res = append(res, KV(k, v))
			} else {
				tk.op = "Reduce"
				res[len(res)-1].Value = combine(res[len(res)-1].Value, v)
			}
			tk.shuffled++
			return nil
		})
		out[tk.part] = res
		tk.recordsIn = tk.shuffled
		tk.recordsOut = int64(len(res))
	})
	if gerr == nil {
		gerr = firstError(errs)
	}
	if gerr != nil {
		return errDataset[Pair[K, V]](ctx, gerr)
	}
	return fromParts(ctx, out)
}

// firstError returns the first non-nil error of a task error slice.
func firstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
