package engine

import (
	"math/rand"
	"testing"
)

// Out-of-core benchmarks: each wide operator measured in-memory (no
// budget), under a generous budget (buffering regime, nothing spills — the
// overhead floor of the budget accounting), and under a budget far below
// the working set (full spill + merge). The in-memory cases double as
// guards that the spill machinery stays off the unbudgeted fast path.

func spillBenchCtx(b *testing.B, budget int64) *Context {
	b.Helper()
	return NewWithConfig(Config{
		Parallelism:       4,
		MemoryBudgetBytes: budget,
		SpillDir:          b.TempDir(),
	})
}

func BenchmarkGroupByKeySpill(b *testing.B) {
	data := benchData(100000, 7)
	for _, c := range []struct {
		name   string
		budget int64
	}{
		{"inmem", 0},
		{"budget-generous", 1 << 30},
		{"budget-256K", 256 << 10},
	} {
		b.Run(c.name, func(b *testing.B) {
			ctx := spillBenchCtx(b, c.budget)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := Parallelize(ctx, data, 0)
				if _, err := GroupByKey(d).Count(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportSpill(b, ctx, c.budget)
		})
	}
}

func BenchmarkReduceByKeySpill(b *testing.B) {
	data := benchData(100000, 8)
	sum := func(a, b int) int { return a + b }
	for _, c := range []struct {
		name   string
		budget int64
	}{
		{"inmem", 0},
		{"budget-256K", 256 << 10},
	} {
		b.Run(c.name, func(b *testing.B) {
			ctx := spillBenchCtx(b, c.budget)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := Parallelize(ctx, data, 0)
				if _, err := ReduceByKey(d, sum).Count(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportSpill(b, ctx, c.budget)
		})
	}
}

func BenchmarkSortBySpill(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	data := make([]int, 100000)
	for i := range data {
		data[i] = r.Intn(1 << 20)
	}
	less := func(a, b int) bool { return a < b }
	for _, c := range []struct {
		name   string
		budget int64
	}{
		{"inmem", 0},
		{"budget-128K", 128 << 10},
	} {
		b.Run(c.name, func(b *testing.B) {
			ctx := spillBenchCtx(b, c.budget)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := Parallelize(ctx, data, 0)
				if _, err := SortBy(d, less, 8).Count(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportSpill(b, ctx, c.budget)
		})
	}
}

// reportSpill surfaces the spill counters as custom benchmark metrics and
// sanity-checks the regime: budgeted runs must stay under budget, and
// unbudgeted runs must not have spilled at all.
func reportSpill(b *testing.B, ctx *Context, budget int64) {
	b.Helper()
	sn := ctx.Stats().Snapshot()
	n := int64(b.N)
	if n == 0 {
		n = 1
	}
	b.ReportMetric(float64(sn.BytesSpilled/n), "spillB/op")
	b.ReportMetric(float64(sn.SpillRuns/n), "runs/op")
	if budget == 0 && (sn.BytesSpilled != 0 || sn.PeakReservedBytes != 0) {
		b.Fatalf("unbudgeted run touched the spill path: %+v", sn)
	}
	if budget > 0 && sn.PeakReservedBytes > budget {
		b.Fatalf("peak reserved %d exceeds budget %d", sn.PeakReservedBytes, budget)
	}
}
