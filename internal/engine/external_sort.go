package engine

import (
	"sort"

	"bigdansing/internal/spill"
)

// dstRec is one element staged for a scatter or sort spill, tagged with its
// destination partition. Only the element is written to disk; the
// destination is implied by which run the record lives in.
type dstRec[T any] struct {
	dst uint32
	v   T
}

// costEstimator prices elements against the memory budget by encoding the
// first few it sees and charging the running mean thereafter, so steady
// state adds no encode work on the hot buffering path.
type costEstimator[T any] struct {
	c       Codec[T]
	n       int64
	avg     int64
	scratch []byte
}

func (e *costEstimator[T]) cost(r dstRec[T]) int64 {
	if e.n < 16 {
		e.scratch = e.c.Append(e.scratch[:0], r.v)
		e.n++
		e.avg += (int64(len(e.scratch)) - e.avg) / e.n
	}
	return e.avg + recOverhead
}

// scatterSpill redistributes parts into n destination partitions under the
// memory budget, spilling per-destination runs when buffering is refused.
//
// With runLess == nil the merge order is pure arrival order — each
// destination concatenates its runs in (source partition, flush) order, so
// the output is element-for-element identical to the in-memory scatter
// paths in shuffle.go and sort.go. With runLess set, runs are sorted by it
// and each destination k-way merges them, yielding partitions that are
// fully sorted (external merge sort); ties still resolve to arrival order.
func scatterSpill[T any](
	ctx *Context, stage string, parts [][]T, n int,
	dstOf func(T) int, c Codec[T], runLess func(a, b T) bool,
) ([][]T, error) {
	dir := spill.NewDir(ctx.spillDir, stage)
	defer dir.Cleanup()
	st := &spillStats{}
	defer st.flushInto(ctx)

	sortRun := func(buf []dstRec[T]) {
		sort.SliceStable(buf, func(i, j int) bool {
			if buf[i].dst != buf[j].dst {
				return buf[i].dst < buf[j].dst
			}
			if runLess == nil {
				return false
			}
			return runLess(buf[i].v, buf[j].v)
		})
	}
	sources, err := runSpillStage(ctx, stage, parts,
		func() *spiller[dstRec[T]] {
			est := &costEstimator[T]{c: c}
			return &spiller[dstRec[T]]{
				mm:      ctx.mem,
				dir:     dir,
				stats:   st,
				dstOf:   func(r dstRec[T]) int { return int(r.dst) },
				sortRun: sortRun,
				encode:  func(buf []byte, r dstRec[T]) []byte { return c.Append(buf, r.v) },
				cost:    est.cost,
			}
		},
		func(sp *spiller[dstRec[T]], _ *taskCtx, in []T) error {
			for _, v := range in {
				if err := sp.add(dstRec[T]{dst: uint32(dstOf(v)), v: v}); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	defer releaseSources(ctx, sources)

	before := func(a, b dstRec[T]) bool { return false } // concat in arrival order
	if runLess != nil {
		before = func(a, b dstRec[T]) bool { return runLess(a.v, b.v) }
	}
	out := make([][]T, n)
	errs := make([]error, n)
	gerr := ctx.runStage(stage+":merge", n, func(tk *taskCtx) {
		dst := tk.part
		decode := func(b []byte) (dstRec[T], error) {
			v, _, derr := c.Decode(b)
			if derr != nil {
				return dstRec[T]{}, derr
			}
			return dstRec[T]{dst: uint32(dst), v: v}, nil
		}
		srcs, closers, merr := mergeSourcesFor(sources, dst,
			func(r dstRec[T]) int { return int(r.dst) }, decode)
		defer func() {
			for _, cl := range closers {
				cl()
			}
		}()
		if merr != nil {
			errs[dst] = merr
			return
		}
		if len(srcs) > 1 {
			st.merges.Add(1)
		}
		var res []T
		errs[dst] = kWayMerge(srcs, before, func(r dstRec[T]) error {
			res = append(res, r.v)
			tk.shuffled++
			return nil
		})
		out[dst] = res
		tk.recordsOut = int64(len(res))
	})
	if gerr == nil {
		gerr = firstError(errs)
	}
	if gerr != nil {
		return nil, gerr
	}
	return out, nil
}

// sampleBounds picks n-1 range boundaries by deterministic sampling (every
// k-th element), shared by the in-memory and external range partitioners.
func sampleBounds[T any](parts [][]T, total, n int, less func(a, b T) bool) []T {
	sampleTarget := 32 * n
	step := total / sampleTarget
	if step < 1 {
		step = 1
	}
	var sample []T
	i := 0
	for _, p := range parts {
		for _, v := range p {
			if i%step == 0 {
				sample = append(sample, v)
			}
			i++
		}
	}
	sort.SliceStable(sample, func(a, b int) bool { return less(sample[a], sample[b]) })
	bounds := make([]T, 0, n-1)
	for k := 1; k < n; k++ {
		idx := k * len(sample) / n
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		bounds = append(bounds, sample[idx])
	}
	return bounds
}

// boundsTarget returns the destination function of a boundary list: the
// index of the first boundary strictly greater than v.
func boundsTarget[T any](bounds []T, less func(a, b T) bool) func(T) int {
	return func(v T) int {
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if less(v, bounds[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
}

// sortByExternal is SortBy in the disk-backed regime: a true external merge
// sort. Elements are range-partitioned by sampled boundaries like the
// in-memory path, but each destination receives sorted runs and k-way
// merges them instead of buffering everything and sorting locally.
func sortByExternal[T any](d *Dataset[T], less func(a, b T) bool, n int, c Codec[T]) *Dataset[T] {
	ctx := d.ctx
	parts, err := d.forced()
	if err != nil {
		return errDataset[T](ctx, err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return fromParts(ctx, make([][]T, n))
	}
	bounds := sampleBounds(parts, total, n, less)
	target := boundsTarget(bounds, less)
	out, err := scatterSpill(ctx, "sortBy", parts, n, target, c, less)
	if err != nil {
		return errDataset[T](ctx, err)
	}
	return fromParts(ctx, out)
}
