package engine

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// budgetCtx builds a context whose memory budget is far below the working
// set of the tests' datasets, with spill files confined to a fresh temp dir
// so leftovers are detectable.
func budgetCtx(t *testing.T, parallelism int, budget int64) (*Context, string) {
	t.Helper()
	dir := t.TempDir()
	ctx := NewWithConfig(Config{
		Parallelism:       parallelism,
		MemoryBudgetBytes: budget,
		SpillDir:          dir,
	})
	return ctx, dir
}

// assertNoLeftovers fails if the operator left spill files behind.
func assertNoLeftovers(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read spill dir: %v", err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("leftover spill files: %v", names)
	}
}

// assertBudgetQuiescent fails if reservations leaked or the peak exceeded
// the budget — the manager's core invariant.
func assertBudgetQuiescent(t *testing.T, ctx *Context) {
	t.Helper()
	mm := ctx.MemoryManager()
	if r := mm.Reserved(); r != 0 {
		t.Fatalf("leaked reservation: %d bytes still held", r)
	}
	if p, b := mm.Peak(), mm.Budget(); p > b {
		t.Fatalf("peak reservation %d exceeded budget %d", p, b)
	}
}

func spillPairs(n int) []Pair[string, int] {
	r := rand.New(rand.NewSource(11))
	pairs := make([]Pair[string, int], n)
	for i := range pairs {
		pairs[i] = KV(fmt.Sprintf("key-%04d", r.Intn(n/8+1)), i)
	}
	return pairs
}

func TestGroupByKeyExternalMatchesInMemory(t *testing.T) {
	pairs := spillPairs(20000)

	want, err := GroupByKey(Parallelize(New(4), pairs, 8)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ctx, dir := budgetCtx(t, 4, 64<<10)
	got, err := GroupByKey(Parallelize(ctx, pairs, 8)).Collect()
	if err != nil {
		t.Fatal(err)
	}

	sn := ctx.Stats().Snapshot()
	if sn.BytesSpilled == 0 || sn.SpillRuns == 0 {
		t.Fatalf("expected spilling under a %d-byte budget, stats: %+v", 64<<10, sn)
	}
	if sn.PeakReservedBytes > 64<<10 {
		t.Fatalf("peak reserved %d exceeds budget", sn.PeakReservedBytes)
	}
	assertBudgetQuiescent(t, ctx)
	assertNoLeftovers(t, dir)

	// Group iteration order differs between the regimes (merge order vs
	// first-seen order); the groups themselves — and the value order inside
	// each group — must match exactly.
	if len(got) != len(want) {
		t.Fatalf("group count %d != %d", len(got), len(want))
	}
	wantByKey := make(map[string][]int, len(want))
	for _, g := range want {
		wantByKey[g.Key] = g.Value
	}
	for _, g := range got {
		w, ok := wantByKey[g.Key]
		if !ok {
			t.Fatalf("unexpected group %q", g.Key)
		}
		if len(w) != len(g.Value) {
			t.Fatalf("group %q has %d values, want %d", g.Key, len(g.Value), len(w))
		}
		for i := range w {
			if w[i] != g.Value[i] {
				t.Fatalf("group %q value order diverged at %d: %d != %d", g.Key, i, g.Value[i], w[i])
			}
		}
	}
}

func TestReduceByKeyExternalMatchesInMemory(t *testing.T) {
	pairs := spillPairs(20000)
	sum := func(a, b int) int { return a + b }

	want, err := ReduceByKey(Parallelize(New(4), pairs, 8), sum).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ctx, dir := budgetCtx(t, 4, 32<<10)
	got, err := ReduceByKey(Parallelize(ctx, pairs, 8), sum).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if sn := ctx.Stats().Snapshot(); sn.BytesSpilled == 0 {
		t.Fatalf("expected spilling, stats: %+v", sn)
	}
	assertBudgetQuiescent(t, ctx)
	assertNoLeftovers(t, dir)

	wantByKey := make(map[string]int, len(want))
	for _, kv := range want {
		wantByKey[kv.Key] = kv.Value
	}
	if len(got) != len(want) {
		t.Fatalf("key count %d != %d", len(got), len(want))
	}
	for _, kv := range got {
		w, ok := wantByKey[kv.Key]
		if !ok || w != kv.Value {
			t.Fatalf("key %q: got %d want %d (present=%v)", kv.Key, kv.Value, w, ok)
		}
	}
}

func TestSortByExternalMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	data := make([]int, 30000)
	for i := range data {
		data[i] = r.Intn(5000) // plenty of duplicates to exercise tie-breaks
	}
	less := func(a, b int) bool { return a < b }

	want, err := SortBy(Parallelize(New(4), data, 8), less, 0).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ctx, dir := budgetCtx(t, 4, 16<<10)
	got, err := SortBy(Parallelize(ctx, data, 8), less, 0).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if sn := ctx.Stats().Snapshot(); sn.BytesSpilled == 0 || sn.MergePasses == 0 {
		t.Fatalf("expected external merge sort to spill and merge, stats: %+v", sn)
	}
	assertBudgetQuiescent(t, ctx)
	assertNoLeftovers(t, dir)

	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], want[i])
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("output not sorted")
	}
}

// TestRangePartitionByExternalIdenticalOutput checks the order-preserving
// scatter produces element-for-element identical partitions to the
// in-memory path — the property OCJoin's determinism rests on.
func TestRangePartitionByExternalIdenticalOutput(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	data := make([]int, 25000)
	for i := range data {
		data[i] = r.Intn(1000)
	}
	less := func(a, b int) bool { return a < b }

	collectParts := func(ctx *Context) [][]int {
		d := RangePartitionBy(Parallelize(ctx, data, 8), less, 4)
		parts, err := d.forced()
		if err != nil {
			t.Fatal(err)
		}
		return parts
	}
	want := collectParts(New(4))
	ctx, dir := budgetCtx(t, 4, 16<<10)
	got := collectParts(ctx)

	if sn := ctx.Stats().Snapshot(); sn.BytesSpilled == 0 {
		t.Fatalf("expected spilling, stats: %+v", sn)
	}
	assertBudgetQuiescent(t, ctx)
	assertNoLeftovers(t, dir)

	if len(got) != len(want) {
		t.Fatalf("partition count %d != %d", len(got), len(want))
	}
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("partition %d length %d != %d", p, len(got[p]), len(want[p]))
		}
		for i := range want[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("partition %d element %d: %d != %d", p, i, got[p][i], want[p][i])
			}
		}
	}
}

// TestExternalOperatorPanicReleasesResources checks the operator-panic path
// of the spill regime: a panicking user function inside a spilled stage
// must surface as the usual attributed stage error, leave no run files on
// disk, and return every budget reservation.
func TestExternalOperatorPanicReleasesResources(t *testing.T) {
	pairs := spillPairs(20000)

	t.Run("panic in reduce combine", func(t *testing.T) {
		ctx, dir := budgetCtx(t, 4, 32<<10)
		bad := func(a, b int) int { panic("combine exploded") }
		_, err := ReduceByKey(Parallelize(ctx, pairs, 8), bad).Collect()
		if err == nil || !strings.Contains(err.Error(), "combine exploded") {
			t.Fatalf("want attributed panic error, got %v", err)
		}
		assertBudgetQuiescent(t, ctx)
		assertNoLeftovers(t, dir)
	})

	t.Run("panic in upstream filter", func(t *testing.T) {
		// The narrow chain runs (fused) before the spill stage; its panic
		// must not leave the external operator holding anything.
		ctx, dir := budgetCtx(t, 4, 32<<10)
		d := Filter(Parallelize(ctx, pairs, 8), func(p Pair[string, int]) bool {
			if p.Value == 7777 {
				panic("filter exploded")
			}
			return true
		})
		_, err := GroupByKey(d).Collect()
		if err == nil || !strings.Contains(err.Error(), "filter exploded") {
			t.Fatalf("want attributed panic error, got %v", err)
		}
		if !strings.Contains(err.Error(), "Filter") {
			t.Fatalf("panic not attributed to the filter operator: %v", err)
		}
		assertBudgetQuiescent(t, ctx)
		assertNoLeftovers(t, dir)
	})

	t.Run("panic in sort less", func(t *testing.T) {
		ctx, dir := budgetCtx(t, 4, 16<<10)
		var n atomic.Int64
		badLess := func(a, b int) bool {
			if n.Add(1) > 50000 { // deep into the spilled merge
				panic("less exploded")
			}
			return a < b
		}
		data := make([]int, 30000)
		for i := range data {
			data[i] = i % 997
		}
		_, err := SortBy(Parallelize(ctx, data, 4), badLess, 0).Collect()
		if err == nil || !strings.Contains(err.Error(), "less exploded") {
			t.Fatalf("want attributed panic error, got %v", err)
		}
		assertBudgetQuiescent(t, ctx)
		assertNoLeftovers(t, dir)
	})
}

// TestNoBudgetTakesInMemoryPath checks the dispatch rule: without a budget
// the registered codecs are inert and nothing spills.
func TestNoBudgetTakesInMemoryPath(t *testing.T) {
	ctx := New(4)
	pairs := spillPairs(5000)
	if _, err := GroupByKey(Parallelize(ctx, pairs, 8)).Collect(); err != nil {
		t.Fatal(err)
	}
	sn := ctx.Stats().Snapshot()
	if sn.BytesSpilled != 0 || sn.SpillRuns != 0 || sn.PeakReservedBytes != 0 {
		t.Fatalf("in-memory run recorded spill activity: %+v", sn)
	}
}

// TestGenerousBudgetSpillsNothing checks a budget above the working set
// keeps everything in the buffering phase — runs are never written, yet
// results flow through the merge machinery unchanged.
func TestGenerousBudgetSpillsNothing(t *testing.T) {
	pairs := spillPairs(2000)
	ctx, dir := budgetCtx(t, 4, 1<<30)
	got, err := GroupByKey(Parallelize(ctx, pairs, 8)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if sn := ctx.Stats().Snapshot(); sn.SpillRuns != 0 {
		t.Fatalf("generous budget still wrote runs: %+v", sn)
	}
	if sn := ctx.Stats().Snapshot(); sn.PeakReservedBytes == 0 {
		t.Fatal("budgeted run should record reservations")
	}
	assertBudgetQuiescent(t, ctx)
	assertNoLeftovers(t, dir)
	want, err := GroupByKey(Parallelize(New(4), pairs, 8)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("group count %d != %d", len(got), len(want))
	}
}
