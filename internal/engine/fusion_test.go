package engine

import (
	"math/rand"
	"strings"
	"testing"
)

// narrowOp is one randomly chosen narrow transformation, applied both to
// the engine dataset and to a plain-slice reference model.
type narrowOp struct {
	name  string
	ds    func(d *Dataset[int]) *Dataset[int]
	model func(in []int) []int
}

var fusionOps = []narrowOp{
	{
		name: "map",
		ds:   func(d *Dataset[int]) *Dataset[int] { return Map(d, func(v int) int { return v*3 + 1 }) },
		model: func(in []int) []int {
			out := make([]int, len(in))
			for i, v := range in {
				out[i] = v*3 + 1
			}
			return out
		},
	},
	{
		name: "filter",
		ds:   func(d *Dataset[int]) *Dataset[int] { return Filter(d, func(v int) bool { return v%3 != 0 }) },
		model: func(in []int) []int {
			var out []int
			for _, v := range in {
				if v%3 != 0 {
					out = append(out, v)
				}
			}
			return out
		},
	},
	{
		name: "flatMap",
		ds: func(d *Dataset[int]) *Dataset[int] {
			return FlatMap(d, func(v int) []int {
				if v%5 == 0 {
					return nil
				}
				return []int{v, -v}
			})
		},
		model: func(in []int) []int {
			var out []int
			for _, v := range in {
				if v%5 == 0 {
					continue
				}
				out = append(out, v, -v)
			}
			return out
		},
	},
	{
		name: "mapPartitions",
		ds: func(d *Dataset[int]) *Dataset[int] {
			return MapPartitions(d, func(_ int, in []int) []int {
				out := make([]int, len(in))
				for i, v := range in {
					out[i] = v + 7
				}
				return out
			})
		},
		model: func(in []int) []int {
			out := make([]int, len(in))
			for i, v := range in {
				out[i] = v + 7
			}
			return out
		},
	},
}

// TestFusionMatchesEagerModel is the fusion-correctness property test: any
// random chain of narrow operators over random input must Collect exactly
// what sequential (eager) application of the same operators yields, and the
// whole chain must execute as one stage.
func TestFusionMatchesEagerModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ctx := New(4)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(300)
		data := make([]int, n)
		for i := range data {
			data[i] = r.Intn(1000) - 500
		}
		nParts := r.Intn(8) // 0 means context parallelism
		d := Parallelize(ctx, data, nParts)
		want := append([]int(nil), data...)
		k := 1 + r.Intn(6)
		var names []string
		for i := 0; i < k; i++ {
			op := fusionOps[r.Intn(len(fusionOps))]
			names = append(names, op.name)
			d = op.ds(d)
			want = op.model(want)
		}
		// MapPartitions sees per-partition slices, so applying its model to
		// the whole input is only equivalent because every fusion op here is
		// element-wise or order-preserving per partition — which also makes
		// the final concatenation order deterministic.
		before := ctx.Stats().Snapshot().Stages
		got, err := d.Collect()
		if err != nil {
			t.Fatalf("trial %d chain %v: %v", trial, names, err)
		}
		if stages := ctx.Stats().Snapshot().Stages - before; stages != 1 {
			t.Fatalf("trial %d chain %v: fused chain ran as %d stages, want 1", trial, names, stages)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d chain %v: len %d, want %d", trial, names, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d chain %v: element %d = %d, want %d", trial, names, i, got[i], want[i])
			}
		}
	}
}

// TestFusedChainIsOneStageWithSourceTasks asserts the acceptance criterion
// directly: a chain of k narrow transformations over an m-partition source
// executes as exactly 1 stage with m tasks.
func TestFusedChainIsOneStageWithSourceTasks(t *testing.T) {
	ctx := New(4)
	ctx.Stats().Reset()
	d := Parallelize(ctx, ints(1000), 5)
	chain := Map(d, func(v int) int { return v + 1 })
	chain = Filter(chain, func(v int) bool { return v%2 == 0 })
	chain2 := FlatMap(chain, func(v int) []int { return []int{v, v} })
	chain2 = Map(chain2, func(v int) int { return v * 2 })
	if got := ctx.Stats().Snapshot().Stages; got != 0 {
		t.Fatalf("no action ran, but %d stages executed", got)
	}
	if _, err := chain2.Collect(); err != nil {
		t.Fatal(err)
	}
	snap := ctx.Stats().Snapshot()
	if snap.Stages != 1 {
		t.Fatalf("stages = %d, want 1", snap.Stages)
	}
	if snap.Tasks != 5 {
		t.Fatalf("tasks = %d, want 5 (one per source partition)", snap.Tasks)
	}
	if len(snap.PerStage) != 1 || snap.PerStage[0].Name != "Map·Filter·FlatMap·Map" {
		t.Fatalf("per-stage breakdown = %+v", snap.PerStage)
	}
	if snap.PerStage[0].Tasks != 5 || snap.PerStage[0].Runs != 1 {
		t.Fatalf("per-stage record = %+v", snap.PerStage[0])
	}
}

// TestFusedPanicNamesOperator asserts that a panic inside a fused stage is
// attributed to the operator that raised it, by kind and position in the
// chain.
func TestFusedPanicNamesOperator(t *testing.T) {
	ctx := New(2)
	d := Parallelize(ctx, ints(100), 4)
	chain := Map(d, func(v int) int { return v + 1 })
	chain = Filter(chain, func(v int) bool {
		if v == 42 {
			panic("filter boom")
		}
		return true
	})
	chain = Map(chain, func(v int) int { return v * 2 })
	_, err := chain.Collect()
	if err == nil {
		t.Fatal("panic should surface as error")
	}
	if !strings.Contains(err.Error(), "Filter#2") {
		t.Errorf("error should name the originating operator Filter#2: %v", err)
	}
	if !strings.Contains(err.Error(), "filter boom") {
		t.Errorf("error should carry the panic value: %v", err)
	}

	// Same chain, panic in the trailing Map instead.
	d2 := Parallelize(ctx, ints(10), 2)
	chain2 := Map(Filter(d2, func(int) bool { return true }), func(v int) int {
		if v == 3 {
			panic("map boom")
		}
		return v
	})
	_, err = chain2.Collect()
	if err == nil || !strings.Contains(err.Error(), "Map#2") {
		t.Errorf("error should name Map#2: %v", err)
	}
}

// TestAccessorsForceExecution covers the lazy-internals fix: Partition and
// NumPartitions on an unexecuted dataset force the plan instead of leaking
// empty pre-execution state.
func TestAccessorsForceExecution(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, ints(20), 4)
	lazy := Map(d, func(v int) int { return v * 10 })
	if n := lazy.NumPartitions(); n != 4 {
		t.Fatalf("NumPartitions = %d, want 4", n)
	}
	total := 0
	for p := 0; p < lazy.NumPartitions(); p++ {
		for _, v := range lazy.Partition(p) {
			total += v
		}
	}
	if total != 1900 {
		t.Fatalf("partition contents not computed: sum = %d, want 1900", total)
	}
}

// TestErrIsAnAction asserts Err forces pending work and caches the result.
func TestErrIsAnAction(t *testing.T) {
	ctx := New(2)
	ctx.Stats().Reset()
	d := Map(Parallelize(ctx, ints(10), 2), func(v int) int { return v + 1 })
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats().Snapshot().Stages != 1 {
		t.Fatalf("Err should have executed the chain: stages = %d", ctx.Stats().Snapshot().Stages)
	}
	// A second action reuses the cache: no new stage.
	if _, err := d.Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats().Snapshot().Stages != 1 {
		t.Fatalf("Collect after Err should reuse the cache: stages = %d", ctx.Stats().Snapshot().Stages)
	}
}

// TestReduceFusesChain asserts Reduce consumes a pending chain in a single
// stage without materializing it.
func TestReduceFusesChain(t *testing.T) {
	ctx := New(4)
	ctx.Stats().Reset()
	d := Parallelize(ctx, ints(100), 4)
	chain := Filter(Map(d, func(v int) int { return v * 2 }), func(v int) bool { return v%4 == 0 })
	sum, err := Reduce(chain, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range ints(100) {
		if (v*2)%4 == 0 {
			want += v * 2
		}
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if got := ctx.Stats().Snapshot().Stages; got != 1 {
		t.Fatalf("fused reduce ran as %d stages, want 1", got)
	}
}

// TestSnapshotAggregatesByName checks the per-stage breakdown groups
// repeated stages under one name.
func TestSnapshotAggregatesByName(t *testing.T) {
	ctx := New(4)
	ctx.Stats().Reset()
	for i := 0; i < 3; i++ {
		kv := KeyBy(Parallelize(ctx, ints(50), 4), func(v int) int { return v % 5 })
		if _, err := GroupByKey(kv).Count(); err != nil {
			t.Fatal(err)
		}
	}
	snap := ctx.Stats().Snapshot()
	byName := map[string]StageStat{}
	for _, st := range snap.PerStage {
		byName[st.Name] = st
	}
	sc, ok := byName["shuffle:scatter"]
	if !ok || sc.Runs != 3 {
		t.Fatalf("shuffle:scatter should aggregate 3 runs: %+v", snap.PerStage)
	}
	ga := byName["shuffle:gather"]
	if ga.RecordsShuffled != 150 {
		t.Fatalf("gather shuffled = %d, want 150", ga.RecordsShuffled)
	}
	if snap.RecordsShuffled != 150 {
		t.Fatalf("total shuffled = %d, want 150", snap.RecordsShuffled)
	}
}
