package engine

// The Observer API is the single observability surface of the system: one
// interface through which the engine (stages, tasks, shuffles, spills), the
// planner (logical->physical compilation), the detection pipelines and the
// repair phases report what they are doing. It replaces the accessor sprawl
// that used to grow on Stats — callers install an Observer once
// (Config.Observer / cleanse.WithObserver) and receive a structured event
// stream instead of stitching counters together afterwards.
//
// Two implementations ship:
//
//   - Stats (this package) is the built-in default: it folds the events into
//     the flat counters and per-stage log that Snapshot reports. It is what
//     every Context uses when no Observer is configured, and it is cheap —
//     nothing on the record-level hot paths, one small allocation per stage,
//     one atomic add per task.
//   - trace.Tracer (internal/trace) builds the full span tree — operator
//     names, wall times, records in/out, bytes spilled, per-worker tracks —
//     and exports it as an EXPLAIN ANALYZE-style plan tree or Chrome
//     trace-event JSON.
//
// When a user Observer is installed the Context tees events to it and to its
// own Stats, so Snapshot stays truthful either way.

// SpanKind classifies a span for observers and exporters.
type SpanKind uint8

const (
	// SpanRun is the root of a traced run.
	SpanRun SpanKind = iota
	// SpanStage is one parallel engine stage (a fused narrow chain, a
	// shuffle scatter/gather, a merge pass, ...).
	SpanStage
	// SpanTask is one partition task inside a stage.
	SpanTask
	// SpanPlan is plan compilation (logical -> physical).
	SpanPlan
	// SpanPipeline is one rule pipeline's detection run.
	SpanPipeline
	// SpanRepair is a repair phase (component discovery, the parallel
	// instances, a reconciliation round).
	SpanRepair
	// SpanRound is one detect-repair iteration of the cleansing loop.
	SpanRound
	// SpanNet is one networked-exchange operation of the multi-process
	// backend (a distributed shuffle, cartesian or recovery action).
	SpanNet
)

// String names the kind for exporters (Chrome trace categories).
func (k SpanKind) String() string {
	switch k {
	case SpanRun:
		return "run"
	case SpanStage:
		return "stage"
	case SpanTask:
		return "task"
	case SpanPlan:
		return "plan"
	case SpanPipeline:
		return "pipeline"
	case SpanRepair:
		return "repair"
	case SpanRound:
		return "round"
	case SpanNet:
		return "net"
	default:
		return "span"
	}
}

// Attr identifies one integer attribute of a span. Attributes are small
// enum keys (not strings) so reporting one is a plain store, never an
// allocation.
type Attr uint8

const (
	// AttrPartitions is the task count of a stage.
	AttrPartitions Attr = iota
	// AttrPart is the partition index of a task.
	AttrPart
	// AttrWorker is the worker (track) a task ran on.
	AttrWorker
	// AttrRecordsIn / AttrRecordsOut bracket a span's record flow.
	AttrRecordsIn
	AttrRecordsOut
	// AttrRecordsShuffled counts records moved across partitions.
	AttrRecordsShuffled
	// AttrBytesSpilled / AttrSpillRuns / AttrMergePasses describe a span's
	// out-of-core activity.
	AttrBytesSpilled
	AttrSpillRuns
	AttrMergePasses
	// AttrViolations / AttrFixes summarize a detection pipeline.
	AttrViolations
	AttrFixes
	// AttrDetectNanos / AttrGenFixNanos are the cumulative UDF times of a
	// pipeline (only measured when an Observer is installed).
	AttrDetectNanos
	AttrGenFixNanos
	// AttrPipelines / AttrSharedScans summarize plan compilation.
	AttrPipelines
	AttrSharedScans
	// AttrComponents / AttrSplitComponents / AttrConflicts /
	// AttrAssignments summarize a repair phase.
	AttrComponents
	AttrSplitComponents
	AttrConflicts
	AttrAssignments
	// AttrNetBytesSent / AttrNetBytesRecv bracket the socket traffic of a
	// networked-exchange span; AttrNetRetries counts its RPC retries,
	// AttrNetRedispatches its straggler re-dispatches and AttrNetRecoveries
	// the worker deaths it recovered from.
	AttrNetBytesSent
	AttrNetBytesRecv
	AttrNetRetries
	AttrNetRedispatches
	AttrNetRecoveries
	// AttrAlgorithm identifies which repair algorithm a repair span ran
	// (a repair.Algo* code).
	AttrAlgorithm
	// AttrVariables / AttrFactors size a probabilistic repair's compiled
	// factor graph; AttrSamples / AttrAccepted summarize its Gibbs run
	// (recorded sweeps, value-changing draws); AttrExamples / AttrEpochs
	// describe its weight-learning pass.
	AttrVariables
	AttrFactors
	AttrSamples
	AttrAccepted
	AttrExamples
	AttrEpochs
	// AttrPairs counts the candidate items a detection pipeline enumerated
	// (one per Detect invocation; only measured when an Observer is
	// installed). The cost-based planner feeds measured pair counts back
	// into its estimates (core.FeedbackRecorder).
	AttrPairs

	// NumAttrs bounds the enum; implementations may use it to size arrays.
	NumAttrs
)

// String names the attribute for exporters.
func (a Attr) String() string {
	switch a {
	case AttrPartitions:
		return "partitions"
	case AttrPart:
		return "part"
	case AttrWorker:
		return "worker"
	case AttrRecordsIn:
		return "records_in"
	case AttrRecordsOut:
		return "records_out"
	case AttrRecordsShuffled:
		return "shuffled"
	case AttrBytesSpilled:
		return "bytes_spilled"
	case AttrSpillRuns:
		return "spill_runs"
	case AttrMergePasses:
		return "merge_passes"
	case AttrViolations:
		return "violations"
	case AttrFixes:
		return "fixes"
	case AttrDetectNanos:
		return "detect_ns"
	case AttrGenFixNanos:
		return "genfix_ns"
	case AttrPipelines:
		return "pipelines"
	case AttrSharedScans:
		return "shared_scans"
	case AttrComponents:
		return "components"
	case AttrSplitComponents:
		return "split_components"
	case AttrConflicts:
		return "conflicts"
	case AttrAssignments:
		return "assignments"
	case AttrNetBytesSent:
		return "net_bytes_sent"
	case AttrNetBytesRecv:
		return "net_bytes_recv"
	case AttrNetRetries:
		return "net_retries"
	case AttrNetRedispatches:
		return "net_redispatches"
	case AttrNetRecoveries:
		return "net_recoveries"
	case AttrAlgorithm:
		return "algorithm"
	case AttrVariables:
		return "variables"
	case AttrFactors:
		return "factors"
	case AttrSamples:
		return "samples"
	case AttrAccepted:
		return "accepted"
	case AttrExamples:
		return "examples"
	case AttrEpochs:
		return "epochs"
	case AttrPairs:
		return "pairs"
	default:
		return "attr"
	}
}

// Metric identifies one flat run-wide counter, for events that are not tied
// to a span (records ingested by Parallelize, spill totals, the budget
// high-water mark).
type Metric uint8

const (
	MetricRecordsRead Metric = iota
	MetricRecordsShuffled
	MetricBytesSpilled
	MetricSpillRuns
	MetricMergePasses
	// MetricPeakReservedBytes folds with max, not sum.
	MetricPeakReservedBytes
	// Networked-backend counters: socket bytes in each direction, TCP
	// dials, RPC retries after timeouts/failures, straggler re-dispatches,
	// and worker-death recoveries (re-placement from coordinator lineage).
	MetricNetBytesSent
	MetricNetBytesRecv
	MetricNetDials
	MetricNetRetries
	MetricNetStragglers
	MetricNetRecoveries

	// NumMetrics bounds the enum.
	NumMetrics
)

// String names the metric for exporters.
func (m Metric) String() string {
	switch m {
	case MetricRecordsRead:
		return "records_read"
	case MetricRecordsShuffled:
		return "records_shuffled"
	case MetricBytesSpilled:
		return "bytes_spilled"
	case MetricSpillRuns:
		return "spill_runs"
	case MetricMergePasses:
		return "merge_passes"
	case MetricPeakReservedBytes:
		return "peak_reserved_bytes"
	case MetricNetBytesSent:
		return "net_bytes_sent"
	case MetricNetBytesRecv:
		return "net_bytes_recv"
	case MetricNetDials:
		return "net_dials"
	case MetricNetRetries:
		return "net_retries"
	case MetricNetStragglers:
		return "net_stragglers"
	case MetricNetRecoveries:
		return "net_recoveries"
	default:
		return "metric"
	}
}

// Span is one timed region of work reported to an Observer. The goroutine
// that begins a span owns it: it sets attributes and calls End exactly once
// (End must run even when the spanned work panics — callers defer it).
// Implementations may aggregate or drop whatever they do not care about.
type Span interface {
	// Attr reports one integer attribute of the span.
	Attr(k Attr, v int64)
	// End closes the span. Implementations must tolerate duplicate Ends.
	End()
}

// Observer receives the execution events of one run. Implementations must
// be safe for concurrent use: tasks of a stage begin and end their spans
// from the worker goroutines.
type Observer interface {
	// BeginSpan opens a span. A nil parent parents the span to the
	// observer's current scope (the innermost open non-task span) — layers
	// that do not know their caller pass nil and still nest correctly,
	// because the stack above them (cleansing round -> pipeline -> stage)
	// begins and ends spans in LIFO order. Concurrent spans (stage tasks,
	// parallel repair instances) must pass their parent explicitly.
	BeginSpan(parent Span, name string, kind SpanKind) Span
	// Count folds one flat counter delta (MetricPeakReservedBytes folds
	// with max).
	Count(m Metric, v int64)
}

// Discard is an Observer that drops every event. It is the zero-overhead
// sink for layers handed an optional Observer.
var Discard Observer = discardObserver{}

type discardObserver struct{}

func (discardObserver) BeginSpan(Span, string, SpanKind) Span { return discardSpan{} }
func (discardObserver) Count(Metric, int64)                   {}

type discardSpan struct{}

func (discardSpan) Attr(Attr, int64) {}
func (discardSpan) End()             {}

// Tee fans events out to several observers; spans begun on the tee begin a
// span on every branch. The Context uses it to keep Stats counting while a
// user Observer (e.g. a tracer) is installed.
func Tee(obs ...Observer) Observer {
	flat := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o == nil || o == Discard {
			continue
		}
		flat = append(flat, o)
	}
	switch len(flat) {
	case 0:
		return Discard
	case 1:
		return flat[0]
	}
	return &teeObserver{obs: flat}
}

type teeObserver struct{ obs []Observer }

type teeSpan struct{ spans []Span }

func (t *teeObserver) BeginSpan(parent Span, name string, kind SpanKind) Span {
	ts := &teeSpan{spans: make([]Span, len(t.obs))}
	pts, _ := parent.(*teeSpan)
	for i, o := range t.obs {
		var p Span
		if pts != nil {
			p = pts.spans[i]
		}
		ts.spans[i] = o.BeginSpan(p, name, kind)
	}
	return ts
}

func (t *teeObserver) Count(m Metric, v int64) {
	for _, o := range t.obs {
		o.Count(m, v)
	}
}

func (ts *teeSpan) Attr(k Attr, v int64) {
	for _, s := range ts.spans {
		s.Attr(k, v)
	}
}

func (ts *teeSpan) End() {
	for _, s := range ts.spans {
		s.End()
	}
}
