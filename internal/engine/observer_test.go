package engine

import (
	"strings"
	"sync"
	"testing"
)

// recObserver is a minimal recording Observer for tests: it counts span
// begins/ends and keeps the reported attributes.
type recObserver struct {
	mu     sync.Mutex
	begun  int
	ended  int
	spans  []*recSpan
	counts map[Metric]int64
}

type recSpan struct {
	obs    *recObserver
	name   string
	kind   SpanKind
	parent *recSpan
	attrs  map[Attr]int64
	ended  bool
}

func newRecObserver() *recObserver {
	return &recObserver{counts: map[Metric]int64{}}
}

func (o *recObserver) BeginSpan(parent Span, name string, kind SpanKind) Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.begun++
	p, _ := parent.(*recSpan)
	sp := &recSpan{obs: o, name: name, kind: kind, parent: p, attrs: map[Attr]int64{}}
	o.spans = append(o.spans, sp)
	return sp
}

func (o *recObserver) Count(m Metric, v int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.counts[m] += v
}

func (s *recSpan) Attr(k Attr, v int64) {
	s.obs.mu.Lock()
	defer s.obs.mu.Unlock()
	s.attrs[k] = v
}

func (s *recSpan) End() {
	s.obs.mu.Lock()
	defer s.obs.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.obs.ended++
	}
}

func (o *recObserver) leaked(t *testing.T) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.begun != o.ended {
		t.Errorf("span leak: %d begun, %d ended", o.begun, o.ended)
		for _, sp := range o.spans {
			if !sp.ended {
				t.Errorf("  open span %q (%v)", sp.name, sp.kind)
			}
		}
	}
}

// TestObserverSeesStagesAndTasks checks the event stream of a simple
// two-stage job: stage spans on the driver, one task span per partition
// parented to its stage, and record counts that reconcile with Stats.
func TestObserverSeesStagesAndTasks(t *testing.T) {
	rec := newRecObserver()
	ctx := NewWithConfig(Config{Parallelism: 4, Observer: rec})
	data := make([]int, 100)
	for i := range data {
		data[i] = i % 10
	}
	d := Map(Parallelize(ctx, data, 4), func(v int) int { return v })
	g := GroupByKey(KeyBy(d, func(v int) int { return v }))
	if _, err := g.Collect(); err != nil {
		t.Fatal(err)
	}
	rec.leaked(t)

	rec.mu.Lock()
	defer rec.mu.Unlock()
	var stages, tasks int
	var taskIn int64
	var firstStage *recSpan
	for _, sp := range rec.spans {
		switch sp.kind {
		case SpanStage:
			stages++
			if firstStage == nil {
				firstStage = sp
			}
		case SpanTask:
			tasks++
			if sp.parent == nil || sp.parent.kind != SpanStage {
				t.Errorf("task span %q not parented to a stage", sp.name)
			}
			if sp.parent == firstStage {
				taskIn += sp.attrs[AttrRecordsIn]
			}
		}
	}
	if stages == 0 || tasks == 0 {
		t.Fatalf("stages=%d tasks=%d, want both > 0", stages, tasks)
	}
	snap := ctx.Stats().Snapshot()
	if snap.Tasks != int64(tasks) {
		t.Errorf("observer saw %d tasks, Stats counted %d", tasks, snap.Tasks)
	}
	if snap.Stages != int64(stages) {
		t.Errorf("observer saw %d stages, Stats counted %d", stages, snap.Stages)
	}
	if taskIn != 100 {
		t.Errorf("Map stage task records_in sum = %d, want 100", taskIn)
	}
	if rec.counts[MetricRecordsRead] != 100 {
		t.Errorf("MetricRecordsRead = %d, want 100", rec.counts[MetricRecordsRead])
	}
}

// TestObserverSpanHygieneOnPanic mirrors error_test.go: a panicking
// operator must fail the stage with an attributed error AND leave no open
// spans behind.
func TestObserverSpanHygieneOnPanic(t *testing.T) {
	rec := newRecObserver()
	ctx := NewWithConfig(Config{Parallelism: 4, Observer: rec})
	d := Map(Parallelize(ctx, []int{1, 2, 3, 4, 5, 6, 7, 8}, 4), func(v int) int {
		if v == 5 {
			panic("boom")
		}
		return v
	})
	_, err := d.Collect()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", err)
	}
	rec.leaked(t)
}

// TestObserverSpanHygieneOnShufflePanic exercises the wide-op paths.
func TestObserverSpanHygieneOnShufflePanic(t *testing.T) {
	rec := newRecObserver()
	ctx := NewWithConfig(Config{Parallelism: 4, Observer: rec})
	d := KeyBy(Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 3), func(v int) int {
		if v == 4 {
			panic("bad key")
		}
		return v % 2
	})
	if _, err := GroupByKey(d).Collect(); err == nil {
		t.Fatal("want error from panicking key extractor")
	}
	rec.leaked(t)
}

// TestStatsIsDefaultObserver: without a configured Observer, the context
// reports to its own Stats and Instrumented stays false.
func TestStatsIsDefaultObserver(t *testing.T) {
	ctx := New(4)
	if ctx.Instrumented() {
		t.Error("Instrumented() = true without a user Observer")
	}
	if ctx.Observer() != ctx.Stats() {
		t.Error("default Observer should be the context's Stats")
	}
	d := Parallelize(ctx, []int{1, 2, 3}, 3)
	if _, err := d.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Stats().Snapshot().RecordsRead; got != 3 {
		t.Errorf("RecordsRead = %d, want 3", got)
	}
}

// TestTeeKeepsStatsTruthful: with a user Observer installed, Stats must
// keep counting exactly as it would alone.
func TestTeeKeepsStatsTruthful(t *testing.T) {
	plain := New(4)
	rec := newRecObserver()
	traced := NewWithConfig(Config{Parallelism: 4, Observer: rec})
	if !traced.Instrumented() {
		t.Error("Instrumented() = false with a user Observer")
	}
	data := make([]int, 50)
	for i := range data {
		data[i] = i
	}
	for _, ctx := range []*Context{plain, traced} {
		g := GroupByKey(KeyBy(Parallelize(ctx, data, 4), func(v int) int { return v % 5 }))
		if _, err := g.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	a, b := plain.Stats().Snapshot(), traced.Stats().Snapshot()
	if a.Stages != b.Stages || a.Tasks != b.Tasks ||
		a.RecordsRead != b.RecordsRead || a.RecordsShuffled != b.RecordsShuffled {
		t.Errorf("teed Stats diverged:\nplain:  %+v\ntraced: %+v", a, b)
	}
}

// TestSnapshotStageOrderDeterministic: the per-stage report must come out
// ordered by first-execution stage id, not wall time or map order.
func TestSnapshotStageOrderDeterministic(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, []int{3, 1, 2}, 3)
	sorted, err := SortBy(d, func(a, b int) bool { return a < b }, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != 3 {
		t.Fatalf("sorted = %v", sorted)
	}
	snap := ctx.Stats().Snapshot()
	for i, st := range snap.PerStage {
		if st.ID != i {
			t.Errorf("PerStage[%d].ID = %d, want %d (ordered by stage id)", i, st.ID, i)
		}
	}
	// The text report lists stages in id order too.
	text := snap.String()
	lastIdx := -1
	for i := range snap.PerStage {
		idx := strings.Index(text, snap.PerStage[i].Name)
		if idx < 0 {
			t.Fatalf("stage %q missing from report:\n%s", snap.PerStage[i].Name, text)
		}
		if idx < lastIdx {
			t.Errorf("stage %q printed out of id order:\n%s", snap.PerStage[i].Name, text)
		}
		lastIdx = idx
	}
}

// TestDeprecatedGettersMatchSnapshot: the old accessors must stay truthful
// shims over Snapshot.
func TestDeprecatedGettersMatchSnapshot(t *testing.T) {
	ctx := New(4)
	g := GroupByKey(KeyBy(Parallelize(ctx, []int{1, 2, 3, 4}, 2), func(v int) int { return v % 2 }))
	if _, err := g.Collect(); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stats()
	snap := s.Snapshot()
	if s.Tasks() != snap.Tasks || s.Stages() != snap.Stages ||
		s.RecordsRead() != snap.RecordsRead || s.RecordsShuffled() != snap.RecordsShuffled ||
		s.BytesSpilled() != snap.BytesSpilled || s.SpillRuns() != snap.SpillRuns ||
		s.MergePasses() != snap.MergePasses || s.PeakReservedBytes() != snap.PeakReservedBytes {
		t.Errorf("deprecated getters diverge from Snapshot: %+v", snap)
	}
}

// noopObserver is the cheapest possible user observer, for overhead
// benchmarks: real method calls, no recording.
type noopObserver struct{}

func (noopObserver) BeginSpan(Span, string, SpanKind) Span { return noopSpan{} }
func (noopObserver) Count(Metric, int64)                   {}

type noopSpan struct{}

func (noopSpan) Attr(Attr, int64) {}
func (noopSpan) End()             {}

func benchGroupByKeyWith(b *testing.B, cfg Config) {
	data := make([]Pair[int, int], 100_000)
	for i := range data {
		data[i] = KV(i%1000, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewWithConfig(cfg)
		g := GroupByKey(Parallelize(ctx, data, 8))
		if _, err := g.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByKeyObserverOff is the overhead guard baseline: the
// default Stats-only path.
func BenchmarkGroupByKeyObserverOff(b *testing.B) {
	benchGroupByKeyWith(b, Config{Parallelism: 8})
}

// BenchmarkGroupByKeyObserverOn measures the teed no-op observer; the gap
// to ObserverOff is the price of installing an Observer (budget: <=2%).
func BenchmarkGroupByKeyObserverOn(b *testing.B) {
	benchGroupByKeyWith(b, Config{Parallelism: 8, Observer: noopObserver{}})
}
