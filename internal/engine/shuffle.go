package engine

import "sync"

// shuffleScratch holds the per-task index arrays of one scatter pass. The
// arrays are sized to the partition being scattered and reused across
// stages via a sync.Pool, so steady-state shuffles allocate only the
// buckets they hand downstream, not their working memory.
type shuffleScratch struct {
	dsts   []uint32
	counts []int
}

var scratchPool = sync.Pool{New: func() any { return new(shuffleScratch) }}

// grab returns the pooled scratch with dsts sized to rows and counts sized
// (and zeroed) to n destinations.
func grabScratch(rows, n int) *shuffleScratch {
	s := scratchPool.Get().(*shuffleScratch)
	if cap(s.dsts) < rows {
		s.dsts = make([]uint32, rows)
	}
	s.dsts = s.dsts[:rows]
	if cap(s.counts) < n {
		s.counts = make([]int, n)
	} else {
		s.counts = s.counts[:n]
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
	return s
}

// Pair is a key-value record, the currency of wide transformations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KV builds a Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Value: v} }

// KeyBy turns a dataset into a pair dataset using a key extractor.
func KeyBy[T any, K comparable](d *Dataset[T], key func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, func(t T) Pair[K, T] { return KV(key(t), t) })
}

// shuffleByKey hash-partitions pairs into n buckets by key. This is the wide
// dependency every group/join transformation shares: each input partition
// scatters its records, then the buckets are concatenated per target. It
// forces the input (running any pending narrow chain as one fused stage).
// Scatter computes each record's destination once into an index array and
// sizes every per-destination bucket exactly before filling it; gather
// preallocates each output bucket to its exact total — the shuffle path
// performs no growing appends.
func shuffleByKey[K comparable, V any](d *Dataset[Pair[K, V]], n int) ([][]Pair[K, V], error) {
	if n <= 0 {
		n = d.ctx.parallelism
	}
	parts, err := d.forced()
	if err != nil {
		return nil, err
	}
	// Networked regime: the codec-encoded records cross process boundaries
	// through the exchange; destinations are computed coordinator-side
	// (the key hash), so workers never need type knowledge. Takes
	// precedence over the spill regime — the workers are where the memory
	// lives on that backend.
	if d.ctx.exchange != nil {
		if kc, ok := codecFor[K](); ok {
			if vc, ok := codecFor[V](); ok {
				return netScatter(d.ctx, "shuffle", parts, n, pairCodec(kc, vc),
					func(p Pair[K, V]) int { return int(hashKey(p.Key) % uint64(n)) })
			}
		}
	}
	if d.ctx.mem != nil {
		if kc, ok := codecFor[K](); ok {
			if vc, ok := codecFor[V](); ok {
				return scatterSpill(d.ctx, "shuffle", parts, n,
					func(p Pair[K, V]) int { return int(hashKey(p.Key) % uint64(n)) },
					pairCodec(kc, vc), nil)
			}
		}
	}
	// scatter[src][dst] collects records from source partition src bound for
	// destination dst; writing per-source keeps the stage lock-free.
	scatter := make([][][]Pair[K, V], len(parts))
	err = d.ctx.runStage("shuffle:scatter", len(parts), func(tk *taskCtx) {
		in := parts[tk.part]
		tk.recordsIn = int64(len(in))
		scratch := grabScratch(len(in), n)
		defer scratchPool.Put(scratch) // deferred so an operator panic still returns it
		dsts, counts := scratch.dsts, scratch.counts
		for i, kv := range in {
			dst := uint32(hashKey(kv.Key) % uint64(n))
			dsts[i] = dst
			counts[dst]++
		}
		local := make([][]Pair[K, V], n)
		for dst, c := range counts {
			if c > 0 {
				local[dst] = make([]Pair[K, V], 0, c)
			}
		}
		for i, kv := range in {
			local[dsts[i]] = append(local[dsts[i]], kv)
		}
		scatter[tk.part] = local
		tk.recordsOut = int64(len(in))
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Pair[K, V], n)
	gerr := d.ctx.runStage("shuffle:gather", n, func(tk *taskCtx) {
		dst := tk.part
		total := 0
		for src := range scatter {
			total += len(scatter[src][dst])
		}
		bucket := make([]Pair[K, V], 0, total)
		for src := range scatter {
			bucket = append(bucket, scatter[src][dst]...)
		}
		tk.shuffled += int64(total)
		tk.recordsOut = int64(total)
		out[dst] = bucket
	})
	if gerr != nil {
		return nil, gerr
	}
	return out, nil
}

// GroupByKey shuffles pairs and groups the values of each key, like Spark's
// groupByKey. The result has one Pair per distinct key. It is a stage
// boundary: the input's pending narrow chain runs (fused) before the
// shuffle, and the grouped result is materialized.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	// Out-of-core regime: sort-spill-merge instead of buckets plus a per-key
	// map. Group iteration order differs from the in-memory path (merge
	// order instead of first-seen order); within-group value order is
	// identical. The networked backend skips it — its shuffle already
	// bounds coordinator memory at one destination partition per task, and
	// grouping over the net-gathered buckets below matches the in-memory
	// path exactly.
	if d.ctx.mem != nil && d.ctx.exchange == nil {
		if kc, ok := codecFor[K](); ok {
			if vc, ok := codecFor[V](); ok {
				return groupByKeyExternal(d, kc, vc)
			}
		}
	}
	buckets, err := shuffleByKey(d, d.ctx.parallelism)
	if err != nil {
		return errDataset[Pair[K, []V]](d.ctx, err)
	}
	out := make([][]Pair[K, []V], len(buckets))
	gerr := d.ctx.runStage("groupByKey", len(buckets), func(tk *taskCtx) {
		p := tk.part
		// One map lookup per record: the map holds indexes into the result
		// slice (which doubles as the first-seen key order), so existing
		// keys cost a single hash instead of a seen-check plus two accesses
		// — the difference is visible with struct keys, which lack the
		// runtime's specialized string fast path.
		idx := make(map[K]int32, 64)
		res := make([]Pair[K, []V], 0, 64)
		tk.recordsIn = int64(len(buckets[p]))
		for _, kv := range buckets[p] {
			if gi, seen := idx[kv.Key]; seen {
				res[gi].Value = append(res[gi].Value, kv.Value)
			} else {
				idx[kv.Key] = int32(len(res))
				res = append(res, KV(kv.Key, []V{kv.Value}))
			}
		}
		out[p] = res
		tk.recordsOut = int64(len(res))
	})
	if gerr != nil {
		return errDataset[Pair[K, []V]](d.ctx, gerr)
	}
	return fromParts(d.ctx, out)
}

// ReduceByKey combines values per key with a map-side combine before the
// shuffle, the optimization the distributed equivalence-class algorithm's
// word-count structure relies on (Section 5.2). The combine fuses into the
// input's pending narrow chain.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], combine func(a, b V) V) *Dataset[Pair[K, V]] {
	// Out-of-core regime: stream the merged runs through the combiner
	// directly, never materializing groups. Skipped on the networked
	// backend (see GroupByKey).
	if d.ctx.mem != nil && d.ctx.exchange == nil {
		if kc, ok := codecFor[K](); ok {
			if vc, ok := codecFor[V](); ok {
				return reduceByKeyExternal(d, combine, kc, vc)
			}
		}
	}
	// Map-side combine (narrow, fuses with whatever precedes it). Like
	// groupByKey, the map indexes the result slice so each record costs one
	// lookup and combining writes through the slice, not the map.
	pre := MapPartitions(d, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		idx := make(map[K]int32, 64)
		res := make([]Pair[K, V], 0, 64)
		for _, kv := range in {
			if gi, seen := idx[kv.Key]; seen {
				res[gi].Value = combine(res[gi].Value, kv.Value)
			} else {
				idx[kv.Key] = int32(len(res))
				res = append(res, kv)
			}
		}
		return res
	})
	grouped := GroupByKey(pre)
	return Map(grouped, func(g Pair[K, []V]) Pair[K, V] {
		acc := g.Value[0]
		for _, v := range g.Value[1:] {
			acc = combine(acc, v)
		}
		return KV(g.Key, acc)
	})
}

// CoGroup shuffles two pair datasets together and, per key, collects the
// values from each side into bags — Pig's COGROUP, the model for the
// paper's CoBlock enhancer. It is a stage boundary for both inputs.
func CoGroup[K comparable, A, B any](da *Dataset[Pair[K, A]], db *Dataset[Pair[K, B]]) *Dataset[Pair[K, CoGrouped[A, B]]] {
	ctx := da.ctx
	n := ctx.parallelism
	ba, err := shuffleByKey(da, n)
	if err != nil {
		return errDataset[Pair[K, CoGrouped[A, B]]](ctx, err)
	}
	bb, err := shuffleByKey(db, n)
	if err != nil {
		return errDataset[Pair[K, CoGrouped[A, B]]](ctx, err)
	}
	out := make([][]Pair[K, CoGrouped[A, B]], n)
	gerr := ctx.runStage("coGroup", n, func(tk *taskCtx) {
		p := tk.part
		groups := make(map[K]*CoGrouped[A, B])
		var order []K
		for _, kv := range ba[p] {
			g, seen := groups[kv.Key]
			if !seen {
				g = &CoGrouped[A, B]{}
				groups[kv.Key] = g
				order = append(order, kv.Key)
			}
			g.Left = append(g.Left, kv.Value)
		}
		for _, kv := range bb[p] {
			g, seen := groups[kv.Key]
			if !seen {
				g = &CoGrouped[A, B]{}
				groups[kv.Key] = g
				order = append(order, kv.Key)
			}
			g.Right = append(g.Right, kv.Value)
		}
		res := make([]Pair[K, CoGrouped[A, B]], 0, len(order))
		for _, k := range order {
			res = append(res, KV(k, *groups[k]))
		}
		tk.recordsIn = int64(len(ba[p]) + len(bb[p]))
		out[p] = res
		tk.recordsOut = int64(len(res))
	})
	if gerr != nil {
		return errDataset[Pair[K, CoGrouped[A, B]]](ctx, gerr)
	}
	return fromParts(ctx, out)
}

// CoGrouped holds the per-key bags produced by CoGroup.
type CoGrouped[A, B any] struct {
	Left  []A
	Right []B
}

// Join computes the inner equi-join of two pair datasets. The pair
// expansion after the co-group is lazy and fuses with downstream narrow
// transformations.
func Join[K comparable, A, B any](da *Dataset[Pair[K, A]], db *Dataset[Pair[K, B]]) *Dataset[Pair[K, JoinRow[A, B]]] {
	cg := CoGroup(da, db)
	return FlatMap(cg, func(g Pair[K, CoGrouped[A, B]]) []Pair[K, JoinRow[A, B]] {
		if len(g.Value.Left) == 0 || len(g.Value.Right) == 0 {
			return nil
		}
		out := make([]Pair[K, JoinRow[A, B]], 0, len(g.Value.Left)*len(g.Value.Right))
		for _, a := range g.Value.Left {
			for _, b := range g.Value.Right {
				out = append(out, KV(g.Key, JoinRow[A, B]{Left: a, Right: b}))
			}
		}
		return out
	})
}

// JoinRow is one matched pair from Join.
type JoinRow[A, B any] struct {
	Left  A
	Right B
}

// Distinct removes duplicates using a key function to identify elements.
func Distinct[T any, K comparable](d *Dataset[T], key func(T) K) *Dataset[T] {
	kv := KeyBy(d, key)
	grouped := GroupByKey(kv)
	return Map(grouped, func(g Pair[K, []T]) T { return g.Value[0] })
}
