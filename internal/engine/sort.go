package engine

import (
	"sort"
)

// SortBy globally sorts the dataset: elements are range-partitioned using
// sampled boundaries, then each partition is sorted locally — the same
// sample-sort structure as Spark's sortByKey. The result's partitions are
// ordered: every element of partition i precedes every element of
// partition i+1 under less.
func SortBy[T any](d *Dataset[T], less func(a, b T) bool, n int) *Dataset[T] {
	if d.err != nil {
		return d
	}
	if n <= 0 {
		n = d.ctx.parallelism
	}
	rp := RangePartitionBy(d, less, n)
	if rp.err != nil {
		return rp
	}
	return MapPartitions(rp, func(_ int, in []T) []T {
		out := make([]T, len(in))
		copy(out, in)
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out
	})
}

// RangePartitionBy redistributes elements into n partitions such that all
// elements of partition i precede those of partition i+1 under less, without
// sorting within partitions. Boundaries are chosen by deterministic sampling
// (every k-th element), good enough for the balanced partitioning OCJoin's
// partitioning phase requires.
func RangePartitionBy[T any](d *Dataset[T], less func(a, b T) bool, n int) *Dataset[T] {
	if d.err != nil {
		return d
	}
	if n <= 0 {
		n = d.ctx.parallelism
	}
	total := 0
	for _, p := range d.parts {
		total += len(p)
	}
	if total == 0 {
		return fromParts(d.ctx, make([][]T, n))
	}
	if n == 1 {
		all, _ := d.Collect()
		return fromParts(d.ctx, [][]T{all})
	}

	// Sample ~32 candidates per output partition, deterministically.
	sampleTarget := 32 * n
	step := total / sampleTarget
	if step < 1 {
		step = 1
	}
	var sample []T
	i := 0
	for _, p := range d.parts {
		for _, v := range p {
			if i%step == 0 {
				sample = append(sample, v)
			}
			i++
		}
	}
	sort.SliceStable(sample, func(a, b int) bool { return less(sample[a], sample[b]) })
	// n-1 boundaries at sample quantiles.
	bounds := make([]T, 0, n-1)
	for k := 1; k < n; k++ {
		idx := k * len(sample) / n
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		bounds = append(bounds, sample[idx])
	}

	target := func(v T) int {
		// First boundary strictly greater than v determines the partition.
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if less(v, bounds[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}

	scatter := make([][][]T, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(p int) {
		local := make([][]T, n)
		for _, v := range d.parts[p] {
			dst := target(v)
			local[dst] = append(local[dst], v)
		}
		scatter[p] = local
	})
	if err != nil {
		return errDataset[T](d.ctx, err)
	}
	out := make([][]T, n)
	gerr := d.ctx.runParts(n, func(dst int) {
		var bucket []T
		for src := range scatter {
			bucket = append(bucket, scatter[src][dst]...)
		}
		d.ctx.stats.recordsShuffled.Add(int64(len(bucket)))
		out[dst] = bucket
	})
	if gerr != nil {
		return errDataset[T](d.ctx, gerr)
	}
	return fromParts(d.ctx, out)
}
