package engine

import (
	"sort"
)

// SortBy globally sorts the dataset: elements are range-partitioned using
// sampled boundaries, then each partition is sorted locally — the same
// sample-sort structure as Spark's sortByKey. The result's partitions are
// ordered: every element of partition i precedes every element of
// partition i+1 under less. The range partitioning is a stage boundary; the
// local sorts are a narrow stage fused over it. Under a memory budget (and
// a registered codec for T) this becomes a true external merge sort.
func SortBy[T any](d *Dataset[T], less func(a, b T) bool, n int) *Dataset[T] {
	if n <= 0 {
		n = d.ctx.parallelism
	}
	// The external merge sort is an in-process algorithm; on the networked
	// backend the range scatter below moves the data through the workers
	// and the local sorts stay coordinator-side.
	if d.ctx.mem != nil && d.ctx.exchange == nil {
		if c, ok := codecFor[T](); ok {
			return sortByExternal(d, less, n, c)
		}
	}
	rp := RangePartitionBy(d, less, n)
	return MapPartitions(rp, func(_ int, in []T) []T {
		out := make([]T, len(in))
		copy(out, in)
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out
	})
}

// RangePartitionBy redistributes elements into n partitions such that all
// elements of partition i precede those of partition i+1 under less, without
// sorting within partitions. Boundaries are chosen by deterministic sampling
// (every k-th element), good enough for the balanced partitioning OCJoin's
// partitioning phase requires. It is a stage boundary: the input is forced
// (running any pending narrow chain as one fused stage) before sampling.
// Under a memory budget the scatter spills to disk; the output is
// element-for-element identical to the in-memory path's.
func RangePartitionBy[T any](d *Dataset[T], less func(a, b T) bool, n int) *Dataset[T] {
	if n <= 0 {
		n = d.ctx.parallelism
	}
	dparts, err := d.forced()
	if err != nil {
		return d
	}
	total := 0
	for _, p := range dparts {
		total += len(p)
	}
	if total == 0 {
		return fromParts(d.ctx, make([][]T, n))
	}
	if n == 1 {
		all, _ := d.Collect()
		return fromParts(d.ctx, [][]T{all})
	}

	bounds := sampleBounds(dparts, total, n, less)
	target := boundsTarget(bounds, less)

	// Networked regime: the range scatter moves its encoded records
	// through the worker processes, preserving (source, record) order per
	// destination like the in-memory path.
	if d.ctx.exchange != nil {
		if c, ok := codecFor[T](); ok {
			out, serr := netScatter(d.ctx, "rangePartition", dparts, n, c,
				func(v T) int { return target(v) })
			if serr != nil {
				return errDataset[T](d.ctx, serr)
			}
			return fromParts(d.ctx, out)
		}
	}

	if d.ctx.mem != nil && d.ctx.exchange == nil {
		if c, ok := codecFor[T](); ok {
			out, serr := scatterSpill(d.ctx, "rangePartition", dparts, n, target, c, nil)
			if serr != nil {
				return errDataset[T](d.ctx, serr)
			}
			return fromParts(d.ctx, out)
		}
	}

	// Scatter with exact bucket sizing (destination indexes are computed
	// once, then each bucket is allocated at its final capacity).
	scatter := make([][][]T, len(dparts))
	err = d.ctx.runStage("rangePartition:scatter", len(dparts), func(tk *taskCtx) {
		in := dparts[tk.part]
		tk.recordsIn = int64(len(in))
		dsts := make([]uint32, len(in))
		counts := make([]int, n)
		for i, v := range in {
			dst := uint32(target(v))
			dsts[i] = dst
			counts[dst]++
		}
		local := make([][]T, n)
		for dst, c := range counts {
			if c > 0 {
				local[dst] = make([]T, 0, c)
			}
		}
		for i, v := range in {
			local[dsts[i]] = append(local[dsts[i]], v)
		}
		scatter[tk.part] = local
		tk.recordsOut = int64(len(in))
	})
	if err != nil {
		return errDataset[T](d.ctx, err)
	}
	out := make([][]T, n)
	gerr := d.ctx.runStage("rangePartition:gather", n, func(tk *taskCtx) {
		dst := tk.part
		total := 0
		for src := range scatter {
			total += len(scatter[src][dst])
		}
		bucket := make([]T, 0, total)
		for src := range scatter {
			bucket = append(bucket, scatter[src][dst]...)
		}
		tk.shuffled += int64(total)
		tk.recordsOut = int64(total)
		out[dst] = bucket
	})
	if gerr != nil {
		return errDataset[T](d.ctx, gerr)
	}
	return fromParts(d.ctx, out)
}
