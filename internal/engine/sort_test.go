package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortByGlobalOrder(t *testing.T) {
	ctx := New(4)
	r := rand.New(rand.NewSource(1))
	data := make([]int, 5000)
	for i := range data {
		data[i] = r.Intn(1000)
	}
	sorted := SortBy(Parallelize(ctx, data, 8), func(a, b int) bool { return a < b }, 6)
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("lost elements: %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("global order violated")
	}
}

func TestRangePartitionProperties(t *testing.T) {
	ctx := New(4)
	f := func(raw []int16, partsRaw uint8) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		n := int(partsRaw%7) + 1
		d := RangePartitionBy(Parallelize(ctx, data, 4), func(a, b int) bool { return a < b }, n)
		// Property 1: no element lost or invented.
		got, err := d.Collect()
		if err != nil {
			return false
		}
		sort.Ints(got)
		want := append([]int(nil), data...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Property 2: partition i's max <= partition i+1's min.
		prevMax := 0
		prevSet := false
		for p := 0; p < d.NumPartitions(); p++ {
			part := d.Partition(p)
			if len(part) == 0 {
				continue
			}
			mn, mx := part[0], part[0]
			for _, v := range part {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if prevSet && mn < prevMax {
				return false
			}
			prevMax = mx
			prevSet = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortSinglePartition(t *testing.T) {
	ctx := New(2)
	d := SortBy(Parallelize(ctx, []int{3, 1, 2}, 2), func(a, b int) bool { return a < b }, 1)
	got, _ := d.Collect()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("sorted = %v", got)
	}
}

func TestSortEmpty(t *testing.T) {
	ctx := New(2)
	d := SortBy(Parallelize(ctx, []int{}, 0), func(a, b int) bool { return a < b }, 3)
	if n, _ := d.Count(); n != 0 {
		t.Error("empty sort")
	}
}

func TestCartesian(t *testing.T) {
	ctx := New(4)
	a := Parallelize(ctx, []int{1, 2, 3}, 2)
	b := Parallelize(ctx, []string{"x", "y"}, 2)
	got, err := Cartesian(a, b).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("cartesian size = %d", len(got))
	}
}

func TestSelfCartesianCounts(t *testing.T) {
	ctx := New(4)
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		d := Parallelize(ctx, ints(n), 3)
		full, err := SelfCartesian(d).Count()
		if err != nil {
			return false
		}
		uniq, err := SelfCartesianUnique(d).Count()
		if err != nil {
			return false
		}
		return full == n*(n-1) && uniq == n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSelfCartesianUniquePairsAreUnique(t *testing.T) {
	ctx := New(4)
	d := Parallelize(ctx, ints(15), 4)
	pairs, err := SelfCartesianUnique(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p.Left == p.Right {
			t.Fatalf("self pair %v", p)
		}
		k := [2]int{p.Left, p.Right}
		if p.Left > p.Right {
			k = [2]int{p.Right, p.Left}
		}
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
}

func TestBlockPairsUnique(t *testing.T) {
	ctx := New(4)
	groups := []Pair[string, []int]{
		KV("b1", []int{1, 2, 3}),    // 3 pairs
		KV("b2", []int{4}),          // 0 pairs
		KV("b3", []int{5, 6, 7, 8}), // 6 pairs
		KV("b4", []int{}),           // 0 pairs
	}
	d := Parallelize(ctx, groups, 2)
	pairs, err := BlockPairsUnique(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 9 {
		t.Fatalf("pairs = %d, want 9", len(pairs))
	}
	// No cross-block pairs: 1..3 never pairs with 5..8.
	for _, p := range pairs {
		inB1 := p.Left <= 3
		inB1R := p.Right <= 3
		if inB1 != inB1R {
			t.Fatalf("cross-block pair %v", p)
		}
	}
}
