package engine

// Vectorized (batch-at-a-time) narrow operators. The engine stays agnostic
// of what a batch holds — any element type whose values report a live-row
// count can flow through these kernels — so the columnar layout itself
// (model.Batch) lives in the model package and the engine only needs the
// RowCounted seam. Batch kernels fuse into narrow chains exactly like their
// tuple-at-a-time counterparts: one kernel call per batch per stage, with
// the selection bitmap (not tuple allocation) carrying filter decisions.

// RowCounted is implemented by batch element types (notably *model.Batch):
// LiveRows reports how many rows the element currently carries. The engine
// uses it to account records-in/records-out in rows rather than batches, so
// -stats, -explain and traces stay truthful when stages move batches. It
// must be nil-safe for pointer implementations — the engine probes the
// type's zero value.
type RowCounted interface {
	LiveRows() int
}

// rowsOf counts the records of a partition: the summed live rows when the
// element type is batch-shaped, the element count otherwise. The type probe
// runs once per call (on the zero value), not per element, and for pointer
// implementations the per-element interface conversion allocates nothing.
func rowsOf[T any](s []T) int64 {
	var zero T
	if _, ok := any(zero).(RowCounted); !ok {
		return int64(len(s))
	}
	var n int64
	for _, v := range s {
		if rc, ok := any(v).(RowCounted); ok {
			n += int64(rc.LiveRows())
		}
	}
	return n
}

// MapBatches records the batch-wise application of f — the vectorized Map:
// one kernel call transforms a whole batch. It fuses with adjacent narrow
// operators like Map does.
func MapBatches[B, C any](d *Dataset[B], f func(B) C) *Dataset[C] {
	base := narrowBase(d)
	if base.err != nil {
		return errDataset[C](d.ctx, base.err)
	}
	op := opLabel("MapBatches", base.ops)
	feed := base.feed
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "MapBatches"), base.bounded, func(p int, tk *taskCtx, emit func(C)) {
		feed(p, tk, func(b B) {
			tk.op = op
			emit(f(b))
		})
	})
}

// FilterBatches records a vectorized selection: the kernel narrows each
// batch (typically by flipping selection bits on a CloneSel copy) and
// returns the narrowed batch, or one with no live rows to drop it — emptied
// batches are removed from the stream so downstream kernels never see them.
// It is the batch analogue of Filter and fuses the same way.
func FilterBatches[B RowCounted](d *Dataset[B], kernel func(B) B) *Dataset[B] {
	base := narrowBase(d)
	if base.err != nil {
		return d
	}
	op := opLabel("FilterBatches", base.ops)
	feed := base.feed
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "FilterBatches"), base.bounded, func(p int, tk *taskCtx, emit func(B)) {
		feed(p, tk, func(b B) {
			tk.op = op
			out := kernel(b)
			if out.LiveRows() > 0 {
				emit(out)
			}
		})
	})
}

// FlatMapBatches records the batch-wise expansion of f — the vectorized
// FlatMap: one kernel call turns a whole batch into per-row outputs
// (violations, keyed pairs at a shuffle boundary). Lazy and fusable like
// FlatMap.
func FlatMapBatches[B, U any](d *Dataset[B], f func(B) []U) *Dataset[U] {
	base := narrowBase(d)
	if base.err != nil {
		return errDataset[U](d.ctx, base.err)
	}
	op := opLabel("FlatMapBatches", base.ops)
	feed := base.feed
	return lazyFrom(d.ctx, base.src, appendOp(base.ops, "FlatMapBatches"), false, func(p int, tk *taskCtx, emit func(U)) {
		feed(p, tk, func(b B) {
			tk.op = op
			for _, u := range f(b) {
				emit(u)
			}
		})
	})
}
