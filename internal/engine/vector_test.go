package engine

import (
	"sync"
	"testing"
)

// testBatch is a minimal RowCounted element: a slice of ints with a live
// count, standing in for model.Batch without importing it (engine must stay
// model-agnostic).
type testBatch struct {
	vals []int
	live int
}

func (b *testBatch) LiveRows() int {
	if b == nil {
		return 0
	}
	return b.live
}

func newTestBatches(chunks ...[]int) []*testBatch {
	out := make([]*testBatch, len(chunks))
	for i, c := range chunks {
		out[i] = &testBatch{vals: c, live: len(c)}
	}
	return out
}

func TestRowsOfCountsBatchRows(t *testing.T) {
	bs := newTestBatches([]int{1, 2, 3}, []int{4}, nil)
	if got := rowsOf(bs); got != 4 {
		t.Fatalf("rowsOf batches = %d, want 4", got)
	}
	// A nil element must not crash: the interface method is nil-safe.
	if got := rowsOf([]*testBatch{nil}); got != 0 {
		t.Fatalf("rowsOf nil batch = %d, want 0", got)
	}
	// Non-batch element types count elements.
	if got := rowsOf([]int{7, 8, 9}); got != 3 {
		t.Fatalf("rowsOf ints = %d, want 3", got)
	}
	if got := rowsOf([]string(nil)); got != 0 {
		t.Fatalf("rowsOf empty = %d, want 0", got)
	}
}

func TestMapBatchesTransformsWholeBatches(t *testing.T) {
	ctx := New(2)
	d := Parallelize(ctx, newTestBatches([]int{1, 2}, []int{3}), 0)
	sums := MapBatches(d, func(b *testBatch) int {
		s := 0
		for _, v := range b.vals {
			s += v
		}
		return s
	})
	got, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0]+got[1] != 6 {
		t.Fatalf("batch sums = %v", got)
	}
}

func TestFilterBatchesDropsEmptiedBatches(t *testing.T) {
	ctx := New(2)
	d := Parallelize(ctx, newTestBatches([]int{1, 2, 3}, []int{4, 5}, []int{6}), 0)
	odd := FilterBatches(d, func(b *testBatch) *testBatch {
		var keep []int
		for _, v := range b.vals {
			if v%2 == 1 {
				keep = append(keep, v)
			}
		}
		return &testBatch{vals: keep, live: len(keep)}
	})
	got, err := odd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, b := range got {
		if b.live == 0 {
			t.Fatal("FilterBatches must drop batches with no live rows")
		}
		rows += b.live
	}
	if len(got) != 2 || rows != 3 {
		t.Fatalf("got %d batches with %d rows, want 2 batches / 3 rows (1,3 and 5)", len(got), rows)
	}
}

func TestFlatMapBatchesExpandsToRows(t *testing.T) {
	ctx := New(2)
	d := Parallelize(ctx, newTestBatches([]int{1, 2}, []int{3}), 0)
	rows := FlatMapBatches(d, func(b *testBatch) []int { return b.vals })
	got, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("flattened rows = %v", got)
	}
}

// rowAttrObserver captures the records-in/out attributes of task spans, to
// check that batch stages account rows rather than batch handles.
type rowAttrObserver struct {
	mu  sync.Mutex
	in  int64
	out int64
}

type rowAttrSpan struct {
	obs     *rowAttrObserver
	in, out int64
}

func (o *rowAttrObserver) BeginSpan(parent Span, name string, kind SpanKind) Span {
	if kind != SpanTask {
		return discardSpan{}
	}
	return &rowAttrSpan{obs: o}
}

func (o *rowAttrObserver) Count(m Metric, v int64) {}

func (sp *rowAttrSpan) Attr(k Attr, v int64) {
	switch k {
	case AttrRecordsIn:
		sp.in = v
	case AttrRecordsOut:
		sp.out = v
	}
}

func (sp *rowAttrSpan) End() {
	sp.obs.mu.Lock()
	sp.obs.in += sp.in
	sp.obs.out += sp.out
	sp.obs.mu.Unlock()
}

func TestBatchStagesReportRowsNotBatches(t *testing.T) {
	obs := &rowAttrObserver{}
	ctx := NewWithConfig(Config{Parallelism: 2, Observer: obs})
	d := Parallelize(ctx, newTestBatches([]int{1, 2, 3}, []int{4, 5}), 0)
	// Parallelize counts records read in rows.
	if got := ctx.Stats().Snapshot().RecordsRead; got != 5 {
		t.Fatalf("records read = %d, want 5 rows (not 2 batches)", got)
	}
	kept := FilterBatches(d, func(b *testBatch) *testBatch {
		var keep []int
		for _, v := range b.vals {
			if v > 1 {
				keep = append(keep, v)
			}
		}
		return &testBatch{vals: keep, live: len(keep)}
	})
	if err := kept.Err(); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.in != 5 || obs.out != 4 {
		t.Fatalf("task rows in/out = %d/%d, want 5/4", obs.in, obs.out)
	}
}

func TestBatchSizeConfig(t *testing.T) {
	if got := NewWithConfig(Config{BatchSize: 256}).BatchSize(); got != 256 {
		t.Fatalf("BatchSize = %d, want 256", got)
	}
	if got := NewWithConfig(Config{BatchSize: -3}).BatchSize(); got != 0 {
		t.Fatalf("negative config BatchSize = %d, want clamp to 0", got)
	}
	ctx := New(1)
	if ctx.BatchSize() != 0 {
		t.Fatal("default BatchSize should be 0 (tuple path)")
	}
	ctx.SetBatchSize(64)
	if ctx.BatchSize() != 64 {
		t.Fatal("SetBatchSize did not apply")
	}
	ctx.SetBatchSize(-1)
	if ctx.BatchSize() != 0 {
		t.Fatal("SetBatchSize should clamp negatives to 0")
	}
}
