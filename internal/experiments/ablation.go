package experiments

import (
	"fmt"

	"bigdansing/internal/baseline"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/join"
	"bigdansing/internal/model"
	"bigdansing/internal/rules"
)

// Fig11b reproduces Figure 11(b): UDF deduplication on NCVoter, customer1
// and customer2 — BigDansing (blocked Levenshtein UDF) vs the Shark proxy,
// which runs the UDF over a cross product. Paper row counts (9M-32M) are
// scaled to laptop sizes.
func Fig11b(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig11b", Title: "deduplication runtime by dataset", XLabel: "dataset#", YLabel: "seconds",
		Series: []Series{{Name: sysBigDansing}, {Name: sysShark}},
		Notes:  []string{"dataset 1 = ncvoter, 2 = customer1 (3x dups), 3 = customer2 (5x dups)"}}

	type workload struct {
		rel  *model.Relation
		rule *core.Rule
	}
	ncv := datagen.NCVoter(cfg.rows(2000), 0.2, cfg.Seed)
	c1 := datagen.Customers("customer1", cfg.rows(600), 3, 0.02, cfg.Seed)
	c2 := datagen.Customers("customer2", cfg.rows(450), 5, 0.02, cfg.Seed)
	r4 := mustRule(phi4())
	r5 := mustRule(phi5())
	wls := []workload{{ncv.Dirty, r5}, {c1.Dirty, r4}, {c2.Dirty, r4}}

	ctx := engine.New(cfg.Workers)
	for i, wl := range wls {
		x := float64(i + 1)
		secs, err := timeIt(func() error {
			_, err := core.DetectRule(ctx, wl.rule, wl.rel)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Series[0].Points = append(t.Series[0].Points, Point{X: x, Value: secs})

		secs, err = timeIt(func() error {
			_, err := baseline.SQLDetect(ctx, baseline.Shark, wl.rule, wl.rel)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Series[1].Points = append(t.Series[1].Points, Point{X: x, Value: secs})
	}
	t.Notes = append(t.Notes, "paper: BigDansing outperforms Shark on every dataset, up to 67x on customer2")
	return []*Table{t}, nil
}

// Fig11c reproduces Figure 11(c): the physical join ablation on TaxB φ2 —
// CrossProduct vs UCrossProduct vs OCJoin enumerate/validate the same
// violating pairs.
func Fig11c(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig11c", Title: "join operator ablation (TaxB phi2)", XLabel: "rows", YLabel: "seconds",
		Series: []Series{{Name: "ocjoin"}, {Name: "ucrossproduct"}, {Name: "crossproduct"}}}
	ctx := engine.New(cfg.Workers)
	conds := []join.Cond{
		{LeftCol: 4, Op: model.OpGT, RightCol: 4}, // salary
		{LeftCol: 5, Op: model.OpLT, RightCol: 5}, // rate
	}
	evalPair := func(p engine.PairOf[model.Tuple]) bool {
		for _, c := range conds {
			if !c.Eval(p.Left, p.Right) {
				return false
			}
		}
		return true
	}
	for _, n := range []int{cfg.rows(500), cfg.rows(1000), cfg.rows(2000)} {
		rel := datagen.TaxB(n, 0.1, cfg.Seed).Dirty
		d := engine.Parallelize(ctx, rel.Tuples, 0)
		x := float64(n)

		secs, err := timeIt(func() error {
			out, err := join.OCJoin(d, conds, cfg.Workers)
			if err != nil {
				return err
			}
			_, err = out.Count()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Series[0].Points = append(t.Series[0].Points, Point{X: x, Value: secs})

		secs, err = timeIt(func() error {
			// UCrossProduct sees each unordered pair once; validate both
			// orientations of the asymmetric predicate.
			pairs := join.UCrossProduct(d)
			matched := engine.Filter(pairs, func(p engine.PairOf[model.Tuple]) bool {
				return evalPair(p) || evalPair(engine.PairOf[model.Tuple]{Left: p.Right, Right: p.Left})
			})
			_, err := matched.Count()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Series[1].Points = append(t.Series[1].Points, Point{X: x, Value: secs})

		secs, err = timeIt(func() error {
			pairs := join.CrossProduct(d)
			matched := engine.Filter(pairs, evalPair)
			_, err := matched.Count()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Series[2].Points = append(t.Series[2].Points, Point{X: x, Value: secs})
	}
	t.Notes = append(t.Notes, "paper: OCJoin more than 2 orders of magnitude faster than both cross products (up to 655x); UCrossProduct slightly ahead of CrossProduct")
	return []*Table{t}, nil
}

// Fig12a reproduces Figure 12(a): the value of the five-operator
// abstraction — a dedup UDF run through the full API (Scope/Block/Iterate
// prune the pair space) vs the same UDF as a lone Detect over the cross
// product.
func Fig12a(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig12a", Title: "full API vs Detect-only (dedup UDF on TaxA)", XLabel: "variant#", YLabel: "seconds",
		Series: []Series{{Name: "full-api"}, {Name: "detect-only"}},
		Notes:  []string{"variant 1 = full five-operator API, 2 = Detect-only"}}
	rel := datagen.TaxA(cfg.rows(2000), 0.1, cfg.Seed).Dirty
	rule, err := rules.DedupRule(rules.DedupConfig{
		ID: "dedupTax", NameAttr: "name", PhoneAttr: "", NameThreshold: 0.85,
	}, datagen.TaxSchema())
	if err != nil {
		return nil, err
	}
	ctx := engine.New(cfg.Workers)

	secs, err := timeIt(func() error {
		_, err := core.DetectRule(ctx, rule, rel)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Series[0].Points = append(t.Series[0].Points, Point{X: 1, Value: secs})

	secs, err = timeIt(func() error {
		_, err := baseline.DetectOnly(ctx, rule, rel)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Series[1].Points = append(t.Series[1].Points, Point{X: 2, Value: secs})

	t.Notes = append(t.Notes, "paper: the full API is 3 orders of magnitude faster than Detect-only")
	return []*Table{t}, nil
}

// Tables23 prints Table 2 (dataset statistics at the configured scale) and
// Table 3 (the integrity constraints used for testing).
func Tables23(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t2 := &Table{ID: "table2", Title: "dataset statistics (rows at current scale)", XLabel: "dataset#", YLabel: "rows",
		Series: []Series{{Name: "rows"}}}
	datasets := []struct {
		name string
		rows int
	}{
		{"taxa", cfg.rows(100000)},
		{"taxb", cfg.rows(4000)},
		{"tpch", cfg.rows(400000)},
		{"customer1", cfg.rows(600) * 3},
		{"customer2", cfg.rows(450) * 5},
		{"ncvoter", cfg.rows(2000)},
		{"hai", cfg.rows(3000)},
	}
	for i, d := range datasets {
		t2.Series[0].Points = append(t2.Series[0].Points, Point{X: float64(i + 1), Value: float64(d.rows)})
		t2.Notes = append(t2.Notes, fmt.Sprintf("dataset %d = %s", i+1, d.name))
	}

	t3 := &Table{ID: "table3", Title: "integrity constraints used for testing", XLabel: "rule#", YLabel: "-",
		Series: []Series{{Name: "defined"}}}
	specs := []string{
		"phi1 (FD): zipcode -> city",
		"phi2 (DC): not(t1.salary > t2.salary & t1.rate < t2.rate)",
		"phi3 (FD): o_custkey -> c_address",
		"phi4 (UDF): customer rows are duplicates (Levenshtein on name+phone)",
		"phi5 (UDF): ncvoter rows are duplicates (Levenshtein on name+phone)",
		"phi6 (FD): zip -> state",
		"phi7 (FD): phone -> zip",
		"phi8 (FD): providerID -> city, phone",
	}
	for i, s := range specs {
		t3.Series[0].Points = append(t3.Series[0].Points, Point{X: float64(i + 1), Value: 1})
		t3.Notes = append(t3.Notes, s)
	}
	return []*Table{t2, t3}, nil
}
