package experiments

import (
	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/probrepair"
	"bigdansing/internal/repair"
)

// ExtAccuracy is an extension experiment beyond the paper: repair quality of
// the three centralized-quality algorithms — equivalence class (the paper's
// default), hypergraph (Appendix F) and the probabilistic factor-graph
// backend — on datagen ground truth, in the style of Table 4. The FD
// workload (TaxA, φ1) sweeps the error rate and reports precision and
// recall; the DC workload (TaxB, φ2) reports the average numeric distance to
// the ground truth over injected-error cells (the ||R,G||/e measure), where
// the equivalence-class algorithm cannot act at all (inequality fixes give
// it no equality classes).
func ExtAccuracy(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()

	// Fresh algorithm instances per measurement: sessions clone before
	// learning, but separate instances keep the runs visibly independent.
	algos := []struct {
		name string
		mk   func() repair.Algorithm
	}{
		{"equivalence", func() repair.Algorithm { return &repair.EquivalenceClass{} }},
		{"hypergraph", func() repair.Algorithm { return &repair.Hypergraph{} }},
		{"prob", func() repair.Algorithm { return probrepair.New(cfg.Seed) }},
	}
	series := func() []Series {
		s := make([]Series, len(algos))
		for i, a := range algos {
			s[i] = Series{Name: a.name}
		}
		return s
	}
	run := func(tr *datagen.Truth, rule *core.Rule, algo repair.Algorithm) (datagen.Quality, error) {
		cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), []*core.Rule{rule},
			cleanse.WithAlgorithm(algo),
			cleanse.WithParallelRepair(repair.Options{}),
		)
		if err != nil {
			return datagen.Quality{}, err
		}
		res, err := cleaner.Clean(tr.Dirty)
		if err != nil {
			return datagen.Quality{}, err
		}
		return datagen.Evaluate(tr, res.Clean), nil
	}

	precision := &Table{ID: "ext-accuracy", Title: "FD repair precision (TaxA phi1)",
		XLabel: "error%", YLabel: "precision", Series: series()}
	recall := &Table{ID: "ext-accuracy", Title: "FD repair recall (TaxA phi1)",
		XLabel: "error%", YLabel: "recall", Series: series()}
	fdRows := cfg.rows(3000)
	for _, rate := range []float64{0.02, 0.05, 0.10} {
		tr := datagen.TaxA(fdRows, rate, cfg.Seed)
		x := rate * 100
		for si, a := range algos {
			q, err := run(tr, mustRule(phi1()), a.mk())
			if err != nil {
				return nil, err
			}
			precision.Series[si].Points = append(precision.Series[si].Points, Point{X: x, Value: q.Precision})
			recall.Series[si].Points = append(recall.Series[si].Points, Point{X: x, Value: q.Recall})
		}
	}
	precision.Notes = append(precision.Notes,
		"extension: prob = factor-graph inference (internal/probrepair), seeded Gibbs + margin fallback")
	recall.Notes = append(recall.Notes,
		"recall is bounded by the attribute coverage of phi1 (state-column errors are invisible to it)")

	distance := &Table{ID: "ext-accuracy", Title: "DC repair avg distance ||R,G||/e (TaxB phi2)",
		XLabel: "error%", YLabel: "avg distance", Series: series()}
	dcRows := cfg.rows(400)
	for _, rate := range []float64{0.02, 0.05, 0.10} {
		tr := datagen.TaxB(dcRows, rate, cfg.Seed)
		x := rate * 100
		for si, a := range algos {
			q, err := run(tr, mustRule(phi2()), a.mk())
			if err != nil {
				return nil, err
			}
			distance.Series[si].Points = append(distance.Series[si].Points, Point{X: x, Value: q.AvgDistance})
		}
	}
	distance.Notes = append(distance.Notes,
		"equivalence class proposes nothing for inequality fixes: its distance is the uncorrected corruption")

	return []*Table{precision, recall, distance}, nil
}
