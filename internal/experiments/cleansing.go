package experiments

import (
	"fmt"

	"bigdansing/internal/baseline"
	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// nadeefClean emulates NADEEF's full cleansing loop: single-threaded
// query-based detection, then the centralized equivalence-class repair,
// iterated to a fixpoint — the comparison system of Figure 8(a).
func nadeefClean(rule *core.Rule, rel *model.Relation, algo repair.Algorithm, maxIter int) (*model.Relation, int, error) {
	work := rel.Clone()
	if algo == nil {
		algo = &repair.EquivalenceClass{}
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		det, err := baseline.NadeefDetect(rule, work)
		if err != nil {
			return nil, iter, err
		}
		// Deduplicate and attach fixes (NADEEF's violation store).
		seen := map[model.ViolationKey]bool{}
		var fixSets []model.FixSet
		for _, v := range det.Violations {
			k := v.MapKey()
			if seen[k] {
				continue
			}
			seen[k] = true
			fs := model.FixSet{Violation: v}
			if rule.GenFix != nil {
				fs.Fixes = rule.GenFix(v)
			}
			if len(fs.Fixes) > 0 {
				fixSets = append(fixSets, fs)
			}
		}
		if len(fixSets) == 0 {
			return work, iter + 1, nil
		}
		as, err := algo.Repair(fixSets)
		if err != nil {
			return nil, iter, err
		}
		if repair.Apply(work, as, nil) == 0 {
			return work, iter + 1, nil
		}
	}
	return work, iter, nil
}

// Fig8a reproduces Figure 8(a): end-to-end cleansing time (detection plus
// repair) for rules φ1, φ2 and φ3, BigDansing vs NADEEF, at two dataset
// sizes each. Paper sizes (10K/1M rows; 10K/200K for φ2) are scaled down;
// NADEEF is excluded from sizes it could not finish in the paper either.
func Fig8a(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	type workload struct {
		name  string
		rule  *core.Rule
		algo  repair.Algorithm
		mk    func(rows int) *model.Relation
		sizes []int
	}
	workloads := []workload{
		{
			name: "phi1(TaxA)", rule: mustRule(phi1()), algo: &repair.EquivalenceClass{},
			mk:    func(rows int) *model.Relation { return datagen.TaxA(rows, 0.1, cfg.Seed).Dirty },
			sizes: []int{cfg.rows(1000), cfg.rows(20000)},
		},
		{
			name: "phi2(TaxB)", rule: mustRule(phi2()), algo: &repair.Hypergraph{},
			mk:    func(rows int) *model.Relation { return datagen.TaxB(rows, 0.05, cfg.Seed).Dirty },
			sizes: []int{cfg.rows(500), cfg.rows(2000)},
		},
		{
			name: "phi3(TPCH)", rule: mustRule(phi3()), algo: &repair.EquivalenceClass{},
			mk:    func(rows int) *model.Relation { return datagen.TPCH(rows, 0.1, cfg.Seed).Dirty },
			sizes: []int{cfg.rows(1000), cfg.rows(20000)},
		},
	}
	var tables []*Table
	for _, wl := range workloads {
		t := &Table{
			ID:     "fig8a",
			Title:  fmt.Sprintf("end-to-end cleansing, %s", wl.name),
			XLabel: "rows", YLabel: "seconds",
			Series: []Series{{Name: sysBigDansing}, {Name: sysNadeef}},
		}
		for _, n := range wl.sizes {
			rel := wl.mk(n)
			cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), []*core.Rule{wl.rule},
				cleanse.WithAlgorithm(wl.algo),
				cleanse.WithParallelRepair(repair.Options{}))
			if err != nil {
				return nil, err
			}
			secs, err := timeIt(func() error {
				_, err := cleaner.Clean(rel)
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Series[0].Points = append(t.Series[0].Points, Point{X: float64(n), Value: secs})

			secs, err = timeIt(func() error {
				_, _, err := nadeefClean(wl.rule, rel, wl.algo, 10)
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Series[1].Points = append(t.Series[1].Points, Point{X: float64(n), Value: secs})
		}
		t.Notes = append(t.Notes, "paper: BigDansing >3 orders of magnitude faster than NADEEF at the larger sizes")
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig8b reproduces Figure 8(b): the violation-detection vs data-repair time
// split on TaxA φ1 while the error rate grows from 1% to 50%. The paper
// finds detection dominates (>90%) at every rate.
func Fig8b(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig8b", Title: "detection vs repair time by error rate (TaxA phi1)",
		XLabel: "error%", YLabel: "seconds",
		Series: []Series{{Name: "violation-detection"}, {Name: "data-repair"}}}
	rule := mustRule(phi1())
	rows := cfg.rows(20000)
	for _, rate := range []float64{0.01, 0.05, 0.10, 0.50} {
		rel := datagen.TaxA(rows, rate, cfg.Seed).Dirty
		cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), []*core.Rule{rule},
			cleanse.WithParallelRepair(repair.Options{}))
		if err != nil {
			return nil, err
		}
		res, err := cleaner.Clean(rel)
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		x := rate * 100
		t.Series[0].Points = append(t.Series[0].Points, Point{X: x, Value: rep.DetectTime.Seconds()})
		t.Series[1].Points = append(t.Series[1].Points, Point{X: x, Value: rep.RepairTime.Seconds()})
	}
	t.Notes = append(t.Notes, "paper: violation detection takes >90% of cleansing time at every error rate")
	return []*Table{t}, nil
}

// Fig12b reproduces Figure 12(b): the parallel black-box repair vs the
// centralized repair while the error rate grows; the paper finds parallel
// wins except at very small error rates.
func Fig12b(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig12b", Title: "parallel vs centralized repair (TaxA phi1)",
		XLabel: "error%", YLabel: "repair seconds",
		Series: []Series{{Name: "bigdansing"}, {Name: "bigdansing-serial-repair"}}}
	rule := mustRule(phi1())
	rows := cfg.rows(20000)
	for _, rate := range []float64{0.01, 0.05, 0.10, 0.50} {
		rel := datagen.TaxA(rows, rate, cfg.Seed).Dirty
		for si, parallel := range []bool{true, false} {
			var opts []cleanse.Option
			if parallel {
				opts = append(opts, cleanse.WithParallelRepair(repair.Options{
					Parallelism: cfg.Workers,
				}))
			}
			cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), []*core.Rule{rule}, opts...)
			if err != nil {
				return nil, err
			}
			res, err := cleaner.Clean(rel)
			if err != nil {
				return nil, err
			}
			t.Series[si].Points = append(t.Series[si].Points,
				Point{X: rate * 100, Value: res.Report().RepairTime.Seconds()})
		}
	}
	t.Notes = append(t.Notes, "paper: parallel repair wins except at the smallest error rate (1%)")
	return []*Table{t}, nil
}

// Table4 reproduces Table 4: repair quality. The equivalence-class
// algorithm on HAI under rule combinations φ6, φ6&φ7, φ6-φ8, run both with
// the parallel black-box wrapper ("BigDansing") and centralized
// ("NADEEF"); and the hypergraph algorithm on TaxB with φD, measured by
// distance to the ground truth.
func Table4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	rows := cfg.rows(3000)

	// Each combination gets its own dirty dataset (Section 6.1): errors are
	// injected only on the attributes its rules cover, so the combination
	// can in principle repair them. Columns: 2 city, 3 state, 4 zip, 6 phone.
	combos := []struct {
		name    string
		specs   []string
		targets []int
	}{
		{"phi6", []string{"phi6"}, []int{3}},
		{"phi6&phi7", []string{"phi6", "phi7"}, []int{3, 4}},
		{"phi6-phi8", []string{"phi6", "phi7", "phi8"}, []int{3, 4, 2, 6}},
	}
	mkRules := func(names []string) ([]*core.Rule, error) {
		var rs []*core.Rule
		for _, n := range names {
			var r *core.Rule
			var err error
			switch n {
			case "phi6":
				r, err = phi6()
			case "phi7":
				r, err = phi7()
			case "phi8":
				r, err = phi8()
			}
			if err != nil {
				return nil, err
			}
			rs = append(rs, r)
		}
		return rs, nil
	}

	// One table per measure so the output mirrors Table 4's columns.
	precision := &Table{ID: "table4", Title: "repair precision (HAI, equivalence class)", XLabel: "combo#", YLabel: "precision",
		Series: []Series{{Name: "bigdansing"}, {Name: "nadeef(centralized)"}}}
	recall := &Table{ID: "table4", Title: "repair recall (HAI, equivalence class)", XLabel: "combo#", YLabel: "recall",
		Series: []Series{{Name: "bigdansing"}, {Name: "nadeef(centralized)"}}}
	iters := &Table{ID: "table4", Title: "repair iterations (HAI)", XLabel: "combo#", YLabel: "iterations",
		Series: []Series{{Name: "bigdansing"}, {Name: "nadeef(centralized)"}}}

	for ci, combo := range combos {
		tr := datagen.HAI(rows, 0.1, cfg.Seed, combo.targets...)
		rs, err := mkRules(combo.specs)
		if err != nil {
			return nil, err
		}
		x := float64(ci + 1)
		for si, parallel := range []bool{true, false} {
			var opts []cleanse.Option
			if parallel {
				opts = append(opts, cleanse.WithParallelRepair(repair.Options{}))
			}
			cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), rs, opts...)
			if err != nil {
				return nil, err
			}
			res, err := cleaner.Clean(tr.Dirty)
			if err != nil {
				return nil, err
			}
			q := datagen.Evaluate(tr, res.Clean)
			precision.Series[si].Points = append(precision.Series[si].Points, Point{X: x, Value: q.Precision})
			recall.Series[si].Points = append(recall.Series[si].Points, Point{X: x, Value: q.Recall})
			iters.Series[si].Points = append(iters.Series[si].Points, Point{X: x, Value: float64(res.Report().Iterations)})
		}
		precision.Notes = append(precision.Notes,
			fmt.Sprintf("combo %d = %v", ci+1, combo.specs))
	}

	// Hypergraph algorithm on TaxB with φD: distance to ground truth.
	dist := &Table{ID: "table4", Title: "hypergraph repair distance (TaxB, phiD)", XLabel: "measure#", YLabel: "value",
		Series: []Series{{Name: "bigdansing"}, {Name: "nadeef(centralized)"}},
		Notes:  []string{"measure 1 = avg |R,G|/e distance, measure 2 = total |R,G| distance, measure 3 = iterations"}}
	trB := datagen.TaxB(cfg.rows(500), 0.05, cfg.Seed)
	rule2 := mustRule(phi2())
	for si, parallel := range []bool{true, false} {
		opts := []cleanse.Option{cleanse.WithAlgorithm(&repair.Hypergraph{})}
		if parallel {
			opts = append(opts, cleanse.WithParallelRepair(repair.Options{}))
		}
		cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), []*core.Rule{rule2}, opts...)
		if err != nil {
			return nil, err
		}
		res, err := cleaner.Clean(trB.Dirty)
		if err != nil {
			return nil, err
		}
		q := datagen.Evaluate(trB, res.Clean)
		dist.Series[si].Points = append(dist.Series[si].Points,
			Point{X: 1, Value: q.AvgDistance},
			Point{X: 2, Value: q.TotalDistance},
			Point{X: 3, Value: float64(res.Report().Iterations)})
	}

	precision.Notes = append(precision.Notes,
		"paper: BigDansing matches the centralized system's precision/recall and iteration counts")
	return []*Table{precision, recall, iters, dist}, nil
}
