package experiments

import (
	"fmt"

	"bigdansing/internal/baseline"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
)

// system names used across the detection figures.
const (
	sysBigDansing = "bigdansing"
	sysBDHadoop   = "bigdansing-hadoop"
	sysNadeef     = "nadeef"
	sysPostgres   = "postgresql"
	sysSparkSQL   = "spark-sql"
	sysShark      = "shark"
)

// detectWith runs one system's violation detection and returns seconds.
func detectWith(cfg Config, system string, rule *core.Rule, rel *model.Relation) (float64, error) {
	switch system {
	case sysBigDansing:
		ctx := engine.New(cfg.Workers)
		return timeIt(func() error {
			_, err := core.DetectRule(ctx, rule, rel)
			return err
		})
	case sysBDHadoop:
		eng, err := mapred.New("", cfg.Workers)
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		return timeIt(func() error {
			_, err := core.DetectRuleMapReduce(eng, rule, rel, cfg.Workers, cfg.Workers)
			return err
		})
	case sysNadeef:
		return timeIt(func() error {
			_, err := baseline.NadeefDetect(rule, rel)
			return err
		})
	case sysPostgres, sysSparkSQL, sysShark:
		mode := baseline.Postgres
		if system == sysSparkSQL {
			mode = baseline.SparkSQL
		} else if system == sysShark {
			mode = baseline.Shark
		}
		ctx := engine.New(cfg.Workers)
		return timeIt(func() error {
			_, err := baseline.SQLDetect(ctx, mode, rule, rel)
			return err
		})
	default:
		return 0, fmt.Errorf("unknown system %q", system)
	}
}

// detectionSweep measures detection time for each system across dataset
// sizes; exclude mirrors the paper's timeouts/exclusions.
func detectionSweep(cfg Config, table *Table, rule *core.Rule,
	mkData func(rows int) *model.Relation, sizes []int, systems []string,
	exclude func(system string, rows int) bool) error {

	for _, sys := range systems {
		table.Series = append(table.Series, Series{Name: sys})
	}
	for _, n := range sizes {
		rel := mkData(n)
		for si, sys := range systems {
			if exclude != nil && exclude(sys, n) {
				table.Series[si].Points = append(table.Series[si].Points, Point{X: float64(n), Value: Excluded})
				continue
			}
			secs, err := detectWith(cfg, sys, rule, rel)
			if err != nil {
				return fmt.Errorf("%s at %d rows: %w", sys, n, err)
			}
			table.Series[si].Points = append(table.Series[si].Points, Point{X: float64(n), Value: secs})
		}
	}
	return nil
}

// Fig9a reproduces Figure 9(a): single-node violation detection on TaxA
// with FD φ1 across dataset sizes, against every baseline. Paper sizes
// 100K/1M/10M are scaled 100× down by default.
func Fig9a(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig9a", Title: "TaxA phi1 detection (single node)", XLabel: "rows", YLabel: "seconds"}
	rule := mustRule(phi1())
	sizes := []int{cfg.rows(1000), cfg.rows(10000), cfg.rows(100000)}
	mk := func(rows int) *model.Relation { return datagen.TaxA(rows, 0.1, cfg.Seed).Dirty }
	systems := []string{sysBigDansing, sysNadeef, sysPostgres, sysSparkSQL, sysShark}
	// Shark runs every join as a cross product; past ~3e9 candidate pairs
	// a run exceeds the 4-hour budget the paper allots, so it is excluded
	// (Section 6.3 excluded Shark from the largest datasets too).
	exclude := func(sys string, rows int) bool {
		return sys == sysShark && float64(rows)*float64(rows) > 3e9
	}
	if err := detectionSweep(cfg, t, rule, mk, sizes, systems, exclude); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: PostgreSQL fastest at 100K; BigDansing ~2 orders faster than PostgreSQL and >3 orders faster than NADEEF at 10M")
	return []*Table{t}, nil
}

// Fig9b reproduces Figure 9(b): the inequality DC φ2 on TaxB. Paper sizes
// 100K/200K/300K are scaled down; baselines run the DC as a cross product
// with post-selection, BigDansing uses OCJoin.
func Fig9b(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig9b", Title: "TaxB phi2 detection (inequality DC, single node)", XLabel: "rows", YLabel: "seconds"}
	rule := mustRule(phi2())
	sizes := []int{cfg.rows(1000), cfg.rows(2000), cfg.rows(4000)}
	mk := func(rows int) *model.Relation { return datagen.TaxB(rows, 0.1, cfg.Seed).Dirty }
	systems := []string{sysBigDansing, sysNadeef, sysPostgres, sysSparkSQL, sysShark}
	if err := detectionSweep(cfg, t, rule, mk, sizes, systems, nil); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: BigDansing >=2 orders of magnitude faster than every baseline at 200K+ rows (OCJoin)")
	return []*Table{t}, nil
}

// Fig9c reproduces Figure 9(c): FD φ3 on the TPCH join result.
func Fig9c(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig9c", Title: "TPCH phi3 detection (single node)", XLabel: "rows", YLabel: "seconds"}
	rule := mustRule(phi3())
	sizes := []int{cfg.rows(1000), cfg.rows(10000), cfg.rows(100000)}
	mk := func(rows int) *model.Relation { return datagen.TPCH(rows, 0.1, cfg.Seed).Dirty }
	systems := []string{sysBigDansing, sysNadeef, sysPostgres, sysSparkSQL, sysShark}
	exclude := func(sys string, rows int) bool {
		return sys == sysShark && float64(rows)*float64(rows) > 3e9
	}
	if err := detectionSweep(cfg, t, rule, mk, sizes, systems, exclude); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: BigDansing 2x faster than PostgreSQL and >3 orders faster than NADEEF at 10M rows")
	return []*Table{t}, nil
}

// Fig10a reproduces Figure 10(a): multi-worker detection on TaxA φ1,
// including the disk-based Hadoop backend. Paper sizes 10M/20M/40M scaled.
func Fig10a(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig10a", Title: "TaxA phi1 detection (multi-worker)", XLabel: "rows", YLabel: "seconds"}
	rule := mustRule(phi1())
	sizes := []int{cfg.rows(20000), cfg.rows(40000), cfg.rows(80000)}
	mk := func(rows int) *model.Relation { return datagen.TaxA(rows, 0.1, cfg.Seed).Dirty }
	systems := []string{sysBigDansing, sysBDHadoop, sysSparkSQL, sysShark}
	exclude := func(sys string, rows int) bool {
		return sys == sysShark && float64(rows)*float64(rows) > 1e9
	}
	if err := detectionSweep(cfg, t, rule, mk, sizes, systems, exclude); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: BigDansing-Spark slightly faster than Spark SQL; up to 3 orders faster than Shark; BigDansing-Hadoop beats Shark")
	return []*Table{t}, nil
}

// Fig10b reproduces Figure 10(b): the inequality DC φ2 at multi-worker
// scale; the paper stopped Spark SQL and Shark after 4 hours at 2M+ rows.
func Fig10b(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig10b", Title: "TaxB phi2 detection (multi-worker)", XLabel: "rows", YLabel: "seconds"}
	rule := mustRule(phi2())
	sizes := []int{cfg.rows(4000), cfg.rows(8000), cfg.rows(16000)}
	mk := func(rows int) *model.Relation { return datagen.TaxB(rows, 0.01, cfg.Seed).Dirty }
	systems := []string{sysBigDansing, sysSparkSQL, sysShark}
	// The SQL engines run the inequality DC as a cross product; past ~1e8
	// materialized pairs a run exceeds the paper's 4-hour budget
	// equivalent, so larger sizes are excluded (the paper stopped both
	// baselines at every size of this figure).
	exclude := func(sys string, rows int) bool {
		return sys != sysBigDansing && float64(rows)*float64(rows) > 1.1e8
	}
	if err := detectionSweep(cfg, t, rule, mk, sizes, systems, exclude); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: BigDansing-Spark at least 2 orders of magnitude faster; baselines hit the 4h limit at 2M rows")
	return []*Table{t}, nil
}

// Fig10c reproduces Figure 10(c): large TPCH detection comparing the
// in-memory backend, the disk-based Hadoop backend and Spark SQL.
func Fig10c(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig10c", Title: "large TPCH phi3 detection (backends)", XLabel: "rows", YLabel: "seconds"}
	rule := mustRule(phi3())
	sizes := []int{cfg.rows(100000), cfg.rows(200000), cfg.rows(400000)}
	mk := func(rows int) *model.Relation { return datagen.TPCH(rows, 0.1, cfg.Seed).Dirty }
	systems := []string{sysBigDansing, sysBDHadoop, sysSparkSQL}
	if err := detectionSweep(cfg, t, rule, mk, sizes, systems, nil); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: BigDansing-Spark 16-22x faster than BigDansing-Hadoop and 6-8x faster than Spark SQL")
	return []*Table{t}, nil
}

// Fig11a reproduces Figure 11(a): speedup with the number of workers on a
// fixed TPCH dataset (paper: 50M rows, 1..16 workers).
func Fig11a(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig11a", Title: "scale-out: TPCH phi3 detection vs workers", XLabel: "workers", YLabel: "seconds"}
	rule := mustRule(phi3())
	rel := datagen.TPCH(cfg.rows(200000), 0.1, cfg.Seed).Dirty
	workerCounts := []int{1, 2, 4, 8, 16}
	bd := Series{Name: sysBigDansing}
	sq := Series{Name: sysSparkSQL}
	for _, w := range workerCounts {
		wcfg := cfg
		wcfg.Workers = w
		secs, err := detectWith(wcfg, sysBigDansing, rule, rel)
		if err != nil {
			return nil, err
		}
		bd.Points = append(bd.Points, Point{X: float64(w), Value: secs})
		secs, err = detectWith(wcfg, sysSparkSQL, rule, rel)
		if err != nil {
			return nil, err
		}
		sq.Points = append(sq.Points, Point{X: float64(w), Value: secs})
	}
	t.Series = []Series{bd, sq}
	t.Notes = append(t.Notes, "paper: BigDansing >=3x faster than Spark SQL from 1 to 16 workers; both scale")
	return []*Table{t}, nil
}
