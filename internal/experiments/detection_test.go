package experiments

import (
	"testing"
)

// eventually retries a timing-shape assertion a few times: the test suite
// runs packages in parallel, so individual wall-clock comparisons can be
// skewed by CPU contention.
func eventually(t *testing.T, attempts int, desc string, ok func() (bool, error)) {
	t.Helper()
	var lastErr error
	for i := 0; i < attempts; i++ {
		good, err := ok()
		if err != nil {
			lastErr = err
			continue
		}
		if good {
			return
		}
	}
	if lastErr != nil {
		t.Fatalf("%s: %v", desc, lastErr)
	}
	t.Errorf("%s failed in %d attempts", desc, attempts)
}

func TestFig10cSparkBeatsHadoopBackend(t *testing.T) {
	// Compare the backends directly at a size where disk spilling
	// dominates; retry to ride out scheduler noise.
	cfg := tinyCfg().withDefaults()
	rule := mustRule(phi3())
	rel := mkTPCH(cfg, 100000)
	eventually(t, 3, "in-memory backend should beat the disk backend", func() (bool, error) {
		spark, err := detectWith(cfg, sysBigDansing, rule, rel)
		if err != nil {
			return false, err
		}
		hadoop, err := detectWith(cfg, sysBDHadoop, rule, rel)
		if err != nil {
			return false, err
		}
		return spark < hadoop, nil
	})
}

func TestFig10bExcludesBaselinesAtLargestSize(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 1 // exclusion thresholds are absolute row counts
	// Only check the plan of exclusions, not the timings: build the sizes
	// the experiment would use and apply its exclusion rule.
	for _, tc := range []struct {
		rows    int
		sys     string
		wantRun bool
	}{
		{4000, sysSparkSQL, true},
		{8000, sysShark, true},
		{16000, sysSparkSQL, false},
		{16000, sysShark, false},
		{16000, sysBigDansing, true},
	} {
		excluded := tc.sys != sysBigDansing && float64(tc.rows)*float64(tc.rows) > 1.1e8
		if excluded == tc.wantRun {
			t.Errorf("%s at %d rows: excluded=%v, want run=%v", tc.sys, tc.rows, excluded, tc.wantRun)
		}
	}
}

func TestDetectWithUnknownSystem(t *testing.T) {
	cfg := tinyCfg()
	rule := mustRule(phi1())
	if _, err := detectWith(cfg, "oracle9i", rule, nil); err == nil {
		t.Error("unknown system should error")
	}
}
