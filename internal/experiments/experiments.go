// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) as printable series: for each experiment it runs
// the same systems on the same (scaled-down) workloads and reports wall
// times or quality measures. The absolute numbers differ from the paper —
// the substrate is a simulated cluster on one machine — but the shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target; EXPERIMENTS.md records paper-vs-measured per experiment.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config parameterizes an experiment run.
type Config struct {
	// Workers is the simulated cluster size (default 8).
	Workers int
	// Seed drives the data generators (default 1).
	Seed int64
	// Scale multiplies the default row counts (default 1.0). The defaults
	// are chosen so the full suite finishes in minutes on a laptop.
	Scale float64
	// Out receives the printed tables (default os.Stdout handled by caller).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

func (c Config) rows(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// Excluded marks a measurement the run skipped, mirroring the paper's
// exclusions ("we excluded Shark as it could not run on these larger
// datasets", runs "stopped after 4 hours").
const Excluded = -1.0

// Point is one measurement: X is the sweep variable (rows, workers, error
// percentage), Value the measured seconds (or quality number), Excluded if
// the system was not run at that point.
type Point struct {
	X     float64
	Value float64
}

// Series is one system's measurements across the sweep.
type Series struct {
	Name   string
	Points []Point
}

// Value returns the series value at x (Excluded when absent).
func (s Series) Value(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Value
		}
	}
	return Excluded
}

// Table is one regenerated figure or table.
type Table struct {
	ID     string // e.g. "fig9a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Get returns the named series.
func (t *Table) Get(name string) *Series {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// Print renders the table in aligned text form.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	xs := t.xs()
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			v := s.Value(x)
			if v == Excluded {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4g", v))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as CSV (x column plus one column per series;
// excluded cells are empty), the plot-ready form of the figure.
func (t *Table) WriteCSV(w io.Writer) error {
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range t.xs() {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			v := s.Value(x)
			if v == Excluded {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%g", v))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// xs collects the sorted distinct X values across series.
func (t *Table) xs() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				out = append(out, p.X)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// timeIt measures f's wall time in seconds.
func timeIt(f func() error) (float64, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0).Seconds(), err
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) ([]*Table, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"tables23", "Tables 2-3: datasets and rules", Tables23},
		{"fig8a", "Figure 8(a): end-to-end cleansing, BigDansing vs NADEEF", Fig8a},
		{"fig8b", "Figure 8(b): detection vs repair time by error rate", Fig8b},
		{"fig9a", "Figure 9(a): single-node detection scaling, TaxA phi1", Fig9a},
		{"fig9b", "Figure 9(b): single-node detection scaling, TaxB phi2 (inequality)", Fig9b},
		{"fig9c", "Figure 9(c): single-node detection scaling, TPCH phi3", Fig9c},
		{"fig10a", "Figure 10(a): multi-worker detection, TaxA phi1 (incl. Hadoop backend)", Fig10a},
		{"fig10b", "Figure 10(b): multi-worker detection, TaxB phi2", Fig10b},
		{"fig10c", "Figure 10(c): large TPCH phi3, Spark vs Hadoop backends", Fig10c},
		{"fig11a", "Figure 11(a): scale-out speedup vs workers", Fig11a},
		{"fig11b", "Figure 11(b): deduplication, BigDansing vs Shark", Fig11b},
		{"fig11c", "Figure 11(c): OCJoin vs UCrossProduct vs CrossProduct", Fig11c},
		{"fig12a", "Figure 12(a): full API vs Detect-only abstraction", Fig12a},
		{"fig12b", "Figure 12(b): parallel vs centralized repair", Fig12b},
		{"table4", "Table 4: repair quality (precision/recall/iterations, distances)", Table4},
		{"ext-incremental", "Extension: incremental vs full re-detection in the cleansing loop", ExtIncremental},
		{"ext-consolidation", "Extension: consolidated multi-rule plans vs per-rule plans", ExtConsolidation},
		{"ext-combiner", "Extension: MR combiner effect on distributed equivalence class spill", ExtCombiner},
		{"ext-net", "Extension: Fig. 10 rerun across real worker processes (net backend)", ExtNet},
		{"ext-accuracy", "Extension: repair accuracy, equivalence vs hypergraph vs prob (precision/recall/distance)", ExtAccuracy},
		{"ext-plan", "Extension: static vs cost-based physical planner (TaxA phi1)", ExtPlan},
	}
}

// Run executes one experiment by ID and prints its tables to cfg.Out.
func Run(id string, cfg Config) error {
	cfg = cfg.withDefaults()
	for _, e := range All() {
		if e.ID != id {
			continue
		}
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
		if cfg.Out != nil {
			for _, t := range tables {
				t.Print(cfg.Out)
			}
		}
		return nil
	}
	return fmt.Errorf("experiments: unknown experiment %q", id)
}
