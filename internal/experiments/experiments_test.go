package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"bigdansing/internal/datagen"
	"bigdansing/internal/model"
)

// tinyCfg runs experiments at a small scale so the whole suite stays fast
// while shapes remain observable.
func tinyCfg() Config {
	return Config{Workers: 4, Seed: 7, Scale: 0.03}
}

// mkTaxA builds a dirty TaxA instance at an absolute row count.
func mkTaxA(cfg Config, rows int) *model.Relation {
	return datagen.TaxA(rows, 0.1, cfg.Seed).Dirty
}

// mkTPCH builds a dirty TPCH instance at an absolute row count.
func mkTPCH(cfg Config, rows int) *model.Relation {
	return datagen.TPCH(rows, 0.1, cfg.Seed).Dirty
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 21 {
		t.Errorf("experiments = %d, want 21 (every table and figure plus 6 extensions)", len(seen))
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("fig99", tinyCfg()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", XLabel: "rows",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 10, Value: 1.5}, {X: 20, Value: 3}}},
			{Name: "b", Points: []Point{{X: 10, Value: Excluded}}},
		},
		Notes: []string{"a note"}}
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	for _, want := range []string{"# x: demo", "rows", "a", "b", "1.5", "-", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestFig9aShape(t *testing.T) {
	tables, err := Fig9a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	bd, nd := tbl.Get(sysBigDansing), tbl.Get(sysNadeef)
	if bd == nil || nd == nil {
		t.Fatal("series missing")
	}
	// At the largest size BigDansing must beat NADEEF.
	lastX := bd.Points[len(bd.Points)-1].X
	if bd.Value(lastX) >= nd.Value(lastX) {
		t.Errorf("bigdansing (%v) should beat nadeef (%v) at %v rows",
			bd.Value(lastX), nd.Value(lastX), lastX)
	}
}

func TestFig9bOCJoinWins(t *testing.T) {
	// The crossover favors the baselines below ~1K rows (the paper also
	// shows PostgreSQL winning at the smallest sizes); test past it.
	cfg := tinyCfg()
	cfg.Scale = 0.25
	tables, err := Fig9b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	bd := tbl.Get(sysBigDansing)
	lastX := bd.Points[len(bd.Points)-1].X
	for _, sys := range []string{sysPostgres, sysSparkSQL, sysShark, sysNadeef} {
		if v := tbl.Get(sys).Value(lastX); v != Excluded && bd.Value(lastX) >= v {
			t.Errorf("bigdansing (%v) should beat %s (%v) on the inequality DC", bd.Value(lastX), sys, v)
		}
	}
}

func TestFig10aHadoopSlowerThanSpark(t *testing.T) {
	// Compare the two backends directly (Fig10a's full sweep also runs the
	// Shark cross product, far too slow for the test suite). Needs enough
	// rows for disk spilling to dominate the backend gap.
	cfg := tinyCfg()
	cfg = cfg.withDefaults()
	rule := mustRule(phi1())
	rel := mkTaxA(cfg, 40000)
	eventually(t, 3, "in-memory backend should beat disk backend", func() (bool, error) {
		spark, err := detectWith(cfg, sysBigDansing, rule, rel)
		if err != nil {
			return false, err
		}
		hadoop, err := detectWith(cfg, sysBDHadoop, rule, rel)
		if err != nil {
			return false, err
		}
		return spark < hadoop, nil
	})
}

func TestFig11aSpeedsUpWithWorkers(t *testing.T) {
	// Needs enough work per task for parallelism to pay off; the speedup
	// ceiling is the machine's physical core count, so assert a modest
	// 1.2x between 1 worker and the best multi-worker run.
	if runtime.NumCPU() < 2 {
		t.Skip("speedup needs more than one CPU")
	}
	cfg := tinyCfg()
	cfg.Scale = 0.5
	tables, err := Fig11a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bd := tables[0].Get(sysBigDansing)
	best := bd.Value(1)
	for _, p := range bd.Points {
		if p.Value < best {
			best = p.Value
		}
	}
	if best*1.1 >= bd.Value(1) {
		t.Errorf("multi-worker best (%v) should be faster than 1 worker (%v)", best, bd.Value(1))
	}
}

func TestFig11bBigDansingBeatsShark(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.25 // below ~100 rows the blocked UDF's overhead dominates
	tables, err := Fig11b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for _, p := range tbl.Get(sysBigDansing).Points {
		shark := tbl.Get(sysShark).Value(p.X)
		if p.Value >= shark {
			t.Errorf("dedup dataset %v: bigdansing %v vs shark %v", p.X, p.Value, shark)
		}
	}
}

func TestFig11cOCJoinBeatsCrossProducts(t *testing.T) {
	tables, err := Fig11c(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	oc := tbl.Get("ocjoin")
	lastX := oc.Points[len(oc.Points)-1].X
	if oc.Value(lastX) >= tbl.Get("crossproduct").Value(lastX) {
		t.Errorf("ocjoin (%v) should beat crossproduct (%v)", oc.Value(lastX), tbl.Get("crossproduct").Value(lastX))
	}
	if oc.Value(lastX) >= tbl.Get("ucrossproduct").Value(lastX) {
		t.Errorf("ocjoin (%v) should beat ucrossproduct (%v)", oc.Value(lastX), tbl.Get("ucrossproduct").Value(lastX))
	}
}

func TestFig12aFullAPIWins(t *testing.T) {
	tables, err := Fig12a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	full := tbl.Get("full-api").Points[0].Value
	only := tbl.Get("detect-only").Points[0].Value
	if full >= only {
		t.Errorf("full API (%v) should beat Detect-only (%v)", full, only)
	}
}

func TestFig8aAndFig8bRun(t *testing.T) {
	cfg := tinyCfg()
	tables, err := Fig8a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("fig8a tables = %d, want one per rule", len(tables))
	}
	for _, tbl := range tables {
		bd := tbl.Get(sysBigDansing)
		lastX := bd.Points[len(bd.Points)-1].X
		if bd.Value(lastX) >= tbl.Get(sysNadeef).Value(lastX) {
			t.Errorf("%s: bigdansing (%v) should beat nadeef (%v)", tbl.Title, bd.Value(lastX), tbl.Get(sysNadeef).Value(lastX))
		}
	}
	t8b, err := Fig8b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range t8b[0].Series {
		if len(s.Points) != 4 {
			t.Errorf("fig8b series %s points = %d", s.Name, len(s.Points))
		}
	}
}

func TestFig12bRuns(t *testing.T) {
	tables, err := Fig12b(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Series) != 2 {
		t.Fatal("two repair variants expected")
	}
}

func TestTable4QualityParity(t *testing.T) {
	tables, err := Table4(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	precision := tables[0]
	recall := tables[1]
	iters := tables[2]
	for _, p := range precision.Get("bigdansing").Points {
		cent := precision.Get("nadeef(centralized)").Value(p.X)
		if diff := p.Value - cent; diff > 0.05 || diff < -0.05 {
			t.Errorf("combo %v: parallel precision %v vs centralized %v", p.X, p.Value, cent)
		}
	}
	for _, p := range recall.Get("bigdansing").Points {
		if p.Value <= 0.5 {
			t.Errorf("combo %v: recall %v too low", p.X, p.Value)
		}
	}
	for _, p := range iters.Get("bigdansing").Points {
		cent := iters.Get("nadeef(centralized)").Value(p.X)
		if p.Value != cent {
			t.Errorf("combo %v: iterations %v vs centralized %v (paper: equal)", p.X, p.Value, cent)
		}
	}
}

func TestTables23(t *testing.T) {
	tables, err := Tables23(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatal("want table 2 and table 3")
	}
	if got := len(tables[1].Series[0].Points); got != 8 {
		t.Errorf("table 3 rules = %d, want 8", got)
	}
}

func TestRunPrintsOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	cfg.Out = &buf
	if err := Run("tables23", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "integrity constraints") {
		t.Error("output should contain table 3")
	}
}
