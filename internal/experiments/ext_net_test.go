package experiments

import (
	"os"
	"testing"

	"bigdansing/internal/netexec"
)

// TestMain lets the test binary double as a netexec worker so ext-net can
// spawn real worker processes. Importing netexec also registers the net
// backend factory with the engine.
func TestMain(m *testing.M) {
	netexec.MaybeWorker()
	os.Exit(m.Run())
}

// TestExtNetShape runs the scale-out rerun at a small scale and checks each
// worker count produced a measurement and moved real bytes over the wire.
func TestExtNetShape(t *testing.T) {
	cfg := Config{Workers: 4, Seed: 1, Scale: 0.05}
	tables, err := ExtNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Points) != 3 {
			t.Fatalf("series %s: want points for 1/2/4 workers, got %d", s.Name, len(s.Points))
		}
	}
	for i, p := range tab.Series[2].Points {
		if p.Value <= 0 {
			t.Errorf("worker count %v: no bytes crossed the wire", tab.Series[2].Points[i].X)
		}
	}
}
