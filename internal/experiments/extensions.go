package experiments

import (
	"fmt"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// Ablation experiments for this reproduction's own design choices (they
// have no counterpart figure in the paper; EXPERIMENTS.md reports them as
// extensions).

// ExtIncremental measures the cleansing loop with full re-detection per
// iteration vs block-incremental detection, across error rates.
func ExtIncremental(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ext-incremental", Title: "cleansing loop: full vs incremental re-detection (TaxA phi1)",
		XLabel: "error%", YLabel: "total detect seconds",
		Series: []Series{{Name: "full-redetect"}, {Name: "incremental"}}}
	rule := mustRule(phi1())
	rows := cfg.rows(20000)
	for _, rate := range []float64{0.01, 0.10, 0.50} {
		rel := datagen.TaxA(rows, rate, cfg.Seed).Dirty
		for si, incremental := range []bool{false, true} {
			opts := []cleanse.Option{cleanse.WithParallelRepair(repair.Options{})}
			if incremental {
				opts = append(opts, cleanse.WithIncremental())
			}
			cleaner, err := cleanse.NewCleaner(engine.New(cfg.Workers), []*core.Rule{rule}, opts...)
			if err != nil {
				return nil, err
			}
			res, err := cleaner.Clean(rel)
			if err != nil {
				return nil, err
			}
			t.Series[si].Points = append(t.Series[si].Points,
				Point{X: rate * 100, Value: res.Report().DetectTime.Seconds()})
		}
	}
	t.Notes = append(t.Notes, "extension: incremental detection re-processes only repaired blocks after the first pass")
	return []*Table{t}, nil
}

// ExtConsolidation measures detecting several same-table rules as one
// consolidated plan (shared scans, Algorithm 1) vs one plan per rule.
func ExtConsolidation(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ext-consolidation", Title: "multi-rule detection: consolidated plan vs per-rule plans (HAI)",
		XLabel: "rules", YLabel: "seconds",
		Series: []Series{{Name: "consolidated"}, {Name: "per-rule"}}}
	rows := cfg.rows(50000)
	tr := datagen.HAI(rows, 0.1, cfg.Seed)
	ruleSets := [][]*core.Rule{
		{mustRule(phi6())},
		{mustRule(phi6()), mustRule(phi7())},
		{mustRule(phi6()), mustRule(phi7()), mustRule(phi8())},
	}
	ctx := engine.New(cfg.Workers)
	// Warm up caches so the first measurement is not penalized.
	if _, err := core.DetectRules(ctx, ruleSets[0], tr.Dirty); err != nil {
		return nil, err
	}
	for _, rs := range ruleSets {
		x := float64(len(rs))
		secs, err := timeIt(func() error {
			_, err := core.DetectRules(ctx, rs, tr.Dirty)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Series[0].Points = append(t.Series[0].Points, Point{X: x, Value: secs})

		secs, err = timeIt(func() error {
			for _, r := range rs {
				if _, err := core.DetectRule(ctx, r, tr.Dirty); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Series[1].Points = append(t.Series[1].Points, Point{X: x, Value: secs})
	}
	t.Notes = append(t.Notes, "extension: Algorithm 1's shared scans across rules over one table")
	return []*Table{t}, nil
}

// ExtCombiner measures the distributed equivalence class with and without
// the map-side combiner, reporting spilled bytes (the quantity the
// combiner exists to cut) alongside runtime.
func ExtCombiner(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ext-combiner", Title: "distributed equivalence class: MR spill with vs without combiner",
		XLabel: "violations", YLabel: "bytes spilled",
		Series: []Series{{Name: "with-combiner"}, {Name: "without-combiner"}}}

	// Build star-shaped FD fix sets of growing size.
	mkFixSets := func(n int) []model.FixSet {
		hub := model.NewCell(0, 2, "city", model.S("HUB"))
		out := make([]model.FixSet, 0, n)
		for i := 1; i <= n; i++ {
			c := model.NewCell(int64(i), 2, "city", model.S("X"))
			out = append(out, model.FixSet{
				Violation: model.NewViolation("fd", hub, c),
				Fixes:     []model.Fix{model.NewCellFix(c, model.OpEQ, hub)},
			})
		}
		return out
	}
	for _, n := range []int{cfg.rows(1000), cfg.rows(5000), cfg.rows(20000)} {
		fs := mkFixSets(n)
		// With combiner (the shipped implementation).
		eng, err := mapred.New("", cfg.Workers)
		if err != nil {
			return nil, err
		}
		algo := &repair.DistributedEquivalenceClass{Engine: eng, Splits: cfg.Workers, Reduces: cfg.Workers}
		if _, err := algo.Repair(fs); err != nil {
			eng.Close()
			return nil, err
		}
		t.Series[0].Points = append(t.Series[0].Points,
			Point{X: float64(n), Value: float64(eng.Stats().BytesSpilled())})
		eng.Close()

		// Without: run the equivalent word count through plain Run.
		eng2, err := mapred.New("", cfg.Workers)
		if err != nil {
			return nil, err
		}
		spilled, err := wordCountSpill(eng2, fs, cfg.Workers)
		if err != nil {
			eng2.Close()
			return nil, err
		}
		t.Series[1].Points = append(t.Series[1].Points, Point{X: float64(n), Value: spilled})
		eng2.Close()
	}
	t.Notes = append(t.Notes, "extension: the Combine task of Appendix G.2 collapses per-map duplicate keys before spilling")
	return []*Table{t}, nil
}

// ExtNet reruns the Figure 10 scale-out shape on the networked backend: the
// same TaxA φ1 detection across 1, 2 and 4 real worker OS processes (spawned
// over loopback TCP), with the in-process backend as the baseline and the
// measured wire volume as a third series. The caller's binary must be able
// to act as a worker (cmd/bench and the test binaries call
// netexec.MaybeWorker at startup).
func ExtNet(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ext-net", Title: "Fig. 10 rerun: detection across real worker processes (TaxA phi1)",
		XLabel: "worker processes", YLabel: "seconds",
		Series: []Series{{Name: "net"}, {Name: "in-process"}, {Name: "net-wire-MB"}}}
	rule := mustRule(phi1())
	rel := datagen.TaxA(cfg.rows(40000), 0.1, cfg.Seed).Dirty

	base, err := timeIt(func() error {
		_, err := core.DetectRules(engine.New(cfg.Workers), []*core.Rule{rule}, rel)
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, w := range []int{1, 2, 4} {
		ctx, err := engine.NewContext(engine.Config{
			Parallelism: cfg.Workers,
			Backend:     engine.BackendNet,
			NetWorkers:  w,
		})
		if err != nil {
			return nil, err
		}
		secs, err := timeIt(func() error {
			_, err := core.DetectRules(ctx, []*core.Rule{rule}, rel)
			return err
		})
		snap := ctx.Stats().Snapshot()
		ctx.Close()
		if err != nil {
			return nil, err
		}
		t.Series[0].Points = append(t.Series[0].Points, Point{X: float64(w), Value: secs})
		t.Series[1].Points = append(t.Series[1].Points, Point{X: float64(w), Value: base})
		t.Series[2].Points = append(t.Series[2].Points,
			Point{X: float64(w), Value: float64(snap.NetBytesSent+snap.NetBytesRecv) / (1 << 20)})
	}
	t.Notes = append(t.Notes,
		"extension: partitions really cross process boundaries -- frames over loopback TCP, CRC-checked, credit-windowed",
		"expect net slower than in-process at this scale: the wire cost is real and the point is the trend across workers")
	return []*Table{t}, nil
}

// wordCountSpill replays job 1's record volume without a combiner: one
// record per element reaches the spill files.
func wordCountSpill(eng *mapred.Engine, fs []model.FixSet, workers int) (float64, error) {
	var input [][]byte
	for _, f := range fs {
		for _, c := range f.Violation.Cells {
			input = append(input, []byte(c.Value.Key()))
		}
	}
	_, err := eng.Run(input, workers, workers,
		func(rec []byte, emit mapred.Emit) { emit(string(rec), []byte{1}) },
		func(key string, values [][]byte, emit func([]byte)) { emit([]byte(key)) })
	if err != nil {
		return 0, err
	}
	return float64(eng.Stats().BytesSpilled()), nil
}

// ExtPlan compares the static rule-shape planner against the cost-based
// planner on the Fig. 9(a) workload (TaxA phi1) at a tiny and a large
// cardinality. At the tiny size the cost planner replaces the two-stage
// blocked shuffle with a broadcast local-group plan; at the large size it
// agrees with the static choice.
func ExtPlan(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ext-plan", Title: "detection: static vs cost-based physical planner (TaxA phi1)",
		XLabel: "rows", YLabel: "detect seconds",
		Series: []Series{{Name: "static"}, {Name: "cost"}}}
	rule := mustRule(phi1())
	ctx := engine.New(cfg.Workers)
	for _, base := range []int{150, 20000} {
		rows := cfg.rows(base)
		rel := datagen.TaxA(rows, 0.1, cfg.Seed).Dirty
		reps := 200000 / rows
		if reps < 3 {
			reps = 3
		}
		for si, mode := range []string{"static", "cost"} {
			var pl *core.Planner
			if mode == "cost" {
				pl = core.NewPlanner(core.WithCostModel(core.NewCostModel()),
					core.WithParallelism(cfg.Workers))
			}
			if _, err := core.DetectRuleWith(ctx, pl, rule, rel); err != nil {
				return nil, err
			}
			secs, err := timeIt(func() error {
				for i := 0; i < reps; i++ {
					if _, err := core.DetectRuleWith(ctx, pl, rule, rel); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			t.Series[si].Points = append(t.Series[si].Points,
				Point{X: float64(rows), Value: secs / float64(reps)})

			lp, err := core.PlanRule(rule, rel)
			if err != nil {
				return nil, err
			}
			planner := pl
			if planner == nil {
				planner = core.NewPlanner()
			}
			pp, err := planner.Plan(lp)
			if err != nil {
				return nil, err
			}
			label := pp.Pipelines[0].Impl.String()
			if pp.Pipelines[0].Broadcast {
				label = "Broadcast" + label
			}
			t.Notes = append(t.Notes,
				fmt.Sprintf("%s @ %d rows chose %s", mode, rows, label))
		}
	}
	t.Notes = append(t.Notes, "extension: cost model trades shuffle-stage setup against collect+pair cost; tiny inputs broadcast")
	return []*Table{t}, nil
}
