package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtIncrementalRuns(t *testing.T) {
	tables, err := ExtIncremental(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Series) != 2 {
		t.Fatal("two variants expected")
	}
	for _, s := range tbl.Series {
		if len(s.Points) != 3 {
			t.Errorf("series %s points = %d", s.Name, len(s.Points))
		}
	}
}

func TestExtConsolidationRuns(t *testing.T) {
	tables, err := ExtConsolidation(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Get("consolidated").Points) != 3 {
		t.Errorf("points = %d", len(tbl.Get("consolidated").Points))
	}
}

func TestExtCombinerSpillsLess(t *testing.T) {
	tables, err := ExtCombiner(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	with := tbl.Get("with-combiner")
	without := tbl.Get("without-combiner")
	lastX := with.Points[len(with.Points)-1].X
	if with.Value(lastX) >= without.Value(lastX) {
		t.Errorf("combiner spill %v should undercut plain %v",
			with.Value(lastX), without.Value(lastX))
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{ID: "x", XLabel: "rows",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Value: 0.5}, {X: 2, Value: 1}}},
			{Name: "b", Points: []Point{{X: 1, Value: Excluded}}},
		}}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "rows,a,b" {
		t.Errorf("header = %s", lines[0])
	}
	if lines[1] != "1,0.5," {
		t.Errorf("row 1 = %s (excluded cell should be empty)", lines[1])
	}
	if lines[2] != "2,1," {
		t.Errorf("row 2 = %s", lines[2])
	}
}
