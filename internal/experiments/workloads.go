package experiments

import (
	"fmt"

	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/rules"
)

// Rule φ identifiers follow Table 3.

// phi1 compiles φ1 (FD): zipcode -> city on TaxA.
func phi1() (*core.Rule, error) {
	fd, err := rules.ParseFD("phi1", "zipcode -> city")
	if err != nil {
		return nil, err
	}
	return fd.Compile(datagen.TaxSchema())
}

// phi2 compiles φ2 (DC): ¬(t1.salary > t2.salary ∧ t1.rate < t2.rate).
func phi2() (*core.Rule, error) {
	dc, err := rules.ParseDC("phi2", "t1.salary > t2.salary & t1.rate < t2.rate")
	if err != nil {
		return nil, err
	}
	return dc.Compile(datagen.TaxSchema())
}

// phi3 compiles φ3 (FD): o_custkey -> c_address on TPCH.
func phi3() (*core.Rule, error) {
	fd, err := rules.ParseFD("phi3", "o_custkey -> c_address")
	if err != nil {
		return nil, err
	}
	return fd.Compile(datagen.TPCHSchema())
}

// phi4 builds φ4 (UDF): customer deduplication by Levenshtein.
func phi4() (*core.Rule, error) {
	return rules.DedupRule(rules.DedupConfig{
		ID: "phi4", NameAttr: "c_name", PhoneAttr: "c_phone",
		NameThreshold: 0.75, PhoneThreshold: 0.7,
	}, datagen.CustomerSchema())
}

// phi5 builds φ5 (UDF): NCVoter deduplication by Levenshtein.
func phi5() (*core.Rule, error) {
	return rules.DedupRule(rules.DedupConfig{
		ID: "phi5", NameAttr: "name", PhoneAttr: "phone",
		NameThreshold: 0.75, PhoneThreshold: 0.7,
	}, datagen.NCVoterSchema())
}

// phi6, phi7, phi8 compile the HAI FDs of Table 3.
func haiRule(id, spec string) (*core.Rule, error) {
	fd, err := rules.ParseFD(id, spec)
	if err != nil {
		return nil, err
	}
	return fd.Compile(datagen.HAISchema())
}

func phi6() (*core.Rule, error) { return haiRule("phi6", "zip -> state") }
func phi7() (*core.Rule, error) { return haiRule("phi7", "phone -> zip") }
func phi8() (*core.Rule, error) { return haiRule("phi8", "providerID -> city, phone") }

// mustRule panics on rule-construction failure: the specs above are
// constants validated by tests, so a failure is a programming error.
func mustRule(r *core.Rule, err error) *core.Rule {
	if err != nil {
		panic(fmt.Sprintf("experiments: rule construction: %v", err))
	}
	return r
}
