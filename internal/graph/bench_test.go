package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomEdges builds a random sparse graph.
func randomEdges(n, m int, seed int64) []Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{A: int64(r.Intn(n)), B: int64(r.Intn(n))}
	}
	return edges
}

// BenchmarkConnectedComponents quantifies the cost of the GraphX-faithful
// BSP label propagation against a plain union-find — the overhead that
// explains the Figure 12(b) divergence recorded in EXPERIMENTS.md (on a
// real cluster BSP amortizes over machines; in one process it cannot).
func BenchmarkConnectedComponents(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		edges := randomEdges(n, n*2, int64(n))
		b.Run(fmt.Sprintf("bsp-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := NewGraph(edges)
				if _, err := ConnectedComponents(g, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("unionfind-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				uf := NewUnionFind()
				for _, e := range edges {
					uf.Union(e.A, e.B)
				}
				_ = uf.Components()
			}
		})
	}
}

// BenchmarkHypergraphCC measures the repair layer's actual entry point:
// connected components over violation-shaped hyperedges.
func BenchmarkHypergraphCC(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		edges := make([]Hyperedge, n)
		for i := range edges {
			edges[i] = Hyperedge{ID: int64(i), Nodes: []string{
				fmt.Sprintf("c%d", i%(n/4+1)),
				fmt.Sprintf("c%d", (i*7)%(n/4+1)),
			}}
		}
		h := NewHypergraph(edges)
		b.Run(fmt.Sprintf("edges-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.ConnectedComponents(4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionKWay measures the oversized-component splitter.
func BenchmarkPartitionKWay(b *testing.B) {
	edges := make([]Hyperedge, 5000)
	for i := range edges {
		edges[i] = Hyperedge{ID: int64(i), Nodes: []string{
			fmt.Sprintf("c%d", i%97), fmt.Sprintf("c%d", (i*3)%97),
		}}
	}
	h := NewHypergraph(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.PartitionKWay(8)
	}
}
