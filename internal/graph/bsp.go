// Package graph provides the graph-processing substrate BigDansing's repair
// layer needs: a Bulk Synchronous Parallel (Pregel-style) vertex-program
// engine standing in for GraphX, connected components over it, and a greedy
// k-way hypergraph partitioner standing in for multilevel partitioning [22].
package graph

import (
	"fmt"
	"sync"
)

// VertexID identifies a vertex.
type VertexID = int64

// Edge is an undirected edge between two vertices.
type Edge struct {
	A, B VertexID
}

// Graph is an adjacency-list graph over sparse vertex IDs.
type Graph struct {
	adj map[VertexID][]VertexID
}

// NewGraph builds a graph from undirected edges. Isolated vertices can be
// added with AddVertex.
func NewGraph(edges []Edge) *Graph {
	g := &Graph{adj: make(map[VertexID][]VertexID, len(edges)*2)}
	for _, e := range edges {
		g.AddEdge(e.A, e.B)
	}
	return g
}

// AddVertex ensures a vertex exists even with no edges.
func (g *Graph) AddVertex(v VertexID) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = nil
	}
}

// AddEdge adds an undirected edge (self-loops are recorded once).
func (g *Graph) AddEdge(a, b VertexID) {
	g.adj[a] = append(g.adj[a], b)
	if a != b {
		g.adj[b] = append(g.adj[b], a)
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// Neighbors returns the adjacency list of v.
func (g *Graph) Neighbors(v VertexID) []VertexID { return g.adj[v] }

// Vertices returns all vertex IDs (order unspecified).
func (g *Graph) Vertices() []VertexID {
	out := make([]VertexID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	return out
}

// Program is a Pregel vertex program. S is per-vertex state, M the message
// type. In each superstep Compute runs for every active vertex (one that
// received messages, or every vertex in superstep 0); it may update state,
// send messages along edges, and vote to halt by returning true. The
// computation ends when no messages are in flight and all vertices halted.
type Program[S, M any] struct {
	// Init produces the initial state of a vertex.
	Init func(id VertexID) S
	// Compute processes incoming messages. send enqueues a message for the
	// next superstep. Returning true votes to halt.
	Compute func(id VertexID, state *S, msgs []M, send func(to VertexID, m M)) bool
	// Combine optionally merges two messages bound for the same vertex
	// (GraphX's mergeMsg); nil keeps all messages.
	Combine func(a, b M) M
}

// Result carries the final vertex states and the superstep count.
type Result[S any] struct {
	States     map[VertexID]S
	Supersteps int
}

// Run executes the program on g with the given parallelism until quiescence
// or maxSupersteps (<=0 means 10 + |V|, a safe bound for label propagation).
func Run[S, M any](g *Graph, prog Program[S, M], parallelism, maxSupersteps int) (Result[S], error) {
	if parallelism <= 0 {
		parallelism = 4
	}
	if maxSupersteps <= 0 {
		maxSupersteps = 10 + g.NumVertices()
	}
	verts := g.Vertices()
	// Partition vertices round-robin for the worker pool.
	nparts := parallelism
	if nparts > len(verts) && len(verts) > 0 {
		nparts = len(verts)
	}
	if len(verts) == 0 {
		return Result[S]{States: map[VertexID]S{}}, nil
	}
	partOf := make(map[VertexID]int, len(verts))
	parts := make([][]VertexID, nparts)
	for i, v := range verts {
		p := i % nparts
		parts[p] = append(parts[p], v)
		partOf[v] = p
	}

	states := make(map[VertexID]*S, len(verts))
	for _, v := range verts {
		s := prog.Init(v)
		states[v] = &s
	}

	// inbox[p] holds messages for vertices in partition p.
	inbox := make([]map[VertexID][]M, nparts)
	for p := range inbox {
		inbox[p] = make(map[VertexID][]M)
	}

	deliver := func(out []map[VertexID][]M, to VertexID, m M) {
		p := partOf[to]
		box := out[p]
		if prog.Combine != nil {
			if cur, ok := box[to]; ok && len(cur) == 1 {
				box[to][0] = prog.Combine(cur[0], m)
				return
			}
		}
		box[to] = append(box[to], m)
	}

	var runErr error
	var errMu sync.Mutex
	superstep := 0
	for ; superstep < maxSupersteps; superstep++ {
		// next[p][q]: messages produced by partition p for partition q;
		// per-producer staging keeps the superstep lock-free.
		next := make([][]map[VertexID][]M, nparts)
		anyActive := false
		var wg sync.WaitGroup
		wg.Add(nparts)
		active := make([]bool, nparts)
		for p := 0; p < nparts; p++ {
			go func(p int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errMu.Lock()
						if runErr == nil {
							runErr = fmt.Errorf("graph: vertex program panicked in partition %d: %v", p, r)
						}
						errMu.Unlock()
					}
				}()
				out := make([]map[VertexID][]M, nparts)
				for q := range out {
					out[q] = make(map[VertexID][]M)
				}
				send := func(to VertexID, m M) {
					if _, known := partOf[to]; !known {
						return // message to a vertex outside the graph is dropped
					}
					deliver(out, to, m)
				}
				for _, v := range parts[p] {
					msgs := inbox[p][v]
					if superstep > 0 && len(msgs) == 0 {
						continue // halted and nothing received
					}
					halted := prog.Compute(v, states[v], msgs, send)
					if !halted {
						active[p] = true
					}
				}
				next[p] = out
			}(p)
		}
		wg.Wait()
		if runErr != nil {
			return Result[S]{}, runErr
		}
		// Merge staged messages into the next inboxes.
		newInbox := make([]map[VertexID][]M, nparts)
		for q := range newInbox {
			newInbox[q] = make(map[VertexID][]M)
		}
		anyMsg := false
		for p := 0; p < nparts; p++ {
			if active[p] {
				anyActive = true
			}
			for q := 0; q < nparts; q++ {
				for to, ms := range next[p][q] {
					if prog.Combine != nil && len(newInbox[q][to]) == 1 && len(ms) == 1 {
						newInbox[q][to][0] = prog.Combine(newInbox[q][to][0], ms[0])
					} else {
						newInbox[q][to] = append(newInbox[q][to], ms...)
					}
					anyMsg = true
				}
			}
		}
		inbox = newInbox
		_ = anyActive
		if !anyMsg {
			superstep++
			break
		}
	}

	final := make(map[VertexID]S, len(states))
	for v, s := range states {
		final[v] = *s
	}
	return Result[S]{States: final, Supersteps: superstep}, nil
}
