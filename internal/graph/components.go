package graph

import "sync/atomic"

// ConnectedComponents labels every vertex with the smallest vertex ID in its
// component, computed with HashMin label propagation on the BSP engine —
// the same algorithm GraphX's connectedComponents() runs for the paper's
// repair stage (Section 5.1).
func ConnectedComponents(g *Graph, parallelism int) (map[VertexID]VertexID, error) {
	prog := Program[VertexID, VertexID]{
		Init: func(id VertexID) VertexID { return id },
		Compute: func(id VertexID, state *VertexID, msgs []VertexID, send func(VertexID, VertexID)) bool {
			best := *state
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < *state || len(msgs) == 0 { // superstep 0 or improvement
				improved := best < *state
				*state = best
				if improved || len(msgs) == 0 {
					for _, nb := range g.Neighbors(id) {
						send(nb, best)
					}
				}
			}
			return true
		},
		Combine: func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, parallelism, 0)
	if err != nil {
		return nil, err
	}
	return res.States, nil
}

// UnionFind is a sequential disjoint-set structure; it is both the oracle
// the property tests compare the BSP result against and the fast path for
// small violation graphs.
type UnionFind struct {
	parent map[int64]int64
	rank   map[int64]int
}

// NewUnionFind creates an empty structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[int64]int64), rank: make(map[int64]int)}
}

// Add ensures x exists as its own singleton set.
func (u *UnionFind) Add(x int64) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
	}
}

// Find returns the representative of x's set (adding x if unknown), with
// path compression.
func (u *UnionFind) Find(x int64) int64 {
	u.Add(x)
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets of a and b.
func (u *UnionFind) Union(a, b int64) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Components groups all added elements by canonical representative, where
// the representative reported is the minimum member (matching HashMin).
func (u *UnionFind) Components() map[int64]int64 {
	mins := make(map[int64]int64)
	for x := range u.parent {
		r := u.Find(x)
		if cur, ok := mins[r]; !ok || x < cur {
			mins[r] = x
		}
	}
	out := make(map[int64]int64, len(u.parent))
	for x := range u.parent {
		out[x] = mins[u.Find(x)]
	}
	return out
}

// ConcurrentUnionFind is a lock-free disjoint-set structure over the dense
// element range [0, n). Union links the larger root under the smaller via
// compare-and-swap, so after all unions the representative of every set is
// its minimum member — the same canonical labeling HashMin converges to,
// which lets the repair layer swap it in for the BSP computation without
// changing component IDs. Find uses path halving; every parent update is a
// CAS, so concurrent Union/Find calls from the worker pool are safe.
type ConcurrentUnionFind struct {
	parent []atomic.Int32
}

// NewConcurrentUnionFind creates n singleton sets 0..n-1.
func NewConcurrentUnionFind(n int) *ConcurrentUnionFind {
	u := &ConcurrentUnionFind{parent: make([]atomic.Int32, n)}
	for i := range u.parent {
		u.parent[i].Store(int32(i))
	}
	return u
}

// Find returns the current representative of x's set, halving the path as
// it walks. A racing Union can change the representative after Find
// returns; callers needing the final labeling call Find after all unions
// complete.
func (u *ConcurrentUnionFind) Find(x int32) int32 {
	for {
		p := u.parent[x].Load()
		if p == x {
			return x
		}
		gp := u.parent[p].Load()
		if gp == p {
			return p
		}
		// Halve: point x at its grandparent. A lost race just means another
		// worker already shortened (or re-rooted) the path.
		u.parent[x].CompareAndSwap(p, gp)
		x = gp
	}
}

// Union merges the sets of a and b, rooting the merged set at the smaller
// of the two representatives.
func (u *ConcurrentUnionFind) Union(a, b int32) {
	for {
		ra, rb := u.Find(a), u.Find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Attach the larger root under the smaller. The CAS only succeeds
		// while rb is still a root; otherwise another union intervened and
		// the loop re-resolves both representatives.
		if u.parent[rb].CompareAndSwap(rb, ra) {
			return
		}
	}
}
