package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponentsSimple(t *testing.T) {
	g := NewGraph([]Edge{{1, 2}, {2, 3}, {10, 11}})
	g.AddVertex(99)
	labels, err := ConnectedComponents(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if labels[1] != 1 || labels[2] != 1 || labels[3] != 1 {
		t.Errorf("component of {1,2,3} = %d,%d,%d", labels[1], labels[2], labels[3])
	}
	if labels[10] != 10 || labels[11] != 10 {
		t.Errorf("component of {10,11} = %d,%d", labels[10], labels[11])
	}
	if labels[99] != 99 {
		t.Errorf("isolated vertex = %d", labels[99])
	}
}

func TestConnectedComponentsChain(t *testing.T) {
	// A long chain needs many supersteps for the min label to propagate.
	var edges []Edge
	for i := int64(0); i < 200; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := NewGraph(edges)
	labels, err := ConnectedComponents(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d labeled %d, want 0", v, l)
		}
	}
}

func TestBSPMatchesUnionFind(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := len(raw)
		if n > 60 {
			n = 60
		}
		uf := NewUnionFind()
		g := &Graph{adj: map[VertexID][]VertexID{}}
		for i := 0; i < n; i++ {
			a := int64(raw[i] % 40)
			b := int64(r.Intn(40))
			g.AddEdge(a, b)
			uf.Union(a, b)
		}
		want := uf.Components()
		got, err := ConnectedComponents(g, 4)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for v, l := range want {
			if got[v] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBSPPanicSurfaces(t *testing.T) {
	g := NewGraph([]Edge{{1, 2}})
	prog := Program[int, int]{
		Init:    func(id VertexID) int { return 0 },
		Compute: func(id VertexID, s *int, msgs []int, send func(VertexID, int)) bool { panic("boom") },
	}
	if _, err := Run(g, prog, 2, 5); err == nil {
		t.Fatal("vertex panic should surface as error")
	}
}

func TestBSPEmptyGraph(t *testing.T) {
	g := NewGraph(nil)
	labels, err := ConnectedComponents(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 0 {
		t.Error("empty graph has no labels")
	}
}

func TestBSPMessageCombining(t *testing.T) {
	// Sum-combine: each leaf sends 1 to the hub in superstep 0; the hub must
	// receive the combined total in superstep 1.
	g := NewGraph([]Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	type state struct{ total int }
	prog := Program[state, int]{
		Init: func(id VertexID) state { return state{} },
		Compute: func(id VertexID, s *state, msgs []int, send func(VertexID, int)) bool {
			for _, m := range msgs {
				s.total += m
			}
			if len(msgs) == 0 && id != 0 { // superstep 0, leaves
				send(0, 1)
			}
			return true
		},
		Combine: func(a, b int) int { return a + b },
	}
	res, err := Run(g, prog, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.States[0].total != 4 {
		t.Errorf("hub total = %d, want 4", res.States[0].total)
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind()
	uf.Union(1, 2)
	uf.Union(3, 4)
	if uf.Find(1) != uf.Find(2) {
		t.Error("1 and 2 merged")
	}
	if uf.Find(1) == uf.Find(3) {
		t.Error("1 and 3 separate")
	}
	uf.Union(2, 3)
	if uf.Find(1) != uf.Find(4) {
		t.Error("transitive merge")
	}
	comps := uf.Components()
	for _, v := range []int64{1, 2, 3, 4} {
		if comps[v] != 1 {
			t.Errorf("component of %d = %d", v, comps[v])
		}
	}
}

func TestHypergraphConnectedComponents(t *testing.T) {
	// Mirrors Figure 7: v1 and v2 share element c2 -> CC1; v3 alone -> CC2.
	h := NewHypergraph([]Hyperedge{
		{ID: 1, Nodes: []string{"c1", "c2"}},
		{ID: 2, Nodes: []string{"c2", "c3"}},
		{ID: 3, Nodes: []string{"c4", "c5"}},
	})
	cc, err := h.ConnectedComponents(4)
	if err != nil {
		t.Fatal(err)
	}
	if cc[1] != cc[2] {
		t.Error("v1 and v2 share c2, same component")
	}
	if cc[3] == cc[1] {
		t.Error("v3 is independent")
	}
	if cc[1] != 1 {
		t.Errorf("component id should be min hyperedge id, got %d", cc[1])
	}
}

func TestHypergraphCCMatchesUnionFindOracle(t *testing.T) {
	f := func(pairs []uint8) bool {
		n := len(pairs) / 2
		if n > 30 {
			n = 30
		}
		edges := make([]Hyperedge, 0, n)
		uf := NewUnionFind()
		for i := 0; i < n; i++ {
			a := fmt.Sprintf("n%d", pairs[2*i]%20)
			b := fmt.Sprintf("n%d", pairs[2*i+1]%20)
			edges = append(edges, Hyperedge{ID: int64(i), Nodes: []string{a, b}})
		}
		h := NewHypergraph(edges)
		got, err := h.ConnectedComponents(3)
		if err != nil {
			return false
		}
		// Oracle: union edges sharing nodes, via node->edge index.
		nodeFirst := map[string]int64{}
		for _, e := range edges {
			uf.Add(e.ID)
			for _, nd := range e.Nodes {
				if f, ok := nodeFirst[nd]; ok {
					uf.Union(f, e.ID)
				} else {
					nodeFirst[nd] = e.ID
				}
			}
		}
		want := uf.Components()
		for id, c := range want {
			if got[id] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartitionKWayBalanceAndCompleteness(t *testing.T) {
	var edges []Hyperedge
	for i := int64(0); i < 100; i++ {
		edges = append(edges, Hyperedge{ID: i, Nodes: []string{
			fmt.Sprintf("c%d", i%17), fmt.Sprintf("c%d", (i*3)%17),
		}})
	}
	h := NewHypergraph(edges)
	parts := h.PartitionKWay(4)
	total := 0
	seen := map[int64]bool{}
	maxPart := 0
	for _, p := range parts {
		total += len(p)
		if len(p) > maxPart {
			maxPart = len(p)
		}
		for _, e := range p {
			if seen[e.ID] {
				t.Fatalf("hyperedge %d assigned twice", e.ID)
			}
			seen[e.ID] = true
		}
	}
	if total != 100 {
		t.Fatalf("partition lost edges: %d", total)
	}
	if maxPart > 100/4+1 {
		t.Errorf("imbalanced: max part %d", maxPart)
	}
}

func TestPartitionKWayPrefersSharedNodes(t *testing.T) {
	// Two tight clusters: good partitioning keeps each together.
	var edges []Hyperedge
	for i := int64(0); i < 10; i++ {
		edges = append(edges, Hyperedge{ID: i, Nodes: []string{"a1", fmt.Sprintf("x%d", i)}})
	}
	for i := int64(10); i < 20; i++ {
		edges = append(edges, Hyperedge{ID: i, Nodes: []string{"b1", fmt.Sprintf("y%d", i)}})
	}
	h := NewHypergraph(edges)
	parts := h.PartitionKWay(2)
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if got := Cut(parts); got > 1 {
		t.Errorf("cut = %d; the two clusters should separate cleanly", got)
	}
}

func TestPartitionKWaySmall(t *testing.T) {
	h := NewHypergraph([]Hyperedge{{ID: 1, Nodes: []string{"a"}}})
	parts := h.PartitionKWay(5)
	if len(parts) != 1 || len(parts[0]) != 1 {
		t.Errorf("single edge: %v", parts)
	}
	empty := NewHypergraph(nil)
	if got := empty.PartitionKWay(3); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty hypergraph: %v", got)
	}
}

func TestCut(t *testing.T) {
	parts := [][]Hyperedge{
		{{ID: 1, Nodes: []string{"a", "b"}}},
		{{ID: 2, Nodes: []string{"b", "c"}}},
		{{ID: 3, Nodes: []string{"d"}}},
	}
	if got := Cut(parts); got != 1 {
		t.Errorf("cut = %d, want 1 (only b crosses)", got)
	}
}
