package graph

import (
	"sort"
)

// HyperedgeOf is one edge of a hypergraph: an identifier plus the set of
// node keys it covers, generic over any comparable node type. In the repair
// layer a hyperedge is a violation and the nodes are the cells ("elements")
// its possible fixes touch (Section 5.1) — keyed by model.CellKey rather
// than a rendered string, so building the graph allocates no per-cell
// strings.
type HyperedgeOf[N comparable] struct {
	ID    int64
	Nodes []N
}

// Hyperedge is a string-keyed hyperedge, kept for callers (and tests) that
// key nodes by rendered strings.
type Hyperedge = HyperedgeOf[string]

// HypergraphOf is a set of hyperedges over comparable-keyed nodes.
type HypergraphOf[N comparable] struct {
	Edges []HyperedgeOf[N]
}

// Hypergraph is a string-keyed hypergraph.
type Hypergraph = HypergraphOf[string]

// NewHypergraphOf builds a hypergraph over any comparable node type.
func NewHypergraphOf[N comparable](edges []HyperedgeOf[N]) *HypergraphOf[N] {
	return &HypergraphOf[N]{Edges: edges}
}

// NewHypergraph builds a string-keyed hypergraph.
func NewHypergraph(edges []Hyperedge) *Hypergraph { return NewHypergraphOf(edges) }

// ConnectedComponents groups hyperedges into connected components: two
// hyperedges are connected when they share a node. It returns, per
// hyperedge ID, a component ID (the smallest hyperedge ID in the component).
//
// The computation mirrors the paper's use of GraphX: the hypergraph is
// encoded as a bipartite graph (hyperedge vertices and node vertices) and
// connected components run on the BSP engine.
func (h *HypergraphOf[N]) ConnectedComponents(parallelism int) (map[int64]int64, error) {
	if len(h.Edges) == 0 {
		return map[int64]int64{}, nil
	}
	// Encode: hyperedge e -> vertex 2*idx; node n -> vertex 2*nodeIdx+1.
	// Using dense indexes keeps vertex IDs disjoint from hyperedge IDs.
	nodeIdx := make(map[N]int64)
	g := &Graph{adj: make(map[VertexID][]VertexID)}
	for i, e := range h.Edges {
		ev := VertexID(2 * int64(i))
		g.AddVertex(ev)
		for _, n := range e.Nodes {
			ni, ok := nodeIdx[n]
			if !ok {
				ni = int64(len(nodeIdx))
				nodeIdx[n] = ni
			}
			g.AddEdge(ev, VertexID(2*ni+1))
		}
	}
	labels, err := ConnectedComponents(g, parallelism)
	if err != nil {
		return nil, err
	}
	// The label of a component is a vertex id; map it back to the smallest
	// hyperedge ID carrying that label.
	compMin := make(map[VertexID]int64)
	for i, e := range h.Edges {
		l := labels[VertexID(2*int64(i))]
		if cur, ok := compMin[l]; !ok || e.ID < cur {
			compMin[l] = e.ID
		}
	}
	out := make(map[int64]int64, len(h.Edges))
	for i, e := range h.Edges {
		out[e.ID] = compMin[labels[VertexID(2*int64(i))]]
	}
	return out, nil
}

// PartitionKWay splits the hyperedges into k balanced parts, a greedy
// stand-in for multilevel k-way hypergraph partitioning [22]: hyperedges are
// placed largest-first on the part sharing the most nodes with them
// (minimizing cut), subject to a balance cap of ceil(|E|/k)+1 edges.
// The paper invokes this when a connected component is too large for one
// repair worker's memory (Section 5.1).
func (h *HypergraphOf[N]) PartitionKWay(k int) [][]HyperedgeOf[N] {
	if k <= 1 || len(h.Edges) <= 1 {
		return [][]HyperedgeOf[N]{append([]HyperedgeOf[N](nil), h.Edges...)}
	}
	if k > len(h.Edges) {
		k = len(h.Edges)
	}
	capPerPart := (len(h.Edges)+k-1)/k + 1

	order := make([]int, len(h.Edges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(h.Edges[order[a]].Nodes) > len(h.Edges[order[b]].Nodes)
	})

	parts := make([][]HyperedgeOf[N], k)
	nodeParts := make([]map[N]int, k) // node -> times seen in part
	for i := range nodeParts {
		nodeParts[i] = make(map[N]int)
	}
	for _, ei := range order {
		e := h.Edges[ei]
		best, bestShared := -1, -1
		for p := 0; p < k; p++ {
			if len(parts[p]) >= capPerPart {
				continue
			}
			shared := 0
			for _, n := range e.Nodes {
				if nodeParts[p][n] > 0 {
					shared++
				}
			}
			if shared > bestShared || (shared == bestShared && (best == -1 || len(parts[p]) < len(parts[best]))) {
				best, bestShared = p, shared
			}
		}
		if best == -1 { // all at cap (can happen from the +1 slack); least loaded
			best = 0
			for p := 1; p < k; p++ {
				if len(parts[p]) < len(parts[best]) {
					best = p
				}
			}
		}
		parts[best] = append(parts[best], e)
		for _, n := range e.Nodes {
			nodeParts[best][n]++
		}
	}
	// Drop empty parts.
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Cut counts the nodes appearing in more than one of the given parts — the
// quantity the partitioner heuristically minimizes and the number of cells
// at risk of contradictory repairs (Example 2).
func Cut[N comparable](parts [][]HyperedgeOf[N]) int {
	seenIn := make(map[N]int)
	for pi, p := range parts {
		mark := pi + 1
		seen := make(map[N]bool)
		for _, e := range p {
			for _, n := range e.Nodes {
				if seen[n] {
					continue
				}
				seen[n] = true
				if prev, ok := seenIn[n]; !ok {
					seenIn[n] = mark
				} else if prev != mark && prev != -1 {
					seenIn[n] = -1
				}
			}
		}
	}
	cut := 0
	for _, v := range seenIn {
		if v == -1 {
			cut++
		}
	}
	return cut
}
