// Package join implements BigDansing's physical join operators over tuple
// datasets: the naive CrossProduct, the UCrossProduct enhancer that halves
// the pair space for symmetric rules, and OCJoin (Algorithm 2), the
// partition-sort-prune-join operator for inequality ("ordering comparison")
// self joins that Figure 11(c) shows beating cross products by more than two
// orders of magnitude.
package join

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// Cond is one ordering-comparison join condition of a self join:
// left.LeftCol Op right.RightCol.
type Cond struct {
	LeftCol  int
	Op       model.Op
	RightCol int
}

// String renders the condition for diagnostics.
func (c Cond) String() string {
	return fmt.Sprintf("t1[%d] %s t2[%d]", c.LeftCol, c.Op, c.RightCol)
}

// Eval reports whether the condition holds for the ordered pair (l, r).
func (c Cond) Eval(l, r model.Tuple) bool {
	return c.Op.Eval(l.Cell(c.LeftCol), r.Cell(c.RightCol))
}

// CrossProduct enumerates all ordered pairs (t1, t2), t1 != t2 — the
// baseline physical Iterate of Figure 11(c).
func CrossProduct(d *engine.Dataset[model.Tuple]) *engine.Dataset[engine.PairOf[model.Tuple]] {
	return engine.SelfCartesian(d)
}

// UCrossProduct enumerates the n(n-1)/2 unique unordered pairs, valid when
// the rule's predicates are symmetric so detection is order-insensitive
// (Section 4.2).
func UCrossProduct(d *engine.Dataset[model.Tuple]) *engine.Dataset[engine.PairOf[model.Tuple]] {
	return engine.SelfCartesianUnique(d)
}

// partition is the per-range state OCJoin builds: the tuples plus, per join
// condition, a copy sorted on the condition's right column, and min/max
// bounds per referenced column for pruning.
type partition struct {
	tuples []model.Tuple
	// sorted[j] holds indexes into tuples ordered by conds[j].RightCol.
	sorted [][]int
	// bounds per column id: [min,max] over the partition.
	lo, hi map[int]model.Value
}

// OCJoin performs the self join of d under the conjunction of ordering
// conditions, following Algorithm 2:
//
//	Partitioning: range partition d on the first condition's left column.
//	Sorting: per partition, sort a view per condition (on its right column).
//	Pruning: skip partition pairs whose column bounds cannot satisfy every
//	  condition. (The paper prunes on PartAtt overlap only; we check
//	  feasibility of all conditions, which subsumes it and is provably safe.)
//	Joining: per surviving pair, binary-search the first condition's sorted
//	  view to bound candidates, then verify the remaining conditions.
//
// The output contains every ordered pair (t1, t2), t1 != t2, satisfying all
// conditions, exactly once.
func OCJoin(d *engine.Dataset[model.Tuple], conds []Cond, nbParts int) (*engine.Dataset[engine.PairOf[model.Tuple]], error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("join: OCJoin requires at least one condition")
	}
	for _, c := range conds {
		if !c.Op.IsOrdering() {
			return nil, fmt.Errorf("join: OCJoin condition %s is not an ordering comparison", c)
		}
	}
	if nbParts <= 0 {
		nbParts = d.Context().Parallelism()
	}
	partAtt := conds[0].LeftCol

	// --- Partitioning phase: range partition on partAtt.
	ranged := engine.RangePartitionBy(d, func(a, b model.Tuple) bool {
		return model.Compare(a.Cell(partAtt), b.Cell(partAtt)) < 0
	}, nbParts)
	if err := ranged.Err(); err != nil {
		return nil, err
	}

	// --- Sorting phase: build per-partition sorted views and bounds.
	// Collect every referenced column once.
	cols := map[int]struct{}{}
	for _, c := range conds {
		cols[c.LeftCol] = struct{}{}
		cols[c.RightCol] = struct{}{}
	}
	nParts := ranged.NumPartitions()
	parts := make([]*partition, 0, nParts)
	for p := 0; p < nParts; p++ {
		tuples := ranged.Partition(p)
		if len(tuples) == 0 {
			continue
		}
		pt := &partition{
			tuples: tuples,
			sorted: make([][]int, len(conds)),
			lo:     make(map[int]model.Value, len(cols)),
			hi:     make(map[int]model.Value, len(cols)),
		}
		for j, c := range conds {
			idx := make([]int, len(tuples))
			for i := range idx {
				idx[i] = i
			}
			col := c.RightCol
			sort.SliceStable(idx, func(a, b int) bool {
				return model.Compare(tuples[idx[a]].Cell(col), tuples[idx[b]].Cell(col)) < 0
			})
			pt.sorted[j] = idx
		}
		for col := range cols {
			lo, hi := tuples[0].Cell(col), tuples[0].Cell(col)
			for _, t := range tuples[1:] {
				v := t.Cell(col)
				if model.Compare(v, lo) < 0 {
					lo = v
				}
				if model.Compare(v, hi) > 0 {
					hi = v
				}
			}
			pt.lo[col], pt.hi[col] = lo, hi
		}
		parts = append(parts, pt)
	}

	// --- Pruning phase: enumerate ordered partition pairs (a, b) — the left
	// tuple drawn from a, the right from b — keeping only feasible ones.
	type task struct{ a, b int }
	var tasks []task
	for a := range parts {
		for b := range parts {
			if feasible(parts[a], parts[b], conds) {
				tasks = append(tasks, task{a, b})
			}
		}
	}

	// --- Joining phase: run the surviving pair joins in parallel.
	taskDS := engine.Parallelize(d.Context(), tasks, 0)
	out := engine.FlatMap(taskDS, func(tk task) []engine.PairOf[model.Tuple] {
		return joinPair(parts[tk.a], parts[tk.b], conds)
	})
	if err := out.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// feasible reports whether any (l in a, r in b) could satisfy every
// condition, using the per-column bounds.
func feasible(a, b *partition, conds []Cond) bool {
	for _, c := range conds {
		// l.Cell(LeftCol) in [a.lo, a.hi]; r.Cell(RightCol) in [b.lo, b.hi].
		aLo, aHi := a.lo[c.LeftCol], a.hi[c.LeftCol]
		bLo, bHi := b.lo[c.RightCol], b.hi[c.RightCol]
		switch c.Op {
		case model.OpLT: // exists l < r  <=>  aLo < bHi
			if model.Compare(aLo, bHi) >= 0 {
				return false
			}
		case model.OpLE:
			if model.Compare(aLo, bHi) > 0 {
				return false
			}
		case model.OpGT: // exists l > r  <=>  aHi > bLo
			if model.Compare(aHi, bLo) <= 0 {
				return false
			}
		case model.OpGE:
			if model.Compare(aHi, bLo) < 0 {
				return false
			}
		}
	}
	return true
}

// joinPair emits all ordered pairs (l in a, r in b), l != r, satisfying the
// conditions.
//
// With a single condition it walks a's tuples and narrows b's candidates
// with a binary search over the view sorted on conds[0].RightCol — already
// output-sensitive. With two or more conditions it runs a sort-merge sweep
// with a position bitset (the technique the authors later published as
// IEJoin): left tuples are processed in conds[0]-order while the right
// tuples admissible under conds[0] are accumulated, as bits, at their rank
// in the conds[1]-sorted view; each left tuple then enumerates the set bits
// inside the conds[1] rank range. The per-pair cost collapses to a word
// scan, which is where OCJoin's two-orders-of-magnitude advantage over
// cross products comes from (Figure 11(c)).
func joinPair(a, b *partition, conds []Cond) []engine.PairOf[model.Tuple] {
	if len(conds) == 1 {
		return joinPairSingle(a, b, conds)
	}
	return joinPairSweep(a, b, conds)
}

// joinPairSingle handles one condition via binary search on the sorted view.
func joinPairSingle(a, b *partition, conds []Cond) []engine.PairOf[model.Tuple] {
	var out []engine.PairOf[model.Tuple]
	c0 := conds[0]
	view := b.sorted[0]
	cellAt := func(i int) model.Value { return b.tuples[view[i]].Cell(c0.RightCol) }
	for _, l := range a.tuples {
		lv := l.Cell(c0.LeftCol)
		lo, hi := rankRange(c0.Op, lv, len(view), cellAt)
		for i := lo; i < hi; i++ {
			r := b.tuples[view[i]]
			if r.ID == l.ID {
				continue
			}
			out = append(out, engine.PairOf[model.Tuple]{Left: l, Right: r})
		}
	}
	return out
}

// rankRange computes the half-open index range [lo, hi) of a view sorted
// ascending (values via cellAt) whose values v satisfy lv op v.
func rankRange(op model.Op, lv model.Value, n int, cellAt func(int) model.Value) (int, int) {
	switch op {
	case model.OpLT: // v > lv
		return sort.Search(n, func(i int) bool { return model.Compare(cellAt(i), lv) > 0 }), n
	case model.OpLE: // v >= lv
		return sort.Search(n, func(i int) bool { return model.Compare(cellAt(i), lv) >= 0 }), n
	case model.OpGT: // v < lv
		return 0, sort.Search(n, func(i int) bool { return model.Compare(cellAt(i), lv) >= 0 })
	case model.OpGE: // v <= lv
		return 0, sort.Search(n, func(i int) bool { return model.Compare(cellAt(i), lv) > 0 })
	default:
		return 0, n
	}
}

// joinPairSweep handles two or more conditions with the bitset sweep.
func joinPairSweep(a, b *partition, conds []Cond) []engine.PairOf[model.Tuple] {
	c0, c1 := conds[0], conds[1]
	rest := conds[2:]

	// Right side: BX ascending on c0.RightCol drives insertion; BY
	// ascending on c1.RightCol defines bit positions.
	bx, by := b.sorted[0], b.sorted[1]
	rankOf := make([]int, len(b.tuples)) // tuple index -> rank in BY
	for rank, ti := range by {
		rankOf[ti] = rank
	}
	yAt := func(rank int) model.Value { return b.tuples[by[rank]].Cell(c1.RightCol) }

	// Left side: process in c0.LeftCol order. For ">"-type conditions the
	// admissible right set (r.X < l.X) grows with ascending l.X; for
	// "<"-type it grows with descending l.X.
	order := make([]int, len(a.tuples))
	for i := range order {
		order[i] = i
	}
	asc := c0.Op == model.OpGT || c0.Op == model.OpGE
	sort.SliceStable(order, func(i, j int) bool {
		c := model.Compare(a.tuples[order[i]].Cell(c0.LeftCol), a.tuples[order[j]].Cell(c0.LeftCol))
		if asc {
			return c < 0
		}
		return c > 0
	})

	// admissible reports whether right value rx is admissible for lx.
	admissible := func(lx, rx model.Value) bool { return c0.Op.Eval(lx, rx) }

	bits := make([]uint64, (len(b.tuples)+63)/64)
	set := func(rank int) { bits[rank>>6] |= 1 << uint(rank&63) }

	var out []engine.PairOf[model.Tuple]
	// Insertion pointer into BX: ascending for ">"-type, descending for
	// "<"-type (larger right X first).
	j := 0
	if !asc {
		j = len(bx) - 1
	}
	for _, li := range order {
		l := a.tuples[li]
		lx := l.Cell(c0.LeftCol)
		if asc {
			for j < len(bx) && admissible(lx, b.tuples[bx[j]].Cell(c0.RightCol)) {
				set(rankOf[bx[j]])
				j++
			}
			// The pointer stops at the first non-admissible right value;
			// because BX is ascending and the op is >-type, everything
			// beyond is non-admissible too.
		} else {
			for j >= 0 && admissible(lx, b.tuples[bx[j]].Cell(c0.RightCol)) {
				set(rankOf[bx[j]])
				j--
			}
		}
		lo, hi := rankRange(c1.Op, l.Cell(c1.LeftCol), len(by), yAt)
		emitSetBits(bits, lo, hi, func(rank int) {
			r := b.tuples[by[rank]]
			if r.ID == l.ID {
				return
			}
			for _, c := range rest {
				if !c.Eval(l, r) {
					return
				}
			}
			out = append(out, engine.PairOf[model.Tuple]{Left: l, Right: r})
		})
	}
	return out
}

// emitSetBits visits every set bit with index in [lo, hi).
func emitSetBits(bits []uint64, lo, hi int, visit func(rank int)) {
	if lo >= hi {
		return
	}
	firstWord, lastWord := lo>>6, (hi-1)>>6
	for w := firstWord; w <= lastWord; w++ {
		word := bits[w]
		if word == 0 {
			continue
		}
		if w == firstWord {
			word &= ^uint64(0) << uint(lo&63)
		}
		if w == lastWord {
			rem := uint(hi - w<<6)
			if rem < 64 {
				word &= (uint64(1) << rem) - 1
			}
		}
		for word != 0 {
			bit := mathbits.TrailingZeros64(word)
			visit(w<<6 + bit)
			word &= word - 1
		}
	}
}

// NaiveInequalityJoin is the correctness oracle and the baseline the SQL
// engines in the evaluation embody: full cross product plus post-selection.
func NaiveInequalityJoin(tuples []model.Tuple, conds []Cond) []engine.PairOf[model.Tuple] {
	var out []engine.PairOf[model.Tuple]
	for _, l := range tuples {
		for _, r := range tuples {
			if l.ID == r.ID {
				continue
			}
			ok := true
			for _, c := range conds {
				if !c.Eval(l, r) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, engine.PairOf[model.Tuple]{Left: l, Right: r})
			}
		}
	}
	return out
}
