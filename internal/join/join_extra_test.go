package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// wideTuples builds tuples with three float columns.
func wideTuples(n int, seed int64) []model.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([]model.Tuple, n)
	for i := range out {
		out[i] = model.NewTuple(int64(i),
			model.F(float64(r.Intn(50))),
			model.F(float64(r.Intn(50))),
			model.F(float64(r.Intn(50))))
	}
	return out
}

func TestOCJoinThreeConditions(t *testing.T) {
	ctx := engine.New(4)
	tuples := wideTuples(120, 5)
	d := engine.Parallelize(ctx, tuples, 4)
	conds := []Cond{
		{LeftCol: 0, Op: model.OpGT, RightCol: 0},
		{LeftCol: 1, Op: model.OpLT, RightCol: 1},
		{LeftCol: 2, Op: model.OpLE, RightCol: 2},
	}
	got, err := OCJoin(d, conds, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotPairs, err := got.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := NaiveInequalityJoin(tuples, conds)
	gk, wk := sortedKeys(gotPairs), sortedKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("3-cond: OCJoin %d vs naive %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("3-cond pair mismatch at %d", i)
		}
	}
}

// TestOCJoinAllOpCombinations sweeps every ordered pair of ordering
// operators as a two-condition conjunction and checks against the oracle.
func TestOCJoinAllOpCombinations(t *testing.T) {
	ctx := engine.New(4)
	ops := []model.Op{model.OpLT, model.OpLE, model.OpGT, model.OpGE}
	tuples := wideTuples(60, 9)
	d := engine.Parallelize(ctx, tuples, 3)
	for _, op0 := range ops {
		for _, op1 := range ops {
			conds := []Cond{
				{LeftCol: 0, Op: op0, RightCol: 0},
				{LeftCol: 1, Op: op1, RightCol: 1},
			}
			got, err := OCJoin(d, conds, 3)
			if err != nil {
				t.Fatalf("%v/%v: %v", op0, op1, err)
			}
			n, err := got.Count()
			if err != nil {
				t.Fatal(err)
			}
			want := len(NaiveInequalityJoin(tuples, conds))
			if n != want {
				t.Errorf("ops %v,%v: OCJoin %d vs naive %d", op0, op1, n, want)
			}
		}
	}
}

// TestOCJoinCrossColumnConditions joins different columns on the two sides
// (t1.a < t2.b), which exercises the bounds bookkeeping.
func TestOCJoinCrossColumnConditions(t *testing.T) {
	ctx := engine.New(4)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		tuples := wideTuples(n, seed)
		d := engine.Parallelize(ctx, tuples, 3)
		conds := []Cond{
			{LeftCol: 0, Op: model.OpLT, RightCol: 1},
			{LeftCol: 1, Op: model.OpGE, RightCol: 2},
		}
		got, err := OCJoin(d, conds, 4)
		if err != nil {
			return false
		}
		gotPairs, err := got.Collect()
		if err != nil {
			return false
		}
		want := NaiveInequalityJoin(tuples, conds)
		gk, wk := sortedKeys(gotPairs), sortedKeys(want)
		if len(gk) != len(wk) {
			return false
		}
		for i := range gk {
			if gk[i] != wk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOCJoinManyPartitionsFewTuples(t *testing.T) {
	ctx := engine.New(4)
	tuples := wideTuples(3, 1)
	d := engine.Parallelize(ctx, tuples, 2)
	got, err := OCJoin(d, []Cond{{LeftCol: 0, Op: model.OpLT, RightCol: 0}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := got.Count()
	want := len(NaiveInequalityJoin(tuples, []Cond{{LeftCol: 0, Op: model.OpLT, RightCol: 0}}))
	if n != want {
		t.Errorf("more partitions than tuples: %d vs %d", n, want)
	}
}

func TestEmitSetBits(t *testing.T) {
	bits := make([]uint64, 3) // 192 positions
	for _, pos := range []int{0, 5, 63, 64, 100, 191} {
		bits[pos>>6] |= 1 << uint(pos&63)
	}
	collect := func(lo, hi int) []int {
		var out []int
		emitSetBits(bits, lo, hi, func(r int) { out = append(out, r) })
		return out
	}
	if got := collect(0, 192); len(got) != 6 {
		t.Errorf("full range: %v", got)
	}
	if got := collect(5, 64); len(got) != 2 || got[0] != 5 || got[1] != 63 {
		t.Errorf("[5,64): %v", got)
	}
	if got := collect(64, 65); len(got) != 1 || got[0] != 64 {
		t.Errorf("[64,65): %v", got)
	}
	if got := collect(101, 191); len(got) != 0 {
		t.Errorf("(100,191): %v", got)
	}
	if got := collect(10, 10); got != nil {
		t.Errorf("empty range: %v", got)
	}
}
