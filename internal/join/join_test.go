package join

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// taxTuples builds tuples with (salary, rate) columns.
func taxTuples(n int, seed int64) []model.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([]model.Tuple, n)
	for i := range out {
		out[i] = model.NewTuple(int64(i),
			model.F(float64(r.Intn(1000))),  // salary
			model.F(float64(r.Intn(100))/2)) // rate
	}
	return out
}

// phi2Conds encodes DC φ2's predicates: t1.salary > t2.salary AND
// t1.rate < t2.rate (violating pairs of the tax DC).
func phi2Conds() []Cond {
	return []Cond{
		{LeftCol: 0, Op: model.OpGT, RightCol: 0},
		{LeftCol: 1, Op: model.OpLT, RightCol: 1},
	}
}

func pairKey(p engine.PairOf[model.Tuple]) [2]int64 {
	return [2]int64{p.Left.ID, p.Right.ID}
}

func sortedKeys(pairs []engine.PairOf[model.Tuple]) [][2]int64 {
	keys := make([][2]int64, len(pairs))
	for i, p := range pairs {
		keys[i] = pairKey(p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func TestOCJoinMatchesNaiveOracle(t *testing.T) {
	ctx := engine.New(4)
	for _, n := range []int{0, 1, 2, 10, 50, 200} {
		tuples := taxTuples(n, int64(n))
		d := engine.Parallelize(ctx, tuples, 4)
		got, err := OCJoin(d, phi2Conds(), 5)
		if err != nil {
			t.Fatal(err)
		}
		gotPairs, err := got.Collect()
		if err != nil {
			t.Fatal(err)
		}
		want := NaiveInequalityJoin(tuples, phi2Conds())
		gk, wk := sortedKeys(gotPairs), sortedKeys(want)
		if len(gk) != len(wk) {
			t.Fatalf("n=%d: OCJoin %d pairs, naive %d", n, len(gk), len(wk))
		}
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("n=%d: pair %d mismatch: %v vs %v", n, i, gk[i], wk[i])
			}
		}
	}
}

func TestOCJoinProperty(t *testing.T) {
	ctx := engine.New(4)
	f := func(seed int64, nRaw uint8, partsRaw uint8) bool {
		n := int(nRaw%60) + 1
		parts := int(partsRaw%6) + 1
		tuples := taxTuples(n, seed)
		d := engine.Parallelize(ctx, tuples, 3)
		got, err := OCJoin(d, phi2Conds(), parts)
		if err != nil {
			return false
		}
		gotPairs, err := got.Collect()
		if err != nil {
			return false
		}
		want := NaiveInequalityJoin(tuples, phi2Conds())
		gk, wk := sortedKeys(gotPairs), sortedKeys(want)
		if len(gk) != len(wk) {
			return false
		}
		for i := range gk {
			if gk[i] != wk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOCJoinSingleCondition(t *testing.T) {
	ctx := engine.New(2)
	tuples := []model.Tuple{
		model.NewTuple(0, model.F(10)),
		model.NewTuple(1, model.F(20)),
		model.NewTuple(2, model.F(30)),
	}
	d := engine.Parallelize(ctx, tuples, 2)
	conds := []Cond{{LeftCol: 0, Op: model.OpLT, RightCol: 0}}
	got, err := OCJoin(d, conds, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _ := got.Collect()
	if len(pairs) != 3 { // (0,1),(0,2),(1,2)
		t.Fatalf("pairs = %d, want 3: %v", len(pairs), sortedKeys(pairs))
	}
	for _, p := range pairs {
		if model.Compare(p.Left.Cell(0), p.Right.Cell(0)) >= 0 {
			t.Errorf("pair violates condition: %v", p)
		}
	}
}

func TestOCJoinAllEqualValues(t *testing.T) {
	// Every salary equal: strict < produces nothing; <= produces all ordered pairs.
	ctx := engine.New(2)
	tuples := make([]model.Tuple, 10)
	for i := range tuples {
		tuples[i] = model.NewTuple(int64(i), model.F(5))
	}
	d := engine.Parallelize(ctx, tuples, 3)
	lt, err := OCJoin(d, []Cond{{0, model.OpLT, 0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := lt.Count(); n != 0 {
		t.Errorf("strict < on equal values = %d pairs", n)
	}
	le, err := OCJoin(d, []Cond{{0, model.OpLE, 0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := le.Count(); n != 90 {
		t.Errorf("<= on equal values = %d pairs, want 90", n)
	}
}

func TestOCJoinRejectsNonOrderingConds(t *testing.T) {
	ctx := engine.New(2)
	d := engine.Parallelize(ctx, taxTuples(5, 1), 2)
	if _, err := OCJoin(d, []Cond{{0, model.OpEQ, 0}}, 2); err == nil {
		t.Error("equality condition should be rejected")
	}
	if _, err := OCJoin(d, nil, 2); err == nil {
		t.Error("empty conditions should be rejected")
	}
}

func TestOCJoinGEAndGECombination(t *testing.T) {
	ctx := engine.New(4)
	tuples := taxTuples(80, 7)
	d := engine.Parallelize(ctx, tuples, 4)
	conds := []Cond{
		{LeftCol: 0, Op: model.OpGE, RightCol: 0},
		{LeftCol: 1, Op: model.OpLE, RightCol: 1},
	}
	got, err := OCJoin(d, conds, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotPairs, _ := got.Collect()
	want := NaiveInequalityJoin(tuples, conds)
	if len(gotPairs) != len(want) {
		t.Fatalf("GE/LE: %d vs naive %d", len(gotPairs), len(want))
	}
}

func TestCrossProductCounts(t *testing.T) {
	ctx := engine.New(4)
	d := engine.Parallelize(ctx, taxTuples(20, 3), 4)
	full, _ := CrossProduct(d).Count()
	uniq, _ := UCrossProduct(d).Count()
	if full != 20*19 {
		t.Errorf("cross product = %d", full)
	}
	if uniq != 20*19/2 {
		t.Errorf("ucross product = %d", uniq)
	}
}

func TestOCJoinNoDuplicatePairs(t *testing.T) {
	ctx := engine.New(4)
	tuples := taxTuples(100, 11)
	d := engine.Parallelize(ctx, tuples, 4)
	got, err := OCJoin(d, phi2Conds(), 6)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _ := got.Collect()
	seen := map[[2]int64]bool{}
	for _, p := range pairs {
		k := pairKey(p)
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
}

func BenchmarkOCJoinVsNaive(b *testing.B) {
	// Mostly-clean TaxB-shaped data (rate monotone in salary, 5% corrupted):
	// the violating-pair output stays small relative to the n^2 candidate
	// space, the regime OCJoin is built for.
	ctx := engine.New(4)
	r := rand.New(rand.NewSource(42))
	tuples := make([]model.Tuple, 2000)
	for i := range tuples {
		salary := float64(r.Intn(100000))
		rate := salary / 1000
		if r.Intn(100) < 5 {
			rate = float64(r.Intn(100))
		}
		tuples[i] = model.NewTuple(int64(i), model.F(salary), model.F(rate))
	}
	d := engine.Parallelize(ctx, tuples, 4)
	b.Run("OCJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := OCJoin(d, phi2Conds(), 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Count(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = NaiveInequalityJoin(tuples, phi2Conds())
		}
	})
}
