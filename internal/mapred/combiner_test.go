package mapred

import (
	"encoding/binary"
	"strconv"
	"strings"
	"testing"
)

func TestCombinerReducesSpillAndPreservesResult(t *testing.T) {
	mkEngine := func() *Engine {
		e, err := New(t.TempDir(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	var input [][]byte
	for i := 0; i < 500; i++ {
		input = append(input, []byte(strconv.Itoa(i%7)))
	}
	mapFn := func(rec []byte, emit Emit) {
		var one [8]byte
		binary.LittleEndian.PutUint64(one[:], 1)
		emit(string(rec), one[:])
	}
	reduceFn := func(key string, values [][]byte, emit func([]byte)) {
		total := uint64(0)
		for _, v := range values {
			total += binary.LittleEndian.Uint64(v)
		}
		emit([]byte(key + "=" + strconv.FormatUint(total, 10)))
	}
	combineFn := func(key string, values [][]byte) [][]byte {
		total := uint64(0)
		for _, v := range values {
			total += binary.LittleEndian.Uint64(v)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], total)
		return [][]byte{buf[:]}
	}

	plain := mkEngine()
	outPlain, err := plain.Run(input, 4, 3, mapFn, reduceFn)
	if err != nil {
		t.Fatal(err)
	}
	combined := mkEngine()
	outComb, err := combined.RunWithCombiner(input, 4, 3, mapFn, combineFn, reduceFn)
	if err != nil {
		t.Fatal(err)
	}

	parse := func(out [][]byte) map[string]string {
		m := map[string]string{}
		for _, o := range out {
			k, v, _ := strings.Cut(string(o), "=")
			m[k] = v
		}
		return m
	}
	pm, cm := parse(outPlain), parse(outComb)
	if len(pm) != 7 || len(cm) != 7 {
		t.Fatalf("key counts: plain %d, combined %d", len(pm), len(cm))
	}
	for k, v := range pm {
		if cm[k] != v {
			t.Errorf("key %s: plain %s vs combined %s", k, v, cm[k])
		}
	}
	// The combiner must spill far less: 4 tasks x 7 keys records instead
	// of 500.
	if combined.Stats().BytesSpilled() >= plain.Stats().BytesSpilled()/2 {
		t.Errorf("combiner spill %d should be well under plain %d",
			combined.Stats().BytesSpilled(), plain.Stats().BytesSpilled())
	}
}

func TestCombinerPanicSurfaces(t *testing.T) {
	e, err := New(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunWithCombiner([][]byte{[]byte("a")}, 1, 1,
		func(rec []byte, emit Emit) { emit("k", rec) },
		func(key string, values [][]byte) [][]byte { panic("combiner boom") },
		func(key string, values [][]byte, emit func([]byte)) {})
	if err == nil || !strings.Contains(err.Error(), "combiner boom") {
		t.Fatalf("combiner panic should surface: %v", err)
	}
}
