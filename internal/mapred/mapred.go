// Package mapred implements a disk-based MapReduce engine, the substrate
// for the BigDansing-Hadoop backend of the paper's multi-node experiments
// (Figures 10a and 10c). Unlike package engine, every map output is spilled
// to intermediate partition files on disk and read back by reduce tasks, so
// the Hadoop-vs-Spark performance gap of the paper reproduces naturally.
//
// Records are opaque byte slices; callers frame their own payloads (tuples
// use the binary codec in package model). A job is:
//
//	map:    rec -> (key, value)*        one map task per input split
//	reduce: key, values -> out*         one reduce task per hash partition
package mapred

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Emit receives a key-value record from a map function.
type Emit func(key string, value []byte)

// MapFunc processes one input record.
type MapFunc func(rec []byte, emit Emit)

// ReduceFunc processes all values of one key and emits output records.
type ReduceFunc func(key string, values [][]byte, emit func(out []byte))

// Stats counts the disk traffic a job generated.
type Stats struct {
	bytesSpilled atomic.Int64
	bytesRead    atomic.Int64
	mapTasks     atomic.Int64
	reduceTasks  atomic.Int64
}

// BytesSpilled returns bytes written to intermediate files.
func (s *Stats) BytesSpilled() int64 { return s.bytesSpilled.Load() }

// BytesRead returns bytes read back from intermediate files.
func (s *Stats) BytesRead() int64 { return s.bytesRead.Load() }

// MapTasks returns the number of map tasks executed.
func (s *Stats) MapTasks() int64 { return s.mapTasks.Load() }

// ReduceTasks returns the number of reduce tasks executed.
func (s *Stats) ReduceTasks() int64 { return s.reduceTasks.Load() }

// Engine runs MapReduce jobs with a fixed number of parallel task slots,
// spilling all intermediate data under Dir.
type Engine struct {
	dir     string
	workers int
	stats   Stats
	jobSeq  atomic.Int64
}

// New creates an engine. dir is the spill directory ("" means the OS temp
// dir); workers is the task-slot count (<=0 means 4, Hadoop's historical
// default of 2 map + 2 reduce slots).
func New(dir string, workers int) (*Engine, error) {
	if workers <= 0 {
		workers = 4
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "bigdansing-mr-")
		if err != nil {
			return nil, fmt.Errorf("mapred: temp dir: %w", err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mapred: mkdir %s: %w", dir, err)
	}
	return &Engine{dir: dir, workers: workers}, nil
}

// Stats returns the engine's disk statistics.
func (e *Engine) Stats() *Stats { return &e.stats }

// Dir returns the spill directory.
func (e *Engine) Dir() string { return e.dir }

// Close removes the spill directory.
func (e *Engine) Close() error { return os.RemoveAll(e.dir) }

// CombineFunc merges the map-side values of one key before they spill —
// the Combine task of Appendix G.2. It must be associative and produce
// output the reducer accepts as input values.
type CombineFunc func(key string, values [][]byte) [][]byte

// Run executes one map-shuffle-reduce job over the input records, with
// nSplits map tasks and nReduce reduce tasks (<=0 defaults both to the
// worker count). The output is the concatenation of all reduce outputs.
func (e *Engine) Run(input [][]byte, nSplits, nReduce int, mapFn MapFunc, reduceFn ReduceFunc) ([][]byte, error) {
	return e.RunWithCombiner(input, nSplits, nReduce, mapFn, nil, reduceFn)
}

// RunWithCombiner is Run with an optional map-side combiner: each map
// task buffers its emits per key and runs combine before spilling, cutting
// intermediate disk volume — how the distributed equivalence class keeps
// its first word-count sequence cheap.
func (e *Engine) RunWithCombiner(input [][]byte, nSplits, nReduce int, mapFn MapFunc, combine CombineFunc, reduceFn ReduceFunc) ([][]byte, error) {
	if nSplits <= 0 {
		nSplits = e.workers
	}
	if nReduce <= 0 {
		nReduce = e.workers
	}
	if nSplits > len(input) && len(input) > 0 {
		nSplits = len(input)
	}
	if len(input) == 0 {
		nSplits = 1
	}
	jobID := e.jobSeq.Add(1)
	jobDir := filepath.Join(e.dir, fmt.Sprintf("job-%d", jobID))
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return nil, fmt.Errorf("mapred: job dir: %w", err)
	}
	defer os.RemoveAll(jobDir)

	// ---- Map phase: each split writes nReduce partition files.
	if err := e.parallel(nSplits, func(split int) error {
		e.stats.mapTasks.Add(1)
		chunk := (len(input) + nSplits - 1) / nSplits
		lo, hi := split*chunk, (split+1)*chunk
		if lo > len(input) {
			lo = len(input)
		}
		if hi > len(input) {
			hi = len(input)
		}
		writers := make([]*spillWriter, nReduce)
		for r := 0; r < nReduce; r++ {
			w, err := newSpillWriter(partPath(jobDir, split, r), &e.stats)
			if err != nil {
				return err
			}
			writers[r] = w
		}
		var mapErr error
		var emit Emit
		// Without a combiner, emits stream straight to the spill files;
		// with one, they buffer per key and combine before spilling.
		var pending map[string][][]byte
		var order []string
		if combine == nil {
			emit = func(key string, value []byte) {
				r := int(hashKey(key) % uint64(nReduce))
				if err := writers[r].write(key, value); err != nil && mapErr == nil {
					mapErr = err
				}
			}
		} else {
			pending = make(map[string][][]byte)
			emit = func(key string, value []byte) {
				if _, seen := pending[key]; !seen {
					order = append(order, key)
				}
				cp := make([]byte, len(value))
				copy(cp, value)
				pending[key] = append(pending[key], cp)
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil && mapErr == nil {
					mapErr = fmt.Errorf("mapred: map task %d panicked: %v", split, rec)
				}
			}()
			for _, rec := range input[lo:hi] {
				mapFn(rec, emit)
			}
			if combine != nil {
				for _, key := range order {
					r := int(hashKey(key) % uint64(nReduce))
					for _, v := range combine(key, pending[key]) {
						if err := writers[r].write(key, v); err != nil && mapErr == nil {
							mapErr = err
						}
					}
				}
			}
		}()
		for _, w := range writers {
			if err := w.close(); err != nil && mapErr == nil {
				mapErr = err
			}
		}
		return mapErr
	}); err != nil {
		return nil, err
	}

	// ---- Reduce phase: each reducer merges its partition files from all
	// map tasks, groups by key, and reduces.
	outputs := make([][][]byte, nReduce)
	if err := e.parallel(nReduce, func(r int) error {
		e.stats.reduceTasks.Add(1)
		groups := make(map[string][][]byte)
		var order []string
		for split := 0; split < nSplits; split++ {
			if err := readSpill(partPath(jobDir, split, r), &e.stats, func(key string, value []byte) {
				if _, seen := groups[key]; !seen {
					order = append(order, key)
				}
				groups[key] = append(groups[key], value)
			}); err != nil {
				return err
			}
		}
		var out [][]byte
		var redErr error
		func() {
			defer func() {
				if rec := recover(); rec != nil && redErr == nil {
					redErr = fmt.Errorf("mapred: reduce task %d panicked: %v", r, rec)
				}
			}()
			for _, key := range order {
				reduceFn(key, groups[key], func(o []byte) {
					cp := make([]byte, len(o))
					copy(cp, o)
					out = append(out, cp)
				})
			}
		}()
		outputs[r] = out
		return redErr
	}); err != nil {
		return nil, err
	}

	var all [][]byte
	for _, o := range outputs {
		all = append(all, o...)
	}
	return all, nil
}

// parallel runs f over [0,n) with at most e.workers goroutines, returning
// the first error.
func (e *Engine) parallel(n int, f func(i int) error) error {
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	workers := e.workers
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}

func partPath(jobDir string, split, r int) string {
	return filepath.Join(jobDir, fmt.Sprintf("m%d-r%d.part", split, r))
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// spillWriter frames key-value records into a buffered file:
// keylen:uvarint key vallen:uvarint val.
type spillWriter struct {
	f     *os.File
	w     *bufio.Writer
	stats *Stats
	buf   []byte
}

func newSpillWriter(path string, stats *Stats) (*spillWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("mapred: create spill %s: %w", path, err)
	}
	return &spillWriter{f: f, w: bufio.NewWriterSize(f, 1<<16), stats: stats}, nil
}

func (s *spillWriter) write(key string, value []byte) error {
	s.buf = s.buf[:0]
	s.buf = binary.AppendUvarint(s.buf, uint64(len(key)))
	s.buf = append(s.buf, key...)
	s.buf = binary.AppendUvarint(s.buf, uint64(len(value)))
	s.buf = append(s.buf, value...)
	n, err := s.w.Write(s.buf)
	s.stats.bytesSpilled.Add(int64(n))
	return err
}

func (s *spillWriter) close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// readSpill streams a spill file's records into visit. A missing file is
// treated as empty (a map task may legitimately emit nothing to a reducer).
func readSpill(path string, stats *Stats, visit func(key string, value []byte)) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("mapred: open spill %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		klen, err := binary.ReadUvarint(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("mapred: spill %s corrupt key length: %w", path, err)
		}
		kb := make([]byte, klen)
		if _, err := io.ReadFull(r, kb); err != nil {
			return fmt.Errorf("mapred: spill %s truncated key: %w", path, err)
		}
		vlen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("mapred: spill %s corrupt value length: %w", path, err)
		}
		vb := make([]byte, vlen)
		if _, err := io.ReadFull(r, vb); err != nil {
			return fmt.Errorf("mapred: spill %s truncated value: %w", path, err)
		}
		stats.bytesRead.Add(int64(klen) + int64(vlen))
		visit(string(kb), vb)
	}
}
