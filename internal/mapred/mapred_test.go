package mapred

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func newTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e, err := New(t.TempDir(), workers)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWordCount(t *testing.T) {
	e := newTestEngine(t, 4)
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	input := make([][]byte, len(docs))
	for i, d := range docs {
		input[i] = []byte(d)
	}
	out, err := e.Run(input, 3, 2,
		func(rec []byte, emit Emit) {
			for _, w := range strings.Fields(string(rec)) {
				emit(w, []byte{1})
			}
		},
		func(key string, values [][]byte, emit func([]byte)) {
			emit([]byte(fmt.Sprintf("%s=%d", key, len(values))))
		})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, o := range out {
		k, v, _ := strings.Cut(string(o), "=")
		counts[k], _ = strconv.Atoi(v)
	}
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
}

func TestAllValuesOfKeyReachOneReducer(t *testing.T) {
	e := newTestEngine(t, 4)
	// 100 records across 10 keys; each reducer emits "key:count", so every
	// key must appear exactly once in the output.
	var input [][]byte
	for i := 0; i < 100; i++ {
		input = append(input, []byte(strconv.Itoa(i%10)))
	}
	out, err := e.Run(input, 8, 5,
		func(rec []byte, emit Emit) { emit(string(rec), rec) },
		func(key string, values [][]byte, emit func([]byte)) {
			emit([]byte(key + ":" + strconv.Itoa(len(values))))
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("distinct keys in output = %d, want 10", len(out))
	}
	for _, o := range out {
		_, c, _ := strings.Cut(string(o), ":")
		if c != "10" {
			t.Errorf("key group %s should have 10 values", o)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	e := newTestEngine(t, 2)
	out, err := e.Run(nil, 0, 0,
		func(rec []byte, emit Emit) { emit("k", rec) },
		func(key string, values [][]byte, emit func([]byte)) { emit([]byte(key)) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty input should produce no output, got %d", len(out))
	}
}

func TestMapPanicSurfacesAsError(t *testing.T) {
	e := newTestEngine(t, 2)
	_, err := e.Run([][]byte{[]byte("a"), []byte("b")}, 2, 2,
		func(rec []byte, emit Emit) {
			if string(rec) == "b" {
				panic("map boom")
			}
			emit("k", rec)
		},
		func(key string, values [][]byte, emit func([]byte)) {})
	if err == nil || !strings.Contains(err.Error(), "map boom") {
		t.Fatalf("map panic should surface, got %v", err)
	}
}

func TestReducePanicSurfacesAsError(t *testing.T) {
	e := newTestEngine(t, 2)
	_, err := e.Run([][]byte{[]byte("a")}, 1, 1,
		func(rec []byte, emit Emit) { emit("k", rec) },
		func(key string, values [][]byte, emit func([]byte)) { panic("reduce boom") })
	if err == nil || !strings.Contains(err.Error(), "reduce boom") {
		t.Fatalf("reduce panic should surface, got %v", err)
	}
}

func TestStatsRecordDiskTraffic(t *testing.T) {
	e := newTestEngine(t, 2)
	input := [][]byte{[]byte("hello"), []byte("world")}
	_, err := e.Run(input, 2, 2,
		func(rec []byte, emit Emit) { emit(string(rec), rec) },
		func(key string, values [][]byte, emit func([]byte)) { emit(values[0]) })
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().BytesSpilled() == 0 {
		t.Error("spill bytes should be counted")
	}
	if e.Stats().BytesRead() == 0 {
		t.Error("read bytes should be counted")
	}
	if e.Stats().MapTasks() != 2 || e.Stats().ReduceTasks() != 2 {
		t.Errorf("tasks = %d map, %d reduce", e.Stats().MapTasks(), e.Stats().ReduceTasks())
	}
}

func TestBinaryValuesSurviveSpill(t *testing.T) {
	e := newTestEngine(t, 2)
	payload := []byte{0, 1, 2, 255, 254, 10, 13, 0}
	out, err := e.Run([][]byte{payload}, 1, 1,
		func(rec []byte, emit Emit) { emit("bin", rec) },
		func(key string, values [][]byte, emit func([]byte)) { emit(values[0]) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0]) != string(payload) {
		t.Fatalf("binary payload corrupted: %v", out)
	}
}

func TestChainedJobsSameEngine(t *testing.T) {
	// The distributed equivalence-class algorithm runs two map-reduce
	// sequences back to back (Section 5.2); the engine must support chaining.
	e := newTestEngine(t, 3)
	var input [][]byte
	for i := 0; i < 30; i++ {
		input = append(input, []byte(strconv.Itoa(i%3)))
	}
	mid, err := e.Run(input, 3, 3,
		func(rec []byte, emit Emit) { emit(string(rec), []byte{1}) },
		func(key string, values [][]byte, emit func([]byte)) {
			emit([]byte(key + "," + strconv.Itoa(len(values))))
		})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(mid, 2, 1,
		func(rec []byte, emit Emit) { emit("total", rec) },
		func(key string, values [][]byte, emit func([]byte)) {
			total := 0
			for _, v := range values {
				_, c, _ := strings.Cut(string(v), ",")
				n, _ := strconv.Atoi(c)
				total += n
			}
			emit([]byte(strconv.Itoa(total)))
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0]) != "30" {
		t.Fatalf("chained total = %v", out)
	}
}

func TestOutputDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		e := newTestEngine(t, 4)
		var input [][]byte
		for i := 0; i < 50; i++ {
			input = append(input, []byte(strconv.Itoa(i)))
		}
		out, err := e.Run(input, 5, 3,
			func(rec []byte, emit Emit) { emit(string(rec), rec) },
			func(key string, values [][]byte, emit func([]byte)) { emit([]byte(key)) })
		if err != nil {
			t.Fatal(err)
		}
		strs := make([]string, len(out))
		for i, o := range out {
			strs[i] = string(o)
		}
		sort.Strings(strs)
		return strs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic output size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic output at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
