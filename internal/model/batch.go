package model

import "math/bits"

// DefaultBatchSize is the row count vectorized stages default to: large
// enough to amortize per-batch overhead, small enough that one batch's
// working columns stay cache-resident.
const DefaultBatchSize = 1024

// Batch is a column-major slab of up to a few thousand rows: one flat
// []Value vector per column plus the row IDs, and a selection bitmap that
// marks which rows are still live. Vectorized operators scan the column
// vectors and flip selection bits instead of allocating or copying tuples;
// a row leaves columnar form only at a shuffle boundary or when a
// tuple-at-a-time fallback needs it (TupleAt).
//
// A Batch is shared, immutable data plus private selection state: the IDs,
// Cols and row backing may be referenced by many datasets at once and must
// never be written, while the selection bitmap belongs to exactly one
// owner. Kernels that narrow a shared batch take a CloneSel first —
// copy-on-write for the only mutable part.
type Batch struct {
	// IDs holds the tuple ID of each row.
	IDs []int64
	// Cols holds one value vector per column; every vector has len(IDs)
	// entries.
	Cols [][]Value

	// rows, when non-nil, is the row-major view this batch was built from
	// (MakeBatches keeps a reference to its input slice), letting TupleAt
	// hand back the original tuple without materializing cells.
	rows []Tuple
	// sel is the selection bitmap, one bit per row; nil means every row is
	// live. Bit r of word r/64 is row r.
	sel []uint64
	// live caches the popcount of sel (== len(IDs) while sel is nil).
	live int
}

// NewBatch wraps pre-built column vectors (for example a storage partition's
// column files) as a fully-live batch. The slices are not copied; callers
// must not mutate them afterwards.
func NewBatch(ids []int64, cols [][]Value) *Batch {
	return &Batch{IDs: ids, Cols: cols, live: len(ids)}
}

// MakeBatches transposes a row-major tuple slice into column batches of at
// most size rows (size <= 0 uses DefaultBatchSize), chunking contiguously so
// batch order preserves row order. Each batch keeps a reference to its input
// window, so TupleAt returns the original tuples without materializing.
// ncols is the column count to transpose (normally the schema width);
// missing cells read as null, like Tuple.Cell.
func MakeBatches(ts []Tuple, ncols, size int) []*Batch {
	return makeBatches(ts, ncols, size, nil, true)
}

// MakeBatchesCols chunks ts exactly like MakeBatches but materializes only
// the listed column vectors (deduplicated; indexes outside [0, ncols) are
// dropped, and an empty list transposes nothing). The remaining Cols entries
// stay nil and read through the row backing (Value, TupleAt), so a pipeline
// whose kernels scan one or two declared columns skips copying the rest of
// the schema.
func MakeBatchesCols(ts []Tuple, ncols, size int, cols ...int) []*Batch {
	keep := make([]int, 0, len(cols))
	for _, c := range cols {
		if c < 0 || c >= ncols {
			continue
		}
		dup := false
		for _, k := range keep {
			if k == c {
				dup = true
				break
			}
		}
		if !dup {
			keep = append(keep, c)
		}
	}
	return makeBatches(ts, ncols, size, keep, false)
}

func makeBatches(ts []Tuple, ncols, size int, keep []int, all bool) []*Batch {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if len(ts) == 0 {
		return nil
	}
	out := make([]*Batch, 0, (len(ts)+size-1)/size)
	for lo := 0; lo < len(ts); lo += size {
		hi := lo + size
		if hi > len(ts) {
			hi = len(ts)
		}
		win := ts[lo:hi:hi]
		n := len(win)
		ids := make([]int64, n)
		cols := make([][]Value, ncols)
		switch {
		case all:
			flat := make([]Value, n*ncols) // one allocation for all columns
			for c := range cols {
				cols[c] = flat[c*n : (c+1)*n : (c+1)*n]
			}
			for r, t := range win {
				ids[r] = t.ID
				for c := 0; c < ncols; c++ {
					cols[c][r] = t.Cell(c)
				}
			}
		case len(keep) > 0:
			flat := make([]Value, n*len(keep)) // one allocation for the kept columns
			for x, c := range keep {
				cols[c] = flat[x*n : (x+1)*n : (x+1)*n]
			}
			for r, t := range win {
				ids[r] = t.ID
				for _, c := range keep {
					cols[c][r] = t.Cell(c)
				}
			}
		default:
			for r, t := range win {
				ids[r] = t.ID
			}
		}
		out = append(out, &Batch{IDs: ids, Cols: cols, rows: win, live: n})
	}
	return out
}

// Len returns the row capacity of the batch (live and killed rows alike).
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.IDs)
}

// LiveRows returns the number of selected rows. It is nil-safe so the
// engine's row accounting can probe a zero-valued batch handle.
func (b *Batch) LiveRows() int {
	if b == nil {
		return 0
	}
	return b.live
}

// Live reports whether row r is selected.
func (b *Batch) Live(r int) bool {
	if b.sel == nil {
		return r >= 0 && r < len(b.IDs)
	}
	return b.sel[r>>6]&(1<<(uint(r)&63)) != 0
}

// Kill clears row r's selection bit. Killing a dead row is a no-op.
func (b *Batch) Kill(r int) {
	if b.sel == nil {
		b.materializeSel()
	}
	w, bit := r>>6, uint64(1)<<(uint(r)&63)
	if b.sel[w]&bit != 0 {
		b.sel[w] &^= bit
		b.live--
	}
}

// materializeSel builds the all-ones bitmap for a batch that had every row
// live (tail bits of the last word stay zero).
func (b *Batch) materializeSel() {
	n := len(b.IDs)
	b.sel = make([]uint64, (n+63)>>6)
	for i := range b.sel {
		b.sel[i] = ^uint64(0)
	}
	if tail := uint(n) & 63; tail != 0 {
		b.sel[len(b.sel)-1] = (uint64(1) << tail) - 1
	}
}

// CloneSel returns a batch sharing this batch's immutable data (IDs, Cols,
// row backing) with a private copy of the selection state — the
// copy-on-write step a kernel takes before narrowing a batch another
// dataset may also reference.
func (b *Batch) CloneSel() *Batch {
	nb := &Batch{IDs: b.IDs, Cols: b.Cols, rows: b.rows, live: b.live}
	if b.sel != nil {
		nb.sel = append([]uint64(nil), b.sel...)
	}
	return nb
}

// Slice returns the batch window [lo, hi) sharing the underlying vectors
// (no values are copied). It is only valid on a fully-live batch — callers
// re-chunk freshly built batches, never narrowed ones.
func (b *Batch) Slice(lo, hi int) *Batch {
	if b.sel != nil {
		panic("model: Batch.Slice on a batch with a narrowed selection")
	}
	cols := make([][]Value, len(b.Cols))
	for c, v := range b.Cols {
		if v != nil {
			cols[c] = v[lo:hi:hi]
		}
	}
	nb := &Batch{IDs: b.IDs[lo:hi:hi], Cols: cols, live: hi - lo}
	if b.rows != nil {
		nb.rows = b.rows[lo:hi:hi]
	}
	return nb
}

// Value returns the value at row r, column c; out-of-range columns yield
// null, the same leniency Tuple.Cell provides. Columns MakeBatchesCols left
// unmaterialized read through the row backing.
func (b *Batch) Value(r, c int) Value {
	if c >= 0 && c < len(b.Cols) && b.Cols[c] != nil {
		return b.Cols[c][r]
	}
	if b.rows != nil {
		return b.rows[r].Cell(c)
	}
	return Null()
}

// TupleAt returns row r as a Tuple: the original backing tuple when the
// batch was built from rows (no allocation), or a freshly materialized one
// for batches read columnar from storage.
func (b *Batch) TupleAt(r int) Tuple {
	if b.rows != nil {
		return b.rows[r]
	}
	cells := make([]Value, len(b.Cols))
	for c := range b.Cols {
		cells[c] = b.Cols[c][r]
	}
	return Tuple{ID: b.IDs[r], Cells: cells}
}

// ForEachLive calls f for every selected row in row order. Each bitmap word
// is snapshotted before its bits are walked, so f may Kill the rows it
// visits (the standard narrowing idiom) without disturbing the iteration.
func (b *Batch) ForEachLive(f func(r int)) {
	if b.sel == nil {
		for r := 0; r < len(b.IDs); r++ {
			f(r)
		}
		return
	}
	for w, word := range b.sel {
		base := w << 6
		for word != 0 {
			r := base + bits.TrailingZeros64(word)
			word &= word - 1
			f(r)
		}
	}
}

// AppendTuples appends the live rows to dst as tuples, in row order — the
// materialization step at a tuple-path boundary.
func (b *Batch) AppendTuples(dst []Tuple) []Tuple {
	if cap(dst)-len(dst) < b.live {
		grown := make([]Tuple, len(dst), len(dst)+b.live)
		copy(grown, dst)
		dst = grown
	}
	b.ForEachLive(func(r int) { dst = append(dst, b.TupleAt(r)) })
	return dst
}
