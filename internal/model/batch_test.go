package model

import (
	"math"
	"testing"
)

func batchTuples(n int) []Tuple {
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = NewTuple(int64(i+1), S("name"), I(int64(i%7)), F(float64(i)*1.5))
	}
	return ts
}

func TestMakeBatchesChunking(t *testing.T) {
	ts := batchTuples(10)
	bs := MakeBatches(ts, 3, 4)
	if len(bs) != 3 {
		t.Fatalf("10 rows in batches of 4: got %d batches", len(bs))
	}
	wantLens := []int{4, 4, 2}
	next := 0
	for i, b := range bs {
		if b.Len() != wantLens[i] || b.LiveRows() != wantLens[i] {
			t.Fatalf("batch %d: len=%d live=%d, want %d", i, b.Len(), b.LiveRows(), wantLens[i])
		}
		for r := 0; r < b.Len(); r++ {
			want := ts[next]
			if b.IDs[r] != want.ID {
				t.Fatalf("batch %d row %d: id %d, want %d", i, r, b.IDs[r], want.ID)
			}
			for c := 0; c < 3; c++ {
				if !b.Value(r, c).Equal(want.Cell(c)) {
					t.Fatalf("batch %d row %d col %d: value mismatch", i, r, c)
				}
			}
			// Row-backed batches hand back the original tuple.
			if got := b.TupleAt(r); got.ID != want.ID {
				t.Fatalf("TupleAt(%d) = id %d, want %d", r, got.ID, want.ID)
			}
			next++
		}
	}
	if MakeBatches(nil, 3, 4) != nil {
		t.Error("MakeBatches(nil) should be nil")
	}
	// size <= 0 uses the default.
	if bs := MakeBatches(ts, 3, 0); len(bs) != 1 || bs[0].Len() != 10 {
		t.Errorf("default batch size should produce one batch of 10")
	}
}

func TestMakeBatchesColsPartialMaterialization(t *testing.T) {
	ts := batchTuples(10)
	// Duplicates and out-of-range indexes are tolerated; only cols 0 and 2
	// end up as vectors.
	bs := MakeBatchesCols(ts, 3, 4, 2, 0, 2, -1, 7)
	if len(bs) != 3 {
		t.Fatalf("10 rows in batches of 4: got %d batches", len(bs))
	}
	next := 0
	for i, b := range bs {
		if b.Cols[1] != nil {
			t.Fatalf("batch %d: col 1 was not requested but is materialized", i)
		}
		if b.Cols[0] == nil || b.Cols[2] == nil {
			t.Fatalf("batch %d: requested cols missing vectors", i)
		}
		for r := 0; r < b.Len(); r++ {
			want := ts[next]
			for c := 0; c < 3; c++ {
				// Col 1 reads through the row backing; 0 and 2 from vectors.
				if !b.Value(r, c).Equal(want.Cell(c)) {
					t.Fatalf("batch %d row %d col %d: value mismatch", i, r, c)
				}
			}
			if got := b.TupleAt(r); got.ID != want.ID {
				t.Fatalf("TupleAt(%d) = id %d, want %d", r, got.ID, want.ID)
			}
			next++
		}
	}
	// Slicing a partially materialized batch keeps nil columns nil.
	win := MakeBatchesCols(ts, 3, 100)[0].Slice(2, 6)
	if win.Cols[0] != nil || win.Cols[1] != nil || win.Cols[2] != nil {
		t.Fatal("empty column request should materialize no vectors")
	}
	if !win.Value(1, 2).Equal(ts[3].Cell(2)) {
		t.Fatal("sliced row-backed batch misreads through the row backing")
	}
}

func TestBatchKillAndSelection(t *testing.T) {
	b := MakeBatches(batchTuples(70), 3, 100)[0] // >64 rows: two bitmap words
	if !b.Live(65) {
		t.Fatal("all rows live initially")
	}
	b.Kill(0)
	b.Kill(65)
	b.Kill(65) // killing twice is a no-op
	if b.LiveRows() != 68 {
		t.Fatalf("live = %d, want 68", b.LiveRows())
	}
	if b.Live(0) || b.Live(65) || !b.Live(1) {
		t.Fatal("selection bits wrong after Kill")
	}
	var visited []int
	b.ForEachLive(func(r int) { visited = append(visited, r) })
	if len(visited) != 68 || visited[0] != 1 {
		t.Fatalf("ForEachLive visited %d rows starting at %d", len(visited), visited[0])
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Fatal("ForEachLive out of row order")
		}
	}
}

func TestBatchKillDuringIteration(t *testing.T) {
	b := MakeBatches(batchTuples(130), 3, 200)[0]
	var visited int
	b.ForEachLive(func(r int) {
		visited++
		b.Kill(r) // narrowing while iterating is the standard kernel idiom
	})
	if visited != 130 {
		t.Fatalf("visited %d rows, want all 130", visited)
	}
	if b.LiveRows() != 0 {
		t.Fatalf("live = %d after killing every row", b.LiveRows())
	}
}

func TestBatchCloneSelIsolation(t *testing.T) {
	b := MakeBatches(batchTuples(8), 3, 8)[0]
	b.Kill(2)
	c := b.CloneSel()
	c.Kill(5)
	if b.LiveRows() != 7 || c.LiveRows() != 6 {
		t.Fatalf("selection not isolated: base=%d clone=%d", b.LiveRows(), c.LiveRows())
	}
	if !b.Live(5) || c.Live(2) {
		t.Fatal("clone selection leaked into base (or vice versa)")
	}
	// The immutable data is shared, not copied.
	if &b.Cols[0][0] != &c.Cols[0][0] {
		t.Fatal("CloneSel copied column vectors")
	}
}

func TestBatchSlice(t *testing.T) {
	b := MakeBatches(batchTuples(10), 3, 10)[0]
	s := b.Slice(4, 9)
	if s.Len() != 5 || s.LiveRows() != 5 {
		t.Fatalf("slice len=%d live=%d, want 5", s.Len(), s.LiveRows())
	}
	if s.IDs[0] != 5 || !s.Value(0, 2).Equal(b.Value(4, 2)) {
		t.Fatal("slice window misaligned")
	}
	if &s.Cols[1][0] != &b.Cols[1][4] {
		t.Fatal("Slice copied values")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Slice on a narrowed batch should panic")
		}
	}()
	b.Kill(0)
	b.Slice(0, 2)
}

func TestBatchAppendTuplesOrder(t *testing.T) {
	ts := batchTuples(9)
	b := MakeBatches(ts, 3, 9)[0]
	b.Kill(0)
	b.Kill(4)
	got := b.AppendTuples([]Tuple{ts[8]})
	wantIDs := []int64{9, 2, 3, 4, 6, 7, 8, 9}
	if len(got) != len(wantIDs) {
		t.Fatalf("got %d tuples, want %d", len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("tuple %d: id %d, want %d", i, got[i].ID, id)
		}
	}
}

func TestNewBatchColumnarTupleAt(t *testing.T) {
	// A storage-style batch with no row backing materializes tuples on
	// demand — including NaN and -0, which must round-trip normalized.
	ids := []int64{10, 11}
	cols := [][]Value{
		{F(math.NaN()), F(math.Copysign(0, -1))},
		{S("a"), Null()},
	}
	b := NewBatch(ids, cols)
	if b.Len() != 2 || b.LiveRows() != 2 {
		t.Fatal("NewBatch should be fully live")
	}
	t0 := b.TupleAt(0)
	if t0.ID != 10 || !t0.Cell(0).Equal(F(math.NaN())) {
		t.Fatal("materialized tuple 0 wrong")
	}
	t1 := b.TupleAt(1)
	if !t1.Cell(0).Equal(F(0)) {
		t.Fatal("-0 should equal +0 under Value.Equal")
	}
	if !b.Value(0, 99).IsNull() {
		t.Fatal("out-of-range column should read as null")
	}
	var nilBatch *Batch
	if nilBatch.LiveRows() != 0 || nilBatch.Len() != 0 {
		t.Fatal("nil batch should report zero rows")
	}
}
