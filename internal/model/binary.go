package model

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding for values and tuples. The storage manager (Appendix F)
// stores datasets in binary form to avoid string parsing, and the
// MapReduce backend frames intermediate records with it.
//
// Layout:
//
//	value  := kind:uint8 payload
//	payload(null)   :=
//	payload(string) := len:uvarint bytes
//	payload(int)    := zigzag varint
//	payload(float)  := 8 bytes little-endian IEEE 754
//	tuple  := id:uvarint ncells:uvarint value*

// AppendValue appends the binary encoding of v to buf.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
		buf = append(buf, v.Str...)
	case KindInt:
		buf = binary.AppendVarint(buf, v.Int)
	case KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Flt))
		buf = append(buf, b[:]...)
	}
	return buf
}

// DecodeValue decodes one value from buf, returning it and the number of
// bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, fmt.Errorf("model: decode value: empty buffer")
	}
	kind := Kind(buf[0])
	pos := 1
	switch kind {
	case KindNull:
		return Null(), pos, nil
	case KindString:
		n, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("model: decode string length")
		}
		pos += sz
		if pos+int(n) > len(buf) {
			return Value{}, 0, fmt.Errorf("model: string payload truncated")
		}
		s := string(buf[pos : pos+int(n)])
		return S(s), pos + int(n), nil
	case KindInt:
		i, sz := binary.Varint(buf[pos:])
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("model: decode int")
		}
		return I(i), pos + sz, nil
	case KindFloat:
		if pos+8 > len(buf) {
			return Value{}, 0, fmt.Errorf("model: float payload truncated")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		return F(f), pos + 8, nil
	default:
		return Value{}, 0, fmt.Errorf("model: unknown value kind %d", kind)
	}
}

// AppendValueKey appends the binary encoding of k to buf:
//
//	valuekey := kind:uint8 payload
//	payload(null)   :=
//	payload(string) := len:uvarint bytes
//	payload(int)    := Num 8 bytes little-endian
//	payload(float)  := Num 8 bytes little-endian
//
// The encoding is injective: distinct keys (and hence distinct grouping
// classes) always encode to distinct byte strings, which the engine's
// external shuffle relies on to keep groups intact across a spill.
func AppendValueKey(buf []byte, k ValueKey) []byte {
	buf = append(buf, byte(k.Kind))
	switch k.Kind {
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(k.Str)))
		buf = append(buf, k.Str...)
	case KindInt, KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], k.Num)
		buf = append(buf, b[:]...)
	}
	return buf
}

// DecodeValueKey decodes one ValueKey from buf, returning it and the number
// of bytes consumed.
func DecodeValueKey(buf []byte) (ValueKey, int, error) {
	if len(buf) == 0 {
		return ValueKey{}, 0, fmt.Errorf("model: decode value key: empty buffer")
	}
	kind := Kind(buf[0])
	pos := 1
	switch kind {
	case KindNull:
		return ValueKey{}, pos, nil
	case KindString:
		n, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 {
			return ValueKey{}, 0, fmt.Errorf("model: decode key string length")
		}
		pos += sz
		if pos+int(n) > len(buf) {
			return ValueKey{}, 0, fmt.Errorf("model: key string payload truncated")
		}
		s := string(buf[pos : pos+int(n)])
		return ValueKey{Kind: KindString, Str: s}, pos + int(n), nil
	case KindInt, KindFloat:
		if pos+8 > len(buf) {
			return ValueKey{}, 0, fmt.Errorf("model: key payload truncated")
		}
		num := binary.LittleEndian.Uint64(buf[pos:])
		return ValueKey{Kind: kind, Num: num}, pos + 8, nil
	default:
		return ValueKey{}, 0, fmt.Errorf("model: unknown value key kind %d", kind)
	}
}

// AppendTuple appends the binary encoding of t to buf.
func AppendTuple(buf []byte, t Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.ID))
	buf = binary.AppendUvarint(buf, uint64(len(t.Cells)))
	for _, c := range t.Cells {
		buf = AppendValue(buf, c)
	}
	return buf
}

// EncodeTuple encodes a tuple into a fresh buffer.
func EncodeTuple(t Tuple) []byte {
	return AppendTuple(make([]byte, 0, 16+8*len(t.Cells)), t)
}

// DecodeTuple decodes one tuple from buf, returning it and the number of
// bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	id, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return Tuple{}, 0, fmt.Errorf("model: decode tuple id")
	}
	pos := sz
	n, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return Tuple{}, 0, fmt.Errorf("model: decode tuple arity")
	}
	pos += sz
	cells := make([]Value, n)
	for i := range cells {
		v, used, err := DecodeValue(buf[pos:])
		if err != nil {
			return Tuple{}, 0, fmt.Errorf("model: decode cell %d: %w", i, err)
		}
		cells[i] = v
		pos += used
	}
	return Tuple{ID: int64(id), Cells: cells}, pos, nil
}
