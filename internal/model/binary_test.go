package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueBinaryRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), S(""), S("hello"), S("with,comma\nand newline"),
		I(0), I(-1), I(1 << 40), I(-(1 << 40)),
		F(0), F(3.14159), F(-1e300),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d", v, n, len(buf))
		}
		if got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestTupleBinaryRoundTrip(t *testing.T) {
	tp := NewTuple(12345, S("Annie"), I(10011), S("NY"), F(0.15))
	buf := EncodeTuple(tp)
	got, n, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if got.ID != tp.ID || len(got.Cells) != len(tp.Cells) {
		t.Fatalf("shape mismatch: %v", got)
	}
	for i := range tp.Cells {
		if got.Cells[i] != tp.Cells[i] {
			t.Errorf("cell %d: %v vs %v", i, got.Cells[i], tp.Cells[i])
		}
	}
}

func TestTupleBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(id uint32, nRaw uint8) bool {
		n := int(nRaw % 10)
		cells := make([]Value, n)
		for i := range cells {
			cells[i] = randomValue(r)
		}
		tp := Tuple{ID: int64(id), Cells: cells}
		got, used, err := DecodeTuple(EncodeTuple(tp))
		if err != nil || used != len(EncodeTuple(tp)) {
			return false
		}
		if got.ID != tp.ID || len(got.Cells) != n {
			return false
		}
		for i := range cells {
			if got.Cells[i] != cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("unknown kind should error")
	}
	// Truncated string payload.
	buf := AppendValue(nil, S("hello"))
	if _, _, err := DecodeValue(buf[:3]); err == nil {
		t.Error("truncated string should error")
	}
	// Truncated float payload.
	fbuf := AppendValue(nil, F(1.5))
	if _, _, err := DecodeValue(fbuf[:4]); err == nil {
		t.Error("truncated float should error")
	}
}

func TestConsecutiveTupleDecoding(t *testing.T) {
	var buf []byte
	tuples := []Tuple{
		NewTuple(1, S("a")),
		NewTuple(2, I(42), F(1.5)),
		NewTuple(3),
	}
	for _, tp := range tuples {
		buf = AppendTuple(buf, tp)
	}
	pos := 0
	for i := 0; pos < len(buf); i++ {
		tp, n, err := DecodeTuple(buf[pos:])
		if err != nil {
			t.Fatal(err)
		}
		if tp.ID != tuples[i].ID {
			t.Errorf("tuple %d id = %d", i, tp.ID)
		}
		pos += n
	}
	if pos != len(buf) {
		t.Error("did not consume full stream")
	}
}
