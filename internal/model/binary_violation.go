package model

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding for cells, violations, fixes and fix sets, used when the
// MapReduce backend spills detection output to disk and by the storage
// manager when persisting violation reports.

// AppendCell appends the binary encoding of c to buf.
func AppendCell(buf []byte, c Cell) []byte {
	buf = binary.AppendVarint(buf, c.TupleID)
	buf = binary.AppendVarint(buf, int64(c.Col))
	buf = binary.AppendUvarint(buf, uint64(len(c.Attr)))
	buf = append(buf, c.Attr...)
	return AppendValue(buf, c.Value)
}

// DecodeCell decodes one cell, returning it and the bytes consumed.
func DecodeCell(buf []byte) (Cell, int, error) {
	id, n := binary.Varint(buf)
	if n <= 0 {
		return Cell{}, 0, fmt.Errorf("model: decode cell tuple id")
	}
	pos := n
	col, n := binary.Varint(buf[pos:])
	if n <= 0 {
		return Cell{}, 0, fmt.Errorf("model: decode cell col")
	}
	pos += n
	alen, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Cell{}, 0, fmt.Errorf("model: decode cell attr length")
	}
	pos += n
	if pos+int(alen) > len(buf) {
		return Cell{}, 0, fmt.Errorf("model: cell attr truncated")
	}
	attr := string(buf[pos : pos+int(alen)])
	pos += int(alen)
	v, n, err := DecodeValue(buf[pos:])
	if err != nil {
		return Cell{}, 0, err
	}
	return Cell{TupleID: id, Col: int(col), Attr: attr, Value: v}, pos + n, nil
}

// AppendViolation appends the binary encoding of v to buf.
func AppendViolation(buf []byte, v Violation) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v.RuleID)))
	buf = append(buf, v.RuleID...)
	buf = binary.AppendUvarint(buf, uint64(len(v.Cells)))
	for _, c := range v.Cells {
		buf = AppendCell(buf, c)
	}
	return buf
}

// DecodeViolation decodes one violation, returning it and the bytes consumed.
func DecodeViolation(buf []byte) (Violation, int, error) {
	rlen, n := binary.Uvarint(buf)
	if n <= 0 {
		return Violation{}, 0, fmt.Errorf("model: decode violation rule length")
	}
	pos := n
	if pos+int(rlen) > len(buf) {
		return Violation{}, 0, fmt.Errorf("model: violation rule truncated")
	}
	rule := string(buf[pos : pos+int(rlen)])
	pos += int(rlen)
	ncells, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Violation{}, 0, fmt.Errorf("model: decode violation arity")
	}
	pos += n
	cells := make([]Cell, ncells)
	for i := range cells {
		c, used, err := DecodeCell(buf[pos:])
		if err != nil {
			return Violation{}, 0, fmt.Errorf("model: decode violation cell %d: %w", i, err)
		}
		cells[i] = c
		pos += used
	}
	return Violation{RuleID: rule, Cells: cells}, pos, nil
}

// AppendFix appends the binary encoding of f to buf.
func AppendFix(buf []byte, f Fix) []byte {
	buf = AppendCell(buf, f.Left)
	buf = append(buf, byte(f.Op))
	if f.RightIsCell {
		buf = append(buf, 1)
		return AppendCell(buf, f.RightCell)
	}
	buf = append(buf, 0)
	return AppendValue(buf, f.RightConst)
}

// DecodeFix decodes one fix, returning it and the bytes consumed.
func DecodeFix(buf []byte) (Fix, int, error) {
	left, pos, err := DecodeCell(buf)
	if err != nil {
		return Fix{}, 0, err
	}
	if pos+2 > len(buf) {
		return Fix{}, 0, fmt.Errorf("model: fix header truncated")
	}
	op := Op(buf[pos])
	isCell := buf[pos+1] == 1
	pos += 2
	if isCell {
		right, n, err := DecodeCell(buf[pos:])
		if err != nil {
			return Fix{}, 0, err
		}
		return Fix{Left: left, Op: op, RightIsCell: true, RightCell: right}, pos + n, nil
	}
	v, n, err := DecodeValue(buf[pos:])
	if err != nil {
		return Fix{}, 0, err
	}
	return Fix{Left: left, Op: op, RightConst: v}, pos + n, nil
}

// EncodeFixSet encodes a violation with its possible fixes.
func EncodeFixSet(fs FixSet) []byte {
	buf := AppendViolation(nil, fs.Violation)
	buf = binary.AppendUvarint(buf, uint64(len(fs.Fixes)))
	for _, f := range fs.Fixes {
		buf = AppendFix(buf, f)
	}
	return buf
}

// DecodeFixSet decodes an encoded fix set.
func DecodeFixSet(buf []byte) (FixSet, error) {
	v, pos, err := DecodeViolation(buf)
	if err != nil {
		return FixSet{}, err
	}
	nf, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return FixSet{}, fmt.Errorf("model: decode fix count")
	}
	pos += n
	fixes := make([]Fix, nf)
	for i := range fixes {
		f, used, err := DecodeFix(buf[pos:])
		if err != nil {
			return FixSet{}, fmt.Errorf("model: decode fix %d: %w", i, err)
		}
		fixes[i] = f
		pos += used
	}
	return FixSet{Violation: v, Fixes: fixes}, nil
}
