package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the spill contract of the binary codecs: the encoding
// must be injective and the decode must invert it exactly, so that a value
// surviving an encode→decode round trip groups (MapKey), hashes (Hash) and
// partitions identically to the original. The engine's external shuffle
// orders records by (hash, encoded key bytes) and relies on this.

// edgeValues are the values most likely to break a codec: float edge cases
// (NaN bit patterns, signed zeros, infinities, denormals), empty and
// multi-byte UTF-8 strings, and integer extremes.
func edgeValues() []Value {
	return []Value{
		Null(),
		S(""), S("a"), S("héllo wörld"), S("日本語テキスト"), S("emoji 🧹🧽"),
		S(string([]byte{0xff, 0xfe, 0x00})), // invalid UTF-8 must survive too
		S("\x00embedded\x00nulls\x00"),
		I(0), I(1), I(-1), I(math.MaxInt64), I(math.MinInt64),
		F(0), F(math.Copysign(0, -1)), // +0 and -0
		F(math.NaN()), F(math.Float64frombits(0x7ff8000000000001)), // distinct NaN payloads
		F(math.Inf(1)), F(math.Inf(-1)),
		F(math.SmallestNonzeroFloat64), F(-math.SmallestNonzeroFloat64),
		F(math.MaxFloat64), F(3.141592653589793),
	}
}

// TestValueCodecRoundTripPreservesGrouping checks, for every edge value and
// a large random sample, that decode(encode(v)) produces a value with the
// same MapKey and Hash as v — i.e. spilling a value to disk and reading it
// back can never move it to a different group or partition.
func TestValueCodecRoundTripPreservesGrouping(t *testing.T) {
	vals := edgeValues()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		vals = append(vals, randomValue(r))
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %v consumed %d of %d", v, n, len(buf))
		}
		if got.MapKey() != v.MapKey() {
			t.Errorf("MapKey changed across round trip: %v -> %v", v, got)
		}
		if got.Hash() != v.Hash() {
			t.Errorf("Hash changed across round trip: %v -> %v", v, got)
		}
		// Bit-exactness for floats: the codec must not canonicalize; NaN
		// payloads and -0 survive verbatim.
		if v.Kind == KindFloat {
			if math.Float64bits(got.Flt) != math.Float64bits(v.Flt) {
				t.Errorf("float bits changed: %016x -> %016x",
					math.Float64bits(v.Flt), math.Float64bits(got.Flt))
			}
		} else if got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

// TestValueKeyCodecRoundTrip checks the ValueKey codec inverts exactly for
// every edge value's key and random keys.
func TestValueKeyCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	keys := make([]ValueKey, 0, 2100)
	for _, v := range edgeValues() {
		keys = append(keys, v.MapKey())
	}
	for i := 0; i < 2000; i++ {
		keys = append(keys, randomValue(r).MapKey())
	}
	for _, k := range keys {
		buf := AppendValueKey(nil, k)
		got, n, err := DecodeValueKey(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", k, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %v consumed %d of %d", k, n, len(buf))
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
}

// TestValueKeyCodecInjective checks that distinct keys encode to distinct
// byte strings — the property that makes (hash, encoded key bytes) a valid
// grouping order for the external shuffle.
func TestValueKeyCodecInjective(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	seen := make(map[string]ValueKey)
	check := func(k ValueKey) {
		enc := string(AppendValueKey(nil, k))
		if prev, dup := seen[enc]; dup && prev != k {
			t.Fatalf("distinct keys share encoding: %v and %v", prev, k)
		}
		seen[enc] = k
	}
	for _, v := range edgeValues() {
		check(v.MapKey())
	}
	// Cross-kind near-collisions: I(1) vs F(1) vs S("1") etc.
	for i := int64(-300); i <= 300; i++ {
		check(I(i).MapKey())
		check(F(float64(i)).MapKey())
		check(S(I(i).String()).MapKey())
	}
	for i := 0; i < 5000; i++ {
		check(randomValue(r).MapKey())
	}
}

// TestValueKeyCodecErrors checks truncation and junk are reported.
func TestValueKeyCodecErrors(t *testing.T) {
	if _, _, err := DecodeValueKey(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := DecodeValueKey([]byte{77}); err == nil {
		t.Error("unknown kind should error")
	}
	sbuf := AppendValueKey(nil, S("hello").MapKey())
	if _, _, err := DecodeValueKey(sbuf[:3]); err == nil {
		t.Error("truncated string key should error")
	}
	nbuf := AppendValueKey(nil, I(123456789).MapKey())
	if _, _, err := DecodeValueKey(nbuf[:5]); err == nil {
		t.Error("truncated numeric key should error")
	}
}

// TestValueKeyCodecConsecutive checks keys decode sequentially from one
// buffer, the way the engine's pair codec lays them out in spill records.
func TestValueKeyCodecConsecutive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var keys []ValueKey
	var buf []byte
	for i := 0; i < 500; i++ {
		k := randomValue(r).MapKey()
		keys = append(keys, k)
		buf = AppendValueKey(buf, k)
	}
	pos := 0
	for i, want := range keys {
		got, n, err := DecodeValueKey(buf[pos:])
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("key %d: %v != %v", i, got, want)
		}
		pos += n
	}
	if pos != len(buf) {
		t.Error("did not consume full stream")
	}
}

// TestTupleCodecGrouping checks a tuple's cells group identically after a
// round trip through the tuple codec (the whole-record analogue of the
// value test above).
func TestTupleCodecGrouping(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		cells := make([]Value, r.Intn(6))
		for j := range cells {
			cells[j] = randomValue(r)
		}
		// Sprinkle in the edge values as cells too.
		if i < len(edgeValues()) {
			cells = append(cells, edgeValues()[i])
		}
		tp := Tuple{ID: int64(i), Cells: cells}
		enc := EncodeTuple(tp)
		got, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if !bytes.Equal(enc, EncodeTuple(got)) {
			t.Fatal("re-encoding differs: codec not canonical")
		}
		for j := range tp.Cells {
			if got.Cells[j].MapKey() != tp.Cells[j].MapKey() {
				t.Fatalf("cell %d grouping changed: %v -> %v", j, tp.Cells[j], got.Cells[j])
			}
		}
	}
}
