package model

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses CSV text into a Relation using the given schema. If
// hasHeader is true the first record is skipped. Tuple IDs are assigned
// sequentially from startID. Short rows are padded with nulls and long rows
// truncated, mirroring the forgiving parsers BigDansing ships for raw input.
func ReadCSV(r io.Reader, name string, schema *Schema, hasHeader bool, startID int64) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rel := NewRelation(name, schema)
	id := startID
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("model: reading csv for %s: %w", name, err)
		}
		if first && hasHeader {
			first = false
			continue
		}
		first = false
		cells := make([]Value, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			if i < len(rec) {
				cells[i] = Parse(rec[i], schema.Attr(i).Kind)
			} else {
				cells[i] = Null()
			}
		}
		rel.Append(Tuple{ID: id, Cells: cells})
		id++
	}
	return rel, nil
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path, name string, schema *Schema, hasHeader bool) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f, name, schema, hasHeader, 0)
}

// WriteCSV renders the relation as CSV. If withHeader is true the attribute
// names are written first.
func WriteCSV(w io.Writer, rel *Relation, withHeader bool) error {
	cw := csv.NewWriter(w)
	if withHeader {
		if err := cw.Write(rel.Schema.Names()); err != nil {
			return err
		}
	}
	row := make([]string, rel.Schema.Len())
	for _, t := range rel.Tuples {
		for i := range row {
			row[i] = t.Cell(i).String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the relation to path, creating or truncating it.
func WriteCSVFile(path string, rel *Relation, withHeader bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: create %s: %w", path, err)
	}
	if err := WriteCSV(f, rel, withHeader); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
