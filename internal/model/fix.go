package model

import "fmt"

// Op is a comparison operator appearing in rule predicates and possible
// fixes. The paper's fix language is `x op y` with op in {=,≠,<,>,≤,≥}
// (Section 2.1).
type Op uint8

const (
	// OpEQ is equality (=).
	OpEQ Op = iota
	// OpNEQ is inequality (≠).
	OpNEQ
	// OpLT is less-than (<).
	OpLT
	// OpGT is greater-than (>).
	OpGT
	// OpLE is less-or-equal (≤).
	OpLE
	// OpGE is greater-or-equal (≥).
	OpGE
)

// String renders the operator in ASCII.
func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNEQ:
		return "!="
	case OpLT:
		return "<"
	case OpGT:
		return ">"
	case OpLE:
		return "<="
	case OpGE:
		return ">="
	default:
		return "?"
	}
}

// ParseOp parses an ASCII operator token.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEQ, nil
	case "!=", "<>":
		return OpNEQ, nil
	case "<":
		return OpLT, nil
	case ">":
		return OpGT, nil
	case "<=":
		return OpLE, nil
	case ">=":
		return OpGE, nil
	default:
		return OpEQ, fmt.Errorf("model: unknown operator %q", s)
	}
}

// Negate returns the logical negation of the operator: the fix that resolves
// a violated predicate is the predicate's negation.
func (o Op) Negate() Op {
	switch o {
	case OpEQ:
		return OpNEQ
	case OpNEQ:
		return OpEQ
	case OpLT:
		return OpGE
	case OpGT:
		return OpLE
	case OpLE:
		return OpGT
	case OpGE:
		return OpLT
	default:
		return o
	}
}

// Flip returns the operator with its operands swapped: a op b iff b flip(op) a.
func (o Op) Flip() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpGT:
		return OpLT
	case OpLE:
		return OpGE
	case OpGE:
		return OpLE
	default: // = and != are symmetric
		return o
	}
}

// Eval applies the operator to two values.
func (o Op) Eval(a, b Value) bool {
	c := Compare(a, b)
	switch o {
	case OpEQ:
		return c == 0
	case OpNEQ:
		return c != 0
	case OpLT:
		return c < 0
	case OpGT:
		return c > 0
	case OpLE:
		return c <= 0
	case OpGE:
		return c >= 0
	default:
		return false
	}
}

// IsOrdering reports whether the operator is an order comparison
// (<, >, <=, >=) — the class OCJoin accelerates.
func (o Op) IsOrdering() bool {
	return o == OpLT || o == OpGT || o == OpLE || o == OpGE
}

// Fix is one possible update that would help resolve a violation:
// Left op Right, where Right is either another cell or a constant
// (Section 2.1). GenFix emits fixes; repair algorithms choose among them.
type Fix struct {
	Left Cell
	Op   Op
	// RightCell is valid when RightIsCell is true; otherwise RightConst
	// holds a constant target value.
	RightIsCell bool
	RightCell   Cell
	RightConst  Value
}

// NewCellFix builds a fix relating two cells, e.g. t2[city] = t4[city].
func NewCellFix(left Cell, op Op, right Cell) Fix {
	return Fix{Left: left, Op: op, RightIsCell: true, RightCell: right}
}

// NewConstFix builds a fix against a constant, e.g. t2[zipcode] != 90210.
func NewConstFix(left Cell, op Op, c Value) Fix {
	return Fix{Left: left, Op: op, RightConst: c}
}

// Cells returns the cells the fix touches (one or two).
func (f Fix) Cells() []Cell {
	if f.RightIsCell {
		return []Cell{f.Left, f.RightCell}
	}
	return []Cell{f.Left}
}

// String renders the fix for diagnostics.
func (f Fix) String() string {
	if f.RightIsCell {
		return fmt.Sprintf("%s %s %s", f.Left, f.Op, f.RightCell)
	}
	return fmt.Sprintf("%s %s %s", f.Left, f.Op, f.RightConst)
}

// FixSet groups the possible fixes generated for one violation, keeping the
// provenance needed by the repair hypergraph.
type FixSet struct {
	Violation Violation
	Fixes     []Fix
}
