package model

import "testing"

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b Value
		want bool
	}{
		{OpEQ, I(1), I(1), true},
		{OpEQ, I(1), I(2), false},
		{OpNEQ, S("a"), S("b"), true},
		{OpLT, F(1.5), F(2), true},
		{OpGT, I(3), F(2.5), true},
		{OpLE, I(2), I(2), true},
		{OpGE, I(1), I(2), false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpNegateIsInvolution(t *testing.T) {
	ops := []Op{OpEQ, OpNEQ, OpLT, OpGT, OpLE, OpGE}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("negate twice of %v != itself", op)
		}
	}
	// Negation inverts truth on every comparable pair.
	vals := []Value{I(1), I(2), I(3)}
	for _, op := range ops {
		for _, a := range vals {
			for _, b := range vals {
				if op.Eval(a, b) == op.Negate().Eval(a, b) {
					t.Errorf("%v and its negation agree on %v,%v", op, a, b)
				}
			}
		}
	}
}

func TestOpFlip(t *testing.T) {
	vals := []Value{I(1), I(2)}
	for _, op := range []Op{OpEQ, OpNEQ, OpLT, OpGT, OpLE, OpGE} {
		for _, a := range vals {
			for _, b := range vals {
				if op.Eval(a, b) != op.Flip().Eval(b, a) {
					t.Errorf("flip law fails for %v on %v,%v", op, a, b)
				}
			}
		}
	}
}

func TestParseOp(t *testing.T) {
	for s, want := range map[string]Op{"=": OpEQ, "==": OpEQ, "!=": OpNEQ, "<>": OpNEQ, "<": OpLT, ">": OpGT, "<=": OpLE, ">=": OpGE} {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v,%v", s, got, err)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("bad op should error")
	}
}

func TestIsOrdering(t *testing.T) {
	if OpEQ.IsOrdering() || OpNEQ.IsOrdering() {
		t.Error("= and != are not ordering")
	}
	for _, op := range []Op{OpLT, OpGT, OpLE, OpGE} {
		if !op.IsOrdering() {
			t.Errorf("%v is ordering", op)
		}
	}
}

func TestViolationKeyOrderInvariant(t *testing.T) {
	c1 := NewCell(1, 0, "a", S("x"))
	c2 := NewCell(2, 1, "b", S("y"))
	v1 := NewViolation("r", c1, c2)
	v2 := NewViolation("r", c2, c1)
	if v1.Key() != v2.Key() {
		t.Error("violation key should be order invariant")
	}
	v3 := NewViolation("other", c1, c2)
	if v1.Key() == v3.Key() {
		t.Error("different rules should have different keys")
	}
}

func TestViolationTupleIDs(t *testing.T) {
	v := NewViolation("r",
		NewCell(5, 0, "a", Null()),
		NewCell(2, 0, "a", Null()),
		NewCell(5, 1, "b", Null()))
	ids := v.TupleIDs()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Errorf("TupleIDs = %v", ids)
	}
}

func TestFixCells(t *testing.T) {
	l := NewCell(1, 0, "a", S("x"))
	r := NewCell(2, 0, "a", S("y"))
	cf := NewCellFix(l, OpEQ, r)
	if len(cf.Cells()) != 2 {
		t.Error("cell fix touches two cells")
	}
	kf := NewConstFix(l, OpNEQ, S("z"))
	if len(kf.Cells()) != 1 {
		t.Error("const fix touches one cell")
	}
	if kf.String() == "" || cf.String() == "" {
		t.Error("String renders")
	}
}
