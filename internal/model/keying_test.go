package model

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// randomKeyValue draws a value across every kind, biased toward
// collision-prone corners: numerically equal values of different kinds
// (I(1), F(1), S("1")), NaN, signed zero, empty strings and nulls.
func randomKeyValue(r *rand.Rand) Value {
	switch r.Intn(10) {
	case 0:
		return Null()
	case 1:
		return S("")
	case 2:
		return S(strconv.Itoa(r.Intn(5)))
	case 3:
		return I(int64(r.Intn(5)))
	case 4:
		return F(float64(r.Intn(5)))
	case 5:
		return F(math.NaN())
	case 6:
		return F(math.Copysign(0, -1))
	case 7:
		return F(0)
	case 8:
		return I(-int64(r.Intn(3)))
	default:
		return S(string(rune('a' + r.Intn(3))))
	}
}

// TestMapKeyGroupingMatchesStringKeyGrouping is the keying-layer contract:
// grouping values on the comparable MapKey struct must produce exactly the
// partition that grouping on the legacy Key() string produces. The engine
// shuffles on MapKey; Key() survives for diagnostics — both must agree on
// what "the same key" means, including NaN (equal to itself as a key) and
// -0 vs +0 (one key).
func TestMapKeyGroupingMatchesStringKeyGrouping(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = randomKeyValue(r)
		}
		byString := map[string][]int{}
		byStruct := map[ValueKey][]int{}
		structOf := map[string]ValueKey{}
		for i, v := range vals {
			sk, mk := v.Key(), v.MapKey()
			byString[sk] = append(byString[sk], i)
			byStruct[mk] = append(byStruct[mk], i)
			if prev, ok := structOf[sk]; ok && prev != mk {
				t.Fatalf("trial %d: string key %q maps to two struct keys %v and %v", trial, sk, prev, mk)
			}
			structOf[sk] = mk
		}
		if len(byString) != len(byStruct) {
			t.Fatalf("trial %d: %d string groups vs %d struct groups", trial, len(byString), len(byStruct))
		}
		for sk, members := range byString {
			got := byStruct[structOf[sk]]
			if len(got) != len(members) {
				t.Fatalf("trial %d: group %q has %d members under string keys, %d under struct keys",
					trial, sk, len(members), len(got))
			}
			for i := range members {
				if members[i] != got[i] {
					t.Fatalf("trial %d: group %q members differ: %v vs %v", trial, sk, members, got)
				}
			}
		}
	}
}

func TestMapKeySeparatesKinds(t *testing.T) {
	distinct := []Value{I(1), F(1), S("1"), Null(), S("")}
	for i, a := range distinct {
		for j, b := range distinct {
			if i != j && a.MapKey() == b.MapKey() {
				t.Errorf("%v and %v share a map key", a, b)
			}
		}
	}
}

func TestMapKeyNormalizesFloats(t *testing.T) {
	if F(math.NaN()).MapKey() != F(math.NaN()).MapKey() {
		t.Error("NaN must be a single key")
	}
	if F(math.Copysign(0, -1)).MapKey() != F(0).MapKey() {
		t.Error("-0 and +0 must be one key (Compare treats them equal)")
	}
	if F(math.NaN()).Hash() != F(math.NaN()).Hash() {
		t.Error("NaN must hash consistently")
	}
	if F(math.Copysign(0, -1)).Hash() != F(0).Hash() {
		t.Error("-0 and +0 must hash alike")
	}
}

// TestHashNoCrossKindCollisions: distinct kinds carrying "the same" simple
// payload must not collide on the 64-bit hash — the per-kind seeds keep
// I(n), F(n) and S(strconv(n)) apart, and MapKey-equal values must agree.
func TestHashNoCrossKindCollisions(t *testing.T) {
	seen := map[uint64]Value{}
	check := func(v Value) {
		h := v.Hash()
		if prev, ok := seen[h]; ok && prev.MapKey() != v.MapKey() {
			t.Fatalf("hash collision: %v and %v both hash to %#x", prev, v, h)
		}
		seen[h] = v
	}
	check(Null())
	check(S(""))
	for n := int64(0); n < 1000; n++ {
		check(I(n))
		check(I(-n - 1))
		check(F(float64(n)))
		check(F(float64(n) + 0.5))
		check(S(strconv.FormatInt(n, 10)))
	}
	// Hash must be a function of MapKey.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a, b := randomKeyValue(r), randomKeyValue(r)
		if a.MapKey() == b.MapKey() && a.Hash() != b.Hash() {
			t.Fatalf("%v and %v share a map key but hash differently", a, b)
		}
	}
}
