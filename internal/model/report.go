package model

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Violation report I/O. Section 3.2: "If no GenFix operator is provided,
// the output of the Detect operator is written to disk." Two formats are
// supported: a human-readable CSV (one row per violated cell) and the
// compact binary fix-set stream used between pipeline stages.

// WriteViolationsCSV renders fix sets as CSV rows:
// rule,violation#,tupleID,column,attribute,value,fixes.
func WriteViolationsCSV(w io.Writer, sets []FixSet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rule", "violation", "tuple", "col", "attr", "value", "fixes"}); err != nil {
		return err
	}
	for i, fs := range sets {
		fixes := ""
		for j, f := range fs.Fixes {
			if j > 0 {
				fixes += "; "
			}
			fixes += f.String()
		}
		for _, c := range fs.Violation.Cells {
			row := []string{
				fs.Violation.RuleID,
				strconv.Itoa(i),
				strconv.FormatInt(c.TupleID, 10),
				strconv.Itoa(c.Col),
				c.Attr,
				c.Value.String(),
				fixes,
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteViolationsFile writes a CSV violation report to path.
func WriteViolationsFile(path string, sets []FixSet) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: create %s: %w", path, err)
	}
	if err := WriteViolationsCSV(f, sets); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFixSetsBinary streams fix sets in the binary codec with uvarint
// length framing, the format the MapReduce backend and the storage layer
// exchange.
func WriteFixSetsBinary(w io.Writer, sets []FixSet) error {
	bw := bufio.NewWriter(w)
	var lenBuf [10]byte
	for _, fs := range sets {
		payload := EncodeFixSet(fs)
		n := putUvarint(lenBuf[:], uint64(len(payload)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFixSetsBinary reads a stream written by WriteFixSetsBinary.
func ReadFixSetsBinary(r io.Reader) ([]FixSet, error) {
	br := bufio.NewReader(r)
	var out []FixSet
	for {
		n, err := readUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("model: fix set stream: %w", err)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("model: fix set payload: %w", err)
		}
		fs, err := DecodeFixSet(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, fs)
	}
}

func putUvarint(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

func readUvarint(r io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && shift != 0 {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("model: uvarint overflow")
		}
	}
}
