package model

import (
	"bytes"
	"strings"
	"testing"
)

func sampleFixSets() []FixSet {
	c1 := NewCell(1, 2, "city", S("LA"))
	c2 := NewCell(4, 2, "city", S("SF"))
	c3 := NewCell(9, 5, "rate", F(12.5))
	return []FixSet{
		{
			Violation: NewViolation("phi1", c1, c2),
			Fixes:     []Fix{NewCellFix(c1, OpEQ, c2)},
		},
		{
			Violation: NewViolation("cap", c3),
			Fixes:     []Fix{NewConstFix(c3, OpLE, F(10))},
		},
		{
			Violation: NewViolation("detectOnly", c1), // no fixes
		},
	}
}

func TestWriteViolationsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteViolationsCSV(&buf, sampleFixSets()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 cells + 1 cell + 1 cell.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "rule,violation,tuple") {
		t.Errorf("header = %s", lines[0])
	}
	if !strings.Contains(out, "phi1") || !strings.Contains(out, "12.5") {
		t.Error("report should carry rule ids and values")
	}
}

func TestFixSetsBinaryRoundTrip(t *testing.T) {
	sets := sampleFixSets()
	var buf bytes.Buffer
	if err := WriteFixSetsBinary(&buf, sets); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFixSetsBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sets) {
		t.Fatalf("round trip count: %d vs %d", len(got), len(sets))
	}
	for i := range sets {
		if got[i].Violation.Key() != sets[i].Violation.Key() {
			t.Errorf("set %d violation mismatch", i)
		}
		if len(got[i].Fixes) != len(sets[i].Fixes) {
			t.Errorf("set %d fixes: %d vs %d", i, len(got[i].Fixes), len(sets[i].Fixes))
		}
		for j := range sets[i].Fixes {
			if got[i].Fixes[j].String() != sets[i].Fixes[j].String() {
				t.Errorf("set %d fix %d: %s vs %s", i, j, got[i].Fixes[j], sets[i].Fixes[j])
			}
		}
	}
}

func TestReadFixSetsBinaryEmpty(t *testing.T) {
	got, err := ReadFixSetsBinary(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v, %v", got, err)
	}
}

func TestReadFixSetsBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFixSetsBinary(&buf, sampleFixSets()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadFixSetsBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated stream should error")
	}
}
