package model

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a Schema.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema names and types the elements of a data unit. Schemas are immutable
// after construction; layers share them by pointer.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from attribute definitions. Attribute names must
// be unique (case-insensitive); NewSchema panics otherwise because a
// duplicate attribute is a programming error, not a data error.
func NewSchema(attrs ...Attribute) *Schema {
	s := &Schema{attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		key := strings.ToLower(a.Name)
		if _, dup := s.index[key]; dup {
			panic(fmt.Sprintf("model: duplicate attribute %q in schema", a.Name))
		}
		s.index[key] = i
	}
	return s
}

// MustParseSchema parses "name:string,zipcode:int,rate:float" notation.
// Attributes without an explicit kind default to string.
func MustParseSchema(spec string) *Schema {
	parts := strings.Split(spec, ",")
	attrs := make([]Attribute, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		name, kindName, ok := strings.Cut(p, ":")
		kind := KindString
		if ok {
			switch strings.TrimSpace(strings.ToLower(kindName)) {
			case "string", "str", "text":
				kind = KindString
			case "int", "integer", "long":
				kind = KindInt
			case "float", "double", "real":
				kind = KindFloat
			default:
				panic(fmt.Sprintf("model: unknown kind %q in schema spec", kindName))
			}
		}
		attrs = append(attrs, Attribute{Name: strings.TrimSpace(name), Kind: kind})
	}
	return NewSchema(attrs...)
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute (case-insensitive) and
// whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// MustIndex is Index but panics on a missing attribute; used where rule
// construction has already validated names.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.Index(name)
	if !ok {
		panic(fmt.Sprintf("model: schema has no attribute %q", name))
	}
	return i
}

// Name returns the name of the i-th attribute.
func (s *Schema) Name(i int) string { return s.attrs[i].Name }

// Names returns all attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Project builds a schema containing only the attributes at the given
// positions, in the given order.
func (s *Schema) Project(cols []int) *Schema {
	attrs := make([]Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = s.attrs[c]
	}
	return NewSchema(attrs...)
}

// String renders the schema in MustParseSchema notation.
func (s *Schema) String() string {
	var b strings.Builder
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Kind.String())
	}
	return b.String()
}
