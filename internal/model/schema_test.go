package model

import "testing"

func TestMustParseSchema(t *testing.T) {
	s := MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if s.Attr(0).Kind != KindString || s.Attr(0).Name != "name" {
		t.Errorf("attr 0 = %+v", s.Attr(0))
	}
	if s.Attr(1).Kind != KindInt {
		t.Errorf("zipcode kind = %v", s.Attr(1).Kind)
	}
	if s.Attr(5).Kind != KindFloat {
		t.Errorf("rate kind = %v", s.Attr(5).Kind)
	}
}

func TestSchemaIndexCaseInsensitive(t *testing.T) {
	s := MustParseSchema("Name,ZipCode:int")
	if i, ok := s.Index("zipcode"); !ok || i != 1 {
		t.Errorf("Index(zipcode) = %d,%v", i, ok)
	}
	if i, ok := s.Index("NAME"); !ok || i != 0 {
		t.Errorf("Index(NAME) = %d,%v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("missing attribute should not resolve")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute should panic")
		}
	}()
	NewSchema(Attribute{Name: "a"}, Attribute{Name: "A"})
}

func TestSchemaProject(t *testing.T) {
	s := MustParseSchema("a:int,b,c:float")
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Name(0) != "c" || p.Name(1) != "a" {
		t.Errorf("projected schema = %s", p)
	}
	if p.Attr(0).Kind != KindFloat {
		t.Error("projection should keep kinds")
	}
}

func TestSchemaStringRoundTrip(t *testing.T) {
	spec := "a:int,b:string,c:float"
	s := MustParseSchema(spec)
	s2 := MustParseSchema(s.String())
	if s2.String() != s.String() {
		t.Errorf("round trip: %s vs %s", s.String(), s2.String())
	}
}

func TestMustIndexPanics(t *testing.T) {
	s := MustParseSchema("a")
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing attr should panic")
		}
	}()
	s.MustIndex("nope")
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	MustParseSchema("a:decimal128")
}
