package model

import (
	"fmt"
	"strings"
)

// Tuple is the relational data unit. ID is a dataset-wide unique identifier
// assigned at parse time; repairs address cells as (tuple ID, attribute).
type Tuple struct {
	ID    int64
	Cells []Value
}

// NewTuple builds a tuple with the given id and cell values.
func NewTuple(id int64, cells ...Value) Tuple {
	return Tuple{ID: id, Cells: cells}
}

// Hash returns a cheap 64-bit content hash of the tuple (ID plus every cell
// value) for shuffle partitioning; it never materializes strings.
func (t Tuple) Hash() uint64 {
	h := mix64(uint64(t.ID) ^ 0xe7037ed1a0b428db)
	for _, c := range t.Cells {
		h = mix64(h ^ c.Hash())
	}
	return h
}

// Cell returns the i-th cell value; out-of-range indexes yield null, the
// same leniency the paper's UDF operators rely on.
func (t Tuple) Cell(i int) Value {
	if i < 0 || i >= len(t.Cells) {
		return Null()
	}
	return t.Cells[i]
}

// WithCell returns a copy of the tuple with cell i replaced. The original
// tuple is not modified; repairs build new instances.
func (t Tuple) WithCell(i int, v Value) Tuple {
	cells := make([]Value, len(t.Cells))
	copy(cells, t.Cells)
	if i >= 0 && i < len(cells) {
		cells[i] = v
	}
	return Tuple{ID: t.ID, Cells: cells}
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	cells := make([]Value, len(t.Cells))
	copy(cells, t.Cells)
	return Tuple{ID: t.ID, Cells: cells}
}

// Project returns a tuple holding only the cells at the given positions,
// preserving the tuple ID so downstream fixes still address the original.
func (t Tuple) Project(cols []int) Tuple {
	cells := make([]Value, len(cols))
	for i, c := range cols {
		cells[i] = t.Cell(c)
	}
	return Tuple{ID: t.ID, Cells: cells}
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t.Cells))
	for i, c := range t.Cells {
		parts[i] = c.String()
	}
	return fmt.Sprintf("t%d(%s)", t.ID, strings.Join(parts, ", "))
}

// TuplePair is an ordered pair of tuples, the unit Iterate feeds to a
// binary Detect.
type TuplePair struct {
	Left, Right Tuple
}

// Relation couples a schema with its tuples. It is the in-memory dataset
// handed to jobs and returned by parsers and generators.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// NewRelation builds an empty relation.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds tuples to the relation.
func (r *Relation) Append(ts ...Tuple) { r.Tuples = append(r.Tuples, ts...) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone deep-copies the relation (schema is shared: schemas are immutable).
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name, Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// ByID builds an index from tuple ID to position in Tuples.
func (r *Relation) ByID() map[int64]int {
	idx := make(map[int64]int, len(r.Tuples))
	for i, t := range r.Tuples {
		idx[t.ID] = i
	}
	return idx
}

// Apply destructively sets the cell (tupleID, col) to v, returning false if
// the tuple ID is unknown. It is the primitive the repair loop uses when
// materializing chosen fixes.
func (r *Relation) Apply(idx map[int64]int, tupleID int64, col int, v Value) bool {
	i, ok := idx[tupleID]
	if !ok || col < 0 || col >= len(r.Tuples[i].Cells) {
		return false
	}
	r.Tuples[i].Cells[col] = v
	return true
}
