package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestTupleCellBounds(t *testing.T) {
	tp := NewTuple(1, S("a"), I(2))
	if tp.Cell(0) != S("a") || tp.Cell(1) != I(2) {
		t.Error("in-range cells")
	}
	if !tp.Cell(-1).IsNull() || !tp.Cell(2).IsNull() {
		t.Error("out-of-range cells should be null")
	}
}

func TestWithCellDoesNotMutate(t *testing.T) {
	tp := NewTuple(1, S("a"), S("b"))
	tp2 := tp.WithCell(1, S("z"))
	if tp.Cell(1) != S("b") {
		t.Error("original mutated")
	}
	if tp2.Cell(1) != S("z") || tp2.ID != 1 {
		t.Error("copy not updated")
	}
}

func TestTupleProjectKeepsID(t *testing.T) {
	tp := NewTuple(9, S("a"), S("b"), S("c"))
	p := tp.Project([]int{2, 0})
	if p.ID != 9 || len(p.Cells) != 2 || p.Cell(0) != S("c") || p.Cell(1) != S("a") {
		t.Errorf("projection = %v", p)
	}
}

func TestRelationApply(t *testing.T) {
	s := MustParseSchema("a,b")
	r := NewRelation("r", s)
	r.Append(NewTuple(10, S("x"), S("y")), NewTuple(11, S("p"), S("q")))
	idx := r.ByID()
	if !r.Apply(idx, 11, 0, S("new")) {
		t.Fatal("apply failed")
	}
	if r.Tuples[1].Cell(0) != S("new") {
		t.Error("apply did not update")
	}
	if r.Apply(idx, 99, 0, S("no")) {
		t.Error("apply with unknown id should fail")
	}
	if r.Apply(idx, 10, 5, S("no")) {
		t.Error("apply with bad column should fail")
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	s := MustParseSchema("a")
	r := NewRelation("r", s)
	r.Append(NewTuple(0, S("x")))
	c := r.Clone()
	c.Tuples[0].Cells[0] = S("changed")
	if r.Tuples[0].Cell(0) != S("x") {
		t.Error("clone should be deep")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustParseSchema("name,zip:int,rate:float")
	in := "name,zip,rate\nAnnie,10011,3.1\nLaure,90210,5\n"
	rel, err := ReadCSV(strings.NewReader(in), "tax", s, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if rel.Tuples[0].ID != 0 || rel.Tuples[1].ID != 1 {
		t.Error("sequential ids")
	}
	if rel.Tuples[1].Cell(1) != I(90210) {
		t.Errorf("typed parse: %v", rel.Tuples[1].Cell(1))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel, true); err != nil {
		t.Fatal(err)
	}
	rel2, err := ReadCSV(bytes.NewReader(buf.Bytes()), "tax", s, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != rel.Len() {
		t.Fatal("round trip row count")
	}
	for i := range rel.Tuples {
		for j := 0; j < s.Len(); j++ {
			if !rel.Tuples[i].Cell(j).Equal(rel2.Tuples[i].Cell(j)) {
				t.Errorf("cell %d,%d mismatch: %v vs %v", i, j, rel.Tuples[i].Cell(j), rel2.Tuples[i].Cell(j))
			}
		}
	}
}

func TestCSVShortRowsPadded(t *testing.T) {
	s := MustParseSchema("a,b,c")
	rel, err := ReadCSV(strings.NewReader("1,2\n"), "r", s, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0].ID != 5 {
		t.Error("startID respected")
	}
	if !rel.Tuples[0].Cell(2).IsNull() {
		t.Error("short row should pad with null")
	}
}
