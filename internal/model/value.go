// Package model defines the data model shared by every layer of BigDansing:
// typed values, tuples (the relational data units of the paper), schemas,
// cells (the "elements" of data units), violations, and possible fixes.
//
// The paper abstracts input data as "data units" with "elements" identified
// by model-specific functions (Section 2.1). In this reproduction the
// canonical unit is the Tuple; other models (for example RDF triples, see
// package rdf) are parsed into Tuples with an appropriate Schema.
package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the zero Value; it compares less than every other value.
	KindNull Kind = iota
	// KindString is a UTF-8 string value.
	KindString
	// KindInt is a 64-bit signed integer value.
	KindInt
	// KindFloat is a 64-bit floating point value.
	KindFloat
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value. It is a small tagged union kept
// flat (no pointers, no interface boxing) so that large datasets stay cheap
// to copy between dataflow partitions.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
	Flt  float64
}

// Null returns the null value.
func Null() Value { return Value{} }

// S returns a string Value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an integer Value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// F returns a float Value.
func F(f float64) Value { return Value{Kind: KindFloat, Flt: f} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for display and for use as a grouping key.
// Distinct values of the same kind always render distinctly.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	default:
		return ""
	}
}

// Key returns a string key that is unique across kinds, suitable for hash
// grouping where I(1) must not collide with S("1").
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "n|"
	case KindString:
		return "s|" + v.Str
	case KindInt:
		return "i|" + strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return "f|" + strconv.FormatFloat(v.Flt, 'g', -1, 64)
	default:
		return "?|"
	}
}

// Float returns the value as a float64. Integers widen; strings parse if
// possible, otherwise 0.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindFloat:
		return v.Flt
	case KindInt:
		return float64(v.Int)
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// Equal reports whether two values are equal. Numeric values of different
// kinds compare by numeric value, so I(2) equals F(2).
func (v Value) Equal(o Value) bool { return Compare(v, o) == 0 }

// numeric reports whether the value carries a numeric kind.
func (v Value) numeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Compare orders two values: null < everything; numerics order numerically
// (across int/float kinds); strings order lexicographically; a numeric
// compared with a string falls back to string comparison of renderings.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Parse converts raw text to a Value of the requested kind. Unparseable
// numerics become null, matching the lenient CSV ingestion the paper's
// parsers perform.
func Parse(raw string, kind Kind) Value {
	switch kind {
	case KindString:
		return S(raw)
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return Null()
		}
		return I(i)
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return Null()
		}
		return F(f)
	default:
		return Null()
	}
}
