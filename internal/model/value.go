// Package model defines the data model shared by every layer of BigDansing:
// typed values, tuples (the relational data units of the paper), schemas,
// cells (the "elements" of data units), violations, and possible fixes.
//
// The paper abstracts input data as "data units" with "elements" identified
// by model-specific functions (Section 2.1). In this reproduction the
// canonical unit is the Tuple; other models (for example RDF triples, see
// package rdf) are parsed into Tuples with an appropriate Schema.
package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the zero Value; it compares less than every other value.
	KindNull Kind = iota
	// KindString is a UTF-8 string value.
	KindString
	// KindInt is a 64-bit signed integer value.
	KindInt
	// KindFloat is a 64-bit floating point value.
	KindFloat
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value. It is a small tagged union kept
// flat (no pointers, no interface boxing) so that large datasets stay cheap
// to copy between dataflow partitions.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
	Flt  float64
}

// Null returns the null value.
func Null() Value { return Value{} }

// S returns a string Value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an integer Value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// F returns a float Value.
func F(f float64) Value { return Value{Kind: KindFloat, Flt: f} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for display and for use as a grouping key.
// Distinct values of the same kind always render distinctly.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	default:
		return ""
	}
}

// Key returns a string key that is unique across kinds, where I(1) does not
// collide with S("1"). It allocates a string per call, so it survives only
// for diagnostics and serialization boundaries (the disk-based MapReduce
// backend shuffles string keys by design); hot grouping paths use the
// comparable MapKey and the 64-bit Hash instead. Floats are normalized like
// MapKey (-0 renders as 0, every NaN identically) so the two keyings induce
// the same groups.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "n|"
	case KindString:
		return "s|" + v.Str
	case KindInt:
		return "i|" + strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return "f|" + strconv.FormatFloat(v.Normalize().Flt, 'g', -1, 64)
	default:
		return "?|"
	}
}

// canonicalNaN is the single NaN bit pattern every NaN normalizes to, so
// NaN-valued cells land in one group instead of each NaN being its own
// never-equal key.
var canonicalNaN = math.Float64frombits(0x7ff8000000000000)

// Normalize returns the value with float edge cases canonicalized for
// keying: -0 becomes +0 and every NaN becomes one fixed NaN bit pattern.
// Without this a NaN map key would never equal itself (silently splitting a
// group) and -0 would split from +0 even though Compare treats them equal.
// Non-float values are returned unchanged.
func (v Value) Normalize() Value {
	if v.Kind == KindFloat {
		if v.Flt != v.Flt {
			v.Flt = canonicalNaN
		} else if v.Flt == 0 {
			v.Flt = 0 // collapses -0 to +0
		}
	}
	return v
}

// ValueKey is the comparable grouping key of a Value: distinct kinds are
// distinct keys (I(1), F(1) and S("1") never merge), floats are normalized
// per Normalize and stored by bit pattern so NaN keys behave as ordinary map
// keys. Use it wherever a Value keys a Go map or an engine shuffle; it
// allocates nothing, unlike the string Key.
type ValueKey struct {
	Kind Kind
	Str  string
	Num  uint64
}

// MapKey returns the comparable grouping key of the value.
func (v Value) MapKey() ValueKey {
	switch v.Kind {
	case KindString:
		return ValueKey{Kind: KindString, Str: v.Str}
	case KindInt:
		return ValueKey{Kind: KindInt, Num: uint64(v.Int)}
	case KindFloat:
		return ValueKey{Kind: KindFloat, Num: math.Float64bits(v.Normalize().Flt)}
	default:
		return ValueKey{}
	}
}

// Per-kind hash seeds keep simple values of different kinds (I(1), F(1),
// S("1"), Null) from colliding in the 64-bit hash space.
const (
	hashSeedNull   = 0x9ae16a3b2f90404f
	hashSeedString = 0xc949d7c7509e6557
	hashSeedInt    = 0xff51afd7ed558ccd
	hashSeedFloat  = 0xc4ceb9fe1a85ec53
)

// Hash returns a cheap 64-bit hash of the value for shuffle partitioning.
// It never materializes a string, normalizes floats like MapKey, and mixes a
// per-kind seed so distinct kinds hash apart. Equal MapKeys hash equal.
func (v Value) Hash() uint64 {
	switch v.Kind {
	case KindString:
		return hashBytes64(hashSeedString, v.Str)
	case KindInt:
		return mix64(uint64(v.Int) ^ hashSeedInt)
	case KindFloat:
		return mix64(math.Float64bits(v.Normalize().Flt) ^ hashSeedFloat)
	default:
		return mix64(hashSeedNull)
	}
}

// hashBytes64 is FNV-1a over the string bytes, folded through mix64; the
// seed keeps kinds apart. It allocates nothing.
func hashBytes64(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is a finalizer-style bit mixer (splitmix64) spreading integer
// payloads uniformly over the hash space.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float returns the value as a float64. Integers widen; strings parse if
// possible, otherwise 0.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindFloat:
		return v.Flt
	case KindInt:
		return float64(v.Int)
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// Equal reports whether two values are equal. Numeric values of different
// kinds compare by numeric value, so I(2) equals F(2).
func (v Value) Equal(o Value) bool { return Compare(v, o) == 0 }

// numeric reports whether the value carries a numeric kind.
func (v Value) numeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Compare orders two values: null < everything; numerics order numerically
// (across int/float kinds); strings order lexicographically; a numeric
// compared with a string falls back to string comparison of renderings.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Parse converts raw text to a Value of the requested kind. Unparseable
// numerics become null, matching the lenient CSV ingestion the paper's
// parsers perform.
func Parse(raw string, kind Kind) Value {
	switch kind {
	case KindString:
		return S(raw)
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return Null()
		}
		return I(i)
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return Null()
		}
		return F(f)
	default:
		return Null()
	}
}
