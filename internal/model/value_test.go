package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, ""},
		{S("abc"), KindString, "abc"},
		{I(-42), KindInt, "-42"},
		{F(2.5), KindFloat, "2.5"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() of %v = %q, want %q", c.v, got, c.str)
		}
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	if S("1").Key() == I(1).Key() {
		t.Error("string 1 and int 1 should have distinct keys")
	}
	if I(1).Key() == F(1).Key() {
		t.Error("int 1 and float 1 should have distinct keys")
	}
	if Null().Key() == S("").Key() {
		t.Error("null and empty string should have distinct keys")
	}
}

func TestCompareNumericAcrossKinds(t *testing.T) {
	if !I(2).Equal(F(2)) {
		t.Error("I(2) should equal F(2)")
	}
	if Compare(I(2), F(2.5)) != -1 {
		t.Error("I(2) < F(2.5)")
	}
	if Compare(F(3.5), I(3)) != 1 {
		t.Error("F(3.5) > I(3)")
	}
}

func TestCompareNullOrdering(t *testing.T) {
	for _, v := range []Value{S("a"), I(0), F(-1), S("")} {
		if Compare(Null(), v) != -1 {
			t.Errorf("null should sort before %v", v)
		}
		if Compare(v, Null()) != 1 {
			t.Errorf("%v should sort after null", v)
		}
	}
	if Compare(Null(), Null()) != 0 {
		t.Error("null == null")
	}
}

func TestCompareStrings(t *testing.T) {
	if Compare(S("apple"), S("banana")) >= 0 {
		t.Error("apple < banana")
	}
	if Compare(S("x"), S("x")) != 0 {
		t.Error("x == x")
	}
}

func TestParse(t *testing.T) {
	if got := Parse("123", KindInt); got != I(123) {
		t.Errorf("Parse int = %v", got)
	}
	if got := Parse(" 2.5 ", KindFloat); got != F(2.5) {
		t.Errorf("Parse float = %v", got)
	}
	if got := Parse("abc", KindInt); !got.IsNull() {
		t.Errorf("Parse bad int should be null, got %v", got)
	}
	if got := Parse("hello", KindString); got != S("hello") {
		t.Errorf("Parse string = %v", got)
	}
}

func TestFloatCoercion(t *testing.T) {
	if S("3.5").Float() != 3.5 {
		t.Error("string 3.5 coerces to 3.5")
	}
	if S("junk").Float() != 0 {
		t.Error("junk coerces to 0")
	}
	if I(7).Float() != 7 {
		t.Error("int widens")
	}
	if Null().Float() != 0 {
		t.Error("null coerces to 0")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null()
	case 1:
		b := make([]byte, r.Intn(8))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return S(string(b))
	case 2:
		return I(int64(r.Intn(200) - 100))
	default:
		return F(float64(r.Intn(200)-100) / 4)
	}
}

func TestCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Antisymmetry and reflexivity over random values.
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r), randomValue(r)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry failed for %v vs %v", a, b)
		}
		if Compare(a, a) != 0 {
			t.Fatalf("reflexivity failed for %v", a)
		}
	}
	// Transitivity over random triples.
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity failed for %v, %v, %v", a, b, c)
		}
	}
}

func TestValueKeyInjectiveOnStrings(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return S(a).Key() == S(b).Key()
		}
		return S(a).Key() != S(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntKeyRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return I(a).Key() == I(b).Key()
		}
		return I(a).Key() != I(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
