package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Cell addresses one element of a data unit: attribute Col of tuple TupleID.
// Value carries the element's value at detection time so repair algorithms
// can reason about violations without re-reading the dataset.
type Cell struct {
	TupleID int64
	Col     int
	Attr    string
	Value   Value
}

// NewCell builds a cell reference.
func NewCell(tupleID int64, col int, attr string, v Value) Cell {
	return Cell{TupleID: tupleID, Col: col, Attr: attr, Value: v}
}

// CellKey is the comparable identity of a cell position: attribute Col of
// tuple TupleID, ignoring the captured value. It is the map key every hot
// repair path groups on; the string Key survives only for diagnostics.
type CellKey struct {
	TupleID int64
	Col     int
}

// Less orders cell keys by (TupleID, Col), the canonical order violation
// identities and hyperedge node lists use.
func (k CellKey) Less(o CellKey) bool {
	if k.TupleID != o.TupleID {
		return k.TupleID < o.TupleID
	}
	return k.Col < o.Col
}

// Compare returns -1/0/1 ordering cell keys by (TupleID, Col).
func (k CellKey) Compare(o CellKey) int {
	switch {
	case k.TupleID < o.TupleID:
		return -1
	case k.TupleID > o.TupleID:
		return 1
	case k.Col < o.Col:
		return -1
	case k.Col > o.Col:
		return 1
	default:
		return 0
	}
}

// MapKey returns the comparable position identity of the cell.
func (c Cell) MapKey() CellKey { return CellKey{TupleID: c.TupleID, Col: c.Col} }

// Hash returns a cheap 64-bit hash of the cell position for partitioning.
func (c Cell) Hash() uint64 { return c.MapKey().Hash() }

// Hash returns a cheap 64-bit hash of the cell key.
func (k CellKey) Hash() uint64 {
	return mix64(mix64(uint64(k.TupleID)^0xa0761d6478bd642f) ^ uint64(uint32(k.Col)))
}

// Key identifies the cell position (ignoring the captured value) as a
// string, for diagnostics; two fixes touching the same Key touch the same
// element. Hot paths use MapKey instead.
func (c Cell) Key() string {
	buf := make([]byte, 0, 24)
	buf = strconv.AppendInt(buf, c.TupleID, 10)
	buf = append(buf, '#')
	buf = strconv.AppendInt(buf, int64(c.Col), 10)
	return string(buf)
}

// String renders the cell for diagnostics.
func (c Cell) String() string {
	return fmt.Sprintf("t%d.%s=%s", c.TupleID, c.Attr, c.Value)
}

// Violation is the output of Detect: the set of elements that together
// break a rule (Section 2.1).
type Violation struct {
	RuleID string
	Cells  []Cell
}

// NewViolation builds a violation for the given rule.
func NewViolation(ruleID string, cells ...Cell) Violation {
	return Violation{RuleID: ruleID, Cells: cells}
}

// AddCell appends an element to the violation.
func (v *Violation) AddCell(c Cell) { v.Cells = append(v.Cells, c) }

// TupleIDs returns the distinct tuple IDs involved, sorted.
func (v Violation) TupleIDs() []int64 {
	seen := make(map[int64]struct{}, len(v.Cells))
	for _, c := range v.Cells {
		seen[c.TupleID] = struct{}{}
	}
	ids := make([]int64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// violationKeyInline is how many cell positions a ViolationKey carries
// inline; violations with more cells (rare — rules emit 1-2 cells) spill the
// rest into the Extra string.
const violationKeyInline = 4

// ViolationKey is the comparable canonical identity of a violation: the rule
// plus the sorted cell positions. The common 1-2 cell case fits the inline
// array and allocates nothing; cells beyond violationKeyInline are rendered
// into Extra, keeping identity exact (never hashed) at any arity.
type ViolationKey struct {
	RuleID string
	N      int
	Cells  [violationKeyInline]CellKey
	Extra  string
}

// MapKey returns the comparable canonical identity of the violation.
// Engines that may emit a violation twice (for example a SQL self-join
// emitting both (t1,t2) and (t2,t1)) dedupe on this key.
func (v Violation) MapKey() ViolationKey {
	k := ViolationKey{RuleID: v.RuleID, N: len(v.Cells)}
	if len(v.Cells) <= violationKeyInline {
		for i, c := range v.Cells {
			k.Cells[i] = c.MapKey()
		}
		// Insertion sort over at most four elements: canonical order without
		// touching the heap.
		for i := 1; i < len(v.Cells); i++ {
			for j := i; j > 0 && k.Cells[j].Less(k.Cells[j-1]); j-- {
				k.Cells[j], k.Cells[j-1] = k.Cells[j-1], k.Cells[j]
			}
		}
		return k
	}
	keys := make([]CellKey, len(v.Cells))
	for i, c := range v.Cells {
		keys[i] = c.MapKey()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	copy(k.Cells[:], keys[:violationKeyInline])
	buf := make([]byte, 0, (len(keys)-violationKeyInline)*12)
	for _, ck := range keys[violationKeyInline:] {
		buf = strconv.AppendInt(buf, ck.TupleID, 10)
		buf = append(buf, '#')
		buf = strconv.AppendInt(buf, int64(ck.Col), 10)
		buf = append(buf, ',')
	}
	k.Extra = string(buf)
	return k
}

// Key returns the canonical violation identity as a string, for diagnostics
// and serialization; dedup hot paths use the comparable MapKey instead.
func (v Violation) Key() string {
	keys := make([]string, len(v.Cells))
	for i, c := range v.Cells {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	buf := make([]byte, 0, len(v.RuleID)+1+len(keys)*12)
	buf = append(buf, v.RuleID...)
	buf = append(buf, '|')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, k...)
	}
	return string(buf)
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	parts := make([]string, len(v.Cells))
	for i, c := range v.Cells {
		parts[i] = c.String()
	}
	return fmt.Sprintf("violation[%s]{%s}", v.RuleID, strings.Join(parts, "; "))
}
