package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Cell addresses one element of a data unit: attribute Col of tuple TupleID.
// Value carries the element's value at detection time so repair algorithms
// can reason about violations without re-reading the dataset.
type Cell struct {
	TupleID int64
	Col     int
	Attr    string
	Value   Value
}

// NewCell builds a cell reference.
func NewCell(tupleID int64, col int, attr string, v Value) Cell {
	return Cell{TupleID: tupleID, Col: col, Attr: attr, Value: v}
}

// Key identifies the cell position (ignoring the captured value); two fixes
// touching the same Key touch the same element.
func (c Cell) Key() string {
	buf := make([]byte, 0, 24)
	buf = strconv.AppendInt(buf, c.TupleID, 10)
	buf = append(buf, '#')
	buf = strconv.AppendInt(buf, int64(c.Col), 10)
	return string(buf)
}

// String renders the cell for diagnostics.
func (c Cell) String() string {
	return fmt.Sprintf("t%d.%s=%s", c.TupleID, c.Attr, c.Value)
}

// Violation is the output of Detect: the set of elements that together
// break a rule (Section 2.1).
type Violation struct {
	RuleID string
	Cells  []Cell
}

// NewViolation builds a violation for the given rule.
func NewViolation(ruleID string, cells ...Cell) Violation {
	return Violation{RuleID: ruleID, Cells: cells}
}

// AddCell appends an element to the violation.
func (v *Violation) AddCell(c Cell) { v.Cells = append(v.Cells, c) }

// TupleIDs returns the distinct tuple IDs involved, sorted.
func (v Violation) TupleIDs() []int64 {
	seen := make(map[int64]struct{}, len(v.Cells))
	for _, c := range v.Cells {
		seen[c.TupleID] = struct{}{}
	}
	ids := make([]int64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Key returns a canonical identity for the violation: rule plus the sorted
// cell positions. Engines that may emit a violation twice (for example a SQL
// self-join emitting both (t1,t2) and (t2,t1)) dedupe on this key.
func (v Violation) Key() string {
	keys := make([]string, len(v.Cells))
	for i, c := range v.Cells {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	buf := make([]byte, 0, len(v.RuleID)+1+len(keys)*12)
	buf = append(buf, v.RuleID...)
	buf = append(buf, '|')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, k...)
	}
	return string(buf)
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	parts := make([]string, len(v.Cells))
	for i, c := range v.Cells {
		parts[i] = c.String()
	}
	return fmt.Sprintf("violation[%s]{%s}", v.RuleID, strings.Join(parts, "; "))
}
