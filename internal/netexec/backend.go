package netexec

import (
	"bigdansing/internal/engine"
)

// Importing netexec is what makes engine.BackendNet constructible: the init
// hook registers the Coordinator as the exchange factory for that backend
// kind, mapping the engine-level knobs onto the coordinator's Config.
func init() {
	engine.RegisterExchange(engine.BackendNet, func(cfg engine.Config, obs engine.Observer) (engine.Exchange, error) {
		return New(Config{
			Workers:     cfg.NetWorkers,
			ListenHost:  cfg.NetListenAddr,
			WorkerAddrs: cfg.NetWorkerAddrs,
		}, obs)
	})
}
