package chaostest

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"bigdansing/internal/engine"
	"bigdansing/internal/netexec"
)

func TestMain(m *testing.M) {
	netexec.MaybeWorker()
	os.Exit(m.Run())
}

// pipeline runs a two-exchange plan — a word-count ReduceByKey shuffle
// followed by a SortBy range scatter — over the given context, on data
// derived from the seed.
func pipeline(ctx *engine.Context, seed int64) ([]engine.Pair[string, int], error) {
	r := rand.New(rand.NewSource(seed))
	words := make([]engine.Pair[string, int], 1500)
	for i := range words {
		words[i] = engine.KV(fmt.Sprintf("w%03d", r.Intn(120)), 1)
	}
	counts := engine.ReduceByKey(engine.Parallelize(ctx, words, 8),
		func(a, b int) int { return a + b })
	sorted := engine.SortBy(counts, func(a, b engine.Pair[string, int]) bool {
		return a.Key < b.Key
	}, 4)
	return sorted.Collect()
}

// TestChaosSchedules runs 50 seeded fault schedules. Every schedule must
// (a) produce output identical to the in-process backend — faults may cost
// time, never correctness — and (b) actually fire: the matching robustness
// counter (retries for connection drops, recoveries for worker deaths,
// straggler re-dispatches for delays) must be nonzero, proving the fault
// paths were exercised rather than skipped.
func TestChaosSchedules(t *testing.T) {
	const schedules = 50
	const workers = 2

	for seed := int64(1); seed <= schedules; seed++ {
		sch := NewSchedule(seed, workers)
		t.Run(sch.String(), func(t *testing.T) {
			t.Parallel()

			local := engine.New(4)
			want, err := pipeline(local, seed)
			if err != nil {
				t.Fatal(err)
			}

			cfg := netexec.Config{
				Workers:          workers,
				RPCTimeout:       5 * time.Second,
				RetryBackoff:     5 * time.Millisecond,
				StragglerFactor:  2,
				StragglerMinDone: 1,
				StragglerPoll:    5 * time.Millisecond,
			}
			sch.Apply(&cfg)
			coord, err := netexec.New(cfg, nil)
			if err != nil {
				t.Fatalf("coordinator under %v: %v", sch, err)
			}
			ctx, err := engine.NewContext(engine.Config{Parallelism: 4, Exchange: coord})
			if err != nil {
				t.Fatal(err)
			}
			defer ctx.Close()

			got, err := pipeline(ctx, seed)
			if err != nil {
				t.Fatalf("pipeline under %v: %v", sch, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("output under %v differs from the in-process backend", sch)
			}
			if c := coord.Counters(); !sch.Fired(c) {
				t.Errorf("fault %v did not fire: counters %+v", sch, c)
			}
		})
	}
}
