// Package chaostest is the fault-injection harness for the networked
// backend. A Schedule is a deterministic fault plan derived from a seed: it
// names one fault kind (drop a connection after k frames, kill a worker
// after k frames, delay a worker's responses), one target slot and the
// fault's parameters. Applying a schedule arms the coordinator's and
// workers' chaos hooks; the test suite then runs a real plan through the
// faulted deployment and requires (a) output identical to the in-process
// backend and (b) the matching robustness counter to have fired — proving
// the retry, recovery and straggler paths do real work rather than
// decorating the happy path.
package chaostest

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync/atomic"

	"bigdansing/internal/netexec"
)

// Kind names a fault class.
type Kind string

const (
	// KindDropConn closes coordinator->worker connections mid-RPC after a
	// chosen number of frames; exercises the retry + redial path.
	KindDropConn Kind = "drop-conn"
	// KindKillWorker makes the target worker process exit after receiving
	// a chosen number of frames — death mid-shuffle; exercises respawn and
	// lineage re-placement.
	KindKillWorker Kind = "kill-worker"
	// KindDelayWorker makes the target worker sleep before every response;
	// exercises straggler detection and backup re-dispatch.
	KindDelayWorker Kind = "delay-worker"
)

// Schedule is one deterministic fault plan.
type Schedule struct {
	Seed       int64
	Kind       Kind
	Slot       int // target worker slot
	FaultConns int // drop-conn: how many dials to the slot get the fault
	Frames     int // drop-conn / kill-worker: frames before the fault fires
	DelayMS    int // delay-worker: per-response sleep
}

// NewSchedule derives the fault plan of a seed for a deployment of the
// given worker count. Same seed, same schedule — the suite's 50 seeds are
// 50 reproducible fault scenarios.
func NewSchedule(seed int64, workers int) Schedule {
	r := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Slot: r.Intn(workers)}
	switch r.Intn(3) {
	case 0:
		s.Kind = KindDropConn
		s.FaultConns = 1 + r.Intn(2)
		s.Frames = 1 + r.Intn(6)
	case 1:
		// The chaos pipeline feeds each worker a couple dozen frames; keep
		// the threshold low enough that the death always lands mid-work.
		s.Kind = KindKillWorker
		s.Frames = 2 + r.Intn(8)
	default:
		s.Kind = KindDelayWorker
		s.DelayMS = 200 + r.Intn(150)
	}
	return s
}

func (s Schedule) String() string {
	return fmt.Sprintf("seed=%d %s slot=%d conns=%d frames=%d delay=%dms",
		s.Seed, s.Kind, s.Slot, s.FaultConns, s.Frames, s.DelayMS)
}

// Apply arms cfg with the schedule's fault hooks. Mutates WrapConn and
// SlotEnv only; timeouts and straggler knobs stay the caller's business.
func (s Schedule) Apply(cfg *netexec.Config) {
	switch s.Kind {
	case KindDropConn:
		var faulted atomic.Int32
		frames, conns, slot := s.Frames, int32(s.FaultConns), s.Slot
		cfg.WrapConn = func(conn net.Conn, slotID int) net.Conn {
			if slotID != slot || faulted.Add(1) > conns {
				return conn
			}
			d := &dropConn{Conn: conn}
			d.remaining.Store(int32(frames))
			return d
		}
	case KindKillWorker:
		cfg.SlotEnv = func(slotID int) []string {
			if slotID != s.Slot {
				return nil
			}
			return []string{netexec.ChaosDieEnv + "=" + strconv.Itoa(s.Frames)}
		}
	case KindDelayWorker:
		cfg.SlotEnv = func(slotID int) []string {
			if slotID != s.Slot {
				return nil
			}
			return []string{netexec.ChaosDelayEnv + "=" + strconv.Itoa(s.DelayMS)}
		}
	}
}

// Fired reports whether the schedule's fault class left its expected trace
// in the robustness counters.
func (s Schedule) Fired(c netexec.Counters) bool {
	switch s.Kind {
	case KindDropConn:
		return c.Retries > 0
	case KindKillWorker:
		return c.Recoveries > 0
	case KindDelayWorker:
		return c.Stragglers > 0
	}
	return false
}

// dropConn passes writes through until its frame budget is spent, then
// closes the connection and fails — a deterministic mid-RPC connection
// drop. The coordinator writes each frame with a single Write call, so the
// budget counts whole frames.
type dropConn struct {
	net.Conn
	remaining atomic.Int32
}

var errInjectedDrop = errors.New("chaostest: injected connection drop")

func (d *dropConn) Write(b []byte) (int, error) {
	if d.remaining.Add(-1) < 0 {
		d.Conn.Close()
		return 0, errInjectedDrop
	}
	return d.Conn.Write(b)
}
