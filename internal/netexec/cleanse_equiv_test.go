package netexec

import (
	"fmt"
	"testing"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/rules"
)

// dirtyTaxFDDC builds a tax table violating both an FD (zipcode -> city:
// a minority of each zipcode group carries a corrupted city) and a DC
// (no tuple may earn more yet pay a lower tax rate than another).
func dirtyTaxFDDC(groups, perGroup int) *model.Relation {
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	id := int64(0)
	for g := 0; g < groups; g++ {
		city := fmt.Sprintf("City%d", g)
		for i := 0; i < perGroup; i++ {
			c := city
			if i == 0 {
				c = city + "_typo" // FD violation: minority city per zipcode
			}
			rate := float64(10 + id%25)
			if id%11 == 0 {
				rate = 1 // DC violation: high earner, implausibly low rate
			}
			rel.Append(model.NewTuple(id,
				model.S(fmt.Sprintf("P%d", id)),
				model.I(int64(10000+g)),
				model.S(c),
				model.S("ST"),
				model.F(float64(40000+1000*id)),
				model.F(rate),
			))
			id++
		}
	}
	return rel
}

func fdDCRules(t *testing.T, s *model.Schema) []*core.Rule {
	t.Helper()
	fd, err := rules.ParseFD("phi1", "zipcode -> city")
	if err != nil {
		t.Fatal(err)
	}
	fdRule, err := fd.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := rules.ParseDC("phi2", "t1.rate > t2.rate & t1.salary < t2.salary")
	if err != nil {
		t.Fatal(err)
	}
	dcRule, err := dc.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return []*core.Rule{fdRule, dcRule}
}

// TestCleanseFDDCMatchesLocal runs the full detect-repair loop (FD + DC
// together) on the in-process backend and on the networked backend with
// 1..5 worker processes, and requires identical results: the same repaired
// relation cell for cell, the same violation counts, the same iteration
// count. This is the end-to-end form of the cross-backend equivalence
// property — the detection plans route their shuffles, co-groups and join
// scatters through real worker processes and must change nothing.
func TestCleanseFDDCMatchesLocal(t *testing.T) {
	rel := dirtyTaxFDDC(6, 6)

	run := func(ctx *engine.Context) *cleanse.Result {
		t.Helper()
		cl, err := cleanse.NewCleaner(ctx, fdDCRules(t, rel.Schema), cleanse.WithMaxIterations(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Clean(rel)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(engine.New(4))
	for workers := 1; workers <= 5; workers++ {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := run(newNetCtx(t, workers))
			if got.InitialViolations != want.InitialViolations {
				t.Errorf("initial violations: %d vs %d", got.InitialViolations, want.InitialViolations)
			}
			if got.RemainingViolations != want.RemainingViolations {
				t.Errorf("remaining violations: %d vs %d", got.RemainingViolations, want.RemainingViolations)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("iterations: %d vs %d", got.Iterations, want.Iterations)
			}
			if len(got.Clean.Tuples) != len(want.Clean.Tuples) {
				t.Fatalf("tuple count: %d vs %d", len(got.Clean.Tuples), len(want.Clean.Tuples))
			}
			for i, wt := range want.Clean.Tuples {
				gt := got.Clean.Tuples[i]
				for c := 0; c < len(wt.Cells); c++ {
					if gt.Cell(c) != wt.Cell(c) {
						t.Errorf("tuple %d cell %d: %v vs %v", i, c, gt.Cell(c), wt.Cell(c))
					}
				}
			}
		})
	}
}
