package netexec

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bigdansing/internal/engine"
)

// Config parameterizes a Coordinator. The zero value is usable: two spawned
// workers on loopback with production timeouts.
type Config struct {
	// Workers is how many worker processes to spawn (default 2). Ignored
	// when WorkerAddrs joins pre-started workers instead.
	Workers int
	// ListenHost is the interface spawned workers listen on (default
	// 127.0.0.1; each worker picks an ephemeral port).
	ListenHost string
	// WorkerAddrs joins already-running workers (started with
	// `bigdansing worker`) instead of spawning; death recovery then fails
	// over to the surviving workers rather than respawning.
	WorkerAddrs []string

	// RPCTimeout is the per-frame I/O deadline of every RPC (default 10s).
	RPCTimeout time.Duration
	// MaxRetries is how many times a failed RPC is retried on the same
	// slot — with exponential backoff and a fresh dial — before the task
	// fails over to the next candidate slot (default 3).
	MaxRetries int
	// RetryBackoff is the base backoff, doubled per retry (default 25ms).
	RetryBackoff time.Duration
	// SendWindow bounds the unacknowledged PUT frames in flight per
	// connection (default 8): the worker credits each received frame back,
	// and the sender blocks on credits before pushing more.
	SendWindow int

	// StragglerFactor re-dispatches a task to a backup slot when it runs
	// longer than this multiple of the median completed-task span (default
	// 3). First result wins.
	StragglerFactor float64
	// StragglerMinDone is the minimum completed task count before the
	// median is trusted (default 3).
	StragglerMinDone int
	// StragglerPoll is how often running tasks are checked (default 10ms).
	StragglerPoll time.Duration

	// WrapConn, when set, wraps every dialed connection — the fault
	// injection harness uses it to drop connections after k frames.
	WrapConn func(conn net.Conn, slot int) net.Conn
	// SlotEnv, when set, appends extra environment to a spawned slot's
	// worker process — the fault injection harness uses it to arm the
	// worker-side chaos knobs on chosen slots.
	SlotEnv func(slot int) []string
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.ListenHost == "" {
		cfg.ListenHost = "127.0.0.1"
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.SendWindow <= 0 {
		cfg.SendWindow = 8
	}
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 3
	}
	if cfg.StragglerMinDone <= 0 {
		cfg.StragglerMinDone = 3
	}
	if cfg.StragglerPoll <= 0 {
		cfg.StragglerPoll = 10 * time.Millisecond
	}
	return cfg
}

// Counters is a snapshot of the coordinator's robustness counters; the
// chaos suite asserts on them to prove the fault paths actually fired.
type Counters struct {
	Dials      int64 // TCP connections opened
	Retries    int64 // RPC attempts retried after a failure
	Stragglers int64 // straggler re-dispatches (backup attempts launched)
	Recoveries int64 // worker deaths recovered (respawns + failovers)
	BytesSent  int64
	BytesRecv  int64
}

// slot is one position on the placement ring: a worker process (possibly
// respawned several times) that owns the partitions hashing to it.
type slot struct {
	id      int
	spawned bool // we own the process (vs joined via WorkerAddrs)

	mu     sync.Mutex
	addr   string
	conns  []net.Conn
	dead   bool
	gen    int // incremented per (re)spawn; stale pooled conns are discarded
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	waitCh chan struct{} // closed by the watcher once the process is reaped
}

// Coordinator is the control plane of the networked backend: it owns the
// worker processes, places destination partitions on them by consistent
// hashing, and drives the per-destination tasks (PUT lineage, then FETCH or
// EXEC) with deadlines, retries, straggler backups and death recovery. It
// implements engine.Exchange.
type Coordinator struct {
	cfg   Config
	obs   engine.Observer
	ring  *ring
	slots []*slot

	xferSeq atomic.Uint32
	closed  atomic.Bool
	spawnMu sync.Mutex // single-flights respawns

	dials, retries, stragglers, recovered atomic.Int64
	bytesSent, bytesRecv                  atomic.Int64
}

var _ engine.Exchange = (*Coordinator)(nil)

// New builds a Coordinator: spawns (or joins) the workers, verifies each
// answers a ping, and returns the ready data plane. obs receives the
// SpanNet spans and net metrics; nil means discard.
func New(cfg Config, obs engine.Observer) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if obs == nil {
		obs = engine.Discard
	}
	c := &Coordinator{cfg: cfg, obs: obs}
	if len(cfg.WorkerAddrs) > 0 {
		for i, addr := range cfg.WorkerAddrs {
			c.slots = append(c.slots, &slot{id: i, addr: addr})
		}
	} else {
		for i := 0; i < cfg.Workers; i++ {
			s := &slot{id: i, spawned: true}
			if err := c.spawn(s); err != nil {
				c.Close()
				return nil, err
			}
			c.slots = append(c.slots, s)
		}
	}
	c.ring = newRing(len(c.slots))
	for _, s := range c.slots {
		if err := c.withRetry(s, nil, func(r *rpc) error { return r.ping() }); err != nil {
			c.Close()
			return nil, fmt.Errorf("netexec: worker %d (%s) not answering: %w", s.id, s.addr, err)
		}
	}
	return c, nil
}

// Workers reports the worker process count.
func (c *Coordinator) Workers() int { return len(c.slots) }

// Counters snapshots the robustness counters.
func (c *Coordinator) Counters() Counters {
	return Counters{
		Dials:      c.dials.Load(),
		Retries:    c.retries.Load(),
		Stragglers: c.stragglers.Load(),
		Recoveries: c.recovered.Load(),
		BytesSent:  c.bytesSent.Load(),
		BytesRecv:  c.bytesRecv.Load(),
	}
}

// spawn starts (or restarts) the worker process of a slot by re-executing
// this binary with the worker env hook set; the production CLI and the test
// binaries both route the child into WorkerMain via MaybeWorker. The
// child's stdin pipe is the death watchdog, its stdout announces the
// listening address.
func (c *Coordinator) spawn(s *slot) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("netexec: locate own binary: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"="+net.JoinHostPort(c.cfg.ListenHost, "0"))
	// Race-instrumented binaries sleep 1000ms at exit by default (TSan's
	// atexit_sleep_ms), which turns every worker shutdown into a full
	// second under `go test -race`. Appending the flag overrides it for the
	// workers only; it is inert for non-race builds.
	gorace := "atexit_sleep_ms=0"
	if cur := os.Getenv("GORACE"); cur != "" {
		gorace = cur + " atexit_sleep_ms=0"
	}
	cmd.Env = append(cmd.Env, "GORACE="+gorace)
	if c.cfg.SlotEnv != nil {
		cmd.Env = append(cmd.Env, c.cfg.SlotEnv(s.id)...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("netexec: spawn worker %d: %w", s.id, err)
	}

	readyCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "NETEXEC_READY "); ok {
				readyCh <- addr
				break
			}
		}
		// Keep draining so a chatty child can never block on stdout.
		for sc.Scan() {
		}
	}()
	var addr string
	select {
	case addr = <-readyCh:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("netexec: worker %d did not report ready", s.id)
	}

	waitCh := make(chan struct{})
	s.mu.Lock()
	s.addr = addr
	s.cmd = cmd
	s.stdin = stdin
	s.waitCh = waitCh
	s.dead = false
	s.gen++
	gen := s.gen
	s.mu.Unlock()

	go func() {
		cmd.Wait() // the watcher owns Wait; Close waits on waitCh instead
		c.markDead(s, gen)
		close(waitCh)
	}()
	return nil
}

// markDead flags a slot whose process of generation gen exited and closes
// its pooled connections. A stale gen (the slot was already respawned) is
// ignored.
func (c *Coordinator) markDead(s *slot, gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen {
		return
	}
	s.dead = true
	for _, conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
}

// ensureAlive respawns a dead spawned slot (single-flighted) so the retry
// that follows re-places the lost partitions from lineage. Joined workers
// cannot be respawned; their tasks fail over to other slots instead.
func (c *Coordinator) ensureAlive(s *slot) error {
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if !dead {
		return nil
	}
	if !s.spawned || c.closed.Load() {
		return fmt.Errorf("netexec: worker slot %d is down", s.id)
	}
	c.spawnMu.Lock()
	defer c.spawnMu.Unlock()
	s.mu.Lock()
	dead = s.dead
	s.mu.Unlock()
	if !dead {
		return nil // another task already respawned it
	}
	if err := c.spawn(s); err != nil {
		return err
	}
	c.recovered.Add(1)
	c.obs.Count(engine.MetricNetRecoveries, 1)
	return nil
}

// checkout takes a pooled connection to the slot, dialing a fresh one when
// the pool is empty. Connections are used exclusively for one RPC sequence.
func (c *Coordinator) checkout(s *slot) (net.Conn, int, error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("netexec: worker slot %d is down", s.id)
	}
	gen := s.gen
	if n := len(s.conns); n > 0 {
		conn := s.conns[n-1]
		s.conns = s.conns[:n-1]
		s.mu.Unlock()
		return conn, gen, nil
	}
	addr := s.addr
	s.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, c.cfg.RPCTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("netexec: dial worker %d (%s): %w", s.id, addr, err)
	}
	c.dials.Add(1)
	c.obs.Count(engine.MetricNetDials, 1)
	if c.cfg.WrapConn != nil {
		conn = c.cfg.WrapConn(conn, s.id)
	}
	return conn, gen, nil
}

// checkin returns a healthy connection to the pool; stale generations (the
// slot respawned while this RPC ran) are discarded.
func (c *Coordinator) checkin(s *slot, conn net.Conn, gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.gen != gen || c.closed.Load() {
		conn.Close()
		return
	}
	s.conns = append(s.conns, conn)
}

// opCounters accumulates one exchange operation's traffic and robustness
// events, reported as the SpanNet attributes when the operation ends.
type opCounters struct {
	sent, recvd, retries, stragglers, recovered atomic.Int64
}

// withRetry runs one RPC sequence against a slot with per-attempt
// deadlines, exponential backoff between attempts, a fresh dial after a
// failure, and a respawn when the worker died. ops may be nil.
func (c *Coordinator) withRetry(s *slot, ops *opCounters, body func(r *rpc) error) error {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for try := 0; try <= c.cfg.MaxRetries; try++ {
		if try > 0 {
			c.retries.Add(1)
			c.obs.Count(engine.MetricNetRetries, 1)
			if ops != nil {
				ops.retries.Add(1)
			}
			time.Sleep(backoff)
			backoff *= 2
		}
		if err := c.ensureAlive(s); err != nil {
			lastErr = err
			continue
		}
		conn, gen, err := c.checkout(s)
		if err != nil {
			lastErr = err
			continue
		}
		r := &rpc{conn: conn, timeout: c.cfg.RPCTimeout, window: c.cfg.SendWindow}
		err = body(r)
		c.bytesSent.Add(r.sent)
		c.bytesRecv.Add(r.recvd)
		c.obs.Count(engine.MetricNetBytesSent, r.sent)
		c.obs.Count(engine.MetricNetBytesRecv, r.recvd)
		if ops != nil {
			ops.sent.Add(r.sent)
			ops.recvd.Add(r.recvd)
		}
		if err == nil {
			c.checkin(s, conn, gen)
			return nil
		}
		conn.Close()
		lastErr = err
	}
	return lastErr
}

// taskTimes tracks completed task spans of one exchange operation; the
// straggler monitor compares running tasks against the median.
type taskTimes struct {
	mu   sync.Mutex
	done []time.Duration
}

func (t *taskTimes) record(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = append(t.done, d)
}

// straggling reports whether a task started at start has exceeded
// factor x median of the completed spans (with at least minDone completed).
func (t *taskTimes) straggling(start time.Time, factor float64, minDone int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.done) < minDone {
		return false
	}
	sorted := append([]time.Duration(nil), t.done...)
	for i := 1; i < len(sorted); i++ { // insertion sort; the list is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	median := sorted[len(sorted)/2]
	return time.Since(start) > time.Duration(factor*float64(median))
}

// runTask drives one destination task to completion. The primary attempt
// runs on the ring owner; a straggling attempt gets one backup dispatched
// to the next candidate slot (first result wins); a failed attempt fails
// over down the candidate list, each failover counting as a recovery
// (the task's data is re-placed from lineage onto another worker).
func (c *Coordinator) runTask(dst int, tt *taskTimes, ops *opCounters, attempts *sync.WaitGroup, attempt func(slotID int) ([][]byte, error)) ([][]byte, error) {
	cands := c.ring.candidates(dst)
	type result struct {
		recs [][]byte
		err  error
	}
	ch := make(chan result, len(cands))
	next := 0
	inflight := 0
	launch := func() {
		sid := cands[next]
		next++
		inflight++
		attempts.Add(1)
		go func() {
			defer attempts.Done()
			recs, err := attempt(sid)
			ch <- result{recs, err}
		}()
	}
	start := time.Now()
	launch()
	redispatched := false
	var lastErr error
	for inflight > 0 {
		var tick <-chan time.Time
		if !redispatched && next < len(cands) {
			tick = time.After(c.cfg.StragglerPoll)
		}
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				tt.record(time.Since(start))
				return r.recs, nil
			}
			lastErr = r.err
			if inflight == 0 && next < len(cands) {
				c.recovered.Add(1)
				c.obs.Count(engine.MetricNetRecoveries, 1)
				if ops != nil {
					ops.recovered.Add(1)
				}
				launch()
			}
		case <-tick:
			if tt.straggling(start, c.cfg.StragglerFactor, c.cfg.StragglerMinDone) {
				redispatched = true
				c.stragglers.Add(1)
				c.obs.Count(engine.MetricNetStragglers, 1)
				if ops != nil {
					ops.stragglers.Add(1)
				}
				launch()
			}
		}
	}
	return nil, lastErr
}

// Shuffle implements engine.Exchange: per destination partition, PUT the
// destination's records (grouped by source, from the coordinator's lineage)
// to the owning worker, then FETCH them back gathered in source order. All
// destination tasks run concurrently under the straggler monitor.
func (c *Coordinator) Shuffle(op string, parts [][]engine.EncodedRec, n int) (_ [][][]byte, err error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("netexec: coordinator is closed")
	}
	xfer := c.xferSeq.Add(1)
	// Lineage: lin[dst][src] holds the encoded records, the unit any task
	// can be restarted from on any worker.
	lin := make([][][][]byte, n)
	for dst := range lin {
		lin[dst] = make([][][]byte, len(parts))
	}
	for src, p := range parts {
		for _, r := range p {
			if int(r.Dst) >= n {
				return nil, fmt.Errorf("netexec: %s: record destined for partition %d of %d", op, r.Dst, n)
			}
			lin[r.Dst][src] = append(lin[r.Dst][src], r.Data)
		}
	}

	span := c.obs.BeginSpan(nil, "net:"+op, engine.SpanNet)
	ops := &opCounters{}
	var attempts sync.WaitGroup
	defer func() {
		attempts.Wait() // losing straggler attempts must land before drop
		c.dropXfer(xfer)
		span.Attr(engine.AttrNetBytesSent, ops.sent.Load())
		span.Attr(engine.AttrNetBytesRecv, ops.recvd.Load())
		span.Attr(engine.AttrNetRetries, ops.retries.Load())
		span.Attr(engine.AttrNetRedispatches, ops.stragglers.Load())
		span.Attr(engine.AttrNetRecoveries, ops.recovered.Load())
		span.End()
	}()

	out := make([][][]byte, n)
	errs := make([]error, n)
	tt := &taskTimes{}
	var wg sync.WaitGroup
	for dst := 0; dst < n; dst++ {
		empty := true
		for _, recs := range lin[dst] {
			if len(recs) > 0 {
				empty = false
				break
			}
		}
		if empty {
			continue // nothing to move; the destination partition is empty
		}
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			out[dst], errs[dst] = c.runTask(dst, tt, ops, &attempts, func(slotID int) ([][]byte, error) {
				var recs [][]byte
				err := c.withRetry(c.slots[slotID], ops, func(r *rpc) error {
					for src, b := range lin[dst] {
						if err := r.putBucket(xfer, uint32(dst), uint32(src), b); err != nil {
							return err
						}
					}
					if err := r.drainAcks(); err != nil {
						return err
					}
					got, err := r.fetch(xfer, uint32(dst))
					if err != nil {
						return err
					}
					recs = got
					return nil
				})
				return recs, err
			})
		}(dst)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// Cartesian implements engine.Exchange: each left partition and the
// broadcast right side are PUT to the partition's owner (buckets 0 and 1),
// then EXEC "cartesian" expands the cross product worker-local over the
// opaque encodings and streams the concatenations back.
func (c *Coordinator) Cartesian(op string, left [][][]byte, right [][]byte) (_ [][][]byte, err error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("netexec: coordinator is closed")
	}
	xfer := c.xferSeq.Add(1)
	span := c.obs.BeginSpan(nil, "net:"+op, engine.SpanNet)
	ops := &opCounters{}
	var attempts sync.WaitGroup
	defer func() {
		attempts.Wait()
		c.dropXfer(xfer)
		span.Attr(engine.AttrNetBytesSent, ops.sent.Load())
		span.Attr(engine.AttrNetBytesRecv, ops.recvd.Load())
		span.Attr(engine.AttrNetRetries, ops.retries.Load())
		span.Attr(engine.AttrNetRedispatches, ops.stragglers.Load())
		span.Attr(engine.AttrNetRecoveries, ops.recovered.Load())
		span.End()
	}()

	out := make([][][]byte, len(left))
	errs := make([]error, len(left))
	tt := &taskTimes{}
	var wg sync.WaitGroup
	for p := range left {
		if len(left[p]) == 0 || len(right) == 0 {
			continue // empty side: the product is empty, no traffic needed
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out[p], errs[p] = c.runTask(p, tt, ops, &attempts, func(slotID int) ([][]byte, error) {
				var recs [][]byte
				err := c.withRetry(c.slots[slotID], ops, func(r *rpc) error {
					if err := r.putBucket(xfer, uint32(p), 0, left[p]); err != nil {
						return err
					}
					if err := r.putBucket(xfer, uint32(p), 1, right); err != nil {
						return err
					}
					if err := r.drainAcks(); err != nil {
						return err
					}
					got, err := r.exec(xfer, uint32(p), "cartesian")
					if err != nil {
						return err
					}
					recs = got
					return nil
				})
				return recs, err
			})
		}(p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// dropXfer releases the transfer's state on every live worker, best effort.
// It runs on success and on every error path, so aborted exchanges leave
// the worker stores empty.
func (c *Coordinator) dropXfer(xfer uint32) {
	for _, s := range c.slots {
		s.mu.Lock()
		dead := s.dead
		s.mu.Unlock()
		if dead {
			continue
		}
		conn, gen, err := c.checkout(s)
		if err != nil {
			continue
		}
		r := &rpc{conn: conn, timeout: c.cfg.RPCTimeout, window: c.cfg.SendWindow}
		if err := r.drop(xfer); err != nil {
			conn.Close()
			continue
		}
		c.bytesSent.Add(r.sent)
		c.bytesRecv.Add(r.recvd)
		c.checkin(s, conn, gen)
	}
}

// WorkerStats asks worker slot id for its store footprint (transfer count,
// record count) — test hook proving exchanges clean up after themselves.
func (c *Coordinator) WorkerStats(id int) (xfers, records uint64, err error) {
	err = c.withRetry(c.slots[id], nil, func(r *rpc) error {
		xfers, records, err = r.stats()
		return err
	})
	return xfers, records, err
}

// KillWorker forcibly kills a spawned worker's process — test hook for
// death-recovery scenarios.
func (c *Coordinator) KillWorker(id int) error {
	s := c.slots[id]
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("netexec: slot %d has no spawned process", id)
	}
	return cmd.Process.Kill()
}

// Close shuts the backend down: pooled connections close, spawned workers
// get their stdin watchdog pipe closed (and are killed if they outstay a
// grace period). Idempotent.
func (c *Coordinator) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, s := range c.slots {
		s.mu.Lock()
		for _, conn := range s.conns {
			conn.Close()
		}
		s.conns = nil
		stdin, cmd, waitCh := s.stdin, s.cmd, s.waitCh
		s.mu.Unlock()
		if stdin != nil {
			stdin.Close()
		}
		if cmd != nil && waitCh != nil {
			select {
			case <-waitCh:
			case <-time.After(5 * time.Second):
				cmd.Process.Kill()
				<-waitCh
			}
		}
	}
	return nil
}
