package netexec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bigdansing/internal/engine"
)

// The cross-backend equivalence property: any plan the engine can run must
// produce element-for-element identical results on the in-process backend
// and on the networked backend, for every worker count — including the
// values that break naive encodings (NaN payloads, negative zero) and the
// shapes that break naive exchanges (empty partitions, empty datasets).

func newNetCtx(t *testing.T, workers int) *engine.Context {
	t.Helper()
	ctx, err := engine.NewContext(engine.Config{Parallelism: 4, Backend: engine.BackendNet, NetWorkers: workers})
	if err != nil {
		t.Fatalf("net context (%d workers): %v", workers, err)
	}
	t.Cleanup(func() { ctx.Close() })
	return ctx
}

// genPairs builds a deterministic mix of string keys and adversarial
// float64 values: NaN, -0, +0, both infinities and ordinary values.
func genPairs(seed int64, n int) []engine.Pair[string, float64] {
	r := rand.New(rand.NewSource(seed))
	specials := []float64{
		math.NaN(),
		math.Copysign(0, -1),
		0,
		math.Inf(1),
		math.Inf(-1),
	}
	out := make([]engine.Pair[string, float64], n)
	for i := range out {
		v := r.NormFloat64() * 1000
		if r.Intn(4) == 0 {
			v = specials[r.Intn(len(specials))]
		}
		out[i] = engine.KV(fmt.Sprintf("k%02d", r.Intn(17)), v)
	}
	return out
}

// bitsEqual compares float64s by bit pattern so NaN == NaN and -0 != +0.
func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func groupsEqual(t *testing.T, label string, a, b []engine.Pair[string, []float64]) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: group count %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("%s: group %d key %q vs %q", label, i, a[i].Key, b[i].Key)
		}
		if len(a[i].Value) != len(b[i].Value) {
			t.Fatalf("%s: group %q size %d vs %d", label, a[i].Key, len(a[i].Value), len(b[i].Value))
		}
		for j := range a[i].Value {
			if !bitsEqual(a[i].Value[j], b[i].Value[j]) {
				t.Fatalf("%s: group %q value %d: %x vs %x", label, a[i].Key, j,
					math.Float64bits(a[i].Value[j]), math.Float64bits(b[i].Value[j]))
			}
		}
	}
}

// TestGroupByKeyMatchesLocal shuffles adversarial pairs through 1..5 worker
// processes and requires byte-identical grouping versus the in-process
// backend, including over more partitions than records (empty partitions)
// and the empty dataset.
func TestGroupByKeyMatchesLocal(t *testing.T) {
	for _, n := range []int{0, 3, 500} {
		data := genPairs(42, n)
		local := engine.New(4)
		want, err := engine.GroupByKey(engine.Parallelize(local, data, 8)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		for workers := 1; workers <= 5; workers++ {
			t.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(t *testing.T) {
				ctx := newNetCtx(t, workers)
				got, err := engine.GroupByKey(engine.Parallelize(ctx, data, 8)).Collect()
				if err != nil {
					t.Fatal(err)
				}
				groupsEqual(t, "groupByKey", want, got)
			})
		}
	}
}

// TestSortByMatchesLocal runs the sample-sort (a RangePartitionBy exchange
// plus local sorts) on both backends.
func TestSortByMatchesLocal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := make([]int, 4000)
	for i := range data {
		data[i] = r.Intn(1 << 20)
	}
	less := func(a, b int) bool { return a < b }
	local := engine.New(4)
	want, err := engine.SortBy(engine.Parallelize(local, data, 6), less, 6).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 5} {
		ctx := newNetCtx(t, workers)
		got, err := engine.SortBy(engine.Parallelize(ctx, data, 6), less, 6).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: sorted output differs", workers)
		}
	}
}

// TestReduceByKeyMatchesLocal is the word-count shape of Section 5.2.
func TestReduceByKeyMatchesLocal(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	words := make([]engine.Pair[string, int], 3000)
	for i := range words {
		words[i] = engine.KV(fmt.Sprintf("w%03d", r.Intn(200)), 1)
	}
	local := engine.New(4)
	want, err := engine.ReduceByKey(engine.Parallelize(local, words, 8),
		func(a, b int) int { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ctx := newNetCtx(t, 3)
	got, err := engine.ReduceByKey(engine.Parallelize(ctx, words, 8),
		func(a, b int) int { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("reduceByKey output differs between backends")
	}
}

// TestCartesianMatchesLocal exercises the worker-local cross-product
// expansion (EXEC "cartesian" over opaque encodings), including an empty
// side.
func TestCartesianMatchesLocal(t *testing.T) {
	left := []int{1, 2, 3, 5, 8, 13, 21}
	right := []string{"a", "bb", "", "dddd"}
	for _, rs := range [][]string{right, nil} {
		local := engine.New(4)
		want, err := engine.Cartesian(
			engine.Parallelize(local, left, 3),
			engine.Parallelize(local, rs, 2)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		ctx := newNetCtx(t, 2)
		got, err := engine.Cartesian(
			engine.Parallelize(ctx, left, 3),
			engine.Parallelize(ctx, rs, 2)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cartesian output differs between backends (right=%v)", rs)
		}
	}
}

// TestDistinctMatchesLocal covers the keyed-dedup composition.
func TestDistinctMatchesLocal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := make([]string, 900)
	for i := range data {
		data[i] = fmt.Sprintf("v%02d", r.Intn(40))
	}
	key := func(s string) string { return s }
	local := engine.New(4)
	want, err := engine.Distinct(engine.Parallelize(local, data, 8), key).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ctx := newNetCtx(t, 4)
	got, err := engine.Distinct(engine.Parallelize(ctx, data, 8), key).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("distinct output differs between backends")
	}
}

// TestNetStatsCountTraffic checks the Observer plumbing: a net-backed
// shuffle must report socket bytes and dials through the context's Stats.
func TestNetStatsCountTraffic(t *testing.T) {
	ctx := newNetCtx(t, 2)
	_, err := engine.GroupByKey(engine.Parallelize(ctx, genPairs(5, 300), 6)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	snap := ctx.Stats().Snapshot()
	if snap.NetBytesSent == 0 || snap.NetBytesRecv == 0 {
		t.Errorf("net bytes not counted: sent=%d recv=%d", snap.NetBytesSent, snap.NetBytesRecv)
	}
	if snap.NetDials == 0 {
		t.Error("net dials not counted")
	}
}
