package netexec

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes into the frame reader. The contract
// under fuzz: corrupt headers, truncated frames and bad checksums must
// return errors — never panic, never over-allocate (the length bound), and
// an accepted frame must survive re-encoding byte for byte.
func FuzzReadFrame(f *testing.F) {
	f.Add(appendFrame(nil, frame{Type: msgHello}))
	f.Add(appendFrame(nil, frame{Type: msgPut, Flags: flagBegin | flagEnd, Xfer: 9, A: 2, B: 4,
		Payload: appendRecord(nil, []byte("rec"))}))
	f.Add(appendFrame(nil, frame{Type: msgOK, B: 3, Payload: []byte{1, 2, 3}}))
	f.Add([]byte("garbage that is not a frame at all"))
	f.Add([]byte{0xBD, 0x5A})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, _, err := readFrame(r, nil)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		consumed := len(data) - r.Len()
		re := appendFrame(nil, fr)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("accepted frame does not re-encode to its input")
		}
	})
}

// FuzzFrameRoundTrip builds a frame from fuzzed fields and requires an
// exact decode of what was encoded.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint32(0), uint32(0), uint32(0), []byte(nil))
	f.Add(uint8(2), uint8(3), uint32(77), uint32(5), uint32(6), []byte("payload"))
	f.Add(uint8(11), uint8(255), uint32(1<<31), uint32(1<<20), uint32(9), bytes.Repeat([]byte{0}, 300))

	f.Fuzz(func(t *testing.T, ty, flags uint8, xfer, a, b uint32, payload []byte) {
		mt := msgType(ty%uint8(msgStats)) + 1 // keep the type in the valid range
		want := frame{Type: mt, Flags: flags, Xfer: xfer, A: a, B: b, Payload: payload}
		buf := appendFrame(nil, want)
		got, _, err := readFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Xfer != want.Xfer ||
			got.A != want.A || got.B != want.B || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatal("round trip mismatch")
		}
		if _, _, err := readFrame(bytes.NewReader(buf[:len(buf)-1]), nil); err == nil && len(payload) > 0 {
			t.Fatal("truncated frame accepted")
		}
	})
}

// FuzzSplitRecords drives the record packer's parse side: arbitrary
// payloads must parse or error (no panics, no overruns), and a successful
// parse must re-pack to the identical payload.
func FuzzSplitRecords(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(appendRecord(appendRecord(nil, []byte("a")), []byte("bc")))
	f.Add(appendRecord(nil, bytes.Repeat([]byte{9}, 100)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, payload []byte) {
		recs, err := splitRecords(payload, true)
		if err != nil {
			return
		}
		var re []byte
		for _, r := range recs {
			re = appendRecord(re, r)
		}
		if !bytes.Equal(re, payload) {
			t.Fatal("records do not re-pack to the input payload")
		}
	})
}

// TestFrameReaderNeverBlocksOnShortInput complements the fuzzers with an
// exhaustive prefix sweep over one real frame (cheap enough to run always).
func TestFrameReaderNeverBlocksOnShortInput(t *testing.T) {
	full := appendFrame(nil, frame{Type: msgData, Xfer: 3, A: 1, B: 2,
		Payload: appendRecord(nil, bytes.Repeat([]byte{5}, 64))})
	for cut := 0; cut <= len(full); cut++ {
		fr, _, err := readFrame(bytes.NewReader(full[:cut]), nil)
		if cut < len(full) {
			if err == nil {
				t.Fatalf("prefix %d accepted", cut)
			}
			if cut == 0 && err != io.EOF {
				t.Fatalf("empty input should be clean EOF, got %v", err)
			}
		} else if err != nil || !bytes.Equal(fr.Payload, full[headerSize:]) {
			t.Fatalf("full frame rejected: %v", err)
		}
	}
}
