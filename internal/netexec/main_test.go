package netexec

import (
	"os"
	"testing"
)

// TestMain routes re-executions of this test binary into WorkerMain: the
// coordinator spawns its workers by running its own executable with the
// worker env hook set, so the hook must be checked before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}
