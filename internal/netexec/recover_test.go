package netexec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"bigdansing/internal/engine"
)

// TestWorkerDeathRecovery kills a worker between exchanges and requires the
// next exchange to succeed by respawning the slot and re-placing its
// partitions from the coordinator's lineage.
func TestWorkerDeathRecovery(t *testing.T) {
	ctx := newNetCtx(t, 2)
	coord := ctx.Exchange().(*Coordinator)

	words := make([]engine.Pair[string, int], 400)
	for i := range words {
		words[i] = engine.KV(fmt.Sprintf("w%02d", i%37), 1)
	}
	sum := func(a, b int) int { return a + b }
	want, err := engine.ReduceByKey(engine.Parallelize(ctx, words, 6), sum).Collect()
	if err != nil {
		t.Fatal(err)
	}

	if err := coord.KillWorker(0); err != nil {
		t.Fatal(err)
	}
	// Give the exit watcher a moment to observe the death; recovery must
	// work either way (a dead-but-unnoticed worker surfaces as an RPC error
	// that the retry path turns into a respawn).
	time.Sleep(50 * time.Millisecond)

	got, err := engine.ReduceByKey(engine.Parallelize(ctx, words, 6), sum).Collect()
	if err != nil {
		t.Fatalf("exchange after worker death: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("post-recovery output differs")
	}
	if c := coord.Counters(); c.Recoveries == 0 {
		t.Errorf("expected a recorded recovery, counters = %+v", c)
	}
	if ctx.Stats().Snapshot().NetRecoveries == 0 {
		t.Error("recovery not visible in engine stats")
	}
}

// trapVal is a test type whose codec panics while decoding a marked value —
// the way to drive an operator panic into the middle of a networked
// exchange (the decode stage runs after the bytes came back from the
// workers).
type trapVal struct{ v int }

func init() {
	engine.RegisterCodec(engine.Codec[trapVal]{
		Append: func(buf []byte, t trapVal) []byte { return append(buf, byte(t.v)) },
		Decode: func(buf []byte) (trapVal, int, error) {
			if len(buf) == 0 {
				return trapVal{}, 0, fmt.Errorf("empty")
			}
			if buf[0] == 13 {
				panic("trapVal: decoding the cursed value")
			}
			return trapVal{v: int(buf[0])}, 1, nil
		},
	})
}

// TestPanicHygieneOnNetBackend: a panic inside a stage of a networked
// exchange must surface as an error (not a crash), the workers' stores must
// come back empty (the transfer is dropped on the error path, so no
// sockets or buffers leak), and the same context must remain usable.
func TestPanicHygieneOnNetBackend(t *testing.T) {
	ctx := newNetCtx(t, 2)
	coord := ctx.Exchange().(*Coordinator)

	data := []engine.Pair[int, trapVal]{
		engine.KV(1, trapVal{v: 1}),
		engine.KV(2, trapVal{v: 13}), // decode panics on this one
		engine.KV(3, trapVal{v: 3}),
	}
	_, err := engine.GroupByKey(engine.Parallelize(ctx, data, 2)).Collect()
	if err == nil {
		t.Fatal("expected the decode panic to surface as an error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error should attribute the panic, got: %v", err)
	}

	// The aborted transfer must not linger on any worker.
	for id := 0; id < coord.Workers(); id++ {
		xfers, recs, serr := coord.WorkerStats(id)
		if serr != nil {
			t.Fatalf("worker %d stats after abort: %v", id, serr)
		}
		if xfers != 0 || recs != 0 {
			t.Errorf("worker %d retains %d transfers / %d records after aborted exchange", id, xfers, recs)
		}
	}

	// The context (and its sockets) must still work.
	clean := []engine.Pair[int, trapVal]{engine.KV(1, trapVal{v: 1}), engine.KV(1, trapVal{v: 2})}
	got, err := engine.GroupByKey(engine.Parallelize(ctx, clean, 2)).Collect()
	if err != nil {
		t.Fatalf("exchange after aborted exchange: %v", err)
	}
	if len(got) != 1 || len(got[0].Value) != 2 {
		t.Fatalf("unexpected post-abort result: %+v", got)
	}
}

// TestExchangeCleansUpAfterSuccess: successful exchanges must also drop
// their transfers — the worker store is per-exchange scratch space, not a
// cache.
func TestExchangeCleansUpAfterSuccess(t *testing.T) {
	ctx := newNetCtx(t, 2)
	coord := ctx.Exchange().(*Coordinator)
	_, err := engine.GroupByKey(engine.Parallelize(ctx, genPairs(9, 200), 4)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < coord.Workers(); id++ {
		xfers, recs, serr := coord.WorkerStats(id)
		if serr != nil {
			t.Fatal(serr)
		}
		if xfers != 0 || recs != 0 {
			t.Errorf("worker %d retains %d transfers / %d records after successful exchange", id, xfers, recs)
		}
	}
}

// TestCloseIsIdempotent double-closes a context and re-closes the
// coordinator directly.
func TestCloseIsIdempotent(t *testing.T) {
	ctx, err := engine.NewContext(engine.Config{Parallelism: 2, Backend: engine.BackendNet, NetWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	coord := ctx.Exchange().(*Coordinator)
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Shuffle("x", nil, 1); err == nil {
		t.Error("shuffle on a closed coordinator should error")
	}
}
