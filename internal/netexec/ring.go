package netexec

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Partition placement uses consistent hashing over worker *slots*, not live
// processes: slot i keeps its ring positions forever, and a worker respawned
// to replace a dead one takes over its slot — so recovery re-places exactly
// the partitions the dead worker owned and everything else stays put. Each
// slot projects vnodesPerSlot virtual nodes onto the ring (FNV-64 of a
// deterministic label) to smooth the distribution; a destination partition
// hashes to a point and is owned by the first vnode clockwise. The layout
// depends only on (slot count, partition id): every run of a given
// configuration places partitions identically, which the cross-backend
// equivalence and chaos tests rely on.
const vnodesPerSlot = 64

// ring maps destination partitions to worker slots.
type ring struct {
	points []ringPoint // sorted by hash
	slots  int
}

type ringPoint struct {
	hash uint64
	slot int
}

func newRing(slots int) *ring {
	r := &ring{slots: slots, points: make([]ringPoint, 0, slots*vnodesPerSlot)}
	for s := 0; s < slots; s++ {
		for v := 0; v < vnodesPerSlot; v++ {
			r.points = append(r.points, ringPoint{hash: fnvHash(fmt.Sprintf("slot-%d-vnode-%d", s, v)), slot: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].slot < r.points[j].slot
	})
	return r
}

// owner returns the slot owning destination partition dst.
func (r *ring) owner(dst int) int {
	h := fnvHash(fmt.Sprintf("part-%d", dst))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].slot
}

// candidates returns all slots ordered by ring distance from dst's point —
// the preference order for placing dst's work. The owner is first; retries,
// straggler backups and death recovery walk down the list.
func (r *ring) candidates(dst int) []int {
	h := fnvHash(fmt.Sprintf("part-%d", dst))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.slots)
	seen := make(map[int]bool, r.slots)
	for i := 0; i < len(r.points) && len(out) < r.slots; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.slot] {
			seen[p.slot] = true
			out = append(out, p.slot)
		}
	}
	return out
}

// fnvHash hashes a ring label: FNV-64a finalized with the splitmix64 mixer.
// Raw FNV of short sequential labels ("part-0", "part-1", ...) clusters in
// the high bits — which is exactly what a ring ordered by full 64-bit value
// keys on — so without the finalizer whole slots end up owning nothing.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
