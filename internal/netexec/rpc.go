package netexec

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// rpc drives one RPC sequence over an exclusively-held connection. Every
// frame read or write carries a fresh deadline of the configured timeout,
// so a hung worker turns into an error the retry machinery handles rather
// than a stuck coordinator. sent/recvd account the socket traffic.
type rpc struct {
	conn    net.Conn
	timeout time.Duration
	window  int

	scratch []byte // write assembly buffer, reused across frames
	rbuf    []byte // read payload buffer, reused across frames
	unacked int    // PUT frames in flight, bounded by window

	sent, recvd int64
}

func (r *rpc) write(f frame) error {
	if err := r.conn.SetWriteDeadline(time.Now().Add(r.timeout)); err != nil {
		return err
	}
	var err error
	r.scratch, err = writeFrame(r.conn, f, r.scratch)
	if err != nil {
		return fmt.Errorf("netexec: write %d frame: %w", f.Type, err)
	}
	r.sent += int64(headerSize + len(f.Payload))
	return nil
}

func (r *rpc) read() (frame, error) {
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return frame{}, err
	}
	f, b, err := readFrame(r.conn, r.rbuf)
	r.rbuf = b
	if err != nil {
		return frame{}, err
	}
	r.recvd += int64(headerSize + len(f.Payload))
	return f, nil
}

// readAck consumes one ACK credit.
func (r *rpc) readAck() error {
	f, err := r.read()
	if err != nil {
		return err
	}
	if f.Type != msgAck {
		return fmt.Errorf("netexec: expected ack, got message type %d", f.Type)
	}
	r.unacked--
	return nil
}

// sendWindowed sends one PUT frame under the credit window: when the
// unacked count reaches the window, it blocks reading credits first.
func (r *rpc) sendWindowed(f frame) error {
	for r.unacked >= r.window {
		if err := r.readAck(); err != nil {
			return err
		}
	}
	if err := r.write(f); err != nil {
		return err
	}
	r.unacked++
	return nil
}

// drainAcks consumes all outstanding PUT credits; callers must drain before
// issuing a request expecting a different response type.
func (r *rpc) drainAcks() error {
	for r.unacked > 0 {
		if err := r.readAck(); err != nil {
			return err
		}
	}
	return nil
}

// putBucket streams recs into worker bucket (xfer, dst, src) as PUT frames
// of ~frameTarget payload. The first frame carries flagBegin (resetting the
// bucket, which makes replays idempotent), the last flagEnd.
func (r *rpc) putBucket(xfer, dst, src uint32, recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	payload := make([]byte, 0, frameTarget+4096)
	flags := uint8(flagBegin)
	var seq uint32
	flush := func(last bool) error {
		f := flags
		if last {
			f |= flagEnd
		}
		err := r.sendWindowed(frame{Type: msgPut, Flags: f, Xfer: xfer, A: dst, B: src, Payload: payload})
		flags = 0
		seq++
		payload = payload[:0]
		return err
	}
	for i, rec := range recs {
		payload = appendRecord(payload, rec)
		if len(payload) >= frameTarget && i != len(recs)-1 {
			if err := flush(false); err != nil {
				return err
			}
		}
	}
	return flush(true)
}

// readStream collects a msgData stream terminated by msgOK and verifies the
// count the worker reports against what arrived.
func (r *rpc) readStream(what string) ([][]byte, error) {
	var out [][]byte
	for {
		f, err := r.read()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case msgData:
			recs, err := splitRecords(f.Payload, true)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		case msgOK:
			if uint32(len(out)) != f.B {
				return nil, fmt.Errorf("netexec: %s returned %d records, worker sent %d", what, len(out), f.B)
			}
			return out, nil
		case msgErr:
			return nil, fmt.Errorf("netexec: %s: worker error: %s", what, f.Payload)
		default:
			return nil, fmt.Errorf("netexec: %s: unexpected message type %d", what, f.Type)
		}
	}
}

// fetch retrieves the gathered records of (xfer, dst) in source order.
func (r *rpc) fetch(xfer, dst uint32) ([][]byte, error) {
	if err := r.write(frame{Type: msgFetch, Xfer: xfer, A: dst}); err != nil {
		return nil, err
	}
	return r.readStream("fetch")
}

// exec runs the named worker-local task over (xfer, dst) and retrieves the
// result stream.
func (r *rpc) exec(xfer, dst uint32, task string) ([][]byte, error) {
	if err := r.write(frame{Type: msgExec, Xfer: xfer, A: dst, Payload: []byte(task)}); err != nil {
		return nil, err
	}
	return r.readStream("exec " + task)
}

// expectOK reads one frame and requires msgOK, returning its payload copy.
func (r *rpc) expectOK(what string) ([]byte, error) {
	f, err := r.read()
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgOK:
		return append([]byte(nil), f.Payload...), nil
	case msgErr:
		return nil, fmt.Errorf("netexec: %s: worker error: %s", what, f.Payload)
	default:
		return nil, fmt.Errorf("netexec: %s: unexpected message type %d", what, f.Type)
	}
}

// ping round-trips a liveness probe.
func (r *rpc) ping() error {
	if err := r.write(frame{Type: msgPing}); err != nil {
		return err
	}
	_, err := r.expectOK("ping")
	return err
}

// drop releases all worker state of a transfer.
func (r *rpc) drop(xfer uint32) error {
	if err := r.write(frame{Type: msgDrop, Xfer: xfer}); err != nil {
		return err
	}
	_, err := r.expectOK("drop")
	return err
}

// stats fetches the worker's store footprint.
func (r *rpc) stats() (xfers, records uint64, err error) {
	if err := r.write(frame{Type: msgStats}); err != nil {
		return 0, 0, err
	}
	payload, err := r.expectOK("stats")
	if err != nil {
		return 0, 0, err
	}
	var n int
	xfers, n = binary.Uvarint(payload)
	if n <= 0 {
		return 0, 0, fmt.Errorf("netexec: stats: corrupt payload")
	}
	records, _ = binary.Uvarint(payload[n:])
	return xfers, records, nil
}
