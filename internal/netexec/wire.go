// Package netexec is the networked multi-process execution backend: a
// coordinator that spawns (or joins) worker processes and moves the
// engine's codec-encoded partition bytes between them over TCP. It
// implements engine.Exchange, so the engine's wide transformations —
// shuffleByKey, RangePartitionBy, Cartesian — become distributed exchanges
// while narrow fused stages keep running in the process that owns the
// materialized partition.
//
// The design mirrors the paper's Fig. 10 deployment shape (one coordinator,
// N worker nodes) at single-machine scale, with the robustness layer a real
// cluster needs: per-RPC deadlines with exponential backoff, straggler
// detection with re-dispatch (first result wins), and worker-death recovery
// by re-placing the lost worker's partitions from the coordinator's lineage
// of the last materialization.
package netexec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format. Every message is one frame:
//
//	frame  := type:1 flags:1 magic:2 xfer:4le a:4le b:4le len:4le crc:4le payload
//	payload of data-bearing frames := (recLen:uvarint recBytes)*
//
// The CRC32 (IEEE) covers the payload; the header is validated by the magic
// and the length bound. The framing is deliberately the same shape as the
// spill run files of internal/spill (length-prefixed records inside
// CRC-checked frames), so the bytes that spill to disk under a memory
// budget and the bytes that cross the wire under the net backend share one
// on-the-wire idiom. xfer identifies the transfer (one per exchange
// operation), a and b are per-message operands (destination partition,
// source partition, sequence number).
const (
	headerSize = 24
	// maxFramePayload bounds a frame so a corrupt length header cannot
	// trigger an absurd allocation (the same defense as spill's maxFrame).
	maxFramePayload = 64 << 20
	// frameTarget is the payload size data streams accumulate before
	// sealing a frame.
	frameTarget = 256 << 10

	magic0 = 0xBD
	magic1 = 0x5A
)

// msgType enumerates the protocol messages.
type msgType uint8

const (
	msgInvalid msgType = iota
	// msgHello is the handshake both directions open a connection with.
	msgHello
	// msgPut streams records of (xfer, dst=a, src=b) coordinator→worker.
	// flagBegin resets the bucket (so replays after a retry do not
	// duplicate), flagEnd seals it.
	msgPut
	// msgAck credits one received frame back to the sender (b echoes the
	// frame sequence number); the send window counts unacked frames.
	msgAck
	// msgOK completes an RPC (b may carry a record count).
	msgOK
	// msgErr aborts an RPC; the payload is the error text.
	msgErr
	// msgFetch asks for the records of (xfer, dst=a) in source order; the
	// worker answers with msgData frames then msgOK.
	msgFetch
	// msgData streams response records worker→coordinator.
	msgData
	// msgExec runs a named task worker-local over the stored partitions of
	// (xfer, dst=a); the payload is the task name. Response like msgFetch.
	msgExec
	// msgDrop releases all state of xfer.
	msgDrop
	// msgPing is a liveness probe.
	msgPing
	// msgStats asks for the worker's store footprint (payload of the msgOK
	// response: uvarint transfers, uvarint records) — used by hygiene
	// tests to prove aborted exchanges leave nothing behind.
	msgStats
)

const (
	flagBegin = 1 << 0
	flagEnd   = 1 << 1
)

// frame is one decoded protocol frame. Payload aliases the reader's buffer
// and is only valid until the next read.
type frame struct {
	Type    msgType
	Flags   uint8
	Xfer    uint32
	A       uint32
	B       uint32
	Payload []byte
}

// appendFrame serializes a frame into buf (header + payload) and returns
// the extended buffer; the caller writes it with a single Write so
// fault-injection wrappers can count whole frames.
func appendFrame(buf []byte, f frame) []byte {
	var hdr [headerSize]byte
	hdr[0] = byte(f.Type)
	hdr[1] = f.Flags
	hdr[2] = magic0
	hdr[3] = magic1
	binary.LittleEndian.PutUint32(hdr[4:], f.Xfer)
	binary.LittleEndian.PutUint32(hdr[8:], f.A)
	binary.LittleEndian.PutUint32(hdr[12:], f.B)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.ChecksumIEEE(f.Payload))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...)
}

// writeFrame writes one frame with a single Write call.
func writeFrame(w io.Writer, f frame, scratch []byte) ([]byte, error) {
	scratch = appendFrame(scratch[:0], f)
	_, err := w.Write(scratch)
	return scratch, err
}

// readFrame reads and validates one frame. buf is reused for the payload
// when large enough. Corrupt input — bad magic, implausible length, CRC
// mismatch, truncation — returns an error, never panics; the returned
// frame's Payload aliases buf.
func readFrame(r io.Reader, buf []byte) (frame, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return frame{}, buf, io.EOF
		}
		return frame{}, buf, fmt.Errorf("netexec: read frame header: %w", err)
	}
	f, n, err := parseHeader(hdr)
	if err != nil {
		return frame{}, buf, err
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, buf, fmt.Errorf("netexec: read frame payload: %w", err)
	}
	want := binary.LittleEndian.Uint32(hdr[20:])
	if got := crc32.ChecksumIEEE(buf); got != want {
		return frame{}, buf, fmt.Errorf("netexec: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	f.Payload = buf
	return f, buf, nil
}

// parseHeader validates the fixed header and returns the frame shell plus
// its payload length. Split out of readFrame so the fuzzers can drive it on
// raw bytes.
func parseHeader(hdr [headerSize]byte) (frame, uint32, error) {
	if hdr[2] != magic0 || hdr[3] != magic1 {
		return frame{}, 0, fmt.Errorf("netexec: bad frame magic %02x%02x", hdr[2], hdr[3])
	}
	t := msgType(hdr[0])
	if t == msgInvalid || t > msgStats {
		return frame{}, 0, fmt.Errorf("netexec: unknown message type %d", hdr[0])
	}
	n := binary.LittleEndian.Uint32(hdr[16:])
	if n > maxFramePayload {
		return frame{}, 0, fmt.Errorf("netexec: implausible frame length %d", n)
	}
	f := frame{
		Type:  t,
		Flags: hdr[1],
		Xfer:  binary.LittleEndian.Uint32(hdr[4:]),
		A:     binary.LittleEndian.Uint32(hdr[8:]),
		B:     binary.LittleEndian.Uint32(hdr[12:]),
	}
	return f, n, nil
}

// appendRecord appends one length-prefixed record to a data payload.
func appendRecord(buf, rec []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rec)))
	return append(buf, rec...)
}

// splitRecords parses a data payload into its records. The returned slices
// are copies when copyOut is set (needed whenever the records outlive the
// frame buffer); corrupt payloads error, never panic.
func splitRecords(payload []byte, copyOut bool) ([][]byte, error) {
	var out [][]byte
	for len(payload) > 0 {
		n, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("netexec: corrupt record length")
		}
		if n > uint64(len(payload)-sz) {
			return nil, fmt.Errorf("netexec: record overruns frame (%d > %d)", n, len(payload)-sz)
		}
		rec := payload[sz : sz+int(n)]
		if copyOut {
			rec = append([]byte(nil), rec...)
		}
		out = append(out, rec)
		payload = payload[sz+int(n):]
	}
	return out, nil
}
