package netexec

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestFrameRoundTripStream(t *testing.T) {
	frames := []frame{
		{Type: msgHello},
		{Type: msgPut, Flags: flagBegin | flagEnd, Xfer: 7, A: 3, B: 1, Payload: appendRecord(appendRecord(nil, []byte("aa")), []byte{})},
		{Type: msgData, Xfer: 1<<31 + 5, A: 0xFFFFFFFF, B: 42, Payload: bytes.Repeat([]byte{0xAB}, 3000)},
		{Type: msgOK, B: 9},
	}
	var buf bytes.Buffer
	var scratch []byte
	var err error
	for _, f := range frames {
		if scratch, err = writeFrame(&buf, f, scratch); err != nil {
			t.Fatal(err)
		}
	}
	var rbuf []byte
	for i, want := range frames {
		var got frame
		got, rbuf, err = readFrame(&buf, rbuf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Xfer != want.Xfer ||
			got.A != want.A || got.B != want.B || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round trip mismatch", i)
		}
	}
	if _, _, err := readFrame(&buf, rbuf); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	good := appendFrame(nil, frame{Type: msgData, Xfer: 1, Payload: []byte("hello world")})

	flip := func(mutate func(b []byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, _, err := readFrame(bytes.NewReader(b), nil)
		return err
	}

	if err := flip(func(b []byte) { b[2] = 0x00 }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := flip(func(b []byte) { b[0] = 0xEE }); err == nil {
		t.Error("unknown message type accepted")
	}
	if err := flip(func(b []byte) { b[len(b)-1] ^= 0x01 }); err == nil {
		t.Error("corrupted payload passed the checksum")
	}
	if err := flip(func(b []byte) { binary.LittleEndian.PutUint32(b[16:], maxFramePayload+1) }); err == nil {
		t.Error("implausible length accepted")
	}
	// Truncations at every boundary must error (or EOF at offset 0), never
	// panic or block.
	for cut := 0; cut < len(good); cut++ {
		_, _, err := readFrame(bytes.NewReader(good[:cut]), nil)
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSplitRecordsRoundTrip(t *testing.T) {
	recs := [][]byte{[]byte("a"), {}, bytes.Repeat([]byte{7}, 500), []byte("zz")}
	var payload []byte
	for _, r := range recs {
		payload = appendRecord(payload, r)
	}
	got, err := splitRecords(payload, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// A record length overrunning the payload must error.
	if _, err := splitRecords(binary.AppendUvarint(nil, 10), false); err == nil {
		t.Error("overrunning record accepted")
	}
}

func TestRingDeterminismAndCoverage(t *testing.T) {
	r1 := newRing(4)
	r2 := newRing(4)
	seen := make(map[int]int)
	for dst := 0; dst < 256; dst++ {
		o := r1.owner(dst)
		if o != r2.owner(dst) {
			t.Fatalf("ring placement not deterministic for dst %d", dst)
		}
		if o < 0 || o >= 4 {
			t.Fatalf("owner %d out of range", o)
		}
		seen[o]++
		cands := r1.candidates(dst)
		if len(cands) != 4 || cands[0] != o {
			t.Fatalf("candidates of %d malformed: %v", dst, cands)
		}
		used := make(map[int]bool)
		for _, c := range cands {
			if used[c] {
				t.Fatalf("candidates of %d repeat a slot: %v", dst, cands)
			}
			used[c] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("with 256 partitions every slot should own some: %v", seen)
	}
}
