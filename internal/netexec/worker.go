package netexec

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Env hooks. WorkerEnv makes any binary that calls MaybeWorker (the
// bigdansing CLI's hidden `worker` subcommand does the equivalent
// explicitly, and the test binaries call it from TestMain) act as a netexec
// worker: it listens on the env value ("auto" for an ephemeral localhost
// port), prints "NETEXEC_READY <addr>" on stdout so the spawner can learn
// the port, and serves until stdin closes — the stdin pipe doubles as a
// coordinator-death watchdog, so orphaned workers reap themselves.
const (
	WorkerEnv = "BIGDANSING_NETEXEC_WORKER"
	// ChaosDelayEnv makes the worker sleep this many milliseconds before
	// answering each fetch/exec — the chaos harness uses it (via
	// Config.SlotEnv) to manufacture a deterministic straggler.
	ChaosDelayEnv = "BIGDANSING_NETEXEC_CHAOS_DELAY_MS"
	// ChaosDieEnv makes the worker exit(3) after receiving this many
	// frames — the chaos harness uses it to kill a worker mid-shuffle.
	ChaosDieEnv = "BIGDANSING_NETEXEC_CHAOS_DIE_AFTER"
)

// MaybeWorker turns the current process into a netexec worker when the
// worker env hook is set, never returning in that case. Call it first thing
// in main() or TestMain: the coordinator re-executes its own binary to
// spawn workers, and this is the hook those child processes land in.
func MaybeWorker() {
	addr := os.Getenv(WorkerEnv)
	if addr == "" {
		return
	}
	if err := WorkerMain(addr, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netexec worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain runs the worker server: listen, announce readiness on out,
// and serve connections. Spawned workers (the env hook is set) also watch
// stdin and exit on EOF — the coordinator holds the pipe, so its death
// reaps them; standalone workers (`bigdansing worker`, often daemonized
// with stdin on /dev/null) serve until killed. addr "auto" picks an
// ephemeral localhost port.
func WorkerMain(addr string, out io.Writer) error {
	if addr == "auto" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netexec worker: listen %s: %w", addr, err)
	}
	defer ln.Close()
	fmt.Fprintf(out, "NETEXEC_READY %s\n", ln.Addr())

	ws := newWorkerServer()
	if os.Getenv(WorkerEnv) != "" {
		go func() {
			// Watchdog: the coordinator holds our stdin pipe open; EOF means
			// it is gone (or told us to stop) and we must not linger.
			io.Copy(io.Discard, os.Stdin)
			ln.Close()
			os.Exit(0)
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil
		}
		go ws.serve(conn)
	}
}

// workerServer holds one worker's partition store and chaos knobs.
type workerServer struct {
	mu sync.Mutex
	// xfers[xfer][dst][src] is the record bucket of (transfer, destination
	// partition, source partition). Fetch streams dst's buckets in
	// ascending src order, preserving the engine's gather order.
	xfers map[uint32]map[uint32]map[uint32][][]byte

	frames     atomic.Int64 // received frames, for the die-after chaos knob
	chaosDelay time.Duration
	chaosDie   int64
}

func newWorkerServer() *workerServer {
	ws := &workerServer{xfers: make(map[uint32]map[uint32]map[uint32][][]byte)}
	if v := os.Getenv(ChaosDelayEnv); v != "" {
		if ms, err := strconv.Atoi(v); err == nil {
			ws.chaosDelay = time.Duration(ms) * time.Millisecond
		}
	}
	if v := os.Getenv(ChaosDieEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			ws.chaosDie = int64(n)
		}
	}
	return ws
}

// serve handles one connection. The protocol on a connection is strictly
// sequential — the coordinator checks a connection out of its pool for the
// duration of an RPC — so the loop reads one frame, acts, and replies.
func (ws *workerServer) serve(conn net.Conn) {
	defer conn.Close()
	var rbuf, wbuf []byte
	for {
		f, b, err := readFrame(conn, rbuf)
		rbuf = b
		if err != nil {
			return // EOF or a corrupt/failed peer; drop the connection
		}
		if n := ws.frames.Add(1); ws.chaosDie > 0 && n >= ws.chaosDie {
			os.Exit(3)
		}
		switch f.Type {
		case msgHello, msgPing:
			wbuf, err = writeFrame(conn, frame{Type: msgOK, Xfer: f.Xfer}, wbuf)
		case msgPut:
			ws.put(f)
			wbuf, err = writeFrame(conn, frame{Type: msgAck, Xfer: f.Xfer, A: f.A, B: f.B}, wbuf)
		case msgFetch:
			wbuf, err = ws.fetch(conn, f, wbuf)
		case msgExec:
			wbuf, err = ws.exec(conn, f, wbuf)
		case msgDrop:
			ws.drop(f.Xfer)
			wbuf, err = writeFrame(conn, frame{Type: msgOK, Xfer: f.Xfer}, wbuf)
		case msgStats:
			wbuf, err = ws.stats(conn, f, wbuf)
		default:
			wbuf, err = writeFrame(conn, frame{Type: msgErr, Xfer: f.Xfer,
				Payload: []byte(fmt.Sprintf("unexpected message type %d", f.Type))}, wbuf)
		}
		if err != nil {
			return
		}
	}
}

// put stores a PUT frame's records into bucket (xfer, dst=A, src=B).
// flagBegin resets the bucket first, which makes task replays after a retry
// idempotent instead of duplicating.
func (ws *workerServer) put(f frame) {
	recs, err := splitRecords(f.Payload, true)
	if err != nil {
		recs = nil // corrupt payload would have failed the CRC; be defensive anyway
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	x := ws.xfers[f.Xfer]
	if x == nil {
		x = make(map[uint32]map[uint32][][]byte)
		ws.xfers[f.Xfer] = x
	}
	d := x[f.A]
	if d == nil {
		d = make(map[uint32][][]byte)
		x[f.A] = d
	}
	if f.Flags&flagBegin != 0 {
		d[f.B] = nil
	}
	d[f.B] = append(d[f.B], recs...)
}

// snapshot returns dst's buckets in ascending source order.
func (ws *workerServer) snapshot(xfer, dst uint32) [][]byte {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	d := ws.xfers[xfer][dst]
	srcs := make([]uint32, 0, len(d))
	for s := range d {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	var out [][]byte
	for _, s := range srcs {
		out = append(out, d[s]...)
	}
	return out
}

// streamRecords sends recs as msgData frames of ~frameTarget payload each,
// then msgOK carrying the record count.
func streamRecords(conn net.Conn, xfer, dst uint32, recs [][]byte, wbuf []byte) ([]byte, error) {
	payload := make([]byte, 0, frameTarget+4096)
	var seq uint32
	var err error
	flush := func() error {
		if len(payload) == 0 {
			return nil
		}
		wbuf, err = writeFrame(conn, frame{Type: msgData, Xfer: xfer, A: dst, B: seq, Payload: payload}, wbuf)
		seq++
		payload = payload[:0]
		return err
	}
	for _, r := range recs {
		payload = appendRecord(payload, r)
		if len(payload) >= frameTarget {
			if err := flush(); err != nil {
				return wbuf, err
			}
		}
	}
	if err := flush(); err != nil {
		return wbuf, err
	}
	return writeFrame(conn, frame{Type: msgOK, Xfer: xfer, A: dst, B: uint32(len(recs))}, wbuf)
}

// fetch streams the stored records of (xfer, dst) back in source order.
func (ws *workerServer) fetch(conn net.Conn, f frame, wbuf []byte) ([]byte, error) {
	if ws.chaosDelay > 0 {
		time.Sleep(ws.chaosDelay)
	}
	return streamRecords(conn, f.Xfer, f.A, ws.snapshot(f.Xfer, f.A), wbuf)
}

// exec runs a named worker-local task over the stored buckets of
// (xfer, dst) and streams the result. The only task today is "cartesian":
// bucket src=0 holds the left partition, src=1 the broadcast right side,
// and the cross product is pure concatenation l||r — valid JoinRow
// encodings under the engine's sequential codecs, no type knowledge needed.
func (ws *workerServer) exec(conn net.Conn, f frame, wbuf []byte) ([]byte, error) {
	if ws.chaosDelay > 0 {
		time.Sleep(ws.chaosDelay)
	}
	task := string(f.Payload)
	if task != "cartesian" {
		return writeFrame(conn, frame{Type: msgErr, Xfer: f.Xfer,
			Payload: []byte("unknown exec task " + task)}, wbuf)
	}
	ws.mu.Lock()
	d := ws.xfers[f.Xfer][f.A]
	left, right := d[0], d[1]
	ws.mu.Unlock()
	out := make([][]byte, 0, len(left)*len(right))
	for _, l := range left {
		for _, r := range right {
			rec := make([]byte, 0, len(l)+len(r))
			rec = append(rec, l...)
			rec = append(rec, r...)
			out = append(out, rec)
		}
	}
	return streamRecords(conn, f.Xfer, f.A, out, wbuf)
}

// drop releases all state of a transfer.
func (ws *workerServer) drop(xfer uint32) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	delete(ws.xfers, xfer)
}

// stats answers with the store footprint: uvarint transfer count, uvarint
// total record count. Hygiene tests use it to prove aborted exchanges left
// nothing behind.
func (ws *workerServer) stats(conn net.Conn, f frame, wbuf []byte) ([]byte, error) {
	ws.mu.Lock()
	nx := len(ws.xfers)
	var nrec uint64
	for _, x := range ws.xfers {
		for _, d := range x {
			for _, b := range d {
				nrec += uint64(len(b))
			}
		}
	}
	ws.mu.Unlock()
	payload := binary.AppendUvarint(nil, uint64(nx))
	payload = binary.AppendUvarint(payload, nrec)
	return writeFrame(conn, frame{Type: msgOK, Xfer: f.Xfer, Payload: payload}, wbuf)
}
