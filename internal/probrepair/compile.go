package probrepair

import (
	"sort"

	"bigdansing/internal/graph"
	"bigdansing/internal/model"
)

// variable is one random variable of the factor graph: an equivalence
// class of cells that equality fixes tie together. Classes are sampled
// jointly (blocked Gibbs) — the intra-class equality factors are then
// satisfied by construction, and a symmetric two-cell tie shows up as a
// flat marginal (which the margin threshold routes to the fallback)
// instead of a mode the sampler happens to be stuck in.
type variable struct {
	cells  []model.Cell  // members, sorted by cell key
	domain []model.Value // candidate values, canonical order
	votes  []float64     // votes[d]: members whose original value is domain[d]
	cooc   []float64     // cooc[d]: summed per-member co-occurrence feature
	consts []float64     // consts[d]: constant-fix votes for domain[d]
	init   int           // start state: the majority original value
	// factors indexes fgraph.factors entries touching this variable.
	factors []int
}

// factor is one non-equality fix compiled as a soft rule-violation
// indicator: an assignment satisfying `left op right` scores +RuleWeight.
type factor struct {
	left       int // variable index
	op         model.Op
	rightIsVar bool
	right      int // variable index when rightIsVar
	rightConst model.Value
}

// fgraph is the compiled factor graph of one component.
type fgraph struct {
	vars     []*variable
	factors  []factor
	cellVar  map[model.CellKey]int // member cell -> variable index
	nFactors int                   // reported factor count (unaries + consts + cross)
}

// cmpValue is model.Compare with a kind tie-break: numerically equal
// cross-kind values (Int 1 vs Float 1.0) would otherwise compare equal and
// leave sort orders — and therefore sampling chains — underdetermined.
func cmpValue(a, b model.Value) int {
	if c := model.Compare(a, b); c != 0 {
		return c
	}
	return int(a.Kind) - int(b.Kind)
}

// compile builds the factor graph of one component. The construction is
// deterministic under any permutation of the fix sets: classes are ordered
// by their smallest cell key, domains canonically, and the factor list is
// sorted before indices are handed out.
func compile(component []model.FixSet, ls *learnedState, maxDomain int) *fgraph {
	// Intern cells and union the ones equality fixes connect — the same
	// class construction as the equivalence-class algorithm, so the
	// fallback's classes and ours coincide.
	type cellInfo struct {
		cell model.Cell
		id   int64
	}
	ids := map[model.CellKey]*cellInfo{}
	uf := graph.NewUnionFind()
	next := int64(0)
	intern := func(c model.Cell) *cellInfo {
		k := c.MapKey()
		if ci, ok := ids[k]; ok {
			return ci
		}
		ci := &cellInfo{cell: c, id: next}
		next++
		ids[k] = ci
		uf.Add(ci.id)
		return ci
	}
	type rawFactor struct {
		left       model.CellKey
		op         model.Op
		rightIsVar bool
		right      model.CellKey
		rightConst model.Value
	}
	constFixes := map[model.CellKey][]model.Value{}
	var raws []rawFactor
	for _, fs := range component {
		for _, c := range fs.Violation.Cells {
			intern(c)
		}
		for _, f := range fs.Fixes {
			l := intern(f.Left)
			if f.Op == model.OpEQ {
				if f.RightIsCell {
					uf.Union(l.id, intern(f.RightCell).id)
				} else {
					k := f.Left.MapKey()
					constFixes[k] = append(constFixes[k], f.RightConst)
				}
				continue
			}
			raw := rawFactor{left: f.Left.MapKey(), op: f.Op}
			if f.RightIsCell {
				intern(f.RightCell)
				raw.rightIsVar = true
				raw.right = f.RightCell.MapKey()
			} else {
				raw.rightConst = f.RightConst
			}
			raws = append(raws, raw)
		}
	}

	// Group into classes, sorted members, sorted class order.
	classMembers := map[int64][]*cellInfo{}
	for _, ci := range ids {
		root := uf.Find(ci.id)
		classMembers[root] = append(classMembers[root], ci)
	}
	roots := make([]int64, 0, len(classMembers))
	for root, members := range classMembers {
		sort.Slice(members, func(i, j int) bool {
			return members[i].cell.MapKey().Less(members[j].cell.MapKey())
		})
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool {
		return classMembers[roots[i]][0].cell.MapKey().Less(classMembers[roots[j]][0].cell.MapKey())
	})

	// Component-level column co-occurrence counts: the domain-pruning pool
	// and the frequency fallback when no global table has been learned.
	type valCount struct {
		v model.Value
		n int
	}
	colCounts := map[int]map[model.ValueKey]*valCount{}
	colMax := map[int]int{}
	for _, ci := range ids {
		col := ci.cell.Col
		m := colCounts[col]
		if m == nil {
			m = map[model.ValueKey]*valCount{}
			colCounts[col] = m
		}
		vk := ci.cell.Value.MapKey()
		vc := m[vk]
		if vc == nil {
			vc = &valCount{v: ci.cell.Value}
			m[vk] = vc
		}
		vc.n++
		if vc.n > colMax[col] {
			colMax[col] = vc.n
		}
	}
	freq := func(col int, v model.Value) float64 {
		if f, ok := ls.freq(col, v); ok {
			return f
		}
		if vc, ok := colCounts[col][v.MapKey()]; ok && colMax[col] > 0 {
			return float64(vc.n) / float64(colMax[col])
		}
		return 0
	}

	// Activity: a lone cell with no constant requirement and no cross
	// factor can never change — it gets no variable (matching the
	// equivalence-class algorithm's skip), but its value still fed the
	// co-occurrence counts above.
	crossTouch := map[int64]bool{}
	for _, raw := range raws {
		crossTouch[uf.Find(ids[raw.left].id)] = true
		if raw.rightIsVar {
			crossTouch[uf.Find(ids[raw.right].id)] = true
		}
	}
	hasConst := func(members []*cellInfo) bool {
		for _, m := range members {
			if len(constFixes[m.cell.MapKey()]) > 0 {
				return true
			}
		}
		return false
	}

	g := &fgraph{cellVar: map[model.CellKey]int{}}
	varOf := map[int64]int{}
	totalConsts := 0
	for _, root := range roots {
		members := classMembers[root]
		withConst := hasConst(members)
		if len(members) == 1 && !withConst && !crossTouch[root] {
			continue
		}
		v := &variable{cells: make([]model.Cell, len(members))}
		for i, m := range members {
			v.cells[i] = m.cell
		}

		// Candidate domain. Constant fixes are hard requirements (CFD
		// patterns, unary DCs): when present the domain is the constant
		// targets alone, exactly as the equivalence-class and sampling
		// algorithms treat them.
		type cand struct {
			v     model.Value
			n     int // ranking count (const votes, or co-occurrence)
			owned bool
		}
		candIdx := map[model.ValueKey]int{}
		var cands []cand
		add := func(val model.Value, n int, owned bool) {
			vk := val.MapKey()
			if i, ok := candIdx[vk]; ok {
				cands[i].n += n
				cands[i].owned = cands[i].owned || owned
				return
			}
			candIdx[vk] = len(cands)
			cands = append(cands, cand{v: val, n: n, owned: owned})
		}
		if withConst {
			for _, m := range members {
				for _, cv := range constFixes[m.cell.MapKey()] {
					add(cv, 1, true)
				}
			}
		} else {
			for _, m := range members {
				add(m.cell.Value, 0, true) // originals are always kept
			}
			for _, m := range members {
				for _, vc := range colCounts[m.cell.Col] {
					add(vc.v, vc.n, false)
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].owned != cands[j].owned {
				return cands[i].owned
			}
			if cands[i].n != cands[j].n {
				return cands[i].n > cands[j].n
			}
			return cmpValue(cands[i].v, cands[j].v) < 0
		})
		if len(cands) > maxDomain {
			cands = cands[:maxDomain]
		}
		v.domain = make([]model.Value, len(cands))
		for i, c := range cands {
			v.domain[i] = c.v
		}
		sort.Slice(v.domain, func(i, j int) bool { return cmpValue(v.domain[i], v.domain[j]) < 0 })

		// Per-value features: minimality votes, co-occurrence, constants.
		v.votes = make([]float64, len(v.domain))
		v.cooc = make([]float64, len(v.domain))
		v.consts = make([]float64, len(v.domain))
		for d, dv := range v.domain {
			for _, m := range members {
				if m.cell.Value.Equal(dv) {
					v.votes[d]++
					v.cooc[d] += 0.5
				}
				v.cooc[d] += 0.5 * freq(m.cell.Col, dv)
				for _, cv := range constFixes[m.cell.MapKey()] {
					if cv.Equal(dv) {
						v.consts[d]++
					}
				}
			}
		}
		for d := range v.domain {
			if v.votes[d] > v.votes[v.init] {
				v.init = d
			}
		}
		for _, m := range members {
			totalConsts += len(constFixes[m.cell.MapKey()])
		}

		varOf[root] = len(g.vars)
		for _, c := range v.cells {
			g.cellVar[c.MapKey()] = len(g.vars)
		}
		g.vars = append(g.vars, v)
	}

	// Cross factors: endpoints remapped to variable indices, then sorted so
	// score summation order (and its floating-point rounding) is stable
	// under fix-set permutation.
	for _, raw := range raws {
		f := factor{left: varOf[uf.Find(ids[raw.left].id)], op: raw.op}
		if raw.rightIsVar {
			f.rightIsVar = true
			f.right = varOf[uf.Find(ids[raw.right].id)]
		} else {
			f.rightConst = raw.rightConst
		}
		g.factors = append(g.factors, f)
	}
	sort.Slice(g.factors, func(i, j int) bool {
		a, b := g.factors[i], g.factors[j]
		if a.left != b.left {
			return a.left < b.left
		}
		if a.op != b.op {
			return a.op < b.op
		}
		if a.rightIsVar != b.rightIsVar {
			return a.rightIsVar
		}
		if a.rightIsVar {
			return a.right < b.right
		}
		return cmpValue(a.rightConst, b.rightConst) < 0
	})
	for fi, f := range g.factors {
		g.vars[f.left].factors = append(g.vars[f.left].factors, fi)
		if f.rightIsVar && f.right != f.left {
			g.vars[f.right].factors = append(g.vars[f.right].factors, fi)
		}
	}
	g.nFactors = len(g.factors) + totalConsts + 2*len(g.vars)
	return g
}
