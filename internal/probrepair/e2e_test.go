package probrepair_test

import (
	"testing"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/datagen"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/probrepair"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
)

func phi1Rule(t *testing.T) *core.Rule {
	t.Helper()
	fd, err := rules.ParseFD("phi1", "zipcode -> city")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fd.Compile(datagen.TaxSchema())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// cleanTax runs a full cleanse of the dirty Tax instance with the given
// repair algorithm and parallelism and returns the repaired relation.
func cleanTax(t *testing.T, tr *datagen.Truth, algo repair.Algorithm, parallelism int) *model.Relation {
	t.Helper()
	cleaner, err := cleanse.NewCleaner(engine.New(4), []*core.Rule{phi1Rule(t)},
		cleanse.WithAlgorithm(algo),
		cleanse.WithParallelRepair(repair.Options{Parallelism: parallelism}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cleaner.Clean(tr.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	return res.Clean
}

// TestProbAccuracyAtLeastEquivalence is the satellite acceptance test: on
// the FD workload with 5% injected errors and a fixed seed, the
// probabilistic algorithm's precision AND recall must be at least the
// equivalence-class algorithm's.
func TestProbAccuracyAtLeastEquivalence(t *testing.T) {
	tr := datagen.TaxA(1500, 0.05, 11)
	eqQ := datagen.Evaluate(tr, cleanTax(t, tr, &repair.EquivalenceClass{}, 4))
	probQ := datagen.Evaluate(tr, cleanTax(t, tr, probrepair.New(11), 4))
	t.Logf("eq:   precision=%.4f recall=%.4f updated=%d", eqQ.Precision, eqQ.Recall, eqQ.Updated)
	t.Logf("prob: precision=%.4f recall=%.4f updated=%d", probQ.Precision, probQ.Recall, probQ.Updated)
	if probQ.Precision < eqQ.Precision {
		t.Errorf("prob precision %.4f < eq precision %.4f", probQ.Precision, eqQ.Precision)
	}
	if probQ.Recall < eqQ.Recall {
		t.Errorf("prob recall %.4f < eq recall %.4f", probQ.Recall, eqQ.Recall)
	}
	if probQ.Recall < 0.5 {
		t.Errorf("prob recall %.4f implausibly low for the FD workload", probQ.Recall)
	}
}

// TestProbByteReproducible pins the determinism contract: a fixed seed
// reproduces the repaired relation cell for cell, run over run and across
// repair parallelism levels (worker scheduling must not leak into results).
func TestProbByteReproducible(t *testing.T) {
	tr := datagen.TaxA(600, 0.08, 5)
	a := cleanTax(t, tr, probrepair.New(5), 4)
	b := cleanTax(t, tr, probrepair.New(5), 4)
	c := cleanTax(t, tr, probrepair.New(5), 1)
	diff := func(x, y *model.Relation, label string) {
		t.Helper()
		if x.Len() != y.Len() {
			t.Fatalf("%s: row counts differ: %d vs %d", label, x.Len(), y.Len())
		}
		idx := y.ByID()
		for i := range x.Tuples {
			xt := &x.Tuples[i]
			yt := &y.Tuples[idx[xt.ID]]
			for col := range xt.Cells {
				if !xt.Cell(col).Equal(yt.Cell(col)) {
					t.Fatalf("%s: cell (%d,%d) differs: %v vs %v",
						label, xt.ID, col, xt.Cell(col), yt.Cell(col))
				}
			}
		}
	}
	diff(a, b, "rerun same seed")
	diff(a, c, "parallelism 4 vs 1")
}

// TestProbZeroSamplesMatchesEquivalenceEndToEnd extends the degradation
// property through the whole cleanse loop: Samples=0 must clean exactly like
// the equivalence-class algorithm.
func TestProbZeroSamplesMatchesEquivalenceEndToEnd(t *testing.T) {
	tr := datagen.TaxA(400, 0.1, 9)
	eq := cleanTax(t, tr, &repair.EquivalenceClass{}, 4)
	degraded := cleanTax(t, tr, &probrepair.Prob{Samples: 0, Seed: 9}, 4)
	idx := degraded.ByID()
	for i := range eq.Tuples {
		et := &eq.Tuples[i]
		dt := &degraded.Tuples[idx[et.ID]]
		for col := range et.Cells {
			if !et.Cell(col).Equal(dt.Cell(col)) {
				t.Fatalf("cell (%d,%d): eq=%v degraded-prob=%v", et.ID, col, et.Cell(col), dt.Cell(col))
			}
		}
	}
}
