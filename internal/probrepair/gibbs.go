package probrepair

import (
	"math"
	"math/rand"
)

// inferStats summarizes one sampling run for the prob:infer span.
type inferStats struct {
	samples  int // recorded sweeps
	accepted int // draws that moved a variable to a new value
}

// run executes seeded blocked Gibbs sampling over the graph: burnIn warm-up
// sweeps, then samples recorded sweeps whose states accumulate into the
// returned per-variable marginal counts. Variables are visited in their
// fixed (deterministic) order, so equal seeds give equal chains.
func (g *fgraph) run(rng *rand.Rand, burnIn, samples int, w weights) ([][]int, inferStats) {
	cur := make([]int, len(g.vars))
	counts := make([][]int, len(g.vars))
	for i, v := range g.vars {
		cur[i] = v.init
		counts[i] = make([]int, len(v.domain))
	}
	var st inferStats
	scores := make([]float64, 0, 16)
	total := burnIn + samples
	for sweep := 0; sweep < total; sweep++ {
		for i, v := range g.vars {
			if len(v.domain) < 2 {
				continue
			}
			scores = scores[:0]
			maxScore := math.Inf(-1)
			for d := range v.domain {
				s := g.score(i, d, cur, w)
				scores = append(scores, s)
				if s > maxScore {
					maxScore = s
				}
			}
			sum := 0.0
			for d := range scores {
				scores[d] = math.Exp(scores[d] - maxScore)
				sum += scores[d]
			}
			pick := rng.Float64() * sum
			next := len(scores) - 1
			for d, sw := range scores {
				if pick < sw {
					next = d
					break
				}
				pick -= sw
			}
			if next != cur[i] {
				st.accepted++
			}
			cur[i] = next
		}
		if sweep >= burnIn {
			st.samples++
			for i := range g.vars {
				counts[i][cur[i]]++
			}
		}
	}
	return counts, st
}

// score is the log-potential of variable i taking domain value d, given the
// current state of every other variable: the unary minimality,
// co-occurrence and constant features plus the rule-violation factors the
// variable participates in.
func (g *fgraph) score(i, d int, cur []int, w weights) float64 {
	v := g.vars[i]
	s := w.min*v.votes[d] + w.cooc*v.cooc[d] + w.cst*v.consts[d]
	if len(v.factors) == 0 {
		return s
	}
	val := v.domain[d]
	for _, fi := range v.factors {
		f := g.factors[fi]
		lv := val
		if f.left != i {
			lv = g.vars[f.left].domain[cur[f.left]]
		}
		rv := f.rightConst
		if f.rightIsVar {
			if f.right == i {
				rv = val
			} else {
				rv = g.vars[f.right].domain[cur[f.right]]
			}
		}
		if f.op.Eval(lv, rv) {
			s += w.rule
		}
	}
	return s
}
