package probrepair

import (
	"math"
	"math/rand"
	"sort"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// Prior weights used until Fit has run (and kept when it finds no clean
// cells to train on).
const (
	defaultMinWeight  = 1.5
	defaultCoocWeight = 1.0
)

// trainTopK is how many frequent per-column values stand in as the
// negative candidates of one training example.
const trainTopK = 8

// learnedState is what Fit produces: the two learned unary weights and the
// global column-frequency tables the co-occurrence feature reads. The rule
// and constant weights stay at their priors — the clean portion of the
// data, by definition, exercises no rule factors, so there is no gradient
// signal for them (DESIGN.md documents this honestly).
type learnedState struct {
	wMin, wCooc float64
	colFreq     []map[model.ValueKey]float64
	topVals     [][]model.Value
	examples    int
	epochs      int
}

// freq returns the learned global frequency of v in col, normalized to
// [0,1] by the column's modal count. ok is false when no table was learned
// for the column (callers then fall back to component-level counts); a
// value absent from an existing table scores 0 — it appears nowhere in the
// data, the strongest possible evidence against it.
func (ls *learnedState) freq(col int, v model.Value) (float64, bool) {
	if ls == nil || col >= len(ls.colFreq) || ls.colFreq[col] == nil {
		return 0, false
	}
	return ls.colFreq[col][v.MapKey()], true
}

// Fit implements repair.Fitter: it learns the minimality and co-occurrence
// weights from the clean portion of the data — the cells no violation or
// candidate fix touches — by SGD on a logistic (softmax) objective: each
// clean cell is a training example whose observed value should out-score
// the column's frequent alternatives. It also builds the global
// column-frequency tables inference uses. Sessions call it once per flush,
// before the repair rounds; the run is deterministic for a fixed Seed.
func (p *Prob) Fit(rel *model.Relation, fixSets []model.FixSet, obs engine.Observer) error {
	if rel == nil || rel.Schema == nil {
		return nil
	}
	if obs == nil {
		obs = engine.Discard
	}
	sp := obs.BeginSpan(nil, "prob:learn", engine.SpanRepair)
	defer sp.End()

	violated := map[model.CellKey]bool{}
	for _, fs := range fixSets {
		for _, c := range fs.Violation.Cells {
			violated[c.MapKey()] = true
		}
		for _, f := range fs.Fixes {
			for _, c := range f.Cells() {
				violated[c.MapKey()] = true
			}
		}
	}

	// Global per-column value counts -> normalized frequency tables and the
	// top-K candidate pools.
	ncols := rel.Schema.Len()
	type valCount struct {
		v model.Value
		n int
	}
	counts := make([]map[model.ValueKey]*valCount, ncols)
	for c := 0; c < ncols; c++ {
		counts[c] = map[model.ValueKey]*valCount{}
	}
	for i := range rel.Tuples {
		t := &rel.Tuples[i]
		for c := 0; c < ncols && c < len(t.Cells); c++ {
			vk := t.Cells[c].MapKey()
			vc := counts[c][vk]
			if vc == nil {
				vc = &valCount{v: t.Cells[c]}
				counts[c][vk] = vc
			}
			vc.n++
		}
	}
	ls := &learnedState{
		wMin:    defaultMinWeight,
		wCooc:   defaultCoocWeight,
		colFreq: make([]map[model.ValueKey]float64, ncols),
		topVals: make([][]model.Value, ncols),
	}
	for c := 0; c < ncols; c++ {
		if len(counts[c]) == 0 {
			continue
		}
		vcs := make([]*valCount, 0, len(counts[c]))
		maxN := 0
		for _, vc := range counts[c] {
			vcs = append(vcs, vc)
			if vc.n > maxN {
				maxN = vc.n
			}
		}
		ls.colFreq[c] = make(map[model.ValueKey]float64, len(vcs))
		for _, vc := range vcs {
			ls.colFreq[c][vc.v.MapKey()] = float64(vc.n) / float64(maxN)
		}
		sort.Slice(vcs, func(i, j int) bool {
			if vcs[i].n != vcs[j].n {
				return vcs[i].n > vcs[j].n
			}
			return cmpValue(vcs[i].v, vcs[j].v) < 0
		})
		if len(vcs) > trainTopK {
			vcs = vcs[:trainTopK]
		}
		ls.topVals[c] = make([]model.Value, len(vcs))
		for i, vc := range vcs {
			ls.topVals[c][i] = vc.v
		}
	}

	// Training examples: the clean cells, deterministically subsampled by
	// stride when there are more than MaxExamples.
	type example struct {
		col int
		v   model.Value
	}
	var examples []example
	for i := range rel.Tuples {
		t := &rel.Tuples[i]
		for c := 0; c < ncols && c < len(t.Cells); c++ {
			if violated[model.CellKey{TupleID: t.ID, Col: c}] {
				continue
			}
			if len(ls.topVals[c]) < 2 {
				continue // a single-valued column carries no ranking signal
			}
			examples = append(examples, example{col: c, v: t.Cells[c]})
		}
	}
	maxExamples := p.MaxExamples
	if maxExamples <= 0 {
		maxExamples = 2000
	}
	if len(examples) > maxExamples {
		step := len(examples) / maxExamples
		strided := make([]example, 0, maxExamples)
		for i := 0; i < len(examples) && len(strided) < maxExamples; i += step {
			strided = append(strided, examples[i])
		}
		examples = strided
	}

	epochs := p.LearnEpochs
	if epochs <= 0 {
		epochs = 3
	}
	lr := p.LearnRate
	if lr <= 0 {
		lr = 0.1
	}
	l2 := p.L2
	if l2 <= 0 {
		l2 = 0.01
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ 0xf17a11))))

	if len(examples) > 0 {
		wMin, wCooc := ls.wMin, ls.wCooc
		fMin := make([]float64, 0, trainTopK+1)
		fCooc := make([]float64, 0, trainTopK+1)
		probs := make([]float64, 0, trainTopK+1)
		for e := 0; e < epochs; e++ {
			rng.Shuffle(len(examples), func(i, j int) {
				examples[i], examples[j] = examples[j], examples[i]
			})
			for _, ex := range examples {
				// Candidates: the column's frequent values plus the observed
				// one; the observed value must out-score the rest.
				cands := ls.topVals[ex.col]
				obsIdx := -1
				for i, c := range cands {
					if c.Equal(ex.v) {
						obsIdx = i
						break
					}
				}
				if obsIdx < 0 {
					cands = append(append([]model.Value{}, cands...), ex.v)
					obsIdx = len(cands) - 1
				}
				fMin, fCooc, probs = fMin[:0], fCooc[:0], probs[:0]
				maxScore := math.Inf(-1)
				for i, c := range cands {
					m := 0.0
					if i == obsIdx {
						m = 1
					}
					fr, _ := ls.freq(ex.col, c)
					co := 0.5*m + 0.5*fr // the same blend inference uses
					fMin = append(fMin, m)
					fCooc = append(fCooc, co)
					s := wMin*m + wCooc*co
					probs = append(probs, s)
					if s > maxScore {
						maxScore = s
					}
				}
				sum := 0.0
				for i := range probs {
					probs[i] = math.Exp(probs[i] - maxScore)
					sum += probs[i]
				}
				var eMin, eCooc float64
				for i := range probs {
					probs[i] /= sum
					eMin += probs[i] * fMin[i]
					eCooc += probs[i] * fCooc[i]
				}
				wMin += lr*(fMin[obsIdx]-eMin) - lr*l2*wMin
				wCooc += lr*(fCooc[obsIdx]-eCooc) - lr*l2*wCooc
			}
		}
		clamp := func(w float64) float64 {
			return math.Min(8, math.Max(0.05, w))
		}
		ls.wMin, ls.wCooc = clamp(wMin), clamp(wCooc)
	}
	ls.examples = len(examples)
	ls.epochs = epochs
	p.setLearned(ls)
	sp.Attr(engine.AttrExamples, int64(ls.examples))
	sp.Attr(engine.AttrEpochs, int64(ls.epochs))
	return nil
}
