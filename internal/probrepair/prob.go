// Package probrepair is the probabilistic repair backend (HoloClean-style,
// "Holistic Data Repairs with Probabilistic Inference"): instead of picking
// repairs by heuristic cost, it compiles each violation component into a
// factor graph over cells, learns factor weights from the clean portion of
// the data, estimates per-cell marginals by seeded Gibbs sampling, and
// commits the maximum-a-posteriori value — falling back to the
// equivalence-class choice whenever the marginal margin is too thin to
// trust.
//
// The subsystem plugs into the existing repair machinery unchanged: Prob
// implements repair.Algorithm (plus the Fitter/Cloner/SpanAlgorithm
// extension points), so cleanse sessions, the parallel black-box wrapper of
// Section 5.1 and the CLI/serve layers run it like any other algorithm.
// Components are independent subproblems, so inference parallelizes across
// the worker pool for free; determinism is preserved by deriving each
// component's RNG seed from Seed and an order-independent hash of the
// component's cells (see componentSeed).
package probrepair

import (
	"math/rand"
	"sort"
	"sync"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// Defaults for the zero-valued tuning knobs of Prob.
const (
	// DefaultSamples is the recorded Gibbs sweep count used when Samples
	// is negative (New uses it too).
	DefaultSamples = 128
	// DefaultBurnIn is the discarded warm-up sweep count.
	DefaultBurnIn = 24
	// DefaultMinMargin is the marginal-probability margin below which the
	// sampler's answer is considered unsettled and the equivalence-class
	// choice is kept instead.
	DefaultMinMargin = 0.1
	// DefaultMaxDomain bounds each variable's candidate-value domain.
	DefaultMaxDomain = 16
	// DefaultRuleWeight is the prior weight of a rule-violation factor
	// (cross-cell inequality fixes). It is a prior, not learned: the clean
	// portion of the data exercises no rule factors, so there is nothing
	// to fit it on.
	DefaultRuleWeight = 2.5
	// DefaultConstWeight is the prior weight of a constant-fix factor
	// (CFD patterns, unary DCs) — hard requirements, mirrored by the
	// domain restriction in compile.
	DefaultConstWeight = 6.0
)

// Prob is the probabilistic repair algorithm. The zero value is valid but
// degenerate — Samples==0 disables sampling entirely and the algorithm
// returns exactly the equivalence-class answer (the degradation contract
// the property tests pin down). Use New for the standard configuration.
type Prob struct {
	// Samples is the number of recorded Gibbs sweeps per component.
	// 0 disables sampling (exact equivalence-class degradation); negative
	// selects DefaultSamples.
	Samples int
	// BurnIn is the number of discarded warm-up sweeps (<=0: DefaultBurnIn).
	BurnIn int
	// Seed drives every per-component sampler (0: 1). Runs with equal
	// seeds are byte-identical regardless of component order, worker
	// scheduling or test shuffling.
	Seed int64
	// MinMargin is the confidence threshold: when the top two marginal
	// estimates of a variable are closer than this, the equivalence-class
	// choice is kept (<=0: DefaultMinMargin; negative is clamped to 0).
	MinMargin float64
	// MaxDomain bounds a variable's candidate domain (<=0: DefaultMaxDomain).
	MaxDomain int
	// RuleWeight / ConstWeight are the factor priors (<=0: defaults).
	RuleWeight  float64
	ConstWeight float64
	// Learning hyperparameters for Fit (<=0: 3 epochs, 0.1 rate, 0.01 L2,
	// 2000 examples).
	LearnEpochs int
	LearnRate   float64
	L2          float64
	MaxExamples int
	// Observer receives the prob:compile / prob:learn / prob:infer spans
	// when Repair is called directly (serial use). The cleanse layers use
	// RepairSpanned instead and pass their own observer and parent span.
	Observer engine.Observer

	// learned is the state Fit produces: factor weights and the global
	// column-frequency tables the co-occurrence feature reads. Fit runs
	// before the (possibly concurrent) Repair calls of a flush round, so
	// the pointer swap needs no lock there; the mutex covers direct
	// library users that interleave Fit and Repair.
	mu      sync.Mutex
	learned *learnedState
}

// New returns a Prob with the standard configuration and the given seed
// (0 means 1).
func New(seed int64) *Prob {
	return &Prob{Samples: DefaultSamples, Seed: seed}
}

// Name implements repair.Algorithm.
func (p *Prob) Name() string { return "prob" }

// CloneAlgorithm implements repair.Cloner: sessions get their own copy so
// per-session learned state never leaks across sessions.
func (p *Prob) CloneAlgorithm() repair.Algorithm {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := &Prob{
		Samples: p.Samples, BurnIn: p.BurnIn, Seed: p.Seed,
		MinMargin: p.MinMargin, MaxDomain: p.MaxDomain,
		RuleWeight: p.RuleWeight, ConstWeight: p.ConstWeight,
		LearnEpochs: p.LearnEpochs, LearnRate: p.LearnRate, L2: p.L2,
		MaxExamples: p.MaxExamples, Observer: p.Observer,
	}
	return cp
}

func (p *Prob) learnedRef() *learnedState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.learned
}

func (p *Prob) setLearned(ls *learnedState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.learned = ls
}

// weights bundles the resolved factor weights for one inference run.
type weights struct {
	min, cooc, rule, cst float64
}

func (p *Prob) weights() weights {
	w := weights{min: defaultMinWeight, cooc: defaultCoocWeight, rule: p.RuleWeight, cst: p.ConstWeight}
	if ls := p.learnedRef(); ls != nil {
		w.min, w.cooc = ls.wMin, ls.wCooc
	}
	if w.rule <= 0 {
		w.rule = DefaultRuleWeight
	}
	if w.cst <= 0 {
		w.cst = DefaultConstWeight
	}
	return w
}

func (p *Prob) minMargin() float64 {
	if p.MinMargin == 0 {
		return DefaultMinMargin
	}
	if p.MinMargin < 0 {
		return 0
	}
	return p.MinMargin
}

// Repair implements repair.Algorithm (serial use: spans, if any, go to
// p.Observer with scoped nesting).
func (p *Prob) Repair(component []model.FixSet) ([]repair.Assignment, error) {
	return p.RepairSpanned(component, p.Observer, nil)
}

// RepairSpanned implements repair.SpanAlgorithm: the cleanse layers pass
// their observer and the enclosing repair span explicitly, which is what
// the tracer's contract requires when components repair concurrently.
func (p *Prob) RepairSpanned(component []model.FixSet, obs engine.Observer, parent engine.Span) ([]repair.Assignment, error) {
	if obs == nil {
		obs = engine.Discard
	}
	// The equivalence-class answer is always computed: it is the Samples==0
	// degradation target and the below-margin fallback.
	eqAs, err := (&repair.EquivalenceClass{}).Repair(component)
	if err != nil {
		return nil, err
	}
	samples := p.Samples
	if samples < 0 {
		samples = DefaultSamples
	}
	if samples == 0 {
		return eqAs, nil
	}
	burnIn := p.BurnIn
	if burnIn <= 0 {
		burnIn = DefaultBurnIn
	}
	maxDomain := p.MaxDomain
	if maxDomain <= 0 {
		maxDomain = DefaultMaxDomain
	}

	csp := obs.BeginSpan(parent, "prob:compile", engine.SpanRepair)
	g := compile(component, p.learnedRef(), maxDomain)
	csp.Attr(engine.AttrVariables, int64(len(g.vars)))
	csp.Attr(engine.AttrFactors, int64(g.nFactors))
	csp.End()
	if len(g.vars) == 0 {
		return eqAs, nil
	}

	isp := obs.BeginSpan(parent, "prob:infer", engine.SpanRepair)
	rng := rand.New(rand.NewSource(p.componentSeed(g)))
	counts, st := g.run(rng, burnIn, samples, p.weights())

	eqByCell := make(map[model.CellKey]model.Value, len(eqAs))
	for _, a := range eqAs {
		eqByCell[a.CellKey()] = a.Value
	}
	var out []repair.Assignment
	minMargin := p.minMargin()
	for vi, v := range g.vars {
		bestIdx, best, second := 0, -1, -1
		for d, c := range counts[vi] {
			if c > best {
				second = best
				best, bestIdx = c, d
			} else if c > second {
				second = c
			}
		}
		margin := float64(best-second) / float64(samples)
		if margin < minMargin {
			// Unsettled marginal: keep the equivalence-class choice for
			// the variable's cells (possibly "leave unchanged").
			for _, c := range v.cells {
				if ev, ok := eqByCell[c.MapKey()]; ok && !c.Value.Equal(ev) {
					out = append(out, repair.Assignment{
						TupleID: c.TupleID, Col: c.Col, Attr: c.Attr, Value: ev,
					})
				}
			}
			continue
		}
		target := v.domain[bestIdx]
		for _, c := range v.cells {
			if !c.Value.Equal(target) {
				out = append(out, repair.Assignment{
					TupleID: c.TupleID, Col: c.Col, Attr: c.Attr, Value: target,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TupleID != out[j].TupleID {
			return out[i].TupleID < out[j].TupleID
		}
		return out[i].Col < out[j].Col
	})
	isp.Attr(engine.AttrSamples, int64(st.samples))
	isp.Attr(engine.AttrAccepted, int64(st.accepted))
	isp.Attr(engine.AttrAssignments, int64(len(out)))
	isp.End()
	return out, nil
}

// componentSeed derives the per-component RNG seed: Seed mixed with an
// order-independent hash of the component's cell keys, so the same
// component samples identically no matter how fix sets were ordered or
// which worker ran it.
func (p *Prob) componentSeed(g *fgraph) int64 {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	keys := make([]model.CellKey, 0, len(g.cellVar))
	for k := range g.cellVar {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	h := uint64(0x9e3779b97f4a7c15)
	for _, k := range keys {
		h = splitmix64(h ^ k.Hash())
	}
	return int64(splitmix64(uint64(seed)) ^ h)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
