package probrepair

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bigdansing/internal/model"
	"bigdansing/internal/repair"
)

// fdFixSet builds the fix set of an FD violation between two city cells.
func fdFixSet(rule string, t1, t2 int64, v1, v2 string) model.FixSet {
	c1 := model.NewCell(t1, 2, "city", model.S(v1))
	c2 := model.NewCell(t2, 2, "city", model.S(v2))
	return model.FixSet{
		Violation: model.NewViolation(rule, c1, c2),
		Fixes:     []model.Fix{model.NewCellFix(c1, model.OpEQ, c2)},
	}
}

func TestCompileMergesEqualityFixesIntoOneVariable(t *testing.T) {
	// t1=LA, t2=LA, t3=SF all tied: one class, domain {LA, SF},
	// votes 2 vs 1, init = LA.
	fs := []model.FixSet{
		fdFixSet("fd", 1, 3, "LA", "SF"),
		fdFixSet("fd", 2, 3, "LA", "SF"),
	}
	g := compile(fs, nil, DefaultMaxDomain)
	if len(g.vars) != 1 {
		t.Fatalf("vars = %d, want 1", len(g.vars))
	}
	v := g.vars[0]
	if len(v.cells) != 3 {
		t.Fatalf("members = %d, want 3", len(v.cells))
	}
	if len(v.domain) != 2 {
		t.Fatalf("domain = %v, want {LA, SF}", v.domain)
	}
	if !v.domain[v.init].Equal(model.S("LA")) {
		t.Errorf("init = %v, want the majority value LA", v.domain[v.init])
	}
	votes := map[string]float64{}
	for d, dv := range v.domain {
		votes[dv.String()] = v.votes[d]
	}
	if votes["LA"] != 2 || votes["SF"] != 1 {
		t.Errorf("votes = %v, want LA:2 SF:1", votes)
	}
}

func TestCompileConstFixRestrictsDomain(t *testing.T) {
	// A CFD constant fix makes the domain the constant target alone, the
	// same hard-requirement treatment the other algorithms use.
	c1 := model.NewCell(1, 2, "city", model.S("SF"))
	c2 := model.NewCell(2, 2, "city", model.S("SF"))
	fs := []model.FixSet{{
		Violation: model.NewViolation("cfd", c1, c2),
		Fixes: []model.Fix{
			model.NewCellFix(c1, model.OpEQ, c2),
			model.NewConstFix(c1, model.OpEQ, model.S("LA")),
		},
	}}
	g := compile(fs, nil, DefaultMaxDomain)
	if len(g.vars) != 1 {
		t.Fatalf("vars = %d, want 1", len(g.vars))
	}
	v := g.vars[0]
	if len(v.domain) != 1 || !v.domain[0].Equal(model.S("LA")) {
		t.Fatalf("domain = %v, want exactly {LA}", v.domain)
	}
}

func TestCompileSkipsImmovableLoneCells(t *testing.T) {
	// A >= fix connects two rate cells: both become (active) singleton
	// variables with a cross factor; a lone cell with no constant and no
	// cross factor would get none.
	r1 := model.NewCell(1, 3, "rate", model.I(5))
	r2 := model.NewCell(2, 3, "rate", model.I(9))
	fs := []model.FixSet{{
		Violation: model.NewViolation("dc", r1, r2),
		Fixes:     []model.Fix{model.NewCellFix(r1, model.OpGE, r2)},
	}}
	g := compile(fs, nil, DefaultMaxDomain)
	if len(g.vars) != 2 {
		t.Fatalf("vars = %d, want 2 singleton variables", len(g.vars))
	}
	if len(g.factors) != 1 {
		t.Fatalf("cross factors = %d, want 1", len(g.factors))
	}
}

// randomComponent builds a random but internally consistent component: each
// (tuple, col) cell has one fixed value, fixes mix cell-cell equalities,
// constant equalities and cross inequalities.
func randomComponent(rng *rand.Rand) []model.FixSet {
	cities := []string{"LA", "SF", "NY", "CHI", "DAL"}
	vals := map[int64]model.Value{}
	cellOf := func(tid int64) model.Cell {
		v, ok := vals[tid]
		if !ok {
			v = model.S(cities[rng.Intn(len(cities))])
			vals[tid] = v
		}
		return model.NewCell(tid, 2, "city", v)
	}
	n := 1 + rng.Intn(6)
	fss := make([]model.FixSet, 0, n)
	for i := 0; i < n; i++ {
		t1 := int64(rng.Intn(8))
		t2 := int64(rng.Intn(8))
		if t1 == t2 {
			t2 = (t1 + 1) % 8
		}
		c1, c2 := cellOf(t1), cellOf(t2)
		var fix model.Fix
		switch rng.Intn(10) {
		case 0:
			fix = model.NewConstFix(c1, model.OpEQ, model.S(cities[rng.Intn(len(cities))]))
		case 1:
			fix = model.NewCellFix(c1, model.OpNEQ, c2)
		default:
			fix = model.NewCellFix(c1, model.OpEQ, c2)
		}
		fss = append(fss, model.FixSet{
			Violation: model.NewViolation(fmt.Sprintf("r%d", i), c1, c2),
			Fixes:     []model.Fix{fix},
		})
	}
	return fss
}

func TestZeroSamplesDegradesExactlyToEquivalenceClass(t *testing.T) {
	// Property: with Samples == 0 the prob algorithm IS the
	// equivalence-class algorithm, assignment for assignment.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		fss := randomComponent(rng)
		eqAs, err := (&repair.EquivalenceClass{}).Repair(fss)
		if err != nil {
			t.Fatal(err)
		}
		probAs, err := (&Prob{Samples: 0, Seed: int64(trial)}).Repair(fss)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(eqAs, probAs) {
			t.Fatalf("trial %d: prob(Samples=0) diverged from eq:\n eq  = %v\n prob= %v\n component = %v",
				trial, eqAs, probAs, fss)
		}
	}
}

func TestRepairDeterministicUnderFixSetPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		fss := randomComponent(rng)
		base, err := New(42).Repair(fss)
		if err != nil {
			t.Fatal(err)
		}
		for perm := 0; perm < 4; perm++ {
			shuffled := append([]model.FixSet{}, fss...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			got, err := New(42).Repair(shuffled)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("trial %d perm %d: permuted fix sets changed the answer:\n base = %v\n got  = %v",
					trial, perm, base, got)
			}
		}
	}
}

func TestSymmetricTieFallsBackToEquivalenceChoice(t *testing.T) {
	// A two-cell tie has a flat marginal: the margin threshold must route
	// it to the equivalence-class tie-break (smaller rendered value).
	fss := []model.FixSet{fdFixSet("fd", 1, 2, "SF", "LA")}
	as, err := New(3).Repair(fss)
	if err != nil {
		t.Fatal(err)
	}
	eqAs, _ := (&repair.EquivalenceClass{}).Repair(fss)
	if !reflect.DeepEqual(as, eqAs) {
		t.Errorf("tie: prob = %v, want the eq fallback %v", as, eqAs)
	}
}

func TestMajorityVoteWinsWithSampling(t *testing.T) {
	// 3 clean LA cells vs 1 corrupted SF cell: the marginal concentrates on
	// LA and the corrupt cell is repaired.
	fss := []model.FixSet{
		fdFixSet("fd", 1, 4, "LA", "SF"),
		fdFixSet("fd", 2, 4, "LA", "SF"),
		fdFixSet("fd", 3, 4, "LA", "SF"),
	}
	as, err := New(1).Repair(fss)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].TupleID != 4 || !as[0].Value.Equal(model.S("LA")) {
		t.Fatalf("assignments = %v, want t4.city -> LA", as)
	}
}

func TestConstFixCommitted(t *testing.T) {
	c1 := model.NewCell(1, 2, "city", model.S("SF"))
	fss := []model.FixSet{{
		Violation: model.NewViolation("cfd", c1),
		Fixes:     []model.Fix{model.NewConstFix(c1, model.OpEQ, model.S("LA"))},
	}}
	as, err := New(1).Repair(fss)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || !as[0].Value.Equal(model.S("LA")) {
		t.Fatalf("assignments = %v, want t1.city -> LA", as)
	}
}

func TestCrossFactorSteersInequalityRepair(t *testing.T) {
	// DC-style: t1.rate must be >= t2.rate but is 5 vs 9. The equivalence
	// algorithm proposes nothing (no equality fixes); prob can move a rate
	// to a co-occurring value that satisfies the factor.
	// Two witnesses agree r1 is too small (both demand r1 >= 9), so the
	// (9,9,9) mode dominates and the sampler raises r1 instead of lowering
	// both witnesses.
	r1 := model.NewCell(1, 3, "rate", model.I(5))
	r2 := model.NewCell(2, 3, "rate", model.I(9))
	r3 := model.NewCell(3, 3, "rate", model.I(9))
	fss := []model.FixSet{
		{
			Violation: model.NewViolation("dc", r1, r2),
			Fixes:     []model.Fix{model.NewCellFix(r1, model.OpGE, r2)},
		},
		{
			Violation: model.NewViolation("dc", r1, r3),
			Fixes:     []model.Fix{model.NewCellFix(r1, model.OpGE, r3)},
		},
	}
	eqAs, _ := (&repair.EquivalenceClass{}).Repair(fss)
	if len(eqAs) != 0 {
		t.Fatalf("eq should propose nothing for inequality fixes, got %v", eqAs)
	}
	as, err := New(1).Repair(fss)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int64]model.Value{1: model.I(5), 2: model.I(9), 3: model.I(9)}
	for _, a := range as {
		vals[a.TupleID] = a.Value
	}
	if model.Compare(vals[1], vals[2]) < 0 || model.Compare(vals[1], vals[3]) < 0 {
		t.Errorf("after repair rate1=%v vs %v/%v still violates; assignments = %v",
			vals[1], vals[2], vals[3], as)
	}
}

func TestCloneAlgorithmIsolatesLearnedState(t *testing.T) {
	p := New(5)
	p.setLearned(&learnedState{wMin: 7, wCooc: 7})
	cl := p.CloneAlgorithm().(*Prob)
	if cl.learnedRef() != nil {
		t.Error("clone must start with fresh learned state")
	}
	if cl.Seed != 5 || cl.Samples != DefaultSamples {
		t.Errorf("clone lost configuration: %+v", cl)
	}
}

func TestAlgorithmCodeRegistersProb(t *testing.T) {
	if repair.AlgorithmCode("prob") != repair.AlgoProb {
		t.Error("AlgorithmCode(prob) != AlgoProb")
	}
	if repair.AlgorithmCode("equivalence-class") != repair.AlgoEquivalenceClass {
		t.Error("AlgorithmCode(equivalence-class) != AlgoEquivalenceClass")
	}
	if repair.AlgorithmCode("nope") != repair.AlgoUnknown {
		t.Error("unknown name should map to AlgoUnknown")
	}
}
