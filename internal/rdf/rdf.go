// Package rdf supports RDF data cleansing (Appendix C): triples are the
// data units, parsed from a simple line-oriented triple format and exposed
// to the rule engine either directly as a (subject, predicate, object)
// relation or pivoted so that each subject's properties become one tuple —
// the shape the advisor/university example rule of Figure 13 consumes.
package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"bigdansing/internal/model"
)

// Triple is one RDF statement.
type Triple struct {
	Subject, Predicate, Object string
}

// String renders the triple in the input format.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.Subject, t.Predicate, t.Object)
}

// Parse reads whitespace-separated "subject predicate object [.]" lines.
// Blank lines and lines starting with '#' are skipped.
func Parse(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		text = strings.TrimSuffix(text, ".")
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("rdf: line %d: want 3 terms, got %d", line, len(fields))
		}
		out = append(out, Triple{
			Subject:   fields[0],
			Predicate: fields[1],
			Object:    strings.Join(fields[2:], " "),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: %w", err)
	}
	return out, nil
}

// ParseString parses triples from a string.
func ParseString(s string) ([]Triple, error) { return Parse(strings.NewReader(s)) }

// Schema is the triple relation's schema.
func Schema() *model.Schema { return model.MustParseSchema("subject,predicate,object") }

// ToRelation exposes triples as a relation with one tuple per triple —
// triples are the data units, their three terms the elements.
func ToRelation(name string, triples []Triple) *model.Relation {
	rel := model.NewRelation(name, Schema())
	for i, t := range triples {
		rel.Append(model.NewTuple(int64(i),
			model.S(t.Subject), model.S(t.Predicate), model.S(t.Object)))
	}
	return rel
}

// Write renders triples in the input format, one per line.
func Write(w io.Writer, triples []Triple) error {
	for _, t := range triples {
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

// FromPivoted converts a pivoted relation (see Pivot) back to triples: one
// triple per non-null predicate cell, so repaired tuples translate back to
// an updated RDF graph (the final step of the Appendix C scenario).
func FromPivoted(rel *model.Relation) []Triple {
	var out []Triple
	for _, t := range rel.Tuples {
		subject := t.Cell(0).String()
		for c := 1; c < rel.Schema.Len(); c++ {
			v := t.Cell(c)
			if v.IsNull() {
				continue
			}
			out = append(out, Triple{
				Subject:   subject,
				Predicate: rel.Schema.Name(c),
				Object:    v.String(),
			})
		}
	}
	return out
}

// Pivot groups triples by subject and emits one tuple per subject carrying
// the object of each requested predicate (null when absent) — the
// Scope+Block+Iterate prefix of the RDF logical plan in Figure 13, which
// turns the triple store into the unit shape a pairwise Detect needs.
// The output schema is subject, then one attribute per predicate.
func Pivot(name string, triples []Triple, predicates ...string) *model.Relation {
	attrs := make([]model.Attribute, 0, len(predicates)+1)
	attrs = append(attrs, model.Attribute{Name: "subject", Kind: model.KindString})
	for _, p := range predicates {
		attrs = append(attrs, model.Attribute{Name: p, Kind: model.KindString})
	}
	schema := model.NewSchema(attrs...)

	wanted := map[string]int{}
	for i, p := range predicates {
		wanted[p] = i + 1
	}
	bySubject := map[string][]model.Value{}
	var order []string
	for _, t := range triples {
		col, ok := wanted[t.Predicate]
		if !ok {
			continue // Scope: irrelevant predicates are dropped
		}
		cells, seen := bySubject[t.Subject]
		if !seen {
			cells = make([]model.Value, len(predicates)+1)
			cells[0] = model.S(t.Subject)
			bySubject[t.Subject] = cells
			order = append(order, t.Subject)
		}
		cells[col] = model.S(t.Object)
	}
	sort.Strings(order)
	rel := model.NewRelation(name, schema)
	for i, s := range order {
		rel.Append(model.Tuple{ID: int64(i), Cells: bySubject[s]})
	}
	return rel
}
