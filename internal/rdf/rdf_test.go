package rdf

import (
	"strings"
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// exampleTriples is the student/advisor RDF dataset of Figure 14.
const exampleTriples = `
# students, advisors, universities
John    student_in  MIT .
Sally   student_in  UCB .
John    advised_by  William .
Sally   advised_by  William .
William professor_in MIT .
`

func TestParse(t *testing.T) {
	ts, err := ParseString(exampleTriples)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("triples = %d", len(ts))
	}
	if ts[0].Subject != "John" || ts[0].Predicate != "student_in" || ts[0].Object != "MIT" {
		t.Errorf("triple 0 = %+v", ts[0])
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("only two"); err == nil {
		t.Error("short line should fail")
	}
	ts, err := ParseString("")
	if err != nil || len(ts) != 0 {
		t.Error("empty input parses to nothing")
	}
}

func TestToRelation(t *testing.T) {
	ts, _ := ParseString(exampleTriples)
	rel := ToRelation("rdf", ts)
	if rel.Len() != 5 || rel.Schema.Len() != 3 {
		t.Fatalf("relation shape: %d x %d", rel.Len(), rel.Schema.Len())
	}
}

func TestPivot(t *testing.T) {
	ts, _ := ParseString(exampleTriples)
	rel := Pivot("students", ts, "student_in", "advised_by")
	if rel.Len() != 2 {
		t.Fatalf("pivot rows = %d, want 2 (John, Sally)", rel.Len())
	}
	byName := map[string]model.Tuple{}
	for _, tp := range rel.Tuples {
		byName[tp.Cell(0).String()] = tp
	}
	john := byName["John"]
	if john.Cell(1) != model.S("MIT") || john.Cell(2) != model.S("William") {
		t.Errorf("john = %v", john)
	}
	// William has no student_in/advised_by triples: not pivoted.
	if _, ok := byName["William"]; ok {
		t.Error("non-student subjects should be scoped out")
	}
}

func TestFromPivotedRoundTrip(t *testing.T) {
	ts, _ := ParseString(exampleTriples)
	rel := Pivot("students", ts, "student_in", "advised_by")
	back := FromPivoted(rel)
	// Two students x two predicates = 4 triples.
	if len(back) != 4 {
		t.Fatalf("triples = %d, want 4", len(back))
	}
	var buf strings.Builder
	if err := Write(&buf, back); err != nil {
		t.Fatal(err)
	}
	again, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(back) {
		t.Fatalf("write/parse round trip: %d vs %d", len(again), len(back))
	}
	for i := range back {
		if again[i] != back[i] {
			t.Errorf("triple %d: %v vs %v", i, again[i], back[i])
		}
	}
}

func TestRDFAdvisorRuleEndToEnd(t *testing.T) {
	// The Appendix C rule: two students with the same advisor must be in
	// the same university. John (MIT) and Sally (UCB) share William.
	ts, _ := ParseString(exampleTriples)
	rel := Pivot("students", ts, "student_in", "advised_by")
	rule := &core.Rule{
		ID:        "sameAdvisorSameUniv",
		Block:     func(t model.Tuple) model.Value { return t.Cell(2) }, // advisor
		Symmetric: true,
		Detect: func(it core.Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if l.Cell(2).Equal(r.Cell(2)) && !l.Cell(1).Equal(r.Cell(1)) {
				return []model.Violation{model.NewViolation("sameAdvisorSameUniv",
					model.NewCell(l.ID, 1, "student_in", l.Cell(1)),
					model.NewCell(r.ID, 1, "student_in", r.Cell(1)))}
			}
			return nil
		},
		GenFix: func(v model.Violation) []model.Fix {
			return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
		},
	}
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1 (John vs Sally)", len(res.Violations))
	}
	if len(res.FixSets[0].Fixes) != 1 {
		t.Error("a fix equating the universities should be proposed")
	}
}
