package repair

import (
	"sort"
	"sync"
	"sync/atomic"

	"bigdansing/internal/graph"
	"bigdansing/internal/model"
)

// fixSetComponents groups fix sets into connected components: two fix sets
// are connected when they touch a common cell. It returns, per fix set, the
// component ID — the smallest fix-set index in the component, matching both
// the BSP HashMin labeling and the hypergraph ConnectedComponents contract —
// plus the per-fix-set cell keys (reused by callers that go on to split
// oversized components).
//
// The computation replaces the bipartite BSP label propagation with interned
// integer cell IDs and a lock-free union-find, and parallelizes both the
// cell-collection and the union phases across the worker pool:
//
//  1. workers extract each fix set's distinct cell keys (comparable
//     model.CellKey structs — no strings are rendered);
//  2. cell keys are interned to dense integers sequentially (one map pass);
//  3. workers race CAS claims on a per-cell owner slot: the first fix set
//     to touch a cell owns it, later ones union with the owner — every
//     pair of fix sets sharing a cell ends up connected through its owner;
//  4. the final labels are read off the quiesced union-find.
func fixSetComponents(fixSets []model.FixSet, parallelism int) (comp []int64, cellKeys [][]model.CellKey) {
	n := len(fixSets)
	cellKeys = make([][]model.CellKey, n)
	comp = make([]int64, n)
	if n == 0 {
		return comp, cellKeys
	}
	if parallelism <= 0 {
		parallelism = 4
	}
	if parallelism > n {
		parallelism = n
	}

	// Phase 1: per-fix-set cell keys, in parallel.
	runChunks(n, parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cellKeys[i] = cellKeysOfFixSet(fixSets[i])
		}
	})

	// Phase 2: intern cell keys to dense integer IDs.
	cellID := make(map[model.CellKey]int32)
	ids := make([][]int32, n)
	for i, keys := range cellKeys {
		row := make([]int32, len(keys))
		for j, k := range keys {
			id, ok := cellID[k]
			if !ok {
				id = int32(len(cellID))
				cellID[k] = id
			}
			row[j] = id
		}
		ids[i] = row
	}

	// Phase 3: union fix sets through shared cells, in parallel. owner[c]
	// holds the first fix set that claimed cell c (-1 while unclaimed);
	// the claim CAS makes each cell a rendezvous point, so every fix set
	// touching it unions with the same owner.
	ownerSlots := make([]atomic.Int32, len(cellID))
	for i := range ownerSlots {
		ownerSlots[i].Store(-1)
	}
	uf := graph.NewConcurrentUnionFind(n)
	runChunks(n, parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fi := int32(i)
			for _, c := range ids[i] {
				if ownerSlots[c].CompareAndSwap(-1, fi) {
					continue
				}
				uf.Union(fi, ownerSlots[c].Load())
			}
		}
	})

	// Phase 4: final labels. All unions have quiesced, so Find is stable;
	// the root is the minimum fix-set index of the component.
	runChunks(n, parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			comp[i] = int64(uf.Find(int32(i)))
		}
	})
	return comp, cellKeys
}

// runChunks splits [0, n) into parallelism contiguous chunks and runs fn on
// each from its own goroutine.
func runChunks(n, parallelism int, fn func(lo, hi int)) {
	if parallelism <= 1 || n <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + parallelism - 1) / parallelism
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// cellKeysOfFixSet collects the distinct cells a fix set touches — the
// nodes its hyperedge covers (violation cells plus fix cells) — as sorted
// comparable keys.
func cellKeysOfFixSet(fs model.FixSet) []model.CellKey {
	var out []model.CellKey
	add := func(c model.Cell) {
		k := c.MapKey()
		for _, have := range out {
			if have == k {
				return
			}
		}
		out = append(out, k)
	}
	for _, c := range fs.Violation.Cells {
		add(c)
	}
	for _, f := range fs.Fixes {
		for _, c := range f.Cells() {
			add(c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
