package repair

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"bigdansing/internal/graph"
	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
)

// DistributedEquivalenceClass is the natively distributed equivalence-class
// algorithm of Section 5.2, modeled as a distributed word count with two
// map-reduce sequences:
//
//	job 1  map:    possible fix -> ⟨⟨ccID,value⟩, 1⟩ (each element's value
//	               counted once per class, as the paper requires)
//	       reduce: count occurrences  -> ⟨⟨ccID,value⟩, count⟩
//	job 2  map:    ⟨⟨ccID,value⟩, count⟩ -> ⟨ccID, ⟨value,count⟩⟩
//	       reduce: pick the most frequent value per class and assign it to
//	               every element of the class
//
// The class ("ccID") is the equivalence class the fixes induce — computed
// with a union-find over equality fixes, which coincides with the connected
// component for single-FD workloads the paper describes.
type DistributedEquivalenceClass struct {
	Engine  *mapred.Engine
	Splits  int
	Reduces int
}

// Name identifies the algorithm.
func (d *DistributedEquivalenceClass) Name() string { return "equivalence-class-mr" }

// Repair implements Algorithm using the two map-reduce sequences.
func (d *DistributedEquivalenceClass) Repair(component []model.FixSet) ([]Assignment, error) {
	if d.Engine == nil {
		return nil, fmt.Errorf("repair: distributed equivalence class needs a MapReduce engine")
	}

	// Preprocessing (the "connected component ID" the paper's first map
	// assumes available): union cells linked by equality fixes. In-memory
	// cell identity is the comparable key; strings appear only at the
	// map-reduce serialization boundary below.
	uf := graph.NewUnionFind()
	idOf := map[model.CellKey]int64{}
	cells := map[model.CellKey]model.Cell{}
	next := int64(0)
	intern := func(c model.Cell) int64 {
		k := c.MapKey()
		if id, ok := idOf[k]; ok {
			return id
		}
		idOf[k] = next
		cells[k] = c
		uf.Add(next)
		next++
		return idOf[k]
	}
	consts := map[model.CellKey][]model.Value{} // cell -> required constants
	for _, fs := range component {
		for _, c := range fs.Violation.Cells {
			intern(c)
		}
		for _, f := range fs.Fixes {
			if f.Op != model.OpEQ {
				continue
			}
			l := intern(f.Left)
			if f.RightIsCell {
				uf.Union(l, intern(f.RightCell))
			} else {
				consts[f.Left.MapKey()] = append(consts[f.Left.MapKey()], f.RightConst)
			}
		}
	}
	classOf := func(k model.CellKey) int64 { return uf.Find(idOf[k]) }

	// ---- Job 1 input: one record per element: ccID value (value counted
	// once per element, satisfying "if an element exists in multiple fixes,
	// we only count its value once"). Constants enter with a boosted count
	// so they win the vote (hard requirements).
	var input [][]byte
	classSize := map[int64]int{}
	for k := range idOf {
		classSize[classOf(k)]++
	}
	encodeRec := func(cc int64, v model.Value, weight int) []byte {
		var buf []byte
		buf = binary.AppendVarint(buf, cc)
		buf = binary.AppendVarint(buf, int64(weight))
		return model.AppendValue(buf, v)
	}
	for k, c := range cells {
		cc := classOf(k)
		input = append(input, encodeRec(cc, c.Value, 1))
		for _, cv := range consts[k] {
			input = append(input, encodeRec(cc, cv, classSize[cc]+1))
		}
	}

	decodeRec := func(rec []byte) (int64, int, model.Value, error) {
		cc, n := binary.Varint(rec)
		if n <= 0 {
			return 0, 0, model.Value{}, fmt.Errorf("repair: bad cc id")
		}
		w, m := binary.Varint(rec[n:])
		if m <= 0 {
			return 0, 0, model.Value{}, fmt.Errorf("repair: bad weight")
		}
		v, _, err := model.DecodeValue(rec[n+m:])
		return cc, int(w), v, err
	}

	// combineCounts sums the weight prefixes map-side (the Combine task of
	// Appendix G.2), so each map task spills one record per ⟨ccID,value⟩.
	combineCounts := func(key string, values [][]byte) [][]byte {
		total := int64(0)
		var payload []byte
		for i, raw := range values {
			w, n := binary.Varint(raw)
			total += w
			if i == 0 {
				payload = raw[n:]
			}
		}
		var wbuf [10]byte
		n := binary.PutVarint(wbuf[:], total)
		return [][]byte{append(wbuf[:n:n], payload...)}
	}

	// ---- Job 1: count ⟨ccID,value⟩ occurrences.
	counted, err := d.Engine.RunWithCombiner(input, d.Splits, d.Reduces,
		func(rec []byte, emit mapred.Emit) {
			cc, w, v, err := decodeRec(rec)
			if err != nil {
				panic(err)
			}
			key := strconv.FormatInt(cc, 10) + "\x1f" + v.Key()
			var wbuf [10]byte
			n := binary.PutVarint(wbuf[:], int64(w))
			emit(key, append(wbuf[:n:n], model.AppendValue(nil, v)...))
		},
		combineCounts,
		func(key string, values [][]byte, emit func([]byte)) {
			total := 0
			var v model.Value
			for i, raw := range values {
				w, n := binary.Varint(raw)
				total += int(w)
				if i == 0 {
					dv, _, err := model.DecodeValue(raw[n:])
					if err != nil {
						panic(err)
					}
					v = dv
				}
			}
			ccStr, _, _ := strings.Cut(key, "\x1f")
			cc, _ := strconv.ParseInt(ccStr, 10, 64)
			emit(encodeRec(cc, v, total))
		})
	if err != nil {
		return nil, fmt.Errorf("repair: MR job 1: %w", err)
	}

	// ---- Job 2: per ccID pick the most frequent value.
	winners, err := d.Engine.Run(counted, d.Splits, d.Reduces,
		func(rec []byte, emit mapred.Emit) {
			cc, _, _, err := decodeRec(rec)
			if err != nil {
				panic(err)
			}
			emit(strconv.FormatInt(cc, 10), rec)
		},
		func(key string, values [][]byte, emit func([]byte)) {
			bestCount := -1
			var best model.Value
			var cc int64
			for _, raw := range values {
				c, w, v, err := decodeRec(raw)
				if err != nil {
					panic(err)
				}
				cc = c
				if w > bestCount || (w == bestCount && v.String() < best.String()) {
					bestCount, best = w, v
				}
			}
			emit(encodeRec(cc, best, bestCount))
		})
	if err != nil {
		return nil, fmt.Errorf("repair: MR job 2: %w", err)
	}

	target := map[int64]model.Value{}
	for _, rec := range winners {
		cc, _, v, err := decodeRec(rec)
		if err != nil {
			return nil, err
		}
		target[cc] = v
	}

	// Emit assignments for every element whose value differs from its
	// class target; singleton classes without constant requirements keep
	// their value.
	var out []Assignment
	for k, c := range cells {
		cc := classOf(k)
		if classSize[cc] == 1 && len(consts[k]) == 0 {
			continue
		}
		t, ok := target[cc]
		if !ok || c.Value.Equal(t) {
			continue
		}
		out = append(out, Assignment{TupleID: c.TupleID, Col: c.Col, Attr: c.Attr, Value: t})
	}
	sortAssignments(out)
	return out, nil
}
