package repair

import (
	"sort"

	"bigdansing/internal/graph"
	"bigdansing/internal/model"
)

// EquivalenceClass is the seminal equivalence-class repair algorithm [5]:
// cells that possible fixes require to be equal are grouped into classes,
// and each class is assigned the target value that minimizes the repair
// cost — under exact-match distance, the most frequent current value (with
// pattern constants taking precedence, since a constant fix is a hard
// requirement from a CFD or unary DC).
type EquivalenceClass struct {
	// Dis is the distance used for tie reporting; nil means UnitDistance.
	Dis DistanceFunc
	// Prior, when set, contributes one extra vote per cell that a previous
	// repair round drove to a value (a *ClassMemory). Streaming sessions use
	// it to keep repair decisions stable across flushes; one-shot runs leave
	// it nil and behave exactly as before.
	Prior interface {
		Prefer(k model.CellKey) (model.Value, bool)
	}
}

// Name implements Algorithm.
func (e *EquivalenceClass) Name() string { return "equivalence-class" }

// cellInfo tracks one element seen in the component.
type cellInfo struct {
	cell model.Cell
	id   int64 // dense union-find id
}

// Repair implements Algorithm.
func (e *EquivalenceClass) Repair(component []model.FixSet) ([]Assignment, error) {
	// Collect cells and union the ones equality fixes connect; cells are
	// interned on their comparable key, never a rendered string.
	ids := map[model.CellKey]*cellInfo{}
	uf := graph.NewUnionFind()
	next := int64(0)
	intern := func(c model.Cell) *cellInfo {
		k := c.MapKey()
		if ci, ok := ids[k]; ok {
			return ci
		}
		ci := &cellInfo{cell: c, id: next}
		next++
		ids[k] = ci
		uf.Add(ci.id)
		return ci
	}
	// constPref[classRep] accumulates constant requirements.
	type constVote struct {
		v     model.Value
		count int
	}
	constVotes := map[model.CellKey][]constVote{} // keyed by cell pre-union; resolved later

	for _, fs := range component {
		for _, c := range fs.Violation.Cells {
			intern(c)
		}
		for _, f := range fs.Fixes {
			if f.Op != model.OpEQ {
				continue // the equivalence class algorithm consumes equality fixes
			}
			l := intern(f.Left)
			if f.RightIsCell {
				r := intern(f.RightCell)
				uf.Union(l.id, r.id)
			} else {
				k := f.Left.MapKey()
				votes := constVotes[k]
				found := false
				for i := range votes {
					if votes[i].v.Equal(f.RightConst) {
						votes[i].count++
						found = true
						break
					}
				}
				if !found {
					votes = append(votes, constVote{v: f.RightConst, count: 1})
				}
				constVotes[k] = votes
			}
		}
	}

	// Group cells by class representative.
	classes := map[int64][]*cellInfo{}
	for _, ci := range ids {
		classes[uf.Find(ci.id)] = append(classes[uf.Find(ci.id)], ci)
	}

	var out []Assignment
	for _, members := range classes {
		if len(members) == 0 {
			continue
		}
		// Candidate values: current member values, plus constants.
		type cand struct {
			v     model.Value
			count int
		}
		var cands []cand
		bump := func(v model.Value, by int) {
			for i := range cands {
				if cands[i].v.Equal(v) {
					cands[i].count += by
					return
				}
			}
			cands = append(cands, cand{v: v, count: by})
		}
		for _, m := range members {
			bump(m.cell.Value, 1)
			if e.Prior != nil {
				if v, ok := e.Prior.Prefer(m.cell.MapKey()); ok {
					bump(v, 1)
				}
			}
			for _, cv := range constVotes[m.cell.MapKey()] {
				// A constant requirement outweighs frequency: CFD constants
				// are hard. Weight it above any possible member count.
				bump(cv.v, cv.count+len(members))
			}
		}
		if len(members) == 1 && len(constVotes[members[0].cell.MapKey()]) == 0 {
			continue // nothing requires this lone cell to change
		}
		// Pick the highest count; break ties by smaller rendered value so
		// the algorithm is deterministic.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].count != cands[j].count {
				return cands[i].count > cands[j].count
			}
			return cands[i].v.String() < cands[j].v.String()
		})
		target := cands[0].v
		for _, m := range members {
			if !m.cell.Value.Equal(target) {
				out = append(out, Assignment{
					TupleID: m.cell.TupleID,
					Col:     m.cell.Col,
					Attr:    m.cell.Attr,
					Value:   target,
				})
			}
		}
	}
	sortAssignments(out)
	return out, nil
}

// sortAssignments orders assignments deterministically.
func sortAssignments(as []Assignment) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].TupleID != as[j].TupleID {
			return as[i].TupleID < as[j].TupleID
		}
		return as[i].Col < as[j].Col
	})
}
