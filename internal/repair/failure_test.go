package repair

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"bigdansing/internal/model"
)

// failingAlgo errors or panics on demand — failure injection for the
// black-box wrapper.
type failingAlgo struct {
	err      error
	panicMsg string
	// failOn, when non-empty, only fails components containing that cell.
	failOn string
	inner  Algorithm
}

func (f *failingAlgo) Name() string { return "failing" }

func (f *failingAlgo) Repair(component []model.FixSet) ([]Assignment, error) {
	applies := f.failOn == ""
	for _, fs := range component {
		for _, c := range fs.Violation.Cells {
			if c.Key() == f.failOn {
				applies = true
			}
		}
	}
	if applies {
		if f.panicMsg != "" {
			panic(f.panicMsg)
		}
		if f.err != nil {
			return nil, f.err
		}
	}
	if f.inner != nil {
		return f.inner.Repair(component)
	}
	return nil, nil
}

func TestRepairParallelPropagatesAlgorithmError(t *testing.T) {
	fs := []model.FixSet{fdFixSet("fd", 1, 2, "A", "B")}
	boom := errors.New("algorithm exploded")
	_, _, err := RepairParallel(fs, &failingAlgo{err: boom}, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped algorithm error", err)
	}
}

func TestRepairParallelRecoversAlgorithmPanic(t *testing.T) {
	fs := []model.FixSet{fdFixSet("fd", 1, 2, "A", "B")}
	_, _, err := RepairParallel(fs, &failingAlgo{panicMsg: "kaboom"}, Options{Parallelism: 2})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic should surface as error, got %v", err)
	}
}

func TestRepairParallelPartialFailureFailsWhole(t *testing.T) {
	// Two components; the algorithm fails only on the one containing the
	// cell of tuple 10. The whole run must report the failure (no silent
	// partial repair).
	fs := []model.FixSet{
		fdFixSet("fd", 1, 2, "A", "B"),
		fdFixSet("fd", 10, 11, "C", "D"),
	}
	algo := &failingAlgo{err: errors.New("partial"), failOn: "10#2", inner: &EquivalenceClass{}}
	_, _, err := RepairParallel(fs, algo, Options{Parallelism: 4})
	if err == nil {
		t.Fatal("component failure should fail the run")
	}
}

func TestRepairSplitWithConflictingMasters(t *testing.T) {
	// Example 2's scenario: a big component split across workers where the
	// parts would choose different values for the shared cell. The
	// reconciliation protocol must keep exactly one value per cell and
	// count the conflicts it undid.
	var fs []model.FixSet
	// Star around cell (0,#2): half the leaves say "X", half say "Y"; the
	// shared hub cell must settle once.
	for i := int64(1); i <= 12; i++ {
		v := "X"
		if i%2 == 0 {
			v = "Y"
		}
		fs = append(fs, fdFixSet("fd", 0, i, v, fmt.Sprintf("leaf%d", i)))
	}
	as, rep, err := RepairParallel(fs, &EquivalenceClass{}, Options{
		Parallelism:      2,
		MaxComponentSize: 4,
		KParts:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SplitComponents != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// One value per cell.
	seen := map[string]model.Value{}
	for _, a := range as {
		if prev, ok := seen[a.Key()]; ok && !prev.Equal(a.Value) {
			t.Fatalf("cell %s assigned both %v and %v", a.Key(), prev, a.Value)
		}
		seen[a.Key()] = a.Value
	}
}

func TestHypergraphLargeStarComponentFast(t *testing.T) {
	// A dirty cell conflicting with 20000 others: the indexed greedy must
	// finish quickly (the taxdc regression).
	hub := model.NewCell(0, 5, "rate", model.F(99))
	var fs []model.FixSet
	for i := int64(1); i <= 20000; i++ {
		other := model.NewCell(i, 5, "rate", model.F(float64(i%40)))
		fs = append(fs, model.FixSet{
			Violation: model.NewViolation("dc", hub, other),
			Fixes:     []model.Fix{model.NewCellFix(hub, model.OpLE, other)},
		})
	}
	algo := &Hypergraph{}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("hub must be repaired")
	}
	// The chosen value must satisfy the LE fix against the minimum.
	for _, a := range as {
		if a.TupleID == 0 && a.Value.Float() > 0 {
			t.Errorf("hub assigned %v; <= all others requires <= 0", a.Value)
		}
	}
}

func TestDistributedEquivalenceClassNoEngine(t *testing.T) {
	algo := &DistributedEquivalenceClass{}
	if _, err := algo.Repair([]model.FixSet{fdFixSet("fd", 1, 2, "A", "B")}); err == nil {
		t.Error("missing engine should error")
	}
}
