package repair

import (
	"sort"

	"bigdansing/internal/model"
)

// Hypergraph is the greedy hypergraph-based repair algorithm in the spirit
// of Holistic Data Cleaning [6], which BigDansing uses for denial
// constraints with ordering comparisons: repeatedly pick the cell covering
// the most unresolved violations (a greedy vertex cover of the violation
// hypergraph) and assign it a value that satisfies as many of its fixes as
// possible. Where the original uses quadratic programming to place numeric
// values, this implementation scores a bounded sample of candidate values
// (always including the extremes, which satisfy one-sided inequality sets
// outright) — the approximation the evaluation's Table 4 measures by
// distance to the ground truth rather than by exact match.
//
// Changing a cell only affects the violations that reference it, so the
// algorithm maintains a per-cell index and rescans only the touched
// violations per pick, keeping each pick near-linear in the picked cell's
// degree rather than in the component size.
type Hypergraph struct {
	// Epsilon is the nudge applied to satisfy strict inequalities on
	// numeric cells (default 1).
	Epsilon float64
	// MaxCandidates bounds the distinct candidate values scored per pick
	// (default 32); the sample always includes the minimum and maximum.
	MaxCandidates int
}

// Name implements Algorithm.
func (h *Hypergraph) Name() string { return "hypergraph" }

// Repair implements Algorithm.
func (h *Hypergraph) Repair(component []model.FixSet) ([]Assignment, error) {
	eps := h.Epsilon
	if eps == 0 {
		eps = 1
	}
	maxCand := h.MaxCandidates
	if maxCand <= 0 {
		maxCand = 32
	}

	// Current values and metadata per cell; per-cell violation index. All
	// maps key on comparable model.CellKey structs, so indexing a cell never
	// renders a string.
	current := map[model.CellKey]model.Value{}
	meta := map[model.CellKey]model.Cell{}
	touching := map[model.CellKey][]int{} // cell -> indexes of fix sets whose FIXES reference it
	for i, fs := range component {
		for _, c := range fs.Violation.Cells {
			current[c.MapKey()] = c.Value
			meta[c.MapKey()] = c
		}
		seen := map[model.CellKey]bool{}
		for _, f := range fs.Fixes {
			for _, c := range f.Cells() {
				k := c.MapKey()
				current[k] = c.Value
				meta[k] = c
				if !seen[k] {
					seen[k] = true
					touching[k] = append(touching[k], i)
				}
			}
		}
	}

	fixSatisfied := func(f model.Fix) bool {
		l := current[f.Left.MapKey()]
		r := f.RightConst
		if f.RightIsCell {
			r = current[f.RightCell.MapKey()]
		}
		return f.Op.Eval(l, r)
	}
	violationResolved := func(fs model.FixSet) bool {
		for _, f := range fs.Fixes {
			if fixSatisfied(f) {
				return true
			}
		}
		return false
	}

	// Initial resolution state and per-cell degrees.
	resolved := make([]bool, len(component))
	unresolvedCount := 0
	degree := map[model.CellKey]int{}
	for i, fs := range component {
		if len(fs.Fixes) == 0 {
			resolved[i] = true // unrepairable; not our problem
			continue
		}
		if violationResolved(fs) {
			resolved[i] = true
			continue
		}
		unresolvedCount++
		seen := map[model.CellKey]bool{}
		for _, f := range fs.Fixes {
			for _, c := range f.Cells() {
				if k := c.MapKey(); !seen[k] {
					seen[k] = true
					degree[k]++
				}
			}
		}
	}

	var out []Assignment
	assigned := map[model.CellKey]bool{}
	for unresolvedCount > 0 {
		// Pick the unassigned cell with the highest degree.
		var pick model.CellKey
		best, havePick := 0, false
		for k, d := range degree {
			if assigned[k] || d <= 0 {
				continue
			}
			if !havePick || d > best || (d == best && k.Less(pick)) {
				pick, best, havePick = k, d, true
			}
		}
		if !havePick || best == 0 {
			break // nothing left that could resolve anything
		}

		// Candidate values from the unresolved violations touching pick.
		var candidates []model.Value
		for _, vi := range touching[pick] {
			if resolved[vi] {
				continue
			}
			for _, f := range component[vi].Fixes {
				if v, ok := h.candidateFor(pick, f, current, eps); ok {
					candidates = append(candidates, v)
				}
			}
		}
		candidates = sampleCandidates(candidates, maxCand)
		if len(candidates) == 0 {
			assigned[pick] = true // cannot move this cell; try others
			continue
		}

		// Score candidates against the touched unresolved violations only.
		prev := current[pick]
		bestVal, bestScore := prev, -1
		for _, cand := range candidates {
			current[pick] = cand
			score := 0
			for _, vi := range touching[pick] {
				if !resolved[vi] && violationResolved(component[vi]) {
					score++
				}
			}
			if score > bestScore || (score == bestScore && model.Compare(cand, bestVal) < 0) {
				bestVal, bestScore = cand, score
			}
		}
		current[pick] = bestVal
		assigned[pick] = true
		if !bestVal.Equal(prev) {
			c := meta[pick]
			out = append(out, Assignment{TupleID: c.TupleID, Col: c.Col, Attr: c.Attr, Value: bestVal})
		}

		// Update resolution state and degrees for the touched violations.
		for _, vi := range touching[pick] {
			if resolved[vi] {
				continue
			}
			if violationResolved(component[vi]) {
				resolved[vi] = true
				unresolvedCount--
				seen := map[model.CellKey]bool{}
				for _, f := range component[vi].Fixes {
					for _, c := range f.Cells() {
						if k := c.MapKey(); !seen[k] {
							seen[k] = true
							degree[k]--
						}
					}
				}
			}
		}
		if bestScore == 0 {
			// The pick resolved nothing; its degree entry is exhausted so
			// the loop moves on (assigned[pick] prevents reselection).
			continue
		}
	}
	out = dedupeAssignments(out)
	sortAssignments(out)
	return out, nil
}

// sampleCandidates dedupes candidate values and, when there are more than
// max, returns an evenly spaced sample of the sorted values that always
// includes the extremes.
func sampleCandidates(cands []model.Value, max int) []model.Value {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return model.Compare(cands[i], cands[j]) < 0 })
	uniq := cands[:1]
	for _, v := range cands[1:] {
		if !v.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) <= max {
		return uniq
	}
	out := make([]model.Value, 0, max)
	for i := 0; i < max; i++ {
		idx := i * (len(uniq) - 1) / (max - 1)
		out = append(out, uniq[idx])
	}
	return out
}

// candidateFor derives, from one fix, a value for cell key that would
// satisfy the fix, if the fix references the cell.
func (h *Hypergraph) candidateFor(key model.CellKey, f model.Fix, current map[model.CellKey]model.Value, eps float64) (model.Value, bool) {
	if f.Left.MapKey() == key {
		target := f.RightConst
		if f.RightIsCell {
			target = current[f.RightCell.MapKey()]
		}
		return valueSatisfying(f.Op, target, eps)
	}
	if f.RightIsCell && f.RightCell.MapKey() == key {
		// key is the right operand: key must satisfy left op key, i.e.
		// key flip(op) left.
		return valueSatisfying(f.Op.Flip(), current[f.Left.MapKey()], eps)
	}
	return model.Value{}, false
}

// valueSatisfying returns a value v with v op target.
func valueSatisfying(op model.Op, target model.Value, eps float64) (model.Value, bool) {
	switch op {
	case model.OpEQ, model.OpLE, model.OpGE:
		return target, true
	case model.OpLT:
		return model.F(target.Float() - eps), true
	case model.OpGT:
		return model.F(target.Float() + eps), true
	case model.OpNEQ:
		if target.Kind == model.KindString {
			return model.S(target.Str + "'"), true
		}
		return model.F(target.Float() + eps), true
	default:
		return model.Value{}, false
	}
}
