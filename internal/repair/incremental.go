package repair

import (
	"sync"

	"bigdansing/internal/model"
)

// ClassMemory is the persistent equivalence-class repair state of a
// streaming cleanse session: for every cell a past repair round drove to a
// value, it remembers that value. Later rounds consult the memory as one
// extra vote per remembered cell, which makes streaming repair *sticky* —
// a class that already converged on a target keeps pulling newly ingested
// dirty tuples toward the same target instead of flip-flopping when a batch
// briefly shifts the value frequencies (the cumulative repair context of
// Bleach-style streaming cleaners).
//
// The memory is updated in place between flushes rather than rebuilt: a
// session records the assignments it applied after each flush, and the
// equivalence-class algorithm reads it (concurrently, one goroutine per
// repair component) through the Prior hook. It is safe for concurrent use.
type ClassMemory struct {
	mu    sync.RWMutex
	prefs map[model.CellKey]model.Value
}

// NewClassMemory builds an empty memory.
func NewClassMemory() *ClassMemory {
	return &ClassMemory{prefs: map[model.CellKey]model.Value{}}
}

// Record remembers the target value of each applied assignment. Frozen
// cells are skipped: a pinned cell must not keep voting for a value the
// termination device stopped it from reaching.
func (m *ClassMemory) Record(as []Assignment, frozen map[model.CellKey]bool) {
	if m == nil || len(as) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range as {
		k := a.CellKey()
		if frozen[k] {
			continue
		}
		m.prefs[k] = a.Value
	}
}

// Prefer returns the remembered value for a cell, if any. It implements the
// EquivalenceClass.Prior hook.
func (m *ClassMemory) Prefer(k model.CellKey) (model.Value, bool) {
	if m == nil {
		return model.Value{}, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.prefs[k]
	return v, ok
}

// Forget drops the memory of one cell (a caller applying an out-of-band
// edit invalidates what repair learned about it).
func (m *ClassMemory) Forget(k model.CellKey) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.prefs, k)
}

// Len reports how many cells are remembered.
func (m *ClassMemory) Len() int {
	if m == nil {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.prefs)
}
