package repair

import (
	"sync"
	"testing"

	"bigdansing/internal/model"
)

// TestClassMemoryBiasesTarget: with two values tied in frequency, the
// remembered value from a previous flush must win; without memory the tie
// breaks lexicographically.
func TestClassMemoryBiasesTarget(t *testing.T) {
	// Two cells, values "Zed" and "Alpha": tied 1-1, the plain algorithm
	// picks "Alpha" (smaller rendered value).
	comp := []model.FixSet{fdFixSet("phi", 1, 2, "Zed", "Alpha")}
	plain := &EquivalenceClass{}
	as, err := plain.Repair(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Value.String() != "Alpha" {
		t.Fatalf("plain tie-break: %v", as)
	}

	// A memory that drove cell (1, city) to "Zed" earlier flips the vote.
	mem := NewClassMemory()
	mem.Record([]Assignment{{TupleID: 1, Col: 2, Attr: "city", Value: model.S("Zed")}}, nil)
	sticky := &EquivalenceClass{Prior: mem}
	as, err = sticky.Repair(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Value.String() != "Zed" {
		t.Fatalf("memory should bias the class to Zed: %v", as)
	}
	if as[0].TupleID != 2 {
		t.Fatalf("the Alpha cell should be repaired, got tuple %d", as[0].TupleID)
	}
}

// TestClassMemorySkipsFrozen: assignments on frozen cells are not
// remembered — a pinned cell must not keep campaigning for its value.
func TestClassMemorySkipsFrozen(t *testing.T) {
	mem := NewClassMemory()
	frozen := map[model.CellKey]bool{{TupleID: 7, Col: 2}: true}
	mem.Record([]Assignment{
		{TupleID: 7, Col: 2, Attr: "city", Value: model.S("X")},
		{TupleID: 8, Col: 2, Attr: "city", Value: model.S("Y")},
	}, frozen)
	if _, ok := mem.Prefer(model.CellKey{TupleID: 7, Col: 2}); ok {
		t.Error("frozen cell remembered")
	}
	if v, ok := mem.Prefer(model.CellKey{TupleID: 8, Col: 2}); !ok || v.String() != "Y" {
		t.Errorf("unfrozen cell forgotten: %v %v", v, ok)
	}
	if mem.Len() != 1 {
		t.Errorf("Len = %d", mem.Len())
	}
	mem.Forget(model.CellKey{TupleID: 8, Col: 2})
	if mem.Len() != 0 {
		t.Errorf("Forget left %d entries", mem.Len())
	}
}

// TestClassMemoryConcurrent: Prefer is called from one goroutine per repair
// component while Record runs between rounds; the memory must be race-free.
func TestClassMemoryConcurrent(t *testing.T) {
	mem := NewClassMemory()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64(w*200 + i)
				mem.Record([]Assignment{{TupleID: id, Col: 1, Value: model.I(id)}}, nil)
				mem.Prefer(model.CellKey{TupleID: id, Col: 1})
			}
		}(w)
	}
	wg.Wait()
	if mem.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", mem.Len())
	}
}
