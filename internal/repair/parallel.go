package repair

import (
	"fmt"
	"sort"
	"sync"

	"bigdansing/internal/engine"
	"bigdansing/internal/graph"
	"bigdansing/internal/model"
)

// Options configures the parallel black-box repair of Section 5.1.
type Options struct {
	// Parallelism bounds concurrent repair instances (<=0: 4).
	Parallelism int
	// MaxComponentSize is the hyperedge count above which a connected
	// component is split k-ways across repair instances, emulating the
	// "component does not fit in memory" case (<=0: no splitting).
	MaxComponentSize int
	// KParts is the split fan-out for oversized components (<=0: 2).
	KParts int
	// MaxReconcileIters bounds the master/slave reconciliation loop
	// (<=0: 10).
	MaxReconcileIters int
	// Observer, when set, receives the repair's phase spans (component
	// discovery, the parallel instances, reconciliation rounds). Nil means
	// no reporting.
	Observer engine.Observer
}

// Report describes one parallel repair run.
type Report struct {
	Components      int
	SplitComponents int
	Conflicts       int
	Assignments     int
}

// RepairParallel runs the centralized algorithm algo as a black box over
// the violations, in parallel (Section 5.1):
//
//  1. the fix sets form a hypergraph (nodes: elements; hyperedges: the
//     elements of one violation plus its fixes) over comparable cell keys;
//  2. its connected components are computed by interning the cells to dense
//     integer IDs and running a lock-free union-find across the worker pool
//     (the role GraphX's connectedComponents plays in Figure 7);
//  3. each component becomes an independent repair instance;
//  4. components larger than MaxComponentSize are split k-ways; the first
//     part plays master and its changes are immutable — a slave assignment
//     contradicting a master (or earlier-slave) assignment is undone and
//     re-repaired in the next reconciliation iteration (Example 2's
//     protocol), which always terminates because settled values never
//     change again.
func RepairParallel(fixSets []model.FixSet, algo Algorithm, opts Options) ([]Assignment, *Report, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.KParts <= 0 {
		opts.KParts = 2
	}
	if opts.MaxReconcileIters <= 0 {
		opts.MaxReconcileIters = 10
	}
	obs := opts.Observer
	if obs == nil {
		obs = engine.Discard
	}
	report := &Report{}
	if len(fixSets) == 0 {
		return nil, report, nil
	}
	sp := obs.BeginSpan(nil, "repair", engine.SpanRepair)
	defer sp.End()
	sp.Attr(engine.AttrAlgorithm, AlgorithmCode(algo.Name()))

	// 1-2. Connected components over interned cell IDs (parallel
	// union-find); the per-fix-set cell keys are reused for splitting.
	csp := obs.BeginSpan(sp, "components", engine.SpanRepair)
	cc, cellKeys := fixSetComponents(fixSets, opts.Parallelism)
	byComp := map[int64][]int{}
	for i := range fixSets {
		byComp[cc[i]] = append(byComp[cc[i]], i)
	}
	report.Components = len(byComp)
	csp.Attr(engine.AttrComponents, int64(len(byComp)))
	csp.End()

	compIDs := make([]int64, 0, len(byComp))
	for id := range byComp {
		compIDs = append(compIDs, id)
	}
	sort.Slice(compIDs, func(i, j int) bool { return compIDs[i] < compIDs[j] })

	// 3-4. Repair instances in parallel. Instance spans pass their parent
	// explicitly — they begin concurrently, so the observer's scoped
	// nesting cannot apply. Per-slot conflict counts are summed after the
	// join; the instances never write shared state.
	isp := obs.BeginSpan(sp, "instances", engine.SpanRepair)
	results := make([][]Assignment, len(compIDs))
	errs := make([]error, len(compIDs))
	splits := make([]bool, len(compIDs))
	conflicts := make([]int, len(compIDs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Parallelism)
	for i, id := range compIDs {
		wg.Add(1)
		go func(slot int, compID int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			esp := obs.BeginSpan(isp, "instance", engine.SpanRepair)
			defer func() {
				esp.Attr(engine.AttrPart, int64(slot))
				esp.Attr(engine.AttrAssignments, int64(len(results[slot])))
				esp.Attr(engine.AttrConflicts, int64(conflicts[slot]))
				esp.End()
				if r := recover(); r != nil {
					errs[slot] = fmt.Errorf("repair: instance for component %d panicked: %v", compID, r)
				}
			}()
			comp := make([]model.FixSet, len(byComp[compID]))
			keys := make([][]model.CellKey, len(byComp[compID]))
			for j, fi := range byComp[compID] {
				comp[j] = fixSets[fi]
				keys[j] = cellKeys[fi]
			}
			if opts.MaxComponentSize > 0 && len(comp) > opts.MaxComponentSize {
				splits[slot] = true
				as, nc, err := repairSplit(comp, keys, algo, opts, obs, esp)
				conflicts[slot] = nc
				results[slot], errs[slot] = as, err
				return
			}
			as, err := repairWith(algo, comp, obs, esp)
			results[slot], errs[slot] = as, err
		}(i, id)
	}
	wg.Wait()
	isp.End()
	var all []Assignment
	for i := range results {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		if splits[i] {
			report.SplitComponents++
		}
		report.Conflicts += conflicts[i]
		all = append(all, results[i]...)
	}
	all = dedupeAssignments(all)
	sortAssignments(all)
	report.Assignments = len(all)
	sp.Attr(engine.AttrComponents, int64(report.Components))
	sp.Attr(engine.AttrSplitComponents, int64(report.SplitComponents))
	sp.Attr(engine.AttrConflicts, int64(report.Conflicts))
	sp.Attr(engine.AttrAssignments, int64(report.Assignments))
	return all, report, nil
}

// repairWith runs one repair instance, routing span-reporting algorithms
// through RepairSpanned with the explicit parent the concurrent-span
// contract requires.
func repairWith(algo Algorithm, component []model.FixSet, obs engine.Observer, parent engine.Span) ([]Assignment, error) {
	if sa, ok := algo.(SpanAlgorithm); ok {
		return sa.RepairSpanned(component, obs, parent)
	}
	return algo.Repair(component)
}

// repairSplit handles one oversized component: split it k-ways with the
// greedy hypergraph partitioner, run the algorithm per part, and reconcile
// under the master-immutable protocol. keys carries each fix set's cell
// keys, parallel to comp. Each reconciliation iteration is reported as a
// span under parent (explicitly — the caller runs concurrently with its
// sibling instances).
func repairSplit(comp []model.FixSet, keys [][]model.CellKey, algo Algorithm, opts Options, obs engine.Observer, parent engine.Span) ([]Assignment, int, error) {
	edges := make([]graph.HyperedgeOf[model.CellKey], len(comp))
	for i := range comp {
		edges[i] = graph.HyperedgeOf[model.CellKey]{ID: int64(i), Nodes: keys[i]}
	}
	parts := graph.NewHypergraphOf(edges).PartitionKWay(opts.KParts)

	// immutable holds settled cell values; once a cell lands here it can
	// never change, which guarantees the loop reaches a fixpoint.
	immutable := map[model.CellKey]model.Value{}
	var accepted []Assignment
	conflicts := 0

	pending := make([][]model.FixSet, len(parts))
	pendingKeys := make([][][]model.CellKey, len(parts))
	for pi, part := range parts {
		sub := make([]model.FixSet, len(part))
		subKeys := make([][]model.CellKey, len(part))
		for j, e := range part {
			sub[j] = comp[e.ID]
			subKeys[j] = keys[e.ID]
		}
		pending[pi] = sub
		pendingKeys[pi] = subKeys
	}

	for iter := 0; iter < opts.MaxReconcileIters; iter++ {
		rsp := obs.BeginSpan(parent, "reconcile", engine.SpanRepair)
		conflictsBefore := conflicts
		anyPending := false
		progressed := false
		for pi := range pending {
			if len(pending[pi]) == 0 {
				continue
			}
			anyPending = true
			as, err := repairWith(algo, pending[pi], obs, rsp)
			if err != nil {
				rsp.End()
				return nil, conflicts, err
			}
			var redo []model.FixSet
			var redoKeys [][]model.CellKey
			conflicted := map[model.CellKey]bool{}
			for _, a := range as {
				k := a.CellKey()
				if v, settled := immutable[k]; settled {
					if !v.Equal(a.Value) {
						// Contradicts an immutable (master/earlier) change:
						// undo and retry next iteration.
						conflicts++
						conflicted[k] = true
					}
					continue
				}
				immutable[k] = a.Value
				accepted = append(accepted, a)
				progressed = true
			}
			if len(conflicted) > 0 {
				// Re-queue the fix sets whose repairs were undone, with the
				// settled values substituted in so the retry proposes
				// repairs consistent with the master's choices.
				for fi, fs := range pending[pi] {
					for _, k := range pendingKeys[pi][fi] {
						if conflicted[k] {
							redo = append(redo, substituteSettled(fs, immutable))
							redoKeys = append(redoKeys, pendingKeys[pi][fi])
							break
						}
					}
				}
			}
			pending[pi] = redo
			pendingKeys[pi] = redoKeys
		}
		rsp.Attr(engine.AttrConflicts, int64(conflicts-conflictsBefore))
		rsp.Attr(engine.AttrAssignments, int64(len(accepted)))
		rsp.End()
		if !anyPending {
			break
		}
		if !progressed {
			// Every remaining repair contradicts settled values; the
			// conflicting fixes are dropped (their cells are frozen).
			break
		}
	}
	sortAssignments(accepted)
	return accepted, conflicts, nil
}

// substituteSettled rewrites a fix set so every cell that has a settled
// (immutable) value carries it, letting a retried repair instance reason
// from the master's state instead of the stale captured values.
func substituteSettled(fs model.FixSet, settled map[model.CellKey]model.Value) model.FixSet {
	subCell := func(c model.Cell) model.Cell {
		if v, ok := settled[c.MapKey()]; ok {
			c.Value = v
		}
		return c
	}
	out := model.FixSet{Violation: model.Violation{RuleID: fs.Violation.RuleID}}
	for _, c := range fs.Violation.Cells {
		out.Violation.Cells = append(out.Violation.Cells, subCell(c))
	}
	for _, f := range fs.Fixes {
		f.Left = subCell(f.Left)
		if f.RightIsCell {
			f.RightCell = subCell(f.RightCell)
		}
		out.Fixes = append(out.Fixes, f)
	}
	return out
}
