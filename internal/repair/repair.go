// Package repair implements BigDansing's repair side (Section 5): the
// violation hypergraph, the parallel black-box wrapper that runs any
// centralized repair algorithm per connected component (Section 5.1,
// including the k-way split with the master/slave reconciliation protocol
// for components that exceed one worker's capacity), the equivalence-class
// algorithm [5] in both centralized and natively distributed
// (two map-reduce sequences, Section 5.2) forms, and a hypergraph-based
// greedy repair for denial constraints [6].
package repair

import (
	"fmt"
	"strconv"

	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// Assignment is one chosen update: set cell (TupleID, Col) to Value.
type Assignment struct {
	TupleID int64
	Col     int
	Attr    string
	Value   model.Value
}

// CellKey identifies the assigned cell as a comparable key — the form the
// hot paths (Apply, dedupe, freezing) group on.
func (a Assignment) CellKey() model.CellKey {
	return model.CellKey{TupleID: a.TupleID, Col: a.Col}
}

// Key renders the assigned cell's identity for diagnostics and logs.
func (a Assignment) Key() string {
	return strconv.FormatInt(a.TupleID, 10) + "#" + strconv.Itoa(a.Col)
}

// String renders the assignment.
func (a Assignment) String() string {
	return fmt.Sprintf("t%d.%s := %s", a.TupleID, a.Attr, a.Value)
}

// Algorithm is a (centralized) repair algorithm: given the fix sets of one
// connected component, choose the updates that resolve them. BigDansing
// treats implementations as black boxes (Section 5.1); users can plug in
// their own.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Repair chooses updates for one component's violations.
	Repair(component []model.FixSet) ([]Assignment, error)
}

// Fitter is implemented by algorithms that learn from the data before
// repairing (the probabilistic backend fits factor weights on the clean
// portion of the relation). The cleansing loop calls Fit once per flush,
// on the first detect-repair round, with the full relation and the
// actionable fix sets; obs (which may be nil) receives the learning spans.
type Fitter interface {
	Fit(rel *model.Relation, fixSets []model.FixSet, obs engine.Observer) error
}

// Cloner is implemented by algorithms that carry per-session mutable state
// (learned weights, caches). Sessions clone the configured algorithm so
// concurrent sessions sharing one Cleaner never share that state.
type Cloner interface {
	CloneAlgorithm() Algorithm
}

// SpanAlgorithm is implemented by algorithms that report Observer spans of
// their own (compilation, inference). Callers that run components
// concurrently — RepairParallel's instances — use it to hand the explicit
// parent span the tracer's concurrency contract requires; serial callers
// pass their enclosing span (or nil for scoped nesting).
type SpanAlgorithm interface {
	Algorithm
	RepairSpanned(component []model.FixSet, obs engine.Observer, parent engine.Span) ([]Assignment, error)
}

// Algorithm codes for the enum-keyed AttrAlgorithm span attribute, so
// -explain and trace exports can tell which algorithm a repair span ran.
const (
	AlgoUnknown int64 = iota
	AlgoEquivalenceClass
	AlgoHypergraph
	AlgoSampling
	AlgoDistributedEq
	AlgoProb
)

// AlgorithmCode maps an algorithm's Name to its span-attribute code
// (AlgoUnknown for user-supplied algorithms).
func AlgorithmCode(name string) int64 {
	switch name {
	case "equivalence-class":
		return AlgoEquivalenceClass
	case "hypergraph":
		return AlgoHypergraph
	case "sampling":
		return AlgoSampling
	case "equivalence-class-mr":
		return AlgoDistributedEq
	case "prob":
		return AlgoProb
	}
	return AlgoUnknown
}

// Apply materializes assignments into the relation, skipping cells in
// frozen (the termination device of Section 2.2). It returns the number of
// cells actually changed.
func Apply(rel *model.Relation, assignments []Assignment, frozen map[model.CellKey]bool) int {
	idx := rel.ByID()
	changed := 0
	for _, a := range assignments {
		if frozen != nil && frozen[a.CellKey()] {
			continue
		}
		if rel.Apply(idx, a.TupleID, a.Col, a.Value) {
			changed++
		}
	}
	return changed
}

// DistanceFunc measures how far a repair value moved from the original;
// exact matches must return 0 (the cost model of Section 2.1).
type DistanceFunc func(original, repaired model.Value) float64

// UnitDistance is the exact-match distance: 0 when equal, 1 otherwise.
func UnitDistance(a, b model.Value) float64 {
	if a.Equal(b) {
		return 0
	}
	return 1
}

// Cost sums dis(original, repaired) over all assignments, given the
// original relation — the repair cost the algorithms greedily minimize.
func Cost(rel *model.Relation, assignments []Assignment, dis DistanceFunc) float64 {
	if dis == nil {
		dis = UnitDistance
	}
	idx := rel.ByID()
	total := 0.0
	for _, a := range assignments {
		i, ok := idx[a.TupleID]
		if !ok {
			continue
		}
		total += dis(rel.Tuples[i].Cell(a.Col), a.Value)
	}
	return total
}

// dedupeAssignments keeps the first assignment per cell.
func dedupeAssignments(as []Assignment) []Assignment {
	seen := make(map[model.CellKey]bool, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.CellKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}
