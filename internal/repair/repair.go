// Package repair implements BigDansing's repair side (Section 5): the
// violation hypergraph, the parallel black-box wrapper that runs any
// centralized repair algorithm per connected component (Section 5.1,
// including the k-way split with the master/slave reconciliation protocol
// for components that exceed one worker's capacity), the equivalence-class
// algorithm [5] in both centralized and natively distributed
// (two map-reduce sequences, Section 5.2) forms, and a hypergraph-based
// greedy repair for denial constraints [6].
package repair

import (
	"fmt"
	"sort"

	"bigdansing/internal/model"
)

// Assignment is one chosen update: set cell (TupleID, Col) to Value.
type Assignment struct {
	TupleID int64
	Col     int
	Attr    string
	Value   model.Value
}

// Key identifies the assigned cell.
func (a Assignment) Key() string { return fmt.Sprintf("%d#%d", a.TupleID, a.Col) }

// String renders the assignment.
func (a Assignment) String() string {
	return fmt.Sprintf("t%d.%s := %s", a.TupleID, a.Attr, a.Value)
}

// Algorithm is a (centralized) repair algorithm: given the fix sets of one
// connected component, choose the updates that resolve them. BigDansing
// treats implementations as black boxes (Section 5.1); users can plug in
// their own.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Repair chooses updates for one component's violations.
	Repair(component []model.FixSet) ([]Assignment, error)
}

// Apply materializes assignments into the relation, skipping cells in
// frozen (the termination device of Section 2.2). It returns the number of
// cells actually changed.
func Apply(rel *model.Relation, assignments []Assignment, frozen map[string]bool) int {
	idx := rel.ByID()
	changed := 0
	for _, a := range assignments {
		if frozen != nil && frozen[a.Key()] {
			continue
		}
		if rel.Apply(idx, a.TupleID, a.Col, a.Value) {
			changed++
		}
	}
	return changed
}

// DistanceFunc measures how far a repair value moved from the original;
// exact matches must return 0 (the cost model of Section 2.1).
type DistanceFunc func(original, repaired model.Value) float64

// UnitDistance is the exact-match distance: 0 when equal, 1 otherwise.
func UnitDistance(a, b model.Value) float64 {
	if a.Equal(b) {
		return 0
	}
	return 1
}

// Cost sums dis(original, repaired) over all assignments, given the
// original relation — the repair cost the algorithms greedily minimize.
func Cost(rel *model.Relation, assignments []Assignment, dis DistanceFunc) float64 {
	if dis == nil {
		dis = UnitDistance
	}
	idx := rel.ByID()
	total := 0.0
	for _, a := range assignments {
		i, ok := idx[a.TupleID]
		if !ok {
			continue
		}
		total += dis(rel.Tuples[i].Cell(a.Col), a.Value)
	}
	return total
}

// cellsOfFixSet collects the distinct cell keys a fix set touches — the
// nodes its hyperedge covers (violation cells plus fix cells).
func cellsOfFixSet(fs model.FixSet) []string {
	seen := map[string]bool{}
	var out []string
	add := func(c model.Cell) {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, c := range fs.Violation.Cells {
		add(c)
	}
	for _, f := range fs.Fixes {
		for _, c := range f.Cells() {
			add(c)
		}
	}
	sort.Strings(out)
	return out
}

// dedupeAssignments keeps the first assignment per cell.
func dedupeAssignments(as []Assignment) []Assignment {
	seen := map[string]bool{}
	out := as[:0]
	for _, a := range as {
		if seen[a.Key()] {
			continue
		}
		seen[a.Key()] = true
		out = append(out, a)
	}
	return out
}
