package repair

import (
	"fmt"
	"testing"

	"bigdansing/internal/mapred"
	"bigdansing/internal/model"
)

// fdFixSet builds the fix set of an FD violation: two city cells that must
// become equal.
func fdFixSet(rule string, t1, t2 int64, v1, v2 string) model.FixSet {
	c1 := model.NewCell(t1, 2, "city", model.S(v1))
	c2 := model.NewCell(t2, 2, "city", model.S(v2))
	return model.FixSet{
		Violation: model.NewViolation(rule, c1, c2),
		Fixes:     []model.Fix{model.NewCellFix(c1, model.OpEQ, c2)},
	}
}

func TestEquivalenceClassMajorityWins(t *testing.T) {
	// Cells: t1=LA, t2=LA, t3=SF all linked -> target LA (majority).
	fs := []model.FixSet{
		fdFixSet("fd", 1, 3, "LA", "SF"),
		fdFixSet("fd", 2, 3, "LA", "SF"),
	}
	algo := &EquivalenceClass{}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("assignments = %v, want only t3 -> LA", as)
	}
	if as[0].TupleID != 3 || as[0].Value != model.S("LA") {
		t.Errorf("assignment = %v", as[0])
	}
}

func TestEquivalenceClassDeterministicTieBreak(t *testing.T) {
	fs := []model.FixSet{fdFixSet("fd", 1, 2, "SF", "LA")}
	algo := &EquivalenceClass{}
	as1, _ := algo.Repair(fs)
	as2, _ := algo.Repair(fs)
	if len(as1) != 1 || len(as2) != 1 {
		t.Fatalf("tie should produce one assignment: %v / %v", as1, as2)
	}
	if as1[0] != as2[0] {
		t.Error("tie break should be deterministic")
	}
	// Smaller rendered value wins ties.
	if as1[0].Value != model.S("LA") {
		t.Errorf("tie winner = %v, want LA", as1[0].Value)
	}
}

func TestEquivalenceClassConstantWins(t *testing.T) {
	// A CFD-style constant fix outweighs the frequency vote.
	c1 := model.NewCell(1, 2, "city", model.S("SF"))
	c2 := model.NewCell(2, 2, "city", model.S("SF"))
	fs := []model.FixSet{
		{
			Violation: model.NewViolation("cfd", c1, c2),
			Fixes: []model.Fix{
				model.NewCellFix(c1, model.OpEQ, c2),
				model.NewConstFix(c1, model.OpEQ, model.S("LA")),
			},
		},
	}
	algo := &EquivalenceClass{}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("assignments = %v, want both cells -> LA", as)
	}
	for _, a := range as {
		if a.Value != model.S("LA") {
			t.Errorf("constant should win: %v", a)
		}
	}
}

func TestEquivalenceClassSingletonUntouched(t *testing.T) {
	// A violation with no equality fixes leaves cells alone.
	c := model.NewCell(1, 0, "a", model.S("x"))
	fs := []model.FixSet{{Violation: model.NewViolation("r", c)}}
	algo := &EquivalenceClass{}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 0 {
		t.Errorf("assignments = %v, want none", as)
	}
}

func TestHypergraphRepairSatisfiesDCFixes(t *testing.T) {
	// φD-style violation: t1.rate=15 > t2.rate=10 while t1.salary < t2.salary.
	// Fixes: rate1 <= rate2 or salary1 >= salary2.
	r1 := model.NewCell(1, 5, "rate", model.F(15))
	r2 := model.NewCell(2, 5, "rate", model.F(10))
	s1 := model.NewCell(1, 4, "salary", model.F(24000))
	s2 := model.NewCell(2, 4, "salary", model.F(25000))
	fs := []model.FixSet{{
		Violation: model.NewViolation("dc", r1, r2, s1, s2),
		Fixes: []model.Fix{
			model.NewCellFix(r1, model.OpLE, r2),
			model.NewCellFix(s1, model.OpGE, s2),
		},
	}}
	algo := &Hypergraph{}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("hypergraph repair should act")
	}
	// Apply mentally: at least one fix must hold afterwards.
	vals := map[string]model.Value{
		r1.Key(): r1.Value, r2.Key(): r2.Value,
		s1.Key(): s1.Value, s2.Key(): s2.Value,
	}
	for _, a := range as {
		vals[fmt.Sprintf("%d#%d", a.TupleID, a.Col)] = a.Value
	}
	rateOK := model.Compare(vals[r1.Key()], vals[r2.Key()]) <= 0
	salOK := model.Compare(vals[s1.Key()], vals[s2.Key()]) >= 0
	if !rateOK && !salOK {
		t.Errorf("no fix satisfied after repair: %v", as)
	}
}

func TestHypergraphRepairGreedyCoverSharedCell(t *testing.T) {
	// Example 2's shape: two FDs overlap on the same B cell; repairing B
	// once should resolve both violations with a single assignment.
	b1 := model.NewCell(1, 1, "B", model.S("b1"))
	b2 := model.NewCell(2, 1, "B", model.S("b2"))
	fs := []model.FixSet{
		{
			Violation: model.NewViolation("fd1", b1, b2),
			Fixes:     []model.Fix{model.NewCellFix(b1, model.OpEQ, b2)},
		},
		{
			Violation: model.NewViolation("fd2", b1, b2),
			Fixes:     []model.Fix{model.NewCellFix(b2, model.OpEQ, b1)},
		},
	}
	algo := &Hypergraph{}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Errorf("greedy cover should make one update, got %v", as)
	}
}

func TestHypergraphNoFixesNoAction(t *testing.T) {
	c := model.NewCell(1, 0, "a", model.S("x"))
	fs := []model.FixSet{{Violation: model.NewViolation("r", c)}}
	as, err := (&Hypergraph{}).Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 0 {
		t.Errorf("no fixes -> no assignments, got %v", as)
	}
}

func TestRepairParallelComponentsAreIndependent(t *testing.T) {
	// Two disjoint components repaired in parallel must match the
	// sequential result per component.
	fs := []model.FixSet{
		fdFixSet("fd", 1, 2, "LA", "SF"),
		fdFixSet("fd", 10, 11, "NY", "BO"),
		fdFixSet("fd", 12, 11, "NY", "BO"),
	}
	algo := &EquivalenceClass{}
	as, rep, err := RepairParallel(fs, algo, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 2 {
		t.Errorf("components = %d, want 2", rep.Components)
	}
	byCell := map[string]model.Value{}
	for _, a := range as {
		byCell[a.Key()] = a.Value
	}
	// Component {10,11,12}: NY appears twice, BO once -> t11 becomes NY.
	if v := byCell["11#2"]; v != model.S("NY") {
		t.Errorf("t11 -> %v, want NY", v)
	}
	// Component {1,2}: tie between LA and SF -> deterministic winner LA.
	if v := byCell["2#2"]; v != model.S("LA") {
		t.Errorf("t2 -> %v, want LA", v)
	}
}

func TestRepairParallelMatchesSequential(t *testing.T) {
	var fs []model.FixSet
	for i := int64(0); i < 40; i += 2 {
		city1 := fmt.Sprintf("C%d", i%6)
		city2 := fmt.Sprintf("C%d", (i+2)%6)
		fs = append(fs, fdFixSet("fd", i, i+1, city1, city2))
	}
	algo := &EquivalenceClass{}
	seq, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RepairParallel(fs, algo, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Same set of assignments (components are independent, and within a
	// component the algorithm is deterministic).
	if len(seq) != len(par) {
		t.Fatalf("sequential %d vs parallel %d assignments", len(seq), len(par))
	}
	sk := map[string]string{}
	for _, a := range seq {
		sk[a.Key()] = a.Value.String()
	}
	for _, a := range par {
		if sk[a.Key()] != a.Value.String() {
			t.Errorf("mismatch at %s: %s vs %s", a.Key(), sk[a.Key()], a.Value)
		}
	}
}

func TestRepairParallelSplitsBigComponents(t *testing.T) {
	// One giant star component: all linked to cell of tuple 0.
	var fs []model.FixSet
	for i := int64(1); i <= 30; i++ {
		fs = append(fs, fdFixSet("fd", 0, i, "HUB", fmt.Sprintf("X%d", i)))
	}
	algo := &EquivalenceClass{}
	as, rep, err := RepairParallel(fs, algo, Options{
		Parallelism:      4,
		MaxComponentSize: 10,
		KParts:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 1 || rep.SplitComponents != 1 {
		t.Errorf("report = %+v, want 1 split component", rep)
	}
	// Every X cell should be assigned HUB (majority within each part
	// because the hub cell appears in every fix set).
	for _, a := range as {
		if a.Value != model.S("HUB") && a.TupleID != 0 {
			t.Errorf("assignment %v; expected HUB to dominate", a)
		}
	}
	// No duplicate assignments to one cell.
	seen := map[string]bool{}
	for _, a := range as {
		if seen[a.Key()] {
			t.Errorf("cell %s assigned twice", a.Key())
		}
		seen[a.Key()] = true
	}
}

func TestRepairParallelEmpty(t *testing.T) {
	as, rep, err := RepairParallel(nil, &EquivalenceClass{}, Options{})
	if err != nil || len(as) != 0 || rep.Components != 0 {
		t.Errorf("empty input: %v %v %v", as, rep, err)
	}
}

func TestDistributedEquivalenceClassMatchesCentralized(t *testing.T) {
	eng, err := mapred.New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var fs []model.FixSet
	// Component A: 3 cells, majority LA. Component B: tie SF/NY.
	fs = append(fs,
		fdFixSet("fd", 1, 2, "LA", "LA"),
		fdFixSet("fd", 1, 3, "LA", "SF"),
		fdFixSet("fd", 10, 11, "SF", "NY"),
	)
	centralized := &EquivalenceClass{}
	want, err := centralized.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	distributed := &DistributedEquivalenceClass{Engine: eng, Splits: 3, Reduces: 3}
	got, err := distributed.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("distributed %v vs centralized %v", got, want)
	}
	wk := map[string]string{}
	for _, a := range want {
		wk[a.Key()] = a.Value.String()
	}
	for _, a := range got {
		if wk[a.Key()] != a.Value.String() {
			t.Errorf("cell %s: distributed %s vs centralized %s", a.Key(), a.Value, wk[a.Key()])
		}
	}
}

func TestApplyRespectsFrozenCells(t *testing.T) {
	s := model.MustParseSchema("a,b")
	rel := model.NewRelation("r", s)
	rel.Append(model.NewTuple(1, model.S("x"), model.S("y")))
	as := []Assignment{
		{TupleID: 1, Col: 0, Attr: "a", Value: model.S("new")},
		{TupleID: 1, Col: 1, Attr: "b", Value: model.S("new")},
	}
	frozen := map[model.CellKey]bool{{TupleID: 1, Col: 0}: true}
	changed := Apply(rel, as, frozen)
	if changed != 1 {
		t.Errorf("changed = %d, want 1", changed)
	}
	if rel.Tuples[0].Cell(0) != model.S("x") || rel.Tuples[0].Cell(1) != model.S("new") {
		t.Errorf("tuple = %v", rel.Tuples[0])
	}
}

func TestCost(t *testing.T) {
	s := model.MustParseSchema("a")
	rel := model.NewRelation("r", s)
	rel.Append(model.NewTuple(1, model.S("x")), model.NewTuple(2, model.S("y")))
	as := []Assignment{
		{TupleID: 1, Col: 0, Value: model.S("x")}, // no-op: cost 0
		{TupleID: 2, Col: 0, Value: model.S("z")}, // change: cost 1
	}
	if got := Cost(rel, as, nil); got != 1 {
		t.Errorf("cost = %v, want 1", got)
	}
}
