package repair

import (
	"math/rand"
	"sort"

	"bigdansing/internal/graph"
	"bigdansing/internal/model"
)

// Sampling is a randomized repair in the spirit of sampling FD repairs [4]:
// for each equivalence class it draws the target value at random (weighted
// by frequency) instead of always taking the majority, produces several
// complete candidate repairs, and keeps the cheapest under the exact-match
// cost of Section 2.1. With Samples=1 it degenerates to one random repair;
// as Samples grows it converges to the equivalence-class algorithm's
// minimum-cost choice while preserving the ability to explore ties — the
// use case [4] argues for (downstream consumers seeing repair uncertainty).
type Sampling struct {
	// Samples is the number of candidate repairs drawn (default 7).
	Samples int
	// Seed makes runs reproducible (default 1).
	Seed int64
	// Dis is the distance for costing; nil means UnitDistance.
	Dis DistanceFunc
}

// Name implements Algorithm.
func (s *Sampling) Name() string { return "sampling" }

// Repair implements Algorithm.
func (s *Sampling) Repair(component []model.FixSet) ([]Assignment, error) {
	samples := s.Samples
	if samples <= 0 {
		samples = 7
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	dis := s.Dis
	if dis == nil {
		dis = UnitDistance
	}

	// Build equivalence classes exactly like the equivalence-class
	// algorithm: union cells linked by equality fixes.
	type cellInfo struct {
		cell model.Cell
		id   int64
	}
	ids := map[model.CellKey]*cellInfo{}
	uf := graph.NewUnionFind()
	next := int64(0)
	intern := func(c model.Cell) *cellInfo {
		k := c.MapKey()
		if ci, ok := ids[k]; ok {
			return ci
		}
		ci := &cellInfo{cell: c, id: next}
		next++
		ids[k] = ci
		uf.Add(ci.id)
		return ci
	}
	consts := map[model.CellKey][]model.Value{}
	for _, fs := range component {
		for _, c := range fs.Violation.Cells {
			intern(c)
		}
		for _, f := range fs.Fixes {
			if f.Op != model.OpEQ {
				continue
			}
			l := intern(f.Left)
			if f.RightIsCell {
				uf.Union(l.id, intern(f.RightCell).id)
			} else {
				consts[f.Left.MapKey()] = append(consts[f.Left.MapKey()], f.RightConst)
			}
		}
	}
	classes := map[int64][]*cellInfo{}
	for _, ci := range ids {
		classes[uf.Find(ci.id)] = append(classes[uf.Find(ci.id)], ci)
	}
	// Deterministic class and member order for reproducibility (ids is a
	// map, so both orders would otherwise vary run to run and perturb the
	// weighted draws).
	reps := make([]int64, 0, len(classes))
	for rep, members := range classes {
		reps = append(reps, rep)
		sort.Slice(members, func(i, j int) bool { return members[i].id < members[j].id })
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })

	r := rand.New(rand.NewSource(seed))
	var best []Assignment
	bestCost := -1.0
	for sample := 0; sample < samples; sample++ {
		var cur []Assignment
		cost := 0.0
		for _, rep := range reps {
			members := classes[rep]
			// Candidate pool: member values (weight 1 each) and constants
			// (hard requirements, weighted above everything).
			type cand struct {
				v model.Value
				w int
			}
			var cands, constCands []cand
			bumpIn := func(pool *[]cand, v model.Value, by int) {
				for i := range *pool {
					if (*pool)[i].v.Equal(v) {
						(*pool)[i].w += by
						return
					}
				}
				*pool = append(*pool, cand{v: v, w: by})
			}
			for _, m := range members {
				bumpIn(&cands, m.cell.Value, 1)
				for _, cv := range consts[m.cell.MapKey()] {
					bumpIn(&constCands, cv, 1)
				}
			}
			// Constants are hard requirements (CFD patterns, unary DCs):
			// when present, the target is drawn from them alone.
			if len(constCands) > 0 {
				cands = constCands
			} else if len(members) == 1 {
				continue
			}
			total := 0
			for _, c := range cands {
				total += c.w
			}
			pickAt := r.Intn(total)
			var target model.Value
			for _, c := range cands {
				if pickAt < c.w {
					target = c.v
					break
				}
				pickAt -= c.w
			}
			for _, m := range members {
				if !m.cell.Value.Equal(target) {
					cur = append(cur, Assignment{
						TupleID: m.cell.TupleID, Col: m.cell.Col,
						Attr: m.cell.Attr, Value: target,
					})
					cost += dis(m.cell.Value, target)
				}
			}
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = cur, cost
		}
	}
	sortAssignments(best)
	return best, nil
}
