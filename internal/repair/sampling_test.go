package repair

import (
	"fmt"
	"testing"

	"bigdansing/internal/model"
)

func TestSamplingRepairResolvesViolations(t *testing.T) {
	fs := []model.FixSet{
		fdFixSet("fd", 1, 2, "LA", "SF"),
		fdFixSet("fd", 1, 3, "LA", "LA"),
	}
	algo := &Sampling{Samples: 5, Seed: 3}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	// All three cells end with one value: at most 2 updates (majority LA
	// needs only one).
	if len(as) == 0 || len(as) > 2 {
		t.Fatalf("assignments = %v", as)
	}
	vals := map[string]model.Value{
		"1#2": model.S("LA"), "2#2": model.S("SF"), "3#2": model.S("LA"),
	}
	for _, a := range as {
		vals[a.Key()] = a.Value
	}
	if !vals["1#2"].Equal(vals["2#2"]) || !vals["2#2"].Equal(vals["3#2"]) {
		t.Errorf("class not unified: %v", vals)
	}
}

func TestSamplingConvergesToMinCost(t *testing.T) {
	// Majority value LA (3 of 4 cells): the min-cost repair changes 1 cell.
	// With enough samples the sampler finds it.
	c := func(id int64, v string) model.Cell { return model.NewCell(id, 2, "city", model.S(v)) }
	link := func(a, b model.Cell) model.FixSet {
		return model.FixSet{
			Violation: model.NewViolation("fd", a, b),
			Fixes:     []model.Fix{model.NewCellFix(a, model.OpEQ, b)},
		}
	}
	cells := []model.Cell{c(1, "LA"), c(2, "LA"), c(3, "LA"), c(4, "SF")}
	var fs []model.FixSet
	for i := 1; i < len(cells); i++ {
		fs = append(fs, link(cells[0], cells[i]))
	}
	algo := &Sampling{Samples: 50, Seed: 7}
	as, err := algo.Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].TupleID != 4 || as[0].Value != model.S("LA") {
		t.Errorf("min-cost sample should flip only t4 to LA: %v", as)
	}
}

func TestSamplingDeterministicBySeed(t *testing.T) {
	fs := []model.FixSet{fdFixSet("fd", 1, 2, "A", "B")}
	a1, _ := (&Sampling{Samples: 1, Seed: 5}).Repair(fs)
	a2, _ := (&Sampling{Samples: 1, Seed: 5}).Repair(fs)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Error("same seed should reproduce")
	}
}

func TestSamplingRespectsConstants(t *testing.T) {
	c1 := model.NewCell(1, 2, "city", model.S("SF"))
	fs := []model.FixSet{{
		Violation: model.NewViolation("cfd", c1),
		Fixes:     []model.Fix{model.NewConstFix(c1, model.OpEQ, model.S("LA"))},
	}}
	as, err := (&Sampling{Samples: 10, Seed: 2}).Repair(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Value != model.S("LA") {
		t.Errorf("constant should dominate: %v", as)
	}
}

func TestSamplingWorksInsideParallelWrapper(t *testing.T) {
	var fs []model.FixSet
	for i := int64(0); i < 20; i += 2 {
		fs = append(fs, fdFixSet("fd", i, i+1, "X", fmt.Sprintf("Y%d", i)))
	}
	as, rep, err := RepairParallel(fs, &Sampling{Samples: 9, Seed: 4}, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 10 {
		t.Errorf("components = %d", rep.Components)
	}
	if len(as) != 10 {
		t.Errorf("one repair per pair expected, got %d", len(as))
	}
}
